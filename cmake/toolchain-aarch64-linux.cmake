# Cross-compile to aarch64-linux-gnu — the CI arm64 leg
# (.github/workflows/ci.yml, job arm64-cross) builds with this file and
# runs the test suite under qemu-user, so the NEON backend is exercised
# on every push without arm64 hardware.
#
#   cmake -B build-arm64 -S . \
#     -DCMAKE_TOOLCHAIN_FILE=cmake/toolchain-aarch64-linux.cmake \
#     -DCMAKE_CROSSCOMPILING_EMULATOR=qemu-aarch64-static
#
# CMAKE_CROSSCOMPILING_EMULATOR makes ctest wrap every test binary in
# the emulator, so the normal `ctest` invocation just works.

set(CMAKE_SYSTEM_NAME Linux)
set(CMAKE_SYSTEM_PROCESSOR aarch64)

set(CMAKE_C_COMPILER aarch64-linux-gnu-gcc)
set(CMAKE_CXX_COMPILER aarch64-linux-gnu-g++)

# Static linking keeps qemu-user from needing the aarch64 loader and
# shared libstdc++ paths inside the x86 filesystem.
set(CMAKE_EXE_LINKER_FLAGS_INIT "-static")

# Search headers/libraries only in the target sysroot, programs only on
# the host.
set(CMAKE_FIND_ROOT_PATH_MODE_PROGRAM NEVER)
set(CMAKE_FIND_ROOT_PATH_MODE_LIBRARY ONLY)
set(CMAKE_FIND_ROOT_PATH_MODE_INCLUDE ONLY)
set(CMAKE_FIND_ROOT_PATH_MODE_PACKAGE ONLY)
