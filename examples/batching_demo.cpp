/**
 * Batching demo — run a real batched NTT workload (np primes, one
 * N-point transform each, like an HE polynomial in RNS form), measure
 * it on the CPU, and contrast the twiddle-table footprint with DFT's —
 * the paper's core NTT-vs-DFT observation.
 *
 *   $ ./batching_demo
 */

#include <chrono>
#include <cstdio>

#include "kernels/batch_workload.h"
#include "kernels/radix2_kernel.h"

int
main()
{
    using namespace hentt;
    const std::size_t n = 1 << 14;

    std::printf("%6s %16s %22s %20s\n", "np", "CPU time (ms)",
                "NTT tables (MB)", "DFT table (MB, shared)");
    for (std::size_t np : {1, 2, 4, 8}) {
        kernels::NttBatchWorkload workload(n, np, 55);
        workload.Randomize(1);

        const auto start = std::chrono::steady_clock::now();
        kernels::Radix2Kernel().Execute(workload);
        const auto stop = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start)
                .count();

        // NTT tables grow with np (w + Shoup companion per twiddle,
        // distinct roots per prime); a DFT table is shared by the batch.
        const double ntt_mb =
            static_cast<double>(workload.TwiddleTableBytes()) / 1e6;
        const double dft_mb = static_cast<double>(n) * 8.0 / 1e6;
        std::printf("%6zu %16.2f %22.2f %20.2f\n", np, ms, ntt_mb,
                    dft_mb);
    }
    std::printf("\nNTT precomputed state scales linearly with the batch "
                "while DFT's is constant — at bootstrappable HE sizes "
                "(N = 2^17, np = 45) the tables alone are ~94 MB, far "
                "beyond GPU on-chip storage, which is why the paper's "
                "NTT is DRAM-bandwidth bound.\n");
    return 0;
}
