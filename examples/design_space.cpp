/**
 * Design-space explorer — drive the GPU performance model from the
 * command line, reproducing the paper's methodology interactively:
 *
 *   $ ./design_space [logN] [np]
 *
 * prints the whole implementation ladder (radix-2, every high-radix
 * variant, every SMEM radix combination with/without OT) with time,
 * traffic, occupancy, and boundedness.
 */

#include <cstdio>
#include <cstdlib>

#include "gpu/simulator.h"
#include "kernels/config_search.h"
#include "kernels/launcher.h"

int
main(int argc, char **argv)
{
    using namespace hentt;
    const unsigned log_n = argc > 1 ? std::atoi(argv[1]) : 17;
    const std::size_t np = argc > 2 ? std::atoi(argv[2]) : 21;
    if (log_n < 12 || log_n > 17) {
        std::fprintf(stderr, "logN must be in [12, 17]\n");
        return 1;
    }
    const std::size_t n = std::size_t{1} << log_n;
    const gpu::Simulator sim;

    std::printf("Design space for N = 2^%u, np = %zu on %s\n", log_n, np,
                sim.device().name.c_str());
    std::printf("%-28s %12s %12s %7s %7s  %s\n", "configuration",
                "time (us)", "DRAM (MB)", "occ", "util", "bound");

    auto show = [&](const kernels::EstimateRow &row) {
        std::printf("%-28s %12.1f %12.1f %6.0f%% %6.0f%%  %s\n",
                    row.label.c_str(), row.time_us(), row.dram_mb(),
                    row.estimate.occupancy * 100,
                    row.estimate.dram_utilization * 100,
                    row.estimate.memory_bound ? "memory" : "compute");
    };

    show(kernels::EstimateRadix2(sim, n, np));
    show(kernels::EstimateRadix2(sim, n, np,
                                 kernels::Reduction::kNative));
    for (std::size_t radix : {4, 8, 16, 32, 64, 128}) {
        show(kernels::EstimateHighRadix(sim, n, np, radix));
    }
    for (unsigned ot : {0u, 2u}) {
        for (const auto &scored :
             kernels::RankSmemConfigs(sim, n, np, 8, ot)) {
            show(kernels::EstimateSmem(sim, scored.config, np));
        }
    }

    const auto best = kernels::FindBestSmemConfig(sim, n, np, 8, 2);
    const auto baseline = kernels::EstimateRadix2(sim, n, np);
    std::printf("\nbest: smem-%zux%zu+OT at %.1f us — %.1fx over the "
                "radix-2 baseline (paper: 4.2x average)\n",
                best.config.kernel1_size, best.config.kernel2_size,
                best.estimate.total_us,
                baseline.time_us() / best.estimate.total_us);
    return 0;
}
