/**
 * Quickstart — multiply two polynomials in Z_p[X]/(X^N + 1) with the
 * NTT engine and verify against the schoolbook convolution.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "common/primegen.h"
#include "common/random.h"
#include "poly/negacyclic.h"

int
main()
{
    using namespace hentt;

    // 1. Pick a transform size and an NTT-friendly prime
    //    (p == 1 mod 2N so a primitive 2N-th root of unity exists).
    const std::size_t n = 1024;
    const u64 p = GenerateNttPrimes(2 * n, 50, 1)[0];
    std::printf("ring: Z_%llu[X]/(X^%zu + 1)\n",
                static_cast<unsigned long long>(p), n);

    // 2. Build the transform engine (precomputes twiddles + Shoup
    //    companions, exactly the tables the paper's GPU kernels stream).
    const NttEngine engine(n, p);

    // 3. Random operands.
    Xoshiro256 rng(2024);
    std::vector<u64> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = rng.NextBelow(p);
        b[i] = rng.NextBelow(p);
    }

    // 4. O(N log N) negacyclic product: c = INTT(NTT(a) . NTT(b)).
    const Poly pa(a, p), pb(b, p);
    const Poly fast = NegacyclicConvolveNtt(pa, pb, engine);

    // 5. Verify against the O(N^2) schoolbook oracle.
    const Poly slow = NegacyclicConvolveNaive(pa, pb);
    if (fast == slow) {
        std::printf("OK: NTT product matches schoolbook convolution "
                    "(%zu coefficients)\n", n);
    } else {
        std::printf("MISMATCH — this is a bug\n");
        return 1;
    }

    // 6. The same engine exposes the paper's algorithm variants.
    std::vector<u64> v = a;
    engine.Forward(v, NttAlgorithm::kHighRadix, /*radix=*/16);
    engine.Inverse(v);
    std::printf("OK: high-radix forward + inverse round trip\n");

    v = a;
    engine.Forward(v, NttAlgorithm::kRadix2Ot, 16, /*ot_stages=*/2);
    engine.Inverse(v);
    std::printf("OK: on-the-fly-twiddling forward + inverse round trip\n");
    std::printf("OT table: %zu entries vs %zu in the full table\n",
                engine.ot_table().entry_count(), 2 * n);
    return 0;
}
