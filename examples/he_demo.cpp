/**
 * HE demo — the workload that motivates the paper: encrypt two vectors,
 * add and multiply them homomorphically (every multiply runs batches of
 * NTTs across the RNS primes), relinearize, and decrypt.
 *
 *   $ ./he_demo
 */

#include <cstdio>

#include "he/bgv.h"

int
main()
{
    using namespace hentt;

    he::HeParams params;
    params.degree = 1 << 12;
    params.prime_count = 4;
    params.prime_bits = 55;
    params.plain_modulus = 65537;
    auto ctx = std::make_shared<he::HeContext>(params);
    std::printf("BGV context: N = %zu, %zu primes, logQ = %zu, t = %llu\n",
                ctx->degree(), ctx->basis().prime_count(),
                ctx->basis().log_q(),
                static_cast<unsigned long long>(params.plain_modulus));

    he::BgvScheme scheme(ctx, /*seed=*/7);
    const he::SecretKey sk = scheme.KeyGen();
    const he::RelinKey rk = scheme.MakeRelinKey(sk);

    // Plaintexts: m1 = (1, 2, 3, ...), m2 = (2, 2, 2, ...).
    he::Plaintext m1(ctx->degree()), m2(ctx->degree(), 2);
    for (std::size_t i = 0; i < m1.size(); ++i) {
        m1[i] = (i + 1) % params.plain_modulus;
    }

    he::Ciphertext ct1 = scheme.Encrypt(sk, m1);
    he::Ciphertext ct2 = scheme.Encrypt(sk, m2);
    std::printf("fresh noise budget: %.1f bits\n",
                scheme.NoiseBudgetBits(sk, ct1));

    // Homomorphic add.
    const he::Ciphertext sum = scheme.Add(ct1, ct2);
    const he::Plaintext dec_sum = scheme.Decrypt(sk, sum);
    std::printf("dec(ct1 + ct2)[0..4] = %llu %llu %llu %llu %llu "
                "(expect 3 4 5 6 7)\n",
                (unsigned long long)dec_sum[0],
                (unsigned long long)dec_sum[1],
                (unsigned long long)dec_sum[2],
                (unsigned long long)dec_sum[3],
                (unsigned long long)dec_sum[4]);

    // Homomorphic multiply + relinearize. Each RnsPoly product runs
    // np forward NTTs per operand — the paper's batched workload.
    he::Ciphertext prod = scheme.Relinearize(scheme.Mul(ct1, ct2), rk);
    std::printf("noise budget after multiply: %.1f bits\n",
                scheme.NoiseBudgetBits(sk, prod));

    const he::Plaintext dec_prod = scheme.Decrypt(sk, prod);
    // m1 * m2 in the ring: constant vector times (1,2,3,...) is a
    // negacyclic convolution; spot-check coefficient 0:
    //   c0 = 2*m1[0] - 2*(m1[1] + ... + m1[N-1]) mod t.
    std::printf("dec(ct1 * ct2)[0..2] = %llu %llu %llu\n",
                (unsigned long long)dec_prod[0],
                (unsigned long long)dec_prod[1],
                (unsigned long long)dec_prod[2]);

    // Multiply by a plaintext and keep going.
    he::Plaintext mask(ctx->degree(), 0);
    mask[0] = 3;  // scale by 3
    const he::Ciphertext scaled = scheme.MulPlain(prod, mask);
    const he::Plaintext dec_scaled = scheme.Decrypt(sk, scaled);
    bool ok = true;
    for (std::size_t i = 0; i < 16; ++i) {
        if (dec_scaled[i] !=
            dec_prod[i] * 3 % params.plain_modulus) {
            ok = false;
        }
    }
    std::printf("%s: plaintext-scaling of the product decrypts "
                "consistently\n", ok ? "OK" : "MISMATCH");

    // Modulus-switch the product one level down the chain: the noise
    // magnitude drops by ~q_k while the plaintext is preserved — BGV's
    // between-multiplications noise management.
    const he::Ciphertext switched = scheme.ModSwitch(prod);
    std::printf("after ModSwitch: level %zu -> %zu, noise budget %.1f "
                "bits\n", he::BgvScheme::Level(prod),
                he::BgvScheme::Level(switched),
                scheme.NoiseBudgetBits(sk, switched));
    const bool ms_ok = scheme.Decrypt(sk, switched) == dec_prod;
    std::printf("%s: plaintext survives the modulus switch\n",
                ms_ok ? "OK" : "MISMATCH");
    return (ok && ms_ok) ? 0 : 1;
}
