/**
 * @file
 * Benchmark for the batched RNS execution layer (this repo's CPU
 * analogue of the paper's Fig. 3 batching argument).
 *
 * Compares three execution paths for a full negacyclic RnsPoly
 * multiply (forward NTT x2, Hadamard, inverse NTT at N x np):
 *
 *   seed    — the pre-batching code path: serial limb loop, strict
 *             radix-2 butterflies, MulModNative (hardware `%`) in the
 *             Hadamard inner loop;
 *   fast    — single-threaded new path: lazy [0, 4p) butterflies
 *             (paper Algo. 2) and Barrett Hadamard;
 *   batched — the fast path with limbs dispatched across the global
 *             thread pool.
 *
 * Also verifies the acceptance-criterion allocation bound: the
 * steady-state multiply loop performs zero heap allocations (flat
 * storage + size-preserving vector assignment + the pool's type-erased
 * dispatch).
 *
 * Usage: bench_rns_batch [--json PATH] [--threads T] [--reps R]
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/modarith.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "ntt/ntt_lazy.h"
#include "poly/rns_poly.h"
#include "simd/simd_backend.h"

// ---------------------------------------------------------------------
// Allocation counter: global operator new replacement so the bench can
// prove the steady-state loop does not touch the heap.
// ---------------------------------------------------------------------
namespace {
std::atomic<long long> g_alloc_count{0};
}

void *
operator new(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size)) {
        return p;
    }
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace hentt {
namespace {

using Clock = std::chrono::steady_clock;

double
Elapsed_ns(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

/** The seed code path, reconstructed: serial limbs, strict radix-2,
 *  native `%` Hadamard. Operates on preallocated buffers. */
void
SeedMultiply(RnsPoly &fa, RnsPoly &fb, const RnsPoly &a, const RnsPoly &b)
{
    fa = a;
    fb = b;
    const RnsNttContext &ctx = a.context();
    for (std::size_t i = 0; i < a.prime_count(); ++i) {
        ctx.engine(i).Forward(fa.row(i), NttAlgorithm::kRadix2);
        ctx.engine(i).Forward(fb.row(i), NttAlgorithm::kRadix2);
        const u64 p = ctx.basis().prime(i);
        const std::span<u64> ra = fa.row(i);
        const std::span<const u64> rb = fb.row(i);
        for (std::size_t k = 0; k < ra.size(); ++k) {
            ra[k] = MulModNative(ra[k], rb[k], p);
        }
        InttRadix2(fa.row(i), ctx.engine(i).table());
    }
}

/** The new execution layer: lazy butterflies + Barrett Hadamard, with
 *  limb dispatch controlled by the global pool configuration. */
void
BatchedMultiply(RnsPoly &fa, RnsPoly &fb, const RnsPoly &a,
                const RnsPoly &b)
{
    fa = a;
    fb = b;
    fa.ToEvaluation();
    fb.ToEvaluation();
    fa *= fb;
    fa.ToCoefficient();
}

RnsPoly
RandomPoly(const std::shared_ptr<const RnsNttContext> &ctx, u64 seed)
{
    RnsPoly poly(ctx);
    Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < poly.prime_count(); ++i) {
        const u64 p = ctx->basis().prime(i);
        for (u64 &x : poly.row(i)) {
            x = rng.NextBelow(p);
        }
    }
    return poly;
}

template <typename Fn>
double
TimeBest_ns(int reps, Fn &&fn)
{
    double best = 0.0;
    for (int r = 0; r < reps + 2; ++r) {  // two warm-up reps
        const auto t0 = Clock::now();
        fn();
        const auto t1 = Clock::now();
        const double ns = Elapsed_ns(t0, t1);
        if (r >= 2 && (best == 0.0 || ns < best)) {
            best = ns;
        }
    }
    return best;
}

int
BenchMain(int argc, char **argv)
{
    const std::size_t n = 4096;
    const std::size_t np = 8;
    int reps = 7;
    std::size_t threads = 0;  // 0 = hardware default, floor 4
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            threads = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
        }
    }
    if (threads == 0) {
        if (const char *env = std::getenv("HENTT_THREADS")) {
            threads = std::strtoull(env, nullptr, 10);
        }
    }
    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw < 4 ? 4 : hw;  // acceptance criterion: >= 4 lanes
    }

    bench::Header("BENCH rns_batch",
                  "batched parallel RNS multiply vs. the serial "
                  "MulModNative seed path");
    std::printf("config: N=%zu, limbs=%zu, lanes=%zu, "
                "hardware_concurrency=%u\n",
                n, np, threads, std::thread::hardware_concurrency());

    auto basis = std::make_shared<RnsBasis>(n, 50, np);
    auto ctx = std::make_shared<RnsNttContext>(n, std::move(basis));
    const RnsPoly a = RandomPoly(ctx, 1);
    const RnsPoly b = RandomPoly(ctx, 2);
    RnsPoly fa(ctx), fb(ctx);

    // Correctness cross-check before timing anything.
    {
        RnsPoly sa(ctx), sb(ctx);
        SeedMultiply(sa, sb, a, b);
        BatchedMultiply(fa, fb, a, b);
        for (std::size_t i = 0; i < np; ++i) {
            const std::span<const u64> x = sa.row(i);
            const std::span<const u64> y = fa.row(i);
            for (std::size_t k = 0; k < n; ++k) {
                if (x[k] != y[k]) {
                    std::fprintf(stderr,
                                 "MISMATCH row %zu index %zu\n", i, k);
                    return 1;
                }
            }
        }
    }

    bench::Section("full negacyclic multiply (2 fwd + Hadamard + inv)");

    const double seed_ns = TimeBest_ns(
        reps, [&] { SeedMultiply(fa, fb, a, b); });

    SetGlobalThreadCount(1);
    const double fast_ns = TimeBest_ns(
        reps, [&] { BatchedMultiply(fa, fb, a, b); });

    SetGlobalThreadCount(threads);
    SetParallelGrain(1);  // always dispatch: the batch is large
    GlobalThreadPool();   // spin up workers outside the timed region
    const double batched_ns = TimeBest_ns(
        reps, [&] { BatchedMultiply(fa, fb, a, b); });

    bench::Row("seed (serial, native %)", seed_ns / 1e3, "us");
    bench::Row("fast (1 lane)", fast_ns / 1e3, "us");
    bench::Row("batched (pool)", batched_ns / 1e3, "us");
    bench::Ratio("fast vs seed", seed_ns / fast_ns);
    bench::Ratio("batched vs seed", seed_ns / batched_ns);

    // ------------------------------------------------------------------
    // SIMD backend columns: the butterfly-bound single-row N=4096 lazy
    // forward (the kernel the backends exist for) and the full
    // multiply, per backend, one lane, so the vectorization shows up
    // without the pool in the way. Each backend is measured through
    // BOTH stage walkers — the fused radix-4 default (ceil(log N / 2)
    // kernel passes) and the radix-2 ablation walk (log N passes) —
    // which is how the pass reduction becomes a tracked column.
    // ------------------------------------------------------------------
    bench::Section("simd backends (1 lane)");
    SetGlobalThreadCount(1);
    constexpr std::size_t kBackends = simd::kBackendCount;
    const bool avx2_available =
        simd::BackendAvailable(simd::Backend::kAvx2);
    const bool avx512_available =
        simd::BackendAvailable(simd::Backend::kAvx512);
    const bool avx512ifma_available =
        simd::BackendAvailable(simd::Backend::kAvx512Ifma);
    const bool neon_available =
        simd::BackendAvailable(simd::Backend::kNeon);
    double ntt_backend_ns[kBackends] = {};    // fused radix-4 walker
    double ntt_radix2_ns[kBackends] = {};     // radix-2 ablation walk
    double mul_backend_ns[kBackends] = {};
    {
        RnsPoly ntt_poly = a;
        for (const auto backend : simd::kAllBackends) {
            if (!simd::BackendAvailable(backend)) {
                continue;
            }
            simd::ForceBackend(backend);
            const std::size_t slot = static_cast<std::size_t>(backend);
            ntt_backend_ns[slot] = TimeBest_ns(3 * reps, [&] {
                std::copy(a.row(0).begin(), a.row(0).end(),
                          ntt_poly.row(0).begin());
                NttRadix2Lazy(ntt_poly.row(0),
                              ctx->engine(0).table());
            });
            ntt_radix2_ns[slot] = TimeBest_ns(3 * reps, [&] {
                std::copy(a.row(0).begin(), a.row(0).end(),
                          ntt_poly.row(0).begin());
                NttRadix2LazyUnfused(ntt_poly.row(0),
                                     ctx->engine(0).table());
            });
            mul_backend_ns[slot] = TimeBest_ns(
                reps, [&] { BatchedMultiply(fa, fb, a, b); });
            const std::string name = simd::BackendName(backend);
            bench::Row("ntt4096 radix4 " + name,
                       ntt_backend_ns[slot] / 1e3, "us");
            bench::Row("ntt4096 radix2 " + name,
                       ntt_radix2_ns[slot] / 1e3, "us");
            bench::Row("multiply " + name, mul_backend_ns[slot] / 1e3,
                       "us");
        }
        simd::ResetBackend();
    }
    if (avx2_available) {
        bench::Ratio("ntt4096 avx2 vs scalar",
                     ntt_backend_ns[0] / ntt_backend_ns[1]);
        bench::Ratio("multiply avx2 vs scalar",
                     mul_backend_ns[0] / mul_backend_ns[1]);
    }
    bench::Ratio("ntt4096 radix4 vs radix2 (scalar)",
                 ntt_radix2_ns[0] / ntt_backend_ns[0]);
    // The acceptance series for the fused walker: the best radix-4
    // column against the radix-2 AVX2 path PR 4 shipped.
    const std::size_t best_slot = static_cast<std::size_t>(
        avx512_available ? simd::Backend::kAvx512
        : avx2_available ? simd::Backend::kAvx2
                         : simd::Backend::kScalar);
    const double radix4_vs_pr4 =
        avx2_available
            ? ntt_radix2_ns[static_cast<std::size_t>(
                  simd::Backend::kAvx2)] /
                  ntt_backend_ns[best_slot]
            : 0.0;
    if (avx2_available) {
        bench::Ratio("ntt4096 radix4 best vs pr4 radix2 avx2",
                     radix4_vs_pr4);
    }

    // ------------------------------------------------------------------
    // Element-wise family columns: the tensor stage and the fused
    // fold+rescale epilogue at N=4096 through each backend's
    // PRODUCTION table (the Hadamard/rescale loops of the HE layer).
    // The avx512-vs-avx2 ratios are the cross-machine acceptance
    // series for the 8-lane element-wise tentpole; note the AVX2
    // production table resolves tensor_rows to the scalar mulx loop
    // (the measured 4-lane verdict), so the ratio reads "what the
    // vpmullq table buys over the best pre-AVX-512 path".
    // ------------------------------------------------------------------
    bench::Section("elementwise rows, production tables (N=4096)");
    double ew_tensor_ns[kBackends] = {};
    double ew_foldrescale_ns[kBackends] = {};
    {
        const u64 p0 = ctx->basis().prime(0);
        const BarrettReducer red(p0);
        const simd::BarrettConsts consts = simd::Consts(red);
        const u64 s = a.row(1)[0] % p0;
        const u64 s_bar = ShoupPrecompute(s, p0);
        std::vector<u64> c0(n), c1(n), c2(n), dst(n);
        for (const auto backend : simd::kAllBackends) {
            if (!simd::BackendAvailable(backend)) {
                continue;
            }
            const simd::Kernels &kernels = simd::Get(backend);
            const std::size_t slot = static_cast<std::size_t>(backend);
            ew_tensor_ns[slot] = TimeBest_ns(3 * reps, [&] {
                kernels.tensor_rows(c0.data(), c1.data(), c2.data(),
                                    a.row(0).data(), a.row(1).data(),
                                    b.row(0).data(), b.row(1).data(), n,
                                    consts);
            });
            ew_foldrescale_ns[slot] = TimeBest_ns(3 * reps, [&] {
                kernels.fold_rescale_rows(dst.data(), b.row(0).data(),
                                          n, p0, s, s_bar);
            });
            const std::string name = simd::BackendName(backend);
            bench::Row("tensor " + name, ew_tensor_ns[slot] / 1e3,
                       "us");
            bench::Row("fold+rescale " + name,
                       ew_foldrescale_ns[slot] / 1e3, "us");
        }
    }
    const std::size_t kAvx2Slot =
        static_cast<std::size_t>(simd::Backend::kAvx2);
    const std::size_t kAvx512Slot =
        static_cast<std::size_t>(simd::Backend::kAvx512);
    const double ew_tensor_512_vs_2 =
        (avx2_available && avx512_available)
            ? ew_tensor_ns[kAvx2Slot] / ew_tensor_ns[kAvx512Slot]
            : 0.0;
    const double ew_foldrescale_512_vs_2 =
        (avx2_available && avx512_available)
            ? ew_foldrescale_ns[kAvx2Slot] /
                  ew_foldrescale_ns[kAvx512Slot]
            : 0.0;
    if (avx512_available) {
        bench::Ratio("tensor avx512 vs avx2 table", ew_tensor_512_vs_2);
        bench::Ratio("fold+rescale avx512 vs avx2 table",
                     ew_foldrescale_512_vs_2);
    }
    SetGlobalThreadCount(threads);

    bench::Section("steady-state allocation check");
    long long alloc_delta;
    {
        BatchedMultiply(fa, fb, a, b);  // ensure buffers are sized
        const long long before =
            g_alloc_count.load(std::memory_order_relaxed);
        for (int r = 0; r < 5; ++r) {
            BatchedMultiply(fa, fb, a, b);
        }
        alloc_delta =
            g_alloc_count.load(std::memory_order_relaxed) - before;
    }
    std::printf("  heap allocations in 5 steady-state multiplies: %lld\n",
                alloc_delta);

    const double speedup = seed_ns / batched_ns;
    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"rns_batch\",\n"
            "  \"n\": %zu,\n"
            "  \"limbs\": %zu,\n"
            "  \"lanes\": %zu,\n"
            "  \"seed_serial_native_ns\": %.1f,\n"
            "  \"fast_single_lane_ns\": %.1f,\n"
            "  \"batched_pool_ns\": %.1f,\n"
            "  \"speedup_fast_vs_seed\": %.3f,\n"
            "  \"speedup_batched_vs_seed\": %.3f,\n"
            "  \"simd_default_backend\": \"%s\",\n"
            "  \"avx2_available\": %s,\n"
            "  \"avx512_available\": %s,\n"
            "  \"avx512ifma_available\": %s,\n"
            "  \"neon_available\": %s,\n"
            "  \"ntt4096_scalar_ns\": %.1f,\n"
            "  \"ntt4096_avx2_ns\": %.1f,\n"
            "  \"ntt4096_avx512_ns\": %.1f,\n"
            "  \"ntt4096_radix2_scalar_ns\": %.1f,\n"
            "  \"ntt4096_radix2_avx2_ns\": %.1f,\n"
            "  \"ntt4096_radix2_avx512_ns\": %.1f,\n"
            "  \"speedup_ntt4096_avx2_vs_scalar\": %.3f,\n"
            "  \"speedup_ntt4096_radix4_vs_radix2_scalar\": %.3f,\n"
            "  \"speedup_ntt4096_radix4_vs_radix2_avx2\": %.3f,\n"
            "  \"speedup_ntt4096_radix4_vs_radix2_avx512\": %.3f,\n"
            "  \"speedup_ntt4096_radix4_best_vs_pr4_radix2_avx2\": "
            "%.3f,\n"
            "  \"multiply_scalar_ns\": %.1f,\n"
            "  \"multiply_avx2_ns\": %.1f,\n"
            "  \"multiply_avx512_ns\": %.1f,\n"
            "  \"speedup_multiply_avx2_vs_scalar\": %.3f,\n"
            "  \"elementwise_tensor_scalar_ns\": %.1f,\n"
            "  \"elementwise_tensor_avx2_ns\": %.1f,\n"
            "  \"elementwise_tensor_avx512_ns\": %.1f,\n"
            "  \"elementwise_tensor_avx512ifma_ns\": %.1f,\n"
            "  \"elementwise_tensor_neon_ns\": %.1f,\n"
            "  \"elementwise_foldrescale_scalar_ns\": %.1f,\n"
            "  \"elementwise_foldrescale_avx2_ns\": %.1f,\n"
            "  \"elementwise_foldrescale_avx512_ns\": %.1f,\n"
            "  \"elementwise_foldrescale_avx512ifma_ns\": %.1f,\n"
            "  \"elementwise_foldrescale_neon_ns\": %.1f,\n"
            "  \"speedup_elementwise_tensor_avx512_vs_avx2\": %.3f,\n"
            "  \"speedup_elementwise_foldrescale_avx512_vs_avx2\": "
            "%.3f,\n"
            "  \"steady_state_allocs\": %lld\n"
            "}\n",
            n, np, threads, seed_ns, fast_ns, batched_ns,
            seed_ns / fast_ns, speedup,
            simd::BackendName(simd::ActiveBackend()),
            avx2_available ? "true" : "false",
            avx512_available ? "true" : "false",
            avx512ifma_available ? "true" : "false",
            neon_available ? "true" : "false", ntt_backend_ns[0],
            ntt_backend_ns[1], ntt_backend_ns[2], ntt_radix2_ns[0],
            ntt_radix2_ns[1], ntt_radix2_ns[2],
            avx2_available ? ntt_backend_ns[0] / ntt_backend_ns[1] : 0.0,
            ntt_radix2_ns[0] / ntt_backend_ns[0],
            avx2_available ? ntt_radix2_ns[1] / ntt_backend_ns[1] : 0.0,
            avx512_available ? ntt_radix2_ns[2] / ntt_backend_ns[2]
                             : 0.0,
            radix4_vs_pr4, mul_backend_ns[0], mul_backend_ns[1],
            mul_backend_ns[2],
            avx2_available ? mul_backend_ns[0] / mul_backend_ns[1] : 0.0,
            ew_tensor_ns[0], ew_tensor_ns[1], ew_tensor_ns[2],
            ew_tensor_ns[3], ew_tensor_ns[4], ew_foldrescale_ns[0],
            ew_foldrescale_ns[1], ew_foldrescale_ns[2],
            ew_foldrescale_ns[3], ew_foldrescale_ns[4],
            ew_tensor_512_vs_2, ew_foldrescale_512_vs_2, alloc_delta);
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }

    if (alloc_delta != 0) {
        std::fprintf(stderr,
                     "FAIL: steady-state multiply allocated %lld times\n",
                     alloc_delta);
        return 1;
    }
    // Advisory, not a hard gate: on cores that split 256-bit ops into
    // two halves (or on noisy shared runners) a correct build can
    // legitimately land below the 1.5x target; the committed JSON
    // column is the tracked record.
    if (avx2_available &&
        ntt_backend_ns[0] / ntt_backend_ns[1] < 1.5) {
        std::fprintf(stderr,
                     "WARNING: AVX2 backend below the 1.5x target on "
                     "the N=4096 butterfly-bound microbench (%.2fx)\n",
                     ntt_backend_ns[0] / ntt_backend_ns[1]);
    }
    // Same advisory status for the fused-walker acceptance series: the
    // best radix-4 column should beat the PR 4 radix-2 AVX2 path by
    // >= 1.15x on hardware with a wide backend.
    if (avx2_available && radix4_vs_pr4 < 1.15) {
        std::fprintf(stderr,
                     "WARNING: fused radix-4 walker below the 1.15x "
                     "target vs the PR 4 radix-2 AVX2 path on the "
                     "N=4096 butterfly series (%.2fx)\n",
                     radix4_vs_pr4);
    }
    // Element-wise tentpole target: the all-native AVX-512 table should
    // beat the AVX2 production table (scalar tensor verdict) by >= 1.2x
    // on both acceptance rows. Advisory for the same shared-runner
    // reasons as above.
    if (avx512_available &&
        (ew_tensor_512_vs_2 < 1.2 || ew_foldrescale_512_vs_2 < 1.2)) {
        std::fprintf(stderr,
                     "WARNING: AVX-512 element-wise family below the "
                     "1.2x target vs the AVX2 table at N=4096 "
                     "(tensor %.2fx, fold+rescale %.2fx)\n",
                     ew_tensor_512_vs_2, ew_foldrescale_512_vs_2);
    }
    return 0;
}

}  // namespace
}  // namespace hentt

int
main(int argc, char **argv)
{
    return hentt::BenchMain(argc, argv);
}
