/**
 * @file
 * Benchmark for the batched RNS execution layer (this repo's CPU
 * analogue of the paper's Fig. 3 batching argument).
 *
 * Compares three execution paths for a full negacyclic RnsPoly
 * multiply (forward NTT x2, Hadamard, inverse NTT at N x np):
 *
 *   seed    — the pre-batching code path: serial limb loop, strict
 *             radix-2 butterflies, MulModNative (hardware `%`) in the
 *             Hadamard inner loop;
 *   fast    — single-threaded new path: lazy [0, 4p) butterflies
 *             (paper Algo. 2) and Barrett Hadamard;
 *   batched — the fast path with limbs dispatched across the global
 *             thread pool.
 *
 * Also verifies the acceptance-criterion allocation bound: the
 * steady-state multiply loop performs zero heap allocations (flat
 * storage + size-preserving vector assignment + the pool's type-erased
 * dispatch).
 *
 * Usage: bench_rns_batch [--json PATH] [--threads T] [--reps R]
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "bench_util.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "ntt/ntt_lazy.h"
#include "poly/rns_poly.h"
#include "simd/simd_backend.h"

// ---------------------------------------------------------------------
// Allocation counter: global operator new replacement so the bench can
// prove the steady-state loop does not touch the heap.
// ---------------------------------------------------------------------
namespace {
std::atomic<long long> g_alloc_count{0};
}

void *
operator new(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size)) {
        return p;
    }
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace hentt {
namespace {

using Clock = std::chrono::steady_clock;

double
Elapsed_ns(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

/** The seed code path, reconstructed: serial limbs, strict radix-2,
 *  native `%` Hadamard. Operates on preallocated buffers. */
void
SeedMultiply(RnsPoly &fa, RnsPoly &fb, const RnsPoly &a, const RnsPoly &b)
{
    fa = a;
    fb = b;
    const RnsNttContext &ctx = a.context();
    for (std::size_t i = 0; i < a.prime_count(); ++i) {
        ctx.engine(i).Forward(fa.row(i), NttAlgorithm::kRadix2);
        ctx.engine(i).Forward(fb.row(i), NttAlgorithm::kRadix2);
        const u64 p = ctx.basis().prime(i);
        const std::span<u64> ra = fa.row(i);
        const std::span<const u64> rb = fb.row(i);
        for (std::size_t k = 0; k < ra.size(); ++k) {
            ra[k] = MulModNative(ra[k], rb[k], p);
        }
        InttRadix2(fa.row(i), ctx.engine(i).table());
    }
}

/** The new execution layer: lazy butterflies + Barrett Hadamard, with
 *  limb dispatch controlled by the global pool configuration. */
void
BatchedMultiply(RnsPoly &fa, RnsPoly &fb, const RnsPoly &a,
                const RnsPoly &b)
{
    fa = a;
    fb = b;
    fa.ToEvaluation();
    fb.ToEvaluation();
    fa *= fb;
    fa.ToCoefficient();
}

RnsPoly
RandomPoly(const std::shared_ptr<const RnsNttContext> &ctx, u64 seed)
{
    RnsPoly poly(ctx);
    Xoshiro256 rng(seed);
    for (std::size_t i = 0; i < poly.prime_count(); ++i) {
        const u64 p = ctx->basis().prime(i);
        for (u64 &x : poly.row(i)) {
            x = rng.NextBelow(p);
        }
    }
    return poly;
}

template <typename Fn>
double
TimeBest_ns(int reps, Fn &&fn)
{
    double best = 0.0;
    for (int r = 0; r < reps + 2; ++r) {  // two warm-up reps
        const auto t0 = Clock::now();
        fn();
        const auto t1 = Clock::now();
        const double ns = Elapsed_ns(t0, t1);
        if (r >= 2 && (best == 0.0 || ns < best)) {
            best = ns;
        }
    }
    return best;
}

int
BenchMain(int argc, char **argv)
{
    const std::size_t n = 4096;
    const std::size_t np = 8;
    int reps = 7;
    std::size_t threads = 0;  // 0 = hardware default, floor 4
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            threads = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
        }
    }
    if (threads == 0) {
        if (const char *env = std::getenv("HENTT_THREADS")) {
            threads = std::strtoull(env, nullptr, 10);
        }
    }
    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw < 4 ? 4 : hw;  // acceptance criterion: >= 4 lanes
    }

    bench::Header("BENCH rns_batch",
                  "batched parallel RNS multiply vs. the serial "
                  "MulModNative seed path");
    std::printf("config: N=%zu, limbs=%zu, lanes=%zu, "
                "hardware_concurrency=%u\n",
                n, np, threads, std::thread::hardware_concurrency());

    auto basis = std::make_shared<RnsBasis>(n, 50, np);
    auto ctx = std::make_shared<RnsNttContext>(n, std::move(basis));
    const RnsPoly a = RandomPoly(ctx, 1);
    const RnsPoly b = RandomPoly(ctx, 2);
    RnsPoly fa(ctx), fb(ctx);

    // Correctness cross-check before timing anything.
    {
        RnsPoly sa(ctx), sb(ctx);
        SeedMultiply(sa, sb, a, b);
        BatchedMultiply(fa, fb, a, b);
        for (std::size_t i = 0; i < np; ++i) {
            const std::span<const u64> x = sa.row(i);
            const std::span<const u64> y = fa.row(i);
            for (std::size_t k = 0; k < n; ++k) {
                if (x[k] != y[k]) {
                    std::fprintf(stderr,
                                 "MISMATCH row %zu index %zu\n", i, k);
                    return 1;
                }
            }
        }
    }

    bench::Section("full negacyclic multiply (2 fwd + Hadamard + inv)");

    const double seed_ns = TimeBest_ns(
        reps, [&] { SeedMultiply(fa, fb, a, b); });

    SetGlobalThreadCount(1);
    const double fast_ns = TimeBest_ns(
        reps, [&] { BatchedMultiply(fa, fb, a, b); });

    SetGlobalThreadCount(threads);
    SetParallelGrain(1);  // always dispatch: the batch is large
    GlobalThreadPool();   // spin up workers outside the timed region
    const double batched_ns = TimeBest_ns(
        reps, [&] { BatchedMultiply(fa, fb, a, b); });

    bench::Row("seed (serial, native %)", seed_ns / 1e3, "us");
    bench::Row("fast (1 lane)", fast_ns / 1e3, "us");
    bench::Row("batched (pool)", batched_ns / 1e3, "us");
    bench::Ratio("fast vs seed", seed_ns / fast_ns);
    bench::Ratio("batched vs seed", seed_ns / batched_ns);

    // ------------------------------------------------------------------
    // SIMD backend columns: the butterfly-bound single-row N=4096 lazy
    // forward (the kernel the backend exists for) and the full multiply,
    // per backend, one lane, so the vectorization shows up without the
    // pool in the way.
    // ------------------------------------------------------------------
    bench::Section("simd backends (1 lane)");
    SetGlobalThreadCount(1);
    const bool avx2_available =
        simd::BackendAvailable(simd::Backend::kAvx2);
    double ntt_backend_ns[2] = {0.0, 0.0};
    double mul_backend_ns[2] = {0.0, 0.0};
    {
        RnsPoly ntt_poly = a;
        for (const auto backend :
             {simd::Backend::kScalar, simd::Backend::kAvx2}) {
            if (!simd::BackendAvailable(backend)) {
                continue;
            }
            simd::ForceBackend(backend);
            const std::size_t slot = static_cast<std::size_t>(backend);
            ntt_backend_ns[slot] = TimeBest_ns(3 * reps, [&] {
                std::copy(a.row(0).begin(), a.row(0).end(),
                          ntt_poly.row(0).begin());
                NttRadix2Lazy(ntt_poly.row(0),
                              ctx->engine(0).table());
            });
            mul_backend_ns[slot] = TimeBest_ns(
                reps, [&] { BatchedMultiply(fa, fb, a, b); });
            bench::Row(std::string("ntt4096 ") +
                           simd::BackendName(backend),
                       ntt_backend_ns[slot] / 1e3, "us");
            bench::Row(std::string("multiply ") +
                           simd::BackendName(backend),
                       mul_backend_ns[slot] / 1e3, "us");
        }
        simd::ResetBackend();
    }
    if (avx2_available) {
        bench::Ratio("ntt4096 avx2 vs scalar",
                     ntt_backend_ns[0] / ntt_backend_ns[1]);
        bench::Ratio("multiply avx2 vs scalar",
                     mul_backend_ns[0] / mul_backend_ns[1]);
    }
    SetGlobalThreadCount(threads);

    bench::Section("steady-state allocation check");
    long long alloc_delta;
    {
        BatchedMultiply(fa, fb, a, b);  // ensure buffers are sized
        const long long before =
            g_alloc_count.load(std::memory_order_relaxed);
        for (int r = 0; r < 5; ++r) {
            BatchedMultiply(fa, fb, a, b);
        }
        alloc_delta =
            g_alloc_count.load(std::memory_order_relaxed) - before;
    }
    std::printf("  heap allocations in 5 steady-state multiplies: %lld\n",
                alloc_delta);

    const double speedup = seed_ns / batched_ns;
    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"rns_batch\",\n"
            "  \"n\": %zu,\n"
            "  \"limbs\": %zu,\n"
            "  \"lanes\": %zu,\n"
            "  \"seed_serial_native_ns\": %.1f,\n"
            "  \"fast_single_lane_ns\": %.1f,\n"
            "  \"batched_pool_ns\": %.1f,\n"
            "  \"speedup_fast_vs_seed\": %.3f,\n"
            "  \"speedup_batched_vs_seed\": %.3f,\n"
            "  \"simd_default_backend\": \"%s\",\n"
            "  \"avx2_available\": %s,\n"
            "  \"ntt4096_scalar_ns\": %.1f,\n"
            "  \"ntt4096_avx2_ns\": %.1f,\n"
            "  \"speedup_ntt4096_avx2_vs_scalar\": %.3f,\n"
            "  \"multiply_scalar_ns\": %.1f,\n"
            "  \"multiply_avx2_ns\": %.1f,\n"
            "  \"speedup_multiply_avx2_vs_scalar\": %.3f,\n"
            "  \"steady_state_allocs\": %lld\n"
            "}\n",
            n, np, threads, seed_ns, fast_ns, batched_ns,
            seed_ns / fast_ns, speedup,
            simd::BackendName(simd::ActiveBackend()),
            avx2_available ? "true" : "false", ntt_backend_ns[0],
            ntt_backend_ns[1],
            avx2_available ? ntt_backend_ns[0] / ntt_backend_ns[1] : 0.0,
            mul_backend_ns[0], mul_backend_ns[1],
            avx2_available ? mul_backend_ns[0] / mul_backend_ns[1] : 0.0,
            alloc_delta);
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }

    if (alloc_delta != 0) {
        std::fprintf(stderr,
                     "FAIL: steady-state multiply allocated %lld times\n",
                     alloc_delta);
        return 1;
    }
    // Advisory, not a hard gate: on cores that split 256-bit ops into
    // two halves (or on noisy shared runners) a correct build can
    // legitimately land below the 1.5x target; the committed JSON
    // column is the tracked record.
    if (avx2_available &&
        ntt_backend_ns[0] / ntt_backend_ns[1] < 1.5) {
        std::fprintf(stderr,
                     "WARNING: AVX2 backend below the 1.5x target on "
                     "the N=4096 butterfly-bound microbench (%.2fx)\n",
                     ntt_backend_ns[0] / ntt_backend_ns[1]);
    }
    return 0;
}

}  // namespace
}  // namespace hentt

int
main(int argc, char **argv)
{
    return hentt::BenchMain(argc, argv);
}
