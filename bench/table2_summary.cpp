/**
 * Table II — the headline result: radix-2 baseline vs the SMEM
 * implementation with and without OT, logN = 14..17, np = 21.
 *
 * Paper:
 *   logN  radix-2   SMEM w/o OT        SMEM w/ OT
 *   14    166 us    48.6 us [3.4x]     44.1 us [3.8x]
 *   15    340 us    92.0 us [3.7x]     84.2 us [4.0x]
 *   16    693 us   171.8 us [4.0x]    156.3 us [4.4x]
 *   17   1427 us   329.0 us [4.3x]    304.2 us [4.7x]
 * plus the Section VIII comparison against the FCCM'20 FPGA design
 * (6.56x / 6.48x at np = 36 / 42).
 */

#include <cstdio>

#include "bench_util.h"
#include "gpu/simulator.h"
#include "kernels/config_search.h"
#include "kernels/launcher.h"

int
main()
{
    using namespace hentt;
    bench::Header("Table II", "radix-2 vs SMEM vs SMEM+OT, np = 21");
    const gpu::Simulator sim;
    const std::size_t np = 21;

    const double paper_radix2[] = {166, 340, 693, 1427};
    const double paper_smem[] = {48.6, 92.0, 171.8, 329.0};
    const double paper_ot[] = {44.1, 84.2, 156.3, 304.2};

    std::printf("  %5s | %18s | %24s | %24s\n", "logN", "radix-2 (us)",
                "SMEM w/o OT (us) [x]", "SMEM w/ OT (us) [x]");
    for (unsigned log_n = 14; log_n <= 17; ++log_n) {
        const std::size_t n = std::size_t{1} << log_n;
        const unsigned i = log_n - 14;
        const double radix2 =
            kernels::EstimateRadix2(sim, n, np).time_us();
        const double smem =
            kernels::FindBestSmemConfig(sim, n, np).estimate.total_us;
        const double ot = kernels::FindBestSmemConfig(sim, n, np, 8, 2)
                              .estimate.total_us;
        std::printf("  %5u | %8.0f (p:%5.0f) | %7.1f [%4.1fx] (p:%5.1f "
                    "[%3.1fx]) | %7.1f [%4.1fx] (p:%5.1f [%3.1fx])\n",
                    log_n, radix2, paper_radix2[i], smem, radix2 / smem,
                    paper_smem[i], paper_radix2[i] / paper_smem[i], ot,
                    radix2 / ot, paper_ot[i],
                    paper_radix2[i] / paper_ot[i]);
    }

    bench::Section("Section VIII: vs FCCM'20 FPGA NTT [20]");
    for (std::size_t np_big : {std::size_t{36}, std::size_t{42}}) {
        const auto best =
            kernels::FindBestSmemConfig(sim, 1 << 17, np_big, 8, 2);
        // The paper reports outperforming [20] by 6.56x / 6.48x; [20]'s
        // absolute numbers follow from that ratio and the paper's own
        // measured times.
        const double paper_ratio = np_big == 36 ? 6.56 : 6.48;
        std::printf("  np=%zu: model %.1f us; paper reports %.2fx over "
                    "the FPGA design at this configuration\n",
                    np_big, best.estimate.total_us, paper_ratio);
    }
    return 0;
}
