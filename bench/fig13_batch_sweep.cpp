/**
 * Fig. 13 — the best-performing SMEM implementation at N = 2^17 across
 * batch sizes np, annotated with the corresponding logQ (each 60-bit
 * prime contributes ~60 bits of ciphertext modulus).
 *
 * Paper: past moderate batch sizes the GPU is saturated, so execution
 * time grows linearly with np.
 */

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "gpu/simulator.h"
#include "kernels/batch_workload.h"
#include "kernels/config_search.h"
#include "kernels/smem_kernel.h"

int
main()
{
    using namespace hentt;
    bench::Header("Fig. 13", "best SMEM config vs batch size, N = 2^17");
    const gpu::Simulator sim;
    const std::size_t n = 1 << 17;
    const std::size_t batches[] = {6, 12, 21, 30, 36, 42, 45};

    std::printf("  %6s %8s %14s %16s\n", "np", "logQ", "time (us)",
                "us per prime");
    double first_per = 0, last_per = 0;
    kernels::SmemConfig best21;
    for (std::size_t np : batches) {
        const auto best = kernels::FindBestSmemConfig(sim, n, np, 8, 2);
        const double per =
            best.estimate.total_us / static_cast<double>(np);
        if (np == batches[0]) {
            first_per = per;
        }
        if (np == 21) {
            best21 = best.config;
        }
        last_per = per;
        std::printf("  %6zu %8zu %14.1f %16.2f\n", np, np * 60,
                    best.estimate.total_us, per);
    }
    bench::Note("per-prime cost is flat once the GPU saturates -> total "
                "time is linear in np (paper Fig. 13)");
    bench::Ratio("per-prime cost np=6 vs np=45", first_per / last_per);

    // Measured counterpart: the same batch executed functionally on the
    // CPU, every sweep ONE ParallelFor dispatch over the rows
    // (NttBatchWorkload::ForEachRowParallel) — the same batching story
    // the HE execution layer uses, so the model's saturation argument
    // and the CPU layer share a dispatch path. Limited to the paper's
    // headline band to keep twiddle-table memory bounded.
    bench::Section("measured: CPU pool execution of the np=21 best config");
    std::printf("  lanes=%zu\n", GlobalThreadCount());
    std::printf("  %6s %14s %16s\n", "np", "time (ms)", "ms per prime");
    for (std::size_t np : {std::size_t{6}, std::size_t{12},
                           std::size_t{21}}) {
        kernels::NttBatchWorkload workload(n, np);
        workload.Randomize(/*seed=*/np);
        const kernels::SmemKernel kernel(best21);
        const auto t0 = std::chrono::steady_clock::now();
        kernel.Execute(workload);
        const auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        std::printf("  %6zu %14.2f %16.3f\n", np, ms,
                    ms / static_cast<double>(np));
    }
    bench::Note("one pool dispatch per batch; on one lane this is the "
                "serial loop, on many lanes the per-prime cost shows "
                "the CPU's version of the saturation curve");
    return 0;
}
