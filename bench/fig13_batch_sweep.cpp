/**
 * Fig. 13 — the best-performing SMEM implementation at N = 2^17 across
 * batch sizes np, annotated with the corresponding logQ (each 60-bit
 * prime contributes ~60 bits of ciphertext modulus).
 *
 * Paper: past moderate batch sizes the GPU is saturated, so execution
 * time grows linearly with np.
 */

#include <cstdio>

#include "bench_util.h"
#include "gpu/simulator.h"
#include "kernels/config_search.h"

int
main()
{
    using namespace hentt;
    bench::Header("Fig. 13", "best SMEM config vs batch size, N = 2^17");
    const gpu::Simulator sim;
    const std::size_t n = 1 << 17;
    const std::size_t batches[] = {6, 12, 21, 30, 36, 42, 45};

    std::printf("  %6s %8s %14s %16s\n", "np", "logQ", "time (us)",
                "us per prime");
    double first_per = 0, last_per = 0;
    for (std::size_t np : batches) {
        const auto best = kernels::FindBestSmemConfig(sim, n, np, 8, 2);
        const double per =
            best.estimate.total_us / static_cast<double>(np);
        if (np == batches[0]) {
            first_per = per;
        }
        last_per = per;
        std::printf("  %6zu %8zu %14.1f %16.2f\n", np, np * 60,
                    best.estimate.total_us, per);
    }
    bench::Note("per-prime cost is flat once the GPU saturates -> total "
                "time is linear in np (paper Fig. 13)");
    bench::Ratio("per-prime cost np=6 vs np=45", first_per / last_per);
    return 0;
}
