/**
 * @file
 * Benchmark for the serving layer (PR 10): cross-client batching
 * through the Coalescer, measured in-process (SessionManager +
 * Coalescer, no sockets — the wire is constant overhead per request;
 * what this bench gates is the coalescing claim itself).
 *
 * Scenario: S independent sessions (1/8/64/512), each submitting a
 * keyless Mul→ModSwitch program. Two server configurations:
 *
 *   batched   — the Coalescer admits up to 64 requests per wavefront
 *               (max_wait 2 ms), so the tensor-product kernel runs as
 *               one batched dispatch spanning every in-flight client;
 *   unbatched — the ablation (coalesce=false): every request executes
 *               as its own batch of one, i.e. per-session dispatch.
 *
 * Reported per session count: per-op wall time, ops/sec, and p50/p99
 * request latency (submit → settled). The acceptance series is
 * speedup_batched_vs_unbatched at 64 sessions — cross-client batching
 * must beat per-session dispatch, and the bench exits non-zero if it
 * does not. steady_state_allocs proves the serve hot loop (the
 * wavefront batch kernel on a warm arena with reused outputs) stays
 * off the heap; the per-request bookkeeping (queue nodes, result
 * maps) is intentionally outside that loop.
 *
 * Emits BENCH_serve.json (schema in docs/BENCHMARKS.md). Timing series
 * are machine-local; the speedup series travels cross-machine.
 *
 * Usage: bench_serve [--json PATH] [--threads T] [--reps R]
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "he/bgv.h"
#include "he/ciphertext_batch.h"
#include "serve/coalescer.h"
#include "serve/session.h"
#include "simd/simd_backend.h"

// ---------------------------------------------------------------------
// Allocation counter: global operator new replacement so the bench can
// prove the steady-state wavefront kernel does not touch the heap
// (same counter as bench_rns_batch / bench_he_pipeline).
// ---------------------------------------------------------------------
namespace {
std::atomic<long long> g_alloc_count{0};
}

void *
operator new(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size)) {
        return p;
    }
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace hentt::serve {
namespace {

using Clock = std::chrono::steady_clock;

double
Elapsed_ns(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

struct WaveResult {
    double total_ns = 0.0;  ///< submit-first → last-settled
    double p50_ns = 0.0;    ///< per-request submit→settled latency
    double p99_ns = 0.0;
    WireStats stats;
};

/** Waves per timed rep: enough consecutive waves that one rep spans
 *  tens of milliseconds, riding out scheduler noise on small hosts. */
constexpr int kWavesPerRep = 8;

/**
 * Run timed reps (plus one warm-up) of @p kWavesPerRep consecutive
 * waves. In each wave every one of @p session_count sessions submits
 * one Mul→ModSwitch program (both stages keyless, so they batch
 * across every client), then all results are collected. Keeps the
 * best rep by total wall time; total_ns comes back per wave.
 */
WaveResult
RunWave(const BatchConfig &config,
        const std::vector<std::shared_ptr<Session>> &all_sessions,
        std::size_t session_count,
        const std::shared_ptr<he::ScratchArena> &arena,
        const he::Ciphertext &ct_a, const he::Ciphertext &ct_b,
        int reps)
{
    const std::vector<WireProgram::Op> kProgram = {
        {WireOp::kMul, 0, 1},
        {WireOp::kModSwitch, 2, 0},
    };
    WaveResult best;
    for (int r = 0; r < reps + 1; ++r) {  // one warm-up rep
        Coalescer coalescer(config, arena);
        coalescer.Start();
        std::vector<u64> ids(session_count);
        std::vector<Clock::time_point> submitted(session_count);
        std::vector<double> latency_ns;
        latency_ns.reserve(session_count * kWavesPerRep);
        const auto t0 = Clock::now();
        for (int wave = 0; wave < kWavesPerRep; ++wave) {
            for (std::size_t s = 0; s < session_count; ++s) {
                submitted[s] = Clock::now();
                Result<u64> id = coalescer.Submit(
                    all_sessions[s], {ct_a, ct_b}, kProgram, {3});
                if (!id.ok()) {
                    std::fprintf(stderr, "submit failed: %s\n",
                                 id.status().ToString().c_str());
                    std::exit(1);
                }
                ids[s] = *id;
            }
            for (std::size_t s = 0; s < session_count; ++s) {
                const PollResult result =
                    coalescer.Wait(ids[s], all_sessions[s]->id);
                latency_ns.push_back(
                    Elapsed_ns(submitted[s], Clock::now()));
                if (!result.status.ok()) {
                    std::fprintf(stderr, "request failed: %s\n",
                                 result.status.ToString().c_str());
                    std::exit(1);
                }
            }
        }
        const double total =
            Elapsed_ns(t0, Clock::now()) / kWavesPerRep;
        const WireStats stats = coalescer.StatsSnapshot();
        coalescer.Stop();
        if (r == 0) {
            continue;
        }
        if (best.total_ns == 0.0 || total < best.total_ns) {
            std::sort(latency_ns.begin(), latency_ns.end());
            const std::size_t count = latency_ns.size();
            best.total_ns = total;
            best.p50_ns = latency_ns[count / 2];
            best.p99_ns = latency_ns[std::min(
                count - 1, (count * 99) / 100)];
            best.stats = stats;
        }
    }
    return best;
}

int
BenchMain(int argc, char **argv)
{
    int reps = 3;
    std::size_t threads = 0;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            threads = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
        }
    }
    if (threads == 0) {
        if (const char *env = std::getenv("HENTT_THREADS")) {
            threads = std::strtoull(env, nullptr, 10);
        }
    }
    if (threads == 0) {
        // Serving default: one lane per hardware thread. A floor of 4
        // (the throughput benches' choice) oversubscribes small hosts,
        // and oversubscription punishes exactly what this bench
        // measures — wide wavefront dispatches vs below-grain serial
        // singles.
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw == 0 ? 1 : hw;
    }

    // The suite's small-parameter class (tests use the same set): the
    // serving regime this bench gates is many small independent
    // requests, where fixed per-request costs — worker wakeups, graph
    // setup, per-op dispatch — rival kernel time, which is exactly
    // what cross-client coalescing amortises. At production degrees
    // the per-wavefront working set outgrows cache and kernel time
    // dominates on a serial host; those throughput-class numbers are
    // bench_he_pipeline's territory, and on multicore hosts wide
    // wavefronts additionally parallelize across lanes.
    he::HeParams params;
    params.degree = 64;
    params.prime_count = 2;
    params.prime_bits = 50;
    params.plain_modulus = 257;

    bench::Header("BENCH serve",
                  "cross-client batching: coalesced wavefronts vs "
                  "per-session dispatch");
    std::printf("config: N=%zu, limbs=%zu, lanes=%zu, "
                "workload=Mul+ModSwitch per session, %d waves/rep\n",
                params.degree, params.prime_count, threads,
                kWavesPerRep);

    constexpr std::size_t kSessionCounts[] = {1, 8, 64, 512};
    constexpr std::size_t kMaxSessions = 512;
    constexpr std::size_t kAblationSessions = 64;

    // Shared serving state, exactly as the daemon builds it: one
    // worker arena, one session registry; every session shares the
    // engine state (same params) and borrows the worker arena.
    auto arena = std::make_shared<he::ScratchArena>();
    SessionManager sessions(arena);
    std::vector<std::shared_ptr<Session>> all_sessions;
    for (std::size_t s = 0; s < kMaxSessions; ++s) {
        Result<std::shared_ptr<Session>> session =
            sessions.Create(params);
        if (!session.ok()) {
            std::fprintf(stderr, "session create failed: %s\n",
                         session.status().ToString().c_str());
            return 1;
        }
        all_sessions.push_back(*session);
    }

    // One encrypted operand pair, shared by every request (sessions
    // over one engine state hold mutually compatible ciphertexts).
    he::BgvScheme scheme(all_sessions.front()->ctx, /*seed=*/77);
    const he::SecretKey sk = scheme.KeyGen();
    he::Plaintext ma(params.degree), mb(params.degree);
    {
        Xoshiro256 rng(13);
        for (u64 &x : ma) {
            x = rng.NextBelow(params.plain_modulus);
        }
        for (u64 &x : mb) {
            x = rng.NextBelow(params.plain_modulus);
        }
    }
    const he::Ciphertext ct_a = scheme.Encrypt(sk, ma);
    const he::Ciphertext ct_b = scheme.Encrypt(sk, mb);

    SetGlobalThreadCount(threads);
    GlobalThreadPool();  // spin up workers outside the timed region

    BatchConfig batched;
    batched.max_batch = 64;
    batched.max_wait = std::chrono::microseconds(2000);
    BatchConfig unbatched;
    unbatched.coalesce = false;

    bench::Section("batched (coalesced wavefronts)");
    double batched_per_op_ns[4] = {};
    double batched_p50_ns[4] = {};
    double batched_p99_ns[4] = {};
    double batched_total_64_ns = 0.0;
    u64 coalesced_64 = 0, max_batch_64 = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        const std::size_t count = kSessionCounts[i];
        const WaveResult wave = RunWave(batched, all_sessions, count,
                                        arena, ct_a, ct_b, reps);
        batched_per_op_ns[i] = wave.total_ns / count;
        batched_p50_ns[i] = wave.p50_ns;
        batched_p99_ns[i] = wave.p99_ns;
        if (count == kAblationSessions) {
            batched_total_64_ns = wave.total_ns;
            coalesced_64 = wave.stats.coalesced_requests;
            max_batch_64 = wave.stats.max_batch_observed;
        }
        std::printf("  %4zu sessions: %9.1f us/op  %9.0f ops/s  "
                    "p50 %8.1f us  p99 %8.1f us  (max batch %llu)\n",
                    count, batched_per_op_ns[i] / 1e3,
                    1e9 / batched_per_op_ns[i], wave.p50_ns / 1e3,
                    wave.p99_ns / 1e3,
                    static_cast<unsigned long long>(
                        wave.stats.max_batch_observed));
    }

    bench::Section("unbatched ablation (per-session dispatch)");
    const WaveResult unbatched_wave =
        RunWave(unbatched, all_sessions, kAblationSessions, arena,
                ct_a, ct_b, reps);
    const double unbatched_per_op_ns =
        unbatched_wave.total_ns / kAblationSessions;
    std::printf("  %4zu sessions: %9.1f us/op  %9.0f ops/s  "
                "p50 %8.1f us  p99 %8.1f us\n",
                kAblationSessions, unbatched_per_op_ns / 1e3,
                1e9 / unbatched_per_op_ns,
                unbatched_wave.p50_ns / 1e3,
                unbatched_wave.p99_ns / 1e3);

    const double speedup =
        unbatched_wave.total_ns / batched_total_64_ns;
    bench::Ratio("batched vs unbatched (64)", speedup);

    // ------------------------------------------------------------------
    // The serve hot loop: once the coalescer has admitted a wavefront,
    // the kernels run over the worker arena with reused outputs — that
    // steady state must not allocate. (Per-request bookkeeping —
    // queue nodes, result maps, ciphertext copies in and out — is
    // per-request by design and excluded.)
    // ------------------------------------------------------------------
    long long steady_allocs = 0;
    {
        const he::HeContext &ctx = *all_sessions.front()->ctx;
        std::vector<const he::Ciphertext *> a(kAblationSessions, &ct_a);
        std::vector<const he::Ciphertext *> b(kAblationSessions, &ct_b);
        std::vector<he::Ciphertext> outs(kAblationSessions);
        std::vector<he::Ciphertext *> dst;
        for (he::Ciphertext &out : outs) {
            dst.push_back(&out);
        }
        he::BatchMul(ctx, a, b, dst);  // warm: arena + outputs sized
        he::BatchMul(ctx, a, b, dst);
        const long long before =
            g_alloc_count.load(std::memory_order_relaxed);
        for (int r = 0; r < 5; ++r) {
            he::BatchMul(ctx, a, b, dst);
        }
        steady_allocs =
            g_alloc_count.load(std::memory_order_relaxed) - before;
    }
    std::printf("\nsteady-state allocs (5 warm 64-wide wavefront "
                "kernels): %lld\n",
                steady_allocs);

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"serve\",\n"
            "  \"n\": %zu,\n"
            "  \"limbs\": %zu,\n"
            "  \"lanes\": %zu,\n"
            "  \"serve_batched_1_ns\": %.1f,\n"
            "  \"serve_batched_8_ns\": %.1f,\n"
            "  \"serve_batched_64_ns\": %.1f,\n"
            "  \"serve_batched_512_ns\": %.1f,\n"
            "  \"serve_p50_64_ns\": %.1f,\n"
            "  \"serve_p99_64_ns\": %.1f,\n"
            "  \"serve_unbatched_64_ns\": %.1f,\n"
            "  \"speedup_batched_vs_unbatched\": %.3f,\n"
            "  \"coalesced_requests_64\": %llu,\n"
            "  \"max_batch_observed_64\": %llu,\n"
            "  \"steady_state_allocs\": %lld,\n"
            "  \"simd_default_backend\": \"%s\",\n"
            "  \"avx2_available\": %s,\n"
            "  \"avx512_available\": %s\n"
            "}\n",
            params.degree, params.prime_count, threads,
            batched_per_op_ns[0], batched_per_op_ns[1],
            batched_per_op_ns[2], batched_per_op_ns[3],
            batched_p50_ns[2], batched_p99_ns[2], unbatched_per_op_ns,
            speedup,
            static_cast<unsigned long long>(coalesced_64),
            static_cast<unsigned long long>(max_batch_64),
            steady_allocs,
            simd::BackendName(simd::ActiveBackend()),
            simd::BackendAvailable(simd::Backend::kAvx2) ? "true"
                                                         : "false",
            simd::BackendAvailable(simd::Backend::kAvx512) ? "true"
                                                           : "false");
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }

    if (speedup <= 1.0) {
        std::fprintf(stderr,
                     "FAIL: cross-client batching did not beat the "
                     "unbatched ablation at %zu sessions "
                     "(speedup %.3f)\n",
                     kAblationSessions, speedup);
        return 1;
    }
    if (max_batch_64 <= 1) {
        std::fprintf(stderr,
                     "FAIL: no coalescing observed at %zu sessions\n",
                     kAblationSessions);
        return 1;
    }
    if (steady_allocs != 0) {
        std::fprintf(stderr,
                     "FAIL: steady-state wavefront kernel allocated "
                     "%lld times\n",
                     steady_allocs);
        return 1;
    }
    return 0;
}

}  // namespace
}  // namespace hentt::serve

int
main(int argc, char **argv)
{
    return hentt::serve::BenchMain(argc, argv);
}
