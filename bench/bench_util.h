/**
 * @file
 * Shared helpers for the figure/table reproduction benches: headers,
 * paper-reference annotation, and series printing. Every bench prints
 * the model's numbers next to the paper's reported values so the
 * reproduction can be judged line by line (EXPERIMENTS.md records the
 * comparison).
 */

#ifndef HENTT_BENCH_BENCH_UTIL_H
#define HENTT_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>

namespace hentt::bench {

inline void
Header(const std::string &experiment, const std::string &description)
{
    std::printf("==============================================================================\n");
    std::printf("%s — %s\n", experiment.c_str(), description.c_str());
    std::printf("Device model: NVIDIA Titan V (80 SMs, 652.8 GB/s peak, 86.7%% streaming ceiling)\n");
    std::printf("==============================================================================\n");
}

inline void
Section(const std::string &title)
{
    std::printf("\n--- %s ---\n", title.c_str());
}

inline void
Note(const std::string &text)
{
    std::printf("note: %s\n", text.c_str());
}

/** One series row: label, modeled value, optional paper value. */
inline void
Row(const std::string &label, double model, const char *unit,
    double paper = -1.0)
{
    if (paper >= 0) {
        std::printf("  %-24s %10.1f %-4s   (paper: %.1f)\n", label.c_str(),
                    model, unit, paper);
    } else {
        std::printf("  %-24s %10.1f %-4s\n", label.c_str(), model, unit);
    }
}

inline void
Ratio(const std::string &label, double model, double paper = -1.0)
{
    if (paper >= 0) {
        std::printf("  %-24s %9.2fx    (paper: %.2fx)\n", label.c_str(),
                    model, paper);
    } else {
        std::printf("  %-24s %9.2fx\n", label.c_str(), model);
    }
}

}  // namespace hentt::bench

#endif  // HENTT_BENCH_BENCH_UTIL_H
