/**
 * Ablation — OT factorization base sweep (paper Section VII: "dividing
 * into base-1024 performs best").
 *
 * The trade-off: smaller bases shrink the table further but add more
 * exponent arithmetic and (at the extreme) more chained multiplies;
 * larger bases converge back to the full-table footprint. We sweep the
 * base at the paper's headline configuration and report table size,
 * traffic, and modeled time.
 */

#include <cstdio>

#include "bench_util.h"
#include "gpu/simulator.h"
#include "kernels/config_search.h"
#include "ntt/ot_twiddle.h"

int
main()
{
    using namespace hentt;
    bench::Header("Ablation", "OT base sweep, N = 2^17, np = 21");
    const gpu::Simulator sim;
    const std::size_t n = 1 << 17;
    const std::size_t np = 21;

    std::printf("  %8s %16s %14s %12s\n", "base", "table entries",
                "DRAM (MB)", "time (us)");
    for (std::size_t base : {64, 256, 1024, 4096, 16384}) {
        auto best = kernels::FindBestSmemConfig(sim, n, np, 8, 2);
        kernels::SmemConfig cfg = best.config;
        cfg.ot_base = base;
        const auto est = sim.Estimate(kernels::SmemKernel(cfg).Plan(np));
        const double entries =
            static_cast<double>(base) + 2.0 * n / static_cast<double>(base);
        std::printf("  %8zu %16.0f %14.1f %12.1f%s\n", base, entries,
                    est.dram_bytes / 1e6, est.total_us,
                    base == 1024 ? "   (paper's choice)" : "");
    }
    bench::Note("bases near sqrt(2N) = 512..1024 minimize the table "
                "(b + 2N/b), matching the paper's base-1024 pick");
    return 0;
}
