/**
 * google-benchmark suite instrumenting a real HE ciphertext multiply
 * to measure the NTT's share — the paper's motivating statistic
 * (Section I: NTT/iNTT is 34-50% of ciphertext multiplication
 * depending on parameters).
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <optional>

#include "he/bgv.h"
#include "poly/rns_poly.h"

namespace {

using namespace hentt;

struct HeFixture {
    HeFixture()
    {
        he::HeParams params;
        params.degree = 1 << 12;
        params.prime_count = 4;
        params.prime_bits = 55;
        params.plain_modulus = 65537;
        ctx = std::make_shared<he::HeContext>(params);
        scheme = std::make_unique<he::BgvScheme>(ctx, 3);
        sk.emplace(scheme->KeyGen());
        he::Plaintext m(params.degree, 7);
        ct_a = scheme->Encrypt(*sk, m);
        ct_b = scheme->Encrypt(*sk, m);
    }

    std::shared_ptr<he::HeContext> ctx;
    std::unique_ptr<he::BgvScheme> scheme;
    std::optional<he::SecretKey> sk;
    he::Ciphertext ct_a, ct_b;
};

HeFixture &
Fx()
{
    static HeFixture fx;
    return fx;
}

void
BM_HeCiphertextMultiply(benchmark::State &state)
{
    auto &fx = Fx();
    for (auto _ : state) {
        auto prod = fx.scheme->Mul(fx.ct_a, fx.ct_b);
        benchmark::DoNotOptimize(prod.parts.data());
    }
}

void
BM_HeMultiplyNttShareOnly(benchmark::State &state)
{
    // The forward+inverse transforms a Mul performs: 4 forward (2 parts
    // x 2 operands) + 3 inverse (tensor outputs), all np rows each.
    auto &fx = Fx();
    auto parts = fx.ct_a.parts;
    for (auto _ : state) {
        for (int rep = 0; rep < 4; ++rep) {
            RnsPoly p = parts[rep % 2];
            p.ToEvaluation();
            benchmark::DoNotOptimize(&p);
        }
        for (int rep = 0; rep < 3; ++rep) {
            RnsPoly p = parts[rep % 2];
            p.ToEvaluation();
            p.ToCoefficient();
            benchmark::DoNotOptimize(&p);
        }
    }
}

void
BM_HeEncrypt(benchmark::State &state)
{
    auto &fx = Fx();
    he::Plaintext m(fx.ctx->degree(), 5);
    for (auto _ : state) {
        auto ct = fx.scheme->Encrypt(*fx.sk, m);
        benchmark::DoNotOptimize(ct.parts.data());
    }
}

void
BM_HeDecrypt(benchmark::State &state)
{
    auto &fx = Fx();
    for (auto _ : state) {
        auto m = fx.scheme->Decrypt(*fx.sk, fx.ct_a);
        benchmark::DoNotOptimize(m.data());
    }
}

BENCHMARK(BM_HeCiphertextMultiply)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HeMultiplyNttShareOnly)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HeEncrypt)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HeDecrypt)->Unit(benchmark::kMillisecond);

}  // namespace
