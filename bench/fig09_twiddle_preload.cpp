/**
 * Fig. 9 — Kernel-1 with and without preloading its twiddle slice into
 * SMEM, radices 32..512, N = 2^17, np = 21.
 *
 * Paper: preloading gains 8.4% on average (the early-stage tables are
 * small — Fig. 8 — so staging them once per block beats re-fetching
 * them every per-thread pass).
 */

#include <cmath>
#include <cstdio>
#include <iterator>

#include "bench_util.h"
#include "gpu/simulator.h"
#include "kernels/smem_kernel.h"

int
main()
{
    using namespace hentt;
    bench::Header("Fig. 9", "Kernel-1 twiddle preload into SMEM");
    const gpu::Simulator sim;
    const std::size_t n = 1 << 17;
    const std::size_t k1_sizes[] = {32, 64, 128, 256, 512};

    std::printf("  %10s %18s %18s %10s\n", "Kernel-1", "w/o storing (us)",
                "w/ storing (us)", "speedup");
    double geo = 1.0;
    for (std::size_t k1 : k1_sizes) {
        kernels::SmemConfig cfg;
        cfg.kernel1_size = k1;
        cfg.kernel2_size = n / k1;
        cfg.points_per_thread = 8;

        cfg.preload_twiddles = false;
        const auto without =
            sim.Estimate(kernels::SmemKernel(cfg).PlanKernel1(21));
        cfg.preload_twiddles = true;
        const auto with =
            sim.Estimate(kernels::SmemKernel(cfg).PlanKernel1(21));
        const double speedup = without.total_us / with.total_us;
        geo *= speedup;
        std::printf("  %10zu %18.1f %18.1f %9.1f%%\n", k1,
                    without.total_us, with.total_us,
                    (speedup - 1.0) * 100.0);
    }
    geo = std::pow(geo, 1.0 / std::size(k1_sizes));
    bench::Ratio("average Kernel-1 speedup", geo, 1.084);
    return 0;
}
