/**
 * Fig. 8 — relative size of the precomputed twiddle table vs the input
 * data at each radix-2 NTT stage.
 *
 * Paper: the per-stage table doubles every stage (2^(s-1) entries at
 * stage s), staying negligible in the early stages — which is why
 * storing the early-stage tables in SMEM (Fig. 9) and generating the
 * late-stage ones on the fly (Section VII) both pay off.
 */

#include <cstdio>

#include "bench_util.h"
#include "kernels/cost_constants.h"

int
main()
{
    using namespace hentt;
    bench::Header("Fig. 8", "per-stage twiddle table vs input size");
    const unsigned log_n = 17;
    const double n = static_cast<double>(1 << log_n);
    const double input_words = n;  // one word per element

    std::printf("  %6s %22s %22s\n", "stage", "twiddle entries",
                "relative size (input=1)");
    for (unsigned s = 1; s <= log_n; ++s) {
        const double entries = static_cast<double>(1u << (s - 1));
        // Each entry is a twiddle + its Shoup companion (2 words).
        const double words = entries * 2.0;
        std::printf("  %6u %22.0f %22.4f\n", s, entries,
                    words / input_words);
    }
    bench::Note("the table reaches input size at the final stage and "
                "crosses 1.0 only there — early stages fit easily in "
                "SMEM (paper Fig. 8)");
    return 0;
}
