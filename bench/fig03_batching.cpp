/**
 * Fig. 3 — execution time and DRAM utilization of the radix-2 NTT (a)
 * and DFT (b) across batch sizes, N = 2^17.
 *
 * Paper: per-NTT time improves 1.92x from batch 1 to 21 (DFT: 1.84x)
 * and saturates past a batch of ~5; at batch 21 the NTT reaches 86.7%
 * of peak DRAM bandwidth.
 */

#include <cstdio>

#include "bench_util.h"
#include "gpu/simulator.h"
#include "kernels/dft_kernels.h"
#include "kernels/radix2_kernel.h"

int
main()
{
    using namespace hentt;
    bench::Header("Fig. 3", "radix-2 NTT/DFT batching sweep, N = 2^17");
    const gpu::Simulator sim;
    const std::size_t n = 1 << 17;
    const std::size_t batches[] = {1, 2, 3, 5, 8, 13, 21};

    bench::Section("(a) NTT");
    std::printf("  %6s %14s %14s %12s\n", "batch", "total (us)",
                "per-NTT (us)", "DRAM util");
    double ntt_first = 0, ntt_last = 0;
    for (std::size_t b : batches) {
        const auto est = sim.Estimate(kernels::Radix2Kernel().Plan(n, b));
        const double per = est.total_us / static_cast<double>(b);
        if (b == 1) {
            ntt_first = per;
        }
        ntt_last = per;
        std::printf("  %6zu %14.1f %14.1f %11.1f%%\n", b, est.total_us,
                    per, est.dram_utilization * 100.0);
    }
    bench::Ratio("per-NTT speedup 1->21", ntt_first / ntt_last, 1.92);

    bench::Section("(b) DFT");
    std::printf("  %6s %14s %14s %12s\n", "batch", "total (us)",
                "per-DFT (us)", "DRAM util");
    double dft_first = 0, dft_last = 0;
    for (std::size_t b : batches) {
        const auto est = sim.Estimate(kernels::DftRadix2Plan(n, b));
        const double per = est.total_us / static_cast<double>(b);
        if (b == 1) {
            dft_first = per;
        }
        dft_last = per;
        std::printf("  %6zu %14.1f %14.1f %11.1f%%\n", b, est.total_us,
                    per, est.dram_utilization * 100.0);
    }
    bench::Ratio("per-DFT speedup 1->21", dft_first / dft_last, 1.84);
    bench::Note("paper reports per-transform times (2751.5 -> 1426.4 us "
                "for NTT); our absolute batch-1 number differs because "
                "the authors' baseline under-fills the GPU in ways the "
                "model does not replicate, but the saturation shape and "
                "the batch-21 bandwidth ceiling match (see "
                "EXPERIMENTS.md)");
    return 0;
}
