/**
 * google-benchmark micro suite: the *actual CPU implementations* in the
 * library, timed for real (no GPU model involved). Useful both as a
 * regression harness and to sanity-check the algorithmic trends the
 * paper leans on (radix-2 vs blocked vs Stockham, Shoup vs native vs
 * Barrett, OT overhead).
 */

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>

#include "common/primegen.h"
#include "common/random.h"
#include "ntt/ntt32.h"
#include "ntt/ntt_engine.h"
#include "ntt/ntt_lazy.h"
#include "simd/simd_backend.h"

namespace {

using namespace hentt;

struct Fixture {
    explicit Fixture(std::size_t n)
        : p(GenerateNttPrimes(2 * n, 60, 1)[0]), engine(n, p), data(n)
    {
        Xoshiro256 rng(n);
        for (u64 &x : data) {
            x = rng.NextBelow(p);
        }
    }

    u64 p;
    NttEngine engine;
    std::vector<u64> data;
};

Fixture &
GetFixture(std::size_t n)
{
    static std::map<std::size_t, std::unique_ptr<Fixture>> cache;
    auto &slot = cache[n];
    if (!slot) {
        slot = std::make_unique<Fixture>(n);
    }
    return *slot;
}

void
BM_NttRadix2(benchmark::State &state)
{
    auto &fx = GetFixture(static_cast<std::size_t>(state.range(0)));
    std::vector<u64> v = fx.data;
    for (auto _ : state) {
        v = fx.data;
        fx.engine.Forward(v, NttAlgorithm::kRadix2);
        benchmark::DoNotOptimize(v.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}

void
BM_NttRadix2Native(benchmark::State &state)
{
    auto &fx = GetFixture(static_cast<std::size_t>(state.range(0)));
    std::vector<u64> v = fx.data;
    for (auto _ : state) {
        v = fx.data;
        fx.engine.Forward(v, NttAlgorithm::kRadix2Native);
        benchmark::DoNotOptimize(v.data());
    }
}

void
BM_NttRadix2Barrett(benchmark::State &state)
{
    auto &fx = GetFixture(static_cast<std::size_t>(state.range(0)));
    std::vector<u64> v = fx.data;
    for (auto _ : state) {
        v = fx.data;
        fx.engine.Forward(v, NttAlgorithm::kRadix2Barrett);
        benchmark::DoNotOptimize(v.data());
    }
}

void
BM_NttHighRadix(benchmark::State &state)
{
    auto &fx = GetFixture(static_cast<std::size_t>(state.range(0)));
    std::vector<u64> v = fx.data;
    for (auto _ : state) {
        v = fx.data;
        fx.engine.Forward(v, NttAlgorithm::kHighRadix,
                          static_cast<std::size_t>(state.range(1)));
        benchmark::DoNotOptimize(v.data());
    }
}

void
BM_NttStockham(benchmark::State &state)
{
    auto &fx = GetFixture(static_cast<std::size_t>(state.range(0)));
    std::vector<u64> v = fx.data;
    for (auto _ : state) {
        v = fx.data;
        fx.engine.Forward(v, NttAlgorithm::kStockham);
        benchmark::DoNotOptimize(v.data());
    }
}

void
BM_NttOt(benchmark::State &state)
{
    auto &fx = GetFixture(static_cast<std::size_t>(state.range(0)));
    std::vector<u64> v = fx.data;
    for (auto _ : state) {
        v = fx.data;
        fx.engine.Forward(v, NttAlgorithm::kRadix2Ot, 16,
                          static_cast<unsigned>(state.range(1)));
        benchmark::DoNotOptimize(v.data());
    }
}

void
BM_NttRadix2Lazy(benchmark::State &state)
{
    auto &fx = GetFixture(static_cast<std::size_t>(state.range(0)));
    std::vector<u64> v = fx.data;
    for (auto _ : state) {
        v = fx.data;
        NttRadix2Lazy(v, fx.engine.table());
        benchmark::DoNotOptimize(v.data());
    }
}

/**
 * The butterfly-bound microbench, per SIMD backend (range(1): 0 =
 * scalar, 1 = avx2, 2 = avx512) x stage walker (range(2): 0 = fused
 * radix-4, the default; 1 = radix-2 ablation walk, one pass per
 * level). The per-backend radix-2 vs radix-4 columns are how the pass
 * reduction of the fused walker shows up here and in
 * BENCH_rns_batch.json; the backend columns remain the acceptance
 * gauge for new backends (AVX2 >= 1.5x scalar at N = 4096).
 */
void
BM_NttRadix2LazyBackend(benchmark::State &state)
{
    const auto backend = static_cast<simd::Backend>(state.range(1));
    if (!simd::BackendAvailable(backend)) {
        state.SkipWithError("backend unavailable on this host");
        return;
    }
    const bool unfused = state.range(2) != 0;
    simd::ForceBackend(backend);
    auto &fx = GetFixture(static_cast<std::size_t>(state.range(0)));
    std::vector<u64> v = fx.data;
    for (auto _ : state) {
        v = fx.data;
        if (unfused) {
            NttRadix2LazyUnfused(v, fx.engine.table());
        } else {
            NttRadix2Lazy(v, fx.engine.table());
        }
        benchmark::DoNotOptimize(v.data());
    }
    simd::ResetBackend();
    state.SetItemsProcessed(state.iterations() * state.range(0));
    state.SetLabel(std::string(simd::BackendName(backend)) +
                   (unfused ? "/radix2" : "/radix4"));
}

/** Inverse counterpart, per backend x stage walker. */
void
BM_InttBackend(benchmark::State &state)
{
    const auto backend = static_cast<simd::Backend>(state.range(1));
    if (!simd::BackendAvailable(backend)) {
        state.SkipWithError("backend unavailable on this host");
        return;
    }
    const bool unfused = state.range(2) != 0;
    simd::ForceBackend(backend);
    auto &fx = GetFixture(static_cast<std::size_t>(state.range(0)));
    std::vector<u64> v = fx.data;
    for (auto _ : state) {
        v = fx.data;
        if (unfused) {
            InttRadix2LazyUnfused(v, fx.engine.table());
        } else {
            InttRadix2Lazy(v, fx.engine.table());
        }
        benchmark::DoNotOptimize(v.data());
    }
    simd::ResetBackend();
    state.SetLabel(std::string(simd::BackendName(backend)) +
                   (unfused ? "/radix2" : "/radix4"));
}

void
BM_Ntt32(benchmark::State &state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    static std::map<std::size_t, std::unique_ptr<Ntt32Engine>> engines;
    auto &slot = engines[n];
    if (!slot) {
        slot = std::make_unique<Ntt32Engine>(
            n, static_cast<u32>(GenerateNttPrimes(2 * n, 29, 1)[0]));
    }
    Xoshiro256 rng(n);
    std::vector<u32> data(n);
    for (u32 &x : data) {
        x = static_cast<u32>(rng.NextBelow(slot->modulus()));
    }
    std::vector<u32> v = data;
    for (auto _ : state) {
        v = data;
        slot->Forward(v);
        benchmark::DoNotOptimize(v.data());
    }
}

void
BM_Intt(benchmark::State &state)
{
    auto &fx = GetFixture(static_cast<std::size_t>(state.range(0)));
    std::vector<u64> v = fx.data;
    for (auto _ : state) {
        v = fx.data;
        fx.engine.Inverse(v);
        benchmark::DoNotOptimize(v.data());
    }
}

void
BM_PolyMultiply(benchmark::State &state)
{
    auto &fx = GetFixture(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        auto c = fx.engine.Multiply(fx.data, fx.data);
        benchmark::DoNotOptimize(c.data());
    }
}

BENCHMARK(BM_NttRadix2)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);
BENCHMARK(BM_NttRadix2Native)->Arg(1 << 14);
BENCHMARK(BM_NttRadix2Barrett)->Arg(1 << 14);
BENCHMARK(BM_NttStockham)->Arg(1 << 14);
BENCHMARK(BM_NttHighRadix)
    ->Args({1 << 14, 4})
    ->Args({1 << 14, 16})
    ->Args({1 << 14, 64});
BENCHMARK(BM_NttOt)->Args({1 << 14, 1})->Args({1 << 14, 2});
BENCHMARK(BM_NttRadix2Lazy)->Arg(1 << 14);
BENCHMARK(BM_NttRadix2LazyBackend)
    ->Args({4096, 0, 0})
    ->Args({4096, 0, 1})
    ->Args({4096, 1, 0})
    ->Args({4096, 1, 1})
    ->Args({4096, 2, 0})
    ->Args({4096, 2, 1})
    ->Args({1 << 14, 0, 0})
    ->Args({1 << 14, 1, 0})
    ->Args({1 << 14, 2, 0});
BENCHMARK(BM_InttBackend)
    ->Args({4096, 0, 0})
    ->Args({4096, 0, 1})
    ->Args({4096, 1, 0})
    ->Args({4096, 1, 1})
    ->Args({4096, 2, 0})
    ->Args({4096, 2, 1});
BENCHMARK(BM_Ntt32)->Arg(1 << 14);
BENCHMARK(BM_Intt)->Arg(1 << 14);
BENCHMARK(BM_PolyMultiply)->Arg(1 << 12)->Arg(1 << 14);

}  // namespace
