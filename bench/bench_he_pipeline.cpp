/**
 * @file
 * Benchmark for the ciphertext-level batched HE pipeline (PR 2): a full
 * Mul + Relinearize chain through three execution paths.
 *
 *   pr1     — the PR 1 formulation reconstructed: per-RnsPoly dispatch
 *             (each part transformed by its own pool job) and
 *             coefficient-domain relinearization keys, so every gadget
 *             product re-transforms the digit and the key
 *             (4*np^2 forward NTT rows per Relinearize);
 *   batched — the ciphertext-level kernels (he/ciphertext_batch.h):
 *             one lazy forward dispatch per op spanning all parts x
 *             limbs, eval-domain keys (np^2 forward rows per
 *             Relinearize), evaluation-domain gadget accumulation;
 *   graph   — HeOpGraph running independent Mul+Relin chains in one
 *             wavefront, so their stages share dispatches.
 *
 * PR 3 adds the fused Relinearize→ModSwitch stage: the same chain
 * continued one step down the modulus chain, measured unfused
 * (Relinearize then ModSwitch — the PR 2 path) against the fused
 * BatchRelinModSwitch, with the element-wise pass counts and the
 * scratch-arena steady-state allocation count machine-checked.
 *
 * Emits BENCH_he_pipeline.json with the measured times, the speedups,
 * the per-path forward-NTT counts for one Relinearize (the PR 2
 * acceptance criterion), and the fused-stage pass/alloc counts (the
 * PR 3 criterion: strictly fewer standalone element-wise sweeps and
 * zero steady-state heap allocations).
 *
 * Usage: bench_he_pipeline [--json PATH] [--threads T] [--reps R]
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "he/bgv.h"
#include "he/ciphertext_batch.h"
#include "he/he_graph.h"
#include "ntt/ntt_engine.h"
#include "simd/simd_backend.h"

// ---------------------------------------------------------------------
// Allocation counter: global operator new replacement so the bench can
// prove the steady-state fused stage does not touch the heap (same
// counter as bench_rns_batch).
// ---------------------------------------------------------------------
namespace {
std::atomic<long long> g_alloc_count{0};
}

void *
operator new(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size)) {
        return p;
    }
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace hentt::he {
namespace {

using Clock = std::chrono::steady_clock;

double
Elapsed_ns(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

template <typename Fn>
double
TimeBest_ns(int reps, Fn &&fn)
{
    double best = 0.0;
    for (int r = 0; r < reps + 2; ++r) {  // two warm-up reps
        const auto t0 = Clock::now();
        fn();
        const auto t1 = Clock::now();
        const double ns = Elapsed_ns(t0, t1);
        if (r >= 2 && (best == 0.0 || ns < best)) {
            best = ns;
        }
    }
    return best;
}

/** Copy of @p x transformed to the evaluation domain if needed. */
RnsPoly
ToEvalStrict(const RnsPoly &x)
{
    RnsPoly y = x;
    if (y.domain() == RnsPoly::Domain::kCoefficient) {
        y.ToEvaluation();
    }
    return y;
}

/** The PR 1 tensor product: each part transformed by its own pool
 *  dispatch, strict (fully reduced) forwards. */
Ciphertext
Pr1Mul(const Ciphertext &a, const Ciphertext &b)
{
    const RnsPoly a0 = ToEvalStrict(a.parts[0]);
    const RnsPoly a1 = ToEvalStrict(a.parts[1]);
    const RnsPoly b0 = ToEvalStrict(b.parts[0]);
    const RnsPoly b1 = ToEvalStrict(b.parts[1]);

    RnsPoly c0 = a0 * b0;
    RnsPoly c1 = a0 * b1;
    c1.MultiplyAccumulate(a1, b0);
    RnsPoly c2 = a1 * b1;
    c0.ToCoefficient();
    c1.ToCoefficient();
    c2.ToCoefficient();

    Ciphertext out;
    out.parts.push_back(std::move(c0));
    out.parts.push_back(std::move(c1));
    out.parts.push_back(std::move(c2));
    return out;
}

/** The PR 1 relinearization: coefficient-domain keys, so every gadget
 *  product runs a full RnsPoly::Multiply that re-transforms both the
 *  digit and the key (4*np^2 forward NTT rows total). */
Ciphertext
Pr1Relinearize(const HeContext &ctx, const Ciphertext &ct,
               const std::vector<RnsPoly> &key_b,
               const std::vector<RnsPoly> &key_a)
{
    const auto &ntt_ctx = *ctx.ntt_context();
    const RnsBasis &basis = ctx.basis();
    const std::size_t np = basis.prime_count();
    const RnsPoly &c2 = ct.parts[2];

    RnsPoly c0 = ct.parts[0];
    RnsPoly c1 = ct.parts[1];
    RnsPoly digit(ctx.ntt_context());
    for (std::size_t j = 0; j < np; ++j) {
        const u64 qj = basis.prime(j);
        const u64 q_tilde = InvMod(ctx.q_hat(j, j), qj);
        const u64 q_tilde_bar = ShoupPrecompute(q_tilde, qj);
        for (std::size_t k = 0; k < ctx.degree(); ++k) {
            const u64 v =
                MulModShoup(c2.row(j)[k], q_tilde, q_tilde_bar, qj);
            for (std::size_t i = 0; i < np; ++i) {
                digit.row(i)[k] = ntt_ctx.reducer(i).Reduce(v);
            }
        }
        c0 += RnsPoly::Multiply(digit, key_b[j]);
        c1 += RnsPoly::Multiply(digit, key_a[j]);
    }
    return Ciphertext{{std::move(c0), std::move(c1)}};
}

int
BenchMain(int argc, char **argv)
{
    int reps = 5;
    std::size_t threads = 0;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--threads") == 0 &&
                   i + 1 < argc) {
            threads = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
        }
    }
    if (threads == 0) {
        if (const char *env = std::getenv("HENTT_THREADS")) {
            threads = std::strtoull(env, nullptr, 10);
        }
    }
    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw < 4 ? 4 : hw;
    }

    HeParams params;
    params.degree = 4096;
    params.prime_count = 8;
    params.prime_bits = 50;
    params.plain_modulus = 65537;
    auto ctx = std::make_shared<HeContext>(params);
    BgvScheme scheme(ctx, /*seed=*/99);
    const SecretKey sk = scheme.KeyGen();
    const RelinKey rk = scheme.MakeRelinKey(sk);
    const std::size_t np = params.prime_count;

    bench::Header("BENCH he_pipeline",
                  "ciphertext-level batched Mul+Relinearize vs. the "
                  "PR 1 per-RnsPoly dispatch path");
    std::printf("config: N=%zu, limbs=%zu, lanes=%zu\n", params.degree,
                np, threads);

    // Coefficient-domain key copies for the PR 1 baseline.
    std::vector<RnsPoly> key_b, key_a;
    for (const RnsPoly &poly : rk.at_level(np).b) {
        RnsPoly copy = poly;
        copy.ToCoefficient();
        key_b.push_back(std::move(copy));
    }
    for (const RnsPoly &poly : rk.at_level(np).a) {
        RnsPoly copy = poly;
        copy.ToCoefficient();
        key_a.push_back(std::move(copy));
    }

    Plaintext ma(params.degree), mb(params.degree);
    {
        Xoshiro256 rng(3);
        for (u64 &x : ma) {
            x = rng.NextBelow(params.plain_modulus);
        }
        for (u64 &x : mb) {
            x = rng.NextBelow(params.plain_modulus);
        }
    }
    const Ciphertext ct_a = scheme.Encrypt(sk, ma);
    const Ciphertext ct_b = scheme.Encrypt(sk, mb);

    // Correctness cross-check: both paths must decrypt to the same
    // plaintext product.
    {
        const Ciphertext ref =
            Pr1Relinearize(*ctx, Pr1Mul(ct_a, ct_b), key_b, key_a);
        const Ciphertext fast =
            scheme.Relinearize(scheme.Mul(ct_a, ct_b), rk);
        if (scheme.Decrypt(sk, ref) != scheme.Decrypt(sk, fast)) {
            std::fprintf(stderr,
                         "MISMATCH: pipeline paths decrypt differently\n");
            return 1;
        }
    }

    // Forward-NTT budget per Relinearize (the acceptance criterion).
    const Ciphertext prod = scheme.Mul(ct_a, ct_b);
    ResetNttOpCounts();
    (void)Pr1Relinearize(*ctx, prod, key_b, key_a);
    const u64 pr1_fwd = GetNttOpCounts().forward;
    ResetNttOpCounts();
    (void)scheme.Relinearize(prod, rk);
    const u64 batched_fwd = GetNttOpCounts().forward;

    SetGlobalThreadCount(threads);
    SetParallelGrain(1);
    GlobalThreadPool();  // spin up workers outside the timed region

    bench::Section("Mul + Relinearize chain");
    const double pr1_ns = TimeBest_ns(reps, [&] {
        (void)Pr1Relinearize(*ctx, Pr1Mul(ct_a, ct_b), key_b, key_a);
    });
    const double batched_ns = TimeBest_ns(reps, [&] {
        (void)scheme.Relinearize(scheme.Mul(ct_a, ct_b), rk);
    });

    // Graph path: 4 independent Mul+Relin chains in one wavefront.
    constexpr std::size_t kGraphOps = 4;
    const double graph_ns = TimeBest_ns(reps, [&] {
        HeOpGraph graph(scheme, &rk);
        std::vector<CtFuture> outs;
        for (std::size_t i = 0; i < kGraphOps; ++i) {
            const CtFuture x = graph.Input(ct_a);
            const CtFuture y = graph.Input(ct_b);
            outs.push_back(graph.MulRelin(x, y));
        }
        graph.Execute();
    });
    const double graph_per_op_ns = graph_ns / kGraphOps;

    bench::Row("pr1 (per-RnsPoly)", pr1_ns / 1e3, "us");
    bench::Row("batched (ct-level)", batched_ns / 1e3, "us");
    bench::Row("graph (per op, x4)", graph_per_op_ns / 1e3, "us");
    bench::Ratio("batched vs pr1", pr1_ns / batched_ns);
    bench::Ratio("graph vs pr1", pr1_ns / graph_per_op_ns);

    // ------------------------------------------------------------------
    // Fused Relinearize→ModSwitch vs the unfused PR 2 chain (PR 3).
    // ------------------------------------------------------------------
    bench::Section("Relinearize -> ModSwitch (fused vs unfused)");
    // Interleaved, steady-state measurement: both paths run through the
    // batch kernels with reused outputs (warm arena), alternating
    // inside one rep loop so slow container drift hits both equally;
    // the saved passes are a percent-level effect, so triple the reps.
    double unfused_ms_ns = 0.0, fused_ms_ns = 0.0;
    {
        Ciphertext relin_out, ms_out, fused_out;
        const Ciphertext *src[] = {&prod};
        Ciphertext *relin_dst[] = {&relin_out};
        Ciphertext *ms_dst[] = {&ms_out};
        Ciphertext *fused_dst[] = {&fused_out};
        const int total = reps * 3;
        for (int r = 0; r < total + 2; ++r) {  // two warm-up reps
            const auto t0 = Clock::now();
            BatchRelinearize(*ctx, rk, src, relin_dst);
            {
                const Ciphertext *ms_src[] = {&relin_out};
                BatchModSwitch(*ctx, ms_src, ms_dst);
            }
            const auto t1 = Clock::now();
            BatchRelinModSwitch(*ctx, rk, src, fused_dst);
            const auto t2 = Clock::now();
            if (r < 2) {
                continue;
            }
            const double u = Elapsed_ns(t0, t1);
            const double f = Elapsed_ns(t1, t2);
            if (unfused_ms_ns == 0.0 || u < unfused_ms_ns) {
                unfused_ms_ns = u;
            }
            if (fused_ms_ns == 0.0 || f < fused_ms_ns) {
                fused_ms_ns = f;
            }
        }
    }
    bench::Row("unfused (PR 2 chain)", unfused_ms_ns / 1e3, "us");
    bench::Row("fused (one stage)", fused_ms_ns / 1e3, "us");
    bench::Ratio("fused vs unfused", unfused_ms_ns / fused_ms_ns);

    // Standalone element-wise sweeps (destination limb rows) — the
    // quantity the fusion removes; transforms are identical either way.
    ResetNttOpCounts();
    (void)scheme.ModSwitch(scheme.Relinearize(prod, rk));
    const NttOpCounts unfused_counts = GetNttOpCounts();
    ResetNttOpCounts();
    (void)scheme.RelinModSwitch(prod, rk);
    const NttOpCounts fused_counts = GetNttOpCounts();
    std::printf("  elementwise rows: unfused %llu, fused %llu "
                "(saved %llu)\n",
                static_cast<unsigned long long>(
                    unfused_counts.elementwise),
                static_cast<unsigned long long>(fused_counts.elementwise),
                static_cast<unsigned long long>(
                    unfused_counts.elementwise -
                    fused_counts.elementwise));

    // Steady-state allocation count of the fused stage: warmed arena +
    // reused output must keep 5 calls off the heap entirely.
    long long relin_ms_allocs = 0;
    {
        Ciphertext ms_out;
        const Ciphertext *ms_src[] = {&prod};
        Ciphertext *ms_dst[] = {&ms_out};
        BatchRelinModSwitch(*ctx, rk, ms_src, ms_dst);
        BatchRelinModSwitch(*ctx, rk, ms_src, ms_dst);
        const long long before =
            g_alloc_count.load(std::memory_order_relaxed);
        for (int r = 0; r < 5; ++r) {
            BatchRelinModSwitch(*ctx, rk, ms_src, ms_dst);
        }
        relin_ms_allocs =
            g_alloc_count.load(std::memory_order_relaxed) - before;
    }
    std::printf("  steady-state allocs (5 fused calls): %lld\n",
                relin_ms_allocs);

    // ------------------------------------------------------------------
    // SIMD backend columns: the steady-state fused stage per backend
    // (warm arena, reused output), one lane, so the vectorized inner
    // loops show up without pool noise.
    // ------------------------------------------------------------------
    bench::Section("fused RelinModSwitch per simd backend (1 lane)");
    SetGlobalThreadCount(1);
    const bool avx2_available =
        simd::BackendAvailable(simd::Backend::kAvx2);
    const bool avx512_available =
        simd::BackendAvailable(simd::Backend::kAvx512);
    double fused_backend_ns[simd::kBackendCount] = {};
    {
        Ciphertext ms_out;
        const Ciphertext *ms_src[] = {&prod};
        Ciphertext *ms_dst[] = {&ms_out};
        for (const auto backend : simd::kAllBackends) {
            if (!simd::BackendAvailable(backend)) {
                continue;
            }
            simd::ForceBackend(backend);
            const std::size_t slot = static_cast<std::size_t>(backend);
            fused_backend_ns[slot] = TimeBest_ns(reps, [&] {
                BatchRelinModSwitch(*ctx, rk, ms_src, ms_dst);
            });
            bench::Row(std::string("fused ") +
                           simd::BackendName(backend),
                       fused_backend_ns[slot] / 1e3, "us");
        }
        simd::ResetBackend();
    }
    if (avx2_available) {
        bench::Ratio("fused avx2 vs scalar",
                     fused_backend_ns[0] / fused_backend_ns[1]);
    }
    if (avx512_available) {
        bench::Ratio(
            "fused avx512 vs avx2",
            fused_backend_ns[1] /
                fused_backend_ns[static_cast<std::size_t>(
                    simd::Backend::kAvx512)]);
    }
    SetGlobalThreadCount(threads);

    bench::Section("forward NTT rows per Relinearize");
    std::printf("  pr1 (coeff-domain keys)   %6llu\n",
                static_cast<unsigned long long>(pr1_fwd));
    std::printf("  batched (eval-domain)     %6llu\n",
                static_cast<unsigned long long>(batched_fwd));

    if (!json_path.empty()) {
        std::FILE *f = std::fopen(json_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
            return 1;
        }
        std::fprintf(
            f,
            "{\n"
            "  \"bench\": \"he_pipeline\",\n"
            "  \"n\": %zu,\n"
            "  \"limbs\": %zu,\n"
            "  \"lanes\": %zu,\n"
            "  \"pr1_mul_relin_ns\": %.1f,\n"
            "  \"batched_mul_relin_ns\": %.1f,\n"
            "  \"graph_per_op_ns\": %.1f,\n"
            "  \"speedup_batched_vs_pr1\": %.3f,\n"
            "  \"speedup_graph_vs_pr1\": %.3f,\n"
            "  \"relin_forward_ntt_rows_pr1\": %llu,\n"
            "  \"relin_forward_ntt_rows_batched\": %llu,\n"
            "  \"unfused_relin_ms_ns\": %.1f,\n"
            "  \"fused_relin_ms_ns\": %.1f,\n"
            "  \"speedup_fused_vs_unfused\": %.3f,\n"
            "  \"relin_ms_elementwise_rows_unfused\": %llu,\n"
            "  \"relin_ms_elementwise_rows_fused\": %llu,\n"
            "  \"relin_ms_steady_state_allocs\": %lld,\n"
            "  \"simd_default_backend\": \"%s\",\n"
            "  \"avx2_available\": %s,\n"
            "  \"avx512_available\": %s,\n"
            "  \"fused_relin_ms_scalar_ns\": %.1f,\n"
            "  \"fused_relin_ms_avx2_ns\": %.1f,\n"
            "  \"fused_relin_ms_avx512_ns\": %.1f,\n"
            "  \"speedup_fused_avx2_vs_scalar\": %.3f,\n"
            "  \"speedup_fused_avx512_vs_avx2\": %.3f\n"
            "}\n",
            params.degree, np, threads, pr1_ns, batched_ns,
            graph_per_op_ns, pr1_ns / batched_ns,
            pr1_ns / graph_per_op_ns,
            static_cast<unsigned long long>(pr1_fwd),
            static_cast<unsigned long long>(batched_fwd),
            unfused_ms_ns, fused_ms_ns, unfused_ms_ns / fused_ms_ns,
            static_cast<unsigned long long>(unfused_counts.elementwise),
            static_cast<unsigned long long>(fused_counts.elementwise),
            relin_ms_allocs,
            simd::BackendName(simd::ActiveBackend()),
            avx2_available ? "true" : "false",
            avx512_available ? "true" : "false", fused_backend_ns[0],
            fused_backend_ns[1],
            fused_backend_ns[static_cast<std::size_t>(
                simd::Backend::kAvx512)],
            avx2_available
                ? fused_backend_ns[0] / fused_backend_ns[1]
                : 0.0,
            avx512_available
                ? fused_backend_ns[1] /
                      fused_backend_ns[static_cast<std::size_t>(
                          simd::Backend::kAvx512)]
                : 0.0);
        std::fclose(f);
        std::printf("wrote %s\n", json_path.c_str());
    }

    if (batched_fwd >= pr1_fwd) {
        std::fprintf(stderr,
                     "FAIL: eval-domain keys did not reduce forward "
                     "NTT count (%llu >= %llu)\n",
                     static_cast<unsigned long long>(batched_fwd),
                     static_cast<unsigned long long>(pr1_fwd));
        return 1;
    }
    if (fused_counts.elementwise >= unfused_counts.elementwise ||
        fused_counts.forward != unfused_counts.forward ||
        fused_counts.inverse != unfused_counts.inverse) {
        std::fprintf(stderr,
                     "FAIL: fused RelinModSwitch did not save the "
                     "inverse-stage pass (elementwise %llu vs %llu)\n",
                     static_cast<unsigned long long>(
                         fused_counts.elementwise),
                     static_cast<unsigned long long>(
                         unfused_counts.elementwise));
        return 1;
    }
    if (relin_ms_allocs != 0) {
        std::fprintf(stderr,
                     "FAIL: steady-state fused RelinModSwitch "
                     "allocated %lld times\n",
                     relin_ms_allocs);
        return 1;
    }
    return 0;
}

}  // namespace
}  // namespace hentt::he

int
main(int argc, char **argv)
{
    return hentt::he::BenchMain(argc, argv);
}
