/**
 * Fig. 4 — register-based high-radix NTT: execution time + DRAM access
 * for N = 2^16 and 2^17 (a, b), and occupancy + DRAM bandwidth
 * utilization at N = 2^17 (c); np = 21 throughout.
 *
 * Paper anchors: radix-16 is best (566 us at 2^17, a 2.41x average gain
 * over radix-2); radix-32 has 15.5% fewer DRAM accesses but loses on
 * occupancy (bandwidth utilization drops to 59.9%); radix-64/128 spill
 * to LMEM.
 */

#include <cstdio>

#include "bench_util.h"
#include "gpu/occupancy.h"
#include "gpu/simulator.h"
#include "kernels/highradix_kernel.h"

int
main()
{
    using namespace hentt;
    bench::Header("Fig. 4", "high-radix NTT sweep, np = 21");
    const gpu::Simulator sim;
    const std::size_t radices[] = {2, 4, 8, 16, 32, 64, 128};

    for (unsigned log_n : {16u, 17u}) {
        const std::size_t n = std::size_t{1} << log_n;
        bench::Section("(" + std::string(log_n == 16 ? "a" : "b") +
                       ") N = 2^" + std::to_string(log_n));
        std::printf("  %7s %12s %14s\n", "radix", "time (us)",
                    "DRAM (MB)");
        for (std::size_t r : radices) {
            const auto plan = kernels::HighRadixKernel(r).Plan(n, 21);
            const auto est = sim.Estimate(plan);
            std::printf("  %7zu %12.1f %14.1f", r, est.total_us,
                        est.dram_bytes / 1e6);
            if (log_n == 17 && r == 16) {
                std::printf("   (paper: 566 us, best)");
            }
            std::printf("\n");
        }
    }

    bench::Section("(c) occupancy & DRAM bandwidth utilization, N = 2^17");
    std::printf("  %7s %12s %12s\n", "radix", "occupancy", "DRAM util");
    for (std::size_t r : radices) {
        const auto plan = kernels::HighRadixKernel(r).Plan(1 << 17, 21);
        const auto est = sim.Estimate(plan);
        std::printf("  %7zu %11.1f%% %11.1f%%", r, est.occupancy * 100.0,
                    est.dram_utilization * 100.0);
        if (r == 32) {
            std::printf("   (paper: util falls to 59.9%%)");
        }
        if (r >= 64) {
            std::printf("   (LMEM spill)");
        }
        std::printf("\n");
    }

    const double t2 =
        sim.Estimate(kernels::HighRadixKernel(2).Plan(1 << 17, 21))
            .total_us;
    const double t16 =
        sim.Estimate(kernels::HighRadixKernel(16).Plan(1 << 17, 21))
            .total_us;
    bench::Ratio("radix-2 / radix-16 (2^17)", t2 / t16, 2.41);
    return 0;
}
