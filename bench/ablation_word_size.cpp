/**
 * Ablation — 32-bit vs 64-bit word size (paper Section IV): for a fixed
 * ciphertext modulus budget (Q = 2^1200), 30-bit primes need twice as
 * many NTTs as 60-bit primes, but each butterfly is cheaper. The paper
 * measures the net difference at ~5%.
 */

#include <cstdio>

#include "bench_util.h"
#include "gpu/simulator.h"
#include "kernels/cost_constants.h"
#include "kernels/config_search.h"

int
main()
{
    using namespace hentt;
    bench::Header("Ablation", "word size: 40x 30-bit vs 20x 60-bit primes");
    const gpu::Simulator sim;
    const std::size_t n = 1 << 17;

    // 64-bit path: 20 primes of 60 bits.
    const auto best64 = kernels::FindBestSmemConfig(sim, n, 20, 8, 2);

    // 32-bit path: 40 primes of 30 bits. Data words are 4 bytes and
    // butterflies ~40% cheaper, but there are twice as many rows.
    auto plan32 = kernels::SmemKernel(
                      kernels::FindBestSmemConfig(sim, n, 40, 8, 2).config)
                      .Plan(40);
    for (auto &k : plan32) {
        k.dram_read_bytes *= 0.5;   // 4-byte words and tables
        k.dram_write_bytes *= 0.5;
        k.transaction_bytes *= 0.5;
        k.compute_slots *= 0.6;     // single-word modmul
    }
    const auto est32 = sim.Estimate(plan32);

    bench::Row("64-bit words (np=20)", best64.estimate.total_us, "us");
    bench::Row("32-bit words (np=40)", est32.total_us, "us");
    bench::Ratio("32b / 64b",
                 est32.total_us / best64.estimate.total_us);
    bench::Note("paper: ~5% difference at N = 2^17, Q = 2^1200 — the "
                "workload-size doubling cancels the cheaper arithmetic");
    return 0;
}
