/**
 * @file
 * SLATE-style parameter-sweep driver for the bootstrapping-depth
 * circuit workload (PR 7): one binary, multiple comma-list axes,
 * one table row per axis combination — modeled on SLATE's `Params`
 * test driver (single binary, orthogonal parameter axes, per-row
 * check column) rather than a bench-per-configuration zoo.
 *
 *   sweep_params [--n 64,4096] [--limbs 3,8] [--depth 1,4,7]
 *                [--backend auto,scalar,avx2,avx512] [--radix 4,2]
 *                [--threads 1,4] [--reps R] [--check]
 *                [--json BENCH_deep_circuit.json]
 *
 * Each row walks a Mul -> fused RelinModSwitch tower `depth` levels
 * down the modulus chain with the batched kernels (warm arena,
 * preallocated per-level outputs) and reports the steady-state tower
 * time, the per-level mean, and the heap-allocation count (which must
 * be 0 at every depth). `--check` additionally verifies the result:
 * against the O(N^2) schoolbook plaintext oracle for N <= 256, and
 * via cross-backend bit-identity + positive noise budget above that.
 *
 * `--json` ignores the sweep axes and emits the canonical gated
 * series (N=4096 x 8 limbs, depths 1/2/4/7, default backend + scalar
 * ablation) consumed by scripts/check_bench_regression.py; run_suite
 * invokes it and mirrors the JSON to the repo root. Series contract:
 * `*_ns` keys are machine-local, `speedup_*` depth-scaling ratios are
 * cross-machine comparable (--relative-only), and
 * `steady_state_allocs` must never grow.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/modarith.h"
#include "common/thread_pool.h"
#include "he/bgv.h"
#include "he/ciphertext_batch.h"
#include "ntt/ntt_lazy.h"
#include "simd/simd_backend.h"

// ---------------------------------------------------------------------
// Allocation counter: global operator new replacement so every sweep
// row can prove its steady-state tower walk never touches the heap
// (same counter as bench_deep_circuit / bench_he_pipeline).
// ---------------------------------------------------------------------
namespace {
std::atomic<long long> g_alloc_count{0};
}

void *
operator new(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size)) {
        return p;
    }
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace hentt::he {
namespace {

using Clock = std::chrono::steady_clock;

// ------------------------------------------------------------- axes
/** One comma-list CLI axis, SLATE-Params style: the cross product of
 *  all axes is the sweep. */
std::vector<std::string>
SplitList(const char *arg)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char *p = arg;; ++p) {
        if (*p == ',' || *p == '\0') {
            if (!cur.empty()) {
                out.push_back(cur);
            }
            cur.clear();
            if (*p == '\0') {
                break;
            }
        } else {
            cur.push_back(*p);
        }
    }
    return out;
}

std::vector<std::size_t>
SplitSizeList(const char *arg)
{
    std::vector<std::size_t> out;
    for (const std::string &s : SplitList(arg)) {
        out.push_back(std::strtoull(s.c_str(), nullptr, 10));
    }
    return out;
}

struct Axes {
    std::vector<std::size_t> n{4096};
    std::vector<std::size_t> limbs{8};
    std::vector<std::size_t> depth{1, 4, 7};
    std::vector<std::string> backend{"auto"};
    std::vector<std::size_t> radix{4};
    std::vector<std::size_t> threads;
    int reps = 3;
    bool check = false;
    std::string json_path;
};

/** "auto" -> nullopt (environment/auto-resolved backend). */
std::optional<simd::Backend>
ParseBackend(const std::string &name)
{
    if (name == "scalar") {
        return simd::Backend::kScalar;
    }
    if (name == "avx2") {
        return simd::Backend::kAvx2;
    }
    if (name == "avx512") {
        return simd::Backend::kAvx512;
    }
    return std::nullopt;
}

// -------------------------------------------------- scheme instances
/** Cached per-(N, limbs) scheme: keygen and relin-key generation are
 *  far more expensive than one tower walk, so the sweep reuses them
 *  across every row that shares the ring. */
std::shared_ptr<HeContext>
MakeContext(std::size_t n, std::size_t limbs)
{
    HeParams params;
    params.degree = n;
    params.prime_count = limbs;
    params.prime_bits = 50;
    params.plain_modulus = 65537;
    return std::make_shared<HeContext>(params);
}

Plaintext
RandomPlain(std::size_t n, u64 modulus, u64 seed)
{
    Plaintext m(n);
    Xoshiro256 rng(seed);
    for (u64 &x : m) {
        x = rng.NextBelow(modulus);
    }
    return m;
}

struct SchemeBundle {
    std::shared_ptr<HeContext> ctx;
    std::unique_ptr<BgvScheme> scheme;
    SecretKey sk;
    RelinKey rk;
    Plaintext ma, mb;
    Ciphertext ct_a, ct_b;

    SchemeBundle(std::size_t n, std::size_t limbs)
        : ctx(MakeContext(n, limbs)),
          scheme(std::make_unique<BgvScheme>(ctx, /*seed=*/77)),
          sk(scheme->KeyGen()),
          rk(scheme->MakeRelinKey(sk)),
          ma(RandomPlain(n, ctx->params().plain_modulus, 3)),
          mb(RandomPlain(n, ctx->params().plain_modulus, 5)),
          ct_a(scheme->Encrypt(sk, ma)),
          ct_b(scheme->Encrypt(sk, mb))
    {
    }
};

SchemeBundle &
GetBundle(std::map<std::pair<std::size_t, std::size_t>,
                   std::unique_ptr<SchemeBundle>> &cache,
          std::size_t n, std::size_t limbs)
{
    auto &slot = cache[{n, limbs}];
    if (!slot) {
        slot = std::make_unique<SchemeBundle>(n, limbs);
    }
    return *slot;
}

// ------------------------------------------------------ measurement
double
Elapsed_ns(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

template <typename Fn>
double
TimeBest_ns(int reps, Fn &&fn)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = Clock::now();
        fn();
        const auto t1 = Clock::now();
        const double ns = Elapsed_ns(t0, t1);
        if (best == 0.0 || ns < best) {
            best = ns;
        }
    }
    return best;
}

struct TowerTiming {
    std::vector<double> level_ns;  ///< per-level Mul + fused descend
    double total_ns = 0.0;         ///< sum over the walked levels
    long long allocs = 0;          ///< heap allocs in the timed region
    Ciphertext bottom;             ///< final accumulator (for checks)
};

/** Walk `depth` levels of the Mul -> fused RelinModSwitch tower with
 *  the batched kernels; per level: warm the arena + output shapes
 *  (2x), then take best-of-reps with preallocated outputs and count
 *  heap allocations across the timed region. */
TowerTiming
MeasureTower(SchemeBundle &bundle, std::size_t depth, int reps)
{
    TowerTiming t;
    const HeContext &ctx = *bundle.ctx;
    Ciphertext acc = bundle.ct_a;
    Ciphertext factor = bundle.ct_b;
    const std::size_t np = ctx.params().prime_count;
    for (std::size_t level = np; level >= 2 && level + depth >= np + 1;
         --level) {
        const Ciphertext *mul_a[] = {&acc};
        const Ciphertext *mul_b[] = {&factor};
        Ciphertext prod;
        Ciphertext *mul_out[] = {&prod};
        const Ciphertext *relin_in[] = {&prod};
        Ciphertext down;
        Ciphertext *down_out[] = {&down};

        BatchMul(ctx, mul_a, mul_b, mul_out);
        BatchRelinModSwitch(ctx, bundle.rk, relin_in, down_out);
        BatchMul(ctx, mul_a, mul_b, mul_out);
        BatchRelinModSwitch(ctx, bundle.rk, relin_in, down_out);

        const long long before =
            g_alloc_count.load(std::memory_order_relaxed);
        const double mul_ns = TimeBest_ns(reps, [&] {
            BatchMul(ctx, mul_a, mul_b, mul_out);
        });
        const double descend_ns = TimeBest_ns(reps, [&] {
            BatchRelinModSwitch(ctx, bundle.rk, relin_in, down_out);
        });
        t.allocs += g_alloc_count.load(std::memory_order_relaxed) -
                    before;
        t.level_ns.push_back(mul_ns + descend_ns);
        t.total_ns += mul_ns + descend_ns;

        acc = down;
        if (level > 2) {
            const Ciphertext *ms_in[] = {&factor};
            Ciphertext switched;
            Ciphertext *ms_out[] = {&switched};
            BatchModSwitch(ctx, ms_in, ms_out);
            factor = switched;
        }
    }
    t.bottom = std::move(acc);
    return t;
}

// ------------------------------------------------------------ checks
/** Negacyclic product mod t — the O(N^2) schoolbook oracle. */
Plaintext
PlainMul(const Plaintext &a, const Plaintext &b, u64 t)
{
    const std::size_t n = a.size();
    Plaintext c(n, 0);
    for (std::size_t k = 0; k < n; ++k) {
        u64 acc = 0;
        for (std::size_t i = 0; i <= k; ++i) {
            acc = AddMod(acc, MulModNative(a[i], b[k - i], t), t);
        }
        for (std::size_t i = k + 1; i < n; ++i) {
            acc = SubMod(acc, MulModNative(a[i], b[n + k - i], t), t);
        }
        c[k] = acc;
    }
    return c;
}

bool
BitIdentical(const Ciphertext &x, const Ciphertext &y)
{
    if (x.parts.size() != y.parts.size()) {
        return false;
    }
    for (std::size_t j = 0; j < x.parts.size(); ++j) {
        if (x.parts[j].prime_count() != y.parts[j].prime_count()) {
            return false;
        }
        const auto fx = x.parts[j].flat();
        const auto fy = y.parts[j].flat();
        for (std::size_t k = 0; k < fx.size(); ++k) {
            if (fx[k] != fy[k]) {
                return false;
            }
        }
    }
    return true;
}

/** Row check: plaintext oracle for small rings, cross-backend
 *  bit-identity + positive noise budget for big ones.  Returns a
 *  short status string for the table's check column. */
std::string
CheckRow(SchemeBundle &bundle, const TowerTiming &t, std::size_t depth)
{
    const u64 tm = bundle.ctx->params().plain_modulus;
    if (bundle.ctx->params().degree <= 256) {
        Plaintext expect = bundle.ma;
        for (std::size_t d = 0; d < depth; ++d) {
            expect = PlainMul(expect, bundle.mb, tm);
        }
        const Plaintext got =
            bundle.scheme->Decrypt(bundle.sk, t.bottom);
        if (got != expect) {
            return "FAIL(oracle)";
        }
        return "ok(oracle)";
    }
    // Ring too big for the schoolbook oracle: re-walk on the scalar
    // backend and demand bit-identity, then positive noise headroom.
    simd::ForceBackend(simd::Backend::kScalar);
    Ciphertext acc = bundle.ct_a;
    Ciphertext factor = bundle.ct_b;
    for (std::size_t d = 0; d < depth; ++d) {
        acc = bundle.scheme->RelinModSwitch(
            bundle.scheme->Mul(acc, factor), bundle.rk);
        factor = bundle.scheme->ModSwitch(factor);
    }
    simd::ResetBackend();
    if (!BitIdentical(acc, t.bottom)) {
        return "FAIL(backend)";
    }
    if (bundle.scheme->NoiseBudgetBits(bundle.sk, t.bottom) <= 0.0) {
        return "FAIL(noise)";
    }
    return "ok(scalar=)";
}

// -------------------------------------------------------- JSON mode
/** Canonical gated series: N=4096 x 8 limbs, depths 1/2/4/7 as
 *  prefix sums of one full-depth walk, plus a scalar-backend ablation
 *  at full depth.  Axis flags are ignored on purpose — the committed
 *  trajectory must always describe the same workload. */
int
EmitJson(const std::string &path, int reps)
{
    std::map<std::pair<std::size_t, std::size_t>,
             std::unique_ptr<SchemeBundle>>
        cache;
    SchemeBundle &bundle = GetBundle(cache, 4096, 8);
    const std::size_t full_depth = 7;

    simd::ResetBackend();
    TowerTiming def = MeasureTower(bundle, full_depth, reps);
    const char *def_name = simd::BackendName(simd::ActiveBackend());

    simd::ForceBackend(simd::Backend::kScalar);
    TowerTiming scal = MeasureTower(bundle, full_depth, reps);
    simd::ResetBackend();

    if (!BitIdentical(def.bottom, scal.bottom)) {
        std::fprintf(stderr,
                     "FAIL: default-backend tower != scalar tower\n");
        return 1;
    }

    auto prefix_ns = [&](std::size_t depth) {
        double s = 0.0;
        for (std::size_t d = 0; d < depth; ++d) {
            s += def.level_ns[d];
        }
        return s;
    };
    const double d1 = prefix_ns(1), d2 = prefix_ns(2),
                 d4 = prefix_ns(4), d7 = prefix_ns(7);
    const long long allocs = def.allocs + scal.allocs;

    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"deep_circuit\",\n"
        "  \"n\": 4096,\n"
        "  \"limbs\": 8,\n"
        "  \"depth\": 7,\n"
        "  \"lanes\": %zu,\n"
        "  \"deep_tower_depth1_ns\": %.1f,\n"
        "  \"deep_tower_depth2_ns\": %.1f,\n"
        "  \"deep_tower_depth4_ns\": %.1f,\n"
        "  \"deep_tower_depth7_ns\": %.1f,\n"
        "  \"deep_tower_depth7_scalar_ns\": %.1f,\n"
        "  \"speedup_deep_tower_vs_scalar\": %.3f,\n"
        "  \"speedup_deep_depth_scaling\": %.3f,\n"
        "  \"speedup_deep_level2_vs_level8\": %.3f,\n"
        "  \"steady_state_allocs\": %lld,\n"
        "  \"simd_default_backend\": \"%s\",\n"
        "  \"avx2_available\": %s,\n"
        "  \"avx512_available\": %s\n"
        "}\n",
        GlobalThreadCount(), d1, d2, d4, d7, scal.total_ns,
        scal.total_ns / d7, full_depth * d1 / d7,
        def.level_ns.front() / def.level_ns.back(), allocs, def_name,
        simd::BackendAvailable(simd::Backend::kAvx2) ? "true"
                                                     : "false",
        simd::BackendAvailable(simd::Backend::kAvx512) ? "true"
                                                       : "false");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());

    if (allocs != 0) {
        std::fprintf(stderr,
                     "FAIL: steady-state tower allocated %lld times "
                     "(must be 0 at every depth)\n",
                     allocs);
        return 1;
    }
    return 0;
}

// -------------------------------------------------------------- main
int
SweepMain(int argc, char **argv)
{
    Axes axes;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (std::strcmp(a, "--n") == 0) {
            axes.n = SplitSizeList(next());
        } else if (std::strcmp(a, "--limbs") == 0) {
            axes.limbs = SplitSizeList(next());
        } else if (std::strcmp(a, "--depth") == 0) {
            axes.depth = SplitSizeList(next());
        } else if (std::strcmp(a, "--backend") == 0) {
            axes.backend = SplitList(next());
        } else if (std::strcmp(a, "--radix") == 0) {
            axes.radix = SplitSizeList(next());
        } else if (std::strcmp(a, "--threads") == 0) {
            axes.threads = SplitSizeList(next());
        } else if (std::strcmp(a, "--reps") == 0) {
            axes.reps = std::atoi(next());
        } else if (std::strcmp(a, "--check") == 0) {
            axes.check = true;
        } else if (std::strcmp(a, "--json") == 0) {
            axes.json_path = next();
        } else {
            std::fprintf(stderr, "unknown flag %s\n", a);
            return 2;
        }
    }
    if (axes.threads.empty()) {
        std::size_t t = 0;
        if (const char *env = std::getenv("HENTT_THREADS")) {
            t = std::strtoull(env, nullptr, 10);
        }
        if (t == 0) {
            const unsigned hw = std::thread::hardware_concurrency();
            t = hw < 4 ? 4 : hw;
        }
        axes.threads = {t};
    }

    SetGlobalThreadCount(axes.threads.front());
    SetParallelGrain(1);
    GlobalThreadPool();  // spin up workers outside any timed region

    if (!axes.json_path.empty()) {
        return EmitJson(axes.json_path, axes.reps);
    }

    std::map<std::pair<std::size_t, std::size_t>,
             std::unique_ptr<SchemeBundle>>
        cache;
    std::printf(
        "%6s %6s %6s %8s %6s %8s %14s %12s %7s  %s\n", "n", "limbs",
        "depth", "backend", "radix", "threads", "tower_us",
        "us/level", "allocs", axes.check ? "check" : "");

    bool all_ok = true;
    for (const std::size_t n : axes.n) {
        for (const std::size_t limbs : axes.limbs) {
            for (const std::size_t depth : axes.depth) {
                if (depth + 1 > limbs) {
                    std::printf("%6zu %6zu %6zu  skip (depth > "
                                "limbs-1)\n",
                                n, limbs, depth);
                    continue;
                }
                for (const std::string &bname : axes.backend) {
                    const auto backend = ParseBackend(bname);
                    if (backend &&
                        !simd::BackendAvailable(*backend)) {
                        std::printf("%6zu %6zu %6zu %8s  skip "
                                    "(backend unavailable)\n",
                                    n, limbs, depth, bname.c_str());
                        continue;
                    }
                    for (const std::size_t radix : axes.radix) {
                        for (const std::size_t threads :
                             axes.threads) {
                            SetGlobalThreadCount(threads);
                            if (backend) {
                                simd::ForceBackend(*backend);
                            } else {
                                simd::ResetBackend();
                            }
                            ForceLazyWalk(radix == 2
                                              ? LazyWalk::kRadix2
                                              : LazyWalk::kFusedRadix4);
                            SchemeBundle &bundle =
                                GetBundle(cache, n, limbs);
                            TowerTiming t = MeasureTower(
                                bundle, depth, axes.reps);
                            std::string check;
                            if (axes.check) {
                                check = CheckRow(bundle, t, depth);
                                if (check.rfind("FAIL", 0) == 0) {
                                    all_ok = false;
                                }
                            }
                            simd::ResetBackend();
                            ResetLazyWalk();
                            if (t.allocs != 0) {
                                all_ok = false;
                            }
                            std::printf(
                                "%6zu %6zu %6zu %8s %6zu %8zu "
                                "%14.1f %12.1f %7lld  %s\n",
                                n, limbs, depth, bname.c_str(),
                                radix, threads, t.total_ns / 1e3,
                                t.total_ns / 1e3 /
                                    static_cast<double>(depth),
                                t.allocs, check.c_str());
                        }
                    }
                }
            }
        }
    }
    if (!all_ok) {
        std::fprintf(stderr,
                     "FAIL: at least one sweep row failed its check "
                     "or allocated in steady state\n");
        return 1;
    }
    return 0;
}

}  // namespace
}  // namespace hentt::he

int
main(int argc, char **argv)
{
    return hentt::he::SweepMain(argc, argv);
}
