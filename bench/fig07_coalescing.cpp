/**
 * Fig. 7 — Kernel-1 of the SMEM implementation with and without
 * coalesced global-memory accesses, across Kernel-1 radices 32..512 at
 * N = 2^17, np = 21.
 *
 * Paper: removing uncoalesced accesses by fusing thread blocks
 * (Fig. 6(b)) speeds Kernel-1 up by 21.6% on average.
 */

#include <cmath>
#include <cstdio>
#include <iterator>

#include "bench_util.h"
#include "gpu/simulator.h"
#include "kernels/smem_kernel.h"

int
main()
{
    using namespace hentt;
    bench::Header("Fig. 7", "Kernel-1 coalesced vs uncoalesced");
    const gpu::Simulator sim;
    const std::size_t n = 1 << 17;
    const std::size_t k1_sizes[] = {32, 64, 128, 256, 512};

    std::printf("  %10s %18s %18s %10s\n", "Kernel-1", "uncoalesced (us)",
                "coalesced (us)", "speedup");
    double geo = 1.0;
    for (std::size_t k1 : k1_sizes) {
        kernels::SmemConfig cfg;
        cfg.kernel1_size = k1;
        cfg.kernel2_size = n / k1;
        cfg.points_per_thread = 8;

        cfg.coalesced = false;
        const auto uncoal =
            sim.Estimate(kernels::SmemKernel(cfg).PlanKernel1(21));
        cfg.coalesced = true;
        const auto coal =
            sim.Estimate(kernels::SmemKernel(cfg).PlanKernel1(21));
        const double speedup = uncoal.total_us / coal.total_us;
        geo *= speedup;
        std::printf("  %10zu %18.1f %18.1f %9.1f%%\n", k1,
                    uncoal.total_us, coal.total_us,
                    (speedup - 1.0) * 100.0);
    }
    geo = std::pow(geo, 1.0 / std::size(k1_sizes));
    bench::Ratio("average Kernel-1 speedup", geo, 1.216);
    return 0;
}
