/**
 * Fig. 12 — (a) SMEM implementation across radix combinations with OT,
 * logN = 14..17; (b) speedup and DRAM-bandwidth utilization with and
 * without OT; (c) DRAM access volume with and without OT. np = 21.
 *
 * Paper anchors: OT cuts DRAM accesses by 24.5/23.5/24.5/25.1% for
 * logN = 14..17, lowers bandwidth utilization by 16.7% (the kernel
 * turns compute-bound), and yields a 9.3% average speedup.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "gpu/simulator.h"
#include "kernels/config_search.h"

int
main()
{
    using namespace hentt;
    bench::Header("Fig. 12", "on-the-fly twiddling across logN = 14..17");
    const gpu::Simulator sim;
    const std::size_t np = 21;
    const unsigned kOtStages = 2;

    bench::Section("(a) time (us) per K1xK2 combo, 8-pt per-thread, w/ OT");
    for (unsigned log_n = 14; log_n <= 17; ++log_n) {
        const std::size_t n = std::size_t{1} << log_n;
        std::printf("  logN=%u:", log_n);
        for (const auto &scored :
             kernels::RankSmemConfigs(sim, n, np, 8, kOtStages)) {
            std::printf("  %zux%zu=%.1f", scored.config.kernel1_size,
                        scored.config.kernel2_size,
                        scored.estimate.total_us);
        }
        std::printf("\n");
    }

    bench::Section("(b)+(c) best config: speedup, utilization, DRAM MB");
    std::printf("  %6s %10s %10s %9s %10s %10s %11s %11s\n", "logN",
                "t w/o OT", "t w/ OT", "speedup", "util w/o",
                "util w/", "MB w/o OT", "MB w/ OT");
    const double paper_speedup[] = {1.101, 1.092, 1.098, 1.081};
    const double paper_reduction[] = {0.245, 0.235, 0.245, 0.251};
    double geo_speedup = 1.0;
    for (unsigned log_n = 14; log_n <= 17; ++log_n) {
        const std::size_t n = std::size_t{1} << log_n;
        const auto base = kernels::FindBestSmemConfig(sim, n, np, 8, 0);
        const auto ot =
            kernels::FindBestSmemConfig(sim, n, np, 8, kOtStages);
        const double speedup =
            base.estimate.total_us / ot.estimate.total_us;
        geo_speedup *= speedup;
        std::printf("  %6u %10.1f %10.1f %8.2fx %9.1f%% %9.1f%% %11.1f "
                    "%11.1f\n",
                    log_n, base.estimate.total_us, ot.estimate.total_us,
                    speedup, base.estimate.dram_utilization * 100.0,
                    ot.estimate.dram_utilization * 100.0,
                    base.estimate.dram_bytes / 1e6,
                    ot.estimate.dram_bytes / 1e6);
        const double reduction =
            1.0 - ot.estimate.dram_bytes / base.estimate.dram_bytes;
        std::printf("         DRAM reduction %.1f%% (paper: %.1f%%), "
                    "speedup (paper: %.1f%%)\n",
                    reduction * 100.0, paper_reduction[log_n - 14] * 100,
                    (paper_speedup[log_n - 14] - 1.0) * 100.0);
    }
    geo_speedup = std::pow(geo_speedup, 1.0 / 4.0);
    bench::Ratio("average OT speedup", geo_speedup, 1.093);
    return 0;
}
