/**
 * Fig. 1 — NTT performance with Shoup's modmul vs the native modulo
 * operation, (N, np) = (2^17, 45).
 *
 * Paper: Native 789.2 us vs Shoup 332.9 us — a 2.4x gap, because the
 * 64b-by-32b native modulo compiles to ~68 machine instructions with a
 * ~500-cycle dependent latency.
 */

#include <cmath>

#include "bench_util.h"
#include "gpu/simulator.h"
#include "kernels/config_search.h"
#include "kernels/launcher.h"

int
main()
{
    using namespace hentt;
    bench::Header("Fig. 1", "Shoup's modmul vs native modulo");
    const gpu::Simulator sim;
    const std::size_t n = 1 << 17;

    for (std::size_t np : {std::size_t{45}, std::size_t{21}}) {
        bench::Section("SMEM implementation (best radices), np = " +
                       std::to_string(np));
        const auto best = kernels::FindBestSmemConfig(sim, n, np);
        kernels::SmemConfig cfg = best.config;
        const auto shoup = kernels::EstimateSmem(sim, cfg, np);

        // The native variant swaps every twiddle multiply for the
        // hardware `%` path: same traffic, ~46 extra issue slots per
        // butterfly (68 instructions at partial dual-issue). Charge
        // each kernel by its stage share.
        kernels::SmemKernel kernel(cfg);
        auto plan = kernel.Plan(np);
        const double bf_per_stage =
            static_cast<double>(n / 2) * static_cast<double>(np);
        const double log_k1 =
            std::log2(static_cast<double>(cfg.kernel1_size));
        const double log_k2 =
            std::log2(static_cast<double>(cfg.kernel2_size));
        plan[0].compute_slots += bf_per_stage * log_k1 * 46.0;
        plan[1].compute_slots += bf_per_stage * log_k2 * 46.0;
        const auto native = sim.Estimate(plan);

        const bool paper_row = np == 45;
        bench::Row("Shoup", shoup.time_us(), "us",
                   paper_row ? 332.9 : -1.0);
        bench::Row("Native", native.total_us, "us",
                   paper_row ? 789.2 : -1.0);
        bench::Ratio("native / shoup", native.total_us / shoup.time_us(),
                     paper_row ? 789.2 / 332.9 : -1.0);
    }

    bench::Section("Radix-2 baseline cross-check (np = 21)");
    const auto r2_shoup =
        kernels::EstimateRadix2(sim, n, 21, kernels::Reduction::kShoup);
    const auto r2_native =
        kernels::EstimateRadix2(sim, n, 21, kernels::Reduction::kNative);
    const auto r2_barrett =
        kernels::EstimateRadix2(sim, n, 21, kernels::Reduction::kBarrett);
    bench::Row("radix2-shoup", r2_shoup.time_us(), "us");
    bench::Row("radix2-native", r2_native.time_us(), "us");
    bench::Row("radix2-barrett", r2_barrett.time_us(), "us");
    bench::Note("the radix-2 baseline is memory-bound, so the native "
                "penalty partially hides under DRAM time");
    return 0;
}
