/**
 * @file
 * Bootstrapping-depth circuit workload (PR 7): a full multiply-and-
 * descend tower at N = 4096 x 8 limbs, walked from the top of the
 * modulus chain to the bottom with the batched kernels, timed and
 * machine-checked at EVERY level:
 *
 *   - per-level steady-state timings for the BatchMul tensor stage and
 *     the fused BatchRelinModSwitch descend (warm arena, preallocated
 *     outputs);
 *   - zero steady-state heap allocations at every depth (global
 *     operator-new counter; any allocation fails the bench);
 *   - the relinearization transform budget: exactly L^2 forward NTT
 *     rows at a level with L primes (evaluation-domain keys);
 *   - the whole tower bit-identical across every available SIMD
 *     backend crossed with both lazy stage walks (fused radix-4 /
 *     unfused radix-2), with positive noise budget at the bottom.
 *
 * The machine-readable JSON series for this workload comes from the
 * parameter-sweep driver (bench/sweep_params.cpp), which emits
 * BENCH_deep_circuit.json; this bench is the human-readable deep dive
 * and the hard correctness gate.
 *
 * Usage: bench_deep_circuit [--threads T] [--reps R]
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "he/bgv.h"
#include "he/ciphertext_batch.h"
#include "ntt/ntt_engine.h"
#include "ntt/ntt_lazy.h"
#include "simd/simd_backend.h"

// ---------------------------------------------------------------------
// Allocation counter: global operator new replacement so the bench can
// prove the steady-state tower walk does not touch the heap at any
// depth (same counter as bench_he_pipeline / bench_rns_batch).
// ---------------------------------------------------------------------
namespace {
std::atomic<long long> g_alloc_count{0};
}

void *
operator new(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size)) {
        return p;
    }
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace hentt::he {
namespace {

using Clock = std::chrono::steady_clock;

double
Elapsed_ns(Clock::time_point t0, Clock::time_point t1)
{
    return std::chrono::duration<double, std::nano>(t1 - t0).count();
}

template <typename Fn>
double
TimeBest_ns(int reps, Fn &&fn)
{
    double best = 0.0;
    for (int r = 0; r < reps + 2; ++r) {  // two warm-up reps
        const auto t0 = Clock::now();
        fn();
        const auto t1 = Clock::now();
        const double ns = Elapsed_ns(t0, t1);
        if (r >= 2 && (best == 0.0 || ns < best)) {
            best = ns;
        }
    }
    return best;
}

bool
BitIdentical(const Ciphertext &x, const Ciphertext &y)
{
    if (x.parts.size() != y.parts.size()) {
        return false;
    }
    for (std::size_t j = 0; j < x.parts.size(); ++j) {
        if (x.parts[j].prime_count() != y.parts[j].prime_count()) {
            return false;
        }
        const auto fx = x.parts[j].flat();
        const auto fy = y.parts[j].flat();
        for (std::size_t k = 0; k < fx.size(); ++k) {
            if (fx[k] != fy[k]) {
                return false;
            }
        }
    }
    return true;
}

/** Tower walk through the scheme API; returns the per-level results. */
std::vector<Ciphertext>
RunTower(const BgvScheme &scheme, const RelinKey &rk,
         const Ciphertext &fresh, const Ciphertext &factor0,
         std::size_t depth)
{
    std::vector<Ciphertext> levels;
    Ciphertext acc = fresh;
    Ciphertext factor = factor0;
    for (std::size_t d = 0; d < depth; ++d) {
        acc = scheme.RelinModSwitch(scheme.Mul(acc, factor), rk);
        factor = scheme.ModSwitch(factor);
        levels.push_back(acc);
    }
    return levels;
}

int
BenchMain(int argc, char **argv)
{
    int reps = 5;
    std::size_t threads = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
        }
    }
    if (threads == 0) {
        if (const char *env = std::getenv("HENTT_THREADS")) {
            threads = std::strtoull(env, nullptr, 10);
        }
    }
    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = hw < 4 ? 4 : hw;
    }

    HeParams params;
    params.degree = 4096;
    params.prime_count = 8;
    params.prime_bits = 50;
    params.plain_modulus = 65537;
    auto ctx = std::make_shared<HeContext>(params);
    BgvScheme scheme(ctx, /*seed=*/77);
    const SecretKey sk = scheme.KeyGen();
    const RelinKey rk = scheme.MakeRelinKey(sk);
    const std::size_t np = params.prime_count;
    const std::size_t depth = np - 1;

    bench::Header("BENCH deep_circuit",
                  "bootstrapping-depth Mul->Relin->ModSwitch tower "
                  "through the full modulus chain");
    std::printf("config: N=%zu, limbs=%zu, depth=%zu, lanes=%zu\n",
                params.degree, np, depth, threads);

    Plaintext ma(params.degree), mb(params.degree);
    {
        Xoshiro256 rng(3);
        for (u64 &x : ma) {
            x = rng.NextBelow(params.plain_modulus);
        }
        for (u64 &x : mb) {
            x = rng.NextBelow(params.plain_modulus);
        }
    }
    const Ciphertext ct_a = scheme.Encrypt(sk, ma);
    const Ciphertext ct_b = scheme.Encrypt(sk, mb);

    // ------------------------------------------------------------------
    // Correctness gate: the tower is bit-identical at every level under
    // every available backend x stage walk, and still decryptable with
    // headroom at the bottom.
    // ------------------------------------------------------------------
    std::vector<simd::Backend> backends{simd::Backend::kScalar};
    if (simd::BackendAvailable(simd::Backend::kAvx2)) {
        backends.push_back(simd::Backend::kAvx2);
    }
    if (simd::BackendAvailable(simd::Backend::kAvx512)) {
        backends.push_back(simd::Backend::kAvx512);
    }

    std::vector<Ciphertext> reference;
    for (const simd::Backend backend : backends) {
        for (const LazyWalk walk :
             {LazyWalk::kFusedRadix4, LazyWalk::kRadix2}) {
            simd::ForceBackend(backend);
            ForceLazyWalk(walk);
            std::vector<Ciphertext> levels =
                RunTower(scheme, rk, ct_a, ct_b, depth);
            simd::ResetBackend();
            ResetLazyWalk();
            if (reference.empty()) {
                reference = std::move(levels);
                continue;
            }
            for (std::size_t d = 0; d < depth; ++d) {
                if (!BitIdentical(levels[d], reference[d])) {
                    std::fprintf(
                        stderr,
                        "FAIL: tower diverged at level %zu on "
                        "backend %s (%s walk)\n",
                        d, simd::BackendName(backend),
                        walk == LazyWalk::kRadix2 ? "radix-2"
                                                  : "radix-4");
                    return 1;
                }
            }
        }
    }
    const double bottom_budget =
        scheme.NoiseBudgetBits(sk, reference.back());
    std::printf("cross-check: %zu backend/walk towers bit-identical at "
                "all %zu levels; bottom noise budget %.1f bits\n",
                backends.size() * 2, depth, bottom_budget);
    if (bottom_budget <= 0.0) {
        std::fprintf(stderr, "FAIL: tower exhausted its noise budget\n");
        return 1;
    }

    SetGlobalThreadCount(threads);
    SetParallelGrain(1);
    GlobalThreadPool();  // spin up workers outside the timed region

    // ------------------------------------------------------------------
    // Per-level steady-state walk: at each level, time the BatchMul
    // tensor stage and the fused descend into preallocated outputs, and
    // demand zero heap allocations once the arena is warm.
    // ------------------------------------------------------------------
    bench::Section(
        "per-level steady state (BatchMul / fused RelinModSwitch)");
    std::printf("  %-7s %12s %16s %14s %12s\n", "level", "mul_us",
                "relin_ms_us", "relin_fwd_rows", "allocs");

    // Per-level operands reconstructed from the reference walk.
    Ciphertext acc = ct_a;
    Ciphertext factor = ct_b;
    double total_mul_ns = 0.0, total_descend_ns = 0.0;
    long long total_allocs = 0;
    bool rows_ok = true;
    for (std::size_t level = np; level >= 2; --level) {
        const Ciphertext *mul_a[] = {&acc};
        const Ciphertext *mul_b[] = {&factor};
        Ciphertext prod;
        Ciphertext *mul_out[] = {&prod};
        Ciphertext down;
        Ciphertext *down_out[] = {&down};

        // Warm the arena and the output shapes at this level.
        BatchMul(*ctx, mul_a, mul_b, mul_out);
        const Ciphertext *relin_in[] = {&prod};
        BatchRelinModSwitch(*ctx, rk, relin_in, down_out);
        BatchMul(*ctx, mul_a, mul_b, mul_out);
        BatchRelinModSwitch(*ctx, rk, relin_in, down_out);

        // Transform budget: L^2 forward rows for the digit lifts.
        ResetNttOpCounts();
        BatchRelinModSwitch(*ctx, rk, relin_in, down_out);
        const u64 fwd_rows = GetNttOpCounts().forward;
        if (fwd_rows != static_cast<u64>(level) * level) {
            rows_ok = false;
        }

        const long long before =
            g_alloc_count.load(std::memory_order_relaxed);
        const double mul_ns = TimeBest_ns(reps, [&] {
            BatchMul(*ctx, mul_a, mul_b, mul_out);
        });
        const double descend_ns = TimeBest_ns(reps, [&] {
            BatchRelinModSwitch(*ctx, rk, relin_in, down_out);
        });
        const long long allocs =
            g_alloc_count.load(std::memory_order_relaxed) - before;

        std::printf("  %zu->%zu %13.1f %16.1f %14llu %12lld\n", level,
                    level - 1, mul_ns / 1e3, descend_ns / 1e3,
                    static_cast<unsigned long long>(fwd_rows), allocs);
        total_mul_ns += mul_ns;
        total_descend_ns += descend_ns;
        total_allocs += allocs;

        // Descend: the fused output becomes the accumulator, and the
        // factor follows via plain ModSwitch.
        acc = down;
        if (level > 2) {
            const Ciphertext *ms_in[] = {&factor};
            Ciphertext switched;
            Ciphertext *ms_out[] = {&switched};
            BatchModSwitch(*ctx, ms_in, ms_out);
            factor = switched;
        }
    }

    bench::Section("whole tower");
    bench::Row("sum of mul stages", total_mul_ns / 1e3, "us");
    bench::Row("sum of descends", total_descend_ns / 1e3, "us");
    bench::Row("full tower", (total_mul_ns + total_descend_ns) / 1e3,
               "us");

    if (total_allocs != 0) {
        std::fprintf(stderr,
                     "FAIL: steady-state tower allocated %lld times "
                     "(must be 0 at every depth)\n",
                     total_allocs);
        return 1;
    }
    if (!rows_ok) {
        std::fprintf(stderr,
                     "FAIL: relinearization forward rows != L^2 at "
                     "some level (eval-domain key contract)\n");
        return 1;
    }
    std::printf("\nsteady-state allocations across all %zu levels: 0; "
                "relin forward rows = L^2 at every level\n",
                depth);
    return 0;
}

}  // namespace
}  // namespace hentt::he

int
main(int argc, char **argv)
{
    return hentt::he::BenchMain(argc, argv);
}
