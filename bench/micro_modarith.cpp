/**
 * google-benchmark micro suite for the modular-multiplication
 * primitives — the CPU analogue of the paper's Fig. 1 comparison
 * (Shoup vs native vs Barrett) — plus per-backend columns for the SIMD
 * row kernels (scalar vs AVX2 on the same 4096-element sweep).
 */

#include <benchmark/benchmark.h>

#include "common/modarith.h"
#include "common/montgomery.h"
#include "common/primegen.h"
#include "common/random.h"
#include "simd/simd_internal.h"

namespace {

using namespace hentt;

constexpr std::size_t kBatch = 4096;

struct Operands {
    Operands()
    {
        p = GenerateNttPrimes(1 << 14, 60, 1)[0];
        Xoshiro256 rng(7);
        for (std::size_t i = 0; i < kBatch; ++i) {
            a[i] = rng.NextBelow(p);
            w[i] = rng.NextBelow(p);
            w_shoup[i] = ShoupPrecompute(w[i], p);
        }
    }

    u64 p;
    u64 a[kBatch], w[kBatch], w_shoup[kBatch];
};

Operands &
Ops()
{
    static Operands ops;
    return ops;
}

void
BM_MulModNative(benchmark::State &state)
{
    auto &ops = Ops();
    for (auto _ : state) {
        u64 acc = 0;
        for (std::size_t i = 0; i < kBatch; ++i) {
            acc ^= MulModNative(ops.a[i], ops.w[i], ops.p);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
}

void
BM_MulModShoup(benchmark::State &state)
{
    auto &ops = Ops();
    for (auto _ : state) {
        u64 acc = 0;
        for (std::size_t i = 0; i < kBatch; ++i) {
            acc ^= MulModShoup(ops.a[i], ops.w[i], ops.w_shoup[i], ops.p);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
}

void
BM_MulModBarrett(benchmark::State &state)
{
    auto &ops = Ops();
    const BarrettReducer barrett(ops.p);
    for (auto _ : state) {
        u64 acc = 0;
        for (std::size_t i = 0; i < kBatch; ++i) {
            acc ^= barrett.MulMod(ops.a[i], ops.w[i]);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
}

void
BM_MulModMontgomery(benchmark::State &state)
{
    auto &ops = Ops();
    const MontgomeryMultiplier mont(ops.p);
    // Pre-convert the twiddle side (as a real NTT would); data side
    // converts on the fly.
    u64 w_mont[kBatch];
    for (std::size_t i = 0; i < kBatch; ++i) {
        w_mont[i] = mont.ToMontgomery(ops.w[i]);
    }
    for (auto _ : state) {
        u64 acc = 0;
        for (std::size_t i = 0; i < kBatch; ++i) {
            acc ^= mont.MulMont(ops.a[i], w_mont[i]);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
}

void
BM_ShoupPrecompute(benchmark::State &state)
{
    auto &ops = Ops();
    for (auto _ : state) {
        u64 acc = 0;
        for (std::size_t i = 0; i < kBatch; ++i) {
            acc ^= ShoupPrecompute(ops.w[i], ops.p);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
}

BENCHMARK(BM_MulModNative);
BENCHMARK(BM_MulModShoup);
BENCHMARK(BM_MulModBarrett);
BENCHMARK(BM_MulModMontgomery);
BENCHMARK(BM_ShoupPrecompute);

// ---------------------------------------------------------------------
// SIMD backend row kernels, per backend (range(0): 0 = scalar,
// 1 = avx2). These are the loops the NTT and HE layers actually run.
// ---------------------------------------------------------------------

bool
SelectBackend(benchmark::State &state, simd::Backend &backend)
{
    backend = static_cast<simd::Backend>(state.range(0));
    if (!simd::BackendAvailable(backend)) {
        state.SkipWithError("backend unavailable on this host");
        return false;
    }
    return true;
}

void
BM_SimdMulShoupRows(benchmark::State &state)
{
    simd::Backend backend;
    if (!SelectBackend(state, backend)) {
        return;
    }
    auto &ops = Ops();
    const simd::Kernels &kernels = simd::Get(backend);
    const u64 s = ops.w[0];
    const u64 s_bar = ops.w_shoup[0];
    u64 dst[kBatch];
    for (auto _ : state) {
        kernels.mul_shoup_rows(dst, ops.a, kBatch, s, s_bar, ops.p);
        benchmark::DoNotOptimize(dst);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
    state.SetLabel(simd::BackendName(backend));
}

void
BM_SimdMulBarrettRows(benchmark::State &state)
{
    simd::Backend backend;
    if (!SelectBackend(state, backend)) {
        return;
    }
    auto &ops = Ops();
    // The all-vector table: this benchmark is the gauge for whether
    // the vector Barrett tree should enter the production table on a
    // given microarchitecture (it currently loses to scalar mulx on
    // Intel, which is why Avx2Kernels borrows the scalar entry).
    const simd::Kernels &kernels =
        backend == simd::Backend::kAvx2
            ? simd::internal::Avx2AllVectorKernels()
            : simd::Get(backend);
    const BarrettReducer red(ops.p);
    const simd::BarrettConsts consts = simd::Consts(red);
    u64 dst[kBatch];
    for (auto _ : state) {
        kernels.mul_barrett_rows(dst, ops.a, ops.w, kBatch, consts);
        benchmark::DoNotOptimize(dst);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
    state.SetLabel(simd::BackendName(backend));
}

void
BM_SimdFwdButterflyRows(benchmark::State &state)
{
    simd::Backend backend;
    if (!SelectBackend(state, backend)) {
        return;
    }
    auto &ops = Ops();
    const simd::Kernels &kernels = simd::Get(backend);
    u64 x[kBatch / 2], y[kBatch / 2];
    for (std::size_t i = 0; i < kBatch / 2; ++i) {
        x[i] = ops.a[i];
        y[i] = ops.a[kBatch / 2 + i];
    }
    for (auto _ : state) {
        kernels.fwd_butterfly_rows(x, y, kBatch / 2, ops.w[0],
                                   ops.w_shoup[0], ops.p);
        benchmark::DoNotOptimize(x);
        benchmark::DoNotOptimize(y);
    }
    state.SetItemsProcessed(state.iterations() * (kBatch / 2));
    state.SetLabel(simd::BackendName(backend));
}

BENCHMARK(BM_SimdMulShoupRows)->Arg(0)->Arg(1);
BENCHMARK(BM_SimdMulBarrettRows)->Arg(0)->Arg(1);
BENCHMARK(BM_SimdFwdButterflyRows)->Arg(0)->Arg(1);

}  // namespace
