/**
 * google-benchmark micro suite for the modular-multiplication
 * primitives — the CPU analogue of the paper's Fig. 1 comparison
 * (Shoup vs native vs Barrett) — plus per-kernel x per-backend columns
 * for the whole SIMD element-wise family (every Backend member on the
 * same 4096-element sweep; unavailable backends skip with an error
 * label). These columns are the measurement base for the per-backend
 * table verdicts recorded in docs/ARCHITECTURE.md: the AVX2
 * Barrett-borrows, the AVX-512 all-native flip, and the IFMA
 * ablation.
 */

#include <benchmark/benchmark.h>

#include "common/modarith.h"
#include "common/montgomery.h"
#include "common/primegen.h"
#include "common/random.h"
#include "simd/simd_internal.h"

namespace {

using namespace hentt;

constexpr std::size_t kBatch = 4096;

struct Operands {
    Operands()
    {
        p = GenerateNttPrimes(1 << 14, 60, 1)[0];
        Xoshiro256 rng(7);
        for (std::size_t i = 0; i < kBatch; ++i) {
            a[i] = rng.NextBelow(p);
            w[i] = rng.NextBelow(p);
            w_shoup[i] = ShoupPrecompute(w[i], p);
        }
    }

    u64 p;
    u64 a[kBatch], w[kBatch], w_shoup[kBatch];
};

Operands &
Ops()
{
    static Operands ops;
    return ops;
}

void
BM_MulModNative(benchmark::State &state)
{
    auto &ops = Ops();
    for (auto _ : state) {
        u64 acc = 0;
        for (std::size_t i = 0; i < kBatch; ++i) {
            acc ^= MulModNative(ops.a[i], ops.w[i], ops.p);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
}

void
BM_MulModShoup(benchmark::State &state)
{
    auto &ops = Ops();
    for (auto _ : state) {
        u64 acc = 0;
        for (std::size_t i = 0; i < kBatch; ++i) {
            acc ^= MulModShoup(ops.a[i], ops.w[i], ops.w_shoup[i], ops.p);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
}

void
BM_MulModBarrett(benchmark::State &state)
{
    auto &ops = Ops();
    const BarrettReducer barrett(ops.p);
    for (auto _ : state) {
        u64 acc = 0;
        for (std::size_t i = 0; i < kBatch; ++i) {
            acc ^= barrett.MulMod(ops.a[i], ops.w[i]);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
}

void
BM_MulModMontgomery(benchmark::State &state)
{
    auto &ops = Ops();
    const MontgomeryMultiplier mont(ops.p);
    // Pre-convert the twiddle side (as a real NTT would); data side
    // converts on the fly.
    u64 w_mont[kBatch];
    for (std::size_t i = 0; i < kBatch; ++i) {
        w_mont[i] = mont.ToMontgomery(ops.w[i]);
    }
    for (auto _ : state) {
        u64 acc = 0;
        for (std::size_t i = 0; i < kBatch; ++i) {
            acc ^= mont.MulMont(ops.a[i], w_mont[i]);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
}

void
BM_ShoupPrecompute(benchmark::State &state)
{
    auto &ops = Ops();
    for (auto _ : state) {
        u64 acc = 0;
        for (std::size_t i = 0; i < kBatch; ++i) {
            acc ^= ShoupPrecompute(ops.w[i], ops.p);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
}

BENCHMARK(BM_MulModNative);
BENCHMARK(BM_MulModShoup);
BENCHMARK(BM_MulModBarrett);
BENCHMARK(BM_MulModMontgomery);
BENCHMARK(BM_ShoupPrecompute);

// ---------------------------------------------------------------------
// SIMD backend row kernels, per kernel x per backend (range(0) indexes
// kAllBackends). These are the loops the NTT and HE layers actually
// run; unavailable backends skip with an error so the column set stays
// stable across hosts.
// ---------------------------------------------------------------------

bool
SelectBackend(benchmark::State &state, simd::Backend &backend)
{
    backend = static_cast<simd::Backend>(state.range(0));
    if (!simd::BackendAvailable(backend)) {
        state.SkipWithError("backend unavailable on this host");
        return false;
    }
    return true;
}

/** The table a backend's element-wise verdict is judged by: for AVX2
 *  the all-vector variant (the production table borrows the scalar
 *  Barrett family, so benchmarking it would measure scalar twice);
 *  every other backend's production table is already all-candidate. */
const simd::Kernels &
CandidateTable(simd::Backend backend)
{
    return backend == simd::Backend::kAvx2
               ? simd::internal::Avx2AllVectorKernels()
               : simd::Get(backend);
}

void
BM_SimdMulShoupRows(benchmark::State &state)
{
    simd::Backend backend;
    if (!SelectBackend(state, backend)) {
        return;
    }
    auto &ops = Ops();
    const simd::Kernels &kernels = simd::Get(backend);
    const u64 s = ops.w[0];
    const u64 s_bar = ops.w_shoup[0];
    u64 dst[kBatch];
    for (auto _ : state) {
        kernels.mul_shoup_rows(dst, ops.a, kBatch, s, s_bar, ops.p);
        benchmark::DoNotOptimize(dst);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
    state.SetLabel(simd::BackendName(backend));
}

void
BM_SimdMulBarrettRows(benchmark::State &state)
{
    simd::Backend backend;
    if (!SelectBackend(state, backend)) {
        return;
    }
    auto &ops = Ops();
    // The gauge for whether the vector Barrett tree should enter a
    // backend's production table on a given microarchitecture (at 4
    // AVX2 lanes it loses to scalar mulx on Intel; at 8 AVX-512 lanes
    // with vpmullq it wins — see docs/ARCHITECTURE.md).
    const simd::Kernels &kernels = CandidateTable(backend);
    const BarrettReducer red(ops.p);
    const simd::BarrettConsts consts = simd::Consts(red);
    u64 dst[kBatch];
    for (auto _ : state) {
        kernels.mul_barrett_rows(dst, ops.a, ops.w, kBatch, consts);
        benchmark::DoNotOptimize(dst);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
    state.SetLabel(simd::BackendName(backend));
}

void
BM_SimdFwdButterflyRows(benchmark::State &state)
{
    simd::Backend backend;
    if (!SelectBackend(state, backend)) {
        return;
    }
    auto &ops = Ops();
    const simd::Kernels &kernels = simd::Get(backend);
    u64 x[kBatch / 2], y[kBatch / 2];
    for (std::size_t i = 0; i < kBatch / 2; ++i) {
        x[i] = ops.a[i];
        y[i] = ops.a[kBatch / 2 + i];
    }
    for (auto _ : state) {
        kernels.fwd_butterfly_rows(x, y, kBatch / 2, ops.w[0],
                                   ops.w_shoup[0], ops.p);
        benchmark::DoNotOptimize(x);
        benchmark::DoNotOptimize(y);
    }
    state.SetItemsProcessed(state.iterations() * (kBatch / 2));
    state.SetLabel(simd::BackendName(backend));
}

void
BM_SimdMulAccBarrettRows(benchmark::State &state)
{
    simd::Backend backend;
    if (!SelectBackend(state, backend)) {
        return;
    }
    auto &ops = Ops();
    const simd::Kernels &kernels = CandidateTable(backend);
    const BarrettReducer red(ops.p);
    const simd::BarrettConsts consts = simd::Consts(red);
    u64 dst[kBatch] = {};
    for (auto _ : state) {
        kernels.mul_acc_barrett_rows(dst, ops.a, ops.w, kBatch, consts);
        benchmark::DoNotOptimize(dst);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
    state.SetLabel(simd::BackendName(backend));
}

void
BM_SimdReduceBarrettRows(benchmark::State &state)
{
    simd::Backend backend;
    if (!SelectBackend(state, backend)) {
        return;
    }
    auto &ops = Ops();
    const simd::Kernels &kernels = CandidateTable(backend);
    const BarrettReducer red(ops.p);
    const simd::BarrettConsts consts = simd::Consts(red);
    u64 dst[kBatch];
    for (auto _ : state) {
        kernels.reduce_barrett_rows(dst, ops.a, kBatch, consts);
        benchmark::DoNotOptimize(dst);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
    state.SetLabel(simd::BackendName(backend));
}

void
BM_SimdAddRows(benchmark::State &state)
{
    simd::Backend backend;
    if (!SelectBackend(state, backend)) {
        return;
    }
    auto &ops = Ops();
    const simd::Kernels &kernels = CandidateTable(backend);
    u64 dst[kBatch];
    for (auto _ : state) {
        kernels.add_rows(dst, ops.a, ops.w, kBatch, ops.p, false);
        benchmark::DoNotOptimize(dst);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
    state.SetLabel(simd::BackendName(backend));
}

void
BM_SimdSubRows(benchmark::State &state)
{
    simd::Backend backend;
    if (!SelectBackend(state, backend)) {
        return;
    }
    auto &ops = Ops();
    const simd::Kernels &kernels = CandidateTable(backend);
    u64 dst[kBatch];
    for (auto _ : state) {
        kernels.sub_rows(dst, ops.a, ops.w, kBatch, ops.p, false);
        benchmark::DoNotOptimize(dst);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
    state.SetLabel(simd::BackendName(backend));
}

void
BM_SimdFoldLazyRows(benchmark::State &state)
{
    simd::Backend backend;
    if (!SelectBackend(state, backend)) {
        return;
    }
    auto &ops = Ops();
    const simd::Kernels &kernels = CandidateTable(backend);
    u64 x[kBatch];
    for (std::size_t i = 0; i < kBatch; ++i) {
        x[i] = ops.a[i];
    }
    for (auto _ : state) {
        kernels.fold_lazy_rows(x, kBatch, ops.p);
        benchmark::DoNotOptimize(x);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
    state.SetLabel(simd::BackendName(backend));
}

void
BM_SimdFoldRescaleRows(benchmark::State &state)
{
    simd::Backend backend;
    if (!SelectBackend(state, backend)) {
        return;
    }
    auto &ops = Ops();
    const simd::Kernels &kernels = CandidateTable(backend);
    u64 dst[kBatch] = {};
    for (auto _ : state) {
        kernels.fold_rescale_rows(dst, ops.a, kBatch, ops.p, ops.w[0],
                                  ops.w_shoup[0]);
        benchmark::DoNotOptimize(dst);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
    state.SetLabel(simd::BackendName(backend));
}

void
BM_SimdTensorRows(benchmark::State &state)
{
    simd::Backend backend;
    if (!SelectBackend(state, backend)) {
        return;
    }
    auto &ops = Ops();
    const simd::Kernels &kernels = CandidateTable(backend);
    const BarrettReducer red(ops.p);
    const simd::BarrettConsts consts = simd::Consts(red);
    u64 c0[kBatch], c1[kBatch], c2[kBatch];
    for (auto _ : state) {
        kernels.tensor_rows(c0, c1, c2, ops.a, ops.w, ops.w, ops.a,
                            kBatch, consts);
        benchmark::DoNotOptimize(c0);
        benchmark::DoNotOptimize(c1);
        benchmark::DoNotOptimize(c2);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
    state.SetLabel(simd::BackendName(backend));
}

void
BM_SimdDivideRoundRows(benchmark::State &state)
{
    simd::Backend backend;
    if (!SelectBackend(state, backend)) {
        return;
    }
    auto &ops = Ops();
    const simd::Kernels &kernels = CandidateTable(backend);
    // Constants as the BGV mod-switch epilogue builds them: drop prime
    // q_k = ops.p, land in a second 55-bit q_i.
    const u64 qi = GenerateNttPrimes(1 << 14, 55, 1)[0];
    const u64 t = 65537;
    const BarrettReducer red(qi);
    simd::DivideRoundConsts c{};
    c.qk = ops.p;
    c.t_inv_qk = InvMod(t % c.qk, c.qk);
    c.t_inv_qk_bar = ShoupPrecompute(c.t_inv_qk, c.qk);
    c.qi = qi;
    c.qk_inv = InvMod(c.qk % qi, qi);
    c.qk_inv_bar = ShoupPrecompute(c.qk_inv, qi);
    c.t_mod_qi = t % qi;
    c.t_mod_qi_bar = ShoupPrecompute(c.t_mod_qi, qi);
    c.mu_lo = red.mu_lo();
    c.mu_hi = red.mu_hi();
    u64 src[kBatch], dst[kBatch];
    for (std::size_t i = 0; i < kBatch; ++i) {
        src[i] = ops.a[i] % qi;
    }
    for (auto _ : state) {
        kernels.divide_round_rows(dst, src, ops.a, kBatch, c);
        benchmark::DoNotOptimize(dst);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
    state.SetLabel(simd::BackendName(backend));
}

constexpr int kLastBackend = static_cast<int>(simd::kBackendCount) - 1;

BENCHMARK(BM_SimdMulShoupRows)->DenseRange(0, kLastBackend);
BENCHMARK(BM_SimdMulBarrettRows)->DenseRange(0, kLastBackend);
BENCHMARK(BM_SimdMulAccBarrettRows)->DenseRange(0, kLastBackend);
BENCHMARK(BM_SimdReduceBarrettRows)->DenseRange(0, kLastBackend);
BENCHMARK(BM_SimdAddRows)->DenseRange(0, kLastBackend);
BENCHMARK(BM_SimdSubRows)->DenseRange(0, kLastBackend);
BENCHMARK(BM_SimdFoldLazyRows)->DenseRange(0, kLastBackend);
BENCHMARK(BM_SimdFoldRescaleRows)->DenseRange(0, kLastBackend);
BENCHMARK(BM_SimdTensorRows)->DenseRange(0, kLastBackend);
BENCHMARK(BM_SimdDivideRoundRows)->DenseRange(0, kLastBackend);
BENCHMARK(BM_SimdFwdButterflyRows)->DenseRange(0, kLastBackend);

}  // namespace
