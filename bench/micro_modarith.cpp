/**
 * google-benchmark micro suite for the modular-multiplication
 * primitives — the CPU analogue of the paper's Fig. 1 comparison
 * (Shoup vs native vs Barrett).
 */

#include <benchmark/benchmark.h>

#include "common/modarith.h"
#include "common/montgomery.h"
#include "common/primegen.h"
#include "common/random.h"

namespace {

using namespace hentt;

constexpr std::size_t kBatch = 4096;

struct Operands {
    Operands()
    {
        p = GenerateNttPrimes(1 << 14, 60, 1)[0];
        Xoshiro256 rng(7);
        for (std::size_t i = 0; i < kBatch; ++i) {
            a[i] = rng.NextBelow(p);
            w[i] = rng.NextBelow(p);
            w_shoup[i] = ShoupPrecompute(w[i], p);
        }
    }

    u64 p;
    u64 a[kBatch], w[kBatch], w_shoup[kBatch];
};

Operands &
Ops()
{
    static Operands ops;
    return ops;
}

void
BM_MulModNative(benchmark::State &state)
{
    auto &ops = Ops();
    for (auto _ : state) {
        u64 acc = 0;
        for (std::size_t i = 0; i < kBatch; ++i) {
            acc ^= MulModNative(ops.a[i], ops.w[i], ops.p);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
}

void
BM_MulModShoup(benchmark::State &state)
{
    auto &ops = Ops();
    for (auto _ : state) {
        u64 acc = 0;
        for (std::size_t i = 0; i < kBatch; ++i) {
            acc ^= MulModShoup(ops.a[i], ops.w[i], ops.w_shoup[i], ops.p);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
}

void
BM_MulModBarrett(benchmark::State &state)
{
    auto &ops = Ops();
    const BarrettReducer barrett(ops.p);
    for (auto _ : state) {
        u64 acc = 0;
        for (std::size_t i = 0; i < kBatch; ++i) {
            acc ^= barrett.MulMod(ops.a[i], ops.w[i]);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
}

void
BM_MulModMontgomery(benchmark::State &state)
{
    auto &ops = Ops();
    const MontgomeryMultiplier mont(ops.p);
    // Pre-convert the twiddle side (as a real NTT would); data side
    // converts on the fly.
    u64 w_mont[kBatch];
    for (std::size_t i = 0; i < kBatch; ++i) {
        w_mont[i] = mont.ToMontgomery(ops.w[i]);
    }
    for (auto _ : state) {
        u64 acc = 0;
        for (std::size_t i = 0; i < kBatch; ++i) {
            acc ^= mont.MulMont(ops.a[i], w_mont[i]);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
}

void
BM_ShoupPrecompute(benchmark::State &state)
{
    auto &ops = Ops();
    for (auto _ : state) {
        u64 acc = 0;
        for (std::size_t i = 0; i < kBatch; ++i) {
            acc ^= ShoupPrecompute(ops.w[i], ops.p);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
}

BENCHMARK(BM_MulModNative);
BENCHMARK(BM_MulModShoup);
BENCHMARK(BM_MulModBarrett);
BENCHMARK(BM_MulModMontgomery);
BENCHMARK(BM_ShoupPrecompute);

}  // namespace
