/**
 * Section I context — the NTT/iNTT share of an HE ciphertext multiply
 * on the GPU model. The paper motivates the whole study with this
 * statistic: 34% of ciphertext multiplication in [31] (N = 2^12) and
 * 50.04% in SEAL at (N = 2^15, Q = 2^881).
 */

#include <cstdio>

#include "bench_util.h"
#include "kernels/config_search.h"
#include "kernels/he_pipeline.h"

int
main()
{
    using namespace hentt;
    bench::Header("Section I", "NTT share of HE ciphertext multiply");
    const gpu::Simulator sim;

    std::printf("  %6s %6s %14s %12s %12s %10s\n", "logN", "np",
                "total (us)", "NTT (us)", "other (us)", "NTT share");
    for (unsigned log_n = 13; log_n <= 17; ++log_n) {
        const std::size_t n = std::size_t{1} << log_n;
        for (std::size_t np : {std::size_t{15}, std::size_t{21}}) {
            const auto cfg =
                kernels::FindBestSmemConfig(sim, n, np, 8, 2).config;
            const auto est =
                kernels::EstimateHeMultiply(sim, cfg, np);
            std::printf("  %6u %6zu %14.1f %12.1f %12.1f %9.1f%%\n",
                        log_n, np, est.total_us, est.ntt.total_us,
                        est.elementwise.total_us, est.ntt_share * 100.0);
        }
    }
    bench::Note("paper: 34-50% depending on parameters; the share here "
                "is transform-vs-Hadamard only (relinearization's own "
                "NTTs would push it higher)");
    return 0;
}
