/**
 * Fig. 5 — the DFT counterpart of Fig. 4: high-radix sweep at
 * N = 2^16 / 2^17 with 21 batched sequences.
 *
 * Paper anchors: DFT's best radix is 32 (364.2 us at 2^17) because DFT
 * threads carry no modulus/Shoup state; occupancy at radix-32 is ~31%
 * higher than NTT's.
 */

#include <cstdio>

#include "bench_util.h"
#include "gpu/simulator.h"
#include "kernels/dft_kernels.h"
#include "kernels/highradix_kernel.h"

int
main()
{
    using namespace hentt;
    bench::Header("Fig. 5", "high-radix DFT sweep, batch = 21");
    const gpu::Simulator sim;
    const std::size_t radices[] = {2, 4, 8, 16, 32, 64, 128};

    for (unsigned log_n : {16u, 17u}) {
        const std::size_t n = std::size_t{1} << log_n;
        bench::Section("(" + std::string(log_n == 16 ? "a" : "b") +
                       ") N = 2^" + std::to_string(log_n));
        std::printf("  %7s %12s %14s\n", "radix", "time (us)",
                    "DRAM (MB)");
        for (std::size_t r : radices) {
            const auto est =
                sim.Estimate(kernels::DftHighRadixPlan(n, 21, r));
            std::printf("  %7zu %12.1f %14.1f", r, est.total_us,
                        est.dram_bytes / 1e6);
            if (log_n == 17 && r == 32) {
                std::printf("   (paper: 364.2 us, best)");
            }
            std::printf("\n");
        }
    }

    bench::Section("(c) occupancy & DRAM bandwidth utilization, N = 2^17");
    std::printf("  %7s %12s %12s\n", "radix", "occupancy", "DRAM util");
    for (std::size_t r : radices) {
        const auto est =
            sim.Estimate(kernels::DftHighRadixPlan(1 << 17, 21, r));
        std::printf("  %7zu %11.1f%% %11.1f%%\n", r,
                    est.occupancy * 100.0, est.dram_utilization * 100.0);
    }

    bench::Section("NTT-vs-DFT occupancy gap at radix 32 (paper: -31.2%)");
    const auto ntt32 =
        sim.Estimate(kernels::HighRadixKernel(32).Plan(1 << 17, 21));
    const auto dft32 =
        sim.Estimate(kernels::DftHighRadixPlan(1 << 17, 21, 32));
    bench::Row("NTT radix-32 occupancy", ntt32.occupancy * 100.0, "%");
    bench::Row("DFT radix-32 occupancy", dft32.occupancy * 100.0, "%");
    bench::Ratio("NTT / DFT occupancy", ntt32.occupancy / dft32.occupancy,
                 1.0 - 0.312);
    return 0;
}
