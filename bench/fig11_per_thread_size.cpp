/**
 * Fig. 11 — the per-thread NTT/DFT size trade-off in the SMEM
 * implementation (a: NTT, b: DFT), plus OT applied to the last 1-2
 * stages (c); N = 2^17, np/batch = 21.
 *
 * Paper anchors: 4-point per-thread NTT is 30.1% faster than 2-point;
 * 4 and 8 perform similarly; every SMEM configuration beats the best
 * register-based kernel (radix-16 NTT at 566 us, radix-32 DFT at
 * 364.2 us); OT on the last stage(s) improves the 8-point configs.
 */

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "gpu/simulator.h"
#include "kernels/batch_workload.h"
#include "kernels/dft_kernels.h"
#include "kernels/highradix_kernel.h"
#include "kernels/smem_kernel.h"

namespace {

struct Combo {
    std::size_t k1, k2;
};

constexpr Combo kCombos[] = {
    {512, 256}, {256, 512}, {128, 1024}, {64, 2048}};

}  // namespace

int
main()
{
    using namespace hentt;
    bench::Header("Fig. 11", "per-thread NTT size and OT stage count");
    const gpu::Simulator sim;
    const std::size_t np = 21;

    bench::Section("(a) NTT: time (us) by per-thread size");
    std::printf("  %12s %10s %10s %10s\n", "K1xK2", "2-point", "4-point",
                "8-point");
    for (const auto &combo : kCombos) {
        std::printf("  %6zux%-5zu", combo.k1, combo.k2);
        for (std::size_t pts : {2, 4, 8}) {
            kernels::SmemConfig cfg;
            cfg.kernel1_size = combo.k1;
            cfg.kernel2_size = combo.k2;
            cfg.points_per_thread = pts;
            const auto est =
                sim.Estimate(kernels::SmemKernel(cfg).Plan(np));
            std::printf(" %10.1f", est.total_us);
        }
        std::printf("\n");
    }
    const double reg16 =
        sim.Estimate(kernels::HighRadixKernel(16).Plan(1 << 17, np))
            .total_us;
    bench::Row("register radix-16 line", reg16, "us", 566.0);

    bench::Section("(b) DFT: time (us) by per-thread size");
    std::printf("  %12s %10s %10s %10s\n", "K1xK2", "2-point", "4-point",
                "8-point");
    for (const auto &combo : kCombos) {
        std::printf("  %6zux%-5zu", combo.k1, combo.k2);
        for (std::size_t pts : {2, 4, 8}) {
            const auto est = sim.Estimate(
                kernels::DftSmemPlan(combo.k1, combo.k2, np, pts));
            std::printf(" %10.1f", est.total_us);
        }
        std::printf("\n");
    }
    const double reg32 =
        sim.Estimate(kernels::DftHighRadixPlan(1 << 17, np, 32)).total_us;
    bench::Row("register radix-32 line", reg32, "us", 364.2);

    bench::Section("(c) NTT, 8-point per-thread: OT on last 0/1/2 stages");
    std::printf("  %12s %10s %10s %10s\n", "K1xK2", "no OT", "OT last 1",
                "OT last 2");
    for (const auto &combo : kCombos) {
        std::printf("  %6zux%-5zu", combo.k1, combo.k2);
        for (unsigned ot : {0u, 1u, 2u}) {
            kernels::SmemConfig cfg;
            cfg.kernel1_size = combo.k1;
            cfg.kernel2_size = combo.k2;
            cfg.ot_stages = ot;
            const auto est =
                sim.Estimate(kernels::SmemKernel(cfg).Plan(np));
            std::printf(" %10.1f", est.total_us);
        }
        std::printf("\n");
    }

    // Paper's 2-vs-4-point headline ratio on the best combo.
    kernels::SmemConfig cfg;
    cfg.kernel1_size = 512;
    cfg.kernel2_size = 256;
    cfg.points_per_thread = 2;
    const double t2 = sim.Estimate(kernels::SmemKernel(cfg).Plan(np))
                          .total_us;
    cfg.points_per_thread = 4;
    const double t4 = sim.Estimate(kernels::SmemKernel(cfg).Plan(np))
                          .total_us;
    bench::Ratio("2-point / 4-point", t2 / t4, 1.301);

    // Measured counterpart of the headline config: the batch executed
    // functionally on the CPU as ONE ParallelFor dispatch over the
    // rows (the HE layer's batching path), so the model sweep and the
    // real execution layer share a dispatch story.
    bench::Section("measured: CPU pool execution, 512x256 config");
    {
        kernels::NttBatchWorkload workload(cfg.n(), np);
        workload.Randomize(/*seed=*/11);
        const kernels::SmemKernel kernel(cfg);
        const auto t0 = std::chrono::steady_clock::now();
        kernel.Execute(workload);
        const auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        std::printf("  lanes=%zu  batch np=%zu: %.2f ms (%.3f ms/prime)\n",
                    GlobalThreadCount(), np, ms,
                    ms / static_cast<double>(np));
    }
    return 0;
}
