/**
 * @file
 * hentt-daemon CLI: bind a unix-domain socket and serve HE evaluation
 * requests until SIGINT/SIGTERM or a client's Shutdown frame.
 */

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include <unistd.h>

#include "serve/daemon.h"

namespace {

void
Usage(const char *argv0)
{
    std::cerr
        << "usage: " << argv0 << " --socket PATH [options]\n"
        << "  --socket PATH      unix-domain socket to listen on\n"
        << "  --max-batch N      requests coalesced per wavefront "
           "batch (default 64)\n"
        << "  --max-wait-us N    admission-window deadline in "
           "microseconds (default 2000)\n"
        << "  --no-coalesce      execute every request as a batch of "
           "one (ablation)\n";
}

}  // namespace

int
main(int argc, char **argv)
{
    hentt::serve::DaemonConfig config;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket" && i + 1 < argc) {
            config.socket_path = argv[++i];
        } else if (arg == "--max-batch" && i + 1 < argc) {
            config.batch.max_batch =
                static_cast<std::size_t>(std::atoll(argv[++i]));
        } else if (arg == "--max-wait-us" && i + 1 < argc) {
            config.batch.max_wait =
                std::chrono::microseconds(std::atoll(argv[++i]));
        } else if (arg == "--no-coalesce") {
            config.batch.coalesce = false;
        } else {
            Usage(argv[0]);
            return arg == "--help" ? 0 : 1;
        }
    }
    if (config.socket_path.empty()) {
        Usage(argv[0]);
        return 1;
    }

    // Block the stop signals in every thread; a dedicated sigwait
    // thread turns them into a clean RequestStop instead of killing a
    // worker mid-kernel.
    sigset_t stop_signals;
    sigemptyset(&stop_signals);
    sigaddset(&stop_signals, SIGINT);
    sigaddset(&stop_signals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &stop_signals, nullptr);

    hentt::serve::Daemon daemon(config);
    const hentt::Status started = daemon.Start();
    if (!started.ok()) {
        std::cerr << "hentt-daemon: " << started.ToString() << "\n";
        return 1;
    }
    std::cout << "hentt-daemon listening on " << config.socket_path
              << " (max_batch=" << config.batch.max_batch
              << ", max_wait_us=" << config.batch.max_wait.count()
              << ", coalesce="
              << (config.batch.coalesce ? "on" : "off") << ")"
              << std::endl;

    std::thread signal_thread([&stop_signals, &daemon] {
        int signo = 0;
        sigwait(&stop_signals, &signo);
        daemon.RequestStop();
    });
    daemon.Wait();
    // If the stop came over the wire (kShutdown) the sigwait thread is
    // still blocked; a process-directed SIGTERM (blocked, so it stays
    // pending) is consumed by its sigwait for a clean join. raise()
    // would NOT work here: in a multithreaded process it targets the
    // calling thread only, and main keeps SIGTERM blocked forever.
    kill(getpid(), SIGTERM);
    signal_thread.join();

    const hentt::serve::WireStats stats = daemon.Stats();
    std::cout << "hentt-daemon stopped: " << stats.requests_completed
              << " completed, " << stats.requests_failed
              << " failed, " << stats.batches_executed << " batches"
              << std::endl;
    return 0;
}
