/**
 * @file
 * hentt-client CLI: poke a running hentt-daemon.
 *
 *   ping      liveness round trip
 *   stats     print the daemon's counters
 *   demo      full encrypted round trip: keygen locally, create a
 *             session, upload keys, submit (a*b relinearized and
 *             mod-switched), await, decrypt, verify the product
 *   shutdown  stop the daemon
 *
 * The demo is the CI smoke test for the built binaries: it exercises
 * the whole wire path (handshake, session, keys, graph, poll) against
 * a real daemon process and exits non-zero unless the decrypted result
 * matches the locally computed product.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "he/sampling.h"
#include "serve/client.h"

namespace {

void
Usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " --socket PATH (ping|stats|demo|shutdown)\n";
}

int
RunDemo(hentt::serve::Client &client)
{
    using namespace hentt;

    he::HeParams params;
    params.degree = 64;
    params.prime_count = 3;
    params.prime_bits = 50;
    params.plain_modulus = 257;

    Result<u64> session = client.CreateSession(params);
    if (!session.ok()) {
        std::cerr << "CreateSession: " << session.status().ToString()
                  << "\n";
        return 1;
    }
    std::cout << "session " << *session << " created\n";

    he::BgvScheme scheme(client.context(), /*seed=*/7);
    he::SecretKey sk = scheme.KeyGen();
    he::RelinKey rk = scheme.MakeRelinKey(sk);
    Status loaded = client.LoadKeys(rk);
    if (!loaded.ok()) {
        std::cerr << "LoadKeys: " << loaded.ToString() << "\n";
        return 1;
    }

    Xoshiro256 rng(11);
    he::Plaintext a(params.degree), b(params.degree);
    for (std::size_t i = 0; i < params.degree; ++i) {
        a[i] = rng.Next() % params.plain_modulus;
        b[i] = rng.Next() % params.plain_modulus;
    }

    // Program over slots: 0,1 = inputs; 2 = a*b; 3 = relin(2);
    // 4 = modswitch(3). Return slot 4.
    std::vector<he::Ciphertext> inputs;
    inputs.push_back(scheme.Encrypt(sk, a));
    inputs.push_back(scheme.Encrypt(sk, b));
    const std::vector<serve::WireProgram::Op> ops = {
        {serve::WireOp::kMul, 0, 1},
        {serve::WireOp::kRelin, 2, 0},
        {serve::WireOp::kModSwitch, 3, 0},
    };
    Result<u64> request = client.SubmitGraph(inputs, ops, {4});
    if (!request.ok()) {
        std::cerr << "SubmitGraph: " << request.status().ToString()
                  << "\n";
        return 1;
    }
    Result<std::vector<he::Ciphertext>> outputs =
        client.AwaitDone(*request);
    if (!outputs.ok()) {
        std::cerr << "AwaitDone: " << outputs.status().ToString()
                  << "\n";
        return 1;
    }
    if (outputs->size() != 1) {
        std::cerr << "demo: expected 1 output, got "
                  << outputs->size() << "\n";
        return 1;
    }

    // Negacyclic product of the plaintexts, mod t — the expected
    // decryption.
    const u64 t = params.plain_modulus;
    he::Plaintext expected(params.degree, 0);
    for (std::size_t i = 0; i < params.degree; ++i) {
        for (std::size_t j = 0; j < params.degree; ++j) {
            const u64 prod = (a[i] * b[j]) % t;
            const std::size_t k = i + j;
            if (k < params.degree) {
                expected[k] = (expected[k] + prod) % t;
            } else {
                const std::size_t w = k - params.degree;
                expected[w] = (expected[w] + t - prod) % t;
            }
        }
    }
    const he::Plaintext got = scheme.Decrypt(sk, outputs->front());
    if (got != expected) {
        std::cerr << "demo: decrypted product mismatch\n";
        return 1;
    }
    std::cout << "demo: encrypted a*b round trip verified ("
              << params.degree << " coefficients mod " << t << ")\n";
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    std::string command;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--socket" && i + 1 < argc) {
            socket_path = argv[++i];
        } else if (command.empty() && !arg.empty() && arg[0] != '-') {
            command = arg;
        } else {
            Usage(argv[0]);
            return arg == "--help" ? 0 : 1;
        }
    }
    if (socket_path.empty() || command.empty()) {
        Usage(argv[0]);
        return 1;
    }

    hentt::Result<std::unique_ptr<hentt::serve::Client>> client =
        hentt::serve::Client::Connect(socket_path);
    if (!client.ok()) {
        std::cerr << "connect: " << client.status().ToString() << "\n";
        return 1;
    }

    if (command == "ping") {
        const hentt::Status status = (*client)->Ping();
        if (!status.ok()) {
            std::cerr << "ping: " << status.ToString() << "\n";
            return 1;
        }
        std::cout << "pong (protocol v"
                  << (*client)->protocol_version() << ")\n";
        return 0;
    }
    if (command == "stats") {
        hentt::Result<hentt::serve::WireStats> stats =
            (*client)->Stats();
        if (!stats.ok()) {
            std::cerr << "stats: " << stats.status().ToString()
                      << "\n";
            return 1;
        }
        std::cout << "sessions_created=" << stats->sessions_created
                  << " sessions_active=" << stats->sessions_active
                  << " requests_submitted=" << stats->requests_submitted
                  << " requests_completed=" << stats->requests_completed
                  << " requests_failed=" << stats->requests_failed
                  << " batches_executed=" << stats->batches_executed
                  << " coalesced_requests=" << stats->coalesced_requests
                  << " max_batch_observed=" << stats->max_batch_observed
                  << "\n";
        return 0;
    }
    if (command == "demo") {
        return RunDemo(**client);
    }
    if (command == "shutdown") {
        const hentt::Status status = (*client)->Shutdown();
        if (!status.ok()) {
            std::cerr << "shutdown: " << status.ToString() << "\n";
            return 1;
        }
        std::cout << "daemon acknowledged shutdown\n";
        return 0;
    }
    Usage(argv[0]);
    return 1;
}
