/**
 * Distribution tests for the he/sampling samplers under the pbt
 * harness: ternary support and balance, rounded-Gaussian tail and
 * moment bounds, centered-binomial support and variance. Statistical
 * assertions aggregate across all cases of a property (the pbt case
 * count is known up front), so the bounds hold at many standard
 * deviations even when CI randomizes the seed per run.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "he/bgv.h"
#include "he/sampling.h"
#include "pbt.h"

namespace hentt::he {
namespace {

std::shared_ptr<const HeContext>
SamplingContext()
{
    static const std::shared_ptr<const HeContext> ctx = [] {
        HeParams params;
        params.degree = 256;
        params.prime_count = 2;
        params.prime_bits = 50;
        params.plain_modulus = 257;
        return std::make_shared<const HeContext>(params);
    }();
    return ctx;
}

/**
 * Decode coefficient k as a signed value, asserting every RNS row
 * encodes the same one (the SetSignedCoefficient contract).
 */
long long
DecodeSigned(const RnsPoly &poly, std::size_t k)
{
    const RnsBasis &basis = poly.context().basis();
    long long value = 0;
    for (std::size_t i = 0; i < poly.prime_count(); ++i) {
        const u64 p = basis.prime(i);
        const u64 x = poly.row(i)[k];
        const long long v = x > p / 2
                                ? static_cast<long long>(x) -
                                      static_cast<long long>(p)
                                : static_cast<long long>(x);
        if (i == 0) {
            value = v;
        } else {
            EXPECT_EQ(v, value) << "row " << i << " coeff " << k
                                << " disagrees across RNS rows";
        }
    }
    return value;
}

HENTT_PBT_PROP(SamplingProperties, TernarySupportAndBalance, 150,
               (hentt::Xoshiro256 &rng, hentt::u64 case_index))
{
    static u64 counts[3] = {0, 0, 0};  // -1, 0, +1 across all cases
    static u64 total = 0;
    const auto ctx = SamplingContext();
    const RnsPoly s = SampleTernary(*ctx, rng);
    for (std::size_t k = 0; k < ctx->degree(); ++k) {
        const long long v = DecodeSigned(s, k);
        ASSERT_GE(v, -1) << "coeff " << k;
        ASSERT_LE(v, 1) << "coeff " << k;
        ++counts[v + 1];
        ++total;
    }
    const u64 cases = pbt::Resolve(150).cases;
    if (case_index + 1 == cases) {
        // Each symbol is Binomial(total, 1/3); allow 6 standard
        // deviations around the mean so a randomized CI seed cannot
        // flake the bound.
        const double mean = static_cast<double>(total) / 3.0;
        const double slack =
            6.0 * std::sqrt(static_cast<double>(total) * 2.0 / 9.0);
        for (int v = 0; v < 3; ++v) {
            EXPECT_NEAR(static_cast<double>(counts[v]), mean, slack)
                << "symbol " << (v - 1) << " of " << total;
        }
    }
}

HENTT_PBT_PROP(SamplingProperties, GaussianTailAndMoments, 150,
               (hentt::Xoshiro256 &rng, hentt::u64 case_index))
{
    static double sum = 0.0, sum_sq = 0.0;
    static u64 total = 0;
    const auto ctx = SamplingContext();
    const double sigma = ctx->params().noise_stddev;
    const RnsPoly e = SampleError(*ctx, rng);
    for (std::size_t k = 0; k < ctx->degree(); ++k) {
        const double v = static_cast<double>(DecodeSigned(e, k));
        // P(|N(0, sigma)| > 10 sigma) ~ 1e-23: any hit is a bug.
        ASSERT_LE(std::abs(v), 10.0 * sigma) << "coeff " << k;
        sum += v;
        sum_sq += v * v;
        ++total;
    }
    const u64 cases = pbt::Resolve(150).cases;
    if (case_index + 1 == cases) {
        const double n = static_cast<double>(total);
        const double mean = sum / n;
        const double var = sum_sq / n - mean * mean;
        // Rounding to integers adds 1/12 to the variance of the
        // underlying Gaussian; +-15% swallows it comfortably at the
        // default sigma.
        EXPECT_LE(std::abs(mean), 6.0 * sigma / std::sqrt(n));
        EXPECT_NEAR(var, sigma * sigma, 0.15 * sigma * sigma)
            << "over " << total << " samples";
    }
}

HENTT_PBT_PROP(SamplingProperties, CbdSupportAndVariance, 150,
               (hentt::Xoshiro256 &rng, hentt::u64 case_index))
{
    // Normalized second moment: e^2 / (eta / 2) has expectation 1 for
    // every eta, so draws with different eta aggregate cleanly.
    static double norm_sq = 0.0;
    static double sum = 0.0;
    static u64 total = 0;
    const auto ctx = SamplingContext();
    constexpr unsigned kEtas[] = {1, 2, 4, 8, 16};
    const unsigned eta = kEtas[rng.NextBelow(5)];
    const RnsPoly e = SampleCbd(*ctx, eta, rng);
    for (std::size_t k = 0; k < ctx->degree(); ++k) {
        const long long v = DecodeSigned(e, k);
        ASSERT_GE(v, -static_cast<long long>(eta)) << "coeff " << k;
        ASSERT_LE(v, static_cast<long long>(eta)) << "coeff " << k;
        sum += static_cast<double>(v);
        norm_sq += static_cast<double>(v) * static_cast<double>(v) /
                   (static_cast<double>(eta) / 2.0);
        ++total;
    }
    const u64 cases = pbt::Resolve(150).cases;
    if (case_index + 1 == cases) {
        const double n = static_cast<double>(total);
        // Var(CBD(eta)) = eta/2 exactly; the normalized mean-square
        // must sit within +-15% of 1.
        EXPECT_NEAR(norm_sq / n, 1.0, 0.15) << "over " << total;
        // Mean 0: |sum| grows like sqrt(n * eta/2) <= sqrt(8 n).
        EXPECT_LE(std::abs(sum), 6.0 * std::sqrt(8.0 * n));
    }
}

TEST(Sampling, CbdRejectsOutOfRangeEta)
{
    const auto ctx = SamplingContext();
    Xoshiro256 rng(1);
    EXPECT_THROW((void)SampleCbd(*ctx, 0, rng), std::invalid_argument);
    EXPECT_THROW((void)SampleCbd(*ctx, 65, rng), std::invalid_argument);
    // Boundary etas are legal.
    (void)SampleCbd(*ctx, 1, rng);
    (void)SampleCbd(*ctx, 64, rng);
}

}  // namespace
}  // namespace hentt::he
