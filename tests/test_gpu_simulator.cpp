/** Tests for the roofline time estimator. */

#include <gtest/gtest.h>

#include "gpu/simulator.h"

namespace hentt::gpu {
namespace {

KernelStats
StreamingKernel(double bytes)
{
    KernelStats k;
    k.name = "stream";
    k.resources.regs_per_thread = 26;
    k.resources.threads_per_block = 256;
    k.resources.grid_blocks = 1 << 20;
    k.dram_read_bytes = bytes / 2;
    k.dram_write_bytes = bytes / 2;
    k.transaction_bytes = bytes;
    k.compute_slots = 1;
    return k;
}

TEST(Simulator, BandwidthFactorSaturates)
{
    const Simulator sim;
    EXPECT_LT(sim.BandwidthFactor(0.05), 0.35);
    EXPECT_GT(sim.BandwidthFactor(0.5), 0.85);
    EXPECT_GT(sim.BandwidthFactor(1.0), 0.98);
    // Monotone.
    double prev = 0;
    for (double occ = 0.05; occ <= 1.0; occ += 0.05) {
        const double f = sim.BandwidthFactor(occ);
        EXPECT_GT(f, prev);
        prev = f;
    }
}

TEST(Simulator, MemoryBoundKernelNearPaperCeiling)
{
    // A fully occupied streaming kernel should achieve ~86.7% of peak
    // (the paper's measured ceiling on Titan V).
    const Simulator sim;
    const auto est = sim.Estimate(StreamingKernel(1e9));
    EXPECT_TRUE(est.memory_bound);
    EXPECT_GT(est.dram_utilization, 0.80);
    EXPECT_LE(est.dram_utilization, 0.87);
}

TEST(Simulator, ComputeBoundKernelIgnoresBandwidth)
{
    KernelStats k = StreamingKernel(1e6);
    k.compute_slots = 1e12;  // enormous arithmetic load
    const Simulator sim;
    const auto est = sim.Estimate(k);
    EXPECT_FALSE(est.memory_bound);
    EXPECT_GT(est.compute_us, est.mem_us);
    EXPECT_NEAR(est.compute_us,
                1e12 / (sim.device().SlotsPerSecond() *
                        sim.device().sustained_ipc) *
                    1e6,
                1.0);
}

TEST(Simulator, LowOccupancyShrinksBandwidth)
{
    KernelStats fat = StreamingKernel(1e9);
    fat.resources.regs_per_thread = 100;  // cap occupancy at 25%
    const Simulator sim;
    const auto est_fat = sim.Estimate(fat);
    const auto est_slim = sim.Estimate(StreamingKernel(1e9));
    EXPECT_GT(est_fat.total_us, est_slim.total_us * 1.3);
}

TEST(Simulator, LaunchOverheadAccumulates)
{
    const Simulator sim;
    KernelStats k = StreamingKernel(1e6);
    k.launches = 1;
    const auto one = sim.Estimate(k);
    k.launches = 17;
    const auto many = sim.Estimate(k);
    EXPECT_NEAR(many.total_us - one.total_us,
                16 * sim.device().kernel_launch_overhead_us, 1e-9);
}

TEST(Simulator, TransactionRoofPenalizesUncoalesced)
{
    const Simulator sim;
    KernelStats coalesced = StreamingKernel(1e8);
    KernelStats uncoalesced = coalesced;
    uncoalesced.transaction_bytes = 4e8;  // 4x sector expansion
    const auto a = sim.Estimate(coalesced);
    const auto b = sim.Estimate(uncoalesced);
    EXPECT_GT(b.total_us, a.total_us);
}

TEST(Simulator, PlanAccumulation)
{
    const Simulator sim;
    const LaunchPlan plan = {StreamingKernel(1e8), StreamingKernel(2e8)};
    const auto total = sim.Estimate(plan);
    const auto first = sim.Estimate(plan[0]);
    const auto second = sim.Estimate(plan[1]);
    EXPECT_NEAR(total.total_us, first.total_us + second.total_us, 1e-9);
    EXPECT_NEAR(total.dram_bytes, 3e8, 1.0);
}

TEST(Simulator, LmemCountsTowardDram)
{
    const Simulator sim;
    KernelStats k = StreamingKernel(1e8);
    KernelStats spill = k;
    spill.lmem_bytes = 1e8;
    spill.transaction_bytes += 1e8;
    EXPECT_GT(sim.Estimate(spill).total_us, sim.Estimate(k).total_us);
}

TEST(DeviceSpec, TitanVConstants)
{
    const auto dev = DeviceSpec::TitanV();
    EXPECT_EQ(dev.num_sms, 80u);
    EXPECT_NEAR(dev.peak_dram_gbps, 652.8, 1e-9);
    EXPECT_NEAR(dev.streaming_efficiency, 0.867, 1e-9);
    EXPECT_EQ(dev.ThreadCapacity(), 80u * 2048u);
}

}  // namespace
}  // namespace hentt::gpu
