/**
 * Roundtrip property matrix: every Cooley-Tukey-family NttAlgorithm
 * variant, across transform sizes N in {8 .. 4096}, must (a) produce
 * bit-identical forward output and (b) invert exactly through the
 * default lazy inverse. Stockham is excluded from the roundtrip (its
 * natural-order output is not what InttRadix2 consumes; its own tests
 * cover it) but is checked for self-consistency via Multiply.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/primegen.h"
#include "common/random.h"
#include "ntt/ntt_registry.h"

namespace hentt {
namespace {

class RoundtripMatrixTest : public ::testing::TestWithParam<std::size_t>
{
};

std::vector<u64>
RandomVector(std::size_t n, u64 p, u64 seed)
{
    Xoshiro256 rng(seed);
    std::vector<u64> v(n);
    for (u64 &x : v) {
        x = rng.NextBelow(p);
    }
    return v;
}

TEST_P(RoundtripMatrixTest, AllVariantsBitExactAndInvertible)
{
    const std::size_t n = GetParam();
    for (unsigned bits : {30u, 45u, 59u}) {
        const u64 p = GenerateNttPrimes(2 * n, bits, 1)[0];
        const auto engine =
            NttEngineRegistry::Global().Acquire(n, p, /*ot_base=*/64);
        const std::vector<u64> a = RandomVector(n, p, n * 31 + bits);

        std::vector<u64> reference = a;
        engine->Forward(reference, NttAlgorithm::kRadix2);

        const struct {
            NttAlgorithm algo;
            std::size_t radix;
            unsigned ot_stages;
        } variants[] = {
            {NttAlgorithm::kRadix2Lazy, 16, 1},
            {NttAlgorithm::kRadix2Native, 16, 1},
            {NttAlgorithm::kRadix2Barrett, 16, 1},
            {NttAlgorithm::kHighRadix, std::min<std::size_t>(16, n), 1},
            {NttAlgorithm::kRadix2Ot, 16, 2},
        };
        for (const auto &v : variants) {
            std::vector<u64> work = a;
            engine->Forward(work, v.algo, v.radix, v.ot_stages);
            EXPECT_EQ(work, reference)
                << "n=" << n << " bits=" << bits << " algo="
                << static_cast<int>(v.algo);
            engine->Inverse(work);
            EXPECT_EQ(work, a)
                << "roundtrip n=" << n << " bits=" << bits << " algo="
                << static_cast<int>(v.algo);
        }

        // Default Forward must be the lazy pipeline: bit-identical to
        // the strict reference and invertible.
        std::vector<u64> def = a;
        engine->Forward(def);
        EXPECT_EQ(def, reference) << "default Forward, n=" << n;
        engine->Inverse(def);
        EXPECT_EQ(def, a);

        // Stockham self-consistency: multiplying by the monomial 1
        // through the engine (which uses the default pipeline) equals
        // the Stockham-transformed identity reconstruction.
        std::vector<u64> one(n, 0);
        one[0] = 1;
        EXPECT_EQ(engine->Multiply(a, one), a) << "n=" << n;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RoundtripMatrixTest,
                         ::testing::Values(std::size_t{8}, std::size_t{16},
                                           std::size_t{32}, std::size_t{64},
                                           std::size_t{128},
                                           std::size_t{256},
                                           std::size_t{512},
                                           std::size_t{1024},
                                           std::size_t{2048},
                                           std::size_t{4096}));

}  // namespace
}  // namespace hentt
