/** Tests for the SMEM configuration search. */

#include <gtest/gtest.h>

#include "kernels/config_search.h"

namespace hentt::kernels {
namespace {

TEST(CandidateConfigs, RespectPaperConstraints)
{
    const auto configs = CandidateSmemConfigs(1 << 17);
    EXPECT_FALSE(configs.empty());
    for (const auto &cfg : configs) {
        EXPECT_EQ(cfg.kernel1_size * cfg.kernel2_size, 1u << 17);
        EXPECT_GE(cfg.kernel1_size, 64u);
        EXPECT_GE(cfg.kernel2_size, 64u);
        EXPECT_LE(cfg.kernel1_size, 512u);   // preloadable K1 slice
        EXPECT_LE(cfg.kernel2_size, 2048u);  // SMEM radix cap 2^11
    }
    // Paper Fig. 12(a) shows exactly 4 combos for logN = 17: 512x256,
    // 256x512, 128x1024, 64x2048.
    EXPECT_EQ(configs.size(), 4u);
}

TEST(CandidateConfigs, RejectsTinyN)
{
    EXPECT_THROW(CandidateSmemConfigs(1 << 10), std::invalid_argument);
}

TEST(RankConfigs, SortedByTime)
{
    const gpu::Simulator sim;
    const auto ranked = RankSmemConfigs(sim, 1 << 17, 21);
    ASSERT_GE(ranked.size(), 2u);
    for (std::size_t i = 1; i < ranked.size(); ++i) {
        EXPECT_LE(ranked[i - 1].estimate.total_us,
                  ranked[i].estimate.total_us);
    }
}

TEST(RankConfigs, SpreadIsSmall)
{
    // Paper Section VIII: the performance difference across radix
    // combinations for a given N is negligible (< ~16%).
    const gpu::Simulator sim;
    for (unsigned log_n = 14; log_n <= 17; ++log_n) {
        const auto ranked =
            RankSmemConfigs(sim, std::size_t{1} << log_n, 21);
        const double best = ranked.front().estimate.total_us;
        const double worst = ranked.back().estimate.total_us;
        EXPECT_LT(worst / best, 1.35) << "logN " << log_n;
    }
}

TEST(FindBest, AgreesWithRankFront)
{
    const gpu::Simulator sim;
    const auto best = FindBestSmemConfig(sim, 1 << 16, 21);
    const auto ranked = RankSmemConfigs(sim, 1 << 16, 21);
    EXPECT_EQ(best.config.kernel1_size,
              ranked.front().config.kernel1_size);
    EXPECT_DOUBLE_EQ(best.estimate.total_us,
                     ranked.front().estimate.total_us);
}

TEST(FindBest, OtVariantIsFasterAtPaperScale)
{
    const gpu::Simulator sim;
    for (unsigned log_n = 14; log_n <= 17; ++log_n) {
        const auto base =
            FindBestSmemConfig(sim, std::size_t{1} << log_n, 21, 8, 0);
        const auto ot =
            FindBestSmemConfig(sim, std::size_t{1} << log_n, 21, 8, 2);
        EXPECT_LT(ot.estimate.total_us, base.estimate.total_us)
            << "logN " << log_n;
    }
}

}  // namespace
}  // namespace hentt::kernels
