/**
 * Warp-trace oracle cross-check (promised in DESIGN.md Section 5): we
 * generate the *actual byte addresses* touched by warps of the GPU NTT
 * kernels' access patterns and feed them to the exact coalescing
 * simulator, validating the closed-form transaction accounting the
 * kernel emulations and benches rely on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/bitops.h"
#include "gpu/memory_model.h"

namespace hentt::gpu {
namespace {

constexpr std::size_t kWarp = 32;
constexpr std::size_t kElem = 8;  // 64-bit NTT words

/** Addresses touched by one warp of the radix-2 kernel at stage m:
 *  thread i handles butterfly (a[k], a[k + t]) with consecutive k. */
std::vector<u64>
Radix2StageWarpAddresses(std::size_t n, std::size_t m, bool high_half)
{
    const std::size_t t = n / (2 * m);
    std::vector<u64> addrs;
    for (std::size_t lane = 0; lane < kWarp; ++lane) {
        // Butterfly index -> (group j, offset k); consecutive lanes get
        // consecutive butterflies.
        const std::size_t j = lane / t;
        const std::size_t k = lane % t;
        const std::size_t low = j * 2 * t + k;
        addrs.push_back((high_half ? low + t : low) * kElem);
    }
    return addrs;
}

TEST(WarpTrace, Radix2EarlyStagesFullyCoalesced)
{
    // Early stages: t >= 32, so a warp's 32 butterflies sit at 32
    // consecutive low addresses -> 8 transactions for 32 x 8B.
    const std::size_t n = 1 << 12;
    for (std::size_t m : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        const auto low = Radix2StageWarpAddresses(n, m, false);
        const auto high = Radix2StageWarpAddresses(n, m, true);
        EXPECT_EQ(WarpTransactions(low, kElem), kWarp * kElem / 32)
            << "stage m=" << m;
        EXPECT_EQ(WarpTransactions(high, kElem), kWarp * kElem / 32);
    }
}

TEST(WarpTrace, Radix2LateStagesStillCoalescedAcrossGroups)
{
    // Late stages (t < 32): a warp spans several butterfly groups, but
    // the low elements of consecutive groups are interleaved with the
    // high elements, so the union of low+high accesses covers a dense
    // 64-element window: together still 16 transactions, i.e. no waste.
    const std::size_t n = 1 << 12;
    for (std::size_t m : {n / 4, n / 2}) {
        auto addrs = Radix2StageWarpAddresses(n, m, false);
        const auto high = Radix2StageWarpAddresses(n, m, true);
        addrs.insert(addrs.end(), high.begin(), high.end());
        EXPECT_EQ(WarpTransactions(addrs, kElem),
                  2 * kWarp * kElem / 32)
            << "stage m=" << m;
    }
}

/** Kernel-1 gather: thread i loads element i*stride + step (the naive,
 *  unfused mapping of Fig. 6(a) with per-thread-contiguous data). */
std::vector<u64>
UnfusedKernel1WarpAddresses(std::size_t points_per_thread,
                            std::size_t step)
{
    std::vector<u64> addrs;
    for (std::size_t lane = 0; lane < kWarp; ++lane) {
        addrs.push_back((lane * points_per_thread + step) * kElem);
    }
    return addrs;
}

TEST(WarpTrace, UnfusedKernel1Wastes75Percent)
{
    // The paper's Fig. 6(a): each thread owns 4 consecutive points and
    // loads one per step -> lane stride 32 bytes -> 32 transactions for
    // 32 lanes (75% of each sector wasted at that instant).
    const auto addrs = UnfusedKernel1WarpAddresses(4, 0);
    EXPECT_EQ(WarpTransactions(addrs, kElem), kWarp);
    EXPECT_DOUBLE_EQ(CoalescingExpansion(4 * kElem, kElem), 4.0);
}

TEST(WarpTrace, FusedKernel1IsDense)
{
    // Fig. 6(b): after block fusion, lanes read consecutive elements.
    std::vector<u64> addrs;
    for (std::size_t lane = 0; lane < kWarp; ++lane) {
        addrs.push_back(lane * kElem);
    }
    EXPECT_EQ(WarpTransactions(addrs, kElem), kWarp * kElem / 32);
    EXPECT_DOUBLE_EQ(CoalescingExpansion(kElem, kElem), 1.0);
}

TEST(WarpTrace, UnfusedLinesAreReusedAcrossSteps)
{
    // The justification for the model's mild uncoalesced DRAM penalty
    // (kUncoalescedDramReadFactor < 4): over the 4 load steps, the warp
    // touches exactly the same dense 1KB window the fused version
    // reads, so the over-fetched sectors are L1/L2 hits on later steps.
    std::vector<u64> all_steps;
    for (std::size_t step = 0; step < 4; ++step) {
        const auto addrs = UnfusedKernel1WarpAddresses(4, step);
        all_steps.insert(all_steps.end(), addrs.begin(), addrs.end());
    }
    // Union over steps: 128 consecutive elements -> 32 transactions,
    // identical to the fused total.
    EXPECT_EQ(WarpTransactions(all_steps, kElem),
              4 * kWarp * kElem / 32);
}

TEST(WarpTrace, StridedClosedFormMatchesTraceForKernel1Strides)
{
    // The closed form used by the benches agrees with exact traces for
    // every stride the Kernel-1 configurations produce.
    for (std::size_t stride_elems : {1u, 2u, 4u, 8u, 64u, 256u, 2048u}) {
        std::vector<u64> addrs;
        for (std::size_t lane = 0; lane < kWarp; ++lane) {
            addrs.push_back(lane * stride_elems * kElem);
        }
        EXPECT_EQ(StridedWarpTransactions(stride_elems * kElem, kElem),
                  WarpTransactions(addrs, kElem))
            << "stride " << stride_elems;
    }
}

}  // namespace
}  // namespace hentt::gpu
