/**
 * Backend parity sweep for the SIMD modular-arithmetic layer: every
 * kernel x every available backend x degrees {16..4096} x 5 NTT primes
 * must be *bit-identical* to the scalar reference — lazy [0, 4p)
 * representatives included, not merely congruent mod p. Inputs mix
 * uniform randomness with planted lazy-range boundary values (0, 1,
 * p +/- 1, 2p +/- 1, 4p - 1) so the conditional-subtract edges of every
 * vector lane are exercised.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/primegen.h"
#include "common/random.h"
#include "ntt/ntt_engine.h"
#include "ntt/ntt_lazy.h"
#include "simd/simd_internal.h"

namespace hentt {
namespace {

constexpr std::size_t kDegrees[] = {16, 64, 256, 1024, 4096};
constexpr unsigned kPrimeBits[] = {50, 52, 55, 58, 60};

std::vector<u64>
Primes()
{
    std::vector<u64> primes;
    for (const unsigned bits : kPrimeBits) {
        // 2 * 4096 divisibility covers every degree in the sweep.
        primes.push_back(GenerateNttPrimes(2 * 4096, bits, 1)[0]);
    }
    return primes;
}

/** Uniform values below @p bound with boundary values planted at the
 *  front (capped to the bound), exercising every correction edge. */
std::vector<u64>
Values(std::size_t n, u64 bound, u64 p, u64 seed)
{
    Xoshiro256 rng(seed);
    std::vector<u64> v(n);
    for (u64 &x : v) {
        x = rng.NextBelow(bound);
    }
    const u64 edges[] = {0,      1,          p - 1, p,     p + 1,
                         2 * p - 1, 2 * p,   2 * p + 1, 4 * p - 1};
    std::size_t slot = 0;
    for (const u64 e : edges) {
        if (e < bound && slot < n) {
            v[slot++] = e;
        }
    }
    return v;
}

using SimdParityTest = ::testing::TestWithParam<std::size_t>;

/**
 * Every non-scalar kernel table available on this host, with a label
 * for failure messages — enumerated from kAllBackends, so a new
 * backend (the IFMA ablation tier, the NEON port) joins the parity
 * sweep with zero edits here. The all-vector AVX2 table rides along
 * (it exercises the vector Barrett family and genuinely fused radix-4
 * rows even where the production AVX2 table borrows other entries).
 * On a host with no vector backend the list is empty and the sweep
 * passes vacuously — the scalar reference is the anchor, not a
 * participant.
 */
std::vector<std::pair<std::string, const simd::Kernels *>>
VectorTables()
{
    std::vector<std::pair<std::string, const simd::Kernels *>> tables;
    for (const simd::Backend backend : simd::kAllBackends) {
        if (backend == simd::Backend::kScalar ||
            !simd::BackendAvailable(backend)) {
            continue;
        }
        tables.emplace_back(simd::BackendName(backend),
                            &simd::Get(backend));
        if (backend == simd::Backend::kAvx2) {
            tables.emplace_back("avx2-allvec",
                                &simd::internal::Avx2AllVectorKernels());
        }
    }
    return tables;
}

/** Rows + whole-stage parity of one table against the scalar
 *  reference, all primes, degree @p n. */
void
CheckButterflyParity(const std::string &name, const simd::Kernels &vec,
                     std::size_t n)
{
    SCOPED_TRACE(name);
    const auto &ref = simd::Get(simd::Backend::kScalar);
    for (const u64 p : Primes()) {
        // Twiddle stream: strict values < p with Shoup companions.
        const std::vector<u64> w = Values(n, p, p, 11 * p + n);
        std::vector<u64> w_bar(n);
        for (std::size_t i = 0; i < n; ++i) {
            w_bar[i] = ShoupPrecompute(w[i], p);
        }

        // Contiguous-row form (constant twiddle).
        {
            std::vector<u64> x0 = Values(n, 4 * p, p, 1 + p);
            std::vector<u64> y0 = Values(n, 4 * p, p, 2 + p);
            std::vector<u64> x1 = x0, y1 = y0;
            ref.fwd_butterfly_rows(x0.data(), y0.data(), n, w[0],
                                   w_bar[0], p);
            vec.fwd_butterfly_rows(x1.data(), y1.data(), n, w[0],
                                   w_bar[0], p);
            EXPECT_EQ(x0, x1);
            EXPECT_EQ(y0, y1);

            std::vector<u64> u0 = Values(n, 2 * p, p, 3 + p);
            std::vector<u64> v0 = Values(n, 2 * p, p, 4 + p);
            std::vector<u64> u1 = u0, v1 = v0;
            ref.inv_butterfly_rows(u0.data(), v0.data(), n, w[0],
                                   w_bar[0], p);
            vec.inv_butterfly_rows(u1.data(), v1.data(), n, w[0],
                                   w_bar[0], p);
            EXPECT_EQ(u0, u1);
            EXPECT_EQ(v0, v1);
        }

        // Whole-stage form across the tail runs (t in {1, 2}) and a
        // contiguous-row run (t = 4), at odd block counts too, so the
        // vector bodies AND their scalar remainders run.
        for (const std::size_t t :
             {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
            for (const std::size_t m : {n / (2 * t), n / (2 * t) - 1}) {
                if (m == 0) {
                    continue;
                }
                std::vector<u64> a0 = Values(2 * m * t, 4 * p, p, m + t);
                std::vector<u64> a1 = a0;
                ref.fwd_butterfly_stage(a0.data(), w.data(),
                                        w_bar.data(), m, t, p);
                vec.fwd_butterfly_stage(a1.data(), w.data(),
                                        w_bar.data(), m, t, p);
                EXPECT_EQ(a0, a1) << "fwd stage t=" << t << " m=" << m;

                std::vector<u64> b0 = Values(2 * m * t, 2 * p, p, m + t);
                std::vector<u64> b1 = b0;
                ref.inv_butterfly_stage(b0.data(), w.data(),
                                        w_bar.data(), m, t, p);
                vec.inv_butterfly_stage(b1.data(), w.data(),
                                        w_bar.data(), m, t, p);
                EXPECT_EQ(b0, b1) << "inv stage t=" << t << " m=" << m;
            }
        }
    }
}

TEST_P(SimdParityTest, ButterflyRowsAndTails)
{
    for (const auto &[name, table] : VectorTables()) {
        CheckButterflyParity(name, *table, GetParam());
    }
}

/**
 * Fused radix-4 stage pairs: every backend x quarter lengths covering
 * the row form and all shuffle tails x odd block counts (so the vector
 * bodies AND their scalar remainders run), with planted lazy-range
 * boundary values. Two independent anchors:
 *  - the scalar stage4 kernel must be bit-identical to two chained
 *    radix-2 scalar reference stages (the fused kernel IS that
 *    composition), and
 *  - every vector backend must be bit-identical to the scalar stage4.
 */
TEST_P(SimdParityTest, FusedRadix4Stages)
{
    const std::size_t n = GetParam();
    const auto &ref = simd::Get(simd::Backend::kScalar);
    for (const u64 p : Primes()) {
        for (const std::size_t q :
             {std::size_t{1}, std::size_t{2}, std::size_t{4},
              std::size_t{8}, std::size_t{16}}) {
            for (const std::size_t m : {n / (4 * q), n / (4 * q) - 1}) {
                if (m == 0 || 4 * q * m > n) {
                    continue;
                }
                // Interleaved stage-major twiddle streams: (w, w_bar)
                // pairs and (wa, wa_bar, wb, wb_bar) quads.
                const std::vector<u64> w = Values(3 * m, p, p, q + m);
                std::vector<u64> pairs(2 * m), quads(4 * m);
                for (std::size_t j = 0; j < m; ++j) {
                    pairs[2 * j] = w[j];
                    pairs[2 * j + 1] = ShoupPrecompute(w[j], p);
                    quads[4 * j] = w[(m + 2 * j) % (3 * m)];
                    quads[4 * j + 1] = ShoupPrecompute(quads[4 * j], p);
                    quads[4 * j + 2] = w[(m + 2 * j + 1) % (3 * m)];
                    quads[4 * j + 3] =
                        ShoupPrecompute(quads[4 * j + 2], p);
                }

                // Forward: scalar fused vs two chained radix-2 scalar
                // stages over the de-interleaved twiddles.
                std::vector<u64> wl1(m), wl1b(m), wl2(2 * m),
                    wl2b(2 * m);
                for (std::size_t j = 0; j < m; ++j) {
                    wl1[j] = pairs[2 * j];
                    wl1b[j] = pairs[2 * j + 1];
                    wl2[2 * j] = quads[4 * j];
                    wl2b[2 * j] = quads[4 * j + 1];
                    wl2[2 * j + 1] = quads[4 * j + 2];
                    wl2b[2 * j + 1] = quads[4 * j + 3];
                }
                const std::vector<u64> fwd_in =
                    Values(4 * m * q, 4 * p, p, m + q + p);
                std::vector<u64> chained = fwd_in;
                ref.fwd_butterfly_stage(chained.data(), wl1.data(),
                                        wl1b.data(), m, 2 * q, p);
                ref.fwd_butterfly_stage(chained.data(), wl2.data(),
                                        wl2b.data(), 2 * m, q, p);
                std::vector<u64> fused = fwd_in;
                ref.fwd_butterfly_stage4(fused.data(), pairs.data(),
                                         quads.data(), m, q, p);
                ASSERT_EQ(fused, chained)
                    << "scalar fwd stage4 != chained radix-2, q=" << q
                    << " m=" << m;
                for (const auto &[name, vec] : VectorTables()) {
                    std::vector<u64> got = fwd_in;
                    vec->fwd_butterfly_stage4(got.data(), pairs.data(),
                                              quads.data(), m, q, p);
                    EXPECT_EQ(got, fused) << name << " fwd stage4 q="
                                          << q << " m=" << m;
                }

                // Inverse: quads feed level one, pairs level two.
                std::vector<u64> il1(2 * m), il1b(2 * m), il2(m),
                    il2b(m);
                for (std::size_t j = 0; j < m; ++j) {
                    il1[2 * j] = quads[4 * j];
                    il1b[2 * j] = quads[4 * j + 1];
                    il1[2 * j + 1] = quads[4 * j + 2];
                    il1b[2 * j + 1] = quads[4 * j + 3];
                    il2[j] = pairs[2 * j];
                    il2b[j] = pairs[2 * j + 1];
                }
                const std::vector<u64> inv_in =
                    Values(4 * m * q, 2 * p, p, m + q + 2 * p);
                std::vector<u64> ichained = inv_in;
                ref.inv_butterfly_stage(ichained.data(), il1.data(),
                                        il1b.data(), 2 * m, q, p);
                ref.inv_butterfly_stage(ichained.data(), il2.data(),
                                        il2b.data(), m, 2 * q, p);
                std::vector<u64> ifused = inv_in;
                ref.inv_butterfly_stage4(ifused.data(), quads.data(),
                                         pairs.data(), m, q, p);
                ASSERT_EQ(ifused, ichained)
                    << "scalar inv stage4 != chained radix-2, q=" << q
                    << " m=" << m;
                for (const auto &[name, vec] : VectorTables()) {
                    std::vector<u64> got = inv_in;
                    vec->inv_butterfly_stage4(got.data(), quads.data(),
                                              pairs.data(), m, q, p);
                    EXPECT_EQ(got, ifused) << name << " inv stage4 q="
                                           << q << " m=" << m;
                }
            }
        }
    }
}

/** Whole element-wise family parity of one table against the scalar
 *  reference, all primes, degree @p n — divide_round included. */
void
CheckElementwiseParity(const std::string &name, const simd::Kernels &vec,
                       std::size_t n)
{
    SCOPED_TRACE(name);
    const auto &ref = simd::Get(simd::Backend::kScalar);
    for (const u64 p : Primes()) {
        const BarrettReducer red(p);
        const simd::BarrettConsts consts = simd::Consts(red);
        const u64 s = Values(1, p, p, 5)[0] | 1;
        const u64 s_bar = ShoupPrecompute(s % p, p);

        // mul_shoup: any 64-bit input reduces fully.
        {
            const std::vector<u64> src = Values(n, ~u64{0}, p, 6);
            std::vector<u64> d0(n), d1(n);
            ref.mul_shoup_rows(d0.data(), src.data(), n, s % p, s_bar, p);
            vec.mul_shoup_rows(d1.data(), src.data(), n, s % p, s_bar, p);
            EXPECT_EQ(d0, d1);
        }

        // Barrett product / accumulate / 64-bit reduce on lazy inputs.
        {
            const std::vector<u64> a = Values(n, 4 * p, p, 7);
            const std::vector<u64> b = Values(n, 4 * p, p, 8);
            std::vector<u64> d0(n), d1(n);
            ref.mul_barrett_rows(d0.data(), a.data(), b.data(), n, consts);
            vec.mul_barrett_rows(d1.data(), a.data(), b.data(), n, consts);
            EXPECT_EQ(d0, d1);

            std::vector<u64> acc0 = Values(n, p, p, 9);
            std::vector<u64> acc1 = acc0;
            ref.mul_acc_barrett_rows(acc0.data(), a.data(), b.data(), n,
                                     consts);
            vec.mul_acc_barrett_rows(acc1.data(), a.data(), b.data(), n,
                                     consts);
            EXPECT_EQ(acc0, acc1);

            const std::vector<u64> wide = Values(n, ~u64{0}, p, 10);
            ref.reduce_barrett_rows(d0.data(), wide.data(), n, consts);
            vec.reduce_barrett_rows(d1.data(), wide.data(), n, consts);
            EXPECT_EQ(d0, d1);
        }

        // add/sub with and without the lazy fold; fold; fold+rescale.
        {
            const std::vector<u64> a = Values(n, p, p, 11);
            const std::vector<u64> lazy = Values(n, 4 * p, p, 12);
            const std::vector<u64> strict = Values(n, p, p, 13);
            std::vector<u64> d0(n), d1(n);
            for (const bool fold : {false, true}) {
                const u64 *b = fold ? lazy.data() : strict.data();
                ref.add_rows(d0.data(), a.data(), b, n, p, fold);
                vec.add_rows(d1.data(), a.data(), b, n, p, fold);
                EXPECT_EQ(d0, d1);
                ref.sub_rows(d0.data(), a.data(), b, n, p, fold);
                vec.sub_rows(d1.data(), a.data(), b, n, p, fold);
                EXPECT_EQ(d0, d1);
            }

            std::vector<u64> f0 = lazy, f1 = lazy;
            ref.fold_lazy_rows(f0.data(), n, p);
            vec.fold_lazy_rows(f1.data(), n, p);
            EXPECT_EQ(f0, f1);

            std::vector<u64> r0 = a, r1 = a;
            ref.fold_rescale_rows(r0.data(), strict.data(), n, p, s % p,
                                  s_bar);
            vec.fold_rescale_rows(r1.data(), strict.data(), n, p, s % p,
                                  s_bar);
            EXPECT_EQ(r0, r1);
        }

        // Tensor stage (needs the 32p^2 headroom: bits <= 61 holds for
        // every prime in the sweep).
        {
            const std::vector<u64> a0 = Values(n, 4 * p, p, 14);
            const std::vector<u64> a1 = Values(n, 4 * p, p, 15);
            const std::vector<u64> b0 = Values(n, 4 * p, p, 16);
            const std::vector<u64> b1 = Values(n, 4 * p, p, 17);
            std::vector<u64> c0a(n), c1a(n), c2a(n);
            std::vector<u64> c0b(n), c1b(n), c2b(n);
            ref.tensor_rows(c0a.data(), c1a.data(), c2a.data(), a0.data(),
                            a1.data(), b0.data(), b1.data(), n, consts);
            vec.tensor_rows(c0b.data(), c1b.data(), c2b.data(), a0.data(),
                            a1.data(), b0.data(), b1.data(), n, consts);
            EXPECT_EQ(c0a, c0b);
            EXPECT_EQ(c1a, c1b);
            EXPECT_EQ(c2a, c2b);
        }
    }

    // Divide-and-round: constants built exactly as the BGV mod-switch
    // epilogue builds them (he/ciphertext_batch.cpp), every ordered
    // (q_k, q_i) prime pair so the u <= q_k/2 centering branch sees
    // both signs across lanes.
    const std::vector<u64> primes = Primes();
    const u64 t = 65537;
    for (const u64 qk : primes) {
        for (const u64 qi : primes) {
            if (qi == qk) {
                continue;
            }
            const BarrettReducer red(qi);
            simd::DivideRoundConsts c{};
            c.qk = qk;
            c.t_inv_qk = InvMod(t % qk, qk);
            c.t_inv_qk_bar = ShoupPrecompute(c.t_inv_qk, qk);
            c.qi = qi;
            c.qk_inv = InvMod(qk % qi, qi);
            c.qk_inv_bar = ShoupPrecompute(c.qk_inv, qi);
            c.t_mod_qi = t % qi;
            c.t_mod_qi_bar = ShoupPrecompute(c.t_mod_qi, qi);
            c.mu_lo = red.mu_lo();
            c.mu_hi = red.mu_hi();

            const std::vector<u64> src = Values(n, qi, qi, 18);
            const std::vector<u64> top = Values(n, qk, qk, 19);
            std::vector<u64> d0(n), d1(n);
            ref.divide_round_rows(d0.data(), src.data(), top.data(), n,
                                  c);
            vec.divide_round_rows(d1.data(), src.data(), top.data(), n,
                                  c);
            EXPECT_EQ(d0, d1) << "divide_round qk=" << qk
                              << " qi=" << qi;
        }
    }
}

TEST_P(SimdParityTest, ElementwiseKernels)
{
    for (const auto &[name, table] : VectorTables()) {
        CheckElementwiseParity(name, *table, GetParam());
    }
}

TEST_P(SimdParityTest, WholeTransformsMatchScalarBackend)
{
    // End-to-end composition check: the full lazy forward (keep-range
    // outputs compared raw, so the [0, 4p) representatives must agree)
    // and the full inverse, per backend, through the real twiddle
    // tables.
    const std::size_t n = GetParam();
    for (const u64 p : Primes()) {
        const NttEngine engine(n, p);
        Xoshiro256 rng(n + p);
        std::vector<u64> input(n);
        for (u64 &x : input) {
            x = rng.NextBelow(p);
        }

        simd::ForceBackend(simd::Backend::kScalar);
        std::vector<u64> fwd_s = input;
        NttRadix2LazyKeepRange(fwd_s, engine.table());
        std::vector<u64> inv_s = fwd_s;
        for (u64 &x : inv_s) {
            x = FoldLazy(x, p);
        }
        InttRadix2Lazy(inv_s, engine.table());

        for (const auto backend : simd::kAllBackends) {
            if (backend == simd::Backend::kScalar ||
                !simd::BackendAvailable(backend)) {
                continue;
            }
            simd::ForceBackend(backend);
            std::vector<u64> fwd_v = input;
            NttRadix2LazyKeepRange(fwd_v, engine.table());
            std::vector<u64> inv_v = fwd_v;
            for (u64 &x : inv_v) {
                x = FoldLazy(x, p);
            }
            InttRadix2Lazy(inv_v, engine.table());
            simd::ResetBackend();

            EXPECT_EQ(fwd_s, fwd_v) << simd::BackendName(backend);
            EXPECT_EQ(inv_s, inv_v) << simd::BackendName(backend);
        }
        EXPECT_EQ(inv_s, input) << "round trip broke";
    }
}

INSTANTIATE_TEST_SUITE_P(Degrees, SimdParityTest,
                         ::testing::ValuesIn(kDegrees));

TEST(SimdDispatch, ForcedBackendIsReportedAndRevertible)
{
    const simd::Backend initial = simd::ActiveBackend();
    simd::ForceBackend(simd::Backend::kScalar);
    EXPECT_EQ(simd::ActiveBackend(), simd::Backend::kScalar);
    EXPECT_STREQ(simd::BackendName(simd::ActiveBackend()), "scalar");
    simd::ResetBackend();
    EXPECT_EQ(simd::ActiveBackend(), initial);
}

TEST(SimdDispatch, ScalarTableIsAlwaysAvailable)
{
    EXPECT_TRUE(simd::BackendAvailable(simd::Backend::kScalar));
    // Get(kAvx2) is callable either way; it only *vectorizes* when
    // available.
    (void)simd::Get(simd::Backend::kAvx2);
}

}  // namespace
}  // namespace hentt
