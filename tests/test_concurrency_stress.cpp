/**
 * Concurrency stress suite — the runtime companion of the
 * static-analysis layer (thread-safety annotations + TSan CI leg).
 *
 * Each test hammers one locking seam from several threads at once:
 * registry Acquire/Clear churn, two graphs sharing one context's
 * scratch arena, many getters forcing one graph, ParallelFor racing a
 * pool rebuild, and concurrent failpoint (re)arming. Under a plain
 * build these assert functional correctness (no lost updates, same
 * answer from every thread); under -fsanitize=thread they are the
 * probes that make a data race in any of those seams a hard failure.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <optional>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/modarith.h"
#include "common/primegen.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "he/he_graph.h"
#include "ntt/ntt_registry.h"

namespace hentt {
namespace {

constexpr std::size_t kThreads = 4;

// ---------------------------------------------------------------------
// NttEngineRegistry: Acquire/Clear/cached_count churn
// ---------------------------------------------------------------------

TEST(ConcurrencyStressTest, RegistryAcquireClearChurn)
{
    NttEngineRegistry registry;
    const std::vector<u64> primes = GenerateNttPrimes(128, 30, 3);
    std::atomic<bool> failed{false};

    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&registry, &primes, &failed, t] {
            for (std::size_t i = 0; i < 200; ++i) {
                const u64 p = primes[(t + i) % primes.size()];
                const auto engine =
                    registry.Acquire(64, p, /*ot_base=*/64);
                if (!engine || engine->size() != 64) {
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
                if (i % 17 == 0) {
                    registry.Clear();
                }
                // Racy by design: the count is only required to be a
                // coherent value, not a stable one.
                (void)registry.cached_count();
            }
        });
    }
    for (std::thread &t : threads) {
        t.join();
    }
    EXPECT_FALSE(failed.load());
    registry.Clear();
    EXPECT_EQ(registry.cached_count(), 0u);
}

// ---------------------------------------------------------------------
// HE pipeline fixtures
// ---------------------------------------------------------------------

class PipelineStressTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        he::HeParams params;
        params.degree = 64;
        params.prime_count = 4;
        params.prime_bits = 50;
        params.plain_modulus = 257;
        ctx_ = std::make_shared<he::HeContext>(params);
        scheme_ = std::make_unique<he::BgvScheme>(ctx_, /*seed=*/11);
        sk_.emplace(scheme_->KeyGen());
        rk_.emplace(scheme_->MakeRelinKey(*sk_));
    }

    he::Plaintext
    RandomPlain(u64 seed) const
    {
        Xoshiro256 rng(seed);
        he::Plaintext m(ctx_->degree());
        for (u64 &x : m) {
            x = rng.NextBelow(ctx_->params().plain_modulus);
        }
        return m;
    }

    he::Plaintext
    PlainAdd(const he::Plaintext &a, const he::Plaintext &b) const
    {
        const u64 t = ctx_->params().plain_modulus;
        he::Plaintext c(a.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            c[i] = AddMod(a[i], b[i], t);
        }
        return c;
    }

    std::shared_ptr<he::HeContext> ctx_;
    std::unique_ptr<he::BgvScheme> scheme_;
    std::optional<he::SecretKey> sk_;
    std::optional<he::RelinKey> rk_;
};

// Two graphs on ONE context executed from two threads: every batched
// kernel call from both serialises on the shared scratch arena while
// the graphs' own mutexes stay independent — the exact lock ordering
// (graph -> arena -> pool) the annotations encode.
TEST_F(PipelineStressTest, TwoGraphsShareOneArenaAcrossThreads)
{
    const he::Plaintext ma = RandomPlain(21), mb = RandomPlain(22);
    const he::Ciphertext ca = scheme_->Encrypt(*sk_, ma);
    const he::Ciphertext cb = scheme_->Encrypt(*sk_, mb);

    he::HeOpGraph g1(*scheme_, &*rk_);
    he::HeOpGraph g2(*scheme_, &*rk_);
    std::vector<he::CtFuture> f1, f2;
    for (std::size_t i = 0; i < 6; ++i) {
        f1.push_back(g1.Add(g1.Input(ca), g1.Input(cb)));
        f2.push_back(
            g2.MulRelinModSwitch(g2.Input(ca), g2.Input(cb)));
    }

    std::thread t1([&] { g1.Execute(); });
    std::thread t2([&] { g2.Execute(); });
    t1.join();
    t2.join();

    const he::Plaintext sum = PlainAdd(ma, mb);
    for (const he::CtFuture &f : f1) {
        EXPECT_EQ(scheme_->Decrypt(*sk_, f.get()), sum);
    }
    for (const he::CtFuture &f : f2) {
        EXPECT_EQ(f.status().code(), ErrorCode::kOk);
    }
}

// Many threads force ONE graph through the same future: exactly one
// runs the wavefronts, the rest block on the graph mutex and then read
// the settled node. This was an unguarded nodes_ access before the
// graph grew its mutex.
TEST_F(PipelineStressTest, ConcurrentGetOnOneGraph)
{
    const he::Plaintext ma = RandomPlain(31), mb = RandomPlain(32);
    const he::Ciphertext ca = scheme_->Encrypt(*sk_, ma);
    const he::Ciphertext cb = scheme_->Encrypt(*sk_, mb);

    he::HeOpGraph graph(*scheme_, &*rk_);
    const he::CtFuture prod =
        graph.MulRelin(graph.Input(ca), graph.Input(cb));
    const he::CtFuture sum = graph.Add(prod, graph.Input(ca));

    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            const he::Ciphertext &a = sum.get();
            const he::Ciphertext &b = sum.get();
            // Settled nodes are immutable: every get() must hand back
            // the same object.
            if (&a != &b || !sum.ready()) {
                failures.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (std::thread &t : threads) {
        t.join();
    }
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(graph.pending(), 0u);
    EXPECT_EQ(sum.status().code(), ErrorCode::kOk);
}

// ---------------------------------------------------------------------
// ThreadPool: ParallelFor racing a pool rebuild
// ---------------------------------------------------------------------

TEST(ConcurrencyStressTest, ParallelForDuringThreadCountChange)
{
    const std::size_t initial = GlobalThreadCount();
    constexpr std::size_t kItems = 512;
    // Per-item work above the grain so the job actually dispatches to
    // the pool instead of taking the serial fast path.
    const std::size_t work = ParallelGrain();

    std::atomic<std::size_t> total{0};
    std::atomic<bool> stop{false};
    std::thread resizer([&stop] {
        std::size_t lanes = 2;
        while (!stop.load(std::memory_order_acquire)) {
            SetGlobalThreadCount(lanes);
            lanes = lanes == 2 ? 4 : 2;
        }
    });
    for (std::size_t round = 0; round < 20; ++round) {
        std::vector<std::atomic<unsigned>> hit(kItems);
        ParallelFor(kItems, work, [&](std::size_t i) {
            hit[i].fetch_add(1, std::memory_order_relaxed);
            total.fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < kItems; ++i) {
            ASSERT_EQ(hit[i].load(), 1u) << "item " << i;
        }
    }
    stop.store(true, std::memory_order_release);
    resizer.join();
    EXPECT_EQ(total.load(), 20 * kItems);
    SetGlobalThreadCount(initial);
}

// ---------------------------------------------------------------------
// Failpoint registry: concurrent (re)arming
// ---------------------------------------------------------------------

TEST(ConcurrencyStressTest, ConcurrentFailpointArming)
{
    fp::ResetAll();
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            const char *site =
                fp::SiteName(t % fp::SiteCount());
            for (std::size_t i = 0; i < 300; ++i) {
                switch (i % 5) {
                  case 0:
                    fp::Arm(site, 0.5);
                    break;
                  case 1:
                    fp::ArmNth(site, 1000000);
                    break;
                  case 2:
                    (void)fp::Armed(site);
                    break;
                  case 3:
                    // Reader path pool workers use, off the arm mutex.
                    (void)fp::ShouldFire(site);
                    break;
                  default:
                    fp::DisarmAll();
                    break;
                }
            }
        });
    }
    for (std::thread &t : threads) {
        t.join();
    }
    fp::ResetAll();
    for (std::size_t i = 0; i < fp::SiteCount(); ++i) {
        EXPECT_FALSE(fp::Armed(fp::SiteName(i)));
        EXPECT_EQ(fp::FireCount(fp::SiteName(i)), 0u);
    }
}

}  // namespace
}  // namespace hentt
