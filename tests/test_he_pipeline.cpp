/** Tests for the GPU-side HE-multiply cost composition, plus the
 *  steady-state allocation contract of the CPU batched op set (the
 *  ScratchArena covers BatchMul/BatchAdd/BatchModSwitch too, not just
 *  relinearization — see the companion checks in
 *  test_relin_modswitch.cpp). */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <optional>

#include "he/ciphertext_batch.h"
#include "kernels/config_search.h"
#include "kernels/he_pipeline.h"

// ---------------------------------------------------------------------
// Allocation counter: global operator new replacement (this test binary
// only), mirroring test_relin_modswitch.cpp, so the zero-allocation
// claim for the whole batched op set is machine-checked.
// ---------------------------------------------------------------------
namespace {
std::atomic<long long> g_alloc_count{0};
}

void *
operator new(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size)) {
        return p;
    }
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace hentt::kernels {
namespace {

TEST(HadamardKernel, StreamsThreeOperands)
{
    const auto k = HadamardKernel(1 << 14, 8);
    const double data = (1 << 14) * 8.0 * 8;
    EXPECT_DOUBLE_EQ(k.dram_read_bytes, 2 * data);
    EXPECT_DOUBLE_EQ(k.dram_write_bytes, data);
}

TEST(EstimateHeMultiply, PartsSumAndShareInPaperBand)
{
    const gpu::Simulator sim;
    const auto cfg = FindBestSmemConfig(sim, 1 << 15, 21, 8, 2).config;
    const auto est = EstimateHeMultiply(sim, cfg, 21);
    EXPECT_NEAR(est.total_us,
                est.ntt.total_us + est.elementwise.total_us, 1e-9);
    // Paper Section I: NTT/iNTT is 34-50% of the multiply; our
    // composition omits relinearization, so allow a wider band.
    EXPECT_GT(est.ntt_share, 0.3);
    EXPECT_LT(est.ntt_share, 0.95);
}

TEST(EstimateHeMultiply, NttDominatesAcrossPaperSizes)
{
    // Transforms are O(N log N) against the Hadamard passes' O(N); at
    // small N launch overhead pads the transform side further. Across
    // the paper's sizes the NTT share stays dominant and bounded.
    const gpu::Simulator sim;
    for (unsigned log_n = 13; log_n <= 17; ++log_n) {
        const std::size_t n = std::size_t{1} << log_n;
        const auto cfg = FindBestSmemConfig(sim, n, 21, 8, 2).config;
        const double share =
            EstimateHeMultiply(sim, cfg, 21).ntt_share;
        EXPECT_GT(share, 0.5) << "logN " << log_n;
        EXPECT_LT(share, 0.95) << "logN " << log_n;
    }
}

TEST(EstimateHeMultiply, SevenTransformsWorthOfTraffic)
{
    const gpu::Simulator sim;
    const auto cfg = FindBestSmemConfig(sim, 1 << 14, 8, 8, 0).config;
    const SmemKernel ntt(cfg);
    const double one = sim.Estimate(ntt.Plan(8)).dram_bytes;
    const auto est = EstimateHeMultiply(sim, cfg, 8);
    EXPECT_NEAR(est.ntt.dram_bytes, 7 * one, 1.0);
}

TEST(EstimateRelinearize, EvalDomainKeysCutTransformsAndTime)
{
    const gpu::Simulator sim;
    const auto cfg = FindBestSmemConfig(sim, 1 << 14, 8, 8, 0).config;
    const auto eval = EstimateRelinearize(sim, cfg, 8, true);
    const auto coeff = EstimateRelinearize(sim, cfg, 8, false);
    // np^2 digit forwards vs. 4*np^2 re-transforms; 2*np inverse rows
    // vs. 2*np^2.
    EXPECT_EQ(eval.forward_transforms, 8u * 8u);
    EXPECT_EQ(coeff.forward_transforms, 4u * 8u * 8u);
    EXPECT_EQ(eval.inverse_transforms, 2u * 8u);
    EXPECT_EQ(coeff.inverse_transforms, 2u * 8u * 8u);
    EXPECT_LT(eval.forward_transforms, coeff.forward_transforms);
    EXPECT_LT(eval.total_us, coeff.total_us);
    EXPECT_NEAR(eval.total_us,
                eval.ntt.total_us + eval.elementwise.total_us, 1e-9);
}

TEST(EstimateRelinModSwitch, FusionCutsElementwiseNotTransforms)
{
    const gpu::Simulator sim;
    const auto cfg = FindBestSmemConfig(sim, 1 << 14, 8, 8, 0).config;
    const auto fused = EstimateRelinModSwitch(sim, cfg, 8, true);
    const auto unfused = EstimateRelinModSwitch(sim, cfg, 8, false);
    // The transform budget is fusion-invariant (np digit forwards + 2
    // accumulator inverses); what fusion removes is the fold and
    // alpha-rescale sweeps between the inverse and the divide-round.
    EXPECT_NEAR(fused.ntt.total_us, unfused.ntt.total_us, 1e-9);
    EXPECT_EQ(unfused.elementwise_passes, 3u * 8u + 6u);
    EXPECT_EQ(fused.elementwise_passes, 3u * 8u + 2u);
    EXPECT_EQ(unfused.elementwise_passes - fused.elementwise_passes, 4u);
    EXPECT_LT(fused.elementwise.total_us, unfused.elementwise.total_us);
    EXPECT_LT(fused.total_us, unfused.total_us);
    EXPECT_NEAR(fused.total_us,
                fused.ntt.total_us + fused.elementwise.total_us, 1e-9);
}

}  // namespace
}  // namespace hentt::kernels

namespace hentt::he {
namespace {

class BatchAllocTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        HeParams params;
        params.degree = 64;
        params.prime_count = 3;
        params.prime_bits = 50;
        params.plain_modulus = 257;
        ctx_ = std::make_shared<HeContext>(params);
        scheme_ = std::make_unique<BgvScheme>(ctx_, /*seed=*/17);
        sk_.emplace(scheme_->KeyGen());
        Plaintext ma(params.degree, 1), mb(params.degree, 2);
        ct_a_.emplace(scheme_->Encrypt(*sk_, ma));
        ct_b_.emplace(scheme_->Encrypt(*sk_, mb));
    }

    /** Allocations across @p reps steady-state calls of @p op (after
     *  two warm-up calls that size the arena and the reused outputs). */
    template <typename Op>
    long long
    SteadyStateAllocs(Op &&op, int reps = 5) const
    {
        op();
        op();
        const long long before =
            g_alloc_count.load(std::memory_order_relaxed);
        for (int r = 0; r < reps; ++r) {
            op();
        }
        return g_alloc_count.load(std::memory_order_relaxed) - before;
    }

    std::shared_ptr<HeContext> ctx_;
    std::unique_ptr<BgvScheme> scheme_;
    std::optional<SecretKey> sk_;
    std::optional<Ciphertext> ct_a_, ct_b_;
};

TEST_F(BatchAllocTest, SteadyStateBatchMulDoesNotAllocate)
{
    Ciphertext out;
    const Ciphertext *a[] = {&*ct_a_};
    const Ciphertext *b[] = {&*ct_b_};
    Ciphertext *dst[] = {&out};
    const long long allocs = SteadyStateAllocs(
        [&] { BatchMul(*ctx_, a, b, dst); });
    EXPECT_EQ(allocs, 0) << "steady-state BatchMul touched the heap";

    // The result is still the real product, not a stale buffer.
    const Ciphertext ref = scheme_->Mul(*ct_a_, *ct_b_);
    ASSERT_EQ(out.parts.size(), ref.parts.size());
    for (std::size_t j = 0; j < out.parts.size(); ++j) {
        for (std::size_t l = 0; l < out.parts[j].prime_count(); ++l) {
            EXPECT_TRUE(std::ranges::equal(out.parts[j].row(l),
                                           ref.parts[j].row(l)));
        }
    }
}

TEST_F(BatchAllocTest, SteadyStateBatchMulSharedOperandDoesNotAllocate)
{
    // Squaring interns the shared parts once — the intern scan itself
    // must also stay off the heap.
    Ciphertext out;
    const Ciphertext *a[] = {&*ct_a_};
    Ciphertext *dst[] = {&out};
    const long long allocs = SteadyStateAllocs(
        [&] { BatchMul(*ctx_, a, a, dst); });
    EXPECT_EQ(allocs, 0);
}

TEST_F(BatchAllocTest, SteadyStateBatchAddDoesNotAllocate)
{
    Ciphertext out;
    const Ciphertext *a[] = {&*ct_a_};
    const Ciphertext *b[] = {&*ct_b_};
    Ciphertext *dst[] = {&out};
    const long long allocs = SteadyStateAllocs(
        [&] { BatchAdd(*ctx_, a, b, dst); });
    EXPECT_EQ(allocs, 0) << "steady-state BatchAdd touched the heap";
}

TEST_F(BatchAllocTest, SteadyStateBatchModSwitchDoesNotAllocate)
{
    Ciphertext out;
    const Ciphertext *a[] = {&*ct_a_};
    Ciphertext *dst[] = {&out};
    const long long allocs = SteadyStateAllocs(
        [&] { BatchModSwitch(*ctx_, a, dst); });
    EXPECT_EQ(allocs, 0) << "steady-state BatchModSwitch touched the heap";
    EXPECT_EQ(BgvScheme::Level(out),
              ctx_->params().prime_count - 1);
}

}  // namespace
}  // namespace hentt::he
