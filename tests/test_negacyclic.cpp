/** Tests for negacyclic convolution (naive oracle vs NTT path). */

#include <gtest/gtest.h>

#include "common/primegen.h"
#include "common/random.h"
#include "poly/negacyclic.h"

namespace hentt {
namespace {

class NegacyclicTest : public ::testing::TestWithParam<std::size_t>
{
  protected:
    void
    SetUp() override
    {
        n_ = GetParam();
        p_ = GenerateNttPrimes(2 * n_, 50, 1)[0];
        engine_ = std::make_unique<NttEngine>(n_, p_);
    }

    Poly
    Random(u64 seed) const
    {
        Xoshiro256 rng(seed);
        std::vector<u64> v(n_);
        for (u64 &x : v) {
            x = rng.NextBelow(p_);
        }
        return Poly(std::move(v), p_);
    }

    std::size_t n_;
    u64 p_;
    std::unique_ptr<NttEngine> engine_;
};

TEST_P(NegacyclicTest, NttPathMatchesSchoolbook)
{
    const Poly a = Random(10);
    const Poly b = Random(11);
    EXPECT_EQ(NegacyclicConvolveNtt(a, b, *engine_),
              NegacyclicConvolveNaive(a, b));
}

TEST_P(NegacyclicTest, CommutativeAndDistributive)
{
    const Poly a = Random(20);
    const Poly b = Random(21);
    const Poly c = Random(22);
    EXPECT_EQ(NegacyclicConvolveNaive(a, b),
              NegacyclicConvolveNaive(b, a));
    const Poly left = NegacyclicConvolveNtt(a, b + c, *engine_);
    const Poly right = NegacyclicConvolveNtt(a, b, *engine_) +
                       NegacyclicConvolveNtt(a, c, *engine_);
    EXPECT_EQ(left, right);
}

TEST_P(NegacyclicTest, MonomialMultiplicationAgrees)
{
    const Poly a = Random(30);
    std::vector<u64> mono(n_, 0);
    mono[1] = 1;  // X
    const Poly x(std::move(mono), p_);
    EXPECT_EQ(NegacyclicConvolveNtt(a, x, *engine_), a.MulByMonomial(1));
}

TEST_P(NegacyclicTest, XtoNisMinusOne)
{
    // (X^{N/2})^2 = X^N = -1 in the ring.
    std::vector<u64> half(n_, 0);
    half[n_ / 2] = 1;
    const Poly h(std::move(half), p_);
    const Poly sq = NegacyclicConvolveNtt(h, h, *engine_);
    EXPECT_EQ(sq[0], p_ - 1);
    for (std::size_t i = 1; i < n_; ++i) {
        EXPECT_EQ(sq[i], 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, NegacyclicTest,
                         ::testing::Values(4, 16, 64, 256));

TEST(Negacyclic, MismatchedInputsThrow)
{
    const u64 p = GenerateNttPrimes(2 * 16, 40, 1)[0];
    const NttEngine engine(16, p);
    const Poly a(16, p);
    const Poly b(8, p);
    EXPECT_THROW(NegacyclicConvolveNaive(a, b), std::invalid_argument);
    EXPECT_THROW(NegacyclicConvolveNtt(a, b, engine),
                 std::invalid_argument);
}

}  // namespace
}  // namespace hentt
