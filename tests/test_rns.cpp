/** Tests for the RNS basis and CRT conversions. */

#include <gtest/gtest.h>

#include "common/random.h"
#include "rns/crt.h"
#include "rns/rns_basis.h"

namespace hentt {
namespace {

TEST(RnsBasis, BuildsRequestedPrimes)
{
    const RnsBasis basis(1 << 12, 50, 6);
    EXPECT_EQ(basis.prime_count(), 6u);
    EXPECT_GE(basis.log_q(), 6 * 49u);
    for (std::size_t i = 0; i < 6; ++i) {
        EXPECT_EQ(basis.prime(i) % (2 << 12), 1u);
    }
}

TEST(RnsBasis, RejectsBadExplicitBases)
{
    EXPECT_THROW(RnsBasis(std::vector<u64>{}), std::invalid_argument);
    EXPECT_THROW(RnsBasis(std::vector<u64>{4}), std::invalid_argument);
    EXPECT_THROW(RnsBasis(std::vector<u64>{13, 13}),
                 std::invalid_argument);
}

TEST(RnsBasis, ProductMatchesBigIntMultiply)
{
    const std::vector<u64> primes = {13, 17, 19};
    const RnsBasis basis(primes);
    EXPECT_EQ(basis.product(), BigInt(u64{13 * 17 * 19}));
}

class CrtTest : public ::testing::TestWithParam<std::size_t>
{
  protected:
    void
    SetUp() override
    {
        basis_ = std::make_unique<RnsBasis>(1 << 10, 45, GetParam());
    }

    std::unique_ptr<RnsBasis> basis_;
};

TEST_P(CrtTest, ComposeDecomposeRoundTrip)
{
    Xoshiro256 rng(GetParam());
    for (int iter = 0; iter < 50; ++iter) {
        // Random x < Q via random residues (bijection by CRT).
        std::vector<u64> residues(basis_->prime_count());
        for (std::size_t i = 0; i < residues.size(); ++i) {
            residues[i] = rng.NextBelow(basis_->prime(i));
        }
        const BigInt x = CrtCompose(residues, *basis_);
        EXPECT_LT(x, basis_->product());
        EXPECT_EQ(CrtDecompose(x, *basis_), residues);
    }
}

TEST_P(CrtTest, ComposeOfZeroAndOne)
{
    const std::size_t np = basis_->prime_count();
    EXPECT_TRUE(CrtCompose(std::vector<u64>(np, 0), *basis_).IsZero());
    EXPECT_EQ(CrtCompose(std::vector<u64>(np, 1), *basis_),
              BigInt(u64{1}));
}

TEST_P(CrtTest, CenteredComposeSignsCorrect)
{
    const std::size_t np = basis_->prime_count();
    // -5 mod Q: residues p_i - 5.
    std::vector<u64> residues(np);
    for (std::size_t i = 0; i < np; ++i) {
        residues[i] = basis_->prime(i) - 5;
    }
    const auto [mag, negative] = CrtComposeCentered(residues, *basis_);
    EXPECT_TRUE(negative);
    EXPECT_EQ(mag, BigInt(u64{5}));

    const auto [mag2, neg2] =
        CrtComposeCentered(std::vector<u64>(np, 7), *basis_);
    EXPECT_FALSE(neg2);
    EXPECT_EQ(mag2, BigInt(u64{7}));
}

INSTANTIATE_TEST_SUITE_P(BasisSizes, CrtTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

TEST(Crt, RejectsWrongResidueCount)
{
    const RnsBasis basis(1 << 10, 45, 3);
    EXPECT_THROW(CrtCompose({1, 2}, basis), std::invalid_argument);
}

TEST(Crt, PaperScaleBasis)
{
    // The paper's headline config: Q = 2^1200-ish via 60-bit primes
    // (Section IV: 20 primes of 60 bits).
    const RnsBasis basis(1 << 13, 60, 20);
    EXPECT_GE(basis.log_q(), 1180u);
    Xoshiro256 rng(1);
    std::vector<u64> residues(20);
    for (std::size_t i = 0; i < 20; ++i) {
        residues[i] = rng.NextBelow(basis.prime(i));
    }
    const BigInt x = CrtCompose(residues, basis);
    EXPECT_EQ(CrtDecompose(x, basis), residues);
}

}  // namespace
}  // namespace hentt
