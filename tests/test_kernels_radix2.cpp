/** Tests for the radix-2 baseline kernel emulation. */

#include <gtest/gtest.h>

#include "kernels/cost_constants.h"
#include "kernels/radix2_kernel.h"
#include "ntt/ntt_naive.h"

namespace hentt::kernels {
namespace {

TEST(Radix2Kernel, PlanHasOneLaunchPerStage)
{
    const Radix2Kernel kernel;
    const auto plan = kernel.Plan(1 << 14, 21);
    EXPECT_EQ(plan.size(), 14u);
    for (const auto &k : plan) {
        EXPECT_EQ(k.launches, 1u);
    }
}

TEST(Radix2Kernel, DataTrafficIsTwoPassesPerStage)
{
    const std::size_t n = 1 << 14;
    const std::size_t np = 21;
    const Radix2Kernel kernel;
    const auto plan = kernel.Plan(n, np);
    const double data = static_cast<double>(n) * 8 * np;
    for (const auto &k : plan) {
        EXPECT_GE(k.dram_read_bytes, data);
        EXPECT_DOUBLE_EQ(k.dram_write_bytes, data);
    }
}

TEST(Radix2Kernel, TwiddleBytesDoublePerStage)
{
    const auto plan = Radix2Kernel().Plan(1 << 12, 4);
    const double data = (1 << 12) * 8.0 * 4;
    double prev = 0;
    for (const auto &k : plan) {
        const double tw = k.dram_read_bytes - data;
        EXPECT_GT(tw, prev);  // Fig. 8's growing series
        if (prev > 0) {
            EXPECT_DOUBLE_EQ(tw, prev * 2);
        }
        prev = tw;
    }
    // Total twiddle traffic = (N - 1) entries * 16 B * np.
    double total = 0;
    for (const auto &k : plan) {
        total += k.dram_read_bytes - data;
    }
    EXPECT_DOUBLE_EQ(total, ((1 << 12) - 1) * 16.0 * 4);
}

TEST(Radix2Kernel, NativeVariantCostsMoreCompute)
{
    const auto shoup = Radix2Kernel(Reduction::kShoup).Plan(1 << 12, 2);
    const auto native = Radix2Kernel(Reduction::kNative).Plan(1 << 12, 2);
    EXPECT_GT(native[0].compute_slots, shoup[0].compute_slots * 3);
    // Same memory traffic either way.
    EXPECT_DOUBLE_EQ(native[0].dram_write_bytes,
                     shoup[0].dram_write_bytes);
}

TEST(Radix2Kernel, BarrettHalvesTwiddleBytes)
{
    const auto shoup = Radix2Kernel(Reduction::kShoup).Plan(1 << 12, 2);
    const auto barrett =
        Radix2Kernel(Reduction::kBarrett).Plan(1 << 12, 2);
    const double data = (1 << 12) * 8.0 * 2;
    const double tw_shoup = shoup.back().dram_read_bytes - data;
    const double tw_barrett = barrett.back().dram_read_bytes - data;
    EXPECT_DOUBLE_EQ(tw_barrett, tw_shoup / 2);
}

TEST(Radix2Kernel, ExecuteMatchesNaiveOracle)
{
    NttBatchWorkload workload(64, 3, 40);
    workload.Randomize(1);
    // Keep pristine copies.
    std::vector<std::vector<u64>> inputs;
    for (std::size_t i = 0; i < workload.np(); ++i) {
        inputs.push_back(workload.row(i));
    }
    Radix2Kernel().Execute(workload);
    for (std::size_t i = 0; i < workload.np(); ++i) {
        std::vector<u64> expect = inputs[i];
        workload.engine(i).Forward(expect);
        EXPECT_EQ(workload.row(i), expect);
    }
}

TEST(Radix2Kernel, AllReductionsExecuteIdentically)
{
    for (Reduction r :
         {Reduction::kShoup, Reduction::kNative, Reduction::kBarrett}) {
        NttBatchWorkload workload(32, 2, 40);
        workload.Randomize(9);
        NttBatchWorkload reference(32, 2, 40);
        reference.Randomize(9);
        Radix2Kernel(r).Execute(workload);
        Radix2Kernel(Reduction::kShoup).Execute(reference);
        for (std::size_t i = 0; i < 2; ++i) {
            EXPECT_EQ(workload.row(i), reference.row(i));
        }
    }
}

TEST(Radix2Kernel, PlanRejectsBadArguments)
{
    EXPECT_THROW(Radix2Kernel().Plan(100, 2), std::invalid_argument);
    EXPECT_THROW(Radix2Kernel().Plan(64, 0), std::invalid_argument);
}

TEST(BatchWorkload, TwiddleBytesScaleWithBatch)
{
    // The paper's key observation: NTT tables grow with np.
    NttBatchWorkload small(256, 2, 40);
    NttBatchWorkload large(256, 4, 40);
    EXPECT_EQ(large.TwiddleTableBytes(), 2 * small.TwiddleTableBytes());
    EXPECT_EQ(small.TwiddleTableBytes(), 2u * 2 * 256 * 8);
}

}  // namespace
}  // namespace hentt::kernels
