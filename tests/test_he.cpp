/** Tests for the BGV-style HE layer. */

#include <gtest/gtest.h>

#include <optional>

#include "common/modarith.h"
#include "he/bgv.h"

namespace hentt::he {
namespace {

HeParams
SmallParams()
{
    HeParams params;
    params.degree = 64;
    params.prime_count = 3;
    params.prime_bits = 50;
    params.plain_modulus = 257;
    return params;
}

class HeTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ctx_ = std::make_shared<HeContext>(SmallParams());
        scheme_ = std::make_unique<BgvScheme>(ctx_, /*seed=*/42);
        sk_.emplace(scheme_->KeyGen());
    }

    Plaintext
    RandomPlain(u64 seed) const
    {
        Xoshiro256 rng(seed);
        Plaintext m(ctx_->degree());
        for (u64 &x : m) {
            x = rng.NextBelow(ctx_->params().plain_modulus);
        }
        return m;
    }

    /** Negacyclic product of plaintexts mod t (the oracle). */
    Plaintext
    PlainMul(const Plaintext &a, const Plaintext &b) const
    {
        const u64 t = ctx_->params().plain_modulus;
        const std::size_t n = ctx_->degree();
        Plaintext c(n, 0);
        for (std::size_t k = 0; k < n; ++k) {
            u64 acc = 0;
            for (std::size_t i = 0; i <= k; ++i) {
                acc = AddMod(acc, MulModNative(a[i], b[k - i], t), t);
            }
            for (std::size_t i = k + 1; i < n; ++i) {
                acc = SubMod(acc, MulModNative(a[i], b[n + k - i], t), t);
            }
            c[k] = acc;
        }
        return c;
    }

    std::shared_ptr<HeContext> ctx_;
    std::unique_ptr<BgvScheme> scheme_;
    std::optional<SecretKey> sk_;
};

TEST_F(HeTest, EncryptDecryptRoundTrip)
{
    for (u64 seed : {1, 2, 3}) {
        const Plaintext m = RandomPlain(seed);
        const Ciphertext ct = scheme_->Encrypt(*sk_, m);
        EXPECT_EQ(scheme_->Decrypt(*sk_, ct), m);
    }
}

TEST_F(HeTest, FreshCiphertextHasLargeNoiseBudget)
{
    const Ciphertext ct = scheme_->Encrypt(*sk_, RandomPlain(4));
    // Q ~ 150 bits; fresh noise ~ t * e is tiny.
    EXPECT_GT(scheme_->NoiseBudgetBits(*sk_, ct), 100.0);
}

TEST_F(HeTest, HomomorphicAddition)
{
    const Plaintext ma = RandomPlain(5);
    const Plaintext mb = RandomPlain(6);
    const u64 t = ctx_->params().plain_modulus;
    const Ciphertext sum =
        scheme_->Add(scheme_->Encrypt(*sk_, ma), scheme_->Encrypt(*sk_, mb));
    const Plaintext dec = scheme_->Decrypt(*sk_, sum);
    for (std::size_t i = 0; i < ma.size(); ++i) {
        EXPECT_EQ(dec[i], AddMod(ma[i], mb[i], t));
    }
}

TEST_F(HeTest, HomomorphicSubtraction)
{
    const Plaintext ma = RandomPlain(7);
    const Plaintext mb = RandomPlain(8);
    const u64 t = ctx_->params().plain_modulus;
    const Ciphertext diff =
        scheme_->Sub(scheme_->Encrypt(*sk_, ma), scheme_->Encrypt(*sk_, mb));
    const Plaintext dec = scheme_->Decrypt(*sk_, diff);
    for (std::size_t i = 0; i < ma.size(); ++i) {
        EXPECT_EQ(dec[i], SubMod(ma[i], mb[i], t));
    }
}

TEST_F(HeTest, MulPlain)
{
    const Plaintext m = RandomPlain(9);
    const Plaintext scalar = RandomPlain(10);
    const Ciphertext ct =
        scheme_->MulPlain(scheme_->Encrypt(*sk_, m), scalar);
    EXPECT_EQ(scheme_->Decrypt(*sk_, ct), PlainMul(m, scalar));
}

TEST_F(HeTest, CiphertextMultiplyDegree2Decrypts)
{
    const Plaintext ma = RandomPlain(11);
    const Plaintext mb = RandomPlain(12);
    const Ciphertext prod =
        scheme_->Mul(scheme_->Encrypt(*sk_, ma), scheme_->Encrypt(*sk_, mb));
    EXPECT_EQ(prod.degree(), 2u);
    EXPECT_EQ(scheme_->Decrypt(*sk_, prod), PlainMul(ma, mb));
}

TEST_F(HeTest, CiphertextSquaringUsesSameResultAsGeneralMul)
{
    // Mul(ct, ct) takes the squaring fast path (transforms reused);
    // it must agree with the general path on an identical copy.
    const Plaintext m = RandomPlain(17);
    const Ciphertext ct = scheme_->Encrypt(*sk_, m);
    const Ciphertext copy = ct;
    const Ciphertext squared = scheme_->Mul(ct, ct);
    const Ciphertext general = scheme_->Mul(ct, copy);
    ASSERT_EQ(squared.parts.size(), general.parts.size());
    EXPECT_EQ(scheme_->Decrypt(*sk_, squared), PlainMul(m, m));
    EXPECT_EQ(scheme_->Decrypt(*sk_, squared),
              scheme_->Decrypt(*sk_, general));
}

TEST_F(HeTest, RelinearizationPreservesPlaintext)
{
    const RelinKey rk = scheme_->MakeRelinKey(*sk_);
    const Plaintext ma = RandomPlain(13);
    const Plaintext mb = RandomPlain(14);
    const Ciphertext prod =
        scheme_->Mul(scheme_->Encrypt(*sk_, ma), scheme_->Encrypt(*sk_, mb));
    const Ciphertext relin = scheme_->Relinearize(prod, rk);
    EXPECT_EQ(relin.degree(), 1u);
    EXPECT_EQ(scheme_->Decrypt(*sk_, relin), PlainMul(ma, mb));
}

TEST_F(HeTest, MultiplyThenAddPipeline)
{
    const RelinKey rk = scheme_->MakeRelinKey(*sk_);
    const Plaintext ma = RandomPlain(15);
    const Plaintext mb = RandomPlain(16);
    const Plaintext mc = RandomPlain(17);
    const u64 t = ctx_->params().plain_modulus;

    Ciphertext acc = scheme_->Relinearize(
        scheme_->Mul(scheme_->Encrypt(*sk_, ma),
                     scheme_->Encrypt(*sk_, mb)),
        rk);
    acc = scheme_->Add(acc, scheme_->Encrypt(*sk_, mc));
    const Plaintext expect_mul = PlainMul(ma, mb);
    const Plaintext dec = scheme_->Decrypt(*sk_, acc);
    for (std::size_t i = 0; i < dec.size(); ++i) {
        EXPECT_EQ(dec[i], AddMod(expect_mul[i], mc[i], t));
    }
}

TEST_F(HeTest, NoiseBudgetDecreasesUnderMultiplication)
{
    const RelinKey rk = scheme_->MakeRelinKey(*sk_);
    const Ciphertext a = scheme_->Encrypt(*sk_, RandomPlain(18));
    const Ciphertext b = scheme_->Encrypt(*sk_, RandomPlain(19));
    const double fresh = scheme_->NoiseBudgetBits(*sk_, a);
    const Ciphertext prod = scheme_->Relinearize(scheme_->Mul(a, b), rk);
    const double after = scheme_->NoiseBudgetBits(*sk_, prod);
    EXPECT_LT(after, fresh);
    EXPECT_GT(after, 0.0);  // still decryptable
}

TEST_F(HeTest, ApiMisuseThrows)
{
    const Ciphertext a = scheme_->Encrypt(*sk_, RandomPlain(20));
    const Ciphertext b = scheme_->Encrypt(*sk_, RandomPlain(21));
    const Ciphertext deg2 = scheme_->Mul(a, b);
    EXPECT_THROW(scheme_->Mul(deg2, a), std::invalid_argument);
    EXPECT_THROW(scheme_->Add(deg2, a), std::invalid_argument);
    const RelinKey rk = scheme_->MakeRelinKey(*sk_);
    EXPECT_THROW(scheme_->Relinearize(a, rk), std::invalid_argument);
    Plaintext too_long(ctx_->degree() + 1, 0);
    EXPECT_THROW(scheme_->Encrypt(*sk_, too_long), std::invalid_argument);
}

TEST_F(HeTest, ModSwitchPreservesPlaintext)
{
    const Plaintext m = RandomPlain(22);
    Ciphertext ct = scheme_->Encrypt(*sk_, m);
    ASSERT_EQ(BgvScheme::Level(ct), 3u);
    ct = scheme_->ModSwitch(ct);
    EXPECT_EQ(BgvScheme::Level(ct), 2u);
    EXPECT_EQ(scheme_->Decrypt(*sk_, ct), m);
}

TEST_F(HeTest, ModSwitchDownTheWholeChain)
{
    const Plaintext m = RandomPlain(23);
    Ciphertext ct = scheme_->Encrypt(*sk_, m);
    ct = scheme_->ModSwitch(ct);
    ct = scheme_->ModSwitch(ct);
    EXPECT_EQ(BgvScheme::Level(ct), 1u);
    EXPECT_EQ(scheme_->Decrypt(*sk_, ct), m);
    // One prime left: switching further is a chain-exhaustion
    // precondition failure (kFailedPrecondition via the exception
    // bridge), distinct from a malformed-argument error.
    EXPECT_THROW(scheme_->ModSwitch(ct), PreconditionError);
}

TEST_F(HeTest, ModSwitchAfterMultiply)
{
    const RelinKey rk = scheme_->MakeRelinKey(*sk_);
    const Plaintext ma = RandomPlain(24);
    const Plaintext mb = RandomPlain(25);
    Ciphertext prod = scheme_->Relinearize(
        scheme_->Mul(scheme_->Encrypt(*sk_, ma),
                     scheme_->Encrypt(*sk_, mb)),
        rk);
    prod = scheme_->ModSwitch(prod);
    EXPECT_EQ(scheme_->Decrypt(*sk_, prod), PlainMul(ma, mb));
    EXPECT_GT(scheme_->NoiseBudgetBits(*sk_, prod), 0.0);
}

TEST_F(HeTest, ModSwitchScalesNoiseDown)
{
    // The absolute noise magnitude must shrink by roughly q_k; the
    // *budget* (margin to the new, smaller Q) stays within a few bits
    // of the pre-switch budget.
    const Plaintext m = RandomPlain(26);
    const Ciphertext fresh = scheme_->Encrypt(*sk_, m);
    const double before = scheme_->NoiseBudgetBits(*sk_, fresh);
    const Ciphertext switched = scheme_->ModSwitch(fresh);
    const double after = scheme_->NoiseBudgetBits(*sk_, switched);
    // Dropped a 50-bit prime: the budget shrinks by about 50 bits at
    // most (fresh noise is additive-dominated after the switch).
    EXPECT_LT(after, before);
    EXPECT_GT(after, before - 60.0);
    EXPECT_GT(after, 10.0);
}

TEST_F(HeTest, AddRejectsMixedLevels)
{
    const Plaintext m = RandomPlain(27);
    const Ciphertext a = scheme_->Encrypt(*sk_, m);
    const Ciphertext b = scheme_->ModSwitch(scheme_->Encrypt(*sk_, m));
    EXPECT_THROW(scheme_->Add(a, b), std::invalid_argument);
}

TEST_F(HeTest, MulPlainAtLowerLevel)
{
    const Plaintext m = RandomPlain(28);
    const Plaintext scalar = RandomPlain(29);
    Ciphertext ct = scheme_->ModSwitch(scheme_->Encrypt(*sk_, m));
    ct = scheme_->MulPlain(ct, scalar);
    EXPECT_EQ(scheme_->Decrypt(*sk_, ct), PlainMul(m, scalar));
}

TEST(HeParams, ValidationCatchesBadConfigs)
{
    HeParams p = SmallParams();
    p.degree = 100;
    EXPECT_THROW(p.Validate(), std::invalid_argument);
    p = SmallParams();
    p.prime_count = 0;
    EXPECT_THROW(p.Validate(), std::invalid_argument);
    p = SmallParams();
    p.prime_bits = 63;
    EXPECT_THROW(p.Validate(), std::invalid_argument);
    p = SmallParams();
    p.plain_modulus = 1;
    EXPECT_THROW(p.Validate(), std::invalid_argument);
    p = SmallParams();
    p.noise_stddev = 0.0;
    EXPECT_THROW(p.Validate(), std::invalid_argument);
}

}  // namespace
}  // namespace hentt::he
