/**
 * Bootstrapping-depth circuit workload as a correctness suite: deep
 * Mul -> Relinearize -> ModSwitch towers that walk the full modulus
 * chain, decrypted at every level, bit-identical across every
 * available SIMD backend and both lazy stage walks (fused radix-4 vs
 * unfused radix-2), with clean precondition failures — and no state
 * residue — when a tower is driven past the bottom of the chain.
 * Runs >= 1000 randomized cases by default (tests/pbt.h contract).
 */

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/modarith.h"
#include "he/bgv.h"
#include "he/he_graph.h"
#include "ntt/ntt_engine.h"
#include "ntt/ntt_lazy.h"
#include "pbt.h"
#include "simd/simd_backend.h"

namespace hentt::he {
namespace {

constexpr std::size_t kDegree = 64;
constexpr std::size_t kPrimes = 8;  // depth-7 towers walk 8 -> 1

HeParams
TowerParams()
{
    HeParams params;
    params.degree = kDegree;
    params.prime_count = kPrimes;
    params.prime_bits = 50;
    params.plain_modulus = 257;
    return params;
}

/** Shared deep fixture (keygen once; all relin levels). */
struct TowerFixture {
    std::shared_ptr<HeContext> ctx;
    std::unique_ptr<BgvScheme> scheme;
    std::optional<SecretKey> sk;
    std::optional<RelinKey> rk;
};

const TowerFixture &
SharedFixture()
{
    static const TowerFixture f = [] {
        TowerFixture t;
        t.ctx = std::make_shared<HeContext>(TowerParams());
        t.scheme = std::make_unique<BgvScheme>(t.ctx, /*seed=*/5150);
        t.sk.emplace(t.scheme->KeyGen());
        t.rk.emplace(t.scheme->MakeRelinKey(*t.sk));
        return t;
    }();
    return f;
}

Plaintext
RandomPlain(const HeContext &ctx, Xoshiro256 &rng)
{
    Plaintext m(ctx.degree());
    const u64 t = ctx.params().plain_modulus;
    for (u64 &x : m) {
        x = rng.NextBelow(t);
    }
    return m;
}

Plaintext
PlainMul(const Plaintext &a, const Plaintext &b, u64 t)
{
    const std::size_t n = a.size();
    Plaintext c(n, 0);
    for (std::size_t k = 0; k < n; ++k) {
        u64 acc = 0;
        for (std::size_t i = 0; i <= k; ++i) {
            acc = AddMod(acc, MulModNative(a[i], b[k - i], t), t);
        }
        for (std::size_t i = k + 1; i < n; ++i) {
            acc = SubMod(acc, MulModNative(a[i], b[n + k - i], t), t);
        }
        c[k] = acc;
    }
    return c;
}

void
ExpectCtBitIdentical(const Ciphertext &a, const Ciphertext &b,
                     const std::string &what)
{
    ASSERT_EQ(a.parts.size(), b.parts.size()) << what;
    for (std::size_t i = 0; i < a.parts.size(); ++i) {
        ASSERT_EQ(a.parts[i].prime_count(), b.parts[i].prime_count())
            << what;
        const auto fa = a.parts[i].flat();
        const auto fb = b.parts[i].flat();
        ASSERT_EQ(fa.size(), fb.size()) << what;
        for (std::size_t k = 0; k < fa.size(); ++k) {
            ASSERT_EQ(fa[k], fb[k])
                << what << ": part " << i << " word " << k;
        }
    }
}

/**
 * Walk a multiply-and-descend tower from the top of the chain:
 * acc <- RelinModSwitch(acc * m_i) for depth steps. Returns the
 * ciphertext at every level (index 0 = fresh, index d = after d
 * descents) so callers can check each level, not just the bottom.
 */
std::vector<Ciphertext>
RunTower(const BgvScheme &scheme, const RelinKey &rk,
         const Ciphertext &fresh,
         const std::vector<Ciphertext> &factors, std::size_t depth)
{
    std::vector<Ciphertext> levels;
    levels.push_back(fresh);
    Ciphertext acc = fresh;
    std::vector<Ciphertext> f = factors;
    for (std::size_t d = 0; d < depth; ++d) {
        acc = scheme.RelinModSwitch(scheme.Mul(acc, f[d]), rk);
        // Keep the remaining factors level-aligned with acc.
        for (std::size_t j = d + 1; j < f.size(); ++j) {
            f[j] = scheme.ModSwitch(f[j]);
        }
        levels.push_back(acc);
    }
    return levels;
}

/**
 * The core deep workload: a depth-7 tower through all 8 primes,
 * decrypted and oracle-checked at every level on the way down.
 */
HENTT_PBT_PROP(DeepCircuit, TowerDecryptsAtEveryLevel, 450,
               (hentt::Xoshiro256 &rng, hentt::u64 /*case_index*/))
{
    const TowerFixture &f = SharedFixture();
    const u64 t = f.ctx->params().plain_modulus;
    const std::size_t depth = kPrimes - 1;

    Plaintext m0 = RandomPlain(*f.ctx, rng);
    std::vector<Plaintext> ms;
    std::vector<Ciphertext> cts;
    for (std::size_t d = 0; d < depth; ++d) {
        ms.push_back(RandomPlain(*f.ctx, rng));
        cts.push_back(f.scheme->Encrypt(*f.sk, ms.back()));
    }
    const Ciphertext fresh = f.scheme->Encrypt(*f.sk, m0);

    const std::vector<Ciphertext> levels =
        RunTower(*f.scheme, *f.rk, fresh, cts, depth);

    Plaintext expected = m0;
    for (std::size_t d = 0; d < levels.size(); ++d) {
        SCOPED_TRACE("tower level " + std::to_string(d));
        if (d > 0) {
            expected = PlainMul(expected, ms[d - 1], t);
        }
        EXPECT_EQ(BgvScheme::Level(levels[d]), kPrimes - d);
        EXPECT_EQ(f.scheme->Decrypt(*f.sk, levels[d]), expected);
        EXPECT_GT(f.scheme->NoiseBudgetBits(*f.sk, levels[d]), 0.0);
    }
}

/**
 * The same tower (same encrypted inputs) must be *word-identical* at
 * every level under every available SIMD backend crossed with both
 * lazy stage walks. This is the paper's portability claim as an
 * executable invariant: the fused radix-4 walker and the vector
 * backends are pure scheduling changes, not numeric ones.
 */
HENTT_PBT_PROP(DeepCircuit, TowerBitIdenticalAcrossBackendsAndWalks,
               200, (hentt::Xoshiro256 &rng, hentt::u64 /*case_index*/))
{
    const TowerFixture &f = SharedFixture();
    const std::size_t depth = 1 + rng.NextBelow(kPrimes - 1);

    std::vector<Ciphertext> cts;
    for (std::size_t d = 0; d < depth; ++d) {
        cts.push_back(
            f.scheme->Encrypt(*f.sk, RandomPlain(*f.ctx, rng)));
    }
    const Ciphertext fresh =
        f.scheme->Encrypt(*f.sk, RandomPlain(*f.ctx, rng));

    // Every available backend, enumerated from kAllBackends so new
    // tiers (avx512ifma, neon, ...) join the sweep automatically.
    std::vector<simd::Backend> backends;
    for (const simd::Backend backend : simd::kAllBackends) {
        if (simd::BackendAvailable(backend)) {
            backends.push_back(backend);
        }
    }

    std::optional<std::vector<Ciphertext>> reference;
    for (const simd::Backend backend : backends) {
        for (const LazyWalk walk :
             {LazyWalk::kFusedRadix4, LazyWalk::kRadix2}) {
            simd::ForceBackend(backend);
            ForceLazyWalk(walk);
            const std::vector<Ciphertext> levels =
                RunTower(*f.scheme, *f.rk, fresh, cts, depth);
            simd::ResetBackend();
            ResetLazyWalk();
            if (!reference) {
                reference = levels;
                continue;
            }
            const std::string what =
                "backend " + std::to_string(static_cast<int>(backend)) +
                (walk == LazyWalk::kRadix2 ? " unfused" : " fused");
            ASSERT_EQ(levels.size(), reference->size()) << what;
            for (std::size_t d = 0; d < levels.size(); ++d) {
                ExpectCtBitIdentical(
                    levels[d], (*reference)[d],
                    what + " level " + std::to_string(d));
            }
        }
    }
}

/**
 * Two independent towers scheduled on one HeOpGraph (their per-level
 * batches share wavefront dispatches) must match the sequential
 * scheme path word for word at the bottom.
 */
HENTT_PBT_PROP(DeepCircuit, GraphTowersMatchDirectAtDepth, 200,
               (hentt::Xoshiro256 &rng, hentt::u64 /*case_index*/))
{
    const TowerFixture &f = SharedFixture();
    const std::size_t depth = 2 + rng.NextBelow(kPrimes - 2);

    // Two towers over independent inputs.
    std::vector<Ciphertext> fresh, direct;
    std::vector<std::vector<Ciphertext>> factors(2);
    for (int w = 0; w < 2; ++w) {
        fresh.push_back(
            f.scheme->Encrypt(*f.sk, RandomPlain(*f.ctx, rng)));
        for (std::size_t d = 0; d < depth; ++d) {
            factors[w].push_back(
                f.scheme->Encrypt(*f.sk, RandomPlain(*f.ctx, rng)));
        }
        direct.push_back(RunTower(*f.scheme, *f.rk, fresh[w],
                                  factors[w], depth)
                             .back());
    }

    HeOpGraph g(*f.scheme, &*f.rk);
    std::vector<CtFuture> acc;
    std::vector<std::vector<CtFuture>> gf(2);
    for (int w = 0; w < 2; ++w) {
        acc.push_back(g.Input(fresh[w]));
        for (const Ciphertext &ct : factors[w]) {
            gf[w].push_back(g.Input(ct));
        }
    }
    for (std::size_t d = 0; d < depth; ++d) {
        for (int w = 0; w < 2; ++w) {
            acc[w] = g.MulRelinModSwitch(acc[w], gf[w][d]);
            for (std::size_t j = d + 1; j < depth; ++j) {
                gf[w][j] = g.ModSwitch(gf[w][j]);
            }
        }
    }
    for (int w = 0; w < 2; ++w) {
        ExpectCtBitIdentical(acc[w].get(), direct[w],
                             "tower " + std::to_string(w));
    }
}

/**
 * Driving a tower past the bottom of the modulus chain must fail as a
 * clean kFailedPrecondition Status with provenance — and must leave
 * no residue: a replay of the same deterministic computation on a
 * fresh context, with the failing op in the sequence, is word-
 * identical to a run that never failed.
 */
HENTT_PBT_PROP(DeepCircuit, DepthExhaustionIsCleanPrecondition, 150,
               (hentt::Xoshiro256 &rng, hentt::u64 /*case_index*/))
{
    const u64 scheme_seed = rng.Next() | 1;
    Plaintext m0, m1;

    // Both runs share one deterministic script: fresh context, same
    // scheme seed, same plaintexts, same call order (modulo the
    // failing op, which run B omits).
    const auto play = [&](bool trigger_failure) {
        auto ctx = std::make_shared<HeContext>(TowerParams());
        BgvScheme scheme(ctx, scheme_seed);
        const SecretKey sk = scheme.KeyGen();
        const RelinKey rk = scheme.MakeRelinKey(sk);
        Ciphertext acc = scheme.Encrypt(sk, m0);
        Ciphertext other = scheme.Encrypt(sk, m1);
        // Plain ModSwitch walk to the bottom of the chain.
        while (BgvScheme::Level(acc) > 1) {
            acc = scheme.ModSwitch(acc);
            other = scheme.ModSwitch(other);
        }
        if (trigger_failure) {
            // One more step has no prime left to drop.
            const Result<Ciphertext> r = scheme.TryModSwitch(acc);
            EXPECT_FALSE(r.ok());
            EXPECT_EQ(r.status().code(),
                      ErrorCode::kFailedPrecondition);
            EXPECT_FALSE(r.status().frames().empty());
            EXPECT_NE(r.status().message().find("chain exhausted"),
                      std::string::npos)
                << r.status().message();
            // The fused descend fails the same way on a degree-2
            // operand at one prime.
            const Result<Ciphertext> r2 = scheme.TryRelinModSwitch(
                scheme.Mul(acc, other), rk);
            EXPECT_FALSE(r2.ok());
            EXPECT_EQ(r2.status().code(),
                      ErrorCode::kFailedPrecondition);
            EXPECT_FALSE(r2.status().frames().empty());
        }
        // Post-failure work must be untouched by the failed ops.
        return scheme.Add(acc, other);
    };

    const TowerFixture &f = SharedFixture();
    m0 = RandomPlain(*f.ctx, rng);
    m1 = RandomPlain(*f.ctx, rng);
    const Ciphertext with_failure = play(true);
    const Ciphertext clean = play(false);
    ExpectCtBitIdentical(with_failure, clean, "post-failure replay");
}

/**
 * Pins the relinearization transform budget at every level of the
 * chain: key-switching a degree-2 ciphertext with L primes lifts L
 * digits across L residue rows — exactly L^2 forward row transforms,
 * the evaluation-domain-keys contract of RelinKey (no per-op key
 * transforms, ever).
 */
TEST(DeepCircuit, RelinForwardRowsAreLevelSquaredAtEveryLevel)
{
    const TowerFixture &f = SharedFixture();
    Xoshiro256 rng(99);
    Ciphertext a = f.scheme->Encrypt(*f.sk, RandomPlain(*f.ctx, rng));
    Ciphertext b = f.scheme->Encrypt(*f.sk, RandomPlain(*f.ctx, rng));
    for (std::size_t level = kPrimes; level >= 2; --level) {
        ASSERT_EQ(BgvScheme::Level(a), level);
        const Ciphertext prod = f.scheme->Mul(a, b);
        ResetNttOpCounts();
        const Ciphertext relin = f.scheme->Relinearize(prod, *f.rk);
        EXPECT_EQ(GetNttOpCounts().forward, level * level)
            << "level " << level;
        (void)relin;
        a = f.scheme->RelinModSwitch(prod, *f.rk);
        b = f.scheme->ModSwitch(b);
    }
}

}  // namespace
}  // namespace hentt::he
