/** Unit tests for ntt/twiddle_table. */

#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/modarith.h"
#include "common/primegen.h"
#include "ntt/twiddle_table.h"

namespace hentt {
namespace {

class TwiddleTableTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TwiddleTableTest, EntriesMatchDefinition)
{
    const std::size_t n = GetParam();
    const u64 p = GenerateNttPrimes(2 * n, 40, 1)[0];
    const TwiddleTable table(n, p);
    const unsigned bits = Log2Exact(n);

    EXPECT_TRUE(IsPrimitiveRoot(table.psi(), 2 * n, p));
    EXPECT_EQ(MulModNative(table.psi(), table.psi_inv(), p), 1u);
    EXPECT_EQ(MulModNative(table.n_inv(), static_cast<u64>(n), p), 1u);

    for (std::size_t i = 0; i < n; ++i) {
        const u64 e = BitReverse(i, bits);
        EXPECT_EQ(table.w(i), PowMod(table.psi(), e, p)) << "i=" << i;
        EXPECT_EQ(table.w_shoup(i), ShoupPrecompute(table.w(i), p));
        EXPECT_EQ(table.w_inv(i), PowMod(table.psi_inv(), e, p));
        EXPECT_EQ(table.w_inv_shoup(i),
                  ShoupPrecompute(table.w_inv(i), p));
    }
}

TEST_P(TwiddleTableTest, TableBytesMatchPaperAccounting)
{
    const std::size_t n = GetParam();
    const u64 p = GenerateNttPrimes(2 * n, 40, 1)[0];
    const TwiddleTable table(n, p);
    // N twiddles + N Shoup companions, 8 bytes each.
    EXPECT_EQ(table.forward_table_bytes(), 2 * n * 8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TwiddleTableTest,
                         ::testing::Values(4, 16, 64, 256, 1024));

TEST(TwiddleTable, RejectsBadParameters)
{
    EXPECT_THROW(TwiddleTable(100, 257), std::invalid_argument);
    EXPECT_THROW(TwiddleTable(1, 257), std::invalid_argument);
    // 257 - 1 = 256 is not divisible by 2N = 512.
    EXPECT_THROW(TwiddleTable(256, 257), std::invalid_argument);
}

TEST(TwiddleTable, AcceptsValidPaperScaleParams)
{
    // 60-bit prime for N = 2^13 (smallest paper-adjacent size).
    const std::size_t n = 1 << 13;
    const u64 p = GenerateNttPrimes(2 * n, 60, 1)[0];
    EXPECT_NO_THROW(TwiddleTable(n, p));
}

}  // namespace
}  // namespace hentt
