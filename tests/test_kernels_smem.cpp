/** Tests for the two-kernel SMEM implementation emulation. */

#include <gtest/gtest.h>

#include "gpu/simulator.h"
#include "kernels/smem_kernel.h"

namespace hentt::kernels {
namespace {

SmemConfig
BaseConfig()
{
    SmemConfig cfg;
    cfg.kernel1_size = 512;
    cfg.kernel2_size = 256;
    cfg.points_per_thread = 8;
    return cfg;
}

TEST(SmemKernel, PlanHasExactlyTwoKernels)
{
    const SmemKernel kernel(BaseConfig());
    const auto plan = kernel.Plan(21);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0].launches, 1u);
    EXPECT_EQ(plan[1].launches, 1u);
}

TEST(SmemKernel, DataLoadedFromGmemOnlyTwice)
{
    // The paper's headline property of the SMEM implementation.
    const std::size_t np = 21;
    const SmemKernel kernel(BaseConfig());
    const auto plan = kernel.Plan(np);
    const double data = 512.0 * 256 * 8 * np;
    // Each kernel reads and writes the batch once; twiddles on top.
    EXPECT_GE(plan[0].dram_read_bytes, data);
    EXPECT_LT(plan[0].dram_read_bytes, data * 1.2);
    EXPECT_DOUBLE_EQ(plan[0].dram_write_bytes, data);
    EXPECT_GE(plan[1].dram_read_bytes, data);
    EXPECT_DOUBLE_EQ(plan[1].dram_write_bytes, data);
}

TEST(SmemKernel, SyncCountTradeoff)
{
    // Fig. 10: radix-512 needs 2 syncs at 8-point-per-thread and 8 at
    // 2-point-per-thread.
    EXPECT_EQ(SmemKernel::SyncCount(512, 8), 2u);
    EXPECT_EQ(SmemKernel::SyncCount(512, 2), 8u);
    EXPECT_EQ(SmemKernel::SyncCount(64, 8), 1u);
    EXPECT_EQ(SmemKernel::SyncCount(256, 4), 3u);
}

TEST(SmemKernel, SmallerPerThreadNttCostsMoreSyncSlots)
{
    const std::size_t np = 21;
    SmemConfig two = BaseConfig();
    two.points_per_thread = 2;
    const auto plan8 = SmemKernel(BaseConfig()).Plan(np);
    const auto plan2 = SmemKernel(two).Plan(np);
    EXPECT_GT(plan2[0].compute_slots, plan8[0].compute_slots);
    EXPECT_GT(plan2[0].block_syncs, plan8[0].block_syncs);
}

TEST(SmemKernel, UncoalescedExpandsTransactions)
{
    SmemConfig uncoalesced = BaseConfig();
    uncoalesced.coalesced = false;
    const auto coal = SmemKernel(BaseConfig()).PlanKernel1(21);
    const auto uncoal = SmemKernel(uncoalesced).PlanKernel1(21);
    EXPECT_GT(uncoal.transaction_bytes, coal.transaction_bytes);
    // The L2-missing share of the over-fetch reaches DRAM, and the
    // sector replays cost issue slots.
    EXPECT_GT(uncoal.dram_read_bytes, coal.dram_read_bytes);
    EXPECT_GT(uncoal.compute_slots, coal.compute_slots);
}

TEST(SmemKernel, PreloadReducesTransactionPressure)
{
    SmemConfig no_preload = BaseConfig();
    no_preload.preload_twiddles = false;
    const auto with = SmemKernel(BaseConfig()).PlanKernel1(21);
    const auto without = SmemKernel(no_preload).PlanKernel1(21);
    EXPECT_GT(without.transaction_bytes, with.transaction_bytes);
    // Preload needs the SMEM staging area.
    EXPECT_GT(with.resources.smem_per_block,
              without.resources.smem_per_block);
}

TEST(SmemKernel, OtShrinksKernel2Twiddles)
{
    SmemConfig ot = BaseConfig();
    ot.ot_stages = 2;
    const auto base_k2 = SmemKernel(BaseConfig()).PlanKernel2(21);
    const auto ot_k2 = SmemKernel(ot).PlanKernel2(21);
    EXPECT_LT(ot_k2.dram_read_bytes, base_k2.dram_read_bytes);
    EXPECT_GT(ot_k2.compute_slots, base_k2.compute_slots);
}

TEST(SmemKernel, OtTrafficReductionMatchesPaperMagnitude)
{
    // Fig. 12(c): ~24.5% fewer DRAM bytes with OT at N = 2^17, np = 21.
    SmemConfig base = BaseConfig();
    SmemConfig ot = base;
    ot.ot_stages = 2;
    const double bytes_base =
        gpu::PlanDramBytes(SmemKernel(base).Plan(21));
    const double bytes_ot = gpu::PlanDramBytes(SmemKernel(ot).Plan(21));
    const double reduction = 1.0 - bytes_ot / bytes_base;
    EXPECT_GT(reduction, 0.18);
    EXPECT_LT(reduction, 0.32);
}

TEST(SmemKernel, PaperShapeOtGivesSingleDigitSpeedup)
{
    // Table II / Fig. 12(b): OT speeds the best SMEM config up by
    // ~8-10%, because the kernel flips from memory- to compute-bound.
    const gpu::Simulator sim;
    SmemConfig base = BaseConfig();
    SmemConfig ot = base;
    ot.ot_stages = 2;
    const double t_base = sim.Estimate(SmemKernel(base).Plan(21)).total_us;
    const double t_ot = sim.Estimate(SmemKernel(ot).Plan(21)).total_us;
    const double speedup = t_base / t_ot;
    EXPECT_GT(speedup, 1.02);
    EXPECT_LT(speedup, 1.25);
}

TEST(SmemKernel, ExecuteBitExactWithAndWithoutOt)
{
    SmemConfig cfg;
    cfg.kernel1_size = 16;
    cfg.kernel2_size = 16;
    cfg.ot_base = 32;
    for (unsigned ot_stages : {0u, 1u, 2u}) {
        cfg.ot_stages = ot_stages;
        NttBatchWorkload a(256, 2, 40), b(256, 2, 40);
        a.Randomize(5);
        b.Randomize(5);
        SmemKernel(cfg).Execute(a);
        for (std::size_t i = 0; i < b.np(); ++i) {
            b.engine(i).Forward(b.row(i));
            EXPECT_EQ(a.row(i), b.row(i));
        }
    }
}

TEST(SmemKernel, RejectsBadConfigs)
{
    SmemConfig cfg = BaseConfig();
    cfg.points_per_thread = 3;
    EXPECT_THROW(SmemKernel{cfg}, std::invalid_argument);
    cfg = BaseConfig();
    cfg.kernel1_size = 100;
    EXPECT_THROW(SmemKernel{cfg}, std::invalid_argument);
    cfg = BaseConfig();
    cfg.ot_stages = 64;
    EXPECT_THROW(SmemKernel{cfg}, std::invalid_argument);
}

TEST(SmemKernel, ExecuteRejectsMismatchedWorkload)
{
    NttBatchWorkload workload(128, 1, 40);
    EXPECT_THROW(SmemKernel(BaseConfig()).Execute(workload),
                 std::invalid_argument);
}

}  // namespace
}  // namespace hentt::kernels
