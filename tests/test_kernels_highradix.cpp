/** Tests for the high-radix register kernel emulation. */

#include <gtest/gtest.h>

#include <map>

#include "gpu/simulator.h"
#include "kernels/highradix_kernel.h"
#include "ntt/ntt_highradix.h"

namespace hentt::kernels {
namespace {

TEST(HighRadixKernel, PassCountMatchesLibraryFormula)
{
    for (std::size_t radix : {2, 4, 8, 16, 32, 64, 128}) {
        const auto plan = HighRadixKernel(radix).Plan(1 << 17, 21);
        EXPECT_EQ(plan.size(), HighRadixPassCount(1 << 17, radix))
            << "radix " << radix;
    }
}

TEST(HighRadixKernel, DataTrafficShrinksWithRadix)
{
    const gpu::Simulator sim;
    double prev = 1e18;
    for (std::size_t radix : {2, 4, 8, 16}) {
        const auto plan = HighRadixKernel(radix).Plan(1 << 16, 21);
        const double bytes = gpu::PlanDramBytes(plan);
        EXPECT_LT(bytes, prev) << "radix " << radix;
        prev = bytes;
    }
}

TEST(HighRadixKernel, SpilledRadixAddsLmemTraffic)
{
    const auto r32 = HighRadixKernel(32).Plan(1 << 16, 21);
    const auto r64 = HighRadixKernel(64).Plan(1 << 16, 21);
    for (const auto &k : r32) {
        EXPECT_DOUBLE_EQ(k.lmem_bytes, 0.0);
    }
    double lmem = 0;
    for (const auto &k : r64) {
        lmem += k.lmem_bytes;
    }
    EXPECT_GT(lmem, 0.0);
}

TEST(HighRadixKernel, PaperShapeRadix16IsBest)
{
    // Fig. 4(b): among the register-based kernels, radix-16 wins at
    // N = 2^17, np = 21; radix-2 is ~2.4x slower; radix-64/128 degrade.
    const gpu::Simulator sim;
    std::map<std::size_t, double> time;
    for (std::size_t radix : {2, 4, 8, 16, 32, 64, 128}) {
        time[radix] =
            sim.Estimate(HighRadixKernel(radix).Plan(1 << 17, 21))
                .total_us;
    }
    for (auto [radix, t] : time) {
        if (radix != 16) {
            EXPECT_GE(t, time[16]) << "radix " << radix;
        }
    }
    EXPECT_GT(time[2] / time[16], 2.0);   // paper: 2.41x on average
    EXPECT_LT(time[2] / time[16], 3.2);
    EXPECT_GT(time[64], time[32]);
    EXPECT_GT(time[128], time[64]);
}

TEST(HighRadixKernel, ExecuteBitExactVsRadix2Path)
{
    NttBatchWorkload a(128, 2, 40), b(128, 2, 40);
    a.Randomize(4);
    b.Randomize(4);
    HighRadixKernel(16).Execute(a);
    for (std::size_t i = 0; i < b.np(); ++i) {
        b.engine(i).Forward(b.row(i));
        EXPECT_EQ(a.row(i), b.row(i));
    }
}

TEST(HighRadixKernel, PlanRejectsBadRadix)
{
    EXPECT_THROW(HighRadixKernel(3).Plan(1 << 14, 2),
                 std::invalid_argument);
    EXPECT_THROW(HighRadixKernel(2).Plan(1000, 2),
                 std::invalid_argument);
}

}  // namespace
}  // namespace hentt::kernels
