/**
 * Cross-module integration tests: the full pipeline from HE-style
 * polynomial multiplication down through RNS, NTT, and the GPU model,
 * plus end-to-end reproduction sanity checks of the paper's headline
 * numbers (Table II shape).
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "kernels/config_search.h"
#include "kernels/launcher.h"
#include "poly/rns_poly.h"
#include "rns/crt.h"

namespace hentt {
namespace {

TEST(Integration, RnsPolyMultiplyMatchesBigIntSchoolbook)
{
    // Full stack: BigInt coefficients -> CRT -> batched NTT multiply ->
    // CRT recompose -> compare against big-int schoolbook negacyclic
    // convolution.
    const std::size_t n = 16;
    auto basis = std::make_shared<RnsBasis>(n, 45, 3);
    auto ctx = std::make_shared<RnsNttContext>(n, basis);

    Xoshiro256 rng(123);
    std::vector<BigInt> ca(n), cb(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Keep magnitudes small enough that the convolution stays
        // below Q (3 x 45 bits): 40-bit coefficients, 16 terms.
        ca[i] = BigInt(rng.Next() >> 24);
        cb[i] = BigInt(rng.Next() >> 24);
    }
    const RnsPoly a(ctx, ca);
    const RnsPoly b(ctx, cb);
    const RnsPoly c = RnsPoly::Multiply(a, b);

    const BigInt q = basis->product();
    for (std::size_t k = 0; k < n; ++k) {
        // Schoolbook negacyclic with signed accumulation done in two
        // unsigned piles (positive and wrapped-negative terms).
        BigInt pos, neg;
        for (std::size_t i = 0; i <= k; ++i) {
            pos += ca[i] * cb[k - i];
        }
        for (std::size_t i = k + 1; i < n; ++i) {
            neg += ca[i] * cb[n + k - i];
        }
        // Expected value mod Q. The piles are far below Q (40-bit
        // coefficients), so at most one corrective subtraction runs.
        BigInt expect;
        if (pos >= neg) {
            expect = pos - neg;
            while (expect >= q) {
                expect -= q;
            }
        } else {
            BigInt d = neg - pos;
            while (d >= q) {
                d -= q;
            }
            expect = d.IsZero() ? BigInt{} : q - d;
        }
        EXPECT_EQ(c.CoefficientAsBigInt(k), expect) << "k=" << k;
    }
}

TEST(Integration, TableIIShape)
{
    // The headline reproduction: radix-2 -> best SMEM -> best SMEM+OT
    // at np = 21 across logN = 14..17. We assert the paper's *shape*:
    // SMEM gives ~3-5x over radix-2, OT adds a mid-single-digit
    // percentage on top, and both speedups grow (weakly) with N.
    const gpu::Simulator sim;
    for (unsigned log_n = 14; log_n <= 17; ++log_n) {
        const std::size_t n = std::size_t{1} << log_n;
        const double radix2 =
            kernels::EstimateRadix2(sim, n, 21).time_us();
        const double smem =
            kernels::FindBestSmemConfig(sim, n, 21).estimate.total_us;
        const double smem_ot =
            kernels::FindBestSmemConfig(sim, n, 21, 8, 2)
                .estimate.total_us;
        const double speedup_smem = radix2 / smem;
        const double speedup_ot = radix2 / smem_ot;
        EXPECT_GT(speedup_smem, 3.0) << "logN " << log_n;
        EXPECT_LT(speedup_smem, 5.5) << "logN " << log_n;
        EXPECT_GT(speedup_ot, speedup_smem) << "logN " << log_n;
    }
}

TEST(Integration, OverallOptimizationLadder)
{
    // Section VI/VII ladder at (2^17, 21): radix-2 is slowest, the
    // best register-based high-radix kernel improves on it, the SMEM
    // implementation improves further, and OT wins overall.
    const gpu::Simulator sim;
    const std::size_t n = 1 << 17;
    const double radix2 = kernels::EstimateRadix2(sim, n, 21).time_us();
    const double high16 =
        kernels::EstimateHighRadix(sim, n, 21, 16).time_us();
    const double smem =
        kernels::FindBestSmemConfig(sim, n, 21).estimate.total_us;
    const double ot =
        kernels::FindBestSmemConfig(sim, n, 21, 8, 2).estimate.total_us;
    EXPECT_GT(radix2, high16);
    EXPECT_GT(high16, smem);
    EXPECT_GT(smem, ot);
    // Paper: 4.2x average radix-2 -> SMEM+OT.
    EXPECT_GT(radix2 / ot, 3.4);
    EXPECT_LT(radix2 / ot, 5.5);
}

TEST(Integration, FunctionalKernelsAgreeAcrossEmulations)
{
    // Every kernel emulation computes the same transform.
    kernels::NttBatchWorkload w1(256, 2, 45), w2(256, 2, 45),
        w3(256, 2, 45);
    w1.Randomize(9);
    w2.Randomize(9);
    w3.Randomize(9);
    kernels::Radix2Kernel().Execute(w1);
    kernels::HighRadixKernel(16).Execute(w2);
    kernels::SmemConfig cfg;
    cfg.kernel1_size = 16;
    cfg.kernel2_size = 16;
    cfg.ot_stages = 1;
    cfg.ot_base = 64;
    kernels::SmemKernel(cfg).Execute(w3);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(w1.row(i), w2.row(i));
        EXPECT_EQ(w1.row(i), w3.row(i));
    }
}

}  // namespace
}  // namespace hentt
