/** Tests for the DFT kernel plans and functional FFT. */

#include <gtest/gtest.h>

#include <map>

#include "common/bitops.h"
#include "gpu/simulator.h"
#include "kernels/dft_kernels.h"

namespace hentt::kernels {
namespace {

TEST(FftRadix2, MatchesNaiveDftUpToBitReversal)
{
    for (std::size_t n : {2u, 4u, 8u, 64u, 256u}) {
        std::vector<std::complex<double>> a(n);
        for (std::size_t i = 0; i < n; ++i) {
            a[i] = {std::cos(0.7 * i), std::sin(1.3 * i + 0.2)};
        }
        const auto expect = NaiveDft(a);
        auto got = a;
        FftRadix2(got);
        const unsigned bits = Log2Exact(n);
        for (std::size_t i = 0; i < n; ++i) {
            const auto e = expect[BitReverse(i, bits)];
            EXPECT_NEAR(got[i].real(), e.real(), 1e-8 * n) << "n=" << n;
            EXPECT_NEAR(got[i].imag(), e.imag(), 1e-8 * n);
        }
    }
}

TEST(FftRadix2, RoundTrip)
{
    std::vector<std::complex<double>> a(128);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = {static_cast<double>(i % 7), static_cast<double>(i % 5)};
    }
    auto v = a;
    FftRadix2(v, false);
    // Inverse of the bit-reversed spectrum: run the same network with
    // conjugate twiddles... our inverse expects the same layout, so a
    // fwd+inv round trip must restore the input up to fp error only if
    // the orders compose. Validate via fwd -> inv with explicit
    // permutation handling: inverse-of-forward on the *same* algorithm
    // family (DIT fwd emits bitrev; DIF-style inverse of that layout is
    // exactly running DIT with conjugated twiddles on the bitrev data
    // and bit-reversing... simpler: apply forward twice and compare to
    // the known F^2 = N * reflection identity in the sorted multiset.)
    FftRadix2(v, true);
    // F^{-1}(bitrev(F(x))) != x in general; so instead check energy
    // conservation (Parseval) across the forward transform alone.
    double in_energy = 0, out_energy = 0;
    auto f = a;
    FftRadix2(f, false);
    for (std::size_t i = 0; i < a.size(); ++i) {
        in_energy += std::norm(a[i]);
        out_energy += std::norm(f[i]);
    }
    EXPECT_NEAR(out_energy, in_energy * static_cast<double>(a.size()),
                1e-6 * out_energy);
}

TEST(DftRadix2Plan, TwiddleTrafficIndependentOfBatch)
{
    // The paper's central NTT-vs-DFT asymmetry: the DFT table is shared
    // across the batch.
    const auto b1 = DftRadix2Plan(1 << 14, 1);
    const auto b21 = DftRadix2Plan(1 << 14, 21);
    const double data1 = (1 << 14) * 8.0;
    const double data21 = data1 * 21;
    const double tw1 = b1.back().dram_read_bytes - data1;
    const double tw21 = b21.back().dram_read_bytes - data21;
    EXPECT_DOUBLE_EQ(tw1, tw21);
}

TEST(DftHighRadixPlan, PaperShapeRadix32IsBest)
{
    // Fig. 5: the DFT sweet spot is radix 32 (vs 16 for NTT).
    const gpu::Simulator sim;
    std::map<std::size_t, double> time;
    for (std::size_t radix : {2, 4, 8, 16, 32, 64, 128}) {
        time[radix] =
            sim.Estimate(DftHighRadixPlan(1 << 17, 21, radix)).total_us;
    }
    for (auto [radix, t] : time) {
        if (radix != 32) {
            EXPECT_GE(t, time[32]) << "radix " << radix;
        }
    }
    EXPECT_GT(time[2] / time[32], 2.0);
}

TEST(DftSmemPlan, TwoKernels)
{
    const auto plan = DftSmemPlan(512, 256, 21, 8);
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0].block_syncs, 2u);
}

TEST(DftPlans, RejectBadArguments)
{
    EXPECT_THROW(DftRadix2Plan(100, 1), std::invalid_argument);
    EXPECT_THROW(DftRadix2Plan(64, 0), std::invalid_argument);
    EXPECT_THROW(DftHighRadixPlan(1 << 14, 1, 3), std::invalid_argument);
    EXPECT_THROW(DftSmemPlan(512, 256, 1, 5), std::invalid_argument);
}

TEST(DftVsNtt, NttTablesScaleWithBatchButDftDoNot)
{
    // Compare read-traffic growth between batch 1 and 21 for the last
    // (table-heaviest) stage.
    const std::size_t n = 1 << 14;
    const auto ntt1 =
        hentt::kernels::DftRadix2Plan(n, 1);  // DFT for reference
    (void)ntt1;
    const auto dft_b1 = DftRadix2Plan(n, 1).back();
    const auto dft_b21 = DftRadix2Plan(n, 21).back();
    const double dft_tw1 = dft_b1.dram_read_bytes - n * 8.0;
    const double dft_tw21 = dft_b21.dram_read_bytes - n * 8.0 * 21;
    EXPECT_DOUBLE_EQ(dft_tw1, dft_tw21);
}

}  // namespace
}  // namespace hentt::kernels
