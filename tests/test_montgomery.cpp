/** Tests for Montgomery multiplication. */

#include <gtest/gtest.h>

#include "common/modarith.h"
#include "common/montgomery.h"
#include "common/primegen.h"
#include "common/random.h"

namespace hentt {
namespace {

class MontgomeryTest : public ::testing::TestWithParam<u64> {};

TEST_P(MontgomeryTest, RoundTripForm)
{
    const u64 p = GetParam();
    const MontgomeryMultiplier mont(p);
    Xoshiro256 rng(p);
    for (int i = 0; i < 300; ++i) {
        const u64 x = rng.NextBelow(p);
        EXPECT_EQ(mont.FromMontgomery(mont.ToMontgomery(x)), x);
    }
}

TEST_P(MontgomeryTest, MulModAgreesWithNative)
{
    const u64 p = GetParam();
    const MontgomeryMultiplier mont(p);
    Xoshiro256 rng(p ^ 0xabc);
    for (int i = 0; i < 300; ++i) {
        const u64 a = rng.NextBelow(p);
        const u64 b = rng.NextBelow(p);
        EXPECT_EQ(mont.MulMod(a, b), MulModNative(a, b, p));
    }
}

TEST_P(MontgomeryTest, MontFormProductsCompose)
{
    // (a*b)*c == a*(b*c) staying in Montgomery form throughout.
    const u64 p = GetParam();
    const MontgomeryMultiplier mont(p);
    Xoshiro256 rng(p ^ 0x777);
    for (int i = 0; i < 100; ++i) {
        const u64 a = mont.ToMontgomery(rng.NextBelow(p));
        const u64 b = mont.ToMontgomery(rng.NextBelow(p));
        const u64 c = mont.ToMontgomery(rng.NextBelow(p));
        EXPECT_EQ(mont.MulMont(mont.MulMont(a, b), c),
                  mont.MulMont(a, mont.MulMont(b, c)));
    }
}

INSTANTIATE_TEST_SUITE_P(OddModuli, MontgomeryTest,
                         ::testing::Values(u64{3}, u64{65537},
                                           u64{1000000007},
                                           u64{1152921504606584833ULL},
                                           (u64{1} << 62) - 57));

TEST(Montgomery, RejectsEvenOrHugeModuli)
{
    EXPECT_THROW(MontgomeryMultiplier(10), std::invalid_argument);
    EXPECT_THROW(MontgomeryMultiplier(u64{1} << 62),
                 std::invalid_argument);
    EXPECT_THROW(MontgomeryMultiplier(0), std::invalid_argument);
}

TEST(Montgomery, OneMapsToRModP)
{
    const u64 p = 1000000007ULL;
    const MontgomeryMultiplier mont(p);
    // 1 in Montgomery form is 2^64 mod p.
    const u64 r_mod_p = (~u64{0} % p + 1) % p;
    EXPECT_EQ(mont.ToMontgomery(1), r_mod_p);
    EXPECT_EQ(mont.FromMontgomery(r_mod_p), 1u);
}

}  // namespace
}  // namespace hentt
