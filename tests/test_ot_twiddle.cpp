/** Tests for on-the-fly twiddling (paper Section VII). */

#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/modarith.h"
#include "common/primegen.h"
#include "common/random.h"
#include "ntt/ntt_radix2.h"
#include "ntt/ot_twiddle.h"

namespace hentt {
namespace {

class OtTableTest : public ::testing::TestWithParam<std::size_t>
{
  protected:
    void
    SetUp() override
    {
        base_ = GetParam();
        n_ = 1024;
        p_ = GenerateNttPrimes(2 * n_, 50, 1)[0];
        ot_ = std::make_unique<OtTwiddleTable>(n_, p_, base_);
    }

    std::size_t base_, n_;
    u64 p_;
    std::unique_ptr<OtTwiddleTable> ot_;
};

TEST_P(OtTableTest, FactorizationReproducesEveryTwiddle)
{
    for (u64 e = 0; e < 2 * n_; ++e) {
        EXPECT_EQ(ot_->Twiddle(e), PowMod(ot_->psi(), e, p_)) << "e=" << e;
    }
}

TEST_P(OtTableTest, ApplyEqualsDirectMultiply)
{
    Xoshiro256 rng(base_);
    for (int i = 0; i < 200; ++i) {
        const u64 x = rng.NextBelow(p_);
        const u64 e = rng.NextBelow(2 * n_);
        const u64 direct = MulModNative(x, PowMod(ot_->psi(), e, p_), p_);
        EXPECT_EQ(ot_->Apply(x, e), direct);
    }
}

TEST_P(OtTableTest, EntryCountMatchesPaperFormula)
{
    // base + ceil(2N / base) entries (paper: 1024 + 2^17/1024 for
    // N = 2^17, base 1024).
    EXPECT_EQ(ot_->entry_count(), base_ + (2 * n_ + base_ - 1) / base_);
    EXPECT_EQ(ot_->table_bytes(), 2 * ot_->entry_count() * 8);
}

INSTANTIATE_TEST_SUITE_P(Bases, OtTableTest,
                         ::testing::Values(2, 16, 64, 256, 1024, 2048));

TEST(OtTable, TableShrinksVsFullTable)
{
    const std::size_t n = 1 << 14;
    const u64 p = GenerateNttPrimes(2 * n, 50, 1)[0];
    const OtTwiddleTable ot(n, p, 1024);
    const TwiddleTable full(n, p);
    // 1024 + 32 entries vs 16384: two orders of magnitude smaller.
    EXPECT_LT(ot.table_bytes() * 10, full.forward_table_bytes());
}

class OtNttTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(OtNttTest, OtStagesBitExactVsPlainRadix2)
{
    const std::size_t n = 512;
    const unsigned ot_stages = GetParam();
    const u64 p = GenerateNttPrimes(2 * n, 50, 1)[0];
    const TwiddleTable table(n, p);
    const OtTwiddleTable ot(n, p, 64);

    Xoshiro256 rng(7 + ot_stages);
    std::vector<u64> a(n);
    for (u64 &x : a) {
        x = rng.NextBelow(p);
    }
    std::vector<u64> reference = a;
    NttRadix2(reference, table);
    std::vector<u64> with_ot = a;
    NttRadix2Ot(with_ot, table, ot, ot_stages);
    EXPECT_EQ(with_ot, reference);
}

INSTANTIATE_TEST_SUITE_P(StageCounts, OtNttTest,
                         ::testing::Values(0, 1, 2, 3, 9));

TEST(OtNtt, RejectsTooManyStages)
{
    const std::size_t n = 64;
    const u64 p = GenerateNttPrimes(2 * n, 40, 1)[0];
    const TwiddleTable table(n, p);
    const OtTwiddleTable ot(n, p, 16);
    std::vector<u64> a(n, 1);
    EXPECT_THROW(NttRadix2Ot(a, table, ot, 7), std::invalid_argument);
}

TEST(ForwardTwiddleExponent, MatchesBitReversal)
{
    EXPECT_EQ(ForwardTwiddleExponent(1, 8), 4u);
    EXPECT_EQ(ForwardTwiddleExponent(3, 8), 6u);
    EXPECT_EQ(ForwardTwiddleExponent(7, 8), 7u);
}

}  // namespace
}  // namespace hentt
