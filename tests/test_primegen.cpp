/** Unit tests for common/primegen. */

#include <gtest/gtest.h>

#include <set>

#include "common/modarith.h"
#include "common/primegen.h"

namespace hentt {
namespace {

TEST(IsPrime, SmallValues)
{
    EXPECT_FALSE(IsPrime(0));
    EXPECT_FALSE(IsPrime(1));
    EXPECT_TRUE(IsPrime(2));
    EXPECT_TRUE(IsPrime(3));
    EXPECT_FALSE(IsPrime(4));
    EXPECT_TRUE(IsPrime(97));
    EXPECT_FALSE(IsPrime(91));  // 7 * 13
    EXPECT_TRUE(IsPrime(65537));
}

TEST(IsPrime, AgreesWithSieveUpTo10000)
{
    std::vector<bool> sieve(10000, true);
    sieve[0] = sieve[1] = false;
    for (std::size_t i = 2; i < sieve.size(); ++i) {
        if (sieve[i]) {
            for (std::size_t j = 2 * i; j < sieve.size(); j += i) {
                sieve[j] = false;
            }
        }
    }
    for (std::size_t i = 0; i < sieve.size(); ++i) {
        EXPECT_EQ(IsPrime(i), sieve[i]) << "n=" << i;
    }
}

TEST(IsPrime, LargeKnownValues)
{
    EXPECT_TRUE(IsPrime(u64{0xFFFFFFFF00000001ULL}));  // Goldilocks
    EXPECT_TRUE(IsPrime(1000000007ULL));
    EXPECT_FALSE(IsPrime(1000000007ULL * 3));
    // Carmichael number 561 and a large pseudo-prime trap.
    EXPECT_FALSE(IsPrime(561));
    EXPECT_FALSE(IsPrime(3215031751ULL));  // strong pseudoprime to 2,3,5,7
}

TEST(DistinctPrimeFactors, Basic)
{
    EXPECT_EQ(DistinctPrimeFactors(12), (std::vector<u64>{2, 3}));
    EXPECT_EQ(DistinctPrimeFactors(97), (std::vector<u64>{97}));
    EXPECT_EQ(DistinctPrimeFactors(1), (std::vector<u64>{}));
    EXPECT_EQ(DistinctPrimeFactors(1024), (std::vector<u64>{2}));
}

TEST(DistinctPrimeFactors, LargeComposite)
{
    const u64 a = 1000000007ULL;
    const u64 b = 998244353ULL;
    const auto factors = DistinctPrimeFactors(a * b);
    EXPECT_EQ(factors, (std::vector<u64>{b, a}));
}

TEST(GenerateNttPrimes, ProducesValidPrimes)
{
    const u64 step = 2 * 4096;
    const auto primes = GenerateNttPrimes(step, 50, 8);
    ASSERT_EQ(primes.size(), 8u);
    std::set<u64> unique(primes.begin(), primes.end());
    EXPECT_EQ(unique.size(), 8u);
    for (u64 p : primes) {
        EXPECT_TRUE(IsPrime(p));
        EXPECT_EQ(p % step, 1u);
        EXPECT_GE(p, u64{1} << 49);
        EXPECT_LT(p, u64{1} << 50);
    }
}

TEST(GenerateNttPrimes, PaperScaleParameters)
{
    // The paper's regime: 60-bit primes, N = 2^17 -> step 2^18.
    const auto primes = GenerateNttPrimes(u64{1} << 18, 60, 4);
    for (u64 p : primes) {
        EXPECT_TRUE(IsPrime(p));
        EXPECT_EQ(p % (u64{1} << 18), 1u);
    }
}

TEST(GenerateNttPrimes, RejectsBadArguments)
{
    EXPECT_THROW(GenerateNttPrimes(100, 50, 1), std::invalid_argument);
    EXPECT_THROW(GenerateNttPrimes(1 << 13, 63, 1), std::invalid_argument);
    EXPECT_THROW(GenerateNttPrimes(u64{1} << 20, 10, 1),
                 std::invalid_argument);
}

TEST(FindGenerator, GeneratesFullGroup)
{
    for (u64 p : {u64{13}, u64{257}, u64{65537}}) {
        const u64 g = FindGenerator(p);
        // g^k must only hit 1 at k = p - 1.
        std::set<u64> seen;
        u64 x = 1;
        for (u64 k = 0; k < p - 1; ++k) {
            seen.insert(x);
            x = MulModNative(x, g, p);
        }
        EXPECT_EQ(seen.size(), p - 1);
    }
}

TEST(FindPrimitiveRoot, SatisfiesDefinition)
{
    const u64 p = GenerateNttPrimes(2 * 1024, 40, 1)[0];
    const u64 n = 2 * 1024;
    const u64 root = FindPrimitiveRoot(n, p);
    EXPECT_TRUE(IsPrimitiveRoot(root, n, p));
    EXPECT_EQ(PowMod(root, n, p), 1u);
    EXPECT_NE(PowMod(root, n / 2, p), 1u);
    // psi^(n/2) must be -1 (order-2 element).
    EXPECT_EQ(PowMod(root, n / 2, p), p - 1);
}

TEST(FindPrimitiveRoot, RejectsNonDivisor)
{
    EXPECT_THROW(FindPrimitiveRoot(7, 13), std::invalid_argument);
}

TEST(IsPrimitiveRoot, RejectsNonPrimitive)
{
    const u64 p = 97;  // p - 1 = 96 = 2^5 * 3
    const u64 root = FindPrimitiveRoot(8, p);
    EXPECT_TRUE(IsPrimitiveRoot(root, 8, p));
    // root^2 has order 4, not 8.
    EXPECT_FALSE(IsPrimitiveRoot(MulModNative(root, root, p), 8, p));
    EXPECT_FALSE(IsPrimitiveRoot(0, 8, p));
    EXPECT_FALSE(IsPrimitiveRoot(1, 8, p));
}

}  // namespace
}  // namespace hentt
