/** Tests for the coalescing / transaction model. */

#include <gtest/gtest.h>

#include <vector>

#include "gpu/memory_model.h"

namespace hentt::gpu {
namespace {

TEST(WarpTransactions, FullyCoalesced8ByteWords)
{
    // 32 consecutive u64s = 256 bytes = 8 transactions of 32 bytes.
    std::vector<u64> addrs(32);
    for (std::size_t i = 0; i < 32; ++i) {
        addrs[i] = i * 8;
    }
    EXPECT_EQ(WarpTransactions(addrs, 8), 8u);
}

TEST(WarpTransactions, FullyScattered)
{
    std::vector<u64> addrs(32);
    for (std::size_t i = 0; i < 32; ++i) {
        addrs[i] = i * 4096;  // each lane in its own sector
    }
    EXPECT_EQ(WarpTransactions(addrs, 8), 32u);
}

TEST(WarpTransactions, BroadcastSingleSector)
{
    const std::vector<u64> addrs(32, 64);
    EXPECT_EQ(WarpTransactions(addrs, 8), 1u);
}

TEST(WarpTransactions, MisalignedAccessSpansTwoSectors)
{
    const std::vector<u64> addrs = {28};  // 8 bytes crossing a boundary
    EXPECT_EQ(WarpTransactions(addrs, 8), 2u);
}

TEST(WarpTransactions, RejectsZeroSizes)
{
    const std::vector<u64> addrs = {0};
    EXPECT_THROW(WarpTransactions(addrs, 0), std::invalid_argument);
}

TEST(StridedWarpTransactions, MatchesExactSimulation)
{
    // Cross-validate the closed form against the exact simulator for a
    // sweep of strides (the property the benches rely on).
    for (std::size_t stride : {8u, 16u, 32u, 64u, 128u, 24u, 40u}) {
        std::vector<u64> addrs(32);
        for (std::size_t i = 0; i < 32; ++i) {
            addrs[i] = i * stride;
        }
        EXPECT_EQ(StridedWarpTransactions(stride, 8),
                  WarpTransactions(addrs, 8))
            << "stride " << stride;
    }
}

TEST(CoalescingExpansion, PaperKernel1Pattern)
{
    // Unit stride: 1.0 (no waste).
    EXPECT_DOUBLE_EQ(CoalescingExpansion(8, 8), 1.0);
    // The paper's uncoalesced Kernel-1: 8-byte words with stride >= 32
    // bytes -> each 32-byte sector carries 8 useful bytes: 4x expansion
    // (Fig. 6(a)'s "75% wasted").
    EXPECT_DOUBLE_EQ(CoalescingExpansion(32, 8), 4.0);
    EXPECT_DOUBLE_EQ(CoalescingExpansion(4096, 8), 4.0);
    // Stride 16: half the sector useful -> 2x.
    EXPECT_DOUBLE_EQ(CoalescingExpansion(16, 8), 2.0);
}

TEST(CoalescingExpansion, BroadcastIsCheap)
{
    EXPECT_DOUBLE_EQ(CoalescingExpansion(0, 8), 32.0 / (32.0 * 8.0));
}

}  // namespace
}  // namespace hentt::gpu
