/**
 * @file
 * Property-based tests of the serving wire codec (serve/wire.h).
 *
 * The codec's contract: any byte string either decodes into a valid
 * message or fails with kInvalidArgument (incomplete frame buffers:
 * kUnavailable) — never a crash, never an over-read, never a foreign
 * exception. The properties drive it from both sides: round-trip every
 * message and frame type through encode→decode and compare; then
 * attack every encoder's output with truncation, bit flips, bad
 * lengths, bad versions, and raw random bytes, asserting the failure
 * taxonomy holds case by case.
 *
 * Extended-depth runs (the pbt-extended CI leg) scale every property
 * through HENTT_PBT_CASES=xN like the other property suites.
 */

#include <gtest/gtest.h>

#include <vector>

#include "pbt.h"
#include "serve/wire.h"

namespace hentt::serve {
namespace {

// ------------------------------------------------------------ generators

WirePoly
RandomPoly(Xoshiro256 &rng)
{
    WirePoly poly;
    poly.degree = 1 + rng.NextBelow(16);
    poly.prime_count = 1 + static_cast<u32>(rng.NextBelow(4));
    poly.domain = static_cast<u8>(rng.NextBelow(2));
    poly.lazy = poly.domain == 1 ? static_cast<u8>(rng.NextBelow(2))
                                 : u8{0};
    poly.words.resize(poly.degree * poly.prime_count);
    for (u64 &w : poly.words) {
        w = rng.Next();
    }
    return poly;
}

WireCiphertext
RandomCiphertext(Xoshiro256 &rng)
{
    WireCiphertext ct;
    const std::size_t parts = 2 + rng.NextBelow(2);
    for (std::size_t i = 0; i < parts; ++i) {
        ct.parts.push_back(RandomPoly(rng));
    }
    return ct;
}

std::string
RandomString(Xoshiro256 &rng, std::size_t max_len)
{
    std::string s(rng.NextBelow(max_len + 1), '\0');
    for (char &c : s) {
        c = static_cast<char>('a' + rng.NextBelow(26));
    }
    return s;
}

bool
SamePoly(const WirePoly &x, const WirePoly &y)
{
    return x.degree == y.degree && x.prime_count == y.prime_count &&
           x.domain == y.domain && x.lazy == y.lazy &&
           x.words == y.words;
}

bool
SameCiphertext(const WireCiphertext &x, const WireCiphertext &y)
{
    if (x.parts.size() != y.parts.size()) {
        return false;
    }
    for (std::size_t i = 0; i < x.parts.size(); ++i) {
        if (!SamePoly(x.parts[i], y.parts[i])) {
            return false;
        }
    }
    return true;
}

// ----------------------------------------------------- message round trips

HENTT_PBT_PROP(ServeProtocol, ParamsRoundTrip, 200,
               (hentt::Xoshiro256 &rng, hentt::u64))
{
    WireParams params;
    params.degree = rng.NextBelow(kMaxDegree + 1);
    params.prime_count = rng.NextBelow(kMaxPrimeCount + 1);
    params.prime_bits = static_cast<u32>(rng.Next());
    params.plain_modulus = rng.Next();
    params.noise_stddev_bits = rng.Next();
    Result<WireParams> out = DecodeParams(EncodeParams(params));
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(out->degree, params.degree);
    EXPECT_EQ(out->prime_count, params.prime_count);
    EXPECT_EQ(out->prime_bits, params.prime_bits);
    EXPECT_EQ(out->plain_modulus, params.plain_modulus);
    EXPECT_EQ(out->noise_stddev_bits, params.noise_stddev_bits);
}

HENTT_PBT_PROP(ServeProtocol, PolyRoundTrip, 200,
               (hentt::Xoshiro256 &rng, hentt::u64))
{
    const WirePoly poly = RandomPoly(rng);
    Result<WirePoly> out = DecodePoly(EncodePoly(poly));
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_TRUE(SamePoly(*out, poly));
}

HENTT_PBT_PROP(ServeProtocol, CiphertextRoundTrip, 100,
               (hentt::Xoshiro256 &rng, hentt::u64))
{
    const WireCiphertext ct = RandomCiphertext(rng);
    Result<WireCiphertext> out = DecodeCiphertext(EncodeCiphertext(ct));
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_TRUE(SameCiphertext(*out, ct));
}

HENTT_PBT_PROP(ServeProtocol, RelinKeyRoundTrip, 50,
               (hentt::Xoshiro256 &rng, hentt::u64))
{
    WireRelinKey rk;
    const std::size_t levels = 1 + rng.NextBelow(3);
    for (std::size_t l = 1; l <= levels; ++l) {
        WireRelinKey::Level level;
        for (std::size_t d = 0; d < l; ++d) {
            level.b.push_back(RandomPoly(rng));
            level.a.push_back(RandomPoly(rng));
        }
        rk.levels.push_back(std::move(level));
    }
    Result<WireRelinKey> out = DecodeRelinKey(EncodeRelinKey(rk));
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    ASSERT_EQ(out->levels.size(), rk.levels.size());
    for (std::size_t l = 0; l < rk.levels.size(); ++l) {
        ASSERT_EQ(out->levels[l].b.size(), rk.levels[l].b.size());
        ASSERT_EQ(out->levels[l].a.size(), rk.levels[l].a.size());
        for (std::size_t d = 0; d < rk.levels[l].b.size(); ++d) {
            EXPECT_TRUE(
                SamePoly(out->levels[l].b[d], rk.levels[l].b[d]));
            EXPECT_TRUE(
                SamePoly(out->levels[l].a[d], rk.levels[l].a[d]));
        }
    }
}

HENTT_PBT_PROP(ServeProtocol, ProgramRoundTrip, 200,
               (hentt::Xoshiro256 &rng, hentt::u64))
{
    WireProgram program;
    const std::size_t inputs = 1 + rng.NextBelow(3);
    for (std::size_t i = 0; i < inputs; ++i) {
        program.inputs.push_back(RandomCiphertext(rng));
    }
    const std::size_t op_count = rng.NextBelow(6);
    for (std::size_t i = 0; i < op_count; ++i) {
        WireProgram::Op op;
        op.op = static_cast<WireOp>(rng.NextBelow(6));
        // Valid slot references only: earlier slots.
        const u32 limit = static_cast<u32>(inputs + i);
        op.a = static_cast<u32>(rng.NextBelow(limit));
        op.b = static_cast<u32>(rng.NextBelow(limit));
        program.ops.push_back(op);
    }
    const u32 slots = static_cast<u32>(inputs + op_count);
    program.outputs.push_back(static_cast<u32>(rng.NextBelow(slots)));
    Result<WireProgram> out = DecodeProgram(EncodeProgram(program));
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    ASSERT_EQ(out->inputs.size(), program.inputs.size());
    ASSERT_EQ(out->ops.size(), program.ops.size());
    for (std::size_t i = 0; i < program.ops.size(); ++i) {
        EXPECT_EQ(out->ops[i].op, program.ops[i].op);
        EXPECT_EQ(out->ops[i].a, program.ops[i].a);
        EXPECT_EQ(out->ops[i].b, program.ops[i].b);
    }
    EXPECT_EQ(out->outputs, program.outputs);
}

HENTT_PBT_PROP(ServeProtocol, StatusRoundTrip, 200,
               (hentt::Xoshiro256 &rng, hentt::u64))
{
    // A Status with random code, message, and provenance chain must
    // cross the wire intact — that is the error contract the daemon
    // relies on (the client sees the daemon's own provenance).
    const ErrorCode code = static_cast<ErrorCode>(
        1 + rng.NextBelow(static_cast<u64>(ErrorCode::kUnknown)));
    Status status(code, RandomString(rng, 40));
    const std::size_t frames = rng.NextBelow(4);
    for (std::size_t i = 0; i < frames; ++i) {
        status = status.WithFrame(RandomString(rng, 20));
    }
    Result<WireStatus> ws = DecodeStatus(EncodeStatus(status));
    ASSERT_TRUE(ws.ok()) << ws.status().ToString();
    const Status back = WireStatusToStatus(*ws);
    EXPECT_EQ(back.code(), status.code());
    EXPECT_EQ(back.message(), status.message());
    EXPECT_EQ(back.frames(), status.frames());
}

HENTT_PBT_PROP(ServeProtocol, StatsRoundTrip, 100,
               (hentt::Xoshiro256 &rng, hentt::u64))
{
    WireStats stats;
    stats.sessions_created = rng.Next();
    stats.sessions_active = rng.Next();
    stats.requests_submitted = rng.Next();
    stats.requests_completed = rng.Next();
    stats.requests_failed = rng.Next();
    stats.batches_executed = rng.Next();
    stats.coalesced_requests = rng.Next();
    stats.max_batch_observed = rng.Next();
    Result<WireStats> out = DecodeStats(EncodeStats(stats));
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(out->sessions_created, stats.sessions_created);
    EXPECT_EQ(out->sessions_active, stats.sessions_active);
    EXPECT_EQ(out->requests_submitted, stats.requests_submitted);
    EXPECT_EQ(out->requests_completed, stats.requests_completed);
    EXPECT_EQ(out->requests_failed, stats.requests_failed);
    EXPECT_EQ(out->batches_executed, stats.batches_executed);
    EXPECT_EQ(out->coalesced_requests, stats.coalesced_requests);
    EXPECT_EQ(out->max_batch_observed, stats.max_batch_observed);
}

// ------------------------------------------------------- frame round trips

HENTT_PBT_PROP(ServeProtocol, FrameRoundTripEveryType, 200,
               (hentt::Xoshiro256 &rng, hentt::u64 case_index))
{
    // Cycle through every known frame type with a random payload; the
    // frame codec is payload-agnostic, so any bytes must survive.
    Frame frame;
    frame.type = static_cast<FrameType>(
        1 + case_index % static_cast<u64>(FrameType::kStatsReply));
    frame.payload.resize(rng.NextBelow(64));
    for (u8 &b : frame.payload) {
        b = static_cast<u8>(rng.Next());
    }
    const std::vector<u8> bytes = EncodeFrame(frame);
    std::size_t consumed = 0;
    Result<Frame> out = DecodeFrameFromBuffer(bytes, consumed);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(out->version, frame.version);
    EXPECT_EQ(out->type, frame.type);
    EXPECT_EQ(out->payload, frame.payload);
}

HENTT_PBT_PROP(ServeProtocol, TruncatedFrameIsIncompleteNotFatal, 200,
               (hentt::Xoshiro256 &rng, hentt::u64))
{
    Frame frame;
    frame.type = FrameType::kPing;
    frame.payload.resize(1 + rng.NextBelow(64));
    for (u8 &b : frame.payload) {
        b = static_cast<u8>(rng.Next());
    }
    const std::vector<u8> bytes = EncodeFrame(frame);
    // Every strict prefix is "still in flight": kUnavailable, so a
    // stream reader waits for the rest instead of dropping the peer.
    const std::size_t cut = rng.NextBelow(bytes.size());
    const std::vector<u8> prefix(bytes.begin(), bytes.begin() + cut);
    std::size_t consumed = 0;
    Result<Frame> out = DecodeFrameFromBuffer(prefix, consumed);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), ErrorCode::kUnavailable);
}

TEST(ServeProtocol, OversizedFrameLengthRejected)
{
    // Header claiming a payload over the cap: must be invalid, not an
    // attempted 4 GiB allocation.
    std::vector<u8> bytes(6, 0);
    const u32 len = static_cast<u32>(kMaxFramePayload) + 1;
    bytes[0] = static_cast<u8>(len);
    bytes[1] = static_cast<u8>(len >> 8);
    bytes[2] = static_cast<u8>(len >> 16);
    bytes[3] = static_cast<u8>(len >> 24);
    bytes[4] = kProtocolVersion;
    bytes[5] = static_cast<u8>(FrameType::kPing);
    std::size_t consumed = 0;
    Result<Frame> out = DecodeFrameFromBuffer(bytes, consumed);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), ErrorCode::kInvalidArgument);
}

TEST(ServeProtocol, WrongVersionRejected)
{
    Frame frame;
    frame.type = FrameType::kPing;
    std::vector<u8> bytes = EncodeFrame(frame);
    bytes[4] = kProtocolVersion + 1;  // above what this build speaks
    std::size_t consumed = 0;
    Result<Frame> out = DecodeFrameFromBuffer(bytes, consumed);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), ErrorCode::kInvalidArgument);

    bytes[4] = 0;  // below the minimum
    Result<Frame> below = DecodeFrameFromBuffer(bytes, consumed);
    ASSERT_FALSE(below.ok());
    EXPECT_EQ(below.status().code(), ErrorCode::kInvalidArgument);
}

TEST(ServeProtocol, UnknownFrameTypeRejected)
{
    Frame frame;
    frame.type = FrameType::kPing;
    std::vector<u8> bytes = EncodeFrame(frame);
    bytes[5] = 0;  // no frame type 0
    std::size_t consumed = 0;
    Result<Frame> zero = DecodeFrameFromBuffer(bytes, consumed);
    ASSERT_FALSE(zero.ok());
    EXPECT_EQ(zero.status().code(), ErrorCode::kInvalidArgument);

    bytes[5] = static_cast<u8>(FrameType::kStatsReply) + 1;
    Result<Frame> high = DecodeFrameFromBuffer(bytes, consumed);
    ASSERT_FALSE(high.ok());
    EXPECT_EQ(high.status().code(), ErrorCode::kInvalidArgument);
}

// ------------------------------------------------------ adversarial bytes

HENTT_PBT_PROP(ServeProtocol, TruncatedPayloadsFailCleanly, 300,
               (hentt::Xoshiro256 &rng, hentt::u64 case_index))
{
    // Build one valid payload of each kind, cut it anywhere, and
    // require a clean kInvalidArgument from every decoder.
    std::vector<u8> payload;
    switch (case_index % 5) {
      case 0: {
        WireParams params;
        params.degree = 64;
        params.prime_count = 3;
        params.prime_bits = 50;
        params.plain_modulus = 257;
        payload = EncodeParams(params);
        break;
      }
      case 1:
        payload = EncodePoly(RandomPoly(rng));
        break;
      case 2:
        payload = EncodeCiphertext(RandomCiphertext(rng));
        break;
      case 3: {
        payload = EncodeStatus(
            Status(ErrorCode::kInternal, "boom").WithFrame("inner"));
        break;
      }
      default:
        payload = EncodeStats(WireStats{});
        break;
    }
    ASSERT_FALSE(payload.empty());
    const std::size_t cut = rng.NextBelow(payload.size());
    const std::vector<u8> prefix(payload.begin(),
                                 payload.begin() + cut);

    const auto check = [](const auto &result) {
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.status().code(),
                  ErrorCode::kInvalidArgument)
            << result.status().ToString();
    };
    switch (case_index % 5) {
      case 0:
        check(DecodeParams(prefix));
        break;
      case 1:
        check(DecodePoly(prefix));
        break;
      case 2:
        check(DecodeCiphertext(prefix));
        break;
      case 3:
        check(DecodeStatus(prefix));
        break;
      default:
        check(DecodeStats(prefix));
        break;
    }
}

HENTT_PBT_PROP(ServeProtocol, RandomBytesNeverCrashDecoders, 500,
               (hentt::Xoshiro256 &rng, hentt::u64 case_index))
{
    // Fully random payload bytes: every decoder must return ok or
    // kInvalidArgument — no crash, no foreign exception, no over-read
    // (ASan on the CI sanitizer leg turns an over-read into a failure
    // here).
    std::vector<u8> bytes(rng.NextBelow(128));
    for (u8 &b : bytes) {
        b = static_cast<u8>(rng.Next());
    }
    const auto check = [](const auto &result) {
        if (!result.ok()) {
            EXPECT_EQ(result.status().code(),
                      ErrorCode::kInvalidArgument)
                << result.status().ToString();
        }
    };
    switch (case_index % 8) {
      case 0:
        check(DecodeParams(bytes));
        break;
      case 1:
        check(DecodePoly(bytes));
        break;
      case 2:
        check(DecodeCiphertext(bytes));
        break;
      case 3:
        check(DecodeRelinKey(bytes));
        break;
      case 4:
        check(DecodeProgram(bytes));
        break;
      case 5:
        check(DecodeStatus(bytes));
        break;
      case 6:
        check(DecodeStats(bytes));
        break;
      default:
        check(DecodeCiphertextList(bytes));
        break;
    }
}

HENTT_PBT_PROP(ServeProtocol, MutatedProgramNeverCrashes, 300,
               (hentt::Xoshiro256 &rng, hentt::u64))
{
    // Structure-aware attack: take a valid program encoding and flip
    // bytes. The decoder may accept (the flip hit payload words) or
    // reject with kInvalidArgument (it hit a length, an opcode, or a
    // slot reference) — nothing else.
    WireProgram program;
    program.inputs.push_back(RandomCiphertext(rng));
    program.ops.push_back({WireOp::kMul, 0, 0});
    program.ops.push_back({WireOp::kRelin, 1, 0});
    program.outputs.push_back(2);
    std::vector<u8> bytes = EncodeProgram(program);
    const std::size_t flips = 1 + rng.NextBelow(4);
    for (std::size_t i = 0; i < flips; ++i) {
        bytes[rng.NextBelow(bytes.size())] ^=
            static_cast<u8>(1 + rng.NextBelow(255));
    }
    Result<WireProgram> out = DecodeProgram(bytes);
    if (!out.ok()) {
        EXPECT_EQ(out.status().code(), ErrorCode::kInvalidArgument)
            << out.status().ToString();
    }
}

TEST(ServeProtocol, ProgramRejectsForwardSlotReferences)
{
    // An op referencing its own or a later slot breaks the DAG
    // contract and must be rejected at decode time.
    WireProgram program;
    Xoshiro256 rng(3);
    program.inputs.push_back(RandomCiphertext(rng));
    program.ops.push_back({WireOp::kAdd, 1, 0});  // slot 1 = itself
    program.outputs.push_back(1);
    Result<WireProgram> out = DecodeProgram(EncodeProgram(program));
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), ErrorCode::kInvalidArgument);
}

TEST(ServeProtocol, TrailingGarbageRejected)
{
    std::vector<u8> payload = EncodeU64Payload(42);
    payload.push_back(0);
    Result<u64> out = DecodeU64Payload(payload);
    ASSERT_FALSE(out.ok());
    EXPECT_EQ(out.status().code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace hentt::serve
