/** Unit tests for common/random (xoshiro256**). */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace hentt {
namespace {

TEST(Xoshiro256, DeterministicForSeed)
{
    Xoshiro256 a(123), b(123), c(124);
    bool diverged = false;
    for (int i = 0; i < 100; ++i) {
        const u64 va = a.Next();
        EXPECT_EQ(va, b.Next());
        if (va != c.Next()) {
            diverged = true;
        }
    }
    EXPECT_TRUE(diverged);
}

TEST(Xoshiro256, NextBelowInRange)
{
    Xoshiro256 rng(7);
    for (u64 bound : {u64{1}, u64{2}, u64{17}, u64{1} << 40}) {
        for (int i = 0; i < 200; ++i) {
            EXPECT_LT(rng.NextBelow(bound), bound);
        }
    }
}

TEST(Xoshiro256, NextBelowRoughlyUniform)
{
    Xoshiro256 rng(99);
    constexpr int kBuckets = 16;
    constexpr int kSamples = 160000;
    int counts[kBuckets] = {};
    for (int i = 0; i < kSamples; ++i) {
        ++counts[rng.NextBelow(kBuckets)];
    }
    const double expect = static_cast<double>(kSamples) / kBuckets;
    for (int c : counts) {
        EXPECT_NEAR(c, expect, expect * 0.1);
    }
}

TEST(Xoshiro256, NextDoubleInUnitInterval)
{
    Xoshiro256 rng(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.NextDouble();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, GaussianMomentsPlausible)
{
    Xoshiro256 rng(31337);
    constexpr int kSamples = 50000;
    double sum = 0, sum_sq = 0;
    for (int i = 0; i < kSamples; ++i) {
        const double x = rng.NextGaussian();
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / kSamples;
    const double var = sum_sq / kSamples - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.03);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(SplitMix64, KnownSequence)
{
    // Reference values from the SplitMix64 reference implementation
    // with seed 0.
    u64 state = 0;
    EXPECT_EQ(SplitMix64(state), 0xE220A8397B1DCDAFULL);
    EXPECT_EQ(SplitMix64(state), 0x6E789E6AA1B965F4ULL);
    EXPECT_EQ(SplitMix64(state), 0x06C45D188009454FULL);
}

}  // namespace
}  // namespace hentt
