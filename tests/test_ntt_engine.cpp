/** Tests for the NttEngine facade. */

#include <gtest/gtest.h>

#include "common/primegen.h"
#include "common/random.h"
#include "ntt/ntt_engine.h"

namespace hentt {
namespace {

class EngineTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        n_ = 256;
        p_ = GenerateNttPrimes(2 * n_, 50, 1)[0];
        engine_ = std::make_unique<NttEngine>(n_, p_, /*ot_base=*/64);
    }

    std::vector<u64>
    Random(u64 seed) const
    {
        Xoshiro256 rng(seed);
        std::vector<u64> v(n_);
        for (u64 &x : v) {
            x = rng.NextBelow(p_);
        }
        return v;
    }

    std::size_t n_;
    u64 p_;
    std::unique_ptr<NttEngine> engine_;
};

TEST_F(EngineTest, AllCooleyTukeyAlgorithmsBitExact)
{
    const auto a = Random(1);
    std::vector<u64> reference = a;
    engine_->Forward(reference, NttAlgorithm::kRadix2);

    for (NttAlgorithm algo :
         {NttAlgorithm::kRadix2Native, NttAlgorithm::kRadix2Barrett,
          NttAlgorithm::kHighRadix, NttAlgorithm::kRadix2Ot}) {
        std::vector<u64> v = a;
        engine_->Forward(v, algo, /*radix=*/16, /*ot_stages=*/2);
        EXPECT_EQ(v, reference);
    }
}

TEST_F(EngineTest, RoundTripEveryAlgorithm)
{
    const auto a = Random(2);
    for (NttAlgorithm algo :
         {NttAlgorithm::kRadix2, NttAlgorithm::kHighRadix,
          NttAlgorithm::kRadix2Ot}) {
        std::vector<u64> v = a;
        engine_->Forward(v, algo);
        engine_->Inverse(v);
        EXPECT_EQ(v, a);
    }
}

TEST_F(EngineTest, MultiplyMatchesSchoolbookOnMonomials)
{
    // (X^i) * (X^j) = X^{i+j}, with sign flip past X^N (negacyclic).
    std::vector<u64> a(n_, 0), b(n_, 0);
    a[3] = 5;
    b[n_ - 2] = 7;
    const auto c = engine_->Multiply(a, b);
    // X^3 * X^{N-2} = X^{N+1} = -X^1.
    for (std::size_t i = 0; i < n_; ++i) {
        if (i == 1) {
            EXPECT_EQ(c[i], p_ - 35);
        } else {
            EXPECT_EQ(c[i], 0u);
        }
    }
}

TEST_F(EngineTest, HadamardRejectsWrongSizes)
{
    std::vector<u64> a(n_, 1), b(n_, 1), c(n_ / 2, 0);
    EXPECT_THROW(engine_->Hadamard(a, b, c), std::invalid_argument);
}

TEST_F(EngineTest, MultiplyByOneIsIdentity)
{
    const auto a = Random(3);
    std::vector<u64> one(n_, 0);
    one[0] = 1;
    EXPECT_EQ(engine_->Multiply(a, one), a);
}

}  // namespace
}  // namespace hentt
