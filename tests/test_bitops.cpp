/** Unit tests for common/bitops. */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/bitops.h"

namespace hentt {
namespace {

TEST(IsPowerOfTwo, Basic)
{
    EXPECT_FALSE(IsPowerOfTwo(0));
    EXPECT_TRUE(IsPowerOfTwo(1));
    EXPECT_TRUE(IsPowerOfTwo(2));
    EXPECT_FALSE(IsPowerOfTwo(3));
    EXPECT_TRUE(IsPowerOfTwo(u64{1} << 63));
    EXPECT_FALSE(IsPowerOfTwo((u64{1} << 63) + 1));
}

TEST(Log2Floor, Basic)
{
    EXPECT_EQ(Log2Floor(1), 0u);
    EXPECT_EQ(Log2Floor(2), 1u);
    EXPECT_EQ(Log2Floor(3), 1u);
    EXPECT_EQ(Log2Floor(1024), 10u);
    EXPECT_EQ(Log2Floor(u64{1} << 63), 63u);
}

TEST(BitReverse, Basic)
{
    EXPECT_EQ(BitReverse(0b0011, 4), 0b1100u);
    EXPECT_EQ(BitReverse(0b0001, 4), 0b1000u);
    EXPECT_EQ(BitReverse(0, 10), 0u);
    EXPECT_EQ(BitReverse(1, 1), 1u);
}

TEST(BitReverse, IsInvolution)
{
    for (unsigned bits = 1; bits <= 12; ++bits) {
        for (u64 x = 0; x < (u64{1} << bits); x += 17) {
            EXPECT_EQ(BitReverse(BitReverse(x, bits), bits), x);
        }
    }
}

TEST(BitReversePermute, IsInvolution)
{
    std::vector<int> data(64);
    std::iota(data.begin(), data.end(), 0);
    const std::vector<int> original = data;
    BitReversePermute(std::span<int>(data));
    EXPECT_NE(data, original);
    BitReversePermute(std::span<int>(data));
    EXPECT_EQ(data, original);
}

TEST(BitReversePermute, KnownSmallCase)
{
    std::vector<int> data = {0, 1, 2, 3, 4, 5, 6, 7};
    BitReversePermute(std::span<int>(data));
    const std::vector<int> expect = {0, 4, 2, 6, 1, 5, 3, 7};
    EXPECT_EQ(data, expect);
}

}  // namespace
}  // namespace hentt
