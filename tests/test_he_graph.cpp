/**
 * Tests for the ciphertext-level batched pipeline: HeOpGraph futures,
 * batched kernels, eval-domain relinearization keys (correctness at
 * every level of the modulus chain + NTT op-count budget).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>

#include "common/modarith.h"
#include "common/status.h"
#include "he/ciphertext_batch.h"
#include "he/he_graph.h"
#include "ntt/ntt_engine.h"

namespace hentt::he {
namespace {

HeParams
ChainParams()
{
    HeParams params;
    params.degree = 64;
    params.prime_count = 4;
    params.prime_bits = 50;
    params.plain_modulus = 257;
    return params;
}

class HeGraphTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ctx_ = std::make_shared<HeContext>(ChainParams());
        scheme_ = std::make_unique<BgvScheme>(ctx_, /*seed=*/7);
        sk_.emplace(scheme_->KeyGen());
        rk_.emplace(scheme_->MakeRelinKey(*sk_));
    }

    Plaintext
    RandomPlain(u64 seed) const
    {
        Xoshiro256 rng(seed);
        Plaintext m(ctx_->degree());
        for (u64 &x : m) {
            x = rng.NextBelow(ctx_->params().plain_modulus);
        }
        return m;
    }

    /** Negacyclic product of plaintexts mod t (the oracle). */
    Plaintext
    PlainMul(const Plaintext &a, const Plaintext &b) const
    {
        const u64 t = ctx_->params().plain_modulus;
        const std::size_t n = ctx_->degree();
        Plaintext c(n, 0);
        for (std::size_t k = 0; k < n; ++k) {
            u64 acc = 0;
            for (std::size_t i = 0; i <= k; ++i) {
                acc = AddMod(acc, MulModNative(a[i], b[k - i], t), t);
            }
            for (std::size_t i = k + 1; i < n; ++i) {
                acc = SubMod(acc, MulModNative(a[i], b[n + k - i], t), t);
            }
            c[k] = acc;
        }
        return c;
    }

    std::shared_ptr<HeContext> ctx_;
    std::unique_ptr<BgvScheme> scheme_;
    std::optional<SecretKey> sk_;
    std::optional<RelinKey> rk_;
};

// ---------------------------------------------------------------------
// Eval-domain relinearization keys
// ---------------------------------------------------------------------

TEST_F(HeGraphTest, RelinKeyCoversEveryLevelInEvalDomain)
{
    ASSERT_EQ(rk_->levels.size(), 4u);
    for (std::size_t level = 1; level <= 4; ++level) {
        const auto &keys = rk_->at_level(level);
        ASSERT_EQ(keys.b.size(), level);
        ASSERT_EQ(keys.a.size(), level);
        for (std::size_t j = 0; j < level; ++j) {
            EXPECT_EQ(keys.b[j].domain(), RnsPoly::Domain::kEvaluation);
            EXPECT_EQ(keys.a[j].domain(), RnsPoly::Domain::kEvaluation);
            EXPECT_EQ(keys.b[j].prime_count(), level);
        }
    }
}

TEST_F(HeGraphTest, RelinearizeForwardNttBudgetIsNpSquared)
{
    // Eval-domain keys: the only forward transforms in a Relinearize
    // are the np digit lifts — np^2 single-row NTTs, against the
    // 4*np^2 the coefficient-domain-key formulation pays (keys and
    // digits re-transformed per gadget product) — plus the 2*np rows
    // of the accumulator inverse pair.
    const std::size_t np = 4;
    const Ciphertext prod = scheme_->Mul(
        scheme_->Encrypt(*sk_, RandomPlain(1)),
        scheme_->Encrypt(*sk_, RandomPlain(2)));
    ResetNttOpCounts();
    const Ciphertext relin = scheme_->Relinearize(prod, *rk_);
    const NttOpCounts counts = GetNttOpCounts();
    EXPECT_EQ(counts.forward, np * np);
    EXPECT_LT(counts.forward, 4 * np * np);  // the old budget
    EXPECT_EQ(counts.inverse, 2 * np);
    EXPECT_EQ(relin.degree(), 1u);
}

TEST_F(HeGraphTest, MulForwardNttBudgetIsFourTimesNp)
{
    const std::size_t np = 4;
    const Ciphertext a = scheme_->Encrypt(*sk_, RandomPlain(3));
    const Ciphertext b = scheme_->Encrypt(*sk_, RandomPlain(4));
    ResetNttOpCounts();
    const Ciphertext prod = scheme_->Mul(a, b);
    const NttOpCounts counts = GetNttOpCounts();
    EXPECT_EQ(counts.forward, 4 * np);  // one per input part x limb
    EXPECT_EQ(counts.inverse, 3 * np);  // one per result part x limb
    EXPECT_EQ(prod.degree(), 2u);
}

TEST_F(HeGraphTest, MulRelinDecryptsAtEveryLevel)
{
    // The satellite acceptance test: Mul + Relinearize round-trips at
    // every level of the modulus chain, with per-level keys.
    const Plaintext ma = RandomPlain(5);
    const Plaintext mb = RandomPlain(6);
    const Plaintext expect = PlainMul(ma, mb);
    for (std::size_t drops = 0; drops + 2 <= 4; ++drops) {
        Ciphertext a = scheme_->Encrypt(*sk_, ma);
        Ciphertext b = scheme_->Encrypt(*sk_, mb);
        for (std::size_t d = 0; d < drops; ++d) {
            a = scheme_->ModSwitch(a);
            b = scheme_->ModSwitch(b);
        }
        ASSERT_EQ(BgvScheme::Level(a), 4 - drops);
        const Ciphertext relin =
            scheme_->Relinearize(scheme_->Mul(a, b), *rk_);
        EXPECT_EQ(BgvScheme::Level(relin), 4 - drops);
        EXPECT_EQ(scheme_->Decrypt(*sk_, relin), expect)
            << "level " << (4 - drops);
    }
}

TEST_F(HeGraphTest, MulRelinModSwitchChainTracksNoise)
{
    // Two multiplicative levels: Mul+Relin at level 4, switch, Mul+Relin
    // against a fresh (switched) operand at level 3, switch again. The
    // plaintext survives and the noise budget shrinks monotonically but
    // stays positive throughout.
    const Plaintext ma = RandomPlain(7);
    const Plaintext mb = RandomPlain(8);
    const Plaintext mc = RandomPlain(9);

    Ciphertext acc = scheme_->Relinearize(
        scheme_->Mul(scheme_->Encrypt(*sk_, ma),
                     scheme_->Encrypt(*sk_, mb)),
        *rk_);
    const double budget_l4 = scheme_->NoiseBudgetBits(*sk_, acc);
    acc = scheme_->ModSwitch(acc);

    Ciphertext c = scheme_->ModSwitch(scheme_->Encrypt(*sk_, mc));
    acc = scheme_->Relinearize(scheme_->Mul(acc, c), *rk_);
    const double budget_l3 = scheme_->NoiseBudgetBits(*sk_, acc);
    acc = scheme_->ModSwitch(acc);
    const double budget_l2 = scheme_->NoiseBudgetBits(*sk_, acc);

    EXPECT_GT(budget_l4, 0.0);
    EXPECT_GT(budget_l3, 0.0);
    EXPECT_GT(budget_l2, 0.0);
    EXPECT_LT(budget_l3, budget_l4);

    EXPECT_EQ(BgvScheme::Level(acc), 2u);
    EXPECT_EQ(scheme_->Decrypt(*sk_, acc),
              PlainMul(PlainMul(ma, mb), mc));
}

// ---------------------------------------------------------------------
// Batched kernels
// ---------------------------------------------------------------------

TEST_F(HeGraphTest, BatchMulMatchesScalarMul)
{
    const Ciphertext a0 = scheme_->Encrypt(*sk_, RandomPlain(10));
    const Ciphertext b0 = scheme_->Encrypt(*sk_, RandomPlain(11));
    const Ciphertext a1 = scheme_->Encrypt(*sk_, RandomPlain(12));
    const Ciphertext b1 = scheme_->Encrypt(*sk_, RandomPlain(13));

    Ciphertext out0, out1;
    const Ciphertext *lhs[] = {&a0, &a1};
    const Ciphertext *rhs[] = {&b0, &b1};
    Ciphertext *dst[] = {&out0, &out1};
    BatchMul(*ctx_, lhs, rhs, dst);

    const Ciphertext ref0 = scheme_->Mul(a0, b0);
    const Ciphertext ref1 = scheme_->Mul(a1, b1);
    ASSERT_EQ(out0.parts.size(), 3u);
    for (std::size_t j = 0; j < 3; ++j) {
        for (std::size_t l = 0; l < 4; ++l) {
            EXPECT_TRUE(std::ranges::equal(out0.parts[j].row(l),
                                           ref0.parts[j].row(l)));
            EXPECT_TRUE(std::ranges::equal(out1.parts[j].row(l),
                                           ref1.parts[j].row(l)));
        }
    }
}

TEST_F(HeGraphTest, BatchRelinearizeMixedLevels)
{
    // One batch holding ciphertexts at different levels of the chain:
    // each decomposes against its own level's keys.
    const Plaintext ma = RandomPlain(14);
    const Plaintext mb = RandomPlain(15);
    const Ciphertext top =
        scheme_->Mul(scheme_->Encrypt(*sk_, ma),
                     scheme_->Encrypt(*sk_, mb));
    const Ciphertext low = scheme_->Mul(
        scheme_->ModSwitch(scheme_->Encrypt(*sk_, ma)),
        scheme_->ModSwitch(scheme_->Encrypt(*sk_, mb)));

    Ciphertext out_top, out_low;
    const Ciphertext *src[] = {&top, &low};
    Ciphertext *dst[] = {&out_top, &out_low};
    BatchRelinearize(*ctx_, *rk_, src, dst);

    const Plaintext expect = PlainMul(ma, mb);
    EXPECT_EQ(BgvScheme::Level(out_top), 4u);
    EXPECT_EQ(BgvScheme::Level(out_low), 3u);
    EXPECT_EQ(scheme_->Decrypt(*sk_, out_top), expect);
    EXPECT_EQ(scheme_->Decrypt(*sk_, out_low), expect);
}

TEST_F(HeGraphTest, BatchMulSharedOperandTransformsOnce)
{
    // x feeds both products: interning by part address must transform
    // its parts once (6 distinct parts -> 6 forward rows x np), and the
    // results must match the scalar path.
    const std::size_t np = 4;
    const Ciphertext x = scheme_->Encrypt(*sk_, RandomPlain(40));
    const Ciphertext y = scheme_->Encrypt(*sk_, RandomPlain(41));
    const Ciphertext z = scheme_->Encrypt(*sk_, RandomPlain(42));

    Ciphertext xy, xz;
    const Ciphertext *lhs[] = {&x, &x};
    const Ciphertext *rhs[] = {&y, &z};
    Ciphertext *dst[] = {&xy, &xz};
    ResetNttOpCounts();
    BatchMul(*ctx_, lhs, rhs, dst);
    const NttOpCounts counts = GetNttOpCounts();
    EXPECT_EQ(counts.forward, 6 * np);  // not 8*np: x shared
    EXPECT_EQ(counts.inverse, 6 * np);  // 2 products x 3 parts

    const Ciphertext ref_xy = scheme_->Mul(x, y);
    const Ciphertext ref_xz = scheme_->Mul(x, z);
    for (std::size_t j = 0; j < 3; ++j) {
        for (std::size_t l = 0; l < np; ++l) {
            EXPECT_TRUE(std::ranges::equal(xy.parts[j].row(l),
                                           ref_xy.parts[j].row(l)));
            EXPECT_TRUE(std::ranges::equal(xz.parts[j].row(l),
                                           ref_xz.parts[j].row(l)));
        }
    }
}

TEST_F(HeGraphTest, BatchKernelRejectsMismatchedSpans)
{
    const Ciphertext a = scheme_->Encrypt(*sk_, RandomPlain(16));
    const Ciphertext b = scheme_->Encrypt(*sk_, RandomPlain(17));
    Ciphertext out0, out1;
    const Ciphertext *lhs[] = {&a};
    const Ciphertext *rhs[] = {&b};
    Ciphertext *two[] = {&out0, &out1};
    EXPECT_THROW(BatchMul(*ctx_, lhs, rhs, two), std::invalid_argument);
}

// ---------------------------------------------------------------------
// HeOpGraph futures + wavefront execution
// ---------------------------------------------------------------------

TEST_F(HeGraphTest, GraphMatchesScalarPipeline)
{
    const Plaintext ma = RandomPlain(18);
    const Plaintext mb = RandomPlain(19);
    const Plaintext mc = RandomPlain(20);

    HeOpGraph graph(*scheme_, &*rk_);
    const CtFuture x = graph.Input(scheme_->Encrypt(*sk_, ma));
    const CtFuture y = graph.Input(scheme_->Encrypt(*sk_, mb));
    const CtFuture z = graph.Input(scheme_->Encrypt(*sk_, mc));

    // Two independent MulRelins land in the same wavefront and batch.
    const CtFuture xy = graph.MulRelin(x, y);
    const CtFuture zz = graph.MulRelin(z, z);
    const CtFuture sum = graph.Add(xy, zz);

    EXPECT_FALSE(sum.ready());
    EXPECT_GT(graph.pending(), 0u);
    const Ciphertext &result = sum.get();  // forces Execute
    EXPECT_TRUE(sum.ready());
    EXPECT_TRUE(xy.ready());  // same run computed the whole graph
    EXPECT_EQ(graph.pending(), 0u);

    const u64 t = ctx_->params().plain_modulus;
    const Plaintext p_xy = PlainMul(ma, mb);
    const Plaintext p_zz = PlainMul(mc, mc);
    const Plaintext dec = scheme_->Decrypt(*sk_, result);
    for (std::size_t i = 0; i < dec.size(); ++i) {
        EXPECT_EQ(dec[i], AddMod(p_xy[i], p_zz[i], t));
    }
}

TEST_F(HeGraphTest, DiamondGraphWithModSwitch)
{
    const Plaintext ma = RandomPlain(21);
    const Plaintext mb = RandomPlain(22);

    HeOpGraph graph(*scheme_, &*rk_);
    const CtFuture x = graph.Input(scheme_->Encrypt(*sk_, ma));
    const CtFuture y = graph.Input(scheme_->Encrypt(*sk_, mb));
    const CtFuture s = graph.Add(x, y);
    const CtFuture d = graph.Sub(x, y);
    // (x + y) * (x - y), relinearized, then down one level.
    const CtFuture prod = graph.MulRelin(s, d);
    const CtFuture low = graph.ModSwitch(prod);
    graph.Execute();
    EXPECT_TRUE(low.ready());

    const u64 t = ctx_->params().plain_modulus;
    Plaintext sum(ctx_->degree()), diff(ctx_->degree());
    for (std::size_t i = 0; i < sum.size(); ++i) {
        sum[i] = AddMod(ma[i], mb[i], t);
        diff[i] = SubMod(ma[i], mb[i], t);
    }
    EXPECT_EQ(BgvScheme::Level(low.get()), 3u);
    EXPECT_EQ(scheme_->Decrypt(*sk_, low.get()), PlainMul(sum, diff));
}

TEST_F(HeGraphTest, GraphKeepsGrowingAfterExecute)
{
    const Plaintext ma = RandomPlain(23);
    HeOpGraph graph(*scheme_, &*rk_);
    const CtFuture x = graph.Input(scheme_->Encrypt(*sk_, ma));
    const CtFuture sq = graph.MulRelin(x, x);
    graph.Execute();
    EXPECT_TRUE(sq.ready());
    // Appending to an already-run graph re-runs only the new nodes.
    const CtFuture low = graph.ModSwitch(sq);
    EXPECT_FALSE(low.ready());
    EXPECT_EQ(scheme_->Decrypt(*sk_, low.get()), PlainMul(ma, ma));
}

TEST_F(HeGraphTest, GraphApiMisuseThrows)
{
    HeOpGraph graph(*scheme_, &*rk_);
    HeOpGraph other(*scheme_, &*rk_);
    const CtFuture x =
        graph.Input(scheme_->Encrypt(*sk_, RandomPlain(24)));
    const CtFuture foreign =
        other.Input(scheme_->Encrypt(*sk_, RandomPlain(25)));
    EXPECT_THROW(graph.Add(x, foreign), std::invalid_argument);
    EXPECT_THROW(graph.Add(x, CtFuture{}), std::invalid_argument);
    EXPECT_THROW(CtFuture{}.get(), std::logic_error);

    // Relinearize without keys only fails at execution time.
    HeOpGraph keyless(*scheme_, nullptr);
    const CtFuture a =
        keyless.Input(scheme_->Encrypt(*sk_, RandomPlain(26)));
    const CtFuture bad = keyless.MulRelin(a, a);
    EXPECT_THROW(keyless.Execute(), std::logic_error);
    (void)bad;
}

// ---------------------------------------------------------------------
// Scheduler auto-fusion: Relinearize -> ModSwitch collapses to the
// fused kernel when the Relinearize has no other consumer
// ---------------------------------------------------------------------

TEST_F(HeGraphTest, AutoFusesRelinIntoModSwitch)
{
    const Plaintext ma = RandomPlain(61);
    const Plaintext mb = RandomPlain(62);
    const Ciphertext a = scheme_->Encrypt(*sk_, ma);
    const Ciphertext b = scheme_->Encrypt(*sk_, mb);

    // Unfused chain spelled out node by node...
    HeOpGraph chained(*scheme_, &*rk_);
    const CtFuture chained_out = chained.ModSwitch(
        chained.Relinearize(chained.Mul(chained.Input(a),
                                        chained.Input(b))));
    ResetNttOpCounts();
    chained.Execute();
    const NttOpCounts auto_fused = GetNttOpCounts();

    // ...must execute with exactly the op budget of the explicit fused
    // node: the standalone fold/alpha sweeps between the ops vanish.
    HeOpGraph fused(*scheme_, &*rk_);
    const CtFuture fused_out =
        fused.MulRelinModSwitch(fused.Input(a), fused.Input(b));
    ResetNttOpCounts();
    fused.Execute();
    const NttOpCounts explicit_fused = GetNttOpCounts();

    EXPECT_EQ(auto_fused.forward, explicit_fused.forward);
    EXPECT_EQ(auto_fused.inverse, explicit_fused.inverse);
    EXPECT_EQ(auto_fused.elementwise, explicit_fused.elementwise);

    // Same bits out, and nothing left pending (the bypassed
    // Relinearize node does not count as schedulable work).
    ASSERT_EQ(chained_out.get().parts.size(),
              fused_out.get().parts.size());
    for (std::size_t j = 0; j < 2; ++j) {
        for (std::size_t l = 0;
             l < chained_out.get().parts[j].prime_count(); ++l) {
            EXPECT_TRUE(
                std::ranges::equal(chained_out.get().parts[j].row(l),
                                   fused_out.get().parts[j].row(l)));
        }
    }
    EXPECT_EQ(chained.pending(), 0u);
    EXPECT_EQ(scheme_->Decrypt(*sk_, chained_out.get()),
              PlainMul(ma, mb));
}

TEST_F(HeGraphTest, AutoFusionSkipsRelinWithOtherConsumers)
{
    const Ciphertext a = scheme_->Encrypt(*sk_, RandomPlain(63));
    const Ciphertext b = scheme_->Encrypt(*sk_, RandomPlain(64));

    // The Relinearize result also feeds an Add, so it must be
    // materialised — no fusion, same counts as the spelled-out chain.
    HeOpGraph graph(*scheme_, &*rk_);
    const CtFuture relin =
        graph.Relinearize(graph.Mul(graph.Input(a), graph.Input(b)));
    const CtFuture switched = graph.ModSwitch(relin);
    const CtFuture kept = graph.Add(relin, relin);
    graph.Execute();
    EXPECT_EQ(graph.pending(), 0u);

    const Ciphertext ref = scheme_->ModSwitch(
        scheme_->Relinearize(scheme_->Mul(a, b), *rk_));
    for (std::size_t j = 0; j < 2; ++j) {
        for (std::size_t l = 0;
             l < switched.get().parts[j].prime_count(); ++l) {
            EXPECT_TRUE(std::ranges::equal(switched.get().parts[j].row(l),
                                           ref.parts[j].row(l)));
        }
    }
    (void)kept;
}

TEST_F(HeGraphTest, BypassedRelinRevivesForLateConsumers)
{
    // A consumer enqueued AFTER the fusion pass bypassed the relin
    // node must bring it back into the schedule instead of executing
    // on an empty value.
    const Plaintext ma = RandomPlain(71);
    const Plaintext mb = RandomPlain(72);
    const Ciphertext a = scheme_->Encrypt(*sk_, ma);
    const Ciphertext b = scheme_->Encrypt(*sk_, mb);

    HeOpGraph graph(*scheme_, &*rk_);
    const CtFuture relin =
        graph.Relinearize(graph.Mul(graph.Input(a), graph.Input(b)));
    const CtFuture sw1 = graph.ModSwitch(relin);
    (void)sw1.get();  // fuses; relin is bypassed

    const Ciphertext ref = scheme_->Relinearize(scheme_->Mul(a, b), *rk_);

    // A second lone ModSwitch may re-fuse — the value must still be
    // right.
    const CtFuture sw2 = graph.ModSwitch(relin);
    EXPECT_EQ(BgvScheme::Level(sw2.get()), BgvScheme::Level(ref) - 1);
    for (std::size_t j = 0; j < 2; ++j) {
        for (std::size_t l = 0;
             l < sw2.get().parts[j].prime_count(); ++l) {
            EXPECT_TRUE(std::ranges::equal(sw2.get().parts[j].row(l),
                                           sw1.get().parts[j].row(l)));
        }
    }

    // An Add consumer forces materialisation of the bypassed node.
    const CtFuture doubled = graph.Add(relin, relin);
    const Ciphertext &sum = doubled.get();
    ASSERT_EQ(sum.parts.size(), ref.parts.size());
    for (std::size_t j = 0; j < 2; ++j) {
        const RnsBasis &basis = ref.parts[j].context().basis();
        for (std::size_t l = 0; l < ref.parts[j].prime_count(); ++l) {
            for (std::size_t k = 0; k < ref.parts[j].degree(); ++k) {
                EXPECT_EQ(sum.parts[j].row(l)[k],
                          AddMod(ref.parts[j].row(l)[k],
                                 ref.parts[j].row(l)[k],
                                 basis.prime(l)));
            }
        }
    }
}

TEST_F(HeGraphTest, DemandedRelinIsNeverBypassed)
{
    // get() on the intermediate BEFORE any Execute: the fusion pass of
    // the Execute that get() itself triggers must not bypass the
    // demanded node (it would return an empty ciphertext otherwise).
    const Plaintext ma = RandomPlain(67);
    const Plaintext mb = RandomPlain(68);
    const Ciphertext a = scheme_->Encrypt(*sk_, ma);
    const Ciphertext b = scheme_->Encrypt(*sk_, mb);

    HeOpGraph graph(*scheme_, &*rk_);
    const CtFuture relin =
        graph.Relinearize(graph.Mul(graph.Input(a), graph.Input(b)));
    const CtFuture switched = graph.ModSwitch(relin);

    const Ciphertext ref = scheme_->Relinearize(scheme_->Mul(a, b), *rk_);
    const Ciphertext &got = relin.get();  // first execution trigger
    ASSERT_EQ(got.parts.size(), ref.parts.size());
    for (std::size_t j = 0; j < 2; ++j) {
        for (std::size_t l = 0; l < got.parts[j].prime_count(); ++l) {
            EXPECT_TRUE(std::ranges::equal(got.parts[j].row(l),
                                           ref.parts[j].row(l)));
        }
    }
    // The downstream ModSwitch still computes correctly (unfused,
    // since its operand was materialised).
    EXPECT_EQ(BgvScheme::Level(switched.get()),
              BgvScheme::Level(ref) - 1);
}

TEST_F(HeGraphTest, BypassedRelinMaterialisesOnDemand)
{
    const Plaintext ma = RandomPlain(65);
    const Plaintext mb = RandomPlain(66);
    const Ciphertext a = scheme_->Encrypt(*sk_, ma);
    const Ciphertext b = scheme_->Encrypt(*sk_, mb);

    HeOpGraph graph(*scheme_, &*rk_);
    const CtFuture relin =
        graph.Relinearize(graph.Mul(graph.Input(a), graph.Input(b)));
    const CtFuture switched = graph.ModSwitch(relin);
    (void)switched.get();  // executes the fused node; relin bypassed
    EXPECT_FALSE(relin.ready());

    // Demanding the intermediate brings it back as a standalone op.
    const Ciphertext ref = scheme_->Relinearize(scheme_->Mul(a, b), *rk_);
    const Ciphertext &materialised = relin.get();
    ASSERT_EQ(materialised.parts.size(), ref.parts.size());
    for (std::size_t j = 0; j < 2; ++j) {
        for (std::size_t l = 0;
             l < materialised.parts[j].prime_count(); ++l) {
            EXPECT_TRUE(std::ranges::equal(materialised.parts[j].row(l),
                                           ref.parts[j].row(l)));
        }
    }
}

// ---------------------------------------------------------------------
// Failure containment: a failed node poisons exactly its dependents
// ---------------------------------------------------------------------

TEST_F(HeGraphTest, FailedNodePoisonsOnlyItsDependents)
{
    const Ciphertext ca = scheme_->Encrypt(*sk_, RandomPlain(80));
    const Ciphertext cb = scheme_->Encrypt(*sk_, RandomPlain(81));

    HeOpGraph graph(*scheme_, &*rk_);
    const CtFuture x = graph.Input(ca);
    const CtFuture y = graph.Input(cb);
    const CtFuture m = graph.Mul(x, y);
    // Adding a degree-2 product to a degree-1 fresh ciphertext is a
    // kernel-level failure that only surfaces at execution time.
    const CtFuture bad = graph.Add(m, x);
    const CtFuture poisoned = graph.ModSwitch(bad);
    // Independent consumer of the same healthy operand.
    const CtFuture good = graph.Relinearize(m);

    // Containment: Execute() settles the failure instead of unwinding.
    EXPECT_NO_THROW(graph.Execute());
    EXPECT_EQ(graph.pending(), 0u);

    // The untainted chain completed, bit-identical to the scalar path.
    ASSERT_TRUE(good.ready());
    const Ciphertext ref =
        scheme_->Relinearize(scheme_->Mul(ca, cb), *rk_);
    for (std::size_t j = 0; j < 2; ++j) {
        for (std::size_t l = 0; l < good.get().parts[j].prime_count();
             ++l) {
            EXPECT_TRUE(std::ranges::equal(good.get().parts[j].row(l),
                                           ref.parts[j].row(l)));
        }
    }

    // The failing node carries the kernel's Status with provenance.
    const Status bad_status = bad.status();
    EXPECT_EQ(bad_status.code(), ErrorCode::kInvalidArgument);
    EXPECT_NE(bad_status.message().find("degrees differ"),
              std::string::npos);
    bool named = false;
    for (const std::string &frame : bad_status.frames()) {
        named = named || frame.find("(Add)") != std::string::npos;
    }
    EXPECT_TRUE(named) << bad_status.ToString();

    // Its dependent is poisoned, naming the origin node and kind.
    const Status poison = poisoned.status();
    EXPECT_EQ(poison.code(), ErrorCode::kPoisoned);
    EXPECT_NE(poison.message().find("operand node"), std::string::npos);
    EXPECT_NE(poison.message().find("(Add)"), std::string::npos);

    // get() on a failed node throws through the bridge, with the
    // demanding future named in the provenance chain.
    try {
        (void)bad.get();
        FAIL() << "did not throw";
    } catch (const std::invalid_argument &e) {
        const auto *carrier = dynamic_cast<const StatusCarrier *>(&e);
        ASSERT_NE(carrier, nullptr);
        ASSERT_FALSE(carrier->status().frames().empty());
        EXPECT_NE(carrier->status().frames().back().find("CtFuture::get"),
                  std::string::npos);
    }

    // TryGet surfaces the same failure without throwing.
    const Result<const Ciphertext *> try_bad = poisoned.TryGet();
    ASSERT_FALSE(try_bad.ok());
    EXPECT_EQ(try_bad.status().code(), ErrorCode::kPoisoned);
    const Result<const Ciphertext *> try_good = good.TryGet();
    ASSERT_TRUE(try_good.ok());
    EXPECT_EQ((*try_good)->parts.size(), 2u);

    // ExecuteStatus aggregates BOTH settled failures, not just one.
    const Status aggregate = graph.ExecuteStatus();
    EXPECT_EQ(aggregate.code(), ErrorCode::kInvalidArgument);
    EXPECT_NE(aggregate.message().find("2 tasks failed"),
              std::string::npos);
}

TEST_F(HeGraphTest, BatchOfOneRetryIsolatesTheFailingMember)
{
    // Two Add nodes share one wavefront batch; one member is invalid.
    // The batch kernel rejects the whole call, so the scheduler must
    // retry member-by-member: the healthy node completes bit-identically
    // and only the bad one settles with an error.
    const Ciphertext ca = scheme_->Encrypt(*sk_, RandomPlain(82));
    const Ciphertext cb = scheme_->Encrypt(*sk_, RandomPlain(83));
    const Ciphertext prod = scheme_->Mul(ca, cb);  // degree 2

    HeOpGraph graph(*scheme_, &*rk_);
    const CtFuture p = graph.Input(prod);
    const CtFuture fa = graph.Input(ca);
    const CtFuture fb = graph.Input(cb);
    const CtFuture bad = graph.Add(p, fa);   // degree mismatch
    const CtFuture good = graph.Add(fa, fb); // same depth, same kind

    EXPECT_NO_THROW(graph.Execute());
    ASSERT_TRUE(good.ready());
    EXPECT_TRUE(good.status().ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::kInvalidArgument);
    bool from_kernel = false;
    for (const std::string &frame : bad.status().frames()) {
        from_kernel =
            from_kernel || frame.find("BatchAdd") != std::string::npos;
    }
    EXPECT_TRUE(from_kernel) << bad.status().ToString();

    const Ciphertext ref = scheme_->Add(ca, cb);
    for (std::size_t j = 0; j < 2; ++j) {
        for (std::size_t l = 0; l < good.get().parts[j].prime_count();
             ++l) {
            EXPECT_TRUE(std::ranges::equal(good.get().parts[j].row(l),
                                           ref.parts[j].row(l)));
        }
    }
}

TEST_F(HeGraphTest, FutureStatusReportsUnavailableUntilExecuted)
{
    const CtFuture empty;
    EXPECT_EQ(empty.status().code(), ErrorCode::kUnavailable);
    const Result<const Ciphertext *> try_empty = empty.TryGet();
    ASSERT_FALSE(try_empty.ok());
    EXPECT_EQ(try_empty.status().code(), ErrorCode::kFailedPrecondition);

    HeOpGraph graph(*scheme_, &*rk_);
    const CtFuture x = graph.Input(scheme_->Encrypt(*sk_, RandomPlain(84)));
    const CtFuture s = graph.Add(x, x);
    EXPECT_EQ(s.status().code(), ErrorCode::kUnavailable);
    graph.Execute();
    EXPECT_TRUE(s.status().ok());
}

}  // namespace
}  // namespace hentt::he
