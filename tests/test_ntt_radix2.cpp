/** Tests for the radix-2 Cooley-Tukey NTT / Gentleman-Sande iNTT pair. */

#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/modarith.h"
#include "common/primegen.h"
#include "common/random.h"
#include "ntt/ntt_naive.h"
#include "ntt/ntt_radix2.h"

namespace hentt {
namespace {

std::vector<u64>
RandomVector(std::size_t n, u64 p, u64 seed)
{
    Xoshiro256 rng(seed);
    std::vector<u64> v(n);
    for (u64 &x : v) {
        x = rng.NextBelow(p);
    }
    return v;
}

class Radix2Test
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>>
{
  protected:
    void
    SetUp() override
    {
        n_ = std::get<0>(GetParam());
        const unsigned bits = std::get<1>(GetParam());
        p_ = GenerateNttPrimes(2 * n_, bits, 1)[0];
        table_ = std::make_unique<TwiddleTable>(n_, p_);
    }

    std::size_t n_;
    u64 p_;
    std::unique_ptr<TwiddleTable> table_;
};

TEST_P(Radix2Test, MatchesNaiveOracleUpToBitReversal)
{
    const auto a = RandomVector(n_, p_, 1);
    const auto expect = NaiveNegacyclicNtt(a, table_->psi(), p_);

    std::vector<u64> got = a;
    NttRadix2(got, *table_);
    const unsigned bits = Log2Exact(n_);
    for (std::size_t i = 0; i < n_; ++i) {
        EXPECT_EQ(got[i], expect[BitReverse(i, bits)]) << "slot " << i;
    }
}

TEST_P(Radix2Test, InverseComposesToIdentity)
{
    const auto a = RandomVector(n_, p_, 2);
    std::vector<u64> v = a;
    NttRadix2(v, *table_);
    InttRadix2(v, *table_);
    EXPECT_EQ(v, a);
}

TEST_P(Radix2Test, NativeAndBarrettVariantsBitExact)
{
    const auto a = RandomVector(n_, p_, 3);
    std::vector<u64> shoup = a, native = a, barrett = a;
    NttRadix2(shoup, *table_);
    NttRadix2Native(native, *table_);
    NttRadix2Barrett(barrett, *table_);
    EXPECT_EQ(shoup, native);
    EXPECT_EQ(shoup, barrett);
}

TEST_P(Radix2Test, Linearity)
{
    const auto a = RandomVector(n_, p_, 4);
    const auto b = RandomVector(n_, p_, 5);
    std::vector<u64> sum(n_);
    for (std::size_t i = 0; i < n_; ++i) {
        sum[i] = AddMod(a[i], b[i], p_);
    }
    std::vector<u64> fa = a, fb = b, fsum = sum;
    NttRadix2(fa, *table_);
    NttRadix2(fb, *table_);
    NttRadix2(fsum, *table_);
    for (std::size_t i = 0; i < n_; ++i) {
        EXPECT_EQ(fsum[i], AddMod(fa[i], fb[i], p_));
    }
}

TEST_P(Radix2Test, DeltaTransformsToAllOnes)
{
    // NTT(delta_0) = (1, 1, ..., 1) for any twiddle convention.
    std::vector<u64> delta(n_, 0);
    delta[0] = 1;
    NttRadix2(delta, *table_);
    for (u64 x : delta) {
        EXPECT_EQ(x, 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndPrimes, Radix2Test,
    ::testing::Combine(::testing::Values(4, 8, 64, 256, 1024, 4096),
                       ::testing::Values(30u, 50u, 60u)));

TEST(Radix2, RejectsMismatchedSpan)
{
    const u64 p = GenerateNttPrimes(2 * 64, 40, 1)[0];
    const TwiddleTable table(64, p);
    std::vector<u64> wrong(32, 0);
    EXPECT_THROW(NttRadix2(wrong, table), std::invalid_argument);
    EXPECT_THROW(InttRadix2(wrong, table), std::invalid_argument);
}

}  // namespace
}  // namespace hentt
