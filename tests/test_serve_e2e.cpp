/**
 * @file
 * End-to-end tests of the serving layer over real unix-domain sockets:
 * an in-process Daemon, real Client connections, real frames.
 *
 * What must hold (the acceptance criteria of the serving layer):
 *   - a full encrypted round trip (keygen → session → keys → graph →
 *     poll → decrypt) produces the same plaintext as local evaluation;
 *   - concurrent clients coalesce: the daemon's stats prove requests
 *     shared a wavefront batch;
 *   - every failure — protocol misuse, malformed bytes, missing keys,
 *     injected faults — reaches the client as a Status with the
 *     daemon's provenance, and the daemon keeps serving afterwards;
 *   - a dying connection takes its session with it (no orphans);
 *   - shutdown over the wire stops the daemon cleanly.
 *
 * The fault-injection cases arm the serve.request site and are skipped
 * (trivially green) when failpoints are not compiled in; the CI serve
 * job runs this suite in both configurations. These tests carry the
 * `serve` ctest label: socket-bound and timing-windowed, they get a
 * tighter timeout and one CI retry (CMakeLists.txt).
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "serve/client.h"
#include "serve/daemon.h"

namespace hentt::serve {
namespace {

he::HeParams
SmallParams()
{
    he::HeParams params;
    params.degree = 64;
    params.prime_count = 3;
    params.prime_bits = 50;
    params.plain_modulus = 257;
    return params;
}

/** Unique socket path per test (the daemon unlinks it on stop). */
std::string
TestSocketPath(const char *tag)
{
    return "/tmp/hentt-serve-test-" + std::string(tag) + "-" +
           std::to_string(::getpid()) + ".sock";
}

/** Poll daemon stats until @p pred holds or ~2s elapse. */
template <typename Pred>
bool
EventuallyTrue(Pred pred)
{
    for (int i = 0; i < 200; ++i) {
        if (pred()) {
            return true;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
}

class ServeE2E : public ::testing::Test
{
  protected:
    void
    StartDaemon(const char *tag, BatchConfig batch = {})
    {
        DaemonConfig config;
        config.socket_path = TestSocketPath(tag);
        config.batch = batch;
        daemon_ = std::make_unique<Daemon>(config);
        const Status started = daemon_->Start();
        ASSERT_TRUE(started.ok()) << started.ToString();
    }

    std::unique_ptr<Client>
    NewClient()
    {
        Result<std::unique_ptr<Client>> client =
            Client::Connect(daemon_->socket_path());
        EXPECT_TRUE(client.ok()) << client.status().ToString();
        return client.ok() ? std::move(*client) : nullptr;
    }

    void
    TearDown() override
    {
        if (daemon_ != nullptr) {
            daemon_->Stop();
        }
        fp::ResetAll();
    }

    std::unique_ptr<Daemon> daemon_;
};

TEST_F(ServeE2E, PingAndStats)
{
    StartDaemon("ping");
    std::unique_ptr<Client> client = NewClient();
    ASSERT_NE(client, nullptr);
    EXPECT_EQ(client->protocol_version(), kProtocolVersion);
    const Status ping = client->Ping();
    EXPECT_TRUE(ping.ok()) << ping.ToString();
    Result<WireStats> stats = client->Stats();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->sessions_created, 0u);
    EXPECT_EQ(stats->requests_submitted, 0u);
}

TEST_F(ServeE2E, EncryptedRoundTripMatchesLocalEvaluation)
{
    StartDaemon("roundtrip");
    std::unique_ptr<Client> client = NewClient();
    ASSERT_NE(client, nullptr);

    const he::HeParams params = SmallParams();
    Result<u64> session = client->CreateSession(params);
    ASSERT_TRUE(session.ok()) << session.status().ToString();

    he::BgvScheme scheme(client->context(), /*seed=*/42);
    he::SecretKey sk = scheme.KeyGen();
    he::RelinKey rk = scheme.MakeRelinKey(sk);
    const Status loaded = client->LoadKeys(rk);
    ASSERT_TRUE(loaded.ok()) << loaded.ToString();

    he::Plaintext a(params.degree), b(params.degree);
    for (std::size_t i = 0; i < params.degree; ++i) {
        a[i] = (3 * i + 1) % params.plain_modulus;
        b[i] = (5 * i + 2) % params.plain_modulus;
    }
    he::Ciphertext ct_a = scheme.Encrypt(sk, a);
    he::Ciphertext ct_b = scheme.Encrypt(sk, b);

    // Remote: slot 2 = a*b, slot 3 = relin, slot 4 = modswitch.
    Result<u64> request = client->SubmitGraph(
        {ct_a, ct_b},
        {{WireOp::kMul, 0, 1},
         {WireOp::kRelin, 2, 0},
         {WireOp::kModSwitch, 3, 0}},
        {4});
    ASSERT_TRUE(request.ok()) << request.status().ToString();
    Result<std::vector<he::Ciphertext>> outputs =
        client->AwaitDone(*request);
    ASSERT_TRUE(outputs.ok()) << outputs.status().ToString();
    ASSERT_EQ(outputs->size(), 1u);

    // Local reference evaluation over the same ciphertexts.
    const he::Ciphertext expected =
        scheme.ModSwitch(scheme.Relinearize(scheme.Mul(ct_a, ct_b), rk));
    EXPECT_EQ(scheme.Decrypt(sk, outputs->front()),
              scheme.Decrypt(sk, expected));

    Result<WireStats> stats = client->Stats();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->requests_completed, 1u);
    EXPECT_EQ(stats->requests_failed, 0u);
}

TEST_F(ServeE2E, ConcurrentClientsCoalesceIntoSharedBatches)
{
    // A wide admission window guarantees concurrently submitted
    // requests land in one batch; the stats must prove it.
    BatchConfig batch;
    batch.max_batch = 64;
    batch.max_wait = std::chrono::microseconds(200000);
    StartDaemon("batch", batch);

    const he::HeParams params = SmallParams();
    constexpr int kClients = 6;
    std::vector<std::thread> threads;
    std::vector<Status> outcomes(kClients);
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([this, &params, &outcomes, c] {
            Result<std::unique_ptr<Client>> client =
                Client::Connect(daemon_->socket_path());
            if (!client.ok()) {
                outcomes[c] = client.status();
                return;
            }
            Result<u64> session = (*client)->CreateSession(params);
            if (!session.ok()) {
                outcomes[c] = session.status();
                return;
            }
            he::BgvScheme scheme((*client)->context(),
                                 /*seed=*/100 + c);
            he::SecretKey sk = scheme.KeyGen();
            he::Plaintext m(params.degree, static_cast<u64>(c + 1));
            he::Ciphertext ct = scheme.Encrypt(sk, m);
            // Keyless program (Add): batches across every client
            // regardless of their (distinct, unloaded) keys.
            Result<u64> request = (*client)->SubmitGraph(
                {ct, ct}, {{WireOp::kAdd, 0, 1}}, {2});
            if (!request.ok()) {
                outcomes[c] = request.status();
                return;
            }
            Result<std::vector<he::Ciphertext>> outputs =
                (*client)->AwaitDone(*request);
            if (!outputs.ok()) {
                outcomes[c] = outputs.status();
                return;
            }
            he::Plaintext expected(params.degree,
                                   static_cast<u64>(2 * (c + 1)) %
                                       params.plain_modulus);
            if (scheme.Decrypt(sk, outputs->front()) != expected) {
                outcomes[c] = Status(ErrorCode::kInternal,
                                     "decrypted sum mismatch");
            }
        });
    }
    for (std::thread &thread : threads) {
        thread.join();
    }
    for (int c = 0; c < kClients; ++c) {
        EXPECT_TRUE(outcomes[c].ok())
            << "client " << c << ": " << outcomes[c].ToString();
    }
    const WireStats stats = daemon_->Stats();
    EXPECT_EQ(stats.requests_completed,
              static_cast<u64>(kClients));
    // The batching proof: at least one batch held >1 request. (All six
    // submits race one 200ms admission window, so in practice all of
    // them share a batch; >1 is the robust floor.)
    EXPECT_GT(stats.max_batch_observed, 1u)
        << "no cross-client coalescing observed: "
        << stats.batches_executed << " batches for " << kClients
        << " requests";
    EXPECT_GT(stats.coalesced_requests, 0u);
}

TEST_F(ServeE2E, ErrorsArriveAsStatusWithDaemonProvenance)
{
    StartDaemon("errors");
    std::unique_ptr<Client> client = NewClient();
    ASSERT_NE(client, nullptr);

    // Misuse before a session exists: precise precondition failures.
    {
        auto ctx = std::make_shared<const he::HeContext>(SmallParams());
        he::BgvScheme scheme(ctx, 5);
        he::SecretKey sk = scheme.KeyGen();
        const Status status = client->LoadKeys(scheme.MakeRelinKey(sk));
        ASSERT_FALSE(status.ok());
        EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition);
        EXPECT_FALSE(status.frames().empty())
            << "daemon-side provenance lost: " << status.ToString();
    }

    // Invalid parameters: rejected via serde validation as
    // kInvalidArgument, connection stays up.
    he::HeParams bad = SmallParams();
    bad.degree = 63;  // not a power of two
    Result<u64> bad_session = client->CreateSession(bad);
    ASSERT_FALSE(bad_session.ok());
    EXPECT_EQ(bad_session.status().code(),
              ErrorCode::kInvalidArgument);

    // The same connection still serves: create a real session.
    Result<u64> session = client->CreateSession(SmallParams());
    ASSERT_TRUE(session.ok()) << session.status().ToString();

    // Key-switching without keys: fail-fast at submit.
    he::BgvScheme scheme(client->context(), 6);
    he::SecretKey sk = scheme.KeyGen();
    he::Ciphertext ct =
        scheme.Encrypt(sk, he::Plaintext(SmallParams().degree, 1));
    Result<u64> keyless = client->SubmitGraph(
        {ct, ct}, {{WireOp::kMul, 0, 1}, {WireOp::kRelin, 2, 0}}, {3});
    ASSERT_FALSE(keyless.ok());
    EXPECT_EQ(keyless.status().code(),
              ErrorCode::kFailedPrecondition);

    // Unknown request id: a polling error, not a hang.
    Result<Client::Outcome> unknown = client->Poll(991199);
    ASSERT_FALSE(unknown.ok());
    EXPECT_EQ(unknown.status().code(),
              ErrorCode::kFailedPrecondition);

    // After all that abuse the daemon still answers.
    EXPECT_TRUE(client->Ping().ok());
}

TEST_F(ServeE2E, PollIsScopedToTheOwningSession)
{
    // Request ids are sequential, so a misbehaving client can guess
    // another session's id; polling it must neither reveal nor
    // consume the foreign result (the per-session isolation
    // guarantee of the multi-client server).
    StartDaemon("poll-scope");
    std::unique_ptr<Client> owner = NewClient();
    ASSERT_NE(owner, nullptr);
    ASSERT_TRUE(owner->CreateSession(SmallParams()).ok());
    he::BgvScheme scheme(owner->context(), /*seed=*/12);
    he::SecretKey sk = scheme.KeyGen();
    he::Ciphertext ct =
        scheme.Encrypt(sk, he::Plaintext(SmallParams().degree, 7));
    Result<u64> request =
        owner->SubmitGraph({ct, ct}, {{WireOp::kAdd, 0, 1}}, {2});
    ASSERT_TRUE(request.ok()) << request.status().ToString();
    // Let the request settle daemon-side, so the thief below targets
    // a done (undelivered) result — the worst case.
    EXPECT_TRUE(EventuallyTrue([this] {
        return daemon_->Stats().requests_completed == 1;
    }));

    // A connection with no session at all is rejected outright.
    std::unique_ptr<Client> thief = NewClient();
    ASSERT_NE(thief, nullptr);
    Result<Client::Outcome> no_session = thief->Poll(*request);
    ASSERT_FALSE(no_session.ok());
    EXPECT_EQ(no_session.status().code(),
              ErrorCode::kFailedPrecondition);

    // With its own session, the foreign id reads as unknown — same
    // answer a nonexistent id gets, so ids enumerate nothing.
    ASSERT_TRUE(thief->CreateSession(SmallParams()).ok());
    Result<Client::Outcome> stolen = thief->Poll(*request);
    ASSERT_FALSE(stolen.ok());
    EXPECT_EQ(stolen.status().code(),
              ErrorCode::kFailedPrecondition);

    // The theft attempts consumed nothing: the owner still collects
    // and decrypts its result.
    Result<std::vector<he::Ciphertext>> outputs =
        owner->AwaitDone(*request);
    ASSERT_TRUE(outputs.ok()) << outputs.status().ToString();
    EXPECT_EQ(scheme.Decrypt(sk, outputs->front()),
              he::Plaintext(SmallParams().degree, 14));
}

TEST_F(ServeE2E, MalformedFrameBytesGetErrorReplyAndDaemonSurvives)
{
    StartDaemon("badbytes");

    // Raw socket speaking garbage after a valid handshake.
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, daemon_->socket_path().c_str(),
                 sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd,
                        reinterpret_cast<const sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    Result<u32> version = ClientHandshake(fd);
    ASSERT_TRUE(version.ok()) << version.status().ToString();

    // A frame header claiming an unknown type: the daemon must answer
    // with a kError frame before closing this connection.
    const u8 garbage[6] = {0, 0, 0, 0, kProtocolVersion, 0xEE};
    ASSERT_TRUE(WriteAll(fd, garbage).ok());
    Result<Frame> reply = ReadFrame(fd);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(reply->type, FrameType::kError);
    Result<WireStatus> ws = DecodeStatus(reply->payload);
    ASSERT_TRUE(ws.ok());
    EXPECT_EQ(static_cast<ErrorCode>(ws->code),
              ErrorCode::kInvalidArgument);
    ::close(fd);

    // The daemon survives for well-behaved clients.
    std::unique_ptr<Client> client = NewClient();
    ASSERT_NE(client, nullptr);
    EXPECT_TRUE(client->Ping().ok());
}

TEST_F(ServeE2E, DyingConnectionLeavesNoOrphanedSession)
{
    StartDaemon("orphans");
    {
        std::unique_ptr<Client> client = NewClient();
        ASSERT_NE(client, nullptr);
        Result<u64> session = client->CreateSession(SmallParams());
        ASSERT_TRUE(session.ok()) << session.status().ToString();
        EXPECT_TRUE(EventuallyTrue(
            [this] { return daemon_->Stats().sessions_active == 1; }));
        // Client destructor closes the socket with no CloseSession —
        // the abrupt-death path.
    }
    EXPECT_TRUE(EventuallyTrue(
        [this] { return daemon_->Stats().sessions_active == 0; }))
        << "session survived its connection";
    EXPECT_EQ(daemon_->Stats().sessions_created, 1u);

    // Explicit CloseSession also releases, with the connection alive.
    std::unique_ptr<Client> client = NewClient();
    ASSERT_NE(client, nullptr);
    ASSERT_TRUE(client->CreateSession(SmallParams()).ok());
    EXPECT_TRUE(EventuallyTrue(
        [this] { return daemon_->Stats().sessions_active == 1; }));
    EXPECT_TRUE(client->CloseSession().ok());
    EXPECT_TRUE(EventuallyTrue(
        [this] { return daemon_->Stats().sessions_active == 0; }));
    EXPECT_TRUE(client->Ping().ok());
}

TEST_F(ServeE2E, ShutdownOverTheWire)
{
    StartDaemon("shutdown");
    std::unique_ptr<Client> client = NewClient();
    ASSERT_NE(client, nullptr);
    EXPECT_TRUE(client->Shutdown().ok());
    daemon_->Wait();
    // A fresh connect must fail — the socket is gone.
    Result<std::unique_ptr<Client>> late =
        Client::Connect(daemon_->socket_path());
    EXPECT_FALSE(late.ok());
    daemon_.reset();
}

TEST_F(ServeE2E, InjectedFaultsSurfaceAsWireStatus)
{
    if (!fp::kCompiledIn) {
        GTEST_SKIP() << "failpoints not compiled in "
                        "(-DHENTT_FAILPOINTS=ON)";
    }
    StartDaemon("chaos");
    std::unique_ptr<Client> client = NewClient();
    ASSERT_NE(client, nullptr);
    Result<u64> session = client->CreateSession(SmallParams());
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    he::BgvScheme scheme(client->context(), 9);
    he::SecretKey sk = scheme.KeyGen();
    he::Ciphertext ct =
        scheme.Encrypt(sk, he::Plaintext(SmallParams().degree, 2));

    // Deterministic: the very next pass over serve.request fires. The
    // injected fault must come back as a kInjected Status with
    // provenance — over the wire, not as a dropped connection.
    fp::ArmNth(fp::kServeRequest, 1);
    Result<u64> injected =
        client->SubmitGraph({ct, ct}, {{WireOp::kAdd, 0, 1}}, {2});
    ASSERT_FALSE(injected.ok());
    EXPECT_EQ(injected.status().code(), ErrorCode::kInjected)
        << injected.status().ToString();
    EXPECT_FALSE(injected.status().frames().empty());
    fp::DisarmAll();

    // Connection and daemon both survive; the same request now runs.
    Result<u64> retry =
        client->SubmitGraph({ct, ct}, {{WireOp::kAdd, 0, 1}}, {2});
    ASSERT_TRUE(retry.ok()) << retry.status().ToString();
    Result<std::vector<he::Ciphertext>> outputs =
        client->AwaitDone(*retry);
    ASSERT_TRUE(outputs.ok()) << outputs.status().ToString();
    EXPECT_EQ(scheme.Decrypt(sk, outputs->front()),
              he::Plaintext(SmallParams().degree, 4));
    EXPECT_EQ(daemon_->Stats().sessions_active, 1u);
}

TEST_F(ServeE2E, ChaosSweepNeverKillsTheDaemon)
{
    if (!fp::kCompiledIn) {
        GTEST_SKIP() << "failpoints not compiled in "
                        "(-DHENTT_FAILPOINTS=ON)";
    }
    StartDaemon("chaos-sweep");
    std::unique_ptr<Client> client = NewClient();
    ASSERT_NE(client, nullptr);
    Result<u64> session = client->CreateSession(SmallParams());
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    he::BgvScheme scheme(client->context(), 10);
    he::SecretKey sk = scheme.KeyGen();
    he::Ciphertext ct =
        scheme.Encrypt(sk, he::Plaintext(SmallParams().degree, 3));

    // Probabilistic sweep: every outcome must be either success or a
    // clean kInjected Status; the daemon must survive all of it. A
    // request crosses the armed site several times (submit handler,
    // coalescer admission, every poll round trip — the poll count is
    // timing-dependent), so a fixed iteration count can land all-
    // injected; sweep until both outcomes have occurred, capped.
    fp::SeedRng(0xC0FFEE);
    fp::Arm(fp::kServeRequest, 0.4);
    int injected = 0, succeeded = 0;
    for (int i = 0;
         i < 200 && (injected == 0 || succeeded == 0); ++i) {
        Result<u64> request =
            client->SubmitGraph({ct, ct}, {{WireOp::kAdd, 0, 1}}, {2});
        if (!request.ok()) {
            EXPECT_EQ(request.status().code(), ErrorCode::kInjected)
                << request.status().ToString();
            ++injected;
            continue;
        }
        Result<std::vector<he::Ciphertext>> outputs =
            client->AwaitDone(*request);
        if (!outputs.ok()) {
            EXPECT_EQ(outputs.status().code(), ErrorCode::kInjected)
                << outputs.status().ToString();
            ++injected;
            continue;
        }
        ++succeeded;
    }
    fp::DisarmAll();
    EXPECT_GT(injected, 0) << "p=0.4 over 200 sweeps never fired";
    EXPECT_GT(succeeded, 0)
        << "no request survived 200 sweeps at p=0.4";
    // No-fault epilogue: service is fully intact.
    Result<u64> final_request =
        client->SubmitGraph({ct, ct}, {{WireOp::kAdd, 0, 1}}, {2});
    ASSERT_TRUE(final_request.ok())
        << final_request.status().ToString();
    Result<std::vector<he::Ciphertext>> outputs =
        client->AwaitDone(*final_request);
    ASSERT_TRUE(outputs.ok()) << outputs.status().ToString();
    EXPECT_EQ(scheme.Decrypt(sk, outputs->front()),
              he::Plaintext(SmallParams().degree, 6));
    EXPECT_EQ(daemon_->Stats().sessions_active, 1u);
}

TEST_F(ServeE2E, UnbatchedAblationStillServes)
{
    // coalesce=false (the bench baseline) must be functionally
    // identical — only slower.
    BatchConfig batch;
    batch.coalesce = false;
    StartDaemon("nobatch", batch);
    std::unique_ptr<Client> client = NewClient();
    ASSERT_NE(client, nullptr);
    ASSERT_TRUE(client->CreateSession(SmallParams()).ok());
    he::BgvScheme scheme(client->context(), 11);
    he::SecretKey sk = scheme.KeyGen();
    he::Ciphertext ct =
        scheme.Encrypt(sk, he::Plaintext(SmallParams().degree, 5));
    Result<u64> request =
        client->SubmitGraph({ct, ct}, {{WireOp::kAdd, 0, 1}}, {2});
    ASSERT_TRUE(request.ok()) << request.status().ToString();
    Result<std::vector<he::Ciphertext>> outputs =
        client->AwaitDone(*request);
    ASSERT_TRUE(outputs.ok()) << outputs.status().ToString();
    EXPECT_EQ(scheme.Decrypt(sk, outputs->front()),
              he::Plaintext(SmallParams().degree, 10));
    const WireStats stats = daemon_->Stats();
    EXPECT_EQ(stats.coalesced_requests, 0u);
    EXPECT_EQ(stats.max_batch_observed, 1u);
}

}  // namespace
}  // namespace hentt::serve
