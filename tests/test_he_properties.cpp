/**
 * Property-based correctness suite for the HE layer: randomized
 * leveled circuits checked against a plaintext oracle, ring-algebra
 * invariants (commutativity / associativity / distributivity), lazy
 * [0, 4p) vs strict NTT bit-identity, and Try* / graph path
 * equivalence. Runs >= 1000 randomized cases by default; every
 * property prints its seed and reproduces exactly under
 * HENTT_PBT_SEED / HENTT_PBT_CASES (see tests/pbt.h).
 */

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "common/modarith.h"
#include "common/primegen.h"
#include "he/bgv.h"
#include "he/he_graph.h"
#include "ntt/ntt_lazy.h"
#include "ntt/ntt_radix2.h"
#include "pbt.h"

namespace hentt::he {
namespace {

/**
 * The randomized-parameter pool. Each entry is a full scheme fixture
 * (context, scheme, secret + relin keys) built once and shared across
 * cases — key generation is deterministic per entry, so per-case
 * reproduction only depends on the pbt seed.
 */
struct SchemeFixture {
    std::shared_ptr<HeContext> ctx;
    std::unique_ptr<BgvScheme> scheme;
    std::optional<SecretKey> sk;
    std::optional<RelinKey> rk;
};

const std::vector<SchemeFixture> &
FixturePool()
{
    static const std::vector<SchemeFixture> pool = [] {
        const struct {
            std::size_t degree;
            std::size_t primes;
            unsigned bits;
            u64 t;
        } grid[] = {{64, 3, 50, 257},
                    {32, 2, 45, 97},
                    {128, 3, 40, 769},
                    {64, 4, 50, 65537},
                    {16, 2, 55, 193}};
        std::vector<SchemeFixture> fixtures;
        for (const auto &g : grid) {
            HeParams params;
            params.degree = g.degree;
            params.prime_count = g.primes;
            params.prime_bits = g.bits;
            params.plain_modulus = g.t;
            SchemeFixture f;
            f.ctx = std::make_shared<HeContext>(params);
            f.scheme = std::make_unique<BgvScheme>(f.ctx, /*seed=*/1234);
            f.sk.emplace(f.scheme->KeyGen());
            f.rk.emplace(f.scheme->MakeRelinKey(*f.sk));
            fixtures.push_back(std::move(f));
        }
        return fixtures;
    }();
    return pool;
}

const SchemeFixture &
PickFixture(Xoshiro256 &rng)
{
    const auto &pool = FixturePool();
    return pool[rng.NextBelow(pool.size())];
}

Plaintext
RandomPlain(const SchemeFixture &f, Xoshiro256 &rng)
{
    Plaintext m(f.ctx->degree());
    const u64 t = f.ctx->params().plain_modulus;
    for (u64 &x : m) {
        x = rng.NextBelow(t);
    }
    return m;
}

Plaintext
PlainAdd(const Plaintext &a, const Plaintext &b, u64 t)
{
    Plaintext c(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        c[i] = AddMod(a[i], b[i], t);
    }
    return c;
}

Plaintext
PlainSub(const Plaintext &a, const Plaintext &b, u64 t)
{
    Plaintext c(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        c[i] = SubMod(a[i], b[i], t);
    }
    return c;
}

/** Negacyclic product mod t — the O(N^2) schoolbook oracle. */
Plaintext
PlainMul(const Plaintext &a, const Plaintext &b, u64 t)
{
    const std::size_t n = a.size();
    Plaintext c(n, 0);
    for (std::size_t k = 0; k < n; ++k) {
        u64 acc = 0;
        for (std::size_t i = 0; i <= k; ++i) {
            acc = AddMod(acc, MulModNative(a[i], b[k - i], t), t);
        }
        for (std::size_t i = k + 1; i < n; ++i) {
            acc = SubMod(acc, MulModNative(a[i], b[n + k - i], t), t);
        }
        c[k] = acc;
    }
    return c;
}

void
ExpectCtBitIdentical(const Ciphertext &a, const Ciphertext &b)
{
    ASSERT_EQ(a.parts.size(), b.parts.size());
    for (std::size_t i = 0; i < a.parts.size(); ++i) {
        ASSERT_EQ(a.parts[i].prime_count(), b.parts[i].prime_count());
        const auto fa = a.parts[i].flat();
        const auto fb = b.parts[i].flat();
        ASSERT_EQ(fa.size(), fb.size());
        for (std::size_t k = 0; k < fa.size(); ++k) {
            ASSERT_EQ(fa[k], fb[k])
                << "part " << i << " word " << k;
        }
    }
}

/**
 * Random leveled circuit: a pool of same-level wires, each carrying
 * its ciphertext and the plaintext the oracle says it holds. Every
 * multiply descends one level (Mul -> fused RelinModSwitch) and drags
 * the rest of the pool down with plain ModSwitch, so Add operands
 * always level-match — the wire discipline a leveled BGV circuit
 * compiler enforces.
 */
HENTT_PBT_PROP(HeProperties, RandomLeveledCircuitsMatchPlaintextOracle,
               250, (hentt::Xoshiro256 &rng, hentt::u64 /*case_index*/))
{
    const SchemeFixture &f = PickFixture(rng);
    const u64 t = f.ctx->params().plain_modulus;

    struct Wire {
        Ciphertext ct;
        Plaintext pt;
    };
    std::vector<Wire> wires;
    for (int i = 0; i < 3; ++i) {
        Plaintext m = RandomPlain(f, rng);
        wires.push_back({f.scheme->Encrypt(*f.sk, m), std::move(m)});
    }

    std::size_t level = f.ctx->params().prime_count;
    const u64 steps = 2 + rng.NextBelow(4);
    for (u64 s = 0; s < steps; ++s) {
        const std::size_t ia = rng.NextBelow(wires.size());
        const std::size_t ib = rng.NextBelow(wires.size());
        const u64 op = rng.NextBelow(level >= 2 ? 3 : 2);
        if (op == 0) {
            wires.push_back(
                {f.scheme->Add(wires[ia].ct, wires[ib].ct),
                 PlainAdd(wires[ia].pt, wires[ib].pt, t)});
        } else if (op == 1) {
            wires.push_back(
                {f.scheme->Sub(wires[ia].ct, wires[ib].ct),
                 PlainSub(wires[ia].pt, wires[ib].pt, t)});
        } else {
            // Multiply-and-descend, then level-align the whole pool.
            Wire w{f.scheme->RelinModSwitch(
                       f.scheme->Mul(wires[ia].ct, wires[ib].ct),
                       *f.rk),
                   PlainMul(wires[ia].pt, wires[ib].pt, t)};
            for (Wire &other : wires) {
                other.ct = f.scheme->ModSwitch(other.ct);
            }
            wires.push_back(std::move(w));
            --level;
        }
    }

    for (std::size_t i = 0; i < wires.size(); ++i) {
        SCOPED_TRACE("wire " + std::to_string(i));
        EXPECT_EQ(BgvScheme::Level(wires[i].ct), level);
        EXPECT_EQ(f.scheme->Decrypt(*f.sk, wires[i].ct), wires[i].pt);
    }
}

HENTT_PBT_PROP(HeProperties, AddCommutesBitIdentical, 200,
               (hentt::Xoshiro256 &rng, hentt::u64 /*case_index*/))
{
    const SchemeFixture &f = PickFixture(rng);
    const Ciphertext a = f.scheme->Encrypt(*f.sk, RandomPlain(f, rng));
    const Ciphertext b = f.scheme->Encrypt(*f.sk, RandomPlain(f, rng));
    // AddMod is exact, so a + b and b + a agree word for word, not
    // just as residues.
    ExpectCtBitIdentical(f.scheme->Add(a, b), f.scheme->Add(b, a));
}

HENTT_PBT_PROP(HeProperties, AddAssociatesBitIdentical, 150,
               (hentt::Xoshiro256 &rng, hentt::u64 /*case_index*/))
{
    const SchemeFixture &f = PickFixture(rng);
    const Ciphertext a = f.scheme->Encrypt(*f.sk, RandomPlain(f, rng));
    const Ciphertext b = f.scheme->Encrypt(*f.sk, RandomPlain(f, rng));
    const Ciphertext c = f.scheme->Encrypt(*f.sk, RandomPlain(f, rng));
    ExpectCtBitIdentical(f.scheme->Add(f.scheme->Add(a, b), c),
                         f.scheme->Add(a, f.scheme->Add(b, c)));
}

HENTT_PBT_PROP(HeProperties, MulCommutesBitIdentical, 100,
               (hentt::Xoshiro256 &rng, hentt::u64 /*case_index*/))
{
    const SchemeFixture &f = PickFixture(rng);
    const Ciphertext a = f.scheme->Encrypt(*f.sk, RandomPlain(f, rng));
    const Ciphertext b = f.scheme->Encrypt(*f.sk, RandomPlain(f, rng));
    // The tensor product is symmetric in its operands (c1 sums the two
    // cross terms with exact modular adds), so Mul commutes at the
    // word level.
    ExpectCtBitIdentical(f.scheme->Mul(a, b), f.scheme->Mul(b, a));
}

HENTT_PBT_PROP(HeProperties, MulDistributesOverAdd, 100,
               (hentt::Xoshiro256 &rng, hentt::u64 /*case_index*/))
{
    const SchemeFixture &f = PickFixture(rng);
    const u64 t = f.ctx->params().plain_modulus;
    const Plaintext ma = RandomPlain(f, rng);
    const Plaintext mb = RandomPlain(f, rng);
    const Plaintext mc = RandomPlain(f, rng);
    const Ciphertext a = f.scheme->Encrypt(*f.sk, ma);
    const Ciphertext b = f.scheme->Encrypt(*f.sk, mb);
    const Ciphertext c = f.scheme->Encrypt(*f.sk, mc);
    // a*(b+c) and a*b + a*c accumulate different noise, so the
    // invariant is decrypt-equality against the oracle, not
    // bit-identity.
    const Plaintext expected =
        PlainMul(ma, PlainAdd(mb, mc, t), t);
    const Ciphertext lhs = f.scheme->Mul(a, f.scheme->Add(b, c));
    const Ciphertext rhs =
        f.scheme->Add(f.scheme->Mul(a, b), f.scheme->Mul(a, c));
    EXPECT_EQ(f.scheme->Decrypt(*f.sk, lhs), expected);
    EXPECT_EQ(f.scheme->Decrypt(*f.sk, rhs), expected);
}

/**
 * Lazy pipeline identities on raw rows: strict radix-2, lazy fused,
 * lazy unfused, and keep-range + fold must all agree word for word,
 * on strict ([0, p)) and lazy ([0, 4p)) inputs alike.
 */
HENTT_PBT_PROP(HeProperties, LazyWalksBitIdenticalToStrict, 200,
               (hentt::Xoshiro256 &rng, hentt::u64 /*case_index*/))
{
    struct Table {
        std::size_t n;
        u64 p;
        std::unique_ptr<TwiddleTable> table;
    };
    static const std::vector<Table> tables = [] {
        std::vector<Table> out;
        for (std::size_t n : {16, 64, 256}) {
            for (unsigned bits : {30u, 50u, 60u}) {
                const u64 p = GenerateNttPrimes(2 * n, bits, 1)[0];
                out.push_back(
                    {n, p, std::make_unique<TwiddleTable>(n, p)});
            }
        }
        return out;
    }();

    const Table &tb = tables[rng.NextBelow(tables.size())];
    std::vector<u64> a(tb.n);
    for (u64 &x : a) {
        x = rng.NextBelow(tb.p);
    }

    std::vector<u64> strict = a, fused = a, unfused = a, folded = a;
    NttRadix2(strict, *tb.table);
    NttRadix2Lazy(fused, *tb.table);
    NttRadix2LazyUnfused(unfused, *tb.table);
    NttRadix2LazyKeepRange(folded, *tb.table);
    for (u64 &x : folded) {
        x %= tb.p;  // reference fold of the [0, 4p) representatives
    }
    EXPECT_EQ(fused, strict);
    EXPECT_EQ(unfused, strict);
    EXPECT_EQ(folded, strict);

    // Lazy-range inputs (< 4p) must land on the same residues as
    // their reduced forms.
    if (tb.p < (u64{1} << 61)) {
        std::vector<u64> wide(tb.n), reduced(tb.n);
        for (std::size_t i = 0; i < tb.n; ++i) {
            wide[i] = rng.NextBelow(4 * tb.p);
            reduced[i] = wide[i] % tb.p;
        }
        NttRadix2Lazy(wide, *tb.table);
        NttRadix2(reduced, *tb.table);
        EXPECT_EQ(wide, reduced);
    }

    // Inverse walks agree and round-trip.
    std::vector<u64> ev = strict;
    std::vector<u64> inv_fused = ev, inv_unfused = ev;
    InttRadix2Lazy(inv_fused, *tb.table);
    InttRadix2LazyUnfused(inv_unfused, *tb.table);
    EXPECT_EQ(inv_fused, a);
    EXPECT_EQ(inv_unfused, a);
}

/**
 * One expression, three execution paths: the throwing API, the Try*
 * Result API, and the HeOpGraph wavefront scheduler must produce
 * word-identical ciphertexts.
 */
HENTT_PBT_PROP(HeProperties, TryAndGraphPathsMatchDirect, 100,
               (hentt::Xoshiro256 &rng, hentt::u64 /*case_index*/))
{
    const SchemeFixture &f = PickFixture(rng);
    const Plaintext ma = RandomPlain(f, rng);
    const Plaintext mb = RandomPlain(f, rng);
    const Plaintext mc = RandomPlain(f, rng);
    const Ciphertext a = f.scheme->Encrypt(*f.sk, ma);
    const Ciphertext b = f.scheme->Encrypt(*f.sk, mb);
    const Ciphertext c = f.scheme->Encrypt(*f.sk, mc);

    // direct: (a*b descended) + modswitch(c)
    const Ciphertext direct = f.scheme->Add(
        f.scheme->RelinModSwitch(f.scheme->Mul(a, b), *f.rk),
        f.scheme->ModSwitch(c));

    // Try* path.
    auto prod = f.scheme->TryMul(a, b);
    ASSERT_TRUE(prod.ok());
    auto descended = f.scheme->TryRelinModSwitch(prod.value(), *f.rk);
    ASSERT_TRUE(descended.ok());
    auto switched = f.scheme->TryModSwitch(c);
    ASSERT_TRUE(switched.ok());
    auto sum = f.scheme->TryAdd(descended.value(), switched.value());
    ASSERT_TRUE(sum.ok());
    ExpectCtBitIdentical(sum.value(), direct);

    // Graph path (auto-batched wavefronts).
    HeOpGraph g(*f.scheme, &*f.rk);
    CtFuture ga = g.Input(a), gb = g.Input(b), gc = g.Input(c);
    CtFuture out = g.Add(g.MulRelinModSwitch(ga, gb), g.ModSwitch(gc));
    ExpectCtBitIdentical(out.get(), direct);

    const Plaintext expected =
        PlainAdd(PlainMul(ma, mb, f.ctx->params().plain_modulus), mc,
                 f.ctx->params().plain_modulus);
    EXPECT_EQ(f.scheme->Decrypt(*f.sk, direct), expected);
}

}  // namespace
}  // namespace hentt::he
