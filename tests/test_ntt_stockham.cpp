/** Tests for the Stockham autosort NTT (paper Algo. 3). */

#include <gtest/gtest.h>

#include "common/primegen.h"
#include "common/random.h"
#include "ntt/ntt_naive.h"
#include "ntt/ntt_radix2.h"
#include "ntt/ntt_stockham.h"
#include "ntt/twiddle_table.h"

namespace hentt {
namespace {

class StockhamTest : public ::testing::TestWithParam<std::size_t>
{
  protected:
    void
    SetUp() override
    {
        n_ = GetParam();
        p_ = GenerateNttPrimes(2 * n_, 50, 1)[0];
        ntt_ = std::make_unique<StockhamNtt>(n_, p_);
    }

    std::vector<u64>
    Random(u64 seed) const
    {
        Xoshiro256 rng(seed);
        std::vector<u64> v(n_);
        for (u64 &x : v) {
            x = rng.NextBelow(p_);
        }
        return v;
    }

    std::size_t n_;
    u64 p_;
    std::unique_ptr<StockhamNtt> ntt_;
};

TEST_P(StockhamTest, NaturalOrderMatchesNaiveOracle)
{
    // Stockham's self-sorting property: output in natural order, no
    // bit-reversal anywhere (the paper's motivation for the algorithm).
    const auto a = Random(11);
    const auto got = ntt_->Forward(a);
    const auto expect = NaiveNegacyclicNtt(a, ntt_->psi(), p_);
    EXPECT_EQ(got, expect);
}

TEST_P(StockhamTest, InverseComposesToIdentity)
{
    const auto a = Random(12);
    const auto round_trip = ntt_->Inverse(ntt_->Forward(a));
    EXPECT_EQ(round_trip, a);
}

TEST_P(StockhamTest, AgreesWithCooleyTukeyUpToPermutation)
{
    // Both algorithms compute the same transform; Cooley-Tukey emits it
    // bit-reversed, Stockham sorted. Compare as multisets via sort.
    const auto a = Random(13);
    auto ct = a;
    const TwiddleTable table(n_, p_);
    ASSERT_EQ(table.psi(), ntt_->psi());  // deterministic root choice
    NttRadix2(ct, table);
    auto st = ntt_->Forward(a);
    // Element-by-element: Stockham natural order vs CT bit-reversed.
    std::sort(ct.begin(), ct.end());
    std::sort(st.begin(), st.end());
    EXPECT_EQ(ct, st);
}

TEST_P(StockhamTest, RejectsWrongSize)
{
    std::vector<u64> wrong(n_ / 2, 0);
    EXPECT_THROW(ntt_->Forward(wrong), std::invalid_argument);
    EXPECT_THROW(ntt_->Inverse(wrong), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Sizes, StockhamTest,
                         ::testing::Values(2, 4, 16, 128, 1024, 4096));

TEST(Stockham, RejectsBadConstruction)
{
    EXPECT_THROW(StockhamNtt(100, 257), std::invalid_argument);
    EXPECT_THROW(StockhamNtt(256, 257), std::invalid_argument);
}

}  // namespace
}  // namespace hentt
