/** Tests for the Status/Result error model and the failpoint registry. */

#include <gtest/gtest.h>

#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/status.h"

namespace hentt {
namespace {

TEST(Status, DefaultIsOkAndEmpty)
{
    const Status ok;
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.code(), ErrorCode::kOk);
    EXPECT_TRUE(ok.message().empty());
    EXPECT_TRUE(ok.frames().empty());
    EXPECT_EQ(ok.ToString(), "ok");
    EXPECT_TRUE(Status::Ok().ok());
}

TEST(Status, ErrorCarriesCodeMessageAndFrames)
{
    const Status s =
        Status(ErrorCode::kInvalidArgument, "bad degree")
            .WithFrame("BatchMul(ciphertext 2)")
            .WithFrame("HeOpGraph node 7 (Mul)");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::kInvalidArgument);
    EXPECT_EQ(s.message(), "bad degree");
    ASSERT_EQ(s.frames().size(), 2u);
    EXPECT_EQ(s.frames()[0], "BatchMul(ciphertext 2)");
    EXPECT_EQ(s.frames()[1], "HeOpGraph node 7 (Mul)");
    const std::string str = s.ToString();
    EXPECT_NE(str.find("invalid_argument"), std::string::npos);
    EXPECT_NE(str.find("bad degree"), std::string::npos);
    EXPECT_NE(str.find("BatchMul(ciphertext 2) > HeOpGraph node 7"),
              std::string::npos);
}

TEST(Status, WithFrameCopiesInsteadOfMutating)
{
    const Status inner(ErrorCode::kInternal, "boom");
    const Status outer = inner.WithFrame("layer");
    EXPECT_TRUE(inner.frames().empty());
    ASSERT_EQ(outer.frames().size(), 1u);
    // OK stays OK (and frame-free) through WithFrame.
    EXPECT_TRUE(Status().WithFrame("anything").ok());
}

TEST(Status, ErrorCodeNamesAreStable)
{
    EXPECT_STREQ(ErrorCodeName(ErrorCode::kOk), "ok");
    EXPECT_STREQ(ErrorCodeName(ErrorCode::kPoisoned), "poisoned");
    EXPECT_STREQ(ErrorCodeName(ErrorCode::kInjected), "injected");
    EXPECT_STREQ(ErrorCodeName(ErrorCode::kResourceExhausted),
                 "resource_exhausted");
}

TEST(Result, HoldsValueOrStatus)
{
    Result<int> good(42);
    EXPECT_TRUE(good.ok());
    EXPECT_EQ(*good, 42);

    Result<int> bad(Status(ErrorCode::kUnavailable, "not yet"));
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), ErrorCode::kUnavailable);
    EXPECT_THROW(bad.value(), std::logic_error);
}

TEST(ErrorReport, SummaryAggregatesEveryFailure)
{
    ErrorReport report;
    EXPECT_TRUE(report.ok());
    EXPECT_TRUE(report.Summary().ok());

    report.errors.push_back(Status(ErrorCode::kInjected, "fault A"));
    EXPECT_EQ(report.Summary().code(), ErrorCode::kInjected);
    EXPECT_EQ(report.Summary().message(), "fault A");

    report.errors.push_back(
        Status(ErrorCode::kInvalidArgument, "fault B"));
    const Status summary = report.Summary();
    EXPECT_EQ(summary.code(), ErrorCode::kInjected);  // first error's
    EXPECT_NE(summary.message().find("2 tasks failed"),
              std::string::npos);
    EXPECT_NE(summary.message().find("fault A"), std::string::npos);
    EXPECT_NE(summary.message().find("fault B"), std::string::npos);
}

TEST(StatusBridge, ThrowStatusMapsToStdHierarchy)
{
    // Each code must land in the std exception type legacy catch sites
    // expect, while still carrying the structured Status.
    EXPECT_THROW(
        ThrowStatus(Status(ErrorCode::kInvalidArgument, "x")),
        std::invalid_argument);
    EXPECT_THROW(
        ThrowStatus(Status(ErrorCode::kFailedPrecondition, "x")),
        std::logic_error);
    EXPECT_THROW(ThrowStatus(Status(ErrorCode::kInternal, "x")),
                 std::runtime_error);
    EXPECT_THROW(ThrowStatus(Status(ErrorCode::kInjected, "x")),
                 std::runtime_error);

    try {
        ThrowStatus(Status(ErrorCode::kInvalidArgument, "bad operand")
                        .WithFrame("SomeOp"));
        FAIL() << "did not throw";
    } catch (const std::invalid_argument &e) {
        const auto *carrier =
            dynamic_cast<const StatusCarrier *>(&e);
        ASSERT_NE(carrier, nullptr);
        EXPECT_EQ(carrier->status().code(),
                  ErrorCode::kInvalidArgument);
        ASSERT_EQ(carrier->status().frames().size(), 1u);
        EXPECT_EQ(carrier->status().frames()[0], "SomeOp");
    }
}

TEST(StatusBridge, CurrentExceptionRoundTripsStatus)
{
    try {
        ThrowStatus(Status(ErrorCode::kPoisoned, "origin node 3")
                        .WithFrame("node 5"));
    } catch (...) {
        const Status s = CurrentExceptionToStatus();
        EXPECT_EQ(s.code(), ErrorCode::kPoisoned);
        EXPECT_EQ(s.message(), "origin node 3");
        ASSERT_EQ(s.frames().size(), 1u);
    }
}

TEST(StatusBridge, ForeignExceptionsMapByType)
{
    try {
        throw std::invalid_argument("plain");
    } catch (...) {
        EXPECT_EQ(CurrentExceptionToStatus().code(),
                  ErrorCode::kInvalidArgument);
    }
    try {
        throw std::logic_error("plain");
    } catch (...) {
        EXPECT_EQ(CurrentExceptionToStatus().code(),
                  ErrorCode::kFailedPrecondition);
    }
    try {
        throw std::bad_alloc();
    } catch (...) {
        EXPECT_EQ(CurrentExceptionToStatus().code(),
                  ErrorCode::kResourceExhausted);
    }
    try {
        throw 17;
    } catch (...) {
        EXPECT_EQ(CurrentExceptionToStatus().code(),
                  ErrorCode::kUnknown);
    }
}

TEST(StatusBridge, ParallelErrorCarriesTheFullReport)
{
    ErrorReport report;
    report.errors.push_back(Status(ErrorCode::kInjected, "task 1"));
    report.errors.push_back(Status(ErrorCode::kInjected, "task 9"));
    const ParallelError err(report);
    EXPECT_EQ(err.report().size(), 2u);
    EXPECT_EQ(err.status().code(), ErrorCode::kInjected);
    EXPECT_NE(std::string(err.what()).find("task 9"),
              std::string::npos);
}

// ------------------------------------------------------------ failpoints

/** RAII reset so registry state never leaks across tests. */
struct FpReset {
    FpReset() { fp::ResetAll(); }
    ~FpReset() { fp::ResetAll(); }
};

TEST(Failpoint, RegistryListsTheDocumentedSites)
{
    ASSERT_GE(fp::SiteCount(), 5u);
    bool found_arena = false;
    for (std::size_t i = 0; i < fp::SiteCount(); ++i) {
        if (std::string(fp::SiteName(i)) == fp::kArenaAlloc) {
            found_arena = true;
        }
    }
    EXPECT_TRUE(found_arena);
    EXPECT_EQ(fp::SiteName(fp::SiteCount()), nullptr);
}

TEST(Failpoint, UnknownSiteAndBadProbabilityThrow)
{
    FpReset reset;
    EXPECT_THROW(fp::Arm("no.such.site", 0.5), std::invalid_argument);
    EXPECT_THROW(fp::Arm(fp::kPoolTask, 1.5), std::invalid_argument);
    EXPECT_THROW(fp::Arm(fp::kPoolTask, -0.1), std::invalid_argument);
    EXPECT_THROW(fp::ArmNth(fp::kPoolTask, 0), std::invalid_argument);
}

TEST(Failpoint, ProbabilityOneAlwaysFiresAndZeroDisarms)
{
    FpReset reset;
    fp::Arm(fp::kPoolTask, 1.0);
    EXPECT_TRUE(fp::Armed(fp::kPoolTask));
    EXPECT_TRUE(fp::ShouldFire(fp::kPoolTask));
    EXPECT_TRUE(fp::ShouldFire(fp::kPoolTask));
    EXPECT_EQ(fp::FireCount(fp::kPoolTask), 2u);

    fp::Arm(fp::kPoolTask, 0.0);
    EXPECT_FALSE(fp::Armed(fp::kPoolTask));
    EXPECT_FALSE(fp::ShouldFire(fp::kPoolTask));
    EXPECT_EQ(fp::FireCount(fp::kPoolTask), 2u);
}

TEST(Failpoint, ArmNthFiresExactlyOnceOnTheNthPass)
{
    FpReset reset;
    fp::ArmNth(fp::kNttStage, 3);
    EXPECT_FALSE(fp::ShouldFire(fp::kNttStage));
    EXPECT_FALSE(fp::ShouldFire(fp::kNttStage));
    EXPECT_TRUE(fp::ShouldFire(fp::kNttStage));
    // Single fire: the site disarmed itself.
    EXPECT_FALSE(fp::Armed(fp::kNttStage));
    EXPECT_FALSE(fp::ShouldFire(fp::kNttStage));
    EXPECT_EQ(fp::FireCount(fp::kNttStage), 1u);
}

TEST(Failpoint, RaiseInjectedThrowsStatusWithSiteProvenance)
{
    try {
        fp::RaiseInjected(fp::kArenaAlloc);
        FAIL() << "did not throw";
    } catch (const RuntimeStatusError &e) {
        EXPECT_EQ(e.status().code(), ErrorCode::kInjected);
        ASSERT_EQ(e.status().frames().size(), 1u);
        EXPECT_NE(e.status().frames()[0].find(fp::kArenaAlloc),
                  std::string::npos);
    }
}

TEST(Failpoint, ScopedDisarmsOnExit)
{
    FpReset reset;
    {
        fp::Scoped arm(fp::kSimdDispatch, 1.0);
        EXPECT_TRUE(fp::Armed(fp::kSimdDispatch));
    }
    EXPECT_FALSE(fp::Armed(fp::kSimdDispatch));
}

TEST(Failpoint, SeededRollsAreDeterministic)
{
    FpReset reset;
    fp::Arm(fp::kPoolTask, 0.5);
    fp::SeedRng(1234);
    std::vector<bool> first;
    for (int i = 0; i < 64; ++i) {
        first.push_back(fp::ShouldFire(fp::kPoolTask));
    }
    fp::SeedRng(1234);
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(fp::ShouldFire(fp::kPoolTask), first[i]) << i;
    }
}

TEST(Failpoint, CompiledInMatchesBuildConfig)
{
#if defined(HENTT_FAILPOINTS) && HENTT_FAILPOINTS
    EXPECT_TRUE(fp::kCompiledIn);
#else
    EXPECT_FALSE(fp::kCompiledIn);
    // Sites compile to nothing: the macro must not roll or count.
    FpReset reset;
    fp::Arm(fp::kPoolTask, 1.0);
    HENTT_FAILPOINT(fp::kPoolTask);               // must not throw
    EXPECT_FALSE(HENTT_FAILPOINT_FIRED(fp::kPoolTask));
    EXPECT_EQ(fp::FireCount(fp::kPoolTask), 0u);
#endif
}

}  // namespace
}  // namespace hentt
