/**
 * Tests for the batched RNS execution layer: flat storage layout,
 * in-place / fused element-wise operations, Shoup scalar paths,
 * registry-shared engines, and serial/parallel bit-equality.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "common/thread_pool.h"
#include "ntt/ntt_registry.h"
#include "poly/rns_poly.h"

namespace hentt {
namespace {

class RnsBatchTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        lanes_before_ = GlobalThreadCount();
        grain_before_ = ParallelGrain();
        auto basis = std::make_shared<RnsBasis>(n_, 45, np_);
        ctx_ = std::make_shared<RnsNttContext>(n_, std::move(basis));
    }

    void
    TearDown() override
    {
        SetGlobalThreadCount(lanes_before_);
        SetParallelGrain(grain_before_);
    }

    RnsPoly
    Random(u64 seed) const
    {
        RnsPoly poly(ctx_);
        Xoshiro256 rng(seed);
        for (std::size_t i = 0; i < np_; ++i) {
            const u64 p = ctx_->basis().prime(i);
            for (u64 &x : poly.row(i)) {
                x = rng.NextBelow(p);
            }
        }
        return poly;
    }

    static void
    ExpectEqualRows(const RnsPoly &a, const RnsPoly &b)
    {
        ASSERT_EQ(a.prime_count(), b.prime_count());
        for (std::size_t i = 0; i < a.prime_count(); ++i) {
            EXPECT_TRUE(std::ranges::equal(a.row(i), b.row(i)))
                << "row " << i;
        }
    }

    static constexpr std::size_t n_ = 128;
    static constexpr std::size_t np_ = 5;
    std::shared_ptr<RnsNttContext> ctx_;
    std::size_t lanes_before_ = 1;
    std::size_t grain_before_ = 1;
};

TEST_F(RnsBatchTest, StorageIsOneContiguousLimbMajorBuffer)
{
    RnsPoly poly = Random(1);
    ASSERT_EQ(poly.flat().size(), n_ * np_);
    for (std::size_t i = 0; i < np_; ++i) {
        EXPECT_EQ(poly.row(i).data(), poly.flat().data() + i * n_);
        EXPECT_EQ(poly.row(i).size(), n_);
    }
}

TEST_F(RnsBatchTest, FlatStorageMatchesBigIntCrtReference)
{
    // Lifting big-int coefficients into rows must agree residue-by-
    // residue with the direct CRT reduction, and recompose exactly.
    Xoshiro256 rng(42);
    std::vector<BigInt> coeffs(n_);
    for (auto &c : coeffs) {
        c = BigInt(rng.Next());
        c = c * BigInt(rng.Next());  // ~128-bit, still far below Q
    }
    const RnsPoly poly(ctx_, coeffs);
    for (std::size_t i = 0; i < np_; ++i) {
        const u64 p = ctx_->basis().prime(i);
        for (std::size_t k = 0; k < n_; ++k) {
            EXPECT_EQ(poly.row(i)[k], coeffs[k] % p)
                << "i=" << i << " k=" << k;
        }
    }
    for (std::size_t k = 0; k < n_; ++k) {
        EXPECT_EQ(poly.CoefficientAsBigInt(k), coeffs[k]);
    }
}

TEST_F(RnsBatchTest, InPlaceOpsMatchOutOfPlace)
{
    const RnsPoly a = Random(2);
    const RnsPoly b = Random(3);

    RnsPoly sum = a;
    sum += b;
    ExpectEqualRows(sum, a + b);

    RnsPoly diff = a;
    diff -= b;
    ExpectEqualRows(diff, a - b);

    RnsPoly ea = a, eb = b;
    ea.ToEvaluation();
    eb.ToEvaluation();
    RnsPoly prod = ea;
    prod *= eb;
    ExpectEqualRows(prod, ea * eb);
}

TEST_F(RnsBatchTest, HadamardMatchesNativeModuloReference)
{
    RnsPoly ea = Random(4), eb = Random(5);
    ea.ToEvaluation();
    eb.ToEvaluation();
    const RnsPoly prod = ea * eb;  // Barrett path
    for (std::size_t i = 0; i < np_; ++i) {
        const u64 p = ctx_->basis().prime(i);
        for (std::size_t k = 0; k < n_; ++k) {
            EXPECT_EQ(prod.row(i)[k],
                      MulModNative(ea.row(i)[k], eb.row(i)[k], p));
        }
    }
}

TEST_F(RnsBatchTest, MultiplyAccumulateFusesAddAndProduct)
{
    RnsPoly acc = Random(6), a = Random(7), b = Random(8);
    acc.ToEvaluation();
    a.ToEvaluation();
    b.ToEvaluation();
    RnsPoly expect = acc + a * b;
    acc.MultiplyAccumulate(a, b);
    ExpectEqualRows(acc, expect);
}

TEST_F(RnsBatchTest, ScalarShoupPathMatchesNativeReference)
{
    const RnsPoly a = Random(9);
    const u64 scalar = 0x123456789abcdefULL;
    const RnsPoly out = a.ScalarMul(scalar);
    for (std::size_t i = 0; i < np_; ++i) {
        const u64 p = ctx_->basis().prime(i);
        for (std::size_t k = 0; k < n_; ++k) {
            EXPECT_EQ(out.row(i)[k],
                      MulModNative(a.row(i)[k], scalar % p, p));
        }
    }
}

TEST_F(RnsBatchTest, PerRowScalarShoupPathMatchesNativeReference)
{
    RnsPoly a = Random(10);
    const RnsPoly original = a;
    std::vector<u64> scalars(np_);
    Xoshiro256 rng(11);
    for (auto &s : scalars) {
        s = rng.Next();
    }
    a.ScalarMulRowsInPlace(scalars);
    for (std::size_t i = 0; i < np_; ++i) {
        const u64 p = ctx_->basis().prime(i);
        for (std::size_t k = 0; k < n_; ++k) {
            EXPECT_EQ(a.row(i)[k],
                      MulModNative(original.row(i)[k], scalars[i] % p, p));
        }
    }
}

TEST_F(RnsBatchTest, ParallelExecutionBitIdenticalToSerial)
{
    // The pool determinism contract on the real workload: transforms
    // and every element-wise op give byte-identical results with 1
    // lane and with many lanes at grain 1 (always-dispatch).
    const RnsPoly a = Random(12);
    const RnsPoly b = Random(13);

    SetGlobalThreadCount(1);
    RnsPoly serial = RnsPoly::Multiply(a, b);
    RnsPoly serial_sum = a + b;

    SetGlobalThreadCount(4);
    SetParallelGrain(1);
    RnsPoly parallel = RnsPoly::Multiply(a, b);
    RnsPoly parallel_sum = a + b;

    ExpectEqualRows(serial, parallel);
    ExpectEqualRows(serial_sum, parallel_sum);
}

TEST_F(RnsBatchTest, RegistrySharesEnginesAcrossContexts)
{
    // A second context over the same basis must reuse the cached
    // engines rather than rebuilding twiddle tables.
    auto ctx2 = std::make_shared<RnsNttContext>(n_, ctx_->basis_ptr());
    for (std::size_t i = 0; i < np_; ++i) {
        EXPECT_EQ(&ctx_->engine(i), &ctx2->engine(i));
    }

    // Prefix (lower-level) bases share the prefix engines too.
    std::vector<u64> prefix(ctx_->basis().primes().begin(),
                            ctx_->basis().primes().begin() + 2);
    auto low = std::make_shared<RnsNttContext>(
        n_, std::make_shared<RnsBasis>(std::move(prefix)));
    EXPECT_EQ(&low->engine(0), &ctx_->engine(0));
    EXPECT_EQ(&low->engine(1), &ctx_->engine(1));
}

TEST_F(RnsBatchTest, MultiplyStillCorrectUnderParallelDispatch)
{
    SetGlobalThreadCount(4);
    SetParallelGrain(1);
    std::vector<BigInt> ca(n_), cb(n_);
    ca[1] = BigInt::FromDecimal("123456789123456789");
    cb[2] = BigInt::FromDecimal("987654321987654321");
    const RnsPoly a(ctx_, ca);
    const RnsPoly b(ctx_, cb);
    const RnsPoly c = RnsPoly::Multiply(a, b);
    EXPECT_EQ(c.CoefficientAsBigInt(3), ca[1] * cb[2]);
    EXPECT_TRUE(c.CoefficientAsBigInt(0).IsZero());
}

}  // namespace
}  // namespace hentt
