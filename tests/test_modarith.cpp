/** Unit and property tests for common/modarith. */

#include <gtest/gtest.h>

#include "common/modarith.h"
#include "common/primegen.h"
#include "common/random.h"

namespace hentt {
namespace {

TEST(AddMod, Basic)
{
    EXPECT_EQ(AddMod(3, 4, 11), 7u);
    EXPECT_EQ(AddMod(7, 4, 11), 0u);
    EXPECT_EQ(AddMod(10, 10, 11), 9u);
    EXPECT_EQ(AddMod(0, 0, 11), 0u);
}

TEST(SubMod, Basic)
{
    EXPECT_EQ(SubMod(5, 3, 11), 2u);
    EXPECT_EQ(SubMod(3, 5, 11), 9u);
    EXPECT_EQ(SubMod(0, 1, 11), 10u);
    EXPECT_EQ(SubMod(4, 4, 11), 0u);
}

TEST(MulModNative, MatchesSmallCases)
{
    EXPECT_EQ(MulModNative(7, 8, 11), 1u);
    EXPECT_EQ(MulModNative(0, 8, 11), 0u);
    EXPECT_EQ(MulModNative(10, 10, 11), 1u);
}

TEST(MulModNative, LargeOperandsNoOverflow)
{
    const u64 p = (u64{1} << 61) + 20 * (1 << 13) + 1;  // not prime; fine
    const u64 a = p - 1;
    // (p-1)^2 mod p == 1.
    EXPECT_EQ(MulModNative(a, a, p), 1u);
}

TEST(PowMod, Basic)
{
    EXPECT_EQ(PowMod(2, 10, 1000000007ULL), 1024u);
    EXPECT_EQ(PowMod(5, 0, 13), 1u);
    EXPECT_EQ(PowMod(0, 5, 13), 0u);
    EXPECT_EQ(PowMod(7, 1, 13), 7u);
}

TEST(PowMod, FermatLittleTheorem)
{
    const u64 p = 1000000007ULL;
    for (u64 a : {u64{2}, u64{12345}, u64{999999999}}) {
        EXPECT_EQ(PowMod(a, p - 1, p), 1u);
    }
}

TEST(InvMod, RoundTrip)
{
    const u64 p = 1000000007ULL;
    Xoshiro256 rng(42);
    for (int i = 0; i < 50; ++i) {
        const u64 a = rng.NextBelow(p - 1) + 1;
        const u64 inv = InvMod(a, p);
        EXPECT_EQ(MulModNative(a, inv, p), 1u);
    }
}

TEST(ValidateModulus, RejectsOutOfRange)
{
    EXPECT_THROW(ValidateModulus(0), std::invalid_argument);
    EXPECT_THROW(ValidateModulus(1), std::invalid_argument);
    EXPECT_THROW(ValidateModulus(u64{1} << 62), std::invalid_argument);
    EXPECT_NO_THROW(ValidateModulus(2));
    EXPECT_NO_THROW(ValidateModulus((u64{1} << 62) - 1));
}

class ShoupTest : public ::testing::TestWithParam<u64> {};

TEST_P(ShoupTest, AgreesWithNative)
{
    const u64 p = GetParam();
    Xoshiro256 rng(p);
    for (int i = 0; i < 500; ++i) {
        const u64 b = rng.NextBelow(p);
        const u64 w = rng.NextBelow(p);
        const u64 w_bar = ShoupPrecompute(w, p);
        EXPECT_EQ(MulModShoup(b, w, w_bar, p), MulModNative(b, w, p));
    }
}

TEST_P(ShoupTest, LazyStaysBelowTwoP)
{
    const u64 p = GetParam();
    Xoshiro256 rng(p ^ 0x1234);
    for (int i = 0; i < 500; ++i) {
        const u64 b = rng.NextBelow(2 * p);  // lazy input range
        const u64 w = rng.NextBelow(p);
        const u64 w_bar = ShoupPrecompute(w, p);
        const u64 r = MulModShoupLazy(b, w, w_bar, p);
        EXPECT_LT(r, 2 * p);
        EXPECT_EQ(r % p, MulModNative(b % p, w, p));
    }
}

class BarrettTest : public ::testing::TestWithParam<u64> {};

TEST_P(BarrettTest, AgreesWithNative)
{
    const u64 p = GetParam();
    const BarrettReducer barrett(p);
    Xoshiro256 rng(p ^ 0xbead);
    for (int i = 0; i < 500; ++i) {
        const u64 a = rng.Next() % p;
        const u64 b = rng.Next() % p;
        EXPECT_EQ(barrett.MulMod(a, b), MulModNative(a, b, p));
    }
}

TEST_P(BarrettTest, Reduces128BitValues)
{
    const u64 p = GetParam();
    const BarrettReducer barrett(p);
    Xoshiro256 rng(p ^ 0xfeed);
    for (int i = 0; i < 200; ++i) {
        const u128 z = (static_cast<u128>(rng.Next() % p) << 64) |
                       rng.Next();
        EXPECT_EQ(barrett.Reduce(z), static_cast<u64>(z % p));
    }
}

// Shoup/Barrett only require 1 < p < 2^62, not primality.
const u64 kTestModuli[] = {
    3, 257, 65537, 1000000007ULL,
    1152921504606584833ULL,       // ~2^60
    (u64{1} << 62) - 57,          // near the cap
};

INSTANTIATE_TEST_SUITE_P(Moduli, ShoupTest,
                         ::testing::ValuesIn(kTestModuli));
INSTANTIATE_TEST_SUITE_P(Moduli, BarrettTest,
                         ::testing::ValuesIn(kTestModuli));

TEST(Mul128High, KnownValues)
{
    EXPECT_EQ(Mul128High(0, 0), u128{0});
    // (2^64)^2 = 2^128 -> high half 1... using (2^64) representable as
    // u128: high128(2^64 * 2^64) == 1.
    const u128 x = static_cast<u128>(1) << 64;
    EXPECT_EQ(Mul128High(x, x), u128{1});
    // Max * Max: (2^128-1)^2 = 2^256 - 2^129 + 1 -> high = 2^128 - 2.
    const u128 m = ~u128{0};
    EXPECT_EQ(Mul128High(m, m), m - 1);
}

TEST(ShoupPrecompute, MatchesDefinition)
{
    const u64 p = 769;  // small prime: brute-force check
    for (u64 w = 0; w < p; ++w) {
        const u128 expect = (static_cast<u128>(w) << 64) / p;
        EXPECT_EQ(ShoupPrecompute(w, p), static_cast<u64>(expect));
    }
}

}  // namespace
}  // namespace hentt
