/**
 * Dispatch-layer diagnostics: the availability introspection
 * (AvailabilityReason / DescribeAvailability), the ForceBackend error
 * contract (the message must say WHY the backend is out and list every
 * alternative), and DescribeKernelTable — the per-slot map that makes
 * borrowed-slot fallbacks visible. The AVX-512 no-borrowed-slots
 * acceptance criterion is pinned here as a test, not just prose.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "simd/simd_backend.h"

namespace hentt {
namespace {

/** DescribeKernelTable lines as (slot, tu) pairs. */
std::vector<std::pair<std::string, std::string>>
ParseTable(simd::Backend backend)
{
    std::vector<std::pair<std::string, std::string>> rows;
    std::istringstream in(simd::DescribeKernelTable(backend));
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t arrow = line.find(" -> ");
        EXPECT_NE(arrow, std::string::npos) << line;
        rows.emplace_back(line.substr(0, arrow), line.substr(arrow + 4));
    }
    return rows;
}

TEST(SimdDispatchDiag, EveryBackendHasANameAndAReason)
{
    for (const simd::Backend b : simd::kAllBackends) {
        EXPECT_STRNE(simd::BackendName(b), "unknown");
        const std::string reason = simd::AvailabilityReason(b);
        EXPECT_FALSE(reason.empty());
        if (simd::BackendAvailable(b)) {
            EXPECT_EQ(reason, "available") << simd::BackendName(b);
        } else {
            // The reason must distinguish compiled-out from CPUID.
            EXPECT_TRUE(reason.find("not compiled in") !=
                            std::string::npos ||
                        reason.find("CPU lacks") != std::string::npos)
                << simd::BackendName(b) << ": " << reason;
        }
    }
    EXPECT_TRUE(simd::BackendAvailable(simd::Backend::kScalar));
}

TEST(SimdDispatchDiag, DescribeAvailabilityListsEveryBackend)
{
    const std::string listing = simd::DescribeAvailability();
    for (const simd::Backend b : simd::kAllBackends) {
        EXPECT_NE(listing.find(std::string(simd::BackendName(b)) + ": "),
                  std::string::npos)
            << listing;
    }
}

TEST(SimdDispatchDiag, ForceBackendErrorNamesReasonAndAlternatives)
{
    for (const simd::Backend b : simd::kAllBackends) {
        if (simd::BackendAvailable(b)) {
            continue;
        }
        try {
            simd::ForceBackend(b);
            FAIL() << "ForceBackend(" << simd::BackendName(b)
                   << ") should have thrown";
        } catch (const std::invalid_argument &e) {
            const std::string msg = e.what();
            EXPECT_NE(msg.find(simd::BackendName(b)), std::string::npos)
                << msg;
            EXPECT_NE(msg.find(simd::AvailabilityReason(b)),
                      std::string::npos)
                << msg;
            // The full availability listing rides along, so the user
            // sees what they CAN request.
            EXPECT_NE(msg.find("scalar: available"), std::string::npos)
                << msg;
        }
    }
}

TEST(SimdDispatchDiag, KernelTableHasSixteenNamedSlots)
{
    for (const simd::Backend b : simd::kAllBackends) {
        const auto rows = ParseTable(b);
        ASSERT_EQ(rows.size(), 16u) << simd::BackendName(b);
        EXPECT_EQ(rows.front().first, "fwd_butterfly_rows");
        EXPECT_EQ(rows.back().first, "divide_round_rows");
        for (const auto &[slot, tu] : rows) {
            EXPECT_NE(tu, "unknown")
                << simd::BackendName(b) << " " << slot;
        }
    }
}

TEST(SimdDispatchDiag, ScalarTableResolvesEverySlotToScalar)
{
    for (const auto &[slot, tu] : ParseTable(simd::Backend::kScalar)) {
        EXPECT_EQ(tu, "scalar") << slot;
    }
}

TEST(SimdDispatchDiag, Avx2TableShowsItsBorrowedBarrettFamily)
{
    if (!simd::BackendAvailable(simd::Backend::kAvx2)) {
        GTEST_SKIP() << "AVX2 backend unavailable on this host";
    }
    for (const auto &[slot, tu] : ParseTable(simd::Backend::kAvx2)) {
        // Production AVX2 verdict (PR 4): Shoup family native, Barrett
        // family + divide_round borrowed from the scalar reference —
        // and the map must SHOW the borrowing.
        if (slot == "mul_barrett_rows" || slot == "mul_acc_barrett_rows" ||
            slot == "reduce_barrett_rows" || slot == "tensor_rows" ||
            slot == "divide_round_rows") {
            EXPECT_EQ(tu, "scalar") << slot;
        } else {
            EXPECT_EQ(tu, "avx2") << slot;
        }
    }
}

TEST(SimdDispatchDiag, Avx512TableHasNoBorrowedSlots)
{
    if (!simd::BackendAvailable(simd::Backend::kAvx512)) {
        GTEST_SKIP() << "AVX-512 backend unavailable on this host";
    }
    // The tentpole acceptance criterion: all 16 slots native.
    for (const auto &[slot, tu] : ParseTable(simd::Backend::kAvx512)) {
        EXPECT_EQ(tu, "avx512") << slot;
    }
}

TEST(SimdDispatchDiag, IfmaTableSwapsExactlyTheMulFamily)
{
    if (!simd::BackendAvailable(simd::Backend::kAvx512Ifma)) {
        GTEST_SKIP() << "AVX-512 IFMA backend unavailable on this host";
    }
    for (const auto &[slot, tu] :
         ParseTable(simd::Backend::kAvx512Ifma)) {
        if (slot == "mul_barrett_rows" || slot == "mul_acc_barrett_rows" ||
            slot == "tensor_rows") {
            EXPECT_EQ(tu, "avx512ifma") << slot;
        } else {
            EXPECT_EQ(tu, "avx512") << slot;
        }
    }
}

TEST(SimdDispatchDiag, NeonTableMirrorsTheAvx2Verdict)
{
    if (!simd::BackendAvailable(simd::Backend::kNeon)) {
        GTEST_SKIP() << "NEON backend unavailable on this host";
    }
    for (const auto &[slot, tu] : ParseTable(simd::Backend::kNeon)) {
        if (slot == "mul_barrett_rows" || slot == "mul_acc_barrett_rows" ||
            slot == "reduce_barrett_rows" || slot == "tensor_rows" ||
            slot == "divide_round_rows") {
            EXPECT_EQ(tu, "scalar") << slot;
        } else {
            EXPECT_EQ(tu, "neon") << slot;
        }
    }
}

TEST(SimdDispatchDiag, IfmaIsNeverAutoSelected)
{
    // The ablation tier is explicit-only: whatever the environment and
    // CPU, automatic resolution must not land on it.
    simd::ResetBackend();
    EXPECT_NE(simd::ActiveBackend(), simd::Backend::kAvx512Ifma);
}

}  // namespace
}  // namespace hentt
