/** Tests for RNS polynomials (the paper's batched-NTT workload type). */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "poly/rns_poly.h"

namespace hentt {
namespace {

/** Element-wise row equality (rows are span views into flat storage). */
::testing::AssertionResult
RowsEqual(const RnsPoly &a, const RnsPoly &b, std::size_t i)
{
    if (std::ranges::equal(a.row(i), b.row(i))) {
        return ::testing::AssertionSuccess();
    }
    return ::testing::AssertionFailure() << "row " << i << " differs";
}

class RnsPolyTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto basis = std::make_shared<RnsBasis>(n_, 45, np_);
        ctx_ = std::make_shared<RnsNttContext>(n_, std::move(basis));
    }

    RnsPoly
    Random(u64 seed) const
    {
        RnsPoly poly(ctx_);
        Xoshiro256 rng(seed);
        for (std::size_t i = 0; i < np_; ++i) {
            const u64 p = ctx_->basis().prime(i);
            for (u64 &x : poly.row(i)) {
                x = rng.NextBelow(p);
            }
        }
        return poly;
    }

    static constexpr std::size_t n_ = 64;
    static constexpr std::size_t np_ = 4;
    std::shared_ptr<RnsNttContext> ctx_;
};

TEST_F(RnsPolyTest, DomainTrackingEnforced)
{
    RnsPoly poly = Random(1);
    EXPECT_EQ(poly.domain(), RnsPoly::Domain::kCoefficient);
    EXPECT_THROW(poly.ToCoefficient(), std::logic_error);
    poly.ToEvaluation();
    EXPECT_EQ(poly.domain(), RnsPoly::Domain::kEvaluation);
    EXPECT_THROW(poly.ToEvaluation(), std::logic_error);
    EXPECT_THROW(poly.CoefficientAsBigInt(0), std::logic_error);
    poly.ToCoefficient();
    EXPECT_EQ(poly.domain(), RnsPoly::Domain::kCoefficient);
}

TEST_F(RnsPolyTest, TransformRoundTrip)
{
    RnsPoly poly = Random(2);
    const RnsPoly original = poly;
    poly.ToEvaluation();
    poly.ToCoefficient();
    for (std::size_t i = 0; i < np_; ++i) {
        EXPECT_TRUE(RowsEqual(poly, original, i));
    }
}

TEST_F(RnsPolyTest, HadamardRequiresEvaluationDomain)
{
    RnsPoly a = Random(3);
    RnsPoly b = Random(4);
    EXPECT_THROW(a * b, std::logic_error);
}

TEST_F(RnsPolyTest, MultiplyMatchesBigIntSchoolbook)
{
    // Multiply two sparse polynomials with known big-int coefficients
    // and check one CRT-recomposed output coefficient.
    std::vector<BigInt> ca(n_), cb(n_);
    ca[1] = BigInt::FromDecimal("123456789123456789");
    cb[2] = BigInt::FromDecimal("987654321987654321");
    const RnsPoly a(ctx_, ca);
    const RnsPoly b(ctx_, cb);
    const RnsPoly c = RnsPoly::Multiply(a, b);
    // X^1 * X^2 = X^3 with coefficient product (fits well under Q).
    EXPECT_EQ(c.CoefficientAsBigInt(3),
              ca[1] * cb[2]);
    EXPECT_TRUE(c.CoefficientAsBigInt(0).IsZero());
}

TEST_F(RnsPolyTest, NegacyclicWraparound)
{
    std::vector<BigInt> ca(n_), cb(n_);
    ca[n_ - 1] = BigInt(u64{3});
    cb[2] = BigInt(u64{5});
    const RnsPoly a(ctx_, ca);
    const RnsPoly b(ctx_, cb);
    const RnsPoly c = RnsPoly::Multiply(a, b);
    // X^{N-1} * X^2 = -X^1: coefficient is Q - 15.
    EXPECT_EQ(c.CoefficientAsBigInt(1),
              ctx_->basis().product() - BigInt(u64{15}));
}

TEST_F(RnsPolyTest, AddSubScalarOps)
{
    const RnsPoly a = Random(5);
    const RnsPoly b = Random(6);
    const RnsPoly sum = a + b;
    const RnsPoly diff = sum - b;
    for (std::size_t i = 0; i < np_; ++i) {
        EXPECT_TRUE(RowsEqual(diff, a, i));
    }
    const RnsPoly tripled = a.ScalarMul(3);
    const RnsPoly via_add = a + a + a;
    for (std::size_t i = 0; i < np_; ++i) {
        EXPECT_TRUE(RowsEqual(tripled, via_add, i));
    }
}

TEST_F(RnsPolyTest, BigIntCoefficientRoundTrip)
{
    Xoshiro256 rng(77);
    std::vector<BigInt> coeffs(n_);
    for (auto &c : coeffs) {
        c = BigInt(rng.Next());
    }
    const RnsPoly poly(ctx_, coeffs);
    const auto back = poly.ToBigIntCoefficients();
    for (std::size_t k = 0; k < n_; ++k) {
        EXPECT_EQ(back[k], coeffs[k]);
    }
}

TEST_F(RnsPolyTest, RejectsCoefficientsAboveQ)
{
    std::vector<BigInt> coeffs(n_);
    coeffs[0] = ctx_->basis().product();
    EXPECT_THROW(RnsPoly(ctx_, coeffs), std::invalid_argument);
}

TEST_F(RnsPolyTest, LazyForwardIsCongruentAndFoldsToStrict)
{
    RnsPoly strict = Random(31);
    RnsPoly lazy = strict;
    strict.ToEvaluation();
    lazy.ToEvaluationLazy();
    EXPECT_TRUE(lazy.lazy());
    EXPECT_EQ(lazy.domain(), RnsPoly::Domain::kEvaluation);
    for (std::size_t i = 0; i < np_; ++i) {
        const u64 p = ctx_->basis().prime(i);
        for (const u64 x : lazy.row(i)) {
            EXPECT_LT(x, 4 * p);
        }
    }
    lazy.ReduceLazy();
    EXPECT_FALSE(lazy.lazy());
    for (std::size_t i = 0; i < np_; ++i) {
        EXPECT_TRUE(RowsEqual(lazy, strict, i));
    }
}

TEST_F(RnsPolyTest, LazyHadamardBitIdenticalToStrict)
{
    const RnsPoly a = Random(32);
    const RnsPoly b = Random(33);
    RnsPoly sa = a, sb = b;
    sa.ToEvaluation();
    sb.ToEvaluation();
    const RnsPoly strict = sa * sb;
    RnsPoly la = a, lb = b;
    la.ToEvaluationLazy();
    lb.ToEvaluationLazy();
    const RnsPoly prod = la * lb;  // Barrett tolerates [0, 4p) inputs
    EXPECT_FALSE(prod.lazy());
    for (std::size_t i = 0; i < np_; ++i) {
        EXPECT_TRUE(RowsEqual(prod, strict, i));
    }
}

TEST_F(RnsPolyTest, AdditiveOpsFoldLazyOperands)
{
    const RnsPoly a = Random(34);
    const RnsPoly b = Random(35);
    RnsPoly sa = a, sb = b;
    sa.ToEvaluation();
    sb.ToEvaluation();
    RnsPoly strict = sa;
    strict += sb;
    RnsPoly la = a, lb = b;
    la.ToEvaluationLazy();
    lb.ToEvaluationLazy();
    la += lb;  // both operands fold before AddMod
    EXPECT_FALSE(la.lazy());
    for (std::size_t i = 0; i < np_; ++i) {
        EXPECT_TRUE(RowsEqual(la, strict, i));
    }
}

TEST_F(RnsPolyTest, LazyRoundTripThroughInverse)
{
    const RnsPoly a = Random(36);
    RnsPoly lazy = a;
    lazy.ToEvaluationLazy();
    lazy.ToCoefficient();  // folds, then inverts
    for (std::size_t i = 0; i < np_; ++i) {
        EXPECT_TRUE(RowsEqual(lazy, a, i));
    }
}

TEST_F(RnsPolyTest, BatchTransformsMatchIndividual)
{
    RnsPoly a = Random(37);
    RnsPoly b = Random(38);
    RnsPoly c = Random(39);
    RnsPoly ba = a, bb = b, bc = c;
    a.ToEvaluation();
    b.ToEvaluation();
    c.ToEvaluation();

    RnsPoly *polys[] = {&ba, &bb, &bc};
    RnsPoly::BatchToEvaluation(polys);
    for (std::size_t i = 0; i < np_; ++i) {
        EXPECT_TRUE(RowsEqual(ba, a, i));
        EXPECT_TRUE(RowsEqual(bb, b, i));
        EXPECT_TRUE(RowsEqual(bc, c, i));
    }
    EXPECT_THROW(RnsPoly::BatchToEvaluation(polys), std::logic_error);

    a.ToCoefficient();
    RnsPoly::BatchToCoefficient(polys);
    for (std::size_t i = 0; i < np_; ++i) {
        EXPECT_TRUE(RowsEqual(ba, a, i));
    }
    EXPECT_THROW(RnsPoly::BatchToCoefficient(polys), std::logic_error);
}

}  // namespace
}  // namespace hentt
