/** Unit tests for the minimal BigInt. */

#include <gtest/gtest.h>

#include "rns/bigint.h"

namespace hentt {
namespace {

TEST(BigInt, ZeroAndSmallValues)
{
    BigInt zero;
    EXPECT_TRUE(zero.IsZero());
    EXPECT_EQ(zero.BitLength(), 0u);
    EXPECT_EQ(zero.ToDecimal(), "0");

    BigInt five(u64{5});
    EXPECT_FALSE(five.IsZero());
    EXPECT_EQ(five.BitLength(), 3u);
    EXPECT_EQ(five.ToU64(), 5u);
    EXPECT_EQ(five.ToDecimal(), "5");
}

TEST(BigInt, NormalizesLeadingZeroLimbs)
{
    BigInt x(std::vector<u64>{7, 0, 0});
    EXPECT_EQ(x.limb_count(), 1u);
    EXPECT_EQ(x, BigInt(u64{7}));
}

TEST(BigInt, AdditionWithCarry)
{
    const BigInt max64(~u64{0});
    const BigInt sum = max64 + BigInt(u64{1});
    EXPECT_EQ(sum.limb_count(), 2u);
    EXPECT_EQ(sum.limbs()[0], 0u);
    EXPECT_EQ(sum.limbs()[1], 1u);
    EXPECT_EQ(sum.ToDecimal(), "18446744073709551616");
}

TEST(BigInt, SubtractionWithBorrow)
{
    const BigInt two64 = BigInt(~u64{0}) + BigInt(u64{1});
    const BigInt x = two64 - BigInt(u64{1});
    EXPECT_EQ(x, BigInt(~u64{0}));
    EXPECT_THROW(BigInt(u64{1}) - BigInt(u64{2}), std::underflow_error);
}

TEST(BigInt, MultiplicationKnownValue)
{
    // (2^64 - 1)^2 = 2^128 - 2^65 + 1.
    const BigInt m(~u64{0});
    const BigInt sq = m * m;
    EXPECT_EQ(sq.limb_count(), 2u);
    EXPECT_EQ(sq.limbs()[0], 1u);
    EXPECT_EQ(sq.limbs()[1], ~u64{0} - 1);
}

TEST(BigInt, MulByZero)
{
    EXPECT_TRUE((BigInt(u64{123}) * BigInt{}).IsZero());
    EXPECT_TRUE((BigInt{} * u64{55}).IsZero());
}

TEST(BigInt, DivModByWord)
{
    const BigInt x = BigInt::FromDecimal("123456789012345678901234567890");
    auto [q, r] = x.DivMod(1000000007ULL);
    EXPECT_EQ(q * 1000000007ULL + BigInt(r), x);
    EXPECT_LT(r, 1000000007ULL);
    EXPECT_THROW(x.DivMod(0), std::domain_error);
}

TEST(BigInt, DecimalRoundTrip)
{
    const std::string digits =
        "113078212145816597093331040047546785012958969400039613319782796882"
        "7271";
    const BigInt x = BigInt::FromDecimal(digits);
    EXPECT_EQ(x.ToDecimal(), digits);
    EXPECT_THROW(BigInt::FromDecimal("12a"), std::invalid_argument);
}

TEST(BigInt, Comparisons)
{
    const BigInt a = BigInt::FromDecimal("340282366920938463463374607431768211456");  // 2^128
    const BigInt b = BigInt::FromDecimal("340282366920938463463374607431768211455");  // 2^128-1
    EXPECT_LT(b, a);
    EXPECT_GT(a, b);
    EXPECT_EQ(a, a);
    EXPECT_LT(BigInt{}, b);
}

TEST(BigInt, ShiftLeft)
{
    const BigInt one(u64{1});
    EXPECT_EQ((one << 0), one);
    EXPECT_EQ((one << 64).limb_count(), 2u);
    EXPECT_EQ((one << 128).ToDecimal(),
              "340282366920938463463374607431768211456");
    const BigInt x(u64{0xff});
    EXPECT_EQ((x << 4), BigInt(u64{0xff0}));
}

TEST(BigInt, BitLength)
{
    EXPECT_EQ(BigInt(u64{1}).BitLength(), 1u);
    EXPECT_EQ(BigInt(u64{255}).BitLength(), 8u);
    EXPECT_EQ((BigInt(u64{1}) << 200).BitLength(), 201u);
}

TEST(BigInt, MulDivInverseProperty)
{
    BigInt x = BigInt::FromDecimal("98765432109876543210987654321");
    for (u64 d : {u64{2}, u64{17}, u64{65537}, ~u64{0} - 58}) {
        const BigInt prod = x * d;
        auto [q, r] = prod.DivMod(d);
        EXPECT_EQ(q, x);
        EXPECT_EQ(r, 0u);
    }
}

}  // namespace
}  // namespace hentt
