/** Tests for the lazy-reduction (Harvey) butterfly pipeline. */

#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/modarith.h"
#include "common/primegen.h"
#include "common/random.h"
#include "ntt/ntt_engine.h"
#include "ntt/ntt_lazy.h"
#include "ntt/ntt_radix2.h"

namespace hentt {
namespace {

class LazyNttTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>>
{
  protected:
    void
    SetUp() override
    {
        n_ = std::get<0>(GetParam());
        p_ = GenerateNttPrimes(2 * n_, std::get<1>(GetParam()), 1)[0];
        table_ = std::make_unique<TwiddleTable>(n_, p_);
    }

    std::vector<u64>
    Random(u64 seed) const
    {
        Xoshiro256 rng(seed);
        std::vector<u64> v(n_);
        for (u64 &x : v) {
            x = rng.NextBelow(p_);
        }
        return v;
    }

    std::size_t n_;
    u64 p_;
    std::unique_ptr<TwiddleTable> table_;
};

TEST_P(LazyNttTest, ForwardBitExactVsStrict)
{
    const auto a = Random(1);
    std::vector<u64> strict = a, lazy = a;
    NttRadix2(strict, *table_);
    NttRadix2Lazy(lazy, *table_);
    EXPECT_EQ(lazy, strict);
}

TEST_P(LazyNttTest, InverseBitExactVsStrict)
{
    auto a = Random(2);
    NttRadix2(a, *table_);  // valid evaluation-domain input
    std::vector<u64> strict = a, lazy = a;
    InttRadix2(strict, *table_);
    InttRadix2Lazy(lazy, *table_);
    EXPECT_EQ(lazy, strict);
}

TEST_P(LazyNttTest, LazyRoundTrip)
{
    const auto a = Random(3);
    std::vector<u64> v = a;
    NttRadix2Lazy(v, *table_);
    InttRadix2Lazy(v, *table_);
    EXPECT_EQ(v, a);
}

TEST_P(LazyNttTest, AcceptsLazyRangeInputs)
{
    // Inputs up to 4p - 1 must yield the same residues as their reduced
    // forms (the Algo. 2 precondition: 0 <= A, B < 4p).
    if (p_ >= (u64{1} << 61)) {
        GTEST_SKIP() << "4p would overflow for this prime";
    }
    Xoshiro256 rng(4);
    std::vector<u64> unreduced(n_), reduced(n_);
    for (std::size_t i = 0; i < n_; ++i) {
        unreduced[i] = rng.NextBelow(4 * p_);
        reduced[i] = unreduced[i] % p_;
    }
    NttRadix2Lazy(unreduced, *table_);
    NttRadix2(reduced, *table_);
    EXPECT_EQ(unreduced, reduced);
}

TEST_P(LazyNttTest, FusedWalkBitExactVsUnfused)
{
    // The fused radix-4 stage walker must be bit-identical to the
    // radix-2 walk on the ACTIVE backend — raw keep-range outputs
    // compared, so the lazy [0, 4p) representatives must agree, not
    // merely the residues. Lazy-range inputs stress the chained
    // butterfly bounds.
    if (p_ >= (u64{1} << 61)) {
        GTEST_SKIP() << "4p would overflow for this prime";
    }
    Xoshiro256 rng(6);
    std::vector<u64> lazy_in(n_);
    for (u64 &x : lazy_in) {
        x = rng.NextBelow(4 * p_);
    }
    std::vector<u64> fused = lazy_in, unfused = lazy_in;
    NttRadix2LazyKeepRange(fused, *table_);
    NttRadix2LazyKeepRangeUnfused(unfused, *table_);
    EXPECT_EQ(fused, unfused);

    // Strict-range inputs through the folding entry points.
    const auto a = Random(7);
    std::vector<u64> f2 = a, u2 = a;
    NttRadix2Lazy(f2, *table_);
    NttRadix2LazyUnfused(u2, *table_);
    EXPECT_EQ(f2, u2);

    // Inverse walkers on a valid evaluation-domain input.
    std::vector<u64> ev = a;
    NttRadix2(ev, *table_);
    std::vector<u64> fi = ev, ui = ev;
    InttRadix2Lazy(fi, *table_);
    InttRadix2LazyUnfused(ui, *table_);
    EXPECT_EQ(fi, ui);
    EXPECT_EQ(fi, a);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LazyNttTest,
    // 32 and 128 pin the odd-log2 sizes where the fused walker must
    // finish with one radix-2 tail stage.
    ::testing::Combine(::testing::Values(8, 32, 64, 128, 512, 2048),
                       ::testing::Values(30u, 50u, 60u)));

TEST(LazyNtt, FusedWalkerDispatchCount)
{
    // The pass-count contract of the fused walker: an N-point lazy
    // transform issues ceil(log2 N / 2) butterfly stage-kernel
    // dispatches (each covering two levels; odd log2 N adds the
    // radix-2 tail which the ceil already counts), not log2 N.
    const struct {
        std::size_t n;
        u64 expected;  // ceil(log2 n / 2)
    } cases[] = {{4096, 6}, {128, 4}, {32, 3}};
    for (const auto &c : cases) {
        const u64 p = GenerateNttPrimes(2 * c.n, 50, 1)[0];
        const TwiddleTable table(c.n, p);
        Xoshiro256 rng(8);
        std::vector<u64> v(c.n);
        for (u64 &x : v) {
            x = rng.NextBelow(p);
        }
        ResetNttOpCounts();
        NttRadix2LazyKeepRange(v, table);
        EXPECT_EQ(GetNttOpCounts().butterfly_stages, c.expected)
            << "forward N=" << c.n;
        ResetNttOpCounts();
        InttRadix2Lazy(v, table);
        EXPECT_EQ(GetNttOpCounts().butterfly_stages, c.expected)
            << "inverse N=" << c.n;
        // The ablation walker still pays one dispatch (and one pass)
        // per level.
        ResetNttOpCounts();
        NttRadix2LazyKeepRangeUnfused(v, table);
        EXPECT_EQ(GetNttOpCounts().butterfly_stages,
                  static_cast<u64>(Log2Exact(c.n)))
            << "unfused N=" << c.n;
    }
}

TEST(LazyNtt, ForceLazyWalkReroutesEveryConsumerEntryPoint)
{
    // The LazyWalk hook is the seam the deep-circuit bit-identity
    // sweeps and bench/sweep_params flip: forcing kRadix2 must route
    // the *default* entry points (the ones NttEngine/RnsPoly call)
    // through the unfused walker — observable via the dispatch counter
    // (log2 N dispatches instead of ceil(log2 N / 2)) — and the
    // results must stay bit-identical to the fused walk.
    constexpr std::size_t n = 256;
    const u64 p = GenerateNttPrimes(2 * n, 50, 1)[0];
    const TwiddleTable table(n, p);
    Xoshiro256 rng(9);
    std::vector<u64> v(n);
    for (u64 &x : v) {
        x = rng.NextBelow(p);
    }

    ASSERT_EQ(ActiveLazyWalk(), LazyWalk::kFusedRadix4);
    std::vector<u64> fused = v;
    NttRadix2Lazy(fused, table);

    ForceLazyWalk(LazyWalk::kRadix2);
    EXPECT_EQ(ActiveLazyWalk(), LazyWalk::kRadix2);
    std::vector<u64> unfused = v;
    ResetNttOpCounts();
    NttRadix2Lazy(unfused, table);
    EXPECT_EQ(GetNttOpCounts().butterfly_stages,
              static_cast<u64>(Log2Exact(n)));
    EXPECT_EQ(fused, unfused);

    ResetNttOpCounts();
    InttRadix2Lazy(unfused, table);
    EXPECT_EQ(GetNttOpCounts().butterfly_stages,
              static_cast<u64>(Log2Exact(n)));

    ForceLazyWalk(LazyWalk::kFusedRadix4);
    ResetNttOpCounts();
    std::vector<u64> refused = v;
    NttRadix2Lazy(refused, table);
    EXPECT_EQ(GetNttOpCounts().butterfly_stages,
              static_cast<u64>((Log2Exact(n) + 1) / 2));
    EXPECT_EQ(refused, fused);
    ResetLazyWalk();  // never leak the override into other tests
}

TEST(LazyButterfly, StaysInRange)
{
    const u64 p = GenerateNttPrimes(2 * 64, 60, 1)[0];
    const TwiddleTable table(64, p);
    Xoshiro256 rng(5);
    for (int i = 0; i < 2000; ++i) {
        u64 a = rng.NextBelow(4 * p);
        u64 b = rng.NextBelow(4 * p);
        const u64 a0 = a % p, b0 = b % p;
        const std::size_t idx = 1 + rng.NextBelow(63);
        LazyButterfly(a, b, table.w(idx), table.w_shoup(idx), p);
        EXPECT_LT(a, 4 * p);
        EXPECT_LT(b, 4 * p);
        const u64 v = MulModNative(b0, table.w(idx), p);
        EXPECT_EQ(a % p, AddMod(a0, v, p));
        EXPECT_EQ(b % p, SubMod(a0, v, p));
    }
}

TEST(LazyNtt, RejectsMismatchedSpan)
{
    const u64 p = GenerateNttPrimes(2 * 64, 40, 1)[0];
    const TwiddleTable table(64, p);
    std::vector<u64> wrong(32, 0);
    EXPECT_THROW(NttRadix2Lazy(wrong, table), std::invalid_argument);
    EXPECT_THROW(InttRadix2Lazy(wrong, table), std::invalid_argument);
}

}  // namespace
}  // namespace hentt
