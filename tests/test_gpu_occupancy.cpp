/** Tests for the occupancy calculator and register calibration tables. */

#include <gtest/gtest.h>

#include "gpu/occupancy.h"

namespace hentt::gpu {
namespace {

DeviceSpec
Dev()
{
    return DeviceSpec::TitanV();
}

TEST(Occupancy, LightKernelReachesFullOccupancy)
{
    KernelResources res;
    res.regs_per_thread = 26;
    res.threads_per_block = 256;
    res.grid_blocks = 100000;  // machine-filling grid
    const auto occ = ComputeOccupancy(Dev(), res);
    EXPECT_DOUBLE_EQ(occ.resource_occupancy, 1.0);
    EXPECT_DOUBLE_EQ(occ.effective_occupancy, 1.0);
    EXPECT_EQ(occ.spilled_regs_per_thread, 0u);
}

TEST(Occupancy, RegisterPressureCapsBlocks)
{
    KernelResources res;
    res.regs_per_thread = 100;  // the radix-32 NTT calibration point
    res.threads_per_block = 256;
    res.grid_blocks = 100000;
    const auto occ = ComputeOccupancy(Dev(), res);
    // 65536 / (100 * 256) = 2 blocks -> 512 threads of 2048.
    EXPECT_EQ(occ.blocks_per_sm, 2u);
    EXPECT_DOUBLE_EQ(occ.resource_occupancy, 0.25);
    EXPECT_EQ(occ.limiter, OccupancyLimiter::kRegisters);
}

TEST(Occupancy, SpillBeyondPerThreadCap)
{
    KernelResources res;
    res.regs_per_thread = 296;  // radix-64 NTT calibration point
    res.threads_per_block = 256;
    res.grid_blocks = 100000;
    const auto occ = ComputeOccupancy(Dev(), res);
    EXPECT_EQ(occ.spilled_regs_per_thread, 296u - 255u);
    EXPECT_EQ(occ.blocks_per_sm, 1u);
}

TEST(Occupancy, SharedMemoryLimits)
{
    KernelResources res;
    res.regs_per_thread = 24;
    res.threads_per_block = 128;
    res.smem_per_block = 32 * 1024;
    res.grid_blocks = 100000;
    const auto occ = ComputeOccupancy(Dev(), res);
    EXPECT_EQ(occ.blocks_per_sm, 3u);  // 96KB / 32KB
    EXPECT_EQ(occ.limiter, OccupancyLimiter::kSharedMemory);
}

TEST(Occupancy, SmallGridCannotFillMachine)
{
    KernelResources res;
    res.regs_per_thread = 26;
    res.threads_per_block = 256;
    res.grid_blocks = 80;  // one block per SM: 256/2048 occupancy
    const auto occ = ComputeOccupancy(Dev(), res);
    EXPECT_DOUBLE_EQ(occ.resource_occupancy, 1.0);
    EXPECT_NEAR(occ.effective_occupancy, 80.0 * 256 / (80.0 * 2048),
                1e-12);
    EXPECT_EQ(occ.limiter, OccupancyLimiter::kGridSize);
}

TEST(Occupancy, RejectsEmptyLaunch)
{
    KernelResources res;
    res.threads_per_block = 0;
    EXPECT_THROW(ComputeOccupancy(Dev(), res), std::invalid_argument);
}

TEST(RegisterTables, PaperAnchors)
{
    // NTT's best radix is 16, DFT's is 32 (Figs. 4/5): NTT must be
    // noticeably more register-hungry at radix 32.
    EXPECT_GT(NttRegisterCost(32), DftRegisterCost(32));
    // Paper: NTT occupancy at radix-32 is ~31% below DFT's.
    const double ntt_occ = 65536.0 / NttRegisterCost(32);
    const double dft_occ = 65536.0 / DftRegisterCost(32);
    EXPECT_LT(ntt_occ / dft_occ, 0.8);
    // Radix-64/128 NTT spills (> 255 regs/thread).
    EXPECT_GT(NttRegisterCost(64), 255u);
    EXPECT_GT(NttRegisterCost(128), 255u);
    // Monotone growth in the radix.
    for (std::size_t r = 2; r < 128; r *= 2) {
        EXPECT_LT(NttRegisterCost(r), NttRegisterCost(2 * r));
        EXPECT_LT(DftRegisterCost(r), DftRegisterCost(2 * r));
    }
    EXPECT_THROW(NttRegisterCost(3), std::invalid_argument);
    EXPECT_THROW(DftRegisterCost(256), std::invalid_argument);
}

TEST(RegisterTables, SmemKernelCosts)
{
    EXPECT_LT(SmemKernelRegisterCost(2), SmemKernelRegisterCost(4));
    EXPECT_LT(SmemKernelRegisterCost(4), SmemKernelRegisterCost(8));
    EXPECT_THROW(SmemKernelRegisterCost(16), std::invalid_argument);
}

}  // namespace
}  // namespace hentt::gpu
