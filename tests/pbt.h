/**
 * @file
 * Minimal property-based testing adapter over gtest.
 *
 * Shape follows the parameterized-gtest adapter pattern: a property is
 * an ordinary function taking a seeded RNG, and a thin harness runs it
 * across many derived seeds, printing a reproduction line when a case
 * fails. No generator/shrinker machinery — the properties in this repo
 * draw their own structured inputs from the RNG, and a failing case is
 * reproduced exactly by re-running with the printed seed.
 *
 * Environment contract (the CI extended leg and local repro both key
 * off it):
 *   HENTT_PBT_SEED   absolute base seed for every property (decimal).
 *                    Default: a fixed per-binary constant, so plain
 *                    `ctest` runs are deterministic.
 *   HENTT_PBT_CASES  either an absolute case count ("5000") or a
 *                    multiplier ("x10") applied to each property's
 *                    default — the form CI uses to scale every suite
 *                    without knowing per-property defaults.
 *
 * Usage:
 *   HENTT_PBT_PROP(MySuite, RoundTrips, 200, (Xoshiro256 &rng, u64 i))
 *   {
 *       ... EXPECT_* on values drawn from rng ...
 *   }
 */

#ifndef HENTT_TESTS_PBT_H
#define HENTT_TESTS_PBT_H

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/random.h"

namespace hentt::pbt {

/** Resolved run parameters for one property. */
struct Params {
    u64 seed;
    u64 cases;
};

namespace detail {

inline u64
ParseU64(const char *s, u64 fallback)
{
    if (s == nullptr || *s == '\0') {
        return fallback;
    }
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    return (end != nullptr && *end == '\0') ? static_cast<u64>(v)
                                            : fallback;
}

}  // namespace detail

/**
 * Resolve seed and case count for a property with the given default
 * case count. HENTT_PBT_SEED overrides the base seed; HENTT_PBT_CASES
 * is an absolute count, or a multiplier when prefixed with 'x' (the
 * extended-CI form: HENTT_PBT_CASES=x10 runs every property at 10x its
 * default depth).
 */
inline Params
Resolve(u64 default_cases)
{
    constexpr u64 kDefaultSeed = 0x9e3779b97f4a7c15ull;
    Params p{detail::ParseU64(std::getenv("HENTT_PBT_SEED"),
                              kDefaultSeed),
             default_cases};
    if (const char *c = std::getenv("HENTT_PBT_CASES")) {
        if (c[0] == 'x' || c[0] == 'X') {
            p.cases = default_cases * detail::ParseU64(c + 1, 1);
        } else {
            p.cases = detail::ParseU64(c, default_cases);
        }
    }
    if (p.cases == 0) {
        p.cases = 1;
    }
    return p;
}

/**
 * Run @p body for @p cases randomized cases. Each case gets an
 * independent Xoshiro256 seeded from SplitMix64(base_seed + index), so
 * any single case reproduces without replaying its predecessors:
 * failing output prints the exact HENTT_PBT_SEED / case index pair and
 * stops at the first failing case rather than flooding the log.
 */
template <typename Body>
void
RunProp(const char *suite, const char *name, u64 default_cases,
        Body &&body)
{
    const Params p = Resolve(default_cases);
    std::printf("[ pbt      ] %s.%s: seed=%llu cases=%llu "
                "(override: HENTT_PBT_SEED / HENTT_PBT_CASES)\n",
                suite, name,
                static_cast<unsigned long long>(p.seed),
                static_cast<unsigned long long>(p.cases));
    for (u64 i = 0; i < p.cases; ++i) {
        u64 state = p.seed + i;
        Xoshiro256 rng(SplitMix64(state));
        {
            SCOPED_TRACE("pbt case " + std::to_string(i) + " of " +
                         std::to_string(p.cases) +
                         " (repro: HENTT_PBT_SEED=" +
                         std::to_string(p.seed) + ")");
            body(rng, i);
        }
        if (::testing::Test::HasFailure()) {
            std::printf("[ pbt FAIL ] %s.%s: case %llu — rerun with "
                        "HENTT_PBT_SEED=%llu HENTT_PBT_CASES=%llu\n",
                        suite, name,
                        static_cast<unsigned long long>(i),
                        static_cast<unsigned long long>(p.seed),
                        static_cast<unsigned long long>(i + 1));
            return;
        }
    }
}

}  // namespace hentt::pbt

/**
 * Declare a gtest TEST that runs `body` as a randomized property.
 * `rng_args` must be a parenthesized parameter list whose first
 * parameter is a `hentt::Xoshiro256 &` and whose second is the case
 * index, e.g. (hentt::Xoshiro256 &rng, hentt::u64 case_index).
 */
#define HENTT_PBT_PROP(suite, name, default_cases, ...)                 \
    static void HenttPbtProp##suite##name __VA_ARGS__;                  \
    TEST(suite, name)                                                   \
    {                                                                   \
        ::hentt::pbt::RunProp(#suite, #name, (default_cases),           \
                              &HenttPbtProp##suite##name);              \
    }                                                                   \
    static void HenttPbtProp##suite##name __VA_ARGS__

#endif  // HENTT_TESTS_PBT_H
