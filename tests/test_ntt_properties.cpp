/**
 * Property-based sweeps over (N, prime size, seed): the algebraic
 * invariants every implementation must satisfy, exercised across the
 * whole implementation matrix.
 */

#include <gtest/gtest.h>

#include "common/bitops.h"
#include "common/modarith.h"
#include "common/primegen.h"
#include "common/random.h"
#include "ntt/ntt_engine.h"
#include "ntt/ntt_naive.h"

namespace hentt {
namespace {

struct PropertyCase {
    std::size_t n;
    unsigned bits;
    u64 seed;
};

void
PrintTo(const PropertyCase &c, std::ostream *os)
{
    *os << "n=" << c.n << " bits=" << c.bits << " seed=" << c.seed;
}

class NttPropertyTest : public ::testing::TestWithParam<PropertyCase>
{
  protected:
    void
    SetUp() override
    {
        const auto &c = GetParam();
        p_ = GenerateNttPrimes(2 * c.n, c.bits, 1)[0];
        engine_ = std::make_unique<NttEngine>(c.n, p_, 64);
        rng_ = std::make_unique<Xoshiro256>(c.seed);
    }

    std::vector<u64>
    Random() const
    {
        std::vector<u64> v(GetParam().n);
        for (u64 &x : v) {
            x = rng_->NextBelow(p_);
        }
        return v;
    }

    u64 p_;
    std::unique_ptr<NttEngine> engine_;
    std::unique_ptr<Xoshiro256> rng_;
};

TEST_P(NttPropertyTest, ForwardInverseIdentity)
{
    const auto a = Random();
    std::vector<u64> v = a;
    engine_->Forward(v);
    engine_->Inverse(v);
    EXPECT_EQ(v, a);
}

TEST_P(NttPropertyTest, ConvolutionTheorem)
{
    // INTT(NTT(a) . NTT(b)) equals the naive negacyclic convolution.
    const std::size_t n = GetParam().n;
    const auto a = Random();
    const auto b = Random();
    const auto fast = engine_->Multiply(a, b);

    std::vector<u64> naive(n, 0);
    for (std::size_t k = 0; k < n; ++k) {
        u64 acc = 0;
        for (std::size_t i = 0; i <= k; ++i) {
            acc = AddMod(acc, MulModNative(a[i], b[k - i], p_), p_);
        }
        for (std::size_t i = k + 1; i < n; ++i) {
            acc = SubMod(acc, MulModNative(a[i], b[n + k - i], p_), p_);
        }
        naive[k] = acc;
    }
    EXPECT_EQ(fast, naive);
}

TEST_P(NttPropertyTest, ScalingCommutes)
{
    const auto a = Random();
    const u64 c = rng_->NextBelow(p_ - 1) + 1;
    std::vector<u64> scaled(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        scaled[i] = MulModNative(a[i], c, p_);
    }
    std::vector<u64> fa = a, fscaled = scaled;
    engine_->Forward(fa);
    engine_->Forward(fscaled);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(fscaled[i], MulModNative(fa[i], c, p_));
    }
}

TEST_P(NttPropertyTest, ParsevalLikeEnergyPreservedByRoundTrip)
{
    // Not true Parseval (no inner-product preservation mod p), but the
    // multiset of coefficients must return exactly after fwd+inv.
    const auto a = Random();
    std::vector<u64> v = a;
    engine_->Forward(v, NttAlgorithm::kHighRadix, 8);
    engine_->Inverse(v);
    EXPECT_EQ(v, a);
}

TEST_P(NttPropertyTest, NaiveOracleAgreesOnSmallSizes)
{
    const std::size_t n = GetParam().n;
    if (n > 512) {
        GTEST_SKIP() << "O(N^2) oracle too slow";
    }
    const auto a = Random();
    const auto expect =
        NaiveNegacyclicNtt(a, engine_->table().psi(), p_);
    std::vector<u64> got = a;
    engine_->Forward(got);
    const unsigned bits = Log2Exact(n);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got[i], expect[BitReverse(i, bits)]);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NttPropertyTest,
    ::testing::Values(PropertyCase{16, 30, 1}, PropertyCase{16, 60, 2},
                      PropertyCase{64, 40, 3}, PropertyCase{128, 50, 4},
                      PropertyCase{256, 60, 5}, PropertyCase{512, 55, 6},
                      PropertyCase{1024, 60, 7},
                      PropertyCase{2048, 60, 8}));

}  // namespace
}  // namespace hentt
