/** Tests for the batched execution layer's thread pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/int128.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace hentt {
namespace {

/** RAII restore of the global pool/grain configuration. */
class PoolConfigGuard
{
  public:
    PoolConfigGuard() : lanes_(GlobalThreadCount()), grain_(ParallelGrain())
    {
    }
    ~PoolConfigGuard()
    {
        SetGlobalThreadCount(lanes_);
        SetParallelGrain(grain_);
    }

  private:
    std::size_t lanes_;
    std::size_t grain_;
};

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(1000);
    auto body = [&hits](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    };
    pool.Run(
        hits.size(),
        [](void *ctx, std::size_t i) {
            (*static_cast<decltype(body) *>(ctx))(i);
        },
        &body);
    for (const auto &h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPool, ZeroWorkersRunsSerially)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.thread_count(), 1u);
    std::vector<int> hits(64, 0);
    auto body = [&hits](std::size_t i) { hits[i] += 1; };
    pool.Run(
        hits.size(),
        [](void *ctx, std::size_t i) {
            (*static_cast<decltype(body) *>(ctx))(i);
        },
        &body);
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ThreadPool, ReusableAcrossManyJobs)
{
    ThreadPool pool(2);
    for (int round = 0; round < 50; ++round) {
        std::atomic<long long> sum{0};
        auto body = [&sum](std::size_t i) {
            sum.fetch_add(static_cast<long long>(i),
                          std::memory_order_relaxed);
        };
        pool.Run(
            101,
            [](void *ctx, std::size_t i) {
                (*static_cast<decltype(body) *>(ctx))(i);
            },
            &body);
        EXPECT_EQ(sum.load(), 100LL * 101 / 2);
    }
}

TEST(ThreadPool, PropagatesFirstException)
{
    PoolConfigGuard guard;
    SetGlobalThreadCount(4);
    SetParallelGrain(1);
    EXPECT_THROW(
        ParallelFor(64, 1024,
                    [](std::size_t i) {
                        if (i == 13) {
                            throw std::runtime_error("boom");
                        }
                    }),
        std::runtime_error);
}

TEST(ThreadPool, AggregatesEveryConcurrentFailure)
{
    // Regression: first-exception-wins reporting dropped all but one
    // task error. With several tasks failing concurrently, the caller
    // must receive a ParallelError carrying every failure — and every
    // non-failing index must still have run (containment, not abort).
    PoolConfigGuard guard;
    SetGlobalThreadCount(4);
    SetParallelGrain(1);
    constexpr std::size_t kCount = 64;
    constexpr std::size_t kFailures = 5;  // indices 0, 13, 26, 39, 52
    std::vector<std::atomic<int>> hits(kCount);
    try {
        ParallelFor(kCount, 1024, [&](std::size_t i) {
            if (i % 13 == 0) {
                throw std::runtime_error("boom " + std::to_string(i));
            }
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        FAIL() << "did not throw";
    } catch (const ParallelError &e) {
        EXPECT_EQ(e.report().size(), kFailures);
        for (const Status &s : e.report().errors) {
            EXPECT_FALSE(s.ok());
            EXPECT_NE(s.message().find("boom"), std::string::npos);
            // Provenance: each failure names its pool task index.
            ASSERT_FALSE(s.frames().empty());
            EXPECT_NE(s.frames()[0].find("pool task"),
                      std::string::npos);
        }
    }
    for (std::size_t i = 0; i < kCount; ++i) {
        EXPECT_EQ(hits[i].load(), i % 13 == 0 ? 0 : 1) << i;
    }
}

TEST(ThreadPool, SingleFailureRethrowsTheOriginalException)
{
    // Backward compatibility: exactly one failing task hands the caller
    // the original exception object, not a wrapper.
    PoolConfigGuard guard;
    SetGlobalThreadCount(4);
    SetParallelGrain(1);
    try {
        ParallelFor(64, 1024, [](std::size_t i) {
            if (i == 13) {
                throw std::invalid_argument("exactly thirteen");
            }
        });
        FAIL() << "did not throw";
    } catch (const std::invalid_argument &e) {
        EXPECT_STREQ(e.what(), "exactly thirteen");
    }
}

TEST(ParallelFor, GrainKeepsSmallJobsSerial)
{
    PoolConfigGuard guard;
    SetGlobalThreadCount(4);
    SetParallelGrain(1u << 20);  // everything below a mebi-element: serial
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(8);
    ParallelFor(seen.size(), 16, [&](std::size_t i) {
        seen[i] = std::this_thread::get_id();
    });
    for (const auto &id : seen) {
        EXPECT_EQ(id, caller);
    }
}

TEST(ParallelFor, NestedCallsFallBackToSerial)
{
    PoolConfigGuard guard;
    SetGlobalThreadCount(4);
    SetParallelGrain(1);
    std::vector<std::atomic<int>> hits(16 * 16);
    ParallelFor(16, 1024, [&](std::size_t i) {
        ParallelFor(16, 1024, [&](std::size_t j) {
            hits[i * 16 + j].fetch_add(1, std::memory_order_relaxed);
        });
    });
    for (const auto &h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ParallelFor, GrainProductSaturatesInsteadOfWrapping)
{
    // Regression: count * work_per_item used to be a plain wrapping
    // multiply, so a huge degree x limb product (e.g. 2^33 items of
    // 2^32 elements) could wrap to a tiny value and silently flip the
    // whole job onto the serial path. The heuristic must saturate: any
    // overflowing product reads as "huge job", which always dispatches.
    PoolConfigGuard guard;
    SetGlobalThreadCount(4);
    SetParallelGrain(1u << 20);

    constexpr std::size_t kHugeCount = std::size_t{1} << 33;
    constexpr std::size_t kHugeWork = std::size_t{1} << 32;
    static_assert(kHugeCount * kHugeWork == 0,  // the wrapped value
                  "chosen sizes must overflow size_t");
    EXPECT_EQ(SaturatingMul(kHugeCount, kHugeWork), ~std::size_t{0});
    EXPECT_TRUE(ParallelWouldDispatch(kHugeCount, kHugeWork));

    // Saturation must not disturb the small-job cutoff.
    EXPECT_FALSE(ParallelWouldDispatch(8, 16));
    EXPECT_TRUE(ParallelWouldDispatch(2, 1u << 20));
    EXPECT_FALSE(ParallelWouldDispatch(1, ~std::size_t{0}));

    // And a job whose product overflows must still execute every
    // index exactly once through the pool.
    std::vector<std::atomic<int>> hits(64);
    ParallelFor(hits.size(), ~std::size_t{0} / 2, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto &h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ParallelFor, MatchesSerialResultBitExactly)
{
    // The determinism contract: a parallel elementwise job writing
    // disjoint rows produces exactly the serial output.
    PoolConfigGuard guard;
    const std::size_t rows = 8, cols = 512;
    std::vector<u64> serial(rows * cols), parallel(rows * cols);

    SetGlobalThreadCount(1);
    ParallelFor(rows, cols, [&](std::size_t i) {
        for (std::size_t k = 0; k < cols; ++k) {
            serial[i * cols + k] = (i * 1315423911u) ^ (k * 2654435761u);
        }
    });

    SetGlobalThreadCount(4);
    SetParallelGrain(1);
    ParallelFor(rows, cols, [&](std::size_t i) {
        for (std::size_t k = 0; k < cols; ++k) {
            parallel[i * cols + k] = (i * 1315423911u) ^ (k * 2654435761u);
        }
    });
    EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace hentt
