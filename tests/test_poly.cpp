/** Tests for the per-prime polynomial ring type. */

#include <gtest/gtest.h>

#include "poly/poly.h"

namespace hentt {
namespace {

constexpr u64 kP = 97;

TEST(Poly, ConstructionValidation)
{
    EXPECT_NO_THROW(Poly(8, kP));
    EXPECT_THROW(Poly(6, kP), std::invalid_argument);
    EXPECT_THROW(Poly(8, 1), std::invalid_argument);
    EXPECT_THROW(Poly(std::vector<u64>{1, 2, 3}, kP),
                 std::invalid_argument);
}

TEST(Poly, CoefficientsReducedOnConstruction)
{
    const Poly p({kP + 3, 2 * kP, 5, 0}, kP);
    EXPECT_EQ(p[0], 3u);
    EXPECT_EQ(p[1], 0u);
    EXPECT_EQ(p[2], 5u);
}

TEST(Poly, AddSubNegate)
{
    const Poly a({1, 2, 3, 4}, kP);
    const Poly b({96, 95, 94, 93}, kP);
    const Poly sum = a + b;
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(sum[i], 0u);  // b == -a
    }
    EXPECT_EQ(a - b, a + a);
    EXPECT_EQ(a.Negate(), b);
    EXPECT_EQ(Poly(4, kP).Negate(), Poly(4, kP));
}

TEST(Poly, ScalarMultiply)
{
    const Poly a({1, 2, 3, 4}, kP);
    const Poly twice = a * 2;
    EXPECT_EQ(twice, a + a);
    EXPECT_EQ(a * 0, Poly(4, kP));
    EXPECT_EQ(a * (kP + 1), a);  // scalar reduced mod p
}

TEST(Poly, MulByMonomialWrapsNegacyclically)
{
    const Poly a({1, 2, 3, 4}, kP);
    // X * a: (–4, 1, 2, 3) since X^4 = -1.
    const Poly shifted = a.MulByMonomial(1);
    EXPECT_EQ(shifted[0], kP - 4);
    EXPECT_EQ(shifted[1], 1u);
    EXPECT_EQ(shifted[2], 2u);
    EXPECT_EQ(shifted[3], 3u);
    // Shifting by 2N is the identity (two sign flips).
    EXPECT_EQ(a.MulByMonomial(8), a);
    // Shifting by N negates.
    EXPECT_EQ(a.MulByMonomial(4), a.Negate());
}

TEST(Poly, CrossRingOperationsThrow)
{
    const Poly a(8, kP);
    const Poly b(4, kP);
    const Poly c(8, 89);
    EXPECT_THROW(a + b, std::invalid_argument);
    EXPECT_THROW(a - c, std::invalid_argument);
}

}  // namespace
}  // namespace hentt
