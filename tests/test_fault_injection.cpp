/**
 * Chaos suite for the fault-containment layer: thousands of randomized
 * failpoint schedules pushed through Mul→Relin→ModSwitch pipelines
 * (both the BgvScheme::Try* entry points and HeOpGraph futures).
 *
 * Invariants asserted on EVERY schedule:
 *   - no crash, no unwinding past the public entry points;
 *   - every failure surfaces as a Status with non-empty provenance;
 *   - an op that reports success produced the bit-identical result of
 *     the never-faulted reference run;
 *   - after DisarmAll, a replay of the same pipeline is bit-identical.
 *
 * The schedule seed comes from HENTT_CHAOS_SEED (round count from
 * HENTT_CHAOS_ROUNDS) and is printed, so any CI failure is replayable.
 * Injection tests skip when the library was built without
 * -DHENTT_FAILPOINTS=ON; the registry/arming API is still exercised.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "common/failpoint.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "he/bgv.h"
#include "he/he_graph.h"

namespace hentt::he {
namespace {

u64
EnvU64(const char *name, u64 fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr || *value == '\0') {
        return fallback;
    }
    return std::strtoull(value, nullptr, 10);
}

HeParams
ChainParams()
{
    HeParams params;
    params.degree = 64;
    params.prime_count = 4;
    params.prime_bits = 50;
    params.plain_modulus = 257;
    return params;
}

class FaultInjectionTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fp::ResetAll();
        ctx_ = std::make_shared<HeContext>(ChainParams());
        scheme_ = std::make_unique<BgvScheme>(ctx_, /*seed=*/13);
        sk_.emplace(scheme_->KeyGen());
        rk_.emplace(scheme_->MakeRelinKey(*sk_));
        a_.emplace(scheme_->Encrypt(*sk_, RandomPlain(1)));
        b_.emplace(scheme_->Encrypt(*sk_, RandomPlain(2)));
        c_.emplace(scheme_->Encrypt(*sk_, RandomPlain(3)));
    }

    void
    TearDown() override
    {
        fp::ResetAll();  // never leak armed sites into another test
    }

    Plaintext
    RandomPlain(u64 seed) const
    {
        Xoshiro256 rng(seed);
        Plaintext m(ctx_->degree());
        for (u64 &x : m) {
            x = rng.NextBelow(ctx_->params().plain_modulus);
        }
        return m;
    }

    /** The chaos pipeline through the non-throwing scheme API. */
    Result<Ciphertext>
    TryPipeline() const
    {
        Result<Ciphertext> prod = scheme_->TryMul(*a_, *b_);
        if (!prod.ok()) {
            return Result<Ciphertext>(prod.status());
        }
        Result<Ciphertext> relin = scheme_->TryRelinearize(*prod, *rk_);
        if (!relin.ok()) {
            return Result<Ciphertext>(relin.status());
        }
        return scheme_->TryModSwitch(*relin);
    }

    static bool
    BitIdentical(const Ciphertext &x, const Ciphertext &y)
    {
        if (x.parts.size() != y.parts.size()) {
            return false;
        }
        for (std::size_t j = 0; j < x.parts.size(); ++j) {
            if (x.parts[j].prime_count() != y.parts[j].prime_count() ||
                x.parts[j].domain() != y.parts[j].domain()) {
                return false;
            }
            for (std::size_t l = 0; l < x.parts[j].prime_count(); ++l) {
                if (!std::ranges::equal(x.parts[j].row(l),
                                        y.parts[j].row(l))) {
                    return false;
                }
            }
        }
        return true;
    }

    /** An error leaving the containment layer must always say where it
     *  came from. */
    static void
    ExpectContainedError(const Status &status, u64 round)
    {
        EXPECT_NE(status.code(), ErrorCode::kOk) << "round " << round;
        EXPECT_FALSE(status.frames().empty())
            << "round " << round << ": " << status.ToString();
        EXPECT_FALSE(status.message().empty()) << "round " << round;
    }

    std::shared_ptr<HeContext> ctx_;
    std::unique_ptr<BgvScheme> scheme_;
    std::optional<SecretKey> sk_;
    std::optional<RelinKey> rk_;
    std::optional<Ciphertext> a_, b_, c_;
};

constexpr const char *kAllSites[] = {
    fp::kArenaAlloc, fp::kPoolTask, fp::kSimdDispatch,
    fp::kNttStage,   fp::kNttRangeGuard,
};

TEST_F(FaultInjectionTest, RandomizedFaultSchedulesAreContained)
{
    if (!fp::kCompiledIn) {
        GTEST_SKIP() << "failpoint sites compiled out of this build";
    }
    const u64 seed = EnvU64("HENTT_CHAOS_SEED", 0x5EED2026u);
    const u64 rounds = EnvU64("HENTT_CHAOS_ROUNDS", 1000);
    std::cout << "[ chaos  ] seed=" << seed << " rounds=" << rounds
              << " (override: HENTT_CHAOS_SEED, HENTT_CHAOS_ROUNDS)\n";

    // Never-faulted references for both pipeline spellings.
    const Ciphertext ref_scalar = scheme_->ModSwitch(
        scheme_->Relinearize(scheme_->Mul(*a_, *b_), *rk_));
    const Ciphertext ref_ab =
        scheme_->RelinModSwitch(scheme_->Mul(*a_, *b_), *rk_);
    const Ciphertext ref_cc =
        scheme_->RelinModSwitch(scheme_->Mul(*c_, *c_), *rk_);

    constexpr double kProbs[] = {0.01, 0.05, 0.25, 1.0};
    Xoshiro256 rng(seed);
    u64 ok_rounds = 0, fault_rounds = 0, partial_graphs = 0;

    for (u64 round = 0; round < rounds; ++round) {
        // Random schedule: each site independently armed ~1/3 of the
        // time at a random probability; sometimes a deterministic
        // single-shot on an NTT stage boundary rides along.
        fp::ResetAll();
        fp::SeedRng(rng.Next());
        for (const char *site : kAllSites) {
            if (rng.NextBelow(3) == 0) {
                fp::Arm(site, kProbs[rng.NextBelow(4)]);
            }
        }
        if (rng.NextBelow(4) == 0) {
            fp::ArmNth(fp::kNttStage, 1 + rng.NextBelow(8));
        }

        if (round % 2 == 0) {
            // Scalar spelling: Try* entry points.
            const Result<Ciphertext> r = TryPipeline();
            if (r.ok()) {
                ++ok_rounds;
                EXPECT_TRUE(BitIdentical(*r, ref_scalar))
                    << "round " << round
                    << ": fault-free success diverged";
            } else {
                ++fault_rounds;
                ExpectContainedError(r.status(), round);
            }
        } else {
            // Graph spelling: two independent fused chains; a fault in
            // one must not take down the other.
            HeOpGraph graph(*scheme_, &*rk_);
            const CtFuture x = graph.Input(*a_);
            const CtFuture y = graph.Input(*b_);
            const CtFuture z = graph.Input(*c_);
            const CtFuture ab = graph.MulRelinModSwitch(x, y);
            const CtFuture cc = graph.MulRelinModSwitch(z, z);
            (void)graph.ExecuteStatus();  // contained by contract
            const Result<const Ciphertext *> r_ab = ab.TryGet();
            const Result<const Ciphertext *> r_cc = cc.TryGet();
            if (r_ab.ok()) {
                EXPECT_TRUE(BitIdentical(**r_ab, ref_ab))
                    << "round " << round;
            } else {
                ExpectContainedError(r_ab.status(), round);
            }
            if (r_cc.ok()) {
                EXPECT_TRUE(BitIdentical(**r_cc, ref_cc))
                    << "round " << round;
            } else {
                ExpectContainedError(r_cc.status(), round);
            }
            if (r_ab.ok() && r_cc.ok()) {
                ++ok_rounds;
            } else {
                ++fault_rounds;
                if (r_ab.ok() != r_cc.ok()) {
                    ++partial_graphs;  // one chain survived the fault
                }
            }
        }
        fp::DisarmAll();
    }

    std::cout << "[ chaos  ] ok=" << ok_rounds
              << " faulted=" << fault_rounds
              << " partial-graphs=" << partial_graphs << "\n";
    // A schedule mix where nothing ever fired (or nothing ever
    // succeeded) would mean the harness tests nothing.
    EXPECT_GT(ok_rounds, 0u);
    EXPECT_GT(fault_rounds, 0u);

    // No-fault replay after the storm: bit-identical on both paths.
    fp::ResetAll();
    const Result<Ciphertext> replay = TryPipeline();
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    EXPECT_TRUE(BitIdentical(*replay, ref_scalar));
    HeOpGraph graph(*scheme_, &*rk_);
    const CtFuture ab = graph.MulRelinModSwitch(graph.Input(*a_),
                                                graph.Input(*b_));
    EXPECT_TRUE(BitIdentical(ab.get(), ref_ab));
}

TEST_F(FaultInjectionTest, DepthRandomizedTowerSchedulesAreContained)
{
    if (!fp::kCompiledIn) {
        GTEST_SKIP() << "failpoint sites compiled out of this build";
    }
    // Deep-circuit chaos: walk a multiply-and-descend tower down the
    // whole modulus chain while a random failpoint schedule arms at a
    // random DEPTH — faults land mid-chain, not just on the first op.
    // Invariants per round: a fault never unwinds past the Try* entry
    // point, every error carries provenance, a round that completes
    // despite the storm is bit-identical to the never-faulted tower at
    // every level, and the post-storm replay is bit-identical too.
    const u64 seed = EnvU64("HENTT_CHAOS_SEED", 0xD331Cu);
    const u64 rounds = EnvU64("HENTT_CHAOS_ROUNDS", 1000) / 4;
    std::cout << "[ chaos  ] tower seed=" << seed << " rounds=" << rounds
              << " (override: HENTT_CHAOS_SEED, HENTT_CHAOS_ROUNDS)\n";
    const std::size_t depth = ctx_->params().prime_count - 1;

    // Never-faulted reference tower, one ciphertext per level.
    const auto run_tower =
        [&](std::size_t arm_at_step,
            Xoshiro256 *chaos) -> Result<std::vector<Ciphertext>> {
        std::vector<Ciphertext> levels;
        Ciphertext acc = *a_;
        Ciphertext factor = *b_;
        for (std::size_t d = 0; d < depth; ++d) {
            if (chaos != nullptr && d == arm_at_step) {
                fp::SeedRng(chaos->Next());
                for (const char *site : kAllSites) {
                    if (chaos->NextBelow(3) == 0) {
                        fp::Arm(site, chaos->NextBelow(2) ? 1.0 : 0.25);
                    }
                }
                if (chaos->NextBelow(3) == 0) {
                    fp::ArmNth(fp::kNttStage, 1 + chaos->NextBelow(8));
                }
            }
            Result<Ciphertext> prod = scheme_->TryMul(acc, factor);
            if (!prod.ok()) {
                return Result<std::vector<Ciphertext>>(prod.status());
            }
            Result<Ciphertext> down =
                scheme_->TryRelinModSwitch(*prod, *rk_);
            if (!down.ok()) {
                return Result<std::vector<Ciphertext>>(down.status());
            }
            Result<Ciphertext> aligned = scheme_->TryModSwitch(factor);
            if (!aligned.ok()) {
                return Result<std::vector<Ciphertext>>(aligned.status());
            }
            acc = *down;
            factor = *aligned;
            levels.push_back(acc);
        }
        return Result<std::vector<Ciphertext>>(std::move(levels));
    };

    const Result<std::vector<Ciphertext>> reference =
        run_tower(depth, nullptr);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();

    Xoshiro256 rng(seed);
    u64 ok_rounds = 0, fault_rounds = 0;
    for (u64 round = 0; round < rounds; ++round) {
        fp::ResetAll();
        const std::size_t arm_at = rng.NextBelow(depth);
        const Result<std::vector<Ciphertext>> r =
            run_tower(arm_at, &rng);
        if (r.ok()) {
            ++ok_rounds;
            ASSERT_EQ((*r).size(), (*reference).size()) << "round " << round;
            for (std::size_t d = 0; d < (*r).size(); ++d) {
                EXPECT_TRUE(BitIdentical((*r)[d], (*reference)[d]))
                    << "round " << round << " level " << d
                    << ": survived the storm but diverged";
            }
        } else {
            ++fault_rounds;
            ExpectContainedError(r.status(), round);
        }
        fp::DisarmAll();
    }
    std::cout << "[ chaos  ] tower ok=" << ok_rounds
              << " faulted=" << fault_rounds << "\n";
    EXPECT_GT(ok_rounds, 0u);
    EXPECT_GT(fault_rounds, 0u);

    // Post-storm replay: the whole tower, bit-identical at every level.
    fp::ResetAll();
    const Result<std::vector<Ciphertext>> replay =
        run_tower(depth, nullptr);
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    for (std::size_t d = 0; d < (*replay).size(); ++d) {
        EXPECT_TRUE(BitIdentical((*replay)[d], (*reference)[d]))
            << "replay level " << d;
    }
}

TEST_F(FaultInjectionTest, NttStageInjectionIsContainedAndSingleFire)
{
    if (!fp::kCompiledIn) {
        GTEST_SKIP() << "failpoint sites compiled out of this build";
    }
    const Ciphertext ref = scheme_->Mul(*a_, *b_);
    {
        const fp::Scoped arm(fp::kNttStage, std::uint64_t{1});
        const Result<Ciphertext> faulted = scheme_->TryMul(*a_, *b_);
        ASSERT_FALSE(faulted.ok());
        EXPECT_EQ(faulted.status().code(), ErrorCode::kInjected);
        bool site_named = false;
        for (const std::string &frame : faulted.status().frames()) {
            site_named = site_named ||
                         frame.find(fp::kNttStage) != std::string::npos;
        }
        EXPECT_TRUE(site_named) << faulted.status().ToString();
        EXPECT_EQ(fp::FireCount(fp::kNttStage), 1u);
        // Single-shot: the site disarmed itself, so the very next call
        // succeeds even inside the arming scope.
        const Result<Ciphertext> next = scheme_->TryMul(*a_, *b_);
        ASSERT_TRUE(next.ok()) << next.status().ToString();
        EXPECT_TRUE(BitIdentical(*next, ref));
    }
}

TEST_F(FaultInjectionTest, SimdDispatchDegradationIsBitIdentical)
{
    if (!fp::kCompiledIn) {
        GTEST_SKIP() << "failpoint sites compiled out of this build";
    }
    // simd.dispatch is a degrade-don't-fail site: every resolution
    // falls back to the scalar reference kernels, and the op must
    // SUCCEED with the bit-identical result (all backends compute the
    // same math).
    const Ciphertext ref = scheme_->RelinModSwitch(
        scheme_->Mul(*a_, *b_), *rk_);
    const fp::Scoped arm(fp::kSimdDispatch, 1.0);
    const Result<Ciphertext> prod = scheme_->TryMul(*a_, *b_);
    ASSERT_TRUE(prod.ok()) << prod.status().ToString();
    const Result<Ciphertext> degraded =
        scheme_->TryRelinModSwitch(*prod, *rk_);
    ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
    EXPECT_TRUE(BitIdentical(*degraded, ref));
    EXPECT_GT(fp::FireCount(fp::kSimdDispatch), 0u);
}

TEST_F(FaultInjectionTest, PoolTaskInjectionSurfacesAsStatus)
{
    if (!fp::kCompiledIn) {
        GTEST_SKIP() << "failpoint sites compiled out of this build";
    }
    const Ciphertext ref = scheme_->Mul(*a_, *b_);

    // Below-grain jobs take ParallelFor's serial path: the injection
    // fails fast and still comes back as a Status.
    {
        const fp::Scoped arm(fp::kPoolTask, 1.0);
        const Result<Ciphertext> faulted = scheme_->TryMul(*a_, *b_);
        ASSERT_FALSE(faulted.ok());
        EXPECT_EQ(faulted.status().code(), ErrorCode::kInjected);
        ExpectContainedError(faulted.status(), 0);
    }

    // Grain 1 forces the real pool dispatch: every task of the first
    // kernel fails, the pool aggregates all of them, and the Try entry
    // point folds the ParallelError into one Status whose message
    // carries each per-task provenance frame.
    const std::size_t lanes = GlobalThreadCount();
    const std::size_t grain = ParallelGrain();
    SetGlobalThreadCount(4);
    SetParallelGrain(1);
    {
        const fp::Scoped arm(fp::kPoolTask, 1.0);
        const Result<Ciphertext> faulted = scheme_->TryMul(*a_, *b_);
        ASSERT_FALSE(faulted.ok());
        EXPECT_EQ(faulted.status().code(), ErrorCode::kInjected);
        EXPECT_NE(faulted.status().message().find("tasks failed"),
                  std::string::npos)
            << faulted.status().ToString();
        EXPECT_NE(faulted.status().message().find("pool task"),
                  std::string::npos)
            << faulted.status().ToString();
    }
    SetGlobalThreadCount(lanes);
    SetParallelGrain(grain);

    const Result<Ciphertext> healed = scheme_->TryMul(*a_, *b_);
    ASSERT_TRUE(healed.ok()) << healed.status().ToString();
    EXPECT_TRUE(BitIdentical(*healed, ref));
}

TEST_F(FaultInjectionTest, TransientArenaFaultSelfHealsThroughBatchRetry)
{
    if (!fp::kCompiledIn) {
        GTEST_SKIP() << "failpoint sites compiled out of this build";
    }
    // A single-shot arena fault takes down the 2-wide fused batch; the
    // scheduler's batch-of-one retry re-runs both members, the site has
    // already disarmed itself, and BOTH chains complete bit-identically
    // — a transient fault heals instead of failing the wavefront.
    const Ciphertext ref_ab =
        scheme_->RelinModSwitch(scheme_->Mul(*a_, *b_), *rk_);
    const Ciphertext ref_cc =
        scheme_->RelinModSwitch(scheme_->Mul(*c_, *c_), *rk_);

    HeOpGraph graph(*scheme_, &*rk_);
    const CtFuture x = graph.Input(*a_);
    const CtFuture y = graph.Input(*b_);
    const CtFuture z = graph.Input(*c_);
    const CtFuture ab = graph.MulRelinModSwitch(x, y);
    const CtFuture cc = graph.MulRelinModSwitch(z, z);

    // Fire on the first arena draw the graph makes (the depth-1 Mul
    // batch interns its operands through NextPoly): the 2-wide batch
    // fails as a whole, then heals in the member retries.
    const fp::Scoped arm(fp::kArenaAlloc, std::uint64_t{1});
    EXPECT_NO_THROW(graph.Execute());
    EXPECT_EQ(fp::FireCount(fp::kArenaAlloc), 1u);
    ASSERT_TRUE(ab.status().ok()) << ab.status().ToString();
    ASSERT_TRUE(cc.status().ok()) << cc.status().ToString();
    EXPECT_TRUE(BitIdentical(ab.get(), ref_ab));
    EXPECT_TRUE(BitIdentical(cc.get(), ref_cc));
}

TEST_F(FaultInjectionTest, ArmFromEnvParsesScheduleAndIgnoresTypos)
{
    // The registry/env plumbing works in every build configuration;
    // only the injection sites themselves compile out.
    ASSERT_EQ(setenv("HENTT_FAILPOINTS",
                     "pool.task=0.25,bogus.site=0.5,arena.alloc=oops",
                     /*overwrite=*/1),
              0);
    ASSERT_EQ(setenv("HENTT_FP_SEED", "42", 1), 0);
    EXPECT_EQ(fp::ArmFromEnv(), 1u);
    EXPECT_TRUE(fp::Armed(fp::kPoolTask));
    EXPECT_FALSE(fp::Armed(fp::kArenaAlloc));
    unsetenv("HENTT_FAILPOINTS");
    unsetenv("HENTT_FP_SEED");
    fp::ResetAll();
}

}  // namespace
}  // namespace hentt::he
