/** Tests for the blocked high-radix NTT. */

#include <gtest/gtest.h>

#include "common/primegen.h"
#include "common/random.h"
#include "ntt/ntt_highradix.h"
#include "ntt/ntt_radix2.h"

namespace hentt {
namespace {

class HighRadixTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>>
{
  protected:
    void
    SetUp() override
    {
        n_ = std::get<0>(GetParam());
        radix_ = std::get<1>(GetParam());
        p_ = GenerateNttPrimes(2 * n_, 50, 1)[0];
        table_ = std::make_unique<TwiddleTable>(n_, p_);
    }

    std::size_t n_, radix_;
    u64 p_;
    std::unique_ptr<TwiddleTable> table_;
};

TEST_P(HighRadixTest, BitExactVsRadix2)
{
    if (radix_ > n_) {
        GTEST_SKIP() << "radix exceeds transform size";
    }
    Xoshiro256 rng(n_ * 131 + radix_);
    std::vector<u64> a(n_);
    for (u64 &x : a) {
        x = rng.NextBelow(p_);
    }
    std::vector<u64> reference = a;
    NttRadix2(reference, *table_);
    std::vector<u64> blocked = a;
    NttHighRadix(blocked, *table_, radix_);
    EXPECT_EQ(blocked, reference);
}

INSTANTIATE_TEST_SUITE_P(
    SizeRadixGrid, HighRadixTest,
    ::testing::Combine(::testing::Values(16, 64, 256, 1024, 4096),
                       ::testing::Values(2, 4, 8, 16, 32, 64, 128)));

TEST(HighRadixPassCount, MatchesCeilFormula)
{
    EXPECT_EQ(HighRadixPassCount(1 << 17, 2), 17u);
    EXPECT_EQ(HighRadixPassCount(1 << 17, 16), 5u);   // ceil(17/4)
    EXPECT_EQ(HighRadixPassCount(1 << 17, 32), 4u);   // ceil(17/5)
    EXPECT_EQ(HighRadixPassCount(1 << 16, 16), 4u);   // 16/4
    EXPECT_EQ(HighRadixPassCount(1 << 14, 128), 2u);  // ceil(14/7)
}

TEST(HighRadix, RejectsBadRadix)
{
    const std::size_t n = 64;
    const u64 p = GenerateNttPrimes(2 * n, 40, 1)[0];
    const TwiddleTable table(n, p);
    std::vector<u64> a(n, 1);
    EXPECT_THROW(NttHighRadix(a, table, 3), std::invalid_argument);
    EXPECT_THROW(NttHighRadix(a, table, 1), std::invalid_argument);
    EXPECT_THROW(NttHighRadix(a, table, 128), std::invalid_argument);
}

TEST(HighRadix, RadixEqualToNDegeneratesToSinglePass)
{
    const std::size_t n = 256;
    const u64 p = GenerateNttPrimes(2 * n, 40, 1)[0];
    const TwiddleTable table(n, p);
    Xoshiro256 rng(9);
    std::vector<u64> a(n);
    for (u64 &x : a) {
        x = rng.NextBelow(p);
    }
    std::vector<u64> reference = a;
    NttRadix2(reference, table);
    NttHighRadix(a, table, n);
    EXPECT_EQ(a, reference);
    EXPECT_EQ(HighRadixPassCount(n, n), 1u);
}

}  // namespace
}  // namespace hentt
