/**
 * Tests for the fused Relinearize→ModSwitch pipeline stage and the
 * scheme scratch arena: bit-identity against the unfused chain at
 * every level of the modulus chain, the machine-checked element-wise
 * pass saving (NttOpCounts), the HeOpGraph node kind, and the
 * steady-state zero-allocation contract.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <optional>
#include <string>
#include <thread>

#include "common/failpoint.h"
#include "common/modarith.h"
#include "common/status.h"
#include "he/ciphertext_batch.h"
#include "he/he_graph.h"
#include "he/scratch_arena.h"
#include "ntt/ntt_engine.h"
#include "poly/rns_poly.h"

// ---------------------------------------------------------------------
// Allocation counter: global operator new replacement (this test binary
// only) so the arena's steady-state zero-allocation claim is a test,
// not a comment. Mirrors bench_rns_batch's counter.
// ---------------------------------------------------------------------
namespace {
std::atomic<long long> g_alloc_count{0};
}

void *
operator new(std::size_t size)
{
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size)) {
        return p;
    }
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace hentt::he {
namespace {

constexpr std::size_t kNp = 4;

HeParams
ChainParams()
{
    HeParams params;
    params.degree = 64;
    params.prime_count = kNp;
    params.prime_bits = 50;
    params.plain_modulus = 257;
    return params;
}

class RelinModSwitchTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ctx_ = std::make_shared<HeContext>(ChainParams());
        scheme_ = std::make_unique<BgvScheme>(ctx_, /*seed=*/13);
        sk_.emplace(scheme_->KeyGen());
        rk_.emplace(scheme_->MakeRelinKey(*sk_));
    }

    Plaintext
    RandomPlain(u64 seed) const
    {
        Xoshiro256 rng(seed);
        Plaintext m(ctx_->degree());
        for (u64 &x : m) {
            x = rng.NextBelow(ctx_->params().plain_modulus);
        }
        return m;
    }

    /** Negacyclic product of plaintexts mod t (the oracle). */
    Plaintext
    PlainMul(const Plaintext &a, const Plaintext &b) const
    {
        const u64 t = ctx_->params().plain_modulus;
        const std::size_t n = ctx_->degree();
        Plaintext c(n, 0);
        for (std::size_t k = 0; k < n; ++k) {
            u64 acc = 0;
            for (std::size_t i = 0; i <= k; ++i) {
                acc = AddMod(acc, MulModNative(a[i], b[k - i], t), t);
            }
            for (std::size_t i = k + 1; i < n; ++i) {
                acc = SubMod(acc, MulModNative(a[i], b[n + k - i], t), t);
            }
            c[k] = acc;
        }
        return c;
    }

    /** A degree-2 product of fresh encryptions, switched down to
     *  @p level primes before the Mul. */
    Ciphertext
    ProductAtLevel(std::size_t level, u64 seed_a, u64 seed_b) const
    {
        Ciphertext a = scheme_->Encrypt(*sk_, RandomPlain(seed_a));
        Ciphertext b = scheme_->Encrypt(*sk_, RandomPlain(seed_b));
        while (BgvScheme::Level(a) > level) {
            a = scheme_->ModSwitch(a);
            b = scheme_->ModSwitch(b);
        }
        return scheme_->Mul(a, b);
    }

    static void
    ExpectBitIdentical(const Ciphertext &x, const Ciphertext &y)
    {
        ASSERT_EQ(x.parts.size(), y.parts.size());
        for (std::size_t j = 0; j < x.parts.size(); ++j) {
            ASSERT_EQ(&x.parts[j].context(), &y.parts[j].context());
            EXPECT_EQ(x.parts[j].domain(), y.parts[j].domain());
            for (std::size_t l = 0; l < x.parts[j].prime_count(); ++l) {
                EXPECT_TRUE(std::ranges::equal(x.parts[j].row(l),
                                               y.parts[j].row(l)))
                    << "part " << j << " limb " << l;
            }
        }
    }

    std::shared_ptr<HeContext> ctx_;
    std::unique_ptr<BgvScheme> scheme_;
    std::optional<SecretKey> sk_;
    std::optional<RelinKey> rk_;
};

// ---------------------------------------------------------------------
// Bit-identity with the unfused chain, at every level of the chain
// ---------------------------------------------------------------------

TEST_F(RelinModSwitchTest, FusedMatchesUnfusedAtEveryLevel)
{
    // Every level that can legally modulus-switch: np down to 2 (the
    // last legal one lands at a single remaining prime).
    for (std::size_t level = kNp; level >= 2; --level) {
        const Plaintext ma = RandomPlain(100 + level);
        const Plaintext mb = RandomPlain(200 + level);
        Ciphertext a = scheme_->Encrypt(*sk_, ma);
        Ciphertext b = scheme_->Encrypt(*sk_, mb);
        while (BgvScheme::Level(a) > level) {
            a = scheme_->ModSwitch(a);
            b = scheme_->ModSwitch(b);
        }
        const Ciphertext prod = scheme_->Mul(a, b);

        const Ciphertext unfused =
            scheme_->ModSwitch(scheme_->Relinearize(prod, *rk_));
        const Ciphertext fused = scheme_->RelinModSwitch(prod, *rk_);

        ASSERT_EQ(BgvScheme::Level(fused), level - 1)
            << "level " << level;
        ExpectBitIdentical(fused, unfused);
        EXPECT_EQ(scheme_->Decrypt(*sk_, fused), PlainMul(ma, mb))
            << "level " << level;
    }
}

TEST_F(RelinModSwitchTest, FusedRejectsLastPrime)
{
    // A ciphertext already at one prime can relinearize but not
    // modulus-switch; the fused op must refuse rather than underflow
    // the chain.
    const Ciphertext prod = ProductAtLevel(1, 1, 2);
    // Chain exhaustion is a precondition failure (kFailedPrecondition),
    // not a malformed argument: the ciphertext is perfectly valid, it
    // just sits at the bottom of the modulus chain.
    EXPECT_THROW((void)scheme_->RelinModSwitch(prod, *rk_),
                 PreconditionError);
    // The unfused Relinearize still works there.
    EXPECT_EQ(BgvScheme::Level(scheme_->Relinearize(prod, *rk_)), 1u);
}

TEST_F(RelinModSwitchTest, BatchedMixedLevelsMatchScalar)
{
    const Ciphertext top = ProductAtLevel(kNp, 3, 4);
    const Ciphertext low = ProductAtLevel(kNp - 1, 5, 6);

    Ciphertext out_top, out_low;
    const Ciphertext *src[] = {&top, &low};
    Ciphertext *dst[] = {&out_top, &out_low};
    BatchRelinModSwitch(*ctx_, *rk_, src, dst);

    ExpectBitIdentical(out_top,
                       scheme_->ModSwitch(scheme_->Relinearize(top, *rk_)));
    ExpectBitIdentical(out_low,
                       scheme_->ModSwitch(scheme_->Relinearize(low, *rk_)));
}

// ---------------------------------------------------------------------
// Op-count budget: the fused stage saves the inverse-stage sweeps
// ---------------------------------------------------------------------

TEST_F(RelinModSwitchTest, FusedSavesInverseStagePasses)
{
    const Ciphertext prod = ProductAtLevel(kNp, 7, 8);

    ResetNttOpCounts();
    (void)scheme_->ModSwitch(scheme_->Relinearize(prod, *rk_));
    const NttOpCounts unfused = GetNttOpCounts();

    ResetNttOpCounts();
    (void)scheme_->RelinModSwitch(prod, *rk_);
    const NttOpCounts fused = GetNttOpCounts();

    // Transform budget is identical: np^2 digit forwards, 2*np
    // accumulator inverse rows (the dropped prime's row is still
    // inverse-transformed — the divide-and-round consumes it).
    EXPECT_EQ(unfused.forward, kNp * kNp);
    EXPECT_EQ(fused.forward, kNp * kNp);
    EXPECT_EQ(unfused.inverse, 2 * kNp);
    EXPECT_EQ(fused.inverse, 2 * kNp);

    // Standalone element-wise sweeps (destination limb rows): both
    // chains pay the digit lift (np^2) and gadget accumulation
    // (2*np^2). The unfused chain then sweeps the (c0, c1) fold
    // (2*np), the alpha pre-scaling (2*np), and the divide-and-round
    // (2*(np-1)) as separate dispatches; the fused stage folds the
    // first two into the inverse dispatch and keeps only the
    // divide-and-round.
    EXPECT_EQ(unfused.elementwise,
              3 * kNp * kNp + 2 * kNp + 2 * kNp + 2 * (kNp - 1));
    EXPECT_EQ(fused.elementwise, 3 * kNp * kNp + 2 * (kNp - 1));
    EXPECT_EQ(unfused.elementwise - fused.elementwise, 4 * kNp);
}

// ---------------------------------------------------------------------
// HeOpGraph: the fused wavefront node
// ---------------------------------------------------------------------

TEST_F(RelinModSwitchTest, GraphRelinModSwitchMatchesScalarChain)
{
    const Plaintext ma = RandomPlain(21);
    const Plaintext mb = RandomPlain(22);
    const Plaintext mc = RandomPlain(23);

    HeOpGraph graph(*scheme_, &*rk_);
    const CtFuture x = graph.Input(scheme_->Encrypt(*sk_, ma));
    const CtFuture y = graph.Input(scheme_->Encrypt(*sk_, mb));
    const CtFuture z = graph.Input(scheme_->Encrypt(*sk_, mc));

    // Two independent fused nodes land in one wavefront and batch.
    const CtFuture xy = graph.MulRelinModSwitch(x, y);
    const CtFuture zz = graph.MulRelinModSwitch(z, z);
    const CtFuture sum = graph.Add(xy, zz);

    EXPECT_FALSE(sum.ready());
    const Ciphertext &result = sum.get();
    EXPECT_TRUE(xy.ready());
    EXPECT_EQ(graph.pending(), 0u);
    EXPECT_EQ(BgvScheme::Level(result), kNp - 1);

    const u64 t = ctx_->params().plain_modulus;
    const Plaintext p_xy = PlainMul(ma, mb);
    const Plaintext p_zz = PlainMul(mc, mc);
    const Plaintext dec = scheme_->Decrypt(*sk_, result);
    for (std::size_t i = 0; i < dec.size(); ++i) {
        EXPECT_EQ(dec[i], AddMod(p_xy[i], p_zz[i], t));
    }
}

TEST_F(RelinModSwitchTest, GraphNodeBitIdenticalToScalarFusedOp)
{
    const Plaintext ma = RandomPlain(31);
    const Plaintext mb = RandomPlain(32);
    const Ciphertext a = scheme_->Encrypt(*sk_, ma);
    const Ciphertext b = scheme_->Encrypt(*sk_, mb);

    HeOpGraph graph(*scheme_, &*rk_);
    const CtFuture fa = graph.Input(a);
    const CtFuture fb = graph.Input(b);
    const CtFuture fused = graph.RelinModSwitch(graph.Mul(fa, fb));

    const Ciphertext scalar =
        scheme_->RelinModSwitch(scheme_->Mul(a, b), *rk_);
    ExpectBitIdentical(fused.get(), scalar);
}

// ---------------------------------------------------------------------
// Scratch arena: steady-state zero allocations
// ---------------------------------------------------------------------

TEST_F(RelinModSwitchTest, SteadyStateRelinModSwitchDoesNotAllocate)
{
    const Ciphertext prod = ProductAtLevel(kNp, 41, 42);
    Ciphertext out;
    const Ciphertext *src[] = {&prod};
    Ciphertext *dst[] = {&out};

    // Warm-up: sizes the arena pools and the reused output.
    BatchRelinModSwitch(*ctx_, *rk_, src, dst);
    BatchRelinModSwitch(*ctx_, *rk_, src, dst);

    const long long before =
        g_alloc_count.load(std::memory_order_relaxed);
    BatchRelinModSwitch(*ctx_, *rk_, src, dst);
    const long long allocs =
        g_alloc_count.load(std::memory_order_relaxed) - before;
    EXPECT_EQ(allocs, 0) << "steady-state fused op touched the heap";

    // The result is still the real thing, not a stale buffer.
    ExpectBitIdentical(out,
                       scheme_->ModSwitch(scheme_->Relinearize(prod, *rk_)));
}

TEST_F(RelinModSwitchTest, SteadyStateRelinearizeDoesNotAllocate)
{
    const Ciphertext prod = ProductAtLevel(kNp, 43, 44);
    Ciphertext out;
    const Ciphertext *src[] = {&prod};
    Ciphertext *dst[] = {&out};

    BatchRelinearize(*ctx_, *rk_, src, dst);
    BatchRelinearize(*ctx_, *rk_, src, dst);

    const long long before =
        g_alloc_count.load(std::memory_order_relaxed);
    BatchRelinearize(*ctx_, *rk_, src, dst);
    const long long allocs =
        g_alloc_count.load(std::memory_order_relaxed) - before;
    EXPECT_EQ(allocs, 0) << "steady-state Relinearize touched the heap";

    ExpectBitIdentical(out, scheme_->Relinearize(prod, *rk_));
}

TEST_F(RelinModSwitchTest, ConcurrentOpsOnOneContextSerialize)
{
    // Two threads driving arena-backed ops on ONE shared context must
    // serialise through the arena mutex (ScratchArena::OpScope)
    // instead of corrupting each other's scratch.
    const Ciphertext prod_a = ProductAtLevel(kNp, 51, 52);
    const Ciphertext prod_b = ProductAtLevel(kNp, 53, 54);
    const Ciphertext ref_a =
        scheme_->ModSwitch(scheme_->Relinearize(prod_a, *rk_));
    const Ciphertext ref_b =
        scheme_->ModSwitch(scheme_->Relinearize(prod_b, *rk_));

    for (int round = 0; round < 8; ++round) {
        Ciphertext out_a, out_b;
        std::thread worker([&] {
            const Ciphertext *src[] = {&prod_a};
            Ciphertext *dst[] = {&out_a};
            BatchRelinModSwitch(*ctx_, *rk_, src, dst);
        });
        {
            const Ciphertext *src[] = {&prod_b};
            Ciphertext *dst[] = {&out_b};
            BatchRelinModSwitch(*ctx_, *rk_, src, dst);
        }
        worker.join();
        ExpectBitIdentical(out_a, ref_a);
        ExpectBitIdentical(out_b, ref_b);
    }
}

TEST_F(RelinModSwitchTest, ArenaSurvivesLevelChangesAndAliasing)
{
    // Alternating levels through one arena must not cross-contaminate,
    // and out[i] aliasing in[i] is part of the kernel contract.
    const Ciphertext top = ProductAtLevel(kNp, 45, 46);
    const Ciphertext low = ProductAtLevel(kNp - 1, 47, 48);

    const Ciphertext ref_top =
        scheme_->ModSwitch(scheme_->Relinearize(top, *rk_));
    const Ciphertext ref_low =
        scheme_->ModSwitch(scheme_->Relinearize(low, *rk_));

    for (int round = 0; round < 3; ++round) {
        Ciphertext a = top;  // aliased in/out
        Ciphertext b = low;
        {
            const Ciphertext *src[] = {&a};
            Ciphertext *dst[] = {&a};
            BatchRelinModSwitch(*ctx_, *rk_, src, dst);
        }
        {
            const Ciphertext *src[] = {&b};
            Ciphertext *dst[] = {&b};
            BatchRelinModSwitch(*ctx_, *rk_, src, dst);
        }
        ExpectBitIdentical(a, ref_top);
        ExpectBitIdentical(b, ref_low);
    }
}

// ---------------------------------------------------------------------
// Containment: arena exhaustion, overflow canaries, injected faults
// ---------------------------------------------------------------------

TEST_F(RelinModSwitchTest, ArenaExhaustionIsContainedAndRecoverable)
{
    const Ciphertext prod = ProductAtLevel(kNp, 61, 62);
    const Ciphertext ref =
        scheme_->ModSwitch(scheme_->Relinearize(prod, *rk_));

    // One scratch polynomial is nowhere near enough for the fused op:
    // the mid-op exhaustion must come back as a Status (never a crash,
    // never a partially-written output observable as success).
    ctx_->scratch().SetPolyBudget(1);
    const Result<Ciphertext> starved =
        scheme_->TryRelinModSwitch(prod, *rk_);
    ASSERT_FALSE(starved.ok());
    EXPECT_EQ(starved.status().code(), ErrorCode::kResourceExhausted);
    bool arena_frame = false, op_frame = false;
    for (const std::string &frame : starved.status().frames()) {
        arena_frame = arena_frame ||
                      frame.find("ScratchArena") != std::string::npos;
        op_frame = op_frame ||
                   frame.find("TryRelinModSwitch") != std::string::npos;
    }
    EXPECT_TRUE(arena_frame) << starved.status().ToString();
    EXPECT_TRUE(op_frame) << starved.status().ToString();

    // Lifting the budget makes the identical call succeed,
    // bit-identical to the never-faulted reference.
    ctx_->scratch().SetPolyBudget(0);
    const Result<Ciphertext> healed =
        scheme_->TryRelinModSwitch(prod, *rk_);
    ASSERT_TRUE(healed.ok()) << healed.status().ToString();
    ExpectBitIdentical(*healed, ref);
}

TEST_F(RelinModSwitchTest, DoubleResetScratchIsIdempotent)
{
    // ResetScratch twice in a row (same level, then a different one)
    // must leave a well-formed polynomial with intact guard words —
    // the failure mode would be a stale limb count or lost canary.
    RnsPoly poly(ctx_->ntt_context());
    poly.ResetScratch(ctx_->level_context(2), /*zero=*/true);
    poly.ResetScratch(ctx_->level_context(2), /*zero=*/true);
    EXPECT_EQ(poly.prime_count(), 2u);
    EXPECT_TRUE(poly.ScratchCanaryIntact());
    for (std::size_t l = 0; l < poly.prime_count(); ++l) {
        for (const u64 v : poly.row(l)) {
            EXPECT_EQ(v, 0u);
        }
    }
    // Growing back to the full level re-plants the guards too.
    poly.ResetScratch(ctx_->ntt_context(), /*zero=*/true);
    EXPECT_EQ(poly.prime_count(), kNp);
    EXPECT_TRUE(poly.ScratchCanaryIntact());
}

TEST_F(RelinModSwitchTest, SmashedCanaryIsReportedAtTheNextOpScope)
{
    ScratchArena &arena = ctx_->scratch();
    {
        const ScratchArena::OpScope scope(arena);
        RnsPoly &poly = arena.NextPoly(ctx_->ntt_context(), true);
        // Simulate a kernel writing one element past the last residue
        // row: the first guard word sits right behind it (still inside
        // the allocation, so sanitizer builds stay quiet — the canary
        // exists precisely to catch what ASan cannot see here).
        u64 *past =
            poly.row(poly.prime_count() - 1).data() + poly.degree();
        past[0] = 0xDEADBEEFu;
    }
    try {
        const ScratchArena::OpScope scope(arena);
        FAIL() << "smashed canary went unreported";
    } catch (const RuntimeStatusError &e) {
        EXPECT_EQ(e.status().code(), ErrorCode::kInternal);
        EXPECT_NE(e.status().message().find("scratch overflow"),
                  std::string::npos);
        EXPECT_NE(e.status().message().find("1 smashed canary"),
                  std::string::npos);
        ASSERT_FALSE(e.status().frames().empty());
        EXPECT_NE(e.status().frames()[0].find("ScratchArena::OpScope"),
                  std::string::npos);
    }
    // Containment: the guards were re-planted while reporting, so the
    // arena is clean again and real ops keep working.
    EXPECT_NO_THROW({ const ScratchArena::OpScope scope(arena); });
    const Ciphertext prod = ProductAtLevel(kNp, 63, 64);
    ExpectBitIdentical(
        scheme_->RelinModSwitch(prod, *rk_),
        scheme_->ModSwitch(scheme_->Relinearize(prod, *rk_)));
}

TEST_F(RelinModSwitchTest, ArenaAllocFailpointInjectsAndReplaysClean)
{
    if (!fp::kCompiledIn) {
        GTEST_SKIP() << "failpoint sites compiled out of this build";
    }
    const Ciphertext prod = ProductAtLevel(kNp, 65, 66);
    const Ciphertext ref =
        scheme_->ModSwitch(scheme_->Relinearize(prod, *rk_));
    {
        const fp::Scoped arm(fp::kArenaAlloc, 1.0);
        const Result<Ciphertext> faulted =
            scheme_->TryRelinModSwitch(prod, *rk_);
        ASSERT_FALSE(faulted.ok());
        EXPECT_EQ(faulted.status().code(), ErrorCode::kInjected);
        bool op_frame = false;
        for (const std::string &frame : faulted.status().frames()) {
            op_frame = op_frame ||
                       frame.find("TryRelinModSwitch") !=
                           std::string::npos;
        }
        EXPECT_TRUE(op_frame) << faulted.status().ToString();
    }
    // Disarmed replay of the identical call: bit-identical result.
    const Result<Ciphertext> healed =
        scheme_->TryRelinModSwitch(prod, *rk_);
    ASSERT_TRUE(healed.ok()) << healed.status().ToString();
    ExpectBitIdentical(*healed, ref);
}

}  // namespace
}  // namespace hentt::he
