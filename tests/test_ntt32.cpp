/** Tests for the 32-bit-word NTT path. */

#include <gtest/gtest.h>

#include "common/modarith.h"
#include "common/primegen.h"
#include "common/random.h"
#include "ntt/ntt32.h"
#include "ntt/ntt_radix2.h"

namespace hentt {
namespace {

u32
Prime30(std::size_t n)
{
    return static_cast<u32>(GenerateNttPrimes(2 * n, 29, 1)[0]);
}

class Ntt32Test : public ::testing::TestWithParam<std::size_t>
{
  protected:
    void
    SetUp() override
    {
        n_ = GetParam();
        p_ = Prime30(n_);
        engine_ = std::make_unique<Ntt32Engine>(n_, p_);
    }

    std::vector<u32>
    Random(u64 seed) const
    {
        Xoshiro256 rng(seed);
        std::vector<u32> v(n_);
        for (u32 &x : v) {
            x = static_cast<u32>(rng.NextBelow(p_));
        }
        return v;
    }

    std::size_t n_;
    u32 p_;
    std::unique_ptr<Ntt32Engine> engine_;
};

TEST_P(Ntt32Test, RoundTrip)
{
    const auto a = Random(1);
    auto v = a;
    engine_->Forward(v);
    engine_->Inverse(v);
    EXPECT_EQ(v, a);
}

TEST_P(Ntt32Test, MultiplyMatchesSchoolbook)
{
    const auto a = Random(2);
    const auto b = Random(3);
    const auto fast = engine_->Multiply(a, b);
    for (std::size_t k = 0; k < n_; ++k) {
        u64 acc = 0;
        for (std::size_t i = 0; i <= k; ++i) {
            acc = AddMod(acc, MulModNative(a[i], b[k - i], p_), p_);
        }
        for (std::size_t i = k + 1; i < n_; ++i) {
            acc = SubMod(acc, MulModNative(a[i], b[n_ + k - i], p_), p_);
        }
        EXPECT_EQ(fast[k], acc) << "k=" << k;
    }
}

TEST_P(Ntt32Test, DeltaTransformsToAllOnes)
{
    std::vector<u32> delta(n_, 0);
    delta[0] = 1;
    engine_->Forward(delta);
    for (u32 x : delta) {
        EXPECT_EQ(x, 1u);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Ntt32Test,
                         ::testing::Values(8, 64, 256, 1024));

TEST(MulModShoup32, AgreesWithNativeAcrossRandomInputs)
{
    const u32 p = Prime30(1 << 10);
    Xoshiro256 rng(10);
    for (int i = 0; i < 2000; ++i) {
        const u32 b = static_cast<u32>(rng.NextBelow(p));
        const u32 w = static_cast<u32>(rng.NextBelow(p));
        EXPECT_EQ(MulModShoup32(b, w, ShoupPrecompute32(w, p), p),
                  static_cast<u32>(static_cast<u64>(b) * w % p));
    }
}

TEST(Ntt32Engine, RejectsBadParameters)
{
    EXPECT_THROW(Ntt32Engine(100, 257), std::invalid_argument);
    EXPECT_THROW(Ntt32Engine(64, u32{1} << 30), std::invalid_argument);
    EXPECT_THROW(Ntt32Engine(64, 193), std::invalid_argument);  // !=1 mod 128
    const u32 p = Prime30(64);
    const Ntt32Engine engine(64, p);
    std::vector<u32> wrong(32, 0);
    EXPECT_THROW(engine.Forward(wrong), std::invalid_argument);
}

TEST(Ntt32VsNtt64, SameTransformOnSharedPrime)
{
    // A prime below 2^30 works in both pipelines; outputs must agree.
    const std::size_t n = 128;
    const u32 p = Prime30(n);
    const Ntt32Engine e32(n, p);
    const TwiddleTable table(n, p);
    Xoshiro256 rng(11);
    std::vector<u32> a32(n);
    std::vector<u64> a64(n);
    for (std::size_t i = 0; i < n; ++i) {
        a32[i] = static_cast<u32>(rng.NextBelow(p));
        a64[i] = a32[i];
    }
    e32.Forward(a32);
    NttRadix2(a64, table);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(static_cast<u64>(a32[i]), a64[i]);
    }
}

}  // namespace
}  // namespace hentt
