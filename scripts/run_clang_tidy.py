#!/usr/bin/env python3
"""clang-tidy driver with a baseline, mirroring hentt_lint's mechanism.

Runs clang-tidy (checks from .clang-tidy) over every first-party
translation unit in a build directory's compile_commands.json, then
filters the diagnostics against scripts/clang_tidy_baseline.txt.
A diagnostic is suppressed when a baseline entry's check name and file
match and its substring occurs in the diagnostic line; entries that
suppress nothing are reported as stale. Exit 1 on any new diagnostic
or stale entry — the CI clang-tidy job gates on this.

Baseline format (one per line, `#` comments):
    check-name|path|substring

Without clang-tidy installed the script exits 0 with a note (local
dev containers ship only gcc); pass --require to turn that into a
failure (CI does).
"""

import argparse
import json
import multiprocessing
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "scripts" / "clang_tidy_baseline.txt"

DIAG_RE = re.compile(
    r"^(?P<path>[^:\s]+):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): (?P<message>.*?) \[(?P<check>[\w.,-]+)\]$")


def find_clang_tidy(explicit):
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in ("clang-tidy", "clang-tidy-20", "clang-tidy-19",
                 "clang-tidy-18", "clang-tidy-17", "clang-tidy-16",
                 "clang-tidy-15"):
        if shutil.which(name):
            return name
    return None


def first_party_sources(build_dir):
    db_path = build_dir / "compile_commands.json"
    if not db_path.exists():
        print(f"error: {db_path} not found (configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON)", file=sys.stderr)
        sys.exit(2)
    sources = []
    for entry in json.loads(db_path.read_text()):
        src = Path(entry["file"])
        try:
            rel = src.resolve().relative_to(REPO).as_posix()
        except ValueError:
            continue  # out-of-repo (fetched third-party) TU
        if rel.startswith(("src/", "tests/", "bench/")):
            sources.append(src)
    return sorted(set(sources))


def load_baseline(path):
    entries = []
    if not path.exists():
        return entries
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split("|", 2)
        if len(parts) != 3:
            print(f"{path}:{lineno}: malformed baseline entry: {raw}",
                  file=sys.stderr)
            sys.exit(2)
        entries.append({"check": parts[0].strip(),
                        "path": parts[1].strip(),
                        "substring": parts[2].strip(),
                        "lineno": lineno, "used": False})
    return entries


def parse_diags(output):
    """Collapse clang-tidy output into unique (check, path, line, msg)."""
    diags = {}
    for line in output.splitlines():
        m = DIAG_RE.match(line)
        if not m:
            continue
        try:
            rel = Path(m["path"]).resolve().relative_to(REPO).as_posix()
        except ValueError:
            continue  # diagnostic in a system/third-party header
        key = (m["check"], rel, int(m["line"]), m["message"])
        diags[key] = None
    return [{"check": c, "path": p, "line": n, "message": msg}
            for (c, p, n, msg) in diags]


def apply_baseline(diags, entries):
    kept = []
    for d in diags:
        suppressed = False
        for e in entries:
            if (e["check"] in d["check"] and e["path"] == d["path"] and
                    e["substring"] in d["message"]):
                e["used"] = True
                suppressed = True
                break
        if not suppressed:
            kept.append(d)
    stale = [e for e in entries if not e["used"]]
    return kept, stale


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build", type=Path, default=REPO / "build",
                        help="build dir holding compile_commands.json")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary (default: autodetect)")
    parser.add_argument("--baseline", type=Path, default=BASELINE)
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 2) when clang-tidy is missing "
                             "instead of skipping")
    parser.add_argument("-j", "--jobs", type=int,
                        default=multiprocessing.cpu_count())
    args = parser.parse_args()

    tidy = find_clang_tidy(args.clang_tidy)
    if tidy is None:
        msg = "run_clang_tidy: clang-tidy not found"
        if args.require:
            print(msg, file=sys.stderr)
            sys.exit(2)
        print(msg + "; skipping (pass --require to fail instead)")
        sys.exit(0)

    sources = first_party_sources(args.build)
    if not sources:
        print("run_clang_tidy: no first-party sources in the "
              "compilation database", file=sys.stderr)
        sys.exit(2)

    print(f"run_clang_tidy: {tidy} over {len(sources)} TUs "
          f"(-j{args.jobs})")
    # One process per TU, capped at -j; clang-tidy has no internal
    # parallelism worth using here.
    procs, outputs, queue = [], [], list(sources)
    failed_run = False
    while queue or procs:
        while queue and len(procs) < args.jobs:
            src = queue.pop(0)
            procs.append((src, subprocess.Popen(
                [tidy, "-p", str(args.build), "--quiet", str(src)],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True)))
        src, proc = procs.pop(0)
        out, _ = proc.communicate()
        outputs.append(out)
        # returncode != 0 covers both diagnostics-as-errors and crashes;
        # crashes produce no DIAG_RE lines, so surface them explicitly.
        if proc.returncode != 0 and not DIAG_RE.search(out or ""):
            print(f"run_clang_tidy: {tidy} failed on {src}:\n{out}",
                  file=sys.stderr)
            failed_run = True

    diags = parse_diags("\n".join(outputs))
    entries = load_baseline(args.baseline)
    kept, stale = apply_baseline(diags, entries)

    for d in sorted(kept, key=lambda d: (d["path"], d["line"])):
        print(f"{d['path']}:{d['line']}: {d['message']} "
              f"[{d['check']}]")
    for e in stale:
        print(f"{args.baseline}:{e['lineno']}: stale baseline entry "
              f"(suppresses nothing): {e['check']}|{e['path']}|"
              f"{e['substring']}")

    if kept or stale or failed_run:
        print(f"\nrun_clang_tidy: {len(kept)} new diagnostic(s), "
              f"{len(stale)} stale baseline entr(y/ies)")
        sys.exit(1)
    print(f"run_clang_tidy: clean ({len(diags)} baselined)")
    sys.exit(0)


if __name__ == "__main__":
    main()
