#!/usr/bin/env python3
"""Fail CI when a fresh run_suite output regresses vs the committed
BENCH_*.json perf trajectory.

Contract (documented in docs/BENCHMARKS.md):

- Timing series (keys ending in ``_ns``, lower is better) and speedup
  series (keys starting with ``speedup_``, higher is better) are
  compared pairwise between the committed baseline JSON (repo root)
  and the fresh JSON (build directory).
- A series regresses when it is worse than the baseline by more than
  the threshold (default 25%).
- Timing series are only comparable on the machine that produced the
  baseline; cross-machine runs (CI) pass ``--relative-only`` so only
  the machine-relative speedup series and the allocation invariant are
  gated.
- ``steady_state_allocs`` must not grow at all: new steady-state heap
  allocations are a correctness-of-architecture regression, not noise.
- Setting the environment variable ``HENTT_SKIP_BENCH_GATE`` (any
  non-empty value) skips the gate with a notice — the escape hatch for
  known-slow or heavily shared runners (CI wires a PR label to it).
- A series present in the baseline but missing from the fresh output
  fails the gate (a silently dropped column is how a perf trajectory
  rots); series that are 0/absent in the baseline are skipped (e.g.
  AVX-512 columns recorded on a host without AVX-512).

Usage:
    check_bench_regression.py --baseline DIR --fresh DIR
                              [--threshold 0.25] [--relative-only]
    check_bench_regression.py --self-test
"""

import argparse
import json
import os
import pathlib
import sys

DEFAULT_THRESHOLD = 0.25


def classify(key):
    """Return 'time', 'speedup', 'allocs', or None (ungated)."""
    if key == "steady_state_allocs":
        return "allocs"
    if key.startswith("speedup_"):
        return "speedup"
    if key.endswith("_ns"):
        return "time"
    return None


def capability_mismatch(baseline, fresh):
    """True when the two runs saw different SIMD capabilities.

    Speedup series that compare across backends or against the seed
    path (e.g. ``speedup_fast_vs_seed`` with an AVX-512 fast path) are
    only comparable between hosts whose backend availability matches;
    on a mismatch the gate falls back to the structural checks
    (series presence + the allocation invariant)."""
    flags = {k for k in baseline if k.endswith("_available")}
    flags |= {k for k in fresh if k.endswith("_available")}
    # Not every bench records every capability flag (BENCH_he_pipeline
    # predates AVX-512), so a differing resolved default backend is a
    # mismatch in its own right: the default-path series ran on
    # different hardware paths.
    flags.add("simd_default_backend")
    return any(baseline.get(k) != fresh.get(k) for k in flags)


def compare(baseline, fresh, threshold=DEFAULT_THRESHOLD,
            relative_only=False):
    """Compare two bench dicts; returns a list of failure strings."""
    failures = []
    caps_differ = capability_mismatch(baseline, fresh)
    if caps_differ:
        print("  note: SIMD capability differs from the baseline "
              "host; gating structural checks only")
    for key, base_value in baseline.items():
        kind = classify(key)
        if kind is None or not isinstance(base_value, (int, float)):
            continue
        # Presence is gated in every mode — a silently dropped column
        # is how a perf trajectory rots — before any value skips.
        if key not in fresh:
            failures.append(f"{key}: series missing from fresh output")
            continue
        if kind == "time" and relative_only:
            continue
        if caps_differ and kind in ("time", "speedup"):
            continue
        new_value = fresh[key]
        if not isinstance(new_value, (int, float)):
            failures.append(f"{key}: non-numeric fresh value {new_value!r}")
            continue
        if kind == "allocs":
            if new_value > base_value:
                failures.append(
                    f"{key}: {base_value} -> {new_value} steady-state "
                    f"allocations (must not grow)")
            continue
        if base_value <= 0:
            continue  # column not recorded on the baseline host
        if new_value == 0:
            # The benches write exact 0 for columns the current host
            # cannot measure (e.g. AVX-512 series on a runner without
            # AVX-512); that is unavailability, not a regression.
            continue
        if kind == "time" and new_value > base_value * (1 + threshold):
            failures.append(
                f"{key}: {base_value:.1f} -> {new_value:.1f} ns "
                f"({new_value / base_value:.2f}x slower, threshold "
                f"{1 + threshold:.2f}x)")
        elif kind == "speedup" and new_value < base_value * (1 - threshold):
            failures.append(
                f"{key}: {base_value:.3f}x -> {new_value:.3f}x "
                f"({new_value / base_value:.2f} of baseline, threshold "
                f"{1 - threshold:.2f})")
    return failures


def check_pair(baseline_path, fresh_path, threshold, relative_only):
    with open(baseline_path) as f:
        baseline = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)
    failures = compare(baseline, fresh, threshold, relative_only)
    name = os.path.basename(baseline_path)
    if failures:
        print(f"FAIL {name}:")
        for failure in failures:
            print(f"  - {failure}")
    else:
        mode = "relative series" if relative_only else "all series"
        print(f"ok   {name} ({mode}, threshold "
              f"{int(threshold * 100)}%)")
    return failures


def run_gate(args):
    if os.environ.get("HENTT_SKIP_BENCH_GATE"):
        print("bench regression gate SKIPPED "
              "(HENTT_SKIP_BENCH_GATE is set)")
        return 0
    baseline_dir = pathlib.Path(args.baseline)
    fresh_dir = pathlib.Path(args.fresh)
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no BENCH_*.json under {baseline_dir}",
              file=sys.stderr)
        return 2
    total_failures = 0
    for baseline_path in baselines:
        fresh_path = fresh_dir / baseline_path.name
        if not fresh_path.exists():
            print(f"FAIL {baseline_path.name}: fresh output "
                  f"{fresh_path} not found")
            total_failures += 1
            continue
        total_failures += len(
            check_pair(baseline_path, fresh_path, args.threshold,
                       args.relative_only))
    if total_failures:
        print(f"\n{total_failures} regression(s); rerun locally or set "
              "HENTT_SKIP_BENCH_GATE=1 / apply the skip-bench-gate "
              "label for known-slow runners")
        return 1
    return 0


def self_test():
    """Unit tests of the comparison logic (run as a ctest suite)."""
    base = {
        "bench": "rns_batch",
        "n": 4096,
        "ntt4096_avx2_ns": 1000.0,
        "speedup_ntt4096_radix4_vs_radix2_avx512": 1.2,
        "ntt4096_avx512_ns": 0.0,  # not recorded on baseline host
        "steady_state_allocs": 0,
        "simd_default_backend": "avx2",
    }
    failed = []

    def expect(name, condition):
        print(f"  {'ok  ' if condition else 'FAIL'} {name}")
        if not condition:
            failed.append(name)

    # Identical run: clean.
    expect("identical run passes", compare(base, dict(base)) == [])

    # The acceptance case: a synthetic 2x slowdown of a timing series
    # must fail the absolute gate...
    slow = dict(base)
    slow["ntt4096_avx2_ns"] = 2000.0
    expect("2x slowdown fails", len(compare(base, slow)) == 1)
    # ...and stays within threshold at +10%.
    mild = dict(base)
    mild["ntt4096_avx2_ns"] = 1100.0
    expect("+10% passes at 25% threshold", compare(base, mild) == [])
    expect("+10% fails at 5% threshold",
           len(compare(base, mild, threshold=0.05)) == 1)

    # Relative-only mode ignores raw timings but still catches a
    # halved speedup (the cross-machine CI configuration).
    slow_rel = dict(slow)
    slow_rel["speedup_ntt4096_radix4_vs_radix2_avx512"] = 0.6
    expect("relative-only ignores ns series",
           len(compare(base, slow, relative_only=True)) == 0)
    expect("relative-only catches halved speedup",
           len(compare(base, slow_rel, relative_only=True)) == 1)

    # Structural failures — gated in relative-only mode too (CI runs
    # that mode exclusively, and dropped columns must never pass).
    dropped = dict(base)
    del dropped["ntt4096_avx2_ns"]
    expect("dropped series fails", len(compare(base, dropped)) == 1)
    expect("dropped series fails in relative-only mode",
           len(compare(base, dropped, relative_only=True)) == 1)
    # A differing resolved default backend counts as a capability
    # mismatch even when no *_available flag records the difference
    # (BENCH_he_pipeline carries only avx2_available).
    diff_default = dict(base)
    diff_default["simd_default_backend"] = "avx512"
    diff_default["speedup_ntt4096_radix4_vs_radix2_avx512"] = 0.4
    expect("default-backend difference excuses speedup series",
           compare(base, diff_default, relative_only=True) == [])
    alloc = dict(base)
    alloc["steady_state_allocs"] = 3
    expect("new steady-state allocs fail",
           len(compare(base, alloc, relative_only=True)) == 1)

    # Baseline zeros (columns the baseline host could not measure) are
    # skipped, and so are fresh zeros (columns THIS host cannot
    # measure, e.g. AVX-512 series on a non-AVX-512 runner).
    zeroed = dict(base)
    zeroed["ntt4096_avx512_ns"] = 123456.0
    expect("baseline-zero column skipped", compare(base, zeroed) == [])
    no_avx512 = dict(base)
    no_avx512["speedup_ntt4096_radix4_vs_radix2_avx512"] = 0.0
    expect("fresh-zero column skipped",
           compare(base, no_avx512, relative_only=True) == [])

    # A host with different SIMD capability gates structure only: a
    # 'regressed' speedup is excused (it reflects hardware, not code)
    # but dropped series and alloc growth still fail.
    base_caps = dict(base)
    base_caps["avx512_available"] = True
    other_host = dict(base_caps)
    other_host["avx512_available"] = False
    other_host["speedup_ntt4096_radix4_vs_radix2_avx512"] = 0.4
    expect("capability mismatch excuses speedup series",
           compare(base_caps, other_host, relative_only=True) == [])
    other_bad = dict(other_host)
    other_bad["steady_state_allocs"] = 2
    del other_bad["ntt4096_avx2_ns"]
    expect("capability mismatch still gates structure",
           len(compare(base_caps, other_bad)) == 2)

    # Non-gated keys never trip.
    meta = dict(base)
    meta["simd_default_backend"] = "scalar"
    meta["n"] = 8192
    expect("metadata keys ignored", compare(base, meta) == [])

    # The BENCH_deep_circuit.json series (sweep_params --json): raw
    # tower timings are machine-local, the depth-scaling ratios travel
    # cross-machine, and the tower must never allocate in steady
    # state at any depth.
    deep = {
        "bench": "deep_circuit",
        "n": 4096,
        "limbs": 8,
        "depth": 7,
        "deep_tower_depth1_ns": 7.0e6,
        "deep_tower_depth7_ns": 24.0e6,
        "deep_tower_depth7_scalar_ns": 55.0e6,
        "speedup_deep_tower_vs_scalar": 2.3,
        "speedup_deep_depth_scaling": 2.0,
        "speedup_deep_level2_vs_level8": 9.0,
        "steady_state_allocs": 0,
        "simd_default_backend": "avx512",
        "avx2_available": True,
        "avx512_available": True,
    }
    deep_slow = dict(deep)
    deep_slow["deep_tower_depth7_ns"] = 48.0e6
    expect("deep: 2x tower slowdown fails the absolute gate",
           len(compare(deep, deep_slow)) == 1)
    expect("deep: 2x tower slowdown passes relative-only (CI)",
           compare(deep, deep_slow, relative_only=True) == [])
    deep_flat = dict(deep)
    deep_flat["speedup_deep_depth_scaling"] = 1.0
    expect("deep: halved depth-scaling ratio fails relative-only",
           len(compare(deep, deep_flat, relative_only=True)) == 1)
    deep_alloc = dict(deep)
    deep_alloc["steady_state_allocs"] = 1
    expect("deep: a single steady-state alloc at depth fails",
           len(compare(deep, deep_alloc, relative_only=True)) == 1)
    deep_dropped = dict(deep)
    del deep_dropped["deep_tower_depth1_ns"]
    expect("deep: dropped depth column fails relative-only",
           len(compare(deep, deep_dropped, relative_only=True)) == 1)

    # The PR 9 element-wise family series (BENCH_rns_batch.json): the
    # avx512-vs-avx2 tensor/fold+rescale ratios are the cross-machine
    # acceptance record for the 8-lane element-wise table. They gate
    # only where the backend is CPUID-available — a runner without
    # AVX-512 writes 0 (skipped as unavailability) and flips
    # avx512_available (capability mismatch excuses the rest).
    ew = {
        "bench": "rns_batch",
        "n": 4096,
        "elementwise_tensor_avx2_ns": 4000.0,
        "elementwise_tensor_avx512_ns": 2500.0,
        "elementwise_tensor_neon_ns": 0.0,  # x86 baseline host
        "speedup_elementwise_tensor_avx512_vs_avx2": 1.6,
        "speedup_elementwise_foldrescale_avx512_vs_avx2": 1.4,
        "steady_state_allocs": 0,
        "simd_default_backend": "avx512",
        "avx2_available": True,
        "avx512_available": True,
        "avx512ifma_available": True,
        "neon_available": False,
    }
    ew_flat = dict(ew)
    ew_flat["speedup_elementwise_tensor_avx512_vs_avx2"] = 1.0
    expect("elementwise: lost avx512 tensor win fails relative-only",
           len(compare(ew, ew_flat, relative_only=True)) == 1)
    ew_no512 = dict(ew)
    ew_no512["avx512_available"] = False
    ew_no512["avx512ifma_available"] = False
    ew_no512["simd_default_backend"] = "avx2"
    ew_no512["elementwise_tensor_avx512_ns"] = 0.0
    ew_no512["speedup_elementwise_tensor_avx512_vs_avx2"] = 0.0
    ew_no512["speedup_elementwise_foldrescale_avx512_vs_avx2"] = 0.0
    expect("elementwise: non-avx512 runner passes relative-only",
           compare(ew, ew_no512, relative_only=True) == [])
    ew_dropped = dict(ew)
    del ew_dropped["speedup_elementwise_foldrescale_avx512_vs_avx2"]
    expect("elementwise: dropped speedup column fails relative-only",
           len(compare(ew, ew_dropped, relative_only=True)) == 1)
    ew_neon = dict(ew)
    ew_neon["neon_available"] = True
    ew_neon["simd_default_backend"] = "neon"
    ew_neon["elementwise_tensor_avx2_ns"] = 0.0
    ew_neon["elementwise_tensor_avx512_ns"] = 0.0
    ew_neon["elementwise_tensor_neon_ns"] = 9000.0
    ew_neon["speedup_elementwise_tensor_avx512_vs_avx2"] = 0.0
    ew_neon["speedup_elementwise_foldrescale_avx512_vs_avx2"] = 0.0
    expect("elementwise: arm64 runner gates structure only",
           compare(ew, ew_neon, relative_only=True) == [])

    # The serving-layer series (BENCH_serve.json, PR 10): per-session
    # throughput and latency numbers are machine-local; what travels
    # cross-machine is speedup_batched_vs_unbatched — cross-client
    # coalescing must keep beating the per-session-dispatch ablation —
    # and steady_state_allocs, which must stay 0 in the serve hot loop
    # (the wavefront batch kernels on a warm worker arena).
    serve = {
        "bench": "serve",
        "n": 64,
        "limbs": 2,
        "lanes": 1,
        "serve_batched_1_ns": 2.2e6,
        "serve_batched_8_ns": 2.9e5,
        "serve_batched_64_ns": 1.3e4,
        "serve_batched_512_ns": 1.4e4,
        "serve_p50_64_ns": 7.6e5,
        "serve_p99_64_ns": 8.7e5,
        "serve_unbatched_64_ns": 2.4e4,
        "speedup_batched_vs_unbatched": 1.8,
        "coalesced_requests_64": 512,
        "max_batch_observed_64": 64,
        "steady_state_allocs": 0,
        "simd_default_backend": "avx512",
        "avx2_available": True,
        "avx512_available": True,
    }
    serve_slow = dict(serve)
    serve_slow["serve_p99_64_ns"] = 2.5e6
    expect("serve: 3x p99 fails the absolute gate",
           len(compare(serve, serve_slow)) == 1)
    expect("serve: 3x p99 passes relative-only (CI runner)",
           compare(serve, serve_slow, relative_only=True) == [])
    serve_flat = dict(serve)
    serve_flat["speedup_batched_vs_unbatched"] = 1.0
    expect("serve: lost coalescing win fails relative-only",
           len(compare(serve, serve_flat, relative_only=True)) == 1)
    serve_alloc = dict(serve)
    serve_alloc["steady_state_allocs"] = 1
    expect("serve: an alloc in the serve hot loop fails",
           len(compare(serve, serve_alloc, relative_only=True)) == 1)
    serve_dropped = dict(serve)
    del serve_dropped["speedup_batched_vs_unbatched"]
    expect("serve: dropped speedup series fails relative-only",
           len(compare(serve, serve_dropped, relative_only=True)) == 1)
    serve_counters = dict(serve)
    serve_counters["coalesced_requests_64"] = 448
    serve_counters["max_batch_observed_64"] = 56
    expect("serve: batch-shape counters are informational, not gated",
           compare(serve, serve_counters, relative_only=True) == [])

    if failed:
        print(f"self-test: {len(failed)} failure(s)")
        return 1
    print("self-test: all checks passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=".",
                        help="directory with committed BENCH_*.json")
    parser.add_argument("--fresh", default="build",
                        help="directory with freshly generated JSONs")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="fractional regression tolerance")
    parser.add_argument("--relative-only", action="store_true",
                        help="gate only machine-relative series "
                             "(cross-machine runs)")
    parser.add_argument("--self-test", action="store_true",
                        help="run unit tests of the comparison logic")
    args = parser.parse_args()
    if args.self_test:
        sys.exit(self_test())
    sys.exit(run_gate(args))


if __name__ == "__main__":
    main()
