#!/usr/bin/env python3
"""Architecture lint for hentt — invariants no general-purpose tool checks.

Rules
  A  raw-modmul      Modular reduction by a modulus-named variable
                     (`x % p`, `% q_k`, ...) outside src/simd/ and
                     src/common/. Element-wise modular math belongs in
                     the simd kernel layer (simd::Active()); scalar
                     helpers belong in common/modarith.h. Setup-time
                     precomputation and test oracles are baselined.
  B  nodiscard       `class Status` / `class Result` must carry
                     [[nodiscard]], and every Try* entry point declared
                     in a header must be [[nodiscard]] explicitly —
                     dropping a Try result silently swallows the error
                     the containment layer exists to deliver.
  C  kernel-alloc    No per-call heap allocation in the steady-state
                     kernel paths (src/he/ciphertext_batch.cpp,
                     src/ntt/*.cpp): no new/malloc/make_unique/
                     make_shared, no by-value std::vector locals.
                     Scratch comes from the ScratchArena (capacity
                     retained across ops). Construction-time and
                     oracle-path allocations are baselined.
  D  failpoint-docs  Every failpoint site name registered in
                     src/common/failpoint.h must appear in the registry
                     table in docs/ARCHITECTURE.md (and vice versa for
                     names that look like site strings).

Baseline: scripts/hentt_lint_baseline.txt suppresses known-good
findings. Each entry is `rule|path|substring` (with `# reason`
comments); a finding is suppressed when an entry's rule and path match
and its substring occurs in the flagged line. Entries that suppress
nothing are reported as stale so the baseline only ever shrinks.

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
Registered as a ctest (hentt_lint) plus a --self-test ctest that
plants one violation per rule and asserts the rule catches it.
"""

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "scripts" / "hentt_lint_baseline.txt"

# ---------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------


def strip_comments(line, state):
    """Remove // and /* */ comment text (state: inside block comment)."""
    out = []
    i = 0
    while i < len(line):
        if state["block"]:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), state
            state["block"] = False
            i = end + 2
            continue
        if line.startswith("//", i):
            break
        if line.startswith("/*", i):
            state["block"] = True
            i += 2
            continue
        out.append(line[i])
        i += 1
    return "".join(out), state


def code_lines(text):
    """Yield (lineno, comment-stripped code, raw line)."""
    state = {"block": False}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        code, state = strip_comments(raw, state)
        # Crude string-literal blanking so quoted '%' etc. don't match.
        code = re.sub(r'"(?:[^"\\]|\\.)*"', '""', code)
        yield lineno, code, raw


class Finding:
    def __init__(self, rule, path, lineno, line, message):
        self.rule = rule
        self.path = path  # repo-relative, posix
        self.lineno = lineno
        self.line = line.strip()
        self.message = message

    def __str__(self):
        return (f"{self.path}:{self.lineno}: [{self.rule}] "
                f"{self.message}\n    {self.line}")


# ---------------------------------------------------------------------
# Rule A: raw modular reduction outside the simd/scalar-helper layers
# ---------------------------------------------------------------------

MOD_RE = re.compile(
    r"%\s*\(?\s*(?:p|q|t)(?:[a-z0-9_]*|\b)|%\s*(?:prime|modulus)\w*",
    re.IGNORECASE)
# `% (2 * n)` style index arithmetic and format strings never name a
# modulus variable, so the pattern above skips them by construction.

RULE_A_DIRS = ("src/ntt/", "src/he/", "src/poly/", "src/rns/")


def check_raw_modmul(path, text):
    findings = []
    for lineno, code, raw in code_lines(text):
        if "%" not in code:
            continue
        if MOD_RE.search(code):
            findings.append(Finding(
                "raw-modmul", path, lineno, raw,
                "raw % by a modulus outside src/simd|src/common; use "
                "the simd kernels or common/modarith.h"))
    return findings


# ---------------------------------------------------------------------
# Rule B: [[nodiscard]] on Status/Result and Try* boundaries
# ---------------------------------------------------------------------

TRY_DECL_RE = re.compile(r"\bTry[A-Z]\w*\s*\(")
CLASS_DECL_RE = re.compile(r"\bclass\s+(?:\[\[nodiscard\]\]\s+)?"
                           r"(Status|Result)\b")


def check_nodiscard(path, text):
    findings = []
    lines = text.splitlines()
    for lineno, code, raw in code_lines(text):
        m = CLASS_DECL_RE.search(code)
        if m and path.endswith("status.h") and "[[nodiscard]]" not in code:
            # Skip friend/forward mentions: only flag the definition.
            if "{" in "".join(lines[lineno - 1:lineno + 2]) or \
                    code.rstrip().endswith(m.group(1)):
                findings.append(Finding(
                    "nodiscard", path, lineno, raw,
                    f"class {m.group(1)} must be [[nodiscard]]"))
        if not path.endswith(".h"):
            continue
        if TRY_DECL_RE.search(code) and "return" not in code:
            # A declaration, not a call: must return Status/Result and
            # start a statement (calls appear after '=' or inside args).
            window = " ".join(lines[max(0, lineno - 3):lineno])
            decl_ctx = window + " " + code
            if not re.search(r"\b(Status|Result\s*<)", decl_ctx):
                continue
            if re.search(r"[=(,!]\s*\w*Try[A-Z]", code):
                continue  # call site, not a declaration
            if "[[nodiscard]]" not in decl_ctx:
                findings.append(Finding(
                    "nodiscard", path, lineno, raw,
                    "Try* boundary must be declared [[nodiscard]]"))
    return findings


# ---------------------------------------------------------------------
# Rule C: no steady-state allocation in kernel paths
# ---------------------------------------------------------------------

RULE_C_FILES_RE = re.compile(
    r"^(src/he/ciphertext_batch\.cpp|src/ntt/[^/]+\.cpp)$")
ALLOC_RE = re.compile(
    r"\bnew\b(?!\s*\()|\bmalloc\s*\(|\bmake_unique\b|\bmake_shared\b")
LOCAL_VECTOR_RE = re.compile(
    r"^\s*(?:const\s+)?std::vector<[^;]*>\s+\w+\s*[({;=]")


def check_kernel_alloc(path, text):
    findings = []
    for lineno, code, raw in code_lines(text):
        if ALLOC_RE.search(code):
            findings.append(Finding(
                "kernel-alloc", path, lineno, raw,
                "heap allocation in a steady-state kernel path; draw "
                "scratch from the ScratchArena"))
        elif LOCAL_VECTOR_RE.match(code):
            findings.append(Finding(
                "kernel-alloc", path, lineno, raw,
                "by-value std::vector local in a kernel path allocates "
                "per call; use an arena Buffer<T>()"))
    return findings


# ---------------------------------------------------------------------
# Rule D: failpoint site names vs docs registry table
# ---------------------------------------------------------------------

SITE_DECL_RE = re.compile(
    r'inline\s+constexpr\s+const\s+char\s*\*\s*k\w+\s*=\s*"([^"]+)"')


def check_failpoint_docs(failpoint_text, docs_text, docs_exists):
    findings = []
    sites = SITE_DECL_RE.findall(failpoint_text)
    if not sites:
        findings.append(Finding(
            "failpoint-docs", "src/common/failpoint.h", 1, "",
            "no failpoint site declarations found (parser drift?)"))
        return findings
    if not docs_exists:
        findings.append(Finding(
            "failpoint-docs", "docs/ARCHITECTURE.md", 1, "",
            "docs/ARCHITECTURE.md missing; failpoint registry table "
            "unverifiable"))
        return findings
    for site in sites:
        if f"`{site}`" not in docs_text and site not in docs_text:
            findings.append(Finding(
                "failpoint-docs", "src/common/failpoint.h", 1, site,
                f"failpoint site '{site}' not documented in "
                "docs/ARCHITECTURE.md's registry table"))
    return findings


# ---------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------


def load_baseline(path):
    entries = []
    if not path.exists():
        return entries
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split("|", 2)
        if len(parts) != 3:
            print(f"{path}:{lineno}: malformed baseline entry: {raw}",
                  file=sys.stderr)
            sys.exit(2)
        entries.append({"rule": parts[0].strip(),
                        "path": parts[1].strip(),
                        "substring": parts[2].strip(),
                        "lineno": lineno,
                        "used": False})
    return entries


def apply_baseline(findings, entries):
    kept = []
    for f in findings:
        suppressed = False
        for e in entries:
            if (e["rule"] == f.rule and e["path"] == f.path and
                    e["substring"] in f.line):
                e["used"] = True
                suppressed = True
                break
        if not suppressed:
            kept.append(f)
    stale = [e for e in entries if not e["used"]]
    return kept, stale


# ---------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------


def lint_tree(repo):
    findings = []
    for path in sorted(repo.glob("src/**/*")):
        if path.suffix not in (".h", ".cpp"):
            continue
        rel = path.relative_to(repo).as_posix()
        text = path.read_text()
        if rel.startswith(RULE_A_DIRS) and not rel.startswith("src/simd/"):
            findings.extend(check_raw_modmul(rel, text))
        findings.extend(check_nodiscard(rel, text))
        if RULE_C_FILES_RE.match(rel):
            findings.extend(check_kernel_alloc(rel, text))
    fp_path = repo / "src/common/failpoint.h"
    docs_path = repo / "docs/ARCHITECTURE.md"
    findings.extend(check_failpoint_docs(
        fp_path.read_text() if fp_path.exists() else "",
        docs_path.read_text() if docs_path.exists() else "",
        docs_path.exists()))
    return findings


def self_test():
    failures = []

    def expect(name, cond):
        print(("PASS" if cond else "FAIL") + f"  {name}")
        if not cond:
            failures.append(name)

    # Rule A fires on a planted reduction, stays quiet on simd idiom.
    dirty_a = "u64 r = x % p;\nacc = y % q_k;\n"
    clean_a = ("simd::Active().mul_shoup_rows(dst, src, n, w, ws, p);\n"
               "const std::size_t pos = pair % half;\n"
               "// x % p in a comment\n"
               'printf("%zu", n);\n')
    expect("raw-modmul fires",
           len(check_raw_modmul("src/ntt/x.cpp", dirty_a)) == 2)
    expect("raw-modmul quiet on kernels/index math/comments",
           check_raw_modmul("src/ntt/x.cpp", clean_a) == [])

    # Rule B fires on a bare Try* declaration and a bare class Status.
    dirty_b = "Result<Ciphertext> TryAdd(const Ciphertext &a) const;\n"
    clean_b = ("[[nodiscard]] Result<Ciphertext>\n"
               "TryAdd(const Ciphertext &a) const;\n"
               "auto r = TryAdd(a);\n")
    expect("nodiscard fires on bare Try*",
           len(check_nodiscard("src/he/x.h", dirty_b)) == 1)
    expect("nodiscard quiet on annotated decl + call site",
           check_nodiscard("src/he/x.h", clean_b) == [])
    dirty_b2 = "class Status\n{\n"
    clean_b2 = "class [[nodiscard]] Status\n{\n"
    expect("nodiscard fires on bare class Status",
           len(check_nodiscard("src/common/status.h", dirty_b2)) == 1)
    expect("nodiscard quiet on [[nodiscard]] class",
           check_nodiscard("src/common/status.h", clean_b2) == [])

    # Rule C fires on allocations, quiet on arena buffers.
    dirty_c = ("auto p = std::make_unique<int[]>(n);\n"
               "std::vector<u64> local(radix);\n"
               "u64 *buf = new u64[n];\n")
    clean_c = ("auto &rows = arena.Buffer<RowTask>();\n"
               "rows.push_back({engine, row, n});\n"
               "std::vector<u64> &ref = arena.Buffer<u64>();\n")
    expect("kernel-alloc fires",
           len(check_kernel_alloc("src/ntt/x.cpp", dirty_c)) == 3)
    expect("kernel-alloc quiet on arena idiom",
           check_kernel_alloc("src/ntt/x.cpp", clean_c) == [])

    # Rule D fires on an undocumented site.
    decls = ('inline constexpr const char *kA = "a.b";\n'
             'inline constexpr const char *kC = "c.d";\n')
    expect("failpoint-docs fires on missing site",
           len(check_failpoint_docs(decls, "| `a.b` | ... |", True)) == 1)
    expect("failpoint-docs quiet when documented",
           check_failpoint_docs(decls, "`a.b` `c.d`", True) == [])

    # Baseline suppresses a matching finding and reports stale entries.
    f = check_raw_modmul("src/ntt/x.cpp", "u64 r = x % p;\n")
    entries = [{"rule": "raw-modmul", "path": "src/ntt/x.cpp",
                "substring": "x % p", "lineno": 1, "used": False},
               {"rule": "raw-modmul", "path": "src/ntt/y.cpp",
                "substring": "gone", "lineno": 2, "used": False}]
    kept, stale = apply_baseline(f, entries)
    expect("baseline suppresses matched finding", kept == [])
    expect("baseline reports stale entries", len(stale) == 1)

    print(f"\nself-test: {10 - len(failures)}/10 passed")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repo", type=Path, default=REPO,
                        help="repository root (default: script's repo)")
    parser.add_argument("--baseline", type=Path, default=BASELINE,
                        help="baseline file of suppressed findings")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter's own checks and exit")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())

    findings = lint_tree(args.repo)
    entries = load_baseline(args.baseline)
    kept, stale = apply_baseline(findings, entries)

    for f in kept:
        print(f)
    for e in stale:
        print(f"{args.baseline}:{e['lineno']}: stale baseline entry "
              f"(suppresses nothing): {e['rule']}|{e['path']}|"
              f"{e['substring']}")
    if kept or stale:
        print(f"\nhentt_lint: {len(kept)} finding(s), "
              f"{len(stale)} stale baseline entr(y/ies)")
        sys.exit(1)
    print("hentt_lint: clean")
    sys.exit(0)


if __name__ == "__main__":
    main()
