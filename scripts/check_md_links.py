#!/usr/bin/env python3
"""Check that relative links in the repo's Markdown files resolve.

Scans every tracked *.md file (skipping build directories), extracts
inline links `[text](target)`, and verifies that non-URL targets exist
relative to the file. Exits non-zero listing every broken link. Used by
the CI docs job; run locally with `python3 scripts/check_md_links.py`.
"""

import os
import re
import sys

SKIP_DIRS = {"build", ".git", ".github"}
# [text](target) — target captured up to the closing paren (no nesting).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    broken = []
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        base = root if rel.startswith("/") else os.path.dirname(path)
        resolved = os.path.normpath(os.path.join(base, rel.lstrip("/")))
        if not os.path.exists(resolved):
            broken.append((target, resolved))
    return broken


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    failures = 0
    for path in sorted(md_files(root)):
        for target, resolved in check_file(path, root):
            rel_path = os.path.relpath(path, root)
            print(f"BROKEN {rel_path}: ({target}) -> {resolved}")
            failures += 1
    if failures:
        print(f"{failures} broken link(s)", file=sys.stderr)
        return 1
    print("all markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
