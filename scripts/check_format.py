#!/usr/bin/env python3
"""Changed-files-only clang-format check.

Diffs the working tree (or a commit range) against a base ref, and runs
`clang-format --dry-run -Werror` on just the touched C++ files — the
tree converges on .clang-format one PR at a time instead of via a
history-destroying bulk reformat.

Without clang-format installed the script exits 0 with a note (dev
containers ship only gcc); pass --require to fail instead (CI does).
Pass --fix to rewrite the touched files in place.
"""

import argparse
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CXX_SUFFIXES = (".h", ".cpp", ".cc", ".hpp")


def find_clang_format(explicit):
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in ("clang-format", "clang-format-20", "clang-format-19",
                 "clang-format-18", "clang-format-17", "clang-format-16",
                 "clang-format-15"):
        if shutil.which(name):
            return name
    return None


def changed_files(base):
    out = subprocess.run(
        ["git", "diff", "--name-only", "--diff-filter=ACMR", base],
        cwd=REPO, capture_output=True, text=True, check=True).stdout
    files = []
    for rel in out.splitlines():
        path = REPO / rel
        if rel.endswith(CXX_SUFFIXES) and path.exists() and \
                rel.startswith(("src/", "tests/", "bench/")):
            files.append(path)
    return files


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--base", default="origin/main",
                        help="git ref to diff against (default: "
                             "origin/main; falls back to HEAD~1)")
    parser.add_argument("--clang-format", default=None)
    parser.add_argument("--require", action="store_true",
                        help="fail when clang-format is missing")
    parser.add_argument("--fix", action="store_true",
                        help="rewrite files instead of checking")
    args = parser.parse_args()

    fmt = find_clang_format(args.clang_format)
    if fmt is None:
        msg = "check_format: clang-format not found"
        if args.require:
            print(msg, file=sys.stderr)
            sys.exit(2)
        print(msg + "; skipping (pass --require to fail instead)")
        sys.exit(0)

    base = args.base
    probe = subprocess.run(["git", "rev-parse", "--verify", base],
                           cwd=REPO, capture_output=True)
    if probe.returncode != 0:
        base = "HEAD~1"

    files = changed_files(base)
    if not files:
        print(f"check_format: no C++ files changed vs {base}")
        sys.exit(0)

    cmd = [fmt, "--style=file"]
    cmd += ["-i"] if args.fix else ["--dry-run", "-Werror"]
    result = subprocess.run(cmd + [str(f) for f in files])
    if result.returncode != 0:
        print(f"\ncheck_format: {len(files)} file(s) checked vs {base}; "
              "run scripts/check_format.py --fix", file=sys.stderr)
        sys.exit(1)
    verb = "reformatted" if args.fix else "clean"
    print(f"check_format: {len(files)} file(s) {verb} (vs {base})")
    sys.exit(0)


if __name__ == "__main__":
    main()
