/**
 * @file
 * A fixed-size thread pool with a blocking ParallelFor — the CPU
 * analogue of the paper's batched kernel launches (Section IV, Fig. 3).
 * RNS limbs are embarrassingly independent, so the execution layer
 * dispatches one limb (or one chunk of limbs) per worker and the caller
 * participates in the loop instead of idling.
 *
 * Design constraints, in order:
 *  - zero heap allocations per ParallelFor call (the steady-state HE
 *    multiply loop must not allocate), hence the type-erased
 *    function-pointer interface instead of std::function;
 *  - deterministic results: workers only ever write disjoint index
 *    ranges, so parallel output is bit-identical to serial output;
 *  - a serial fallback below a configurable grain size, because a
 *    wake-up costs more than a small limb's worth of butterflies.
 */

#ifndef HENTT_COMMON_THREAD_POOL_H
#define HENTT_COMMON_THREAD_POOL_H

#include <atomic>
#include <cstddef>
#include <exception>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/bitops.h"
#include "common/failpoint.h"
#include "common/mutex.h"
#include "common/status.h"

namespace hentt {

/**
 * Fixed worker set executing one index-range job at a time. The caller
 * of Run() is always an extra participant, so a pool constructed with
 * `threads` has `threads + 1` lanes of execution.
 */
class ThreadPool
{
  public:
    /** @param workers number of background threads (0 = fully serial). */
    explicit ThreadPool(std::size_t workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Execution lanes: background workers + the calling thread. */
    std::size_t thread_count() const { return workers_.size() + 1; }

    /**
     * Invoke fn(ctx, i) for every i in [0, count), distributed across
     * the workers and the calling thread, blocking until every index
     * has completed. Indices are claimed through a shared atomic
     * counter, so load imbalance between limbs self-corrects.
     *
     * Exceptions thrown by fn are contained per task: a throwing index
     * never takes down the pool or another task, and every remaining
     * index still runs. After the job drains, failures are reported on
     * the calling thread as an aggregated ErrorReport — exactly one
     * task failed: its original exception is rethrown unchanged;
     * several failed: a ParallelError carrying every failure's Status
     * is thrown (first-wins reporting used to drop the rest). Calls
     * from inside a running job (nesting) execute serially on the
     * caller and fail fast on the first exception — containment at
     * that level already happened in the outer dispatch.
     *
     * @param count number of indices to dispatch (0 is a no-op)
     * @param fn    type-erased job body; invoked once per index, from
     *              multiple threads concurrently
     * @param ctx   opaque pointer forwarded to every fn invocation
     */
    void Run(std::size_t count, void (*fn)(void *, std::size_t),
             void *ctx) HENTT_EXCLUDES(run_mutex_, mutex_);

  private:
    void WorkerLoop();
    void Execute(void (*fn)(void *, std::size_t), void *ctx,
                 std::size_t count) HENTT_EXCLUDES(mutex_);

    std::vector<std::thread> workers_;

    // Lock order (enforced by the annotations, exercised by the TSan
    // leg): run_mutex_ before mutex_ — Run() holds run_mutex_ for the
    // whole job and takes mutex_ briefly to publish/tear down it.
    Mutex run_mutex_ HENTT_ACQUIRED_BEFORE(mutex_);
    Mutex mutex_;
    CondVar wake_cv_;
    CondVar done_cv_;

    // Current job, guarded by mutex_ (next_ also claimed lock-free).
    void (*fn_)(void *, std::size_t) HENTT_GUARDED_BY(mutex_) = nullptr;
    void *ctx_ HENTT_GUARDED_BY(mutex_) = nullptr;
    std::size_t count_ HENTT_GUARDED_BY(mutex_) = 0;
    std::atomic<std::size_t> next_{0};
    /** Workers currently inside the job. */
    std::size_t active_ HENTT_GUARDED_BY(mutex_) = 0;
    std::uint64_t generation_ HENTT_GUARDED_BY(mutex_) = 0;
    // Failure aggregation for the current job: every task's Status plus
    // the first raw exception (rethrown verbatim on single failures so
    // callers catching concrete std types keep working).
    ErrorReport report_ HENTT_GUARDED_BY(mutex_);
    std::exception_ptr first_error_ HENTT_GUARDED_BY(mutex_);
    bool stop_ HENTT_GUARDED_BY(mutex_) = false;
};

/**
 * Pool shared by the RNS execution layer (lazily constructed). The
 * initial worker count comes from HENTT_THREADS when set, otherwise
 * std::thread::hardware_concurrency().
 *
 * Shared ownership: callers holding the returned pointer keep the
 * instance alive even if SetGlobalThreadCount swaps in a new pool
 * concurrently, so in-flight ParallelFor jobs always complete on the
 * pool they started on.
 *
 * @return the current global pool (constructed on first use)
 */
std::shared_ptr<ThreadPool> AcquireGlobalThreadPool();

/** Convenience reference form; valid until the next
 *  SetGlobalThreadCount. Prefer AcquireGlobalThreadPool under
 *  concurrent reconfiguration. */
inline ThreadPool &
GlobalThreadPool()
{
    return *AcquireGlobalThreadPool();
}

/** Rebuild the global pool with `lanes` total lanes (min 1). In-flight
 *  jobs finish on the old pool; new dispatches use the new size. */
void SetGlobalThreadCount(std::size_t lanes);

/** Configured lane count (lock-free; does not construct the pool). */
std::size_t GlobalThreadCount();

/**
 * Grain size for ParallelFor: jobs whose estimated total element count
 * (count * work_per_item) falls below this run serially on the caller.
 * Default 1 << 13 elements.
 */
std::size_t ParallelGrain();
void SetParallelGrain(std::size_t elements);

/**
 * The grain heuristic behind ParallelFor: true when a job of @p count
 * items at @p work_per_item elements each would dispatch to the pool,
 * false when it falls back to the serial loop. The product saturates
 * instead of wrapping, so a degree x limb total past 2^64 still reads
 * as a huge job rather than a tiny one. Exposed so the cutoff is
 * directly testable.
 */
inline bool
ParallelWouldDispatch(std::size_t count, std::size_t work_per_item)
{
    return count > 1 && GlobalThreadCount() > 1 &&
           SaturatingMul(count, work_per_item) >= ParallelGrain();
}

/**
 * Parallel loop over [0, count) through the global pool, with the
 * serial fallback below the grain size. `work_per_item` is the rough
 * element count each iteration touches (e.g. the polynomial degree for
 * a per-limb job); it only feeds the grain heuristic.
 *
 * The callable is passed by reference and never copied or heap-
 * allocated, so capturing lambdas are free.
 */
template <typename Body>
void
ParallelFor(std::size_t count, std::size_t work_per_item, Body &&body)
{
    if (count == 0) {
        return;
    }
    if (!ParallelWouldDispatch(count, work_per_item)) {
        // Below-grain serial path. The pool.task failpoint still covers
        // it (every task entry is injectable, whichever path runs the
        // task); like the other serial paths it fails fast — the caller
        // has nothing else in flight to contain.
        for (std::size_t i = 0; i < count; ++i) {
            HENTT_FAILPOINT(fp::kPoolTask);
            body(i);
        }
        return;
    }
    using Fn = std::remove_reference_t<Body>;
    AcquireGlobalThreadPool()->Run(
        count,
        [](void *ctx, std::size_t i) { (*static_cast<Fn *>(ctx))(i); },
        const_cast<std::remove_const_t<Fn> *>(std::addressof(body)));
}

}  // namespace hentt

#endif  // HENTT_COMMON_THREAD_POOL_H
