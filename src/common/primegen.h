/**
 * @file
 * Generation of NTT-friendly primes and roots of unity.
 *
 * An N-point negacyclic NTT over Z_p requires a primitive 2N-th root of
 * unity psi mod p, which exists iff p == 1 (mod 2N). Typical HE schemes
 * pick several dozen such primes (the RNS / CRT basis, paper Section
 * III-B); the paper uses 59-60-bit primes so that Shoup's lazy reduction
 * ranges fit in 64-bit words.
 *
 * This module provides deterministic 64-bit Miller-Rabin, Pollard-rho
 * factorization (needed to certify primitive roots), prime search, and
 * root-of-unity derivation.
 */

#ifndef HENTT_COMMON_PRIMEGEN_H
#define HENTT_COMMON_PRIMEGEN_H

#include <vector>

#include "common/int128.h"

namespace hentt {

/** Deterministic Miller-Rabin, exact for all 64-bit inputs. */
bool IsPrime(u64 n);

/** Prime factorization (with multiplicity collapsed: distinct factors). */
std::vector<u64> DistinctPrimeFactors(u64 n);

/**
 * Find @p count primes p == 1 (mod modulus_step) of exactly @p bits bits,
 * searching downward from 2^bits - 1.
 *
 * @param modulus_step  congruence step, 2N for an N-point negacyclic NTT
 * @param bits          prime size in bits (paper uses 60)
 * @param count         number of primes (the RNS basis size np)
 * @throws std::runtime_error if not enough primes exist in the range.
 */
std::vector<u64> GenerateNttPrimes(u64 modulus_step, unsigned bits,
                                   std::size_t count);

/** Smallest generator of Z_p^* (p prime). */
u64 FindGenerator(u64 p);

/**
 * A primitive n-th root of unity mod p.
 * @pre p prime, n divides p - 1.
 * @post result^n == 1 and result^(n/q) != 1 for every prime q | n.
 */
u64 FindPrimitiveRoot(u64 n, u64 p);

/** True iff root is a primitive n-th root of unity mod p. */
bool IsPrimitiveRoot(u64 root, u64 n, u64 p);

}  // namespace hentt

#endif  // HENTT_COMMON_PRIMEGEN_H
