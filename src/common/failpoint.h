/**
 * @file
 * Compile-in failpoint framework — the fault-injection half of the
 * containment layer.
 *
 * A failpoint is a named site in the execution stack where a test (or a
 * chaos run) can make the library fail on purpose: arena allocation,
 * thread-pool task entry, SIMD dispatch, NTT stage boundaries. The
 * chaos suite arms sites with probabilities, pushes thousands of
 * randomized schedules through Mul→Relin→ModSwitch, and asserts that
 * every failure surfaces as a Status with provenance and that a
 * no-fault replay is bit-identical.
 *
 * Cost model: the `HENTT_FAILPOINT(site)` macro compiles to NOTHING
 * unless the library is built with -DHENTT_FAILPOINTS=ON (CMake option
 * -> public `HENTT_FAILPOINTS=1` define), so release/bench builds pay
 * zero overhead — not even a branch (BENCHMARKS.md documents the
 * micro_ntt check). With failpoints compiled in, an unarmed site costs
 * one relaxed atomic load of a global counter.
 *
 * The registry/arming API below is compiled unconditionally (it is tiny
 * and lets test binaries link the same way in both configurations);
 * only the injection sites themselves vanish.
 *
 * Thread model: per-site state is atomic and the arming API
 * (Arm/ArmNth/DisarmAll/ResetAll) serialises on an internal mutex, so
 * concurrent harness threads may reconfigure sites without tearing a
 * compound update. ShouldFire is safe to call from pool workers (the
 * RNG roll uses a thread-local stream derived from the global seed).
 * Arming *while* a pipeline is in flight is well-defined but
 * non-deterministic: passes already past the gate keep their old
 * decision.
 */

#ifndef HENTT_COMMON_FAILPOINT_H
#define HENTT_COMMON_FAILPOINT_H

#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace hentt::fp {

/** True when injection sites are compiled into this build. */
#if defined(HENTT_FAILPOINTS) && HENTT_FAILPOINTS
inline constexpr bool kCompiledIn = true;
#else
inline constexpr bool kCompiledIn = false;
#endif

// Site registry. Sites are identified by these exact strings (also the
// names accepted by the HENTT_FAILPOINTS environment variable). Keep
// docs/ARCHITECTURE.md's table in sync.
inline constexpr const char *kArenaAlloc = "arena.alloc";
inline constexpr const char *kPoolTask = "pool.task";
inline constexpr const char *kSimdDispatch = "simd.dispatch";
inline constexpr const char *kNttStage = "ntt.stage";
inline constexpr const char *kNttRangeGuard = "ntt.range_guard";
inline constexpr const char *kServeRequest = "serve.request";

/** Number of registered sites. */
std::size_t SiteCount();

/** Registered site name by index (0 <= i < SiteCount()). */
const char *SiteName(std::size_t i);

/**
 * Arm @p site to fire with probability @p probability in [0,1] on each
 * pass. Throws InvalidArgumentError for an unknown site or an
 * out-of-range probability. probability == 0 disarms the site.
 */
void Arm(const char *site, double probability);

/**
 * Arm @p site to fire exactly once, on its @p nth pass from now
 * (1-based: ArmNth(site, 1) fires on the next pass). Deterministic —
 * used by the directed containment tests. Throws for unknown sites.
 */
void ArmNth(const char *site, std::uint64_t nth);

/** Disarm every site (does not reset fire/pass counters). */
void DisarmAll();

/** Disarm every site and zero all counters. */
void ResetAll();

/** Reseed the roll RNG (chaos schedules print this for replay). */
void SeedRng(std::uint64_t seed);

/** Times @p site actually fired since the last ResetAll. */
std::uint64_t FireCount(const char *site);

/** Times @p site was passed (armed or not) since the last ResetAll.
 *  Always 0 when !kCompiledIn — sites are compiled out. */
std::uint64_t PassCount(const char *site);

/** True when @p site is currently armed (no roll, no counter bump). */
bool Armed(const char *site);

/**
 * Record a pass over @p site and decide whether it fires. Called by the
 * HENTT_FAILPOINT* macros; tests may call it directly.
 */
bool ShouldFire(const char *site);

/** Throw an injected-fault RuntimeStatusError (code kInjected). */
[[noreturn]] void RaiseInjected(const char *site);

/**
 * Parse the HENTT_FAILPOINTS environment variable
 * ("site=prob[,site=prob...]", e.g. "arena.alloc=0.01,pool.task=0.05")
 * and HENTT_FP_SEED (u64). Unknown names/values are ignored with a
 * stderr note — an env typo must not abort the process this framework
 * exists to keep alive. Returns the number of sites armed.
 */
std::size_t ArmFromEnv();

/** RAII arming for tests: arms on construction, disarms all on scope
 *  exit. */
class Scoped
{
  public:
    Scoped(const char *site, double probability) { Arm(site, probability); }
    Scoped(const char *site, std::uint64_t nth) { ArmNth(site, nth); }
    ~Scoped() { DisarmAll(); }
    Scoped(const Scoped &) = delete;
    Scoped &operator=(const Scoped &) = delete;
};

namespace internal {
/** Fast gate: number of armed sites (relaxed load). */
bool AnyArmed();
}  // namespace internal

}  // namespace hentt::fp

/**
 * Injection sites. HENTT_FAILPOINT throws an injected fault when the
 * site fires; HENTT_FAILPOINT_FIRED evaluates to true instead (for
 * sites that degrade rather than fail, e.g. forcing the scalar SIMD
 * fallback). Both compile to nothing / constant-false without
 * -DHENTT_FAILPOINTS=ON.
 */
#if defined(HENTT_FAILPOINTS) && HENTT_FAILPOINTS
#define HENTT_FAILPOINT(site)                                            \
    do {                                                                 \
        if (::hentt::fp::internal::AnyArmed() &&                         \
            ::hentt::fp::ShouldFire(site)) {                             \
            ::hentt::fp::RaiseInjected(site);                            \
        }                                                                \
    } while (false)
#define HENTT_FAILPOINT_FIRED(site)                                      \
    (::hentt::fp::internal::AnyArmed() && ::hentt::fp::ShouldFire(site))
#else
#define HENTT_FAILPOINT(site) \
    do {                      \
    } while (false)
#define HENTT_FAILPOINT_FIRED(site) false
#endif

#endif  // HENTT_COMMON_FAILPOINT_H
