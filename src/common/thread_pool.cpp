#include "common/thread_pool.h"

#include <cstdlib>
#include <memory>
#include <string>

#include "common/failpoint.h"

namespace hentt {

namespace {

/** True while the current thread is executing pool work (nesting guard). */
thread_local bool t_inside_job = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t workers)
{
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        workers_.emplace_back([this] { WorkerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mutex_);
        stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread &t : workers_) {
        t.join();
    }
}

void
ThreadPool::Execute(void (*fn)(void *, std::size_t), void *ctx,
                    std::size_t count)
{
    // Claim indices until the shared counter runs dry; used by both the
    // caller and the workers so stragglers steal from fast lanes.
    std::size_t i;
    while ((i = next_.fetch_add(1, std::memory_order_relaxed)) < count) {
        try {
            HENTT_FAILPOINT(fp::kPoolTask);
            fn(ctx, i);
        } catch (...) {
            // Contain the failure to this task: record it and keep
            // claiming indices so the rest of the job completes.
            Status status =
                CurrentExceptionToStatus().WithFrame(
                    "pool task " + std::to_string(i));
            MutexLock lock(mutex_);
            if (!first_error_) {
                first_error_ = std::current_exception();
            }
            report_.errors.push_back(std::move(status));
        }
    }
}

void
ThreadPool::Run(std::size_t count, void (*fn)(void *, std::size_t),
                void *ctx)
{
    if (count == 0) {
        return;
    }
    if (workers_.empty() || t_inside_job) {
        // Serial path: no workers, or a nested ParallelFor from inside
        // a running job (parallelism already saturated one level up).
        // Fails fast on the first exception — single-threaded callers
        // have nothing else in flight to contain.
        for (std::size_t i = 0; i < count; ++i) {
            HENTT_FAILPOINT(fp::kPoolTask);
            fn(ctx, i);
        }
        return;
    }

    // One job at a time; concurrent callers queue here rather than
    // clobbering the shared job slot.
    MutexLock run_lock(run_mutex_);
    {
        MutexLock lock(mutex_);
        fn_ = fn;
        ctx_ = ctx;
        count_ = count;
        next_.store(0, std::memory_order_relaxed);
        report_.errors.clear();
        first_error_ = nullptr;
        ++generation_;
    }
    wake_cv_.notify_all();

    t_inside_job = true;
    Execute(fn, ctx, count);
    t_inside_job = false;

    ErrorReport report;
    std::exception_ptr first;
    {
        // All indices are claimed; wait for workers still inside fn.
        // Late wakers find the counter exhausted and skip the job
        // entirely.
        MutexLock lock(mutex_);
        while (active_ != 0) {
            done_cv_.wait(mutex_);
        }
        fn_ = nullptr;
        ctx_ = nullptr;
        if (report_.ok()) {
            return;
        }
        report = std::move(report_);
        report_.errors.clear();
        first = std::move(first_error_);
        first_error_ = nullptr;
    }
    if (report.size() == 1 && first) {
        // One failure: hand back the original exception so callers
        // catching its concrete type still work.
        std::rethrow_exception(first);
    }
    throw ParallelError(std::move(report));
}

void
ThreadPool::WorkerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        void (*fn)(void *, std::size_t) = nullptr;
        void *ctx = nullptr;
        std::size_t count = 0;
        {
            MutexLock lock(mutex_);
            while (!stop_ && generation_ == seen) {
                wake_cv_.wait(mutex_);
            }
            if (stop_) {
                return;
            }
            seen = generation_;
            if (fn_ == nullptr) {
                continue;  // job already torn down; nothing to do
            }
            fn = fn_;
            ctx = ctx_;
            count = count_;
            ++active_;
        }
        t_inside_job = true;
        Execute(fn, ctx, count);
        t_inside_job = false;
        {
            MutexLock lock(mutex_);
            --active_;
        }
        done_cv_.notify_one();
    }
}

namespace {

std::size_t
InitialLaneCount()
{
    if (const char *env = std::getenv("HENTT_THREADS")) {
        const long v = std::atol(env);
        if (v >= 1) {
            return static_cast<std::size_t>(v);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

struct GlobalPoolState {
    Mutex mutex;  // guards pool (re)construction only
    std::shared_ptr<ThreadPool> pool HENTT_GUARDED_BY(mutex);
    std::atomic<std::size_t> lanes{InitialLaneCount()};
    std::atomic<std::size_t> grain{std::size_t{1} << 13};
};

GlobalPoolState &
State()
{
    static GlobalPoolState state;
    return state;
}

}  // namespace

std::shared_ptr<ThreadPool>
AcquireGlobalThreadPool()
{
    GlobalPoolState &s = State();
    MutexLock lock(s.mutex);
    if (!s.pool) {
        s.pool = std::make_shared<ThreadPool>(
            s.lanes.load(std::memory_order_relaxed) - 1);
    }
    return s.pool;
}

void
SetGlobalThreadCount(std::size_t lanes)
{
    GlobalPoolState &s = State();
    s.lanes.store(lanes == 0 ? 1 : lanes, std::memory_order_relaxed);
    MutexLock lock(s.mutex);
    // Rebuilt lazily at the new size; in-flight jobs keep the old pool
    // alive through their shared_ptr until they drain.
    s.pool.reset();
}

std::size_t
GlobalThreadCount()
{
    return State().lanes.load(std::memory_order_relaxed);
}

std::size_t
ParallelGrain()
{
    return State().grain.load(std::memory_order_relaxed);
}

void
SetParallelGrain(std::size_t elements)
{
    State().grain.store(elements == 0 ? 1 : elements,
                        std::memory_order_relaxed);
}

}  // namespace hentt
