/**
 * @file
 * Modular arithmetic over word-sized prime fields Z_p.
 *
 * Implements the three modular-multiplication strategies the paper
 * contrasts in Section IV:
 *
 *  - MulModNative  — the "native modulo" path: a 64x64 -> 128 multiply
 *                    followed by a hardware-division-based reduction.
 *                    On GPUs this compiles to ~68 instructions with a
 *                    ~500-cycle dependent latency (paper Fig. 1 baseline).
 *  - Shoup's modmul (Algo. 4) — one precomputed word per twiddle factor
 *                    (the "const ratio" w_bar = floor(w * 2^64 / p)); the
 *                    reduction costs two wide multiplies, one low
 *                    multiply, one subtract, and one conditional correct.
 *  - Barrett reduction — a per-modulus (not per-operand) precomputation
 *                    mu = floor(2^128 / p); reduces any 128-bit product.
 *
 * All routines require p < 2^62 so that the lazy (< 2p / < 4p) ranges used
 * by butterfly pipelines never overflow 64 bits.
 */

#ifndef HENTT_COMMON_MODARITH_H
#define HENTT_COMMON_MODARITH_H

#include <stdexcept>

#include "common/int128.h"

namespace hentt {

/** Largest modulus accepted by the lazy-reduction butterflies (< 2^62). */
inline constexpr u64 kMaxModulus = u64{1} << 62;

/** Throw std::invalid_argument unless 1 < p < 2^62. */
void ValidateModulus(u64 p);

/** (a + b) mod p, for a, b < p. */
constexpr u64
AddMod(u64 a, u64 b, u64 p)
{
    const u64 s = a + b;
    return s >= p ? s - p : s;
}

/** (a - b) mod p, for a, b < p. */
constexpr u64
SubMod(u64 a, u64 b, u64 p)
{
    return a >= b ? a - b : a + p - b;
}

/**
 * Fold a lazy-range residue x < 4p back into [0, p) — the final
 * correction of the lazy butterfly pipeline (paper Algo. 2), shared by
 * the NTT, the RnsPoly layer, and the batched HE kernels so the lazy
 * range convention lives in exactly one place.
 */
constexpr u64
FoldLazy(u64 x, u64 p)
{
    const u64 two_p = 2 * p;
    if (x >= two_p) {
        x -= two_p;
    }
    if (x >= p) {
        x -= p;
    }
    return x;
}

/** (a * b) mod p via the hardware 128-bit division path. */
constexpr u64
MulModNative(u64 a, u64 b, u64 p)
{
    return static_cast<u64>(Mul64Wide(a, b) % p);
}

/** a^e mod p by square-and-multiply. */
constexpr u64
PowMod(u64 a, u64 e, u64 p)
{
    u64 r = 1 % p;
    u64 base = a % p;
    while (e != 0) {
        if (e & 1u) {
            r = MulModNative(r, base, p);
        }
        base = MulModNative(base, base, p);
        e >>= 1;
    }
    return r;
}

/**
 * Multiplicative inverse mod prime p (Fermat: a^(p-2)).
 * @pre p prime, a not divisible by p.
 */
constexpr u64
InvMod(u64 a, u64 p)
{
    return PowMod(a, p - 2, p);
}

/**
 * Shoup precomputation: w_bar = floor(w * 2^64 / p).
 *
 * This is the per-twiddle companion word that doubles the precomputed
 * table size (paper Section IV, "Precomputed table size with batching").
 */
constexpr u64
ShoupPrecompute(u64 w, u64 p)
{
    return static_cast<u64>((static_cast<u128>(w) << 64) / p);
}

/**
 * Shoup's modular multiplication (paper Algo. 4), strict output < p.
 *
 * The quotient approximation undershoots the true quotient by less
 * than 1 + b/2^64 < 2 for ANY 64-bit @p b, so the residual b*w - q*p
 * is < 2p and the single conditional correction fully reduces it.
 * Lazy callers rely on this wider domain: [0, 4p)-range operands from
 * the keep-range NTT pipeline are valid inputs and come out < p.
 *
 * @param b      multiplicand; any 64-bit value (fully reduced on
 *               return), classically a strict value < p
 * @param w      twiddle factor, w < p
 * @param w_bar  ShoupPrecompute(w, p)
 */
constexpr u64
MulModShoup(u64 b, u64 w, u64 w_bar, u64 p)
{
    const u64 q = MulHi64(b, w_bar);        // approximate quotient
    u64 r = b * w - q * p;                  // exact mod-2^64 remainder
    if (r >= p) {
        r -= p;
    }
    return r;
}

/**
 * Lazy Shoup multiplication: accepts b < 2p, returns r < 2p.
 *
 * The butterfly kernels keep operands in the [0, 4p) range (Algo. 2's
 * precondition) and only reduce fully at the end, which is how the
 * GPU implementations minimise the conditional-subtract count.
 */
constexpr u64
MulModShoupLazy(u64 b, u64 w, u64 w_bar, u64 p)
{
    const u64 q = MulHi64(b, w_bar);
    return b * w - q * p;                   // < 2p for b < 2p, w < p
}

/**
 * Barrett reducer for a fixed modulus p < 2^62.
 *
 * Precomputes mu = floor(2^128 / p) once; Reduce() then maps any 128-bit
 * value into [0, p) with two wide multiplies and at most two corrective
 * subtractions. Unlike Shoup's method it needs no per-operand companion,
 * at the cost of a slightly more expensive reduction.
 */
class BarrettReducer
{
  public:
    explicit BarrettReducer(u64 p);

    u64 modulus() const { return p_; }

    /**
     * Reduce a 128-bit value into [0, p).
     *
     * The approximate quotient q = floor(z * mu / 2^128) undershoots the
     * true quotient by at most 2: mu itself undershoots 2^128 / p by
     * less than 1 (exactly 1 more when p is a power of two, since the
     * constructor uses floor((2^128 - 1) / p)), and the outer floor
     * loses less than 1 more. Hence z - q*p < 3p and exactly two
     * conditional subtractions suffice — no data-dependent loop.
     */
    u64
    Reduce(u128 z) const
    {
        const u128 q = Mul128High(z, mu_);
        // The true residual z - q*p is < 3p < 2^64 (p < 2^62), so the
        // subtraction can run mod 2^64: only the low words matter.
        u64 r = Lo64(z) - Lo64(q) * p_;
        if (r >= 2 * p_) {
            r -= 2 * p_;
        }
        if (r >= p_) {
            r -= p_;
        }
        return r;
    }

    /** (a * b) mod p through the Barrett pipeline. */
    u64
    MulMod(u64 a, u64 b) const
    {
        return Reduce(Mul64Wide(a, b));
    }

    /** Low word of mu — the word-split form the SIMD backends consume
     *  (simd::BarrettConsts). */
    u64 mu_lo() const { return Lo64(mu_); }
    /** High word of mu. */
    u64 mu_hi() const { return Hi64(mu_); }

    /**
     * (a * b + c) mod p in a single reduction.
     *
     * Valid whenever a*b + c fits in 128 bits; a, b < 2^63 with
     * c < 2^64 suffices (2^126 + 2^64 < 2^128). The batched execution
     * layer relies on this domain: lazy [0, 4p) operands (p < 2^62,
     * so < 2^63 each) with a fully reduced addend are in range.
     */
    u64
    MulAddMod(u64 a, u64 b, u64 c) const
    {
        return Reduce(Mul64Wide(a, b) + c);
    }

  private:
    u64 p_;
    u128 mu_;  // floor(2^128 / p)
};

}  // namespace hentt

#endif  // HENTT_COMMON_MODARITH_H
