/**
 * @file
 * Status / Result<T> / ErrorReport — the error-propagation vocabulary of
 * the fault-containment layer.
 *
 * A long-lived serving process (ROADMAP item 1) cannot treat a bad
 * parameter or a failed allocation as fatal: any single op must be able
 * to fail with the report reaching exactly its caller while unrelated
 * work completes. The types here carry that report:
 *
 *  - Status: an error code + message + provenance chain ("which op, on
 *    which node, inside which pipeline stage"). The OK value is a null
 *    pointer — constructing, copying, and testing a successful Status
 *    allocates nothing, so hot paths can return it freely.
 *  - Result<T>: a value-or-Status sum type for entry points that
 *    produce something (TryMul and friends).
 *  - ErrorReport: every failure of a fan-out dispatch, not just the
 *    first one — what ThreadPool::Run aggregates when several tasks of
 *    one job fail concurrently.
 *
 * The exception bridge at the bottom keeps both worlds consistent:
 * internal code still throws (RAII unwinding is what makes the chaos
 * suite leak-free), but every exception thrown by this library carries
 * a Status and derives from the std exception type its code maps to,
 * so legacy catch sites (std::invalid_argument / std::logic_error)
 * keep working while new callers extract structured provenance.
 */

#ifndef HENTT_COMMON_STATUS_H
#define HENTT_COMMON_STATUS_H

#include <exception>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace hentt {

/** Failure taxonomy of the execution stack. */
enum class ErrorCode {
    kOk = 0,
    kInvalidArgument,    ///< caller passed malformed operands
    kFailedPrecondition, ///< API misuse (wrong domain, missing keys, ...)
    kResourceExhausted,  ///< allocation failure / arena budget exceeded
    kInternal,           ///< invariant violation (canary, lazy range)
    kUnavailable,        ///< value not computed (pending / never ran)
    kPoisoned,           ///< an operand of this op failed upstream
    kInjected,           ///< a failpoint fired (fault-injection builds)
    kUnknown,            ///< unrecognised foreign exception
};

/** Stable lowercase name ("invalid_argument", "poisoned", ...). */
const char *ErrorCodeName(ErrorCode code);

/**
 * Error code + message + provenance frames. Value-semantic and cheap to
 * copy (the error payload is shared and immutable; adding a frame
 * builds a new payload). The default-constructed Status is OK and holds
 * no allocation.
 */
class [[nodiscard]] Status
{
  public:
    /** OK. */
    Status() = default;

    /** An error. @pre code != ErrorCode::kOk (use the default ctor). */
    Status(ErrorCode code, std::string message);

    static Status Ok() { return Status(); }

    bool ok() const { return rep_ == nullptr; }
    ErrorCode code() const
    {
        return rep_ == nullptr ? ErrorCode::kOk : rep_->code;
    }
    /** Empty for OK. */
    const std::string &message() const;

    /**
     * Provenance chain, innermost first — e.g.
     * {"BatchMul(ciphertext 2)", "HeOpGraph::Execute(node 7, Mul)"}.
     * Empty for OK.
     */
    const std::vector<std::string> &frames() const;

    /**
     * A copy of this status with @p frame appended to the provenance
     * chain (outer layers call this as the error climbs the stack).
     * No-op on OK.
     */
    [[nodiscard]] Status WithFrame(std::string frame) const;

    /** "poisoned: <msg> [at inner > outer]" ("ok" for success). */
    std::string ToString() const;

  private:
    struct Rep {
        ErrorCode code;
        std::string message;
        std::vector<std::string> frames;
    };
    std::shared_ptr<const Rep> rep_;  // null == OK
};

/**
 * Value-or-error return of the non-throwing pipeline entry points.
 * Construct from a T (success) or a non-OK Status (failure).
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    Result(T value) : value_(std::move(value)) {}
    Result(Status status) : status_(std::move(status))
    {
        if (status_.ok()) {
            // A Result must be exactly one of the two states.
            throw std::logic_error("Result constructed from OK Status");
        }
    }

    bool ok() const { return status_.ok(); }
    const Status &status() const { return status_; }

    /** @pre ok(). */
    T &value()
    {
        Check();
        return *value_;
    }
    const T &value() const
    {
        Check();
        return *value_;
    }
    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    void Check() const
    {
        if (!status_.ok()) {
            throw std::logic_error("Result::value() on error: " +
                                   status_.ToString());
        }
    }

    Status status_;
    std::optional<T> value_;
};

/**
 * Every failure of one fan-out dispatch — the aggregation ThreadPool
 * produces when several tasks of a job fail concurrently (first-wins
 * reporting dropped the rest; a chaos schedule that faults three limbs
 * must surface three errors).
 */
struct ErrorReport {
    std::vector<Status> errors;

    bool ok() const { return errors.empty(); }
    std::size_t size() const { return errors.size(); }

    /**
     * One Status summarising the report: the first error's code, with a
     * message listing every failure. OK when the report is empty.
     */
    Status Summary() const;
};

// ---------------------------------------------------------------------
// Exception bridge. Internal code throws (stack unwinding keeps the
// chaos suite leak-free under RAII); everything thrown here carries a
// Status and derives from the std exception type legacy catch sites
// expect.
// ---------------------------------------------------------------------

/** Mixin: any exception that carries a structured Status. */
class StatusCarrier
{
  public:
    virtual ~StatusCarrier() = default;
    virtual const Status &status() const = 0;
};

/** kInvalidArgument errors; catchable as std::invalid_argument. */
class InvalidArgumentError : public std::invalid_argument,
                             public StatusCarrier
{
  public:
    explicit InvalidArgumentError(Status status)
        : std::invalid_argument(status.ToString()),
          status_(std::move(status))
    {
    }
    const Status &status() const override { return status_; }

  private:
    Status status_;
};

/** kFailedPrecondition errors; catchable as std::logic_error. */
class PreconditionError : public std::logic_error, public StatusCarrier
{
  public:
    explicit PreconditionError(Status status)
        : std::logic_error(status.ToString()), status_(std::move(status))
    {
    }
    const Status &status() const override { return status_; }

  private:
    Status status_;
};

/** Runtime-shaped errors (exhausted, internal, poisoned, injected);
 *  catchable as std::runtime_error. */
class RuntimeStatusError : public std::runtime_error, public StatusCarrier
{
  public:
    explicit RuntimeStatusError(Status status)
        : std::runtime_error(status.ToString()), status_(std::move(status))
    {
    }
    const Status &status() const override { return status_; }

  private:
    Status status_;
};

/**
 * The aggregate thrown by ThreadPool::Run when more than one task of a
 * dispatch failed (a single failure rethrows the original exception
 * unchanged). status() is report().Summary().
 */
class ParallelError : public RuntimeStatusError
{
  public:
    explicit ParallelError(ErrorReport report)
        : RuntimeStatusError(report.Summary()), report_(std::move(report))
    {
    }
    const ErrorReport &report() const { return report_; }

  private:
    ErrorReport report_;
};

/**
 * Throw the exception subclass matching @p status's code (so a later
 * catch of the mapped std type still works). @pre !status.ok().
 */
[[noreturn]] void ThrowStatus(Status status);

/**
 * The Status of the in-flight exception — call inside a catch block.
 * StatusCarrier exceptions hand back their Status verbatim; std
 * exceptions are mapped by type (invalid_argument -> kInvalidArgument,
 * logic_error -> kFailedPrecondition, bad_alloc -> kResourceExhausted,
 * everything else -> kUnknown) with what() as the message.
 */
[[nodiscard]] Status CurrentExceptionToStatus();

}  // namespace hentt

#endif  // HENTT_COMMON_STATUS_H
