#include "common/primegen.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

#include "common/bitops.h"
#include "common/modarith.h"
#include "common/random.h"

namespace hentt {

namespace {

/**
 * One Miller-Rabin round with witness a. Returns true if n passes
 * (i.e. is a probable prime for this witness).
 */
bool
MillerRabinRound(u64 n, u64 a, u64 d, unsigned r)
{
    a %= n;
    if (a == 0) {
        return true;
    }
    u64 x = PowMod(a, d, n);
    if (x == 1 || x == n - 1) {
        return true;
    }
    for (unsigned i = 1; i < r; ++i) {
        x = MulModNative(x, x, n);
        if (x == n - 1) {
            return true;
        }
    }
    return false;
}

/** Pollard's rho with Brent's cycle detection. @pre n composite, odd. */
u64
PollardRho(u64 n, Xoshiro256 &rng)
{
    if (n % 2 == 0) {
        return 2;
    }
    while (true) {
        const u64 c = rng.NextBelow(n - 1) + 1;
        u64 x = rng.NextBelow(n);
        u64 y = x;
        u64 d = 1;
        auto step = [&](u64 v) {
            return static_cast<u64>((Mul64Wide(v, v) + c) % n);
        };
        while (d == 1) {
            x = step(x);
            y = step(step(y));
            const u64 diff = x > y ? x - y : y - x;
            if (diff == 0) {
                break;  // cycle without factor; retry with a new c
            }
            d = std::gcd(diff, n);
        }
        if (d != 1 && d != n) {
            return d;
        }
    }
}

void
FactorInto(u64 n, std::vector<u64> &factors, Xoshiro256 &rng)
{
    if (n == 1) {
        return;
    }
    if (IsPrime(n)) {
        factors.push_back(n);
        return;
    }
    // Strip small factors first; rho converges faster on semiprimes.
    for (u64 f : {u64{2}, u64{3}, u64{5}, u64{7}, u64{11}, u64{13}}) {
        if (n % f == 0) {
            factors.push_back(f);
            while (n % f == 0) {
                n /= f;
            }
            FactorInto(n, factors, rng);
            return;
        }
    }
    const u64 d = PollardRho(n, rng);
    FactorInto(d, factors, rng);
    u64 rest = n;
    while (rest % d == 0) {
        rest /= d;
    }
    FactorInto(rest, factors, rng);
}

}  // namespace

bool
IsPrime(u64 n)
{
    if (n < 2) {
        return false;
    }
    for (u64 f : {u64{2}, u64{3}, u64{5}, u64{7}, u64{11}, u64{13}, u64{17},
                  u64{19}, u64{23}, u64{29}, u64{31}, u64{37}}) {
        if (n == f) {
            return true;
        }
        if (n % f == 0) {
            return false;
        }
    }
    u64 d = n - 1;
    unsigned r = 0;
    while ((d & 1u) == 0) {
        d >>= 1;
        ++r;
    }
    // Deterministic witness set for all n < 2^64 (Sinclair).
    for (u64 a : {u64{2}, u64{3}, u64{5}, u64{7}, u64{11}, u64{13}, u64{17},
                  u64{19}, u64{23}, u64{29}, u64{31}, u64{37}}) {
        if (!MillerRabinRound(n, a, d, r)) {
            return false;
        }
    }
    return true;
}

std::vector<u64>
DistinctPrimeFactors(u64 n)
{
    std::vector<u64> factors;
    Xoshiro256 rng(0xfac7042ULL);
    FactorInto(n, factors, rng);
    std::sort(factors.begin(), factors.end());
    factors.erase(std::unique(factors.begin(), factors.end()),
                  factors.end());
    return factors;
}

std::vector<u64>
GenerateNttPrimes(u64 modulus_step, unsigned bits, std::size_t count)
{
    if (!IsPowerOfTwo(modulus_step)) {
        throw std::invalid_argument("modulus_step must be a power of two");
    }
    if (bits < Log2Exact(modulus_step) + 2 || bits > 62) {
        throw std::invalid_argument("prime size out of range");
    }
    std::vector<u64> primes;
    primes.reserve(count);
    const u64 hi = (u64{1} << bits) - 1;
    const u64 lo = u64{1} << (bits - 1);
    // Largest candidate == 1 (mod step) at or below hi.
    u64 candidate = hi - ((hi - 1) % modulus_step);
    for (; candidate > lo && primes.size() < count;
         candidate -= modulus_step) {
        if (IsPrime(candidate)) {
            primes.push_back(candidate);
        }
    }
    if (primes.size() < count) {
        throw std::runtime_error(
            "not enough " + std::to_string(bits) + "-bit NTT primes for "
            "step " + std::to_string(modulus_step));
    }
    return primes;
}

u64
FindGenerator(u64 p)
{
    if (!IsPrime(p)) {
        throw std::invalid_argument("FindGenerator requires a prime");
    }
    const u64 order = p - 1;
    const std::vector<u64> factors = DistinctPrimeFactors(order);
    for (u64 g = 2; g < p; ++g) {
        bool generator = true;
        for (u64 q : factors) {
            if (PowMod(g, order / q, p) == 1) {
                generator = false;
                break;
            }
        }
        if (generator) {
            return g;
        }
    }
    throw std::runtime_error("no generator found (non-prime modulus?)");
}

u64
FindPrimitiveRoot(u64 n, u64 p)
{
    if ((p - 1) % n != 0) {
        throw std::invalid_argument(
            "n must divide p - 1 for an n-th root of unity to exist");
    }
    const u64 g = FindGenerator(p);
    const u64 root = PowMod(g, (p - 1) / n, p);
    return root;
}

bool
IsPrimitiveRoot(u64 root, u64 n, u64 p)
{
    if (root == 0 || PowMod(root, n, p) != 1) {
        return false;
    }
    for (u64 q : DistinctPrimeFactors(n)) {
        if (PowMod(root, n / q, p) == 1) {
            return false;
        }
    }
    return true;
}

}  // namespace hentt
