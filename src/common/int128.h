/**
 * @file
 * Wide-integer helpers built on the compiler-provided unsigned __int128.
 *
 * All modular-arithmetic primitives in hentt (native reduction, Shoup's
 * modmul, Barrett reduction) are expressed in terms of the 64x64 -> 128
 * multiply and the 128x128 -> high-128 multiply defined here, so the rest
 * of the library never touches __int128 directly.
 */

#ifndef HENTT_COMMON_INT128_H
#define HENTT_COMMON_INT128_H

#include <cstdint>

namespace hentt {

using u8 = std::uint8_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using u128 = unsigned __int128;

/** Full 64x64 -> 128-bit product. */
constexpr u128
Mul64Wide(u64 a, u64 b)
{
    return static_cast<u128>(a) * b;
}

/** High 64 bits of the 64x64 product (CUDA's __umul64hi equivalent). */
constexpr u64
MulHi64(u64 a, u64 b)
{
    return static_cast<u64>(Mul64Wide(a, b) >> 64);
}

/** Low 64 bits of the 64x64 product. */
constexpr u64
MulLo64(u64 a, u64 b)
{
    return a * b;
}

/** Low and high halves of a 128-bit value. */
constexpr u64
Lo64(u128 x)
{
    return static_cast<u64>(x);
}

constexpr u64
Hi64(u128 x)
{
    return static_cast<u64>(x >> 64);
}

/**
 * High 128 bits of the 128x128 -> 256-bit product.
 *
 * Used by Barrett reduction, where the approximate quotient is
 * floor(z * mu / 2^128) for 128-bit z and mu. The 256-bit product is
 * assembled from four 64x64 partial products; only the carries that can
 * influence the top half are propagated.
 */
constexpr u128
Mul128High(u128 a, u128 b)
{
    const u64 a_lo = Lo64(a), a_hi = Hi64(a);
    const u64 b_lo = Lo64(b), b_hi = Hi64(b);

    const u128 ll = Mul64Wide(a_lo, b_lo);
    const u128 lh = Mul64Wide(a_lo, b_hi);
    const u128 hl = Mul64Wide(a_hi, b_lo);
    const u128 hh = Mul64Wide(a_hi, b_hi);

    // Middle column: lh + hl + carry-out of the low column.
    const u128 mid = lh + Hi64(ll);
    const u128 mid2 = hl + Lo64(mid);
    return hh + Hi64(mid) + Hi64(mid2);
}

}  // namespace hentt

#endif  // HENTT_COMMON_INT128_H
