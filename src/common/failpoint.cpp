/** @file Failpoint registry, arming state, and the roll RNG. */

#include "common/failpoint.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/mutex.h"

namespace hentt::fp {

namespace {

/** Arming modes. */
enum Mode : int { kOff = 0, kProb = 1, kNth = 2 };

/**
 * Per-site state. Everything is atomic so pool workers can pass a site
 * while the harness thread reads counters; arming itself must be
 * quiescent (documented in the header).
 */
struct Site {
    const char *name;
    std::atomic<int> mode{kOff};
    std::atomic<std::uint64_t> prob_bits{0};   ///< bit-cast double
    std::atomic<std::uint64_t> nth_target{0};  ///< absolute pass index
    std::atomic<std::uint64_t> passes{0};
    std::atomic<std::uint64_t> fires{0};
};

Site g_sites[] = {
    {kArenaAlloc},   {kPoolTask},      {kSimdDispatch},
    {kNttStage},     {kNttRangeGuard}, {kServeRequest},
};
constexpr std::size_t kSiteCount = sizeof(g_sites) / sizeof(g_sites[0]);

/** Number of sites with mode != kOff — the macro fast gate. */
std::atomic<int> g_armed_sites{0};

/**
 * Serialises the arming API (Arm/ArmNth/DisarmAll/ResetAll) against
 * itself. Per-site state is atomic, so ShouldFire on pool workers never
 * takes this lock; the mutex only keeps *compound* arming updates (e.g.
 * ArmNth's read-passes/store-target/set-mode sequence) from interleaving
 * when two harness threads reconfigure sites concurrently.
 */
Mutex g_arm_mutex;

/** Roll RNG seed; bumping the epoch refreshes thread-local streams. */
std::atomic<std::uint64_t> g_seed{0x9e3779b97f4a7c15ull};
std::atomic<std::uint64_t> g_seed_epoch{0};
std::atomic<std::uint64_t> g_thread_ordinal{0};

std::uint64_t
SplitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Uniform double in [0,1) from a per-thread stream derived from the
 *  global seed (re-derived whenever SeedRng bumps the epoch). */
double
Roll()
{
    thread_local std::uint64_t state = 0;
    thread_local std::uint64_t epoch = ~std::uint64_t{0};
    thread_local std::uint64_t ordinal =
        g_thread_ordinal.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t now = g_seed_epoch.load(std::memory_order_acquire);
    if (epoch != now) {
        epoch = now;
        state = g_seed.load(std::memory_order_relaxed) ^
                (ordinal * 0xd1342543de82ef95ull);
    }
    return static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53;
}

Site *
Find(const char *site)
{
    for (auto &s : g_sites) {
        if (std::strcmp(s.name, site) == 0) {
            return &s;
        }
    }
    return nullptr;
}

Site &
FindOrThrow(const char *site)
{
    if (Site *s = Find(site)) {
        return *s;
    }
    ThrowStatus(Status(ErrorCode::kInvalidArgument,
                       std::string("unknown failpoint site '") + site +
                           "'"));
}

/** Swap a site's mode, keeping the armed-site gate in sync. */
void
SetMode(Site &site, int mode)
{
    const int prev = site.mode.exchange(mode, std::memory_order_acq_rel);
    if (prev == kOff && mode != kOff) {
        g_armed_sites.fetch_add(1, std::memory_order_relaxed);
    } else if (prev != kOff && mode == kOff) {
        g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
    }
}

std::uint64_t
BitsOf(double d)
{
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return bits;
}

double
DoubleOf(std::uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

}  // namespace

std::size_t
SiteCount()
{
    return kSiteCount;
}

const char *
SiteName(std::size_t i)
{
    return i < kSiteCount ? g_sites[i].name : nullptr;
}

void
Arm(const char *site, double probability)
{
    if (!(probability >= 0.0 && probability <= 1.0)) {
        ThrowStatus(Status(ErrorCode::kInvalidArgument,
                           "failpoint probability must be in [0,1]"));
    }
    Site &s = FindOrThrow(site);
    MutexLock lock(g_arm_mutex);
    if (probability == 0.0) {
        SetMode(s, kOff);
        return;
    }
    s.prob_bits.store(BitsOf(probability), std::memory_order_relaxed);
    SetMode(s, kProb);
}

void
ArmNth(const char *site, std::uint64_t nth)
{
    if (nth == 0) {
        ThrowStatus(Status(ErrorCode::kInvalidArgument,
                           "ArmNth: nth is 1-based; 0 never fires"));
    }
    Site &s = FindOrThrow(site);
    MutexLock lock(g_arm_mutex);
    s.nth_target.store(s.passes.load(std::memory_order_relaxed) + nth,
                       std::memory_order_relaxed);
    SetMode(s, kNth);
}

void
DisarmAll()
{
    MutexLock lock(g_arm_mutex);
    for (auto &s : g_sites) {
        SetMode(s, kOff);
    }
}

void
ResetAll()
{
    MutexLock lock(g_arm_mutex);
    for (auto &s : g_sites) {
        SetMode(s, kOff);
        s.passes.store(0, std::memory_order_relaxed);
        s.fires.store(0, std::memory_order_relaxed);
    }
}

void
SeedRng(std::uint64_t seed)
{
    g_seed.store(seed, std::memory_order_relaxed);
    g_seed_epoch.fetch_add(1, std::memory_order_release);
}

std::uint64_t
FireCount(const char *site)
{
    return FindOrThrow(site).fires.load(std::memory_order_relaxed);
}

std::uint64_t
PassCount(const char *site)
{
    return FindOrThrow(site).passes.load(std::memory_order_relaxed);
}

bool
Armed(const char *site)
{
    return FindOrThrow(site).mode.load(std::memory_order_acquire) != kOff;
}

bool
ShouldFire(const char *site)
{
    Site *s = Find(site);
    if (s == nullptr) {
        return false;  // never fault inside a pipeline on a bad name
    }
    const std::uint64_t pass =
        s->passes.fetch_add(1, std::memory_order_relaxed) + 1;
    switch (s->mode.load(std::memory_order_acquire)) {
      case kNth: {
        if (pass < s->nth_target.load(std::memory_order_relaxed)) {
            return false;
        }
        // Single fire: the first thread to flip the mode wins; a racing
        // pass that also reached the target sees kOff and stays clean.
        int expected = kNth;
        if (s->mode.compare_exchange_strong(expected, kOff,
                                            std::memory_order_acq_rel)) {
            g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
            s->fires.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        return false;
      }
      case kProb: {
        const double p =
            DoubleOf(s->prob_bits.load(std::memory_order_relaxed));
        if (Roll() < p) {
            s->fires.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        return false;
      }
      default:
        return false;
    }
}

void
RaiseInjected(const char *site)
{
    ThrowStatus(Status(ErrorCode::kInjected, "injected fault")
                    .WithFrame(std::string("failpoint ") + site));
}

std::size_t
ArmFromEnv()
{
    std::size_t armed = 0;
    if (const char *seed_env = std::getenv("HENTT_FP_SEED")) {
        SeedRng(std::strtoull(seed_env, nullptr, 0));
    }
    const char *spec = std::getenv("HENTT_FAILPOINTS");
    if (spec == nullptr) {
        return 0;
    }
    std::string entry;
    for (const char *p = spec;; ++p) {
        if (*p != '\0' && *p != ',') {
            entry += *p;
            continue;
        }
        const std::size_t eq = entry.find('=');
        if (eq != std::string::npos) {
            const std::string name = entry.substr(0, eq);
            char *end = nullptr;
            const double prob =
                std::strtod(entry.c_str() + eq + 1, &end);
            if (Find(name.c_str()) != nullptr && end != nullptr &&
                *end == '\0' && prob >= 0.0 && prob <= 1.0) {
                Arm(name.c_str(), prob);
                ++armed;
            } else {
                std::fprintf(stderr,
                             "hentt: ignoring bad HENTT_FAILPOINTS "
                             "entry '%s'\n",
                             entry.c_str());
            }
        } else if (!entry.empty()) {
            std::fprintf(stderr,
                         "hentt: ignoring bad HENTT_FAILPOINTS entry "
                         "'%s'\n",
                         entry.c_str());
        }
        entry.clear();
        if (*p == '\0') {
            break;
        }
    }
    return armed;
}

namespace internal {

bool
AnyArmed()
{
    return g_armed_sites.load(std::memory_order_relaxed) != 0;
}

}  // namespace internal

}  // namespace hentt::fp
