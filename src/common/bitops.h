/**
 * @file
 * Bit-manipulation utilities: power-of-two predicates, integer log2,
 * and the bit-reversal permutation used by decimation-in-time FFT/NTT
 * algorithms (paper Algo. 1 stores twiddles in bit-reversed order).
 */

#ifndef HENTT_COMMON_BITOPS_H
#define HENTT_COMMON_BITOPS_H

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>

#include "common/int128.h"

namespace hentt {

/** True iff x is a (positive) power of two. */
constexpr bool
IsPowerOfTwo(u64 x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)); x must be non-zero. */
constexpr unsigned
Log2Floor(u64 x)
{
    return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/** log2 of a power of two. */
constexpr unsigned
Log2Exact(u64 x)
{
    return Log2Floor(x);
}

/**
 * a * b saturated at the type maximum instead of wrapping. Work-size
 * heuristics (e.g. the ParallelFor grain test) multiply counts by
 * per-item costs; for degree x limb products the exact value past the
 * saturation point is irrelevant, but a wrapped value would silently
 * flip a huge job onto a small-job code path.
 */
constexpr std::size_t
SaturatingMul(std::size_t a, std::size_t b)
{
    constexpr std::size_t kMax = ~std::size_t{0};
    return (b != 0 && a > kMax / b) ? kMax : a * b;
}

/**
 * Reverse the low @p bits bits of @p x.
 *
 * Example: BitReverse(0b0011, 4) == 0b1100.
 */
constexpr u64
BitReverse(u64 x, unsigned bits)
{
    u64 r = 0;
    for (unsigned i = 0; i < bits; ++i) {
        r = (r << 1) | ((x >> i) & 1u);
    }
    return r;
}

/**
 * Apply the bit-reversal permutation in place to a power-of-two-length
 * span. Swaps each index with its bit-reversed image exactly once.
 */
template <typename T>
void
BitReversePermute(std::span<T> data)
{
    const std::size_t n = data.size();
    const unsigned bits = Log2Exact(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t j = BitReverse(i, bits);
        if (i < j) {
            std::swap(data[i], data[j]);
        }
    }
}

}  // namespace hentt

#endif  // HENTT_COMMON_BITOPS_H
