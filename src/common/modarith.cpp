#include "common/modarith.h"

#include <string>

namespace hentt {

void
ValidateModulus(u64 p)
{
    if (p < 2 || p >= kMaxModulus) {
        throw std::invalid_argument(
            "modulus must satisfy 1 < p < 2^62, got " + std::to_string(p));
    }
}

BarrettReducer::BarrettReducer(u64 p) : p_(p)
{
    ValidateModulus(p);
    // floor(2^128 / p) == floor((2^128 - 1) / p) for any p that does not
    // divide 2^128, i.e. any p that is not a power of two; for powers of
    // two the two quotients differ by one, which widens the quotient
    // undershoot in Reduce() to at most 2 — still within the r < 3p
    // bound its two fixed conditional subtractions absorb.
    mu_ = ~u128{0} / p;
}

}  // namespace hentt
