/**
 * @file
 * Annotated mutex primitives — std::mutex wrapped so Clang's
 * thread-safety analysis can see lock acquisition and release.
 *
 * libstdc++'s std::mutex and std::lock_guard carry no capability
 * attributes, so code locking them directly is invisible to
 * `-Wthread-safety`: every access to a GUARDED_BY member would warn
 * even when the discipline is correct. The wrappers here are the
 * library-wide replacement — same semantics, zero overhead (every
 * method is an inline forward), plus the annotations that let the
 * analysis prove the discipline instead of trusting it.
 *
 * Condition variables: use hentt::CondVar (std::condition_variable_any)
 * and wait on the Mutex itself with a manual predicate loop,
 *
 *     MutexLock lock(mutex_);
 *     while (!wake_condition_) {   // guarded reads, lock held
 *         cv_.wait(mutex_);        // unlock/relock inside the wait
 *     }
 *
 * The unlock/relock inside wait() happens in the standard library and
 * is invisible to the analysis — which is exactly right, because the
 * lock is held again whenever user code runs. Predicate lambdas passed
 * to wait(lock, pred) would be analyzed as unannotated functions and
 * warn on guarded reads; the manual loop keeps the predicate in the
 * annotated caller's body.
 */

#ifndef HENTT_COMMON_MUTEX_H
#define HENTT_COMMON_MUTEX_H

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace hentt {

/** std::mutex with capability annotations (see file comment). */
class HENTT_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() HENTT_ACQUIRE() { m_.lock(); }
    void unlock() HENTT_RELEASE() { m_.unlock(); }
    bool try_lock() HENTT_TRY_ACQUIRE(true) { return m_.try_lock(); }

  private:
    std::mutex m_;
};

/** Scoped lock of a Mutex (the annotated std::lock_guard). */
class HENTT_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) HENTT_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_.lock();
    }
    ~MutexLock() HENTT_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

/**
 * Condition variable usable with Mutex: condition_variable_any waits
 * on any BasicLockable, and Mutex is one. Waits must follow the manual
 * predicate-loop idiom in the file comment.
 */
using CondVar = std::condition_variable_any;

}  // namespace hentt

#endif  // HENTT_COMMON_MUTEX_H
