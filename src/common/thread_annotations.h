/**
 * @file
 * Portable Clang thread-safety-analysis annotations.
 *
 * The concurrent core (ThreadPool, HeOpGraph, NttEngineRegistry, the
 * failpoint registry, ScratchArena) encodes its locking discipline in
 * these attributes so `clang -Wthread-safety` proves, at compile time,
 * that every access to a guarded member happens with the right mutex
 * held — the static sibling of the TSan CI leg. GCC and other
 * compilers see empty macros: the annotations cost nothing and change
 * nothing outside the clang static-analysis build (CI's
 * clang-thread-safety job compiles with -Werror=thread-safety).
 *
 * Names follow the current Clang documentation (ACQUIRE/RELEASE
 * vocabulary) behind a HENTT_ prefix. Use them through
 * `common/mutex.h`'s annotated Mutex/MutexLock wrappers — a bare
 * std::mutex is invisible to the analysis because libstdc++ does not
 * annotate it.
 */

#ifndef HENTT_COMMON_THREAD_ANNOTATIONS_H
#define HENTT_COMMON_THREAD_ANNOTATIONS_H

#if defined(__clang__) && defined(__has_attribute)
#define HENTT_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define HENTT_THREAD_ANNOTATION_IMPL(x)  // not clang: no-op
#endif

/** Class attribute: this type is a lockable capability ("mutex"). */
#define HENTT_CAPABILITY(x) \
    HENTT_THREAD_ANNOTATION_IMPL(capability(x))

/** Class attribute: RAII object holding a capability for its scope. */
#define HENTT_SCOPED_CAPABILITY \
    HENTT_THREAD_ANNOTATION_IMPL(scoped_lockable)

/** Data member readable/writable only with the capability held. */
#define HENTT_GUARDED_BY(x) HENTT_THREAD_ANNOTATION_IMPL(guarded_by(x))

/** Pointer member whose *pointee* is guarded by the capability. */
#define HENTT_PT_GUARDED_BY(x) \
    HENTT_THREAD_ANNOTATION_IMPL(pt_guarded_by(x))

/** Function precondition: capability held on entry (and on exit). */
#define HENTT_REQUIRES(...) \
    HENTT_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))

/** Function acquires the capability (not held on entry). */
#define HENTT_ACQUIRE(...) \
    HENTT_THREAD_ANNOTATION_IMPL(acquire_capability(__VA_ARGS__))

/** Function releases the capability (held on entry). */
#define HENTT_RELEASE(...) \
    HENTT_THREAD_ANNOTATION_IMPL(release_capability(__VA_ARGS__))

/** Function acquires the capability when returning @p result. */
#define HENTT_TRY_ACQUIRE(...) \
    HENTT_THREAD_ANNOTATION_IMPL(try_acquire_capability(__VA_ARGS__))

/** Function must NOT be called with the capability held (deadlock
 *  guard for functions that acquire it themselves). */
#define HENTT_EXCLUDES(...) \
    HENTT_THREAD_ANNOTATION_IMPL(locks_excluded(__VA_ARGS__))

/** Documented lock-ordering edge: this mutex is acquired before @p x.
 *  Checked under -Wthread-safety-beta; documentation otherwise. */
#define HENTT_ACQUIRED_BEFORE(...) \
    HENTT_THREAD_ANNOTATION_IMPL(acquired_before(__VA_ARGS__))

/** Documented lock-ordering edge: acquired while @p x is held. */
#define HENTT_ACQUIRED_AFTER(...) \
    HENTT_THREAD_ANNOTATION_IMPL(acquired_after(__VA_ARGS__))

/** Function returns a reference to a capability-guarded object. */
#define HENTT_RETURN_CAPABILITY(x) \
    HENTT_THREAD_ANNOTATION_IMPL(lock_returned(x))

/** Escape hatch: skip analysis of this function body (its interface
 *  annotations still apply to callers). Use sparingly, with a comment
 *  saying why the body defeats the analysis. */
#define HENTT_NO_THREAD_SAFETY_ANALYSIS \
    HENTT_THREAD_ANNOTATION_IMPL(no_thread_safety_analysis)

#endif  // HENTT_COMMON_THREAD_ANNOTATIONS_H
