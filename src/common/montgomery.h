/**
 * @file
 * Montgomery multiplication — the third standard fast modular-multiply
 * family alongside Shoup's modmul and Barrett reduction (paper Section
 * IV mentions the latter two; Montgomery is what several competing GPU
 * NTT libraries, e.g. cuFHE-descended ones, use instead). Provided for
 * completeness and for the micro-benchmark comparison.
 *
 * Values are kept in Montgomery form x' = x * R mod p with R = 2^64;
 * REDC maps a 128-bit product back with two multiplies and no division.
 * Requires odd p < 2^62.
 */

#ifndef HENTT_COMMON_MONTGOMERY_H
#define HENTT_COMMON_MONTGOMERY_H

#include "common/int128.h"

namespace hentt {

/** Montgomery context for a fixed odd modulus. */
class MontgomeryMultiplier
{
  public:
    /** @throws std::invalid_argument unless p is odd and < 2^62. */
    explicit MontgomeryMultiplier(u64 p);

    u64 modulus() const { return p_; }

    /** Map x (< p) into Montgomery form: x * 2^64 mod p. */
    u64
    ToMontgomery(u64 x) const
    {
        // x * R mod p == REDC(x * R^2).
        return Reduce(Mul64Wide(x, r_squared_));
    }

    /** Map a Montgomery-form value back: x' * 2^-64 mod p. */
    u64
    FromMontgomery(u64 x) const
    {
        return Reduce(static_cast<u128>(x));
    }

    /** Product of two Montgomery-form values, in Montgomery form. */
    u64
    MulMont(u64 a, u64 b) const
    {
        return Reduce(Mul64Wide(a, b));
    }

    /** Plain (a * b) mod p through the Montgomery pipeline. */
    u64
    MulMod(u64 a, u64 b) const
    {
        return FromMontgomery(MulMont(ToMontgomery(a), ToMontgomery(b)));
    }

    /**
     * REDC: given T < p * 2^64, return T * 2^-64 mod p, result < p.
     */
    u64
    Reduce(u128 t) const
    {
        const u64 m = Lo64(t) * p_inv_neg_;       // mod 2^64
        const u128 sum = t + Mul64Wide(m, p_);    // divisible by 2^64
        u64 r = Hi64(sum);
        if (r >= p_) {
            r -= p_;
        }
        return r;
    }

  private:
    u64 p_;
    u64 p_inv_neg_;  // -p^{-1} mod 2^64
    u64 r_squared_;  // 2^128 mod p
};

}  // namespace hentt

#endif  // HENTT_COMMON_MONTGOMERY_H
