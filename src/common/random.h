/**
 * @file
 * Deterministic pseudo-random generation (xoshiro256**), used for test
 * vectors, workload generation, and HE noise sampling. Header-only.
 *
 * A dedicated generator (instead of std::mt19937_64) keeps every
 * experiment reproducible across standard-library implementations.
 */

#ifndef HENTT_COMMON_RANDOM_H
#define HENTT_COMMON_RANDOM_H

#include <array>
#include <cstdint>

#include "common/int128.h"

namespace hentt {

/** SplitMix64 step; used to expand a single seed into a xoshiro state. */
constexpr u64
SplitMix64(u64 &state)
{
    u64 z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** 1.0 (Blackman & Vigna). Full 2^256-1 period, passes
 * BigCrush; more than adequate for workload generation.
 */
class Xoshiro256
{
  public:
    explicit Xoshiro256(u64 seed = 0x5eed5eed5eed5eedULL)
    {
        u64 sm = seed;
        for (auto &word : state_) {
            word = SplitMix64(sm);
        }
    }

    u64
    Next()
    {
        const u64 result = Rotl(state_[1] * 5, 7) * 9;
        const u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = Rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound) by 128-bit multiply (no modulo bias worth
     *  caring about at 64-bit width). */
    u64
    NextBelow(u64 bound)
    {
        return static_cast<u64>(Mul64Wide(Next(), bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    NextDouble()
    {
        return static_cast<double>(Next() >> 11) * 0x1.0p-53;
    }

    /** Standard-normal sample via Box-Muller (used by Gaussian HE noise). */
    double
    NextGaussian()
    {
        if (have_cached_) {
            have_cached_ = false;
            return cached_;
        }
        double u1 = NextDouble();
        double u2 = NextDouble();
        while (u1 <= 1e-300) {
            u1 = NextDouble();
        }
        const double r = __builtin_sqrt(-2.0 * __builtin_log(u1));
        const double theta = 2.0 * 3.141592653589793238462643 * u2;
        cached_ = r * __builtin_sin(theta);
        have_cached_ = true;
        return r * __builtin_cos(theta);
    }

  private:
    static constexpr u64
    Rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<u64, 4> state_{};
    double cached_ = 0.0;
    bool have_cached_ = false;
};

}  // namespace hentt

#endif  // HENTT_COMMON_RANDOM_H
