#include "common/montgomery.h"

#include <stdexcept>

#include "common/modarith.h"

namespace hentt {

MontgomeryMultiplier::MontgomeryMultiplier(u64 p) : p_(p)
{
    ValidateModulus(p);
    if ((p & 1u) == 0) {
        throw std::invalid_argument("Montgomery requires an odd modulus");
    }
    // Newton iteration for p^{-1} mod 2^64 (doubles correct bits each
    // step; 6 steps reach 64 bits from the 5-bit seed p mod 32).
    u64 inv = p;  // correct to 3 bits for odd p
    for (int i = 0; i < 6; ++i) {
        inv *= 2 - p * inv;
    }
    p_inv_neg_ = ~inv + 1;  // -p^{-1} mod 2^64

    // R^2 = 2^128 mod p, squared from R = 2^64 mod p.
    const u64 r_mod_p = (~u64{0} % p + 1) % p;
    r_squared_ = MulModNative(r_mod_p, r_mod_p, p);
}

}  // namespace hentt
