/** @file Status / ErrorReport / exception-bridge implementation. */

#include "common/status.h"

#include <new>

namespace hentt {

namespace {

/** Shared empties so accessors on OK never allocate. */
const std::string &
EmptyString()
{
    static const std::string kEmpty;
    return kEmpty;
}

const std::vector<std::string> &
EmptyFrames()
{
    static const std::vector<std::string> kEmpty;
    return kEmpty;
}

}  // namespace

const char *
ErrorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::kOk:
        return "ok";
      case ErrorCode::kInvalidArgument:
        return "invalid_argument";
      case ErrorCode::kFailedPrecondition:
        return "failed_precondition";
      case ErrorCode::kResourceExhausted:
        return "resource_exhausted";
      case ErrorCode::kInternal:
        return "internal";
      case ErrorCode::kUnavailable:
        return "unavailable";
      case ErrorCode::kPoisoned:
        return "poisoned";
      case ErrorCode::kInjected:
        return "injected";
      case ErrorCode::kUnknown:
        break;
    }
    return "unknown";
}

Status::Status(ErrorCode code, std::string message)
{
    if (code == ErrorCode::kOk) {
        // Misuse; degrade to an explicit unknown error rather than a
        // Status that claims success while carrying a message.
        code = ErrorCode::kUnknown;
    }
    rep_ = std::make_shared<const Rep>(Rep{code, std::move(message), {}});
}

const std::string &
Status::message() const
{
    return rep_ == nullptr ? EmptyString() : rep_->message;
}

const std::vector<std::string> &
Status::frames() const
{
    return rep_ == nullptr ? EmptyFrames() : rep_->frames;
}

Status
Status::WithFrame(std::string frame) const
{
    if (rep_ == nullptr) {
        return *this;
    }
    Rep copy = *rep_;
    copy.frames.push_back(std::move(frame));
    Status out;
    out.rep_ = std::make_shared<const Rep>(std::move(copy));
    return out;
}

std::string
Status::ToString() const
{
    if (rep_ == nullptr) {
        return "ok";
    }
    std::string out = ErrorCodeName(rep_->code);
    out += ": ";
    out += rep_->message;
    if (!rep_->frames.empty()) {
        out += " [at ";
        for (std::size_t i = 0; i < rep_->frames.size(); ++i) {
            if (i != 0) {
                out += " > ";
            }
            out += rep_->frames[i];
        }
        out += "]";
    }
    return out;
}

Status
ErrorReport::Summary() const
{
    if (errors.empty()) {
        return Status::Ok();
    }
    if (errors.size() == 1) {
        return errors.front();
    }
    std::string message =
        std::to_string(errors.size()) + " tasks failed: ";
    for (std::size_t i = 0; i < errors.size(); ++i) {
        if (i != 0) {
            message += "; ";
        }
        message += "[";
        message += std::to_string(i);
        message += "] ";
        message += errors[i].ToString();
    }
    return Status(errors.front().code(), std::move(message));
}

void
ThrowStatus(Status status)
{
    switch (status.code()) {
      case ErrorCode::kInvalidArgument:
        throw InvalidArgumentError(std::move(status));
      case ErrorCode::kFailedPrecondition:
        throw PreconditionError(std::move(status));
      case ErrorCode::kOk:
        // @pre violated; surface it as a precondition failure instead
        // of silently returning from a [[noreturn] ] function.
        throw PreconditionError(Status(
            ErrorCode::kFailedPrecondition, "ThrowStatus(OK status)"));
      default:
        throw RuntimeStatusError(std::move(status));
    }
}

Status
CurrentExceptionToStatus()
{
    try {
        throw;
    } catch (const StatusCarrier &carrier) {
        return carrier.status();
    } catch (const std::invalid_argument &e) {
        return Status(ErrorCode::kInvalidArgument, e.what());
    } catch (const std::bad_alloc &e) {
        return Status(ErrorCode::kResourceExhausted, e.what());
    } catch (const std::logic_error &e) {
        return Status(ErrorCode::kFailedPrecondition, e.what());
    } catch (const std::exception &e) {
        return Status(ErrorCode::kUnknown, e.what());
    } catch (...) {
        return Status(ErrorCode::kUnknown, "non-std exception");
    }
}

}  // namespace hentt
