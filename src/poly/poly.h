/**
 * @file
 * Polynomials in R_p = Z_p[X]/(X^N + 1), the per-prime rings an HE
 * ciphertext decomposes into under CRT (paper Section III-B).
 */

#ifndef HENTT_POLY_POLY_H
#define HENTT_POLY_POLY_H

#include <cstddef>
#include <span>
#include <vector>

#include "common/int128.h"

namespace hentt {

/** Dense coefficient-form polynomial over Z_p, degree < N. */
class Poly
{
  public:
    /** Zero polynomial of the given ring. */
    Poly(std::size_t n, u64 p);
    /** From explicit coefficients (reduced mod p on construction). */
    Poly(std::vector<u64> coeffs, u64 p);

    std::size_t size() const { return coeffs_.size(); }
    u64 modulus() const { return p_; }

    u64 operator[](std::size_t i) const { return coeffs_[i]; }
    u64 &operator[](std::size_t i) { return coeffs_[i]; }
    const std::vector<u64> &coeffs() const { return coeffs_; }
    std::span<u64> span() { return coeffs_; }
    std::span<const u64> span() const { return coeffs_; }

    bool operator==(const Poly &other) const = default;

    /** Coefficient-wise ring operations (ring membership checked). */
    Poly operator+(const Poly &other) const;
    Poly operator-(const Poly &other) const;
    /** Scalar multiply. */
    Poly operator*(u64 scalar) const;
    /** Additive inverse. */
    Poly Negate() const;

    /** Multiply by X^k in the negacyclic ring (sign wraps). */
    Poly MulByMonomial(std::size_t k) const;

  private:
    void CheckCompatible(const Poly &other) const;

    std::vector<u64> coeffs_;
    u64 p_;
};

}  // namespace hentt

#endif  // HENTT_POLY_POLY_H
