#include "poly/poly.h"

#include <stdexcept>

#include "common/bitops.h"
#include "common/modarith.h"

namespace hentt {

Poly::Poly(std::size_t n, u64 p) : coeffs_(n, 0), p_(p)
{
    if (!IsPowerOfTwo(n)) {
        throw std::invalid_argument("ring degree must be a power of two");
    }
    ValidateModulus(p);
}

Poly::Poly(std::vector<u64> coeffs, u64 p)
    : coeffs_(std::move(coeffs)), p_(p)
{
    if (!IsPowerOfTwo(coeffs_.size())) {
        throw std::invalid_argument("ring degree must be a power of two");
    }
    ValidateModulus(p);
    for (u64 &c : coeffs_) {
        c %= p_;
    }
}

void
Poly::CheckCompatible(const Poly &other) const
{
    if (other.size() != size() || other.modulus() != modulus()) {
        throw std::invalid_argument("polynomials from different rings");
    }
}

Poly
Poly::operator+(const Poly &other) const
{
    CheckCompatible(other);
    Poly out(size(), p_);
    for (std::size_t i = 0; i < size(); ++i) {
        out[i] = AddMod(coeffs_[i], other[i], p_);
    }
    return out;
}

Poly
Poly::operator-(const Poly &other) const
{
    CheckCompatible(other);
    Poly out(size(), p_);
    for (std::size_t i = 0; i < size(); ++i) {
        out[i] = SubMod(coeffs_[i], other[i], p_);
    }
    return out;
}

Poly
Poly::operator*(u64 scalar) const
{
    Poly out(size(), p_);
    scalar %= p_;
    for (std::size_t i = 0; i < size(); ++i) {
        out[i] = MulModNative(coeffs_[i], scalar, p_);
    }
    return out;
}

Poly
Poly::Negate() const
{
    Poly out(size(), p_);
    for (std::size_t i = 0; i < size(); ++i) {
        out[i] = coeffs_[i] == 0 ? 0 : p_ - coeffs_[i];
    }
    return out;
}

Poly
Poly::MulByMonomial(std::size_t k) const
{
    const std::size_t n = size();
    Poly out(n, p_);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t shifted = i + k;
        const std::size_t target = shifted % n;
        // X^N == -1: every full wrap flips the sign.
        const bool negate = (shifted / n) % 2 == 1;
        out[target] = negate ? (coeffs_[i] == 0 ? 0 : p_ - coeffs_[i])
                             : coeffs_[i];
    }
    return out;
}

}  // namespace hentt
