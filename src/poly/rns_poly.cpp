#include "poly/rns_poly.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.h"
#include "ntt/ntt_registry.h"
#include "simd/simd_backend.h"

namespace hentt {

RnsNttContext::RnsNttContext(std::size_t n,
                             std::shared_ptr<const RnsBasis> basis)
    : n_(n), basis_(std::move(basis))
{
    engines_.reserve(basis_->prime_count());
    reducers_.reserve(basis_->prime_count());
    for (std::size_t i = 0; i < basis_->prime_count(); ++i) {
        const u64 p = basis_->prime(i);
        engines_.push_back(NttEngineRegistry::Global().Acquire(n, p));
        reducers_.emplace_back(p);
    }
}

namespace {

/** Guard-word pattern; XORed with the word index so a memset of any
 *  single byte value cannot fake an intact canary. */
constexpr u64 kCanarySeed = 0xC0DE'5EED'F00D'BA5Eull;

}  // namespace

RnsPoly::RnsPoly(std::shared_ptr<const RnsNttContext> ctx)
    : ctx_(std::move(ctx)),
      limb_count_(ctx_->basis().prime_count()),
      data_(limb_count_ * ctx_->degree() + kGuardWords, 0)
{
    PlantScratchCanary();
}

RnsPoly::RnsPoly(std::shared_ptr<const RnsNttContext> ctx,
                 const std::vector<BigInt> &coeffs)
    : RnsPoly(std::move(ctx))
{
    if (coeffs.size() != degree()) {
        throw std::invalid_argument("coefficient count != ring degree");
    }
    const RnsBasis &basis = ctx_->basis();
    for (std::size_t k = 0; k < coeffs.size(); ++k) {
        if (coeffs[k] >= basis.product()) {
            throw std::invalid_argument("coefficient >= Q");
        }
        for (std::size_t i = 0; i < basis.prime_count(); ++i) {
            row(i)[k] = coeffs[k] % basis.prime(i);
        }
    }
}

void
RnsPoly::ToEvaluation()
{
    if (domain_ != Domain::kCoefficient) {
        throw std::logic_error("polynomial already in evaluation domain");
    }
    ParallelFor(limb_count_, degree(), [this](std::size_t i) {
        ctx_->engine(i).Forward(row(i));
    });
    domain_ = Domain::kEvaluation;
}

void
RnsPoly::ToEvaluationLazy()
{
    if (domain_ != Domain::kCoefficient) {
        throw std::logic_error("polynomial already in evaluation domain");
    }
    ParallelFor(limb_count_, degree(), [this](std::size_t i) {
        ctx_->engine(i).ForwardLazy(row(i));
    });
    domain_ = Domain::kEvaluation;
    lazy_ = true;
}

void
RnsPoly::ReduceLazy()
{
    if (!lazy_) {
        return;
    }
    ParallelFor(limb_count_, degree(), [this](std::size_t i) {
        simd::Active().fold_lazy_rows(row(i).data(), degree(),
                                      ctx_->basis().prime(i));
    });
    lazy_ = false;
}

void
RnsPoly::ToCoefficient()
{
    if (domain_ != Domain::kEvaluation) {
        throw std::logic_error("polynomial already in coefficient domain");
    }
    const bool was_lazy = lazy_;
    ParallelFor(limb_count_, degree(), [&](std::size_t i) {
        if (was_lazy) {
            simd::Active().fold_lazy_rows(row(i).data(), degree(),
                                          ctx_->basis().prime(i));
        }
        ctx_->engine(i).Inverse(row(i));
    });
    domain_ = Domain::kCoefficient;
    lazy_ = false;
}

void
RnsPoly::BatchToEvaluation(std::span<RnsPoly *const> polys, bool lazy)
{
    std::size_t total = 0;
    std::size_t max_degree = 1;
    for (RnsPoly *poly : polys) {
        if (poly->domain_ != Domain::kCoefficient) {
            throw std::logic_error(
                "batch forward: polynomial already in evaluation domain");
        }
        total += poly->limb_count_;
        max_degree = std::max(max_degree, poly->degree());
    }
    // Flatten (poly, limb) into one index space so the whole set is a
    // single pool dispatch.
    std::vector<std::pair<RnsPoly *, std::size_t>> rows;
    rows.reserve(total);
    for (RnsPoly *poly : polys) {
        for (std::size_t i = 0; i < poly->limb_count_; ++i) {
            rows.emplace_back(poly, i);
        }
    }
    ParallelFor(rows.size(), max_degree, [&](std::size_t idx) {
        auto [poly, i] = rows[idx];
        if (lazy) {
            poly->ctx_->engine(i).ForwardLazy(poly->row(i));
        } else {
            poly->ctx_->engine(i).Forward(poly->row(i));
        }
    });
    for (RnsPoly *poly : polys) {
        poly->domain_ = Domain::kEvaluation;
        poly->lazy_ = lazy;
    }
}

void
RnsPoly::BatchToCoefficient(std::span<RnsPoly *const> polys)
{
    std::size_t total = 0;
    std::size_t max_degree = 1;
    for (RnsPoly *poly : polys) {
        if (poly->domain_ != Domain::kEvaluation) {
            throw std::logic_error(
                "batch inverse: polynomial already in coefficient domain");
        }
        total += poly->limb_count_;
        max_degree = std::max(max_degree, poly->degree());
    }
    std::vector<std::pair<RnsPoly *, std::size_t>> rows;
    rows.reserve(total);
    for (RnsPoly *poly : polys) {
        for (std::size_t i = 0; i < poly->limb_count_; ++i) {
            rows.emplace_back(poly, i);
        }
    }
    ParallelFor(rows.size(), max_degree, [&](std::size_t idx) {
        auto [poly, i] = rows[idx];
        if (poly->lazy_) {
            simd::Active().fold_lazy_rows(poly->row(i).data(),
                                          poly->degree(),
                                          poly->ctx_->basis().prime(i));
        }
        poly->ctx_->engine(i).Inverse(poly->row(i));
    });
    for (RnsPoly *poly : polys) {
        poly->domain_ = Domain::kCoefficient;
        poly->lazy_ = false;
    }
}

void
RnsPoly::CheckCompatible(const RnsPoly &other) const
{
    if (ctx_.get() != other.ctx_.get()) {
        throw std::invalid_argument("polynomials from different contexts");
    }
    if (domain_ != other.domain_) {
        throw std::invalid_argument("polynomials in different domains");
    }
}

RnsPoly &
RnsPoly::operator+=(const RnsPoly &other)
{
    CheckCompatible(other);
    ReduceLazy();  // AddMod needs operands < p
    const bool src_lazy = other.lazy_;
    ParallelFor(limb_count_, degree(), [&](std::size_t i) {
        u64 *dst = row(i).data();
        simd::Active().add_rows(dst, dst, other.row(i).data(), degree(),
                                ctx_->basis().prime(i), src_lazy);
    });
    return *this;
}

RnsPoly &
RnsPoly::operator-=(const RnsPoly &other)
{
    CheckCompatible(other);
    ReduceLazy();  // SubMod needs operands < p
    const bool src_lazy = other.lazy_;
    ParallelFor(limb_count_, degree(), [&](std::size_t i) {
        u64 *dst = row(i).data();
        simd::Active().sub_rows(dst, dst, other.row(i).data(), degree(),
                                ctx_->basis().prime(i), src_lazy);
    });
    return *this;
}

RnsPoly &
RnsPoly::operator*=(const RnsPoly &other)
{
    CheckCompatible(other);
    if (domain_ != Domain::kEvaluation) {
        throw std::logic_error("Hadamard product requires evaluation "
                               "domain; call ToEvaluation() first");
    }
    // Barrett tolerates lazy [0, 4p) operands (16p^2 < 2^128 for
    // p < 2^62), so neither side needs the fold pass; the reduced
    // product clears the lazy range.
    ParallelFor(limb_count_, degree(), [&](std::size_t i) {
        u64 *dst = row(i).data();
        simd::Active().mul_barrett_rows(dst, dst, other.row(i).data(),
                                        degree(),
                                        simd::Consts(ctx_->reducer(i)));
    });
    lazy_ = false;
    return *this;
}

RnsPoly
RnsPoly::operator+(const RnsPoly &other) const
{
    RnsPoly out = *this;
    out += other;
    return out;
}

RnsPoly
RnsPoly::operator-(const RnsPoly &other) const
{
    RnsPoly out = *this;
    out -= other;
    return out;
}

RnsPoly
RnsPoly::operator*(const RnsPoly &other) const
{
    RnsPoly out = *this;
    out *= other;
    return out;
}

void
RnsPoly::MultiplyAccumulate(const RnsPoly &a, const RnsPoly &b)
{
    CheckCompatible(a);
    CheckCompatible(b);
    if (domain_ != Domain::kEvaluation) {
        throw std::logic_error("MultiplyAccumulate requires evaluation "
                               "domain");
    }
    ReduceLazy();  // the accumulator addend must stay < p
    ParallelFor(limb_count_, degree(), [&](std::size_t i) {
        simd::Active().mul_acc_barrett_rows(
            row(i).data(), a.row(i).data(), b.row(i).data(), degree(),
            simd::Consts(ctx_->reducer(i)));
    });
}

void
RnsPoly::ScalarMulInPlace(u64 scalar)
{
    // MulModShoup's residual is < 2p for any 64-bit multiplicand, so
    // lazy [0, 4p) inputs are reduced correctly and the output is < p.
    ParallelFor(limb_count_, degree(), [&](std::size_t i) {
        const u64 p = ctx_->basis().prime(i);
        const u64 s = scalar % p;
        u64 *dst = row(i).data();
        simd::Active().mul_shoup_rows(dst, dst, degree(), s,
                                      ShoupPrecompute(s, p), p);
    });
    lazy_ = false;
}

RnsPoly
RnsPoly::ScalarMul(u64 scalar) const
{
    RnsPoly out = *this;
    out.ScalarMulInPlace(scalar);
    return out;
}

void
RnsPoly::ScalarMulRowsInPlace(std::span<const u64> row_scalars)
{
    if (row_scalars.size() != limb_count_) {
        throw std::invalid_argument("one scalar per RNS row required");
    }
    ParallelFor(limb_count_, degree(), [&](std::size_t i) {
        const u64 p = ctx_->basis().prime(i);
        const u64 s = row_scalars[i] % p;
        u64 *dst = row(i).data();
        simd::Active().mul_shoup_rows(dst, dst, degree(), s,
                                      ShoupPrecompute(s, p), p);
    });
    lazy_ = false;
}

RnsPoly
RnsPoly::Multiply(const RnsPoly &a, const RnsPoly &b)
{
    if (a.domain() == Domain::kEvaluation &&
        b.domain() == Domain::kEvaluation) {
        RnsPoly out = a * b;
        out.ToCoefficient();
        return out;
    }
    RnsPoly fa = a;
    if (fa.domain() == Domain::kCoefficient) {
        fa.ToEvaluationLazy();  // the Hadamard consumer tolerates < 4p
    }
    if (b.domain() == Domain::kCoefficient) {
        RnsPoly fb = b;
        fb.ToEvaluationLazy();
        fa *= fb;
    } else {
        fa *= b;
    }
    fa.ToCoefficient();
    return fa;
}

void
RnsPoly::ResetScratch(std::shared_ptr<const RnsNttContext> ctx, bool zero)
{
    ctx_ = std::move(ctx);
    limb_count_ = ctx_->basis().prime_count();
    const std::size_t total = limb_count_ * ctx_->degree();
    if (zero) {
        data_.assign(total + kGuardWords, 0);  // reuses capacity
    } else {
        data_.resize(total + kGuardWords);
    }
    PlantScratchCanary();
    domain_ = Domain::kCoefficient;
    lazy_ = false;
}

void
RnsPoly::PlantScratchCanary()
{
    const std::size_t total = limb_count_ * degree();
    for (std::size_t g = 0; g < kGuardWords; ++g) {
        data_[total + g] = kCanarySeed ^ g;
    }
}

bool
RnsPoly::ScratchCanaryIntact() const
{
    const std::size_t total = limb_count_ * degree();
    for (std::size_t g = 0; g < kGuardWords; ++g) {
        if (data_[total + g] != (kCanarySeed ^ g)) {
            return false;
        }
    }
    return true;
}

BigInt
RnsPoly::CoefficientAsBigInt(std::size_t k) const
{
    if (domain_ != Domain::kCoefficient) {
        throw std::logic_error("coefficients unavailable in evaluation "
                               "domain");
    }
    std::vector<u64> residues(limb_count_);
    for (std::size_t i = 0; i < limb_count_; ++i) {
        residues[i] = row(i)[k];
    }
    return CrtCompose(residues, ctx_->basis());
}

std::vector<BigInt>
RnsPoly::ToBigIntCoefficients() const
{
    std::vector<BigInt> out;
    out.reserve(degree());
    for (std::size_t k = 0; k < degree(); ++k) {
        out.push_back(CoefficientAsBigInt(k));
    }
    return out;
}

}  // namespace hentt
