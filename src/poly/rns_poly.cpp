#include "poly/rns_poly.h"

#include <stdexcept>

#include "common/modarith.h"

namespace hentt {

RnsNttContext::RnsNttContext(std::size_t n,
                             std::shared_ptr<const RnsBasis> basis)
    : n_(n), basis_(std::move(basis))
{
    engines_.reserve(basis_->prime_count());
    for (std::size_t i = 0; i < basis_->prime_count(); ++i) {
        engines_.push_back(std::make_unique<NttEngine>(n, basis_->prime(i)));
    }
}

RnsPoly::RnsPoly(std::shared_ptr<const RnsNttContext> ctx)
    : ctx_(std::move(ctx)),
      rows_(ctx_->basis().prime_count(),
            std::vector<u64>(ctx_->degree(), 0))
{
}

RnsPoly::RnsPoly(std::shared_ptr<const RnsNttContext> ctx,
                 const std::vector<BigInt> &coeffs)
    : RnsPoly(std::move(ctx))
{
    if (coeffs.size() != degree()) {
        throw std::invalid_argument("coefficient count != ring degree");
    }
    const RnsBasis &basis = ctx_->basis();
    for (std::size_t k = 0; k < coeffs.size(); ++k) {
        if (coeffs[k] >= basis.product()) {
            throw std::invalid_argument("coefficient >= Q");
        }
        for (std::size_t i = 0; i < basis.prime_count(); ++i) {
            rows_[i][k] = coeffs[k] % basis.prime(i);
        }
    }
}

void
RnsPoly::ToEvaluation()
{
    if (domain_ != Domain::kCoefficient) {
        throw std::logic_error("polynomial already in evaluation domain");
    }
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        ctx_->engine(i).Forward(rows_[i]);
    }
    domain_ = Domain::kEvaluation;
}

void
RnsPoly::ToCoefficient()
{
    if (domain_ != Domain::kEvaluation) {
        throw std::logic_error("polynomial already in coefficient domain");
    }
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        ctx_->engine(i).Inverse(rows_[i]);
    }
    domain_ = Domain::kCoefficient;
}

void
RnsPoly::CheckCompatible(const RnsPoly &other) const
{
    if (ctx_.get() != other.ctx_.get()) {
        throw std::invalid_argument("polynomials from different contexts");
    }
    if (domain_ != other.domain_) {
        throw std::invalid_argument("polynomials in different domains");
    }
}

RnsPoly
RnsPoly::operator+(const RnsPoly &other) const
{
    CheckCompatible(other);
    RnsPoly out(ctx_);
    out.domain_ = domain_;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        const u64 p = ctx_->basis().prime(i);
        for (std::size_t k = 0; k < degree(); ++k) {
            out.rows_[i][k] = AddMod(rows_[i][k], other.rows_[i][k], p);
        }
    }
    return out;
}

RnsPoly
RnsPoly::operator-(const RnsPoly &other) const
{
    CheckCompatible(other);
    RnsPoly out(ctx_);
    out.domain_ = domain_;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        const u64 p = ctx_->basis().prime(i);
        for (std::size_t k = 0; k < degree(); ++k) {
            out.rows_[i][k] = SubMod(rows_[i][k], other.rows_[i][k], p);
        }
    }
    return out;
}

RnsPoly
RnsPoly::operator*(const RnsPoly &other) const
{
    CheckCompatible(other);
    if (domain_ != Domain::kEvaluation) {
        throw std::logic_error("Hadamard product requires evaluation "
                               "domain; call ToEvaluation() first");
    }
    RnsPoly out(ctx_);
    out.domain_ = Domain::kEvaluation;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        const u64 p = ctx_->basis().prime(i);
        for (std::size_t k = 0; k < degree(); ++k) {
            out.rows_[i][k] =
                MulModNative(rows_[i][k], other.rows_[i][k], p);
        }
    }
    return out;
}

RnsPoly
RnsPoly::ScalarMul(u64 scalar) const
{
    RnsPoly out(ctx_);
    out.domain_ = domain_;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        const u64 p = ctx_->basis().prime(i);
        const u64 s = scalar % p;
        for (std::size_t k = 0; k < degree(); ++k) {
            out.rows_[i][k] = MulModNative(rows_[i][k], s, p);
        }
    }
    return out;
}

RnsPoly
RnsPoly::Multiply(const RnsPoly &a, const RnsPoly &b)
{
    RnsPoly fa = a;
    RnsPoly fb = b;
    if (fa.domain() == Domain::kCoefficient) {
        fa.ToEvaluation();
    }
    if (fb.domain() == Domain::kCoefficient) {
        fb.ToEvaluation();
    }
    RnsPoly out = fa * fb;
    out.ToCoefficient();
    return out;
}

BigInt
RnsPoly::CoefficientAsBigInt(std::size_t k) const
{
    if (domain_ != Domain::kCoefficient) {
        throw std::logic_error("coefficients unavailable in evaluation "
                               "domain");
    }
    std::vector<u64> residues(rows_.size());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        residues[i] = rows_[i][k];
    }
    return CrtCompose(residues, ctx_->basis());
}

std::vector<BigInt>
RnsPoly::ToBigIntCoefficients() const
{
    std::vector<BigInt> out;
    out.reserve(degree());
    for (std::size_t k = 0; k < degree(); ++k) {
        out.push_back(CoefficientAsBigInt(k));
    }
    return out;
}

}  // namespace hentt
