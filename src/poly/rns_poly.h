/**
 * @file
 * RnsPoly — a polynomial in Z_Q[X]/(X^N + 1) held as np residue rows,
 * one per RNS prime. This is exactly the paper's NTT workload: an HE
 * polynomial multiply issues np independent N-point NTTs (the "batch"
 * of Section V-A), one per row.
 *
 * An RnsPoly tracks which domain it is in (coefficient vs. evaluation /
 * NTT); domain mismatches throw rather than silently producing garbage.
 */

#ifndef HENTT_POLY_RNS_POLY_H
#define HENTT_POLY_RNS_POLY_H

#include <memory>
#include <vector>

#include "ntt/ntt_engine.h"
#include "poly/poly.h"
#include "rns/crt.h"
#include "rns/rns_basis.h"

namespace hentt {

/** Shared per-basis NTT context: one engine per prime. */
class RnsNttContext
{
  public:
    RnsNttContext(std::size_t n, std::shared_ptr<const RnsBasis> basis);

    std::size_t degree() const { return n_; }
    const RnsBasis &basis() const { return *basis_; }
    std::shared_ptr<const RnsBasis> basis_ptr() const { return basis_; }
    const NttEngine &engine(std::size_t i) const { return *engines_[i]; }

  private:
    std::size_t n_;
    std::shared_ptr<const RnsBasis> basis_;
    std::vector<std::unique_ptr<NttEngine>> engines_;
};

/** Residue-matrix polynomial with domain tracking. */
class RnsPoly
{
  public:
    enum class Domain { kCoefficient, kEvaluation };

    /** Zero polynomial in coefficient form. */
    explicit RnsPoly(std::shared_ptr<const RnsNttContext> ctx);

    /**
     * Lift a multi-precision coefficient vector into RNS rows.
     * @pre every coefficient < basis.product().
     */
    RnsPoly(std::shared_ptr<const RnsNttContext> ctx,
            const std::vector<BigInt> &coeffs);

    const RnsNttContext &context() const { return *ctx_; }
    std::size_t degree() const { return ctx_->degree(); }
    std::size_t prime_count() const { return rows_.size(); }
    Domain domain() const { return domain_; }

    /** Residue row for prime i (length-N vector over Z_{p_i}). */
    std::vector<u64> &row(std::size_t i) { return rows_[i]; }
    const std::vector<u64> &row(std::size_t i) const { return rows_[i]; }

    /** In-place forward NTT on every row. @pre coefficient domain. */
    void ToEvaluation();
    /** In-place inverse NTT on every row. @pre evaluation domain. */
    void ToCoefficient();

    /** Element-wise ring operations (any matching domain). */
    RnsPoly operator+(const RnsPoly &other) const;
    RnsPoly operator-(const RnsPoly &other) const;
    /** Hadamard product. @pre both in evaluation domain. */
    RnsPoly operator*(const RnsPoly &other) const;
    /** Scalar multiply by a word constant. */
    RnsPoly ScalarMul(u64 scalar) const;

    /**
     * Full negacyclic multiply: transforms to evaluation domain as
     * needed, multiplies, and returns the product in coefficient form.
     */
    static RnsPoly Multiply(const RnsPoly &a, const RnsPoly &b);

    /** Reconstruct coefficient k as a value in [0, Q). */
    BigInt CoefficientAsBigInt(std::size_t k) const;

    /** All coefficients in [0, Q). @pre coefficient domain. */
    std::vector<BigInt> ToBigIntCoefficients() const;

  private:
    void CheckCompatible(const RnsPoly &other) const;

    std::shared_ptr<const RnsNttContext> ctx_;
    std::vector<std::vector<u64>> rows_;
    Domain domain_ = Domain::kCoefficient;
};

}  // namespace hentt

#endif  // HENTT_POLY_RNS_POLY_H
