/**
 * @file
 * RnsPoly — a polynomial in Z_Q[X]/(X^N + 1) held as np residue rows,
 * one per RNS prime. This is exactly the paper's NTT workload: an HE
 * polynomial multiply issues np independent N-point NTTs (the "batch"
 * of Section V-A), one per row.
 *
 * Storage is one contiguous limbs x degree buffer (limb-major), with
 * rows exposed as std::span views — the CPU analogue of the flat device
 * buffers the paper's batched kernels stream through, and the layout
 * that lets ToEvaluation/ToCoefficient and every element-wise loop
 * dispatch limbs across the global thread pool (common/thread_pool.h)
 * without per-limb allocations.
 *
 * An RnsPoly tracks which domain it is in (coefficient vs. evaluation /
 * NTT); domain mismatches throw rather than silently producing garbage.
 */

#ifndef HENTT_POLY_RNS_POLY_H
#define HENTT_POLY_RNS_POLY_H

#include <memory>
#include <span>
#include <vector>

#include "common/modarith.h"
#include "ntt/ntt_engine.h"
#include "poly/poly.h"
#include "rns/crt.h"
#include "rns/rns_basis.h"

namespace hentt {

namespace he::detail {
struct RnsPolyBatchAccess;  // sanctioned backdoor (he/batch_access.h)
}  // namespace he::detail

/**
 * Shared per-basis NTT context: one engine per prime (obtained from the
 * process-wide NttEngineRegistry, so twiddle tables are built once per
 * (N, p) across all HE levels) plus one cached Barrett reducer per
 * prime for data-dependent products.
 */
class RnsNttContext
{
  public:
    RnsNttContext(std::size_t n, std::shared_ptr<const RnsBasis> basis);

    std::size_t degree() const { return n_; }
    const RnsBasis &basis() const { return *basis_; }
    std::shared_ptr<const RnsBasis> basis_ptr() const { return basis_; }
    const NttEngine &engine(std::size_t i) const { return *engines_[i]; }
    /** Barrett reducer for prime i (data * data fast path). */
    const BarrettReducer &reducer(std::size_t i) const
    {
        return reducers_[i];
    }

  private:
    std::size_t n_;
    std::shared_ptr<const RnsBasis> basis_;
    std::vector<std::shared_ptr<const NttEngine>> engines_;
    std::vector<BarrettReducer> reducers_;
};

/** Residue-matrix polynomial with domain tracking and flat storage. */
class RnsPoly
{
  public:
    enum class Domain { kCoefficient, kEvaluation };

    /** Zero polynomial in coefficient form. */
    explicit RnsPoly(std::shared_ptr<const RnsNttContext> ctx);

    /**
     * Lift a multi-precision coefficient vector into RNS rows.
     * @pre every coefficient < basis.product().
     */
    RnsPoly(std::shared_ptr<const RnsNttContext> ctx,
            const std::vector<BigInt> &coeffs);

    const RnsNttContext &context() const { return *ctx_; }
    std::size_t degree() const { return ctx_->degree(); }
    std::size_t prime_count() const { return limb_count_; }
    Domain domain() const { return domain_; }

    /** Residue row for prime i: a length-N view into the flat buffer. */
    std::span<u64> row(std::size_t i)
    {
        return {data_.data() + i * degree(), degree()};
    }
    std::span<const u64> row(std::size_t i) const
    {
        return {data_.data() + i * degree(), degree()};
    }

    /** The whole limbs x degree buffer, limb-major (excludes the guard
     *  words planted after the last row — see ScratchCanaryIntact). */
    std::span<u64> flat() { return {data_.data(), limb_count_ * degree()}; }
    std::span<const u64> flat() const
    {
        return {data_.data(), limb_count_ * degree()};
    }

    /**
     * Overflow canary: every RnsPoly buffer carries kGuardWords guard
     * words immediately after the last residue row. A kernel that
     * writes past row limb_count_-1 smashes them; ScratchArena checks
     * the pooled polynomials at every OpScope open so the corruption is
     * caught at the op boundary instead of surfacing as silent wrong
     * ciphertexts. False when a write ran past the end of flat().
     */
    bool ScratchCanaryIntact() const;

    /** Re-plant the guard words (containment: after reporting a smash,
     *  the arena restores the canary so later ops start clean). */
    void PlantScratchCanary();

    static constexpr std::size_t kGuardWords = 4;

    /** In-place forward NTT on every row (parallel across limbs).
     *  @pre coefficient domain. */
    void ToEvaluation();

    /**
     * Forward NTT that keeps rows in the lazy [0, 4p) range (the final
     * fold pass of the lazy butterfly pipeline is skipped). The
     * polynomial enters the evaluation domain with lazy() == true;
     * Hadamard products (`*=`, MultiplyAccumulate) accept lazy operands
     * because Barrett reduction tolerates the 16p^2 products, while
     * additive ops and ToCoefficient() reduce first via ReduceLazy().
     *
     * Each row executes through the fused radix-4 stage walker
     * (NttRadix2LazyKeepRange): ceil(log2 N / 2) butterfly kernel
     * dispatches per limb instead of log2 N, fed by the interleaved
     * twiddle layout the shared engine's TwiddleTable precomputes.
     * @pre coefficient domain.
     */
    void ToEvaluationLazy();

    /** In-place inverse NTT on every row (parallel across limbs).
     *  @pre evaluation domain (lazy rows are folded first). */
    void ToCoefficient();

    /** Whether rows are in the lazy [0, 4p) range (see
     *  ToEvaluationLazy). */
    bool lazy() const { return lazy_; }

    /** Fold lazy [0, 4p) rows back into [0, p); no-op when !lazy(). */
    void ReduceLazy();

    /**
     * Forward-transform every polynomial in @p polys with a single pool
     * dispatch spanning all polynomials x limbs — the ciphertext-level
     * batching step: one HE op (or one op-graph wavefront) issues one
     * dispatch instead of one per RnsPoly.
     *
     * @param polys polynomials already in coefficient domain
     * @param lazy  when true, rows are left in the lazy [0, 4p) range
     *              (as ToEvaluationLazy)
     */
    static void BatchToEvaluation(std::span<RnsPoly *const> polys,
                                  bool lazy = false);

    /** Inverse-transform every polynomial in @p polys with a single
     *  pool dispatch spanning all polynomials x limbs.
     *  @pre every polynomial in evaluation domain (lazy rows are folded
     *  first). */
    static void BatchToCoefficient(std::span<RnsPoly *const> polys);

    /** Element-wise in-place ring operations (any matching domain). */
    RnsPoly &operator+=(const RnsPoly &other);
    RnsPoly &operator-=(const RnsPoly &other);
    /** In-place Hadamard product. @pre both in evaluation domain. */
    RnsPoly &operator*=(const RnsPoly &other);

    /** Element-wise ring operations (any matching domain). */
    RnsPoly operator+(const RnsPoly &other) const;
    RnsPoly operator-(const RnsPoly &other) const;
    /** Hadamard product. @pre both in evaluation domain. */
    RnsPoly operator*(const RnsPoly &other) const;

    /**
     * Fused this += a . b (element-wise, single Barrett reduction per
     * element). @pre all three operands in evaluation domain. This is
     * what keeps the BGV tensor product at one temporary instead of
     * allocating a poly per partial product.
     */
    void MultiplyAccumulate(const RnsPoly &a, const RnsPoly &b);

    /** Scalar multiply by a word constant (Shoup fast path). */
    RnsPoly ScalarMul(u64 scalar) const;
    /** In-place scalar multiply (Shoup fast path). */
    void ScalarMulInPlace(u64 scalar);

    /**
     * In-place multiply of row i by row_scalars[i] mod p_i (Shoup fast
     * path) — the BGV gadget product's per-row scaling.
     * @pre row_scalars.size() == prime_count().
     */
    void ScalarMulRowsInPlace(std::span<const u64> row_scalars);

    /**
     * Full negacyclic multiply: transforms to evaluation domain as
     * needed, multiplies, and returns the product in coefficient form.
     */
    static RnsPoly Multiply(const RnsPoly &a, const RnsPoly &b);

    /**
     * Re-initialise as a coefficient-domain polynomial at @p ctx,
     * reusing the existing heap buffer whenever its capacity allows —
     * the scratch-arena hook that keeps steady-state batched HE ops
     * allocation-free (buffers sized for a higher level of the modulus
     * chain absorb every lower level for free).
     *
     * With @p zero false the rows are left with stale values; the
     * caller must overwrite every element before reading any (the
     * batched kernels' digit and accumulator fills do). Use true
     * whenever the polynomial seeds an accumulation.
     */
    void ResetScratch(std::shared_ptr<const RnsNttContext> ctx,
                      bool zero = true);

    /** Reconstruct coefficient k as a value in [0, Q). */
    BigInt CoefficientAsBigInt(std::size_t k) const;

    /** All coefficients in [0, Q). @pre coefficient domain. */
    std::vector<BigInt> ToBigIntCoefficients() const;

  private:
    // The batched execution layer fills evaluation-domain rows through
    // external kernels and then relabels the state via this friend
    // (see OverrideDomain); no other caller can bypass the transforms.
    friend struct he::detail::RnsPolyBatchAccess;

    /**
     * Relabel the domain/lazy state after an external kernel filled
     * the rows directly. Performs no transform and no validation —
     * reachable only through he::detail::RnsPolyBatchAccess.
     */
    void OverrideDomain(Domain d, bool lazy = false)
    {
        domain_ = d;
        lazy_ = lazy;
    }

    void CheckCompatible(const RnsPoly &other) const;

    std::shared_ptr<const RnsNttContext> ctx_;
    std::size_t limb_count_;
    std::vector<u64> data_;  // limb-major, limb_count_ x degree
    Domain domain_ = Domain::kCoefficient;
    bool lazy_ = false;  // rows in [0, 4p) instead of [0, p)
};

}  // namespace hentt

#endif  // HENTT_POLY_RNS_POLY_H
