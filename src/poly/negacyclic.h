/**
 * @file
 * Negacyclic convolution: the O(N^2) schoolbook form (paper Section
 * III-A's c_k = sum_{i<=k} a_i b_{k-i} - sum_{i>k} a_i b_{N+k-i}) used
 * as the oracle, and the O(N log N) NTT-based form.
 */

#ifndef HENTT_POLY_NEGACYCLIC_H
#define HENTT_POLY_NEGACYCLIC_H

#include "ntt/ntt_engine.h"
#include "poly/poly.h"

namespace hentt {

/** Schoolbook negacyclic convolution (test oracle). */
Poly NegacyclicConvolveNaive(const Poly &a, const Poly &b);

/** NTT-based negacyclic product using a caller-provided engine. */
Poly NegacyclicConvolveNtt(const Poly &a, const Poly &b,
                           const NttEngine &engine);

}  // namespace hentt

#endif  // HENTT_POLY_NEGACYCLIC_H
