#include "poly/negacyclic.h"

#include <stdexcept>

#include "common/modarith.h"

namespace hentt {

Poly
NegacyclicConvolveNaive(const Poly &a, const Poly &b)
{
    if (a.size() != b.size() || a.modulus() != b.modulus()) {
        throw std::invalid_argument("polynomials from different rings");
    }
    const std::size_t n = a.size();
    const u64 p = a.modulus();
    Poly c(n, p);
    for (std::size_t k = 0; k < n; ++k) {
        u64 acc = 0;
        for (std::size_t i = 0; i <= k; ++i) {
            acc = AddMod(acc, MulModNative(a[i], b[k - i], p), p);
        }
        for (std::size_t i = k + 1; i < n; ++i) {
            acc = SubMod(acc, MulModNative(a[i], b[n + k - i], p), p);
        }
        c[k] = acc;
    }
    return c;
}

Poly
NegacyclicConvolveNtt(const Poly &a, const Poly &b, const NttEngine &engine)
{
    if (a.size() != engine.size() || a.modulus() != engine.modulus()) {
        throw std::invalid_argument("polynomial does not match engine ring");
    }
    if (b.size() != a.size() || b.modulus() != a.modulus()) {
        throw std::invalid_argument("polynomials from different rings");
    }
    return Poly(engine.Multiply(a.span(), b.span()), a.modulus());
}

}  // namespace hentt
