/**
 * @file
 * Backend-registration seam between simd_dispatch.cpp and the kernel
 * translation units. Not part of the public simd API.
 */

#ifndef HENTT_SIMD_SIMD_INTERNAL_H
#define HENTT_SIMD_SIMD_INTERNAL_H

#include "simd/simd_backend.h"

namespace hentt::simd::internal {

/** The scalar reference table (always real). */
const Kernels &ScalarKernels();

/**
 * The production AVX2 table. When the build lacks -mavx2 support this
 * returns the scalar table; pair with Avx2CompiledIn()/cpu support
 * before trusting it to be vectorized. Entries where the 32x32
 * partial-product assembly measurably loses to the scalar 64-bit
 * hardware multiply (the 128-bit Barrett reduction family) borrow the
 * scalar implementation — see Avx2AllVectorKernels for the rest.
 */
const Kernels &Avx2Kernels();

/**
 * The fully-vectorized AVX2 table, Barrett family included. Kept
 * compiled and parity-tested (tests/test_simd_kernels.cpp) so a
 * microarchitecture where the vector Barrett tree wins — or an
 * AVX-512 port with vpmullq — can flip entries into the production
 * table without re-deriving the carry propagation. Same scalar
 * fallback rules as Avx2Kernels.
 */
const Kernels &Avx2AllVectorKernels();

/** Whether simd_avx2.cpp was built with AVX2 enabled. */
bool Avx2CompiledIn();

/**
 * The AVX-512 table (8 x u64 lanes), covering the full 16-slot
 * vocabulary natively. The butterfly family exploits vpmullq +
 * vpminuq + the 32-register file; the element-wise family carries the
 * same vpmullq advantage into the Shoup kernels and flips PR 4's
 * Barrett hybrid decision at 8 lanes (the 512-bit partial-product
 * tree beats the scalar mulx loops — see ARCHITECTURE.md for the
 * per-kernel measurements). No borrowed slots. Returns the scalar
 * table when the build lacks AVX-512 support; gate on
 * Avx512CompiledIn() + CPUID.
 */
const Kernels &Avx512Kernels();

/** Whether simd_avx512.cpp was built with AVX-512F/DQ enabled. */
bool Avx512CompiledIn();

/**
 * The AVX-512 IFMA ablation table: identical to Avx512Kernels()
 * except the mul/mul-acc family (mul_barrett, mul_acc_barrett,
 * tensor), whose 64x64 -> 128 operand products are assembled from
 * vpmadd52lo/hi 52-bit limb products instead of the 32x32 tree.
 * Bench-only: never auto-selected (it measured below the DQ table on
 * this family — the limb split costs 7 multiplies per product against
 * the tree's 4; see ARCHITECTURE.md), reachable via
 * HENTT_SIMD=avx512ifma / ForceBackend for the micro_modarith
 * ablation columns. Scalar fallback rules as Avx512Kernels.
 */
const Kernels &Avx512IfmaKernels();

/** Whether simd_avx512ifma.cpp was built with AVX-512IFMA enabled. */
bool Avx512IfmaCompiledIn();

/**
 * The NEON/arm64 table (2 x u64 lanes via uint64x2_t). Vectorizes the
 * butterfly family and the Shoup-style element-wise kernels with the
 * same 32x32 partial-product tree idiom as AVX2 (vmull_u32); the
 * Barrett reduction family and the branchy divide-and-round borrow
 * the scalar reference, mirroring the measured 4-lane AVX2 verdict
 * (no arm64 perf runner yet — provisional, recorded in
 * ARCHITECTURE.md). Returns the scalar table on non-arm64 builds;
 * gate on NeonCompiledIn().
 */
const Kernels &NeonKernels();

/** Whether simd_neon.cpp was built with AdvSIMD enabled (arm64). */
bool NeonCompiledIn();

}  // namespace hentt::simd::internal

#endif  // HENTT_SIMD_SIMD_INTERNAL_H
