/**
 * @file
 * Backend-registration seam between simd_dispatch.cpp and the kernel
 * translation units. Not part of the public simd API.
 */

#ifndef HENTT_SIMD_SIMD_INTERNAL_H
#define HENTT_SIMD_SIMD_INTERNAL_H

#include "simd/simd_backend.h"

namespace hentt::simd::internal {

/** The scalar reference table (always real). */
const Kernels &ScalarKernels();

/**
 * The production AVX2 table. When the build lacks -mavx2 support this
 * returns the scalar table; pair with Avx2CompiledIn()/cpu support
 * before trusting it to be vectorized. Entries where the 32x32
 * partial-product assembly measurably loses to the scalar 64-bit
 * hardware multiply (the 128-bit Barrett reduction family) borrow the
 * scalar implementation — see Avx2AllVectorKernels for the rest.
 */
const Kernels &Avx2Kernels();

/**
 * The fully-vectorized AVX2 table, Barrett family included. Kept
 * compiled and parity-tested (tests/test_simd_kernels.cpp) so a
 * microarchitecture where the vector Barrett tree wins — or an
 * AVX-512 port with vpmullq — can flip entries into the production
 * table without re-deriving the carry propagation. Same scalar
 * fallback rules as Avx2Kernels.
 */
const Kernels &Avx2AllVectorKernels();

/** Whether simd_avx2.cpp was built with AVX2 enabled. */
bool Avx2CompiledIn();

/**
 * The AVX-512 table (8 x u64 lanes). Vectorizes the butterfly family —
 * rows, whole stages, and the fused radix-4 stage pairs — where the
 * 512-bit ISA removes both AVX2 bottlenecks at once: vpmullq gives the
 * 64-bit low product in one instruction, vpminuq makes every lazy
 * correction branch- and xor-free, and 32 registers hold a fused
 * four-row working set without spilling. Element-wise entries are
 * borrowed from the production AVX2 table (which in turn borrows the
 * scalar Barrett family). Returns the scalar table when the build
 * lacks AVX-512 support; gate on Avx512CompiledIn() + CPUID.
 */
const Kernels &Avx512Kernels();

/** Whether simd_avx512.cpp was built with AVX-512F/DQ enabled. */
bool Avx512CompiledIn();

}  // namespace hentt::simd::internal

#endif  // HENTT_SIMD_SIMD_INTERNAL_H
