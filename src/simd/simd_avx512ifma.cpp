/**
 * @file
 * AVX-512 IFMA ablation backend: the probe ROADMAP item 2 asked for.
 * vpmadd52lo/hi multiply the low 52 bits of each 64-bit lane and
 * accumulate the low/high 52 bits of the 104-bit product — one
 * instruction per limb product, against the five vpmuludq the 32x32
 * tree needs for a full 64x64 -> 128. The catch: our operands are
 * arbitrary 64-bit values (lazy [0, 4p) residues of 49-61-bit
 * primes), so each full product needs a 52+12-bit limb split and
 * SEVEN vpmadd52 ops plus recombination shifts, where the tree gets
 * away with four vpmuludq plus its carry chain. Measured on the
 * mul/mul-acc family this loses to the DQ table (~0.9x, see
 * ARCHITECTURE.md — IFMA's win requires operands already in 52-bit
 * limb form, a layout change far beyond a kernel swap), so this tier
 * is bench-only: never auto-selected, reachable via
 * HENTT_SIMD=avx512ifma / ForceBackend for the micro_modarith
 * ablation columns, and parity-swept like every other table.
 *
 * Only the mul/mul-acc family (mul_barrett, mul_acc_barrett, tensor)
 * differs from the DQ table — the 64x64 -> 128 operand products come
 * from the limb split below; the Barrett quotient chain and every
 * other slot reuse the DQ implementations, so the ablation isolates
 * exactly the operand-product idiom.
 */

#include "simd/simd_internal.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && \
    defined(__AVX512IFMA__)

#include <immintrin.h>

#include "simd/simd_avx512_common.h"

namespace hentt::simd {

namespace {

using namespace avx512detail;

/**
 * Full 64x64 -> 128-bit product from 52-bit limb partials.
 *
 * Split x = x0 + 2^52 x1 (x0 < 2^52, x1 < 2^12) and likewise y; then
 * x*y = x0*y0 + 2^52 (x0*y1 + x1*y0) + 2^104 x1*y1. vpmadd52lo/hi
 * deliver each partial's low/high 52 bits directly (the instructions
 * read only the low 52 bits of their operands, so x feeds x0 and
 * x >> 52 feeds x1 unmasked). Recombination is exact: limb1 < 3*2^52
 * and limb0 < 2^52 never carry across bit 64 when packed, and
 * limb2 < 2^25 tops out the 128-bit result.
 */
inline V512
MulFullU64Ifma(__m512i x, __m512i y)
{
    const __m512i zero = _mm512_setzero_si512();
    const __m512i xh = _mm512_srli_epi64(x, 52);
    const __m512i yh = _mm512_srli_epi64(y, 52);
    const __m512i t00_lo = _mm512_madd52lo_epu64(zero, x, y);
    const __m512i t00_hi = _mm512_madd52hi_epu64(zero, x, y);
    const __m512i t01_lo = _mm512_madd52lo_epu64(zero, x, yh);
    const __m512i t01_hi = _mm512_madd52hi_epu64(zero, x, yh);
    const __m512i t10_lo = _mm512_madd52lo_epu64(zero, xh, y);
    const __m512i t10_hi = _mm512_madd52hi_epu64(zero, xh, y);
    const __m512i t11 = _mm512_madd52lo_epu64(zero, xh, yh);
    const __m512i limb1 =
        _mm512_add_epi64(t00_hi, _mm512_add_epi64(t01_lo, t10_lo));
    const __m512i limb2 =
        _mm512_add_epi64(t11, _mm512_add_epi64(t01_hi, t10_hi));
    V512 r;
    r.lo = _mm512_add_epi64(t00_lo, _mm512_slli_epi64(limb1, 52));
    r.hi = _mm512_add_epi64(_mm512_srli_epi64(limb1, 12),
                            _mm512_slli_epi64(limb2, 40));
    return r;
}

void
MulBarrettRows(u64 *dst, const u64 *a, const u64 *b, std::size_t n,
               BarrettConsts c)
{
    if (c.mu_hi >> 32) {  // modulus <= 2^32: scalar reference
        internal::ScalarKernels().mul_barrett_rows(dst, a, b, n, c);
        return;
    }
    const __m512i vp = Bcast(c.p), v2p = Bcast(2 * c.p);
    const __m512i vmu_lo = Bcast(c.mu_lo), vmu_hi = Bcast(c.mu_hi);
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        const V512 z = MulFullU64Ifma(Load(a + k), Load(b + k));
        Store(dst + k, BarrettReduceVec(z, vp, v2p, vmu_lo, vmu_hi));
    }
    for (; k < n; ++k) {
        const u128 z = Mul64Wide(a[k], b[k]);
        dst[k] = BarrettReduce(Lo64(z), Hi64(z), c);
    }
}

void
MulAccBarrettRows(u64 *dst, const u64 *a, const u64 *b, std::size_t n,
                  BarrettConsts c)
{
    if (c.mu_hi >> 32) {
        internal::ScalarKernels().mul_acc_barrett_rows(dst, a, b, n, c);
        return;
    }
    const __m512i vp = Bcast(c.p), v2p = Bcast(2 * c.p);
    const __m512i vmu_lo = Bcast(c.mu_lo), vmu_hi = Bcast(c.mu_hi);
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        V512 z = MulFullU64Ifma(Load(a + k), Load(b + k));
        const __m512i addend = Load(dst + k);
        z.lo = _mm512_add_epi64(z.lo, addend);
        z.hi = AddCarry(z.hi, z.lo, addend);
        Store(dst + k, BarrettReduceVec(z, vp, v2p, vmu_lo, vmu_hi));
    }
    for (; k < n; ++k) {
        const u128 z = Mul64Wide(a[k], b[k]) + dst[k];
        dst[k] = BarrettReduce(Lo64(z), Hi64(z), c);
    }
}

void
TensorRows(u64 *c0, u64 *c1, u64 *c2, const u64 *a0, const u64 *a1,
           const u64 *b0, const u64 *b1, std::size_t n, BarrettConsts c)
{
    if (c.mu_hi >> 32) {
        internal::ScalarKernels().tensor_rows(c0, c1, c2, a0, a1, b0, b1,
                                              n, c);
        return;
    }
    const __m512i vp = Bcast(c.p), v2p = Bcast(2 * c.p);
    const __m512i vmu_lo = Bcast(c.mu_lo), vmu_hi = Bcast(c.mu_hi);
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        const __m512i va0 = Load(a0 + k), va1 = Load(a1 + k);
        const __m512i vb0 = Load(b0 + k), vb1 = Load(b1 + k);
        const V512 z0 = MulFullU64Ifma(va0, vb0);
        const V512 za = MulFullU64Ifma(va0, vb1);
        const V512 zb = MulFullU64Ifma(va1, vb0);
        V512 z1;
        z1.lo = _mm512_add_epi64(za.lo, zb.lo);
        z1.hi = AddCarry(_mm512_add_epi64(za.hi, zb.hi), z1.lo, zb.lo);
        const V512 z2 = MulFullU64Ifma(va1, vb1);
        Store(c0 + k, BarrettReduceVec(z0, vp, v2p, vmu_lo, vmu_hi));
        Store(c1 + k, BarrettReduceVec(z1, vp, v2p, vmu_lo, vmu_hi));
        Store(c2 + k, BarrettReduceVec(z2, vp, v2p, vmu_lo, vmu_hi));
    }
    for (; k < n; ++k) {
        const u128 z0 = Mul64Wide(a0[k], b0[k]);
        const u128 z1 = Mul64Wide(a0[k], b1[k]) + Mul64Wide(a1[k], b0[k]);
        const u128 z2 = Mul64Wide(a1[k], b1[k]);
        c0[k] = BarrettReduce(Lo64(z0), Hi64(z0), c);
        c1[k] = BarrettReduce(Lo64(z1), Hi64(z1), c);
        c2[k] = BarrettReduce(Lo64(z2), Hi64(z2), c);
    }
}

}  // namespace

namespace internal {

bool
Avx512IfmaCompiledIn()
{
    return true;
}

const Kernels &
Avx512IfmaKernels()
{
    // DQ table with the mul/mul-acc family swapped to IFMA operand
    // products — the borrowed slots are intentional here: the
    // ablation isolates one idiom, and DescribeKernelTable() reports
    // the borrowing.
    static const Kernels table = [] {
        Kernels t = Avx512Kernels();
        t.mul_barrett_rows = &MulBarrettRows;
        t.mul_acc_barrett_rows = &MulAccBarrettRows;
        t.tensor_rows = &TensorRows;
        return t;
    }();
    return table;
}

}  // namespace internal

}  // namespace hentt::simd

#else  // no AVX-512 IFMA support

namespace hentt::simd::internal {

bool
Avx512IfmaCompiledIn()
{
    return false;
}

const Kernels &
Avx512IfmaKernels()
{
    return ScalarKernels();
}

}  // namespace hentt::simd::internal

#endif  // AVX-512 IFMA support
