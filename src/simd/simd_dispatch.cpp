/**
 * @file
 * Backend resolution: compile-time availability x runtime CPUID x the
 * HENTT_SIMD environment override x ForceBackend(). The active table is
 * a single atomic pointer, so every kernel call site pays one acquire
 * load — nothing per element.
 */

#include "simd/simd_internal.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/failpoint.h"

namespace hentt::simd {

namespace {

bool
CpuHasAvx2()
{
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

bool
CpuHasAvx512()
{
#if defined(__GNUC__) || defined(__clang__)
    // The butterfly kernels need F (foundation) and DQ (vpmullq).
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512dq");
#else
    return false;
#endif
}

/** Best available backend by CPUID: avx512 > avx2 > scalar. */
Backend
BestAvailable()
{
    if (BackendAvailable(Backend::kAvx512)) {
        return Backend::kAvx512;
    }
    if (BackendAvailable(Backend::kAvx2)) {
        return Backend::kAvx2;
    }
    return Backend::kScalar;
}

/** Environment/CPUID resolution, evaluated once at first use. An
 *  unavailable HENTT_SIMD request falls back to scalar (tests use
 *  ForceBackend, which throws instead). */
Backend
ResolveDefault()
{
    if (const char *env = std::getenv("HENTT_SIMD")) {
        if (std::strcmp(env, "scalar") == 0) {
            return Backend::kScalar;
        }
        if (std::strcmp(env, "avx2") == 0) {
            return BackendAvailable(Backend::kAvx2) ? Backend::kAvx2
                                                    : Backend::kScalar;
        }
        if (std::strcmp(env, "avx512") == 0) {
            return BackendAvailable(Backend::kAvx512)
                       ? Backend::kAvx512
                       : Backend::kScalar;
        }
        // "auto" and anything unrecognised: fall through to CPUID.
    }
    return BestAvailable();
}

std::atomic<const Kernels *> g_active{nullptr};
std::atomic<int> g_active_backend{-1};

void
Activate(Backend backend)
{
    // Order matters for concurrent readers: publish the table last so
    // ActiveBackend()/Active() never disagree about an initialised
    // state.
    g_active_backend.store(static_cast<int>(backend),
                           std::memory_order_relaxed);
    g_active.store(&Get(backend), std::memory_order_release);
}

const Kernels *
InitActive()
{
    Activate(ResolveDefault());
    return g_active.load(std::memory_order_acquire);
}

}  // namespace

bool
BackendAvailable(Backend backend)
{
    switch (backend) {
      case Backend::kScalar:
        return true;
      case Backend::kAvx2:
        return internal::Avx2CompiledIn() && CpuHasAvx2();
      case Backend::kAvx512:
        return internal::Avx512CompiledIn() && CpuHasAvx512();
    }
    return false;
}

const Kernels &
Get(Backend backend)
{
    switch (backend) {
      case Backend::kAvx2:
        return internal::Avx2Kernels();
      case Backend::kAvx512:
        return internal::Avx512Kernels();
      case Backend::kScalar:
        break;
    }
    return internal::ScalarKernels();
}

const Kernels &
Active()
{
    // Fault-injection builds can force the scalar graceful-degradation
    // path for one resolution: the op proceeds on the reference
    // kernels (bit-identical results — every backend computes the same
    // math) instead of failing, modelling a vector unit the serving
    // layer must survive losing. Compiles out entirely otherwise.
    if (HENTT_FAILPOINT_FIRED(fp::kSimdDispatch)) {
        return internal::ScalarKernels();
    }
    const Kernels *table = g_active.load(std::memory_order_acquire);
    return table != nullptr ? *table : *InitActive();
}

Backend
ActiveBackend()
{
    (void)Active();  // force resolution
    return static_cast<Backend>(
        g_active_backend.load(std::memory_order_relaxed));
}

void
ForceBackend(Backend backend)
{
    if (!BackendAvailable(backend)) {
        throw std::invalid_argument(
            std::string("SIMD backend unavailable: ") +
            BackendName(backend));
    }
    Activate(backend);
}

void
ResetBackend()
{
    Activate(ResolveDefault());
}

const char *
BackendName(Backend backend)
{
    switch (backend) {
      case Backend::kScalar:
        return "scalar";
      case Backend::kAvx2:
        return "avx2";
      case Backend::kAvx512:
        return "avx512";
    }
    return "unknown";
}

}  // namespace hentt::simd
