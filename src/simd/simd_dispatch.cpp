/**
 * @file
 * Backend resolution: compile-time availability x runtime CPUID x the
 * HENTT_SIMD environment override x ForceBackend(). The active table is
 * a single atomic pointer, so every kernel call site pays one acquire
 * load — nothing per element.
 *
 * Auto-selection order: avx512 > avx2 > neon > scalar. The x86 tiers
 * need both the compiled-in TU and the CPUID feature; NEON is
 * mandatory on AArch64, so compiled-in means available. The IFMA
 * ablation tier is deliberately absent from auto-selection (it
 * measured below the DQ table on the mul/mul-acc family — see
 * ARCHITECTURE.md); it stays reachable explicitly so benches and the
 * parity sweep can exercise it.
 */

#include "simd/simd_internal.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "common/failpoint.h"

namespace hentt::simd {

namespace {

// __builtin_cpu_supports with x86 feature names only compiles on x86
// targets; every probe is additionally arch-guarded so this TU builds
// unchanged on arm64.

bool
CpuHasAvx2()
{
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

bool
CpuHasAvx512()
{
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
    // The butterfly kernels need F (foundation) and DQ (vpmullq).
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512dq");
#else
    return false;
#endif
}

bool
CpuHasAvx512Ifma()
{
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
    return CpuHasAvx512() && __builtin_cpu_supports("avx512ifma");
#else
    return false;
#endif
}

/** Best available backend by CPUID: avx512 > avx2 > neon > scalar.
 *  (kAvx512Ifma is explicit-only; see the file comment.) */
Backend
BestAvailable()
{
    if (BackendAvailable(Backend::kAvx512)) {
        return Backend::kAvx512;
    }
    if (BackendAvailable(Backend::kAvx2)) {
        return Backend::kAvx2;
    }
    if (BackendAvailable(Backend::kNeon)) {
        return Backend::kNeon;
    }
    return Backend::kScalar;
}

/** HENTT_SIMD value -> Backend; nullopt-style: returns false when the
 *  value names no backend ("auto" included). */
bool
ParseBackendName(const char *name, Backend &out)
{
    for (Backend b : kAllBackends) {
        if (std::strcmp(name, BackendName(b)) == 0) {
            out = b;
            return true;
        }
    }
    return false;
}

/** Environment/CPUID resolution, evaluated once at first use. An
 *  unavailable (or unrecognised) HENTT_SIMD request falls back with a
 *  one-line stderr warning naming every backend's availability — tests
 *  use ForceBackend, which throws instead, so they can never silently
 *  measure the wrong thing. */
Backend
ResolveDefault()
{
    const char *env = std::getenv("HENTT_SIMD");
    if (env == nullptr || std::strcmp(env, "auto") == 0) {
        return BestAvailable();
    }
    Backend requested;
    if (!ParseBackendName(env, requested)) {
        std::fprintf(stderr,
                     "hentt: HENTT_SIMD=%s names no backend; using "
                     "auto. Backends: %s\n",
                     env, DescribeAvailability().c_str());
        return BestAvailable();
    }
    if (!BackendAvailable(requested)) {
        std::fprintf(stderr,
                     "hentt: HENTT_SIMD=%s unavailable (%s); falling "
                     "back to scalar. Backends: %s\n",
                     env, AvailabilityReason(requested),
                     DescribeAvailability().c_str());
        return Backend::kScalar;
    }
    return requested;
}

std::atomic<const Kernels *> g_active{nullptr};
std::atomic<int> g_active_backend{-1};

void
Activate(Backend backend)
{
    // Order matters for concurrent readers: publish the table last so
    // ActiveBackend()/Active() never disagree about an initialised
    // state.
    g_active_backend.store(static_cast<int>(backend),
                           std::memory_order_relaxed);
    g_active.store(&Get(backend), std::memory_order_release);
}

const Kernels *
InitActive()
{
    Activate(ResolveDefault());
    return g_active.load(std::memory_order_acquire);
}

}  // namespace

bool
BackendAvailable(Backend backend)
{
    switch (backend) {
      case Backend::kScalar:
        return true;
      case Backend::kAvx2:
        return internal::Avx2CompiledIn() && CpuHasAvx2();
      case Backend::kAvx512:
        return internal::Avx512CompiledIn() && CpuHasAvx512();
      case Backend::kAvx512Ifma:
        return internal::Avx512IfmaCompiledIn() && CpuHasAvx512Ifma();
      case Backend::kNeon:
        // AdvSIMD is architecturally mandatory on AArch64: compiled in
        // implies the CPU has it.
        return internal::NeonCompiledIn();
    }
    return false;
}

const Kernels &
Get(Backend backend)
{
    switch (backend) {
      case Backend::kAvx2:
        return internal::Avx2Kernels();
      case Backend::kAvx512:
        return internal::Avx512Kernels();
      case Backend::kAvx512Ifma:
        return internal::Avx512IfmaKernels();
      case Backend::kNeon:
        return internal::NeonKernels();
      case Backend::kScalar:
        break;
    }
    return internal::ScalarKernels();
}

const Kernels &
Active()
{
    // Fault-injection builds can force the scalar graceful-degradation
    // path for one resolution: the op proceeds on the reference
    // kernels (bit-identical results — every backend computes the same
    // math) instead of failing, modelling a vector unit the serving
    // layer must survive losing. Compiles out entirely otherwise.
    if (HENTT_FAILPOINT_FIRED(fp::kSimdDispatch)) {
        return internal::ScalarKernels();
    }
    const Kernels *table = g_active.load(std::memory_order_acquire);
    return table != nullptr ? *table : *InitActive();
}

Backend
ActiveBackend()
{
    (void)Active();  // force resolution
    return static_cast<Backend>(
        g_active_backend.load(std::memory_order_relaxed));
}

void
ForceBackend(Backend backend)
{
    if (!BackendAvailable(backend)) {
        throw std::invalid_argument(
            std::string("SIMD backend unavailable: ") +
            BackendName(backend) + " (" +
            AvailabilityReason(backend) +
            "). Backends: " + DescribeAvailability());
    }
    Activate(backend);
}

void
ResetBackend()
{
    Activate(ResolveDefault());
}

const char *
BackendName(Backend backend)
{
    switch (backend) {
      case Backend::kScalar:
        return "scalar";
      case Backend::kAvx2:
        return "avx2";
      case Backend::kAvx512:
        return "avx512";
      case Backend::kAvx512Ifma:
        return "avx512ifma";
      case Backend::kNeon:
        return "neon";
    }
    return "unknown";
}

const char *
AvailabilityReason(Backend backend)
{
    if (BackendAvailable(backend)) {
        return "available";
    }
    switch (backend) {
      case Backend::kScalar:
        break;  // always available; unreachable
      case Backend::kAvx2:
        return internal::Avx2CompiledIn()
                   ? "CPU lacks avx2"
                   : "not compiled in (build lacks -mavx2)";
      case Backend::kAvx512:
        return internal::Avx512CompiledIn()
                   ? "CPU lacks avx512f/avx512dq"
                   : "not compiled in (build lacks -mavx512f/-mavx512dq)";
      case Backend::kAvx512Ifma:
        return internal::Avx512IfmaCompiledIn()
                   ? "CPU lacks avx512ifma"
                   : "not compiled in (build lacks -mavx512ifma)";
      case Backend::kNeon:
        return "not compiled in (not an AArch64 build)";
    }
    return "available";
}

std::string
DescribeAvailability()
{
    std::string out;
    for (Backend b : kAllBackends) {
        if (!out.empty()) {
            out += ", ";
        }
        out += BackendName(b);
        out += ": ";
        out += AvailabilityReason(b);
    }
    return out;
}

std::string
DescribeKernelTable(Backend backend)
{
    // Slot names in Kernels declaration order.
    static constexpr const char *kSlotNames[] = {
        "fwd_butterfly_rows",   "fwd_butterfly_stage",
        "inv_butterfly_rows",   "inv_butterfly_stage",
        "fwd_butterfly_stage4", "inv_butterfly_stage4",
        "mul_shoup_rows",       "mul_barrett_rows",
        "mul_acc_barrett_rows", "reduce_barrett_rows",
        "add_rows",             "sub_rows",
        "fold_lazy_rows",       "fold_rescale_rows",
        "tensor_rows",          "divide_round_rows",
    };
    using SlotPtr = void (*)();
    struct SlotView {
        SlotPtr ptr[16];
    };
    // Function pointers as an inspectable array; the casts are only
    // compared, never called.
    const auto slots = [](const Kernels &t) {
        SlotView v;
        v.ptr[0] = reinterpret_cast<SlotPtr>(t.fwd_butterfly_rows);
        v.ptr[1] = reinterpret_cast<SlotPtr>(t.fwd_butterfly_stage);
        v.ptr[2] = reinterpret_cast<SlotPtr>(t.inv_butterfly_rows);
        v.ptr[3] = reinterpret_cast<SlotPtr>(t.inv_butterfly_stage);
        v.ptr[4] = reinterpret_cast<SlotPtr>(t.fwd_butterfly_stage4);
        v.ptr[5] = reinterpret_cast<SlotPtr>(t.inv_butterfly_stage4);
        v.ptr[6] = reinterpret_cast<SlotPtr>(t.mul_shoup_rows);
        v.ptr[7] = reinterpret_cast<SlotPtr>(t.mul_barrett_rows);
        v.ptr[8] = reinterpret_cast<SlotPtr>(t.mul_acc_barrett_rows);
        v.ptr[9] = reinterpret_cast<SlotPtr>(t.reduce_barrett_rows);
        v.ptr[10] = reinterpret_cast<SlotPtr>(t.add_rows);
        v.ptr[11] = reinterpret_cast<SlotPtr>(t.sub_rows);
        v.ptr[12] = reinterpret_cast<SlotPtr>(t.fold_lazy_rows);
        v.ptr[13] = reinterpret_cast<SlotPtr>(t.fold_rescale_rows);
        v.ptr[14] = reinterpret_cast<SlotPtr>(t.tensor_rows);
        v.ptr[15] = reinterpret_cast<SlotPtr>(t.divide_round_rows);
        return v;
    };
    // Canonical tables, defining TU first: a pointer shared between
    // tables belongs to the table that defines it, so the scalar
    // reference (the ultimate borrow source) is checked before the
    // tables that borrow from it, and avx512 before the IFMA ablation
    // that reuses 13 of its slots. First match wins; borrowed
    // fallbacks therefore surface under their real TU.
    struct Owner {
        const char *name;
        SlotView view;
    };
    const Owner owners[] = {
        {"scalar", slots(internal::ScalarKernels())},
        {"avx2", slots(internal::Avx2Kernels())},
        {"avx2-allvec", slots(internal::Avx2AllVectorKernels())},
        {"neon", slots(internal::NeonKernels())},
        {"avx512", slots(internal::Avx512Kernels())},
        {"avx512ifma", slots(internal::Avx512IfmaKernels())},
    };
    const SlotView target = slots(Get(backend));
    std::string out;
    for (std::size_t i = 0; i < 16; ++i) {
        const char *tu = "unknown";
        for (const Owner &o : owners) {
            if (o.view.ptr[i] == target.ptr[i]) {
                tu = o.name;
                break;
            }
        }
        out += kSlotNames[i];
        out += " -> ";
        out += tu;
        out += '\n';
    }
    return out;
}

}  // namespace hentt::simd
