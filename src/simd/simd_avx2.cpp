/**
 * @file
 * AVX2 backend: four u64 residues per vector op. Compiled with -mavx2
 * when the toolchain supports it (HENTT_HAVE_AVX2, see CMakeLists);
 * callers reach this table only after the runtime CPUID check in
 * simd_dispatch.cpp.
 *
 * AVX2 has no 64x64 multiply, so the 64-bit products behind Shoup and
 * Barrett are assembled from 32x32 partial products (_mm256_mul_epu32)
 * with explicit carry propagation — the same partial-product tree as
 * common/int128.h, kept term-for-term identical so every kernel is
 * bit-identical to the scalar reference (lazy [0, 4p) representatives
 * included, not merely congruent mod p).
 *
 * Layout notes:
 *  - The contiguous-row kernels vectorize directly: NTT stages with
 *    run length t >= 4 are two disjoint streams with one broadcast
 *    twiddle (gather-free by construction).
 *  - The tail stages (t in {1, 2}) interleave pairs too tightly for
 *    row vectors; they use in-register unpack/permute shuffles instead
 *    of gathers, with a contiguous twiddle stream.
 *  - The Barrett kernels assume mu_hi < 2^32 (every modulus above
 *    2^32; all NTT primes in the library are 49-61 bits) and delegate
 *    to the scalar table for the tiny-modulus remainder.
 */

#include "simd/simd_internal.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace hentt::simd {

namespace {

inline __m256i
Load(const u64 *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

inline void
Store(u64 *p, __m256i v)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
}

inline __m256i
Bcast(u64 x)
{
    return _mm256_set1_epi64x(static_cast<long long>(x));
}

/** Lane-wise unsigned a > b (sign-flip trick over the signed compare). */
inline __m256i
CmpGtU64(__m256i a, __m256i b)
{
    const __m256i sign = Bcast(u64{1} << 63);
    return _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign),
                              _mm256_xor_si256(b, sign));
}

/** a >= bound ? a - bound : a — the conditional correction of every
 *  modular primitive. */
inline __m256i
CondSub(__m256i a, __m256i bound)
{
    const __m256i lt = CmpGtU64(bound, a);  // a < bound
    return _mm256_sub_epi64(a, _mm256_andnot_si256(lt, bound));
}

/** High 64 bits of the unsigned 64x64 product (MulHi64). */
inline __m256i
MulHiU64(__m256i x, __m256i y)
{
    const __m256i lo32 = Bcast(0xffffffffu);
    const __m256i xh = _mm256_srli_epi64(x, 32);
    const __m256i yh = _mm256_srli_epi64(y, 32);
    const __m256i ll = _mm256_mul_epu32(x, y);
    const __m256i lh = _mm256_mul_epu32(x, yh);
    const __m256i hl = _mm256_mul_epu32(xh, y);
    const __m256i hh = _mm256_mul_epu32(xh, yh);
    // carry = hi32(hi32(ll) + lo32(lh) + lo32(hl)) — at most 2^34, so
    // the 64-bit accumulation cannot overflow.
    const __m256i cross = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                         _mm256_and_si256(lh, lo32)),
        _mm256_and_si256(hl, lo32));
    return _mm256_add_epi64(
        _mm256_add_epi64(hh, _mm256_srli_epi64(lh, 32)),
        _mm256_add_epi64(_mm256_srli_epi64(hl, 32),
                         _mm256_srli_epi64(cross, 32)));
}

/** Low 64 bits of the unsigned 64x64 product. */
inline __m256i
MulLoU64(__m256i x, __m256i y)
{
    const __m256i xh = _mm256_srli_epi64(x, 32);
    const __m256i yh = _mm256_srli_epi64(y, 32);
    const __m256i ll = _mm256_mul_epu32(x, y);
    const __m256i mid =
        _mm256_add_epi64(_mm256_mul_epu32(x, yh), _mm256_mul_epu32(xh, y));
    return _mm256_add_epi64(ll, _mm256_slli_epi64(mid, 32));
}

struct V128 {
    __m256i lo, hi;
};

/** Full 64x64 -> 128-bit product, partials shared between halves. */
inline V128
MulFullU64(__m256i x, __m256i y)
{
    const __m256i lo32 = Bcast(0xffffffffu);
    const __m256i xh = _mm256_srli_epi64(x, 32);
    const __m256i yh = _mm256_srli_epi64(y, 32);
    const __m256i ll = _mm256_mul_epu32(x, y);
    const __m256i lh = _mm256_mul_epu32(x, yh);
    const __m256i hl = _mm256_mul_epu32(xh, y);
    const __m256i hh = _mm256_mul_epu32(xh, yh);
    const __m256i cross = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                         _mm256_and_si256(lh, lo32)),
        _mm256_and_si256(hl, lo32));
    V128 r;
    r.lo = _mm256_add_epi64(
        ll, _mm256_slli_epi64(_mm256_add_epi64(lh, hl), 32));
    r.hi = _mm256_add_epi64(
        _mm256_add_epi64(hh, _mm256_srli_epi64(lh, 32)),
        _mm256_add_epi64(_mm256_srli_epi64(hl, 32),
                         _mm256_srli_epi64(cross, 32)));
    return r;
}

/** Full 64x32 -> 96-bit product (y32 has zero high halves). */
inline V128
MulFullU64x32(__m256i x, __m256i y32)
{
    const __m256i lo32 = Bcast(0xffffffffu);
    const __m256i a = _mm256_mul_epu32(x, y32);
    const __m256i b = _mm256_mul_epu32(_mm256_srli_epi64(x, 32), y32);
    const __m256i s = _mm256_add_epi64(_mm256_srli_epi64(a, 32),
                                       _mm256_and_si256(b, lo32));
    V128 r;
    r.lo = _mm256_or_si256(_mm256_and_si256(a, lo32),
                           _mm256_slli_epi64(s, 32));
    r.hi = _mm256_add_epi64(_mm256_srli_epi64(b, 32),
                            _mm256_srli_epi64(s, 32));
    return r;
}

/** Low 64 bits of the 64x32 product. */
inline __m256i
MulLoU64x32(__m256i x, __m256i y32)
{
    const __m256i a = _mm256_mul_epu32(x, y32);
    const __m256i b = _mm256_mul_epu32(_mm256_srli_epi64(x, 32), y32);
    return _mm256_add_epi64(a, _mm256_slli_epi64(b, 32));
}

/** Carry mask of lane-wise sum = a + b: all-ones where it wrapped. */
inline __m256i
CarryMask(__m256i sum, __m256i addend)
{
    return CmpGtU64(addend, sum);
}

/**
 * Barrett reduction of (z_hi:z_lo) into [0, p) — term-for-term the
 * Mul128High tree of BarrettReduce, restricted to mu_hi < 2^32 and to
 * the low word of the quotient (the only part the residual needs).
 */
inline __m256i
BarrettReduceVec(V128 z, __m256i vp, __m256i v2p, __m256i vmu_lo,
                 __m256i vmu_hi)
{
    const __m256i h_ll = MulHiU64(z.lo, vmu_lo);
    const V128 lh = MulFullU64x32(z.lo, vmu_hi);
    const __m256i mid_lo = _mm256_add_epi64(lh.lo, h_ll);
    // Subtracting an all-ones mask adds the carry bit.
    const __m256i mid_hi =
        _mm256_sub_epi64(lh.hi, CarryMask(mid_lo, h_ll));
    const V128 hl = MulFullU64(z.hi, vmu_lo);
    const __m256i mid2_lo = _mm256_add_epi64(hl.lo, mid_lo);
    const __m256i mid2_hi =
        _mm256_sub_epi64(hl.hi, CarryMask(mid2_lo, mid_lo));
    const __m256i hh_lo = MulLoU64x32(z.hi, vmu_hi);
    const __m256i q =
        _mm256_add_epi64(hh_lo, _mm256_add_epi64(mid_hi, mid2_hi));
    __m256i r = _mm256_sub_epi64(z.lo, MulLoU64(q, vp));
    r = CondSub(r, v2p);
    return CondSub(r, vp);
}

/** The lazy CT butterfly core on four lanes (FwdButterflyElem). */
inline void
FwdCore(__m256i &x, __m256i &y, __m256i vw, __m256i vwb, __m256i vp,
        __m256i v2p)
{
    x = CondSub(x, v2p);
    const __m256i q = MulHiU64(y, vwb);
    const __m256i t = _mm256_sub_epi64(MulLoU64(y, vw), MulLoU64(q, vp));
    y = _mm256_sub_epi64(_mm256_add_epi64(x, v2p), t);
    x = _mm256_add_epi64(x, t);
}

/** The lazy GS butterfly core on four lanes (InvButterflyElem). */
inline void
InvCore(__m256i &x, __m256i &y, __m256i vw, __m256i vwb, __m256i vp,
        __m256i v2p)
{
    const __m256i u = x;
    const __m256i v = y;
    x = CondSub(_mm256_add_epi64(u, v), v2p);
    const __m256i d = _mm256_sub_epi64(_mm256_add_epi64(u, v2p), v);
    const __m256i q = MulHiU64(d, vwb);
    y = _mm256_sub_epi64(MulLoU64(d, vw), MulLoU64(q, vp));
}

// ---------------------------------------------------------------- rows

void
FwdButterflyRows(u64 *x, u64 *y, std::size_t n, u64 w, u64 w_bar, u64 p)
{
    const __m256i vp = Bcast(p), v2p = Bcast(2 * p);
    const __m256i vw = Bcast(w), vwb = Bcast(w_bar);
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i a = Load(x + k), b = Load(y + k);
        FwdCore(a, b, vw, vwb, vp, v2p);
        Store(x + k, a);
        Store(y + k, b);
    }
    for (; k < n; ++k) {
        FwdButterflyElem(x[k], y[k], w, w_bar, p);
    }
}

void
InvButterflyRows(u64 *x, u64 *y, std::size_t n, u64 w, u64 w_bar, u64 p)
{
    const __m256i vp = Bcast(p), v2p = Bcast(2 * p);
    const __m256i vw = Bcast(w), vwb = Bcast(w_bar);
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        __m256i a = Load(x + k), b = Load(y + k);
        InvCore(a, b, vw, vwb, vp, v2p);
        Store(x + k, a);
        Store(y + k, b);
    }
    for (; k < n; ++k) {
        InvButterflyElem(x[k], y[k], w, w_bar, p);
    }
}

// ---------------------------------------------------------------- tails

/**
 * t == 1 stage: pairs (a[2j], a[2j+1]) with per-pair twiddles w[j].
 * Four pairs per iteration via unpack shuffles — no gathers; the
 * twiddle stream is contiguous and only needs a cross-lane permute.
 */
template <bool kForward>
inline std::size_t
TailT1(u64 *a, const u64 *w, const u64 *w_bar, std::size_t m,
       __m256i vp, __m256i v2p)
{
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
        const __m256i v0 = Load(a + 2 * j);      // x0 y0 x1 y1
        const __m256i v1 = Load(a + 2 * j + 4);  // x2 y2 x3 y3
        __m256i x = _mm256_unpacklo_epi64(v0, v1);  // x0 x2 x1 x3
        __m256i y = _mm256_unpackhi_epi64(v0, v1);  // y0 y2 y1 y3
        // Twiddles (w0 w1 w2 w3) -> pair order (w0 w2 w1 w3).
        const __m256i vw =
            _mm256_permute4x64_epi64(Load(w + j), 0xD8);
        const __m256i vwb =
            _mm256_permute4x64_epi64(Load(w_bar + j), 0xD8);
        if constexpr (kForward) {
            FwdCore(x, y, vw, vwb, vp, v2p);
        } else {
            InvCore(x, y, vw, vwb, vp, v2p);
        }
        Store(a + 2 * j, _mm256_unpacklo_epi64(x, y));
        Store(a + 2 * j + 4, _mm256_unpackhi_epi64(x, y));
    }
    return j;
}

/**
 * t == 2 stage: blocks (x0 x1 y0 y1) with one twiddle per block. Two
 * blocks per iteration via 128-bit lane permutes.
 */
template <bool kForward>
inline std::size_t
TailT2(u64 *a, const u64 *w, const u64 *w_bar, std::size_t m,
       __m256i vp, __m256i v2p)
{
    std::size_t j = 0;
    for (; j + 2 <= m; j += 2) {
        const __m256i v0 = Load(a + 4 * j);
        const __m256i v1 = Load(a + 4 * j + 4);
        __m256i x = _mm256_permute2x128_si256(v0, v1, 0x20);
        __m256i y = _mm256_permute2x128_si256(v0, v1, 0x31);
        // (w_j, w_j+1, _, _) -> (w_j, w_j, w_j+1, w_j+1).
        const __m256i vw = _mm256_permute4x64_epi64(
            _mm256_castsi128_si256(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(w + j))),
            0x50);
        const __m256i vwb = _mm256_permute4x64_epi64(
            _mm256_castsi128_si256(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(w_bar + j))),
            0x50);
        if constexpr (kForward) {
            FwdCore(x, y, vw, vwb, vp, v2p);
        } else {
            InvCore(x, y, vw, vwb, vp, v2p);
        }
        Store(a + 4 * j, _mm256_permute2x128_si256(x, y, 0x20));
        Store(a + 4 * j + 4, _mm256_permute2x128_si256(x, y, 0x31));
    }
    return j;
}

template <bool kForward>
void
ButterflyStage(u64 *a, const u64 *w, const u64 *w_bar, std::size_t m,
               std::size_t t, u64 p)
{
    const __m256i vp = Bcast(p), v2p = Bcast(2 * p);
    std::size_t j = 0;
    if (t >= kMinButterflyRun) {
        // Contiguous-row blocks: two t-element runs, broadcast
        // twiddle — exactly the rows kernel, once per block (direct
        // calls, inlined within this TU).
        for (; j < m; ++j) {
            u64 *x = a + 2 * j * t;
            if constexpr (kForward) {
                FwdButterflyRows(x, x + t, t, w[j], w_bar[j], p);
            } else {
                InvButterflyRows(x, x + t, t, w[j], w_bar[j], p);
            }
        }
        return;
    }
    if (t == 1) {
        j = TailT1<kForward>(a, w, w_bar, m, vp, v2p);
    } else if (t == 2) {
        j = TailT2<kForward>(a, w, w_bar, m, vp, v2p);
    }
    for (; j < m; ++j) {
        const std::size_t base = 2 * j * t;
        for (std::size_t k = base; k < base + t; ++k) {
            if constexpr (kForward) {
                FwdButterflyElem(a[k], a[k + t], w[j], w_bar[j], p);
            } else {
                InvButterflyElem(a[k], a[k + t], w[j], w_bar[j], p);
            }
        }
    }
}

void
FwdButterflyStage(u64 *a, const u64 *w, const u64 *w_bar, std::size_t m,
                  std::size_t t, u64 p)
{
    ButterflyStage<true>(a, w, w_bar, m, t, p);
}

void
InvButterflyStage(u64 *a, const u64 *w, const u64 *w_bar, std::size_t h,
                  std::size_t t, u64 p)
{
    ButterflyStage<false>(a, w, w_bar, h, t, p);
}

// -------------------------------------------------- fused radix-4 stages
//
// Each super-block is (A, B, C, D) quarters of q contiguous elements;
// the kernels run two radix-2 levels in registers, composed from the
// same FwdCore/InvCore vector butterflies as the radix-2 stages, so
// bit-identity with two chained stages is structural. Twiddles stream
// sequentially from the interleaved (w, w_bar) pair / quad layout, so
// the q < 4 tail forms need shuffles only, never gathers.

/**
 * Forward radix-4, contiguous-row form (q >= 4): per super-block, four
 * q-element rows and six broadcast twiddle words; four FwdCore calls
 * per column of vectors, one load + one store per coefficient for two
 * butterfly levels.
 */
void
FwdStage4Rows(u64 *a, const u64 *pairs, const u64 *quads, std::size_t m,
              std::size_t q, u64 p)
{
    const __m256i vp = Bcast(p), v2p = Bcast(2 * p);
    for (std::size_t j = 0; j < m; ++j) {
        u64 *blk = a + 4 * j * q;
        const u64 w1 = pairs[2 * j], w1b = pairs[2 * j + 1];
        const u64 w2a = quads[4 * j], w2ab = quads[4 * j + 1];
        const u64 w2b = quads[4 * j + 2], w2bb = quads[4 * j + 3];
        const __m256i vw1 = Bcast(w1), vw1b = Bcast(w1b);
        const __m256i vw2a = Bcast(w2a), vw2ab = Bcast(w2ab);
        const __m256i vw2b = Bcast(w2b), vw2bb = Bcast(w2bb);
        std::size_t k = 0;
        for (; k + 4 <= q; k += 4) {
            __m256i va = Load(blk + k);
            __m256i vb = Load(blk + q + k);
            __m256i vc = Load(blk + 2 * q + k);
            __m256i vd = Load(blk + 3 * q + k);
            FwdCore(va, vc, vw1, vw1b, vp, v2p);
            FwdCore(vb, vd, vw1, vw1b, vp, v2p);
            FwdCore(va, vb, vw2a, vw2ab, vp, v2p);
            FwdCore(vc, vd, vw2b, vw2bb, vp, v2p);
            Store(blk + k, va);
            Store(blk + q + k, vb);
            Store(blk + 2 * q + k, vc);
            Store(blk + 3 * q + k, vd);
        }
        for (; k < q; ++k) {
            FwdButterflyQuadElem(blk[k], blk[q + k], blk[2 * q + k],
                                 blk[3 * q + k], w1, w1b, w2a, w2ab, w2b,
                                 w2bb, p);
        }
    }
}

/**
 * Forward radix-4 tail, q == 2: one 8-element super-block per
 * iteration, v0 = (A0 A1 B0 B1), v1 = (C0 C1 D0 D1). Level one is a
 * straight lane-wise butterfly of v0 against v1 ((A,C) and (B,D) share
 * w1); level two regroups through 128-bit lane permutes.
 */
void
FwdStage4TailQ2(u64 *a, const u64 *pairs, const u64 *quads,
                std::size_t m, __m256i vp, __m256i v2p)
{
    for (std::size_t j = 0; j < m; ++j) {
        __m256i v0 = Load(a + 8 * j);
        __m256i v1 = Load(a + 8 * j + 4);
        const __m256i vw1 = Bcast(pairs[2 * j]);
        const __m256i vw1b = Bcast(pairs[2 * j + 1]);
        FwdCore(v0, v1, vw1, vw1b, vp, v2p);
        // (w2a, w2ab, w2b, w2bb) -> (w2a w2a w2b w2b) + companions.
        const __m256i qd = Load(quads + 4 * j);
        const __m256i vw2 = _mm256_permute4x64_epi64(qd, 0xA0);
        const __m256i vw2b = _mm256_permute4x64_epi64(qd, 0xF5);
        __m256i x = _mm256_permute2x128_si256(v0, v1, 0x20);  // A0A1C0C1
        __m256i y = _mm256_permute2x128_si256(v0, v1, 0x31);  // B0B1D0D1
        FwdCore(x, y, vw2, vw2b, vp, v2p);
        Store(a + 8 * j, _mm256_permute2x128_si256(x, y, 0x20));
        Store(a + 8 * j + 4, _mm256_permute2x128_si256(x, y, 0x31));
    }
}

/**
 * Forward radix-4 tail, q == 1: two 4-element super-blocks (a b c d)
 * per iteration. The interleaved pair stream feeds level one with one
 * permute per vector; the quad stream feeds level two through an
 * unpack + permute, so the final two butterfly levels of the transform
 * run in one pass with zero gathers.
 */
std::size_t
FwdStage4TailQ1(u64 *a, const u64 *pairs, const u64 *quads,
                std::size_t m, __m256i vp, __m256i v2p)
{
    std::size_t j = 0;
    for (; j + 2 <= m; j += 2) {
        const __m256i v0 = Load(a + 4 * j);      // a0 b0 c0 d0
        const __m256i v1 = Load(a + 4 * j + 4);  // a1 b1 c1 d1
        __m256i x = _mm256_permute2x128_si256(v0, v1, 0x20);  // a0b0a1b1
        __m256i y = _mm256_permute2x128_si256(v0, v1, 0x31);  // c0d0c1d1
        // (w1_0, w1b_0, w1_1, w1b_1) -> (w1_0 w1_0 w1_1 w1_1) + bars.
        const __m256i pr = Load(pairs + 2 * j);
        const __m256i vw1 = _mm256_permute4x64_epi64(pr, 0xA0);
        const __m256i vw1b = _mm256_permute4x64_epi64(pr, 0xF5);
        FwdCore(x, y, vw1, vw1b, vp, v2p);  // pairs (a,c), (b,d)
        __m256i u = _mm256_unpacklo_epi64(x, y);  // a0 c0 a1 c1
        __m256i v = _mm256_unpackhi_epi64(x, y);  // b0 d0 b1 d1
        // Two quads -> (w2a_0 w2b_0 w2a_1 w2b_1) + companions.
        const __m256i q0 = Load(quads + 4 * j);
        const __m256i q1 = Load(quads + 4 * j + 4);
        const __m256i vw2 = _mm256_permute4x64_epi64(
            _mm256_unpacklo_epi64(q0, q1), 0xD8);
        const __m256i vw2b = _mm256_permute4x64_epi64(
            _mm256_unpackhi_epi64(q0, q1), 0xD8);
        FwdCore(u, v, vw2, vw2b, vp, v2p);  // pairs (a,b), (c,d)
        const __m256i lo = _mm256_unpacklo_epi64(u, v);  // a0 b0 a1 b1
        const __m256i hi = _mm256_unpackhi_epi64(u, v);  // c0 d0 c1 d1
        Store(a + 4 * j, _mm256_permute2x128_si256(lo, hi, 0x20));
        Store(a + 4 * j + 4, _mm256_permute2x128_si256(lo, hi, 0x31));
    }
    return j;
}

/** Fully-fused AVX2 forward radix-4 stage (the all-vector table entry):
 *  single pass over the data at every quarter length. */
void
FwdButterflyStage4Fused(u64 *a, const u64 *pairs, const u64 *quads,
                        std::size_t m, std::size_t q, u64 p)
{
    if (q >= kMinButterflyRun) {
        FwdStage4Rows(a, pairs, quads, m, q, p);
        return;
    }
    const __m256i vp = Bcast(p), v2p = Bcast(2 * p);
    std::size_t j = 0;
    if (q == 2) {
        FwdStage4TailQ2(a, pairs, quads, m, vp, v2p);
        return;
    }
    if (q == 1) {
        j = FwdStage4TailQ1(a, pairs, quads, m, vp, v2p);
    }
    for (; j < m; ++j) {
        u64 *blk = a + 4 * j * q;
        for (std::size_t k = 0; k < q; ++k) {
            FwdButterflyQuadElem(blk[k], blk[q + k], blk[2 * q + k],
                                 blk[3 * q + k], pairs[2 * j],
                                 pairs[2 * j + 1], quads[4 * j],
                                 quads[4 * j + 1], quads[4 * j + 2],
                                 quads[4 * j + 3], p);
        }
    }
}

/** Quarter length at and above which the production AVX2 table runs a
 *  fused stage pair as two row sweeps instead of one fused pass: the
 *  four-row column plus six twiddle broadcasts and the butterfly
 *  temporaries exceed the 16 ymm registers, and the resulting spill
 *  traffic measurably costs more than the second sweep saves (~0.87x
 *  at N = 4096; see BENCH_rns_batch radix columns). The scalar and
 *  AVX-512 tables fuse genuinely — this is a per-backend
 *  implementation choice behind the same semantic contract, exactly
 *  like the scalar-borrowed Barrett entries below. */
constexpr std::size_t kFusedRowMax = 2 * kMinButterflyRun;

/**
 * Production AVX2 forward radix-4 stage: two chained row sweeps while
 * q >= kFusedRowMax (bit-identical by construction — the same
 * butterfly rows the radix-2 stage walker would run), genuinely fused
 * row/shuffle forms for the interleaved-twiddle tails where they
 * measure faster.
 */
void
FwdButterflyStage4(u64 *a, const u64 *pairs, const u64 *quads,
                   std::size_t m, std::size_t q, u64 p)
{
    if (q >= kFusedRowMax) {
        for (std::size_t j = 0; j < m; ++j) {
            u64 *blk = a + 4 * j * q;
            FwdButterflyRows(blk, blk + 2 * q, 2 * q, pairs[2 * j],
                             pairs[2 * j + 1], p);
        }
        for (std::size_t j = 0; j < m; ++j) {
            u64 *blk = a + 4 * j * q;
            FwdButterflyRows(blk, blk + q, q, quads[4 * j],
                             quads[4 * j + 1], p);
            FwdButterflyRows(blk + 2 * q, blk + 3 * q, q,
                             quads[4 * j + 2], quads[4 * j + 3], p);
        }
        return;
    }
    FwdButterflyStage4Fused(a, pairs, quads, m, q, p);
}

/** Inverse radix-4, contiguous-row form (q >= 4); see FwdStage4Rows. */
void
InvStage4Rows(u64 *a, const u64 *quads, const u64 *pairs, std::size_t m,
              std::size_t q, u64 p)
{
    const __m256i vp = Bcast(p), v2p = Bcast(2 * p);
    for (std::size_t j = 0; j < m; ++j) {
        u64 *blk = a + 4 * j * q;
        const u64 w1a = quads[4 * j], w1ab = quads[4 * j + 1];
        const u64 w1b = quads[4 * j + 2], w1bb = quads[4 * j + 3];
        const u64 w2 = pairs[2 * j], w2b = pairs[2 * j + 1];
        const __m256i vw1a = Bcast(w1a), vw1ab = Bcast(w1ab);
        const __m256i vw1b = Bcast(w1b), vw1bb = Bcast(w1bb);
        const __m256i vw2 = Bcast(w2), vw2b = Bcast(w2b);
        std::size_t k = 0;
        for (; k + 4 <= q; k += 4) {
            __m256i va = Load(blk + k);
            __m256i vb = Load(blk + q + k);
            __m256i vc = Load(blk + 2 * q + k);
            __m256i vd = Load(blk + 3 * q + k);
            InvCore(va, vb, vw1a, vw1ab, vp, v2p);
            InvCore(vc, vd, vw1b, vw1bb, vp, v2p);
            InvCore(va, vc, vw2, vw2b, vp, v2p);
            InvCore(vb, vd, vw2, vw2b, vp, v2p);
            Store(blk + k, va);
            Store(blk + q + k, vb);
            Store(blk + 2 * q + k, vc);
            Store(blk + 3 * q + k, vd);
        }
        for (; k < q; ++k) {
            InvButterflyQuadElem(blk[k], blk[q + k], blk[2 * q + k],
                                 blk[3 * q + k], w1a, w1ab, w1b, w1bb,
                                 w2, w2b, p);
        }
    }
}

/** Inverse radix-4 tail, q == 2: mirror of FwdStage4TailQ2 with the
 *  levels swapped (permute first, lane-wise butterfly second). */
void
InvStage4TailQ2(u64 *a, const u64 *quads, const u64 *pairs,
                std::size_t m, __m256i vp, __m256i v2p)
{
    for (std::size_t j = 0; j < m; ++j) {
        const __m256i v0 = Load(a + 8 * j);      // A0 A1 B0 B1
        const __m256i v1 = Load(a + 8 * j + 4);  // C0 C1 D0 D1
        const __m256i qd = Load(quads + 4 * j);
        const __m256i vw1 = _mm256_permute4x64_epi64(qd, 0xA0);
        const __m256i vw1b = _mm256_permute4x64_epi64(qd, 0xF5);
        __m256i x = _mm256_permute2x128_si256(v0, v1, 0x20);  // A0A1C0C1
        __m256i y = _mm256_permute2x128_si256(v0, v1, 0x31);  // B0B1D0D1
        InvCore(x, y, vw1, vw1b, vp, v2p);  // (A,B) w1a, (C,D) w1b
        __m256i u = _mm256_permute2x128_si256(x, y, 0x20);  // A0A1B0B1
        __m256i v = _mm256_permute2x128_si256(x, y, 0x31);  // C0C1D0D1
        const __m256i vw2 = Bcast(pairs[2 * j]);
        const __m256i vw2b = Bcast(pairs[2 * j + 1]);
        InvCore(u, v, vw2, vw2b, vp, v2p);  // (A,C), (B,D) share w2
        Store(a + 8 * j, u);
        Store(a + 8 * j + 4, v);
    }
}

/** Inverse radix-4 tail, q == 1: the unpacked quad stream lands in
 *  lane order directly, so level one needs no twiddle permutes. */
std::size_t
InvStage4TailQ1(u64 *a, const u64 *quads, const u64 *pairs,
                std::size_t m, __m256i vp, __m256i v2p)
{
    std::size_t j = 0;
    for (; j + 2 <= m; j += 2) {
        const __m256i v0 = Load(a + 4 * j);      // a0 b0 c0 d0
        const __m256i v1 = Load(a + 4 * j + 4);  // a1 b1 c1 d1
        __m256i x = _mm256_unpacklo_epi64(v0, v1);  // a0 a1 c0 c1
        __m256i y = _mm256_unpackhi_epi64(v0, v1);  // b0 b1 d0 d1
        const __m256i q0 = Load(quads + 4 * j);
        const __m256i q1 = Load(quads + 4 * j + 4);
        const __m256i vw1 = _mm256_unpacklo_epi64(q0, q1);
        const __m256i vw1b = _mm256_unpackhi_epi64(q0, q1);
        InvCore(x, y, vw1, vw1b, vp, v2p);  // (a,b) w1a, (c,d) w1b
        __m256i u = _mm256_permute2x128_si256(x, y, 0x20);  // a0a1b0b1
        __m256i v = _mm256_permute2x128_si256(x, y, 0x31);  // c0c1d0d1
        // (w2_0, w2b_0, w2_1, w2b_1) -> (w2_0 w2_1 w2_0 w2_1) + bars.
        const __m256i pr = Load(pairs + 2 * j);
        const __m256i vw2 = _mm256_permute4x64_epi64(pr, 0x88);
        const __m256i vw2b = _mm256_permute4x64_epi64(pr, 0xDD);
        InvCore(u, v, vw2, vw2b, vp, v2p);  // pairs (a,c), (b,d)
        const __m256i t0 = _mm256_unpacklo_epi64(u, v);  // a0 c0 b0 d0
        const __m256i t1 = _mm256_unpackhi_epi64(u, v);  // a1 c1 b1 d1
        Store(a + 4 * j, _mm256_permute4x64_epi64(t0, 0xD8));
        Store(a + 4 * j + 4, _mm256_permute4x64_epi64(t1, 0xD8));
    }
    return j;
}

/** Fully-fused AVX2 inverse radix-4 stage (the all-vector table
 *  entry); see FwdButterflyStage4Fused. */
void
InvButterflyStage4Fused(u64 *a, const u64 *quads, const u64 *pairs,
                        std::size_t m, std::size_t q, u64 p)
{
    if (q >= kMinButterflyRun) {
        InvStage4Rows(a, quads, pairs, m, q, p);
        return;
    }
    const __m256i vp = Bcast(p), v2p = Bcast(2 * p);
    std::size_t j = 0;
    if (q == 2) {
        InvStage4TailQ2(a, quads, pairs, m, vp, v2p);
        return;
    }
    if (q == 1) {
        j = InvStage4TailQ1(a, quads, pairs, m, vp, v2p);
    }
    for (; j < m; ++j) {
        u64 *blk = a + 4 * j * q;
        for (std::size_t k = 0; k < q; ++k) {
            InvButterflyQuadElem(blk[k], blk[q + k], blk[2 * q + k],
                                 blk[3 * q + k], quads[4 * j],
                                 quads[4 * j + 1], quads[4 * j + 2],
                                 quads[4 * j + 3], pairs[2 * j],
                                 pairs[2 * j + 1], p);
        }
    }
}

/** Production AVX2 inverse radix-4 stage; see FwdButterflyStage4 for
 *  the two-sweep rationale. */
void
InvButterflyStage4(u64 *a, const u64 *quads, const u64 *pairs,
                   std::size_t m, std::size_t q, u64 p)
{
    if (q >= kFusedRowMax) {
        for (std::size_t j = 0; j < m; ++j) {
            u64 *blk = a + 4 * j * q;
            InvButterflyRows(blk, blk + q, q, quads[4 * j],
                             quads[4 * j + 1], p);
            InvButterflyRows(blk + 2 * q, blk + 3 * q, q,
                             quads[4 * j + 2], quads[4 * j + 3], p);
        }
        for (std::size_t j = 0; j < m; ++j) {
            u64 *blk = a + 4 * j * q;
            InvButterflyRows(blk, blk + 2 * q, 2 * q, pairs[2 * j],
                             pairs[2 * j + 1], p);
        }
        return;
    }
    InvButterflyStage4Fused(a, quads, pairs, m, q, p);
}

// ---------------------------------------------------------- elementwise

void
MulShoupRows(u64 *dst, const u64 *src, std::size_t n, u64 s, u64 s_bar,
             u64 p)
{
    const __m256i vp = Bcast(p), vs = Bcast(s), vsb = Bcast(s_bar);
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        const __m256i x = Load(src + k);
        const __m256i q = MulHiU64(x, vsb);
        const __m256i r =
            _mm256_sub_epi64(MulLoU64(x, vs), MulLoU64(q, vp));
        Store(dst + k, CondSub(r, vp));
    }
    for (; k < n; ++k) {
        dst[k] = MulModShoup(src[k], s, s_bar, p);
    }
}

void
MulBarrettRows(u64 *dst, const u64 *a, const u64 *b, std::size_t n,
               BarrettConsts c)
{
    if (c.mu_hi >> 32) {  // modulus <= 2^32: scalar reference
        internal::ScalarKernels().mul_barrett_rows(dst, a, b, n, c);
        return;
    }
    const __m256i vp = Bcast(c.p), v2p = Bcast(2 * c.p);
    const __m256i vmu_lo = Bcast(c.mu_lo), vmu_hi = Bcast(c.mu_hi);
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        const V128 z = MulFullU64(Load(a + k), Load(b + k));
        Store(dst + k, BarrettReduceVec(z, vp, v2p, vmu_lo, vmu_hi));
    }
    for (; k < n; ++k) {
        const u128 z = Mul64Wide(a[k], b[k]);
        dst[k] = BarrettReduce(Lo64(z), Hi64(z), c);
    }
}

void
MulAccBarrettRows(u64 *dst, const u64 *a, const u64 *b, std::size_t n,
                  BarrettConsts c)
{
    if (c.mu_hi >> 32) {
        internal::ScalarKernels().mul_acc_barrett_rows(dst, a, b, n, c);
        return;
    }
    const __m256i vp = Bcast(c.p), v2p = Bcast(2 * c.p);
    const __m256i vmu_lo = Bcast(c.mu_lo), vmu_hi = Bcast(c.mu_hi);
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        V128 z = MulFullU64(Load(a + k), Load(b + k));
        const __m256i addend = Load(dst + k);
        z.lo = _mm256_add_epi64(z.lo, addend);
        z.hi = _mm256_sub_epi64(z.hi, CarryMask(z.lo, addend));
        Store(dst + k, BarrettReduceVec(z, vp, v2p, vmu_lo, vmu_hi));
    }
    for (; k < n; ++k) {
        const u128 z = Mul64Wide(a[k], b[k]) + dst[k];
        dst[k] = BarrettReduce(Lo64(z), Hi64(z), c);
    }
}

void
ReduceBarrettRows(u64 *dst, const u64 *src, std::size_t n,
                  BarrettConsts c)
{
    if (c.mu_hi >> 32) {
        internal::ScalarKernels().reduce_barrett_rows(dst, src, n, c);
        return;
    }
    // z_hi == 0 specialisation of BarrettReduceVec: the quotient's low
    // word collapses to hi64(z*mu_hi + hi64(z*mu_lo)).
    const __m256i vp = Bcast(c.p), v2p = Bcast(2 * c.p);
    const __m256i vmu_lo = Bcast(c.mu_lo), vmu_hi = Bcast(c.mu_hi);
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        const __m256i z = Load(src + k);
        const __m256i h_ll = MulHiU64(z, vmu_lo);
        const V128 lh = MulFullU64x32(z, vmu_hi);
        const __m256i mid_lo = _mm256_add_epi64(lh.lo, h_ll);
        const __m256i q =
            _mm256_sub_epi64(lh.hi, CarryMask(mid_lo, h_ll));
        __m256i r = _mm256_sub_epi64(z, MulLoU64(q, vp));
        r = CondSub(r, v2p);
        Store(dst + k, CondSub(r, vp));
    }
    for (; k < n; ++k) {
        dst[k] = BarrettReduce(src[k], 0, c);
    }
}

/** FoldLazy on four lanes. */
inline __m256i
FoldVec(__m256i x, __m256i vp, __m256i v2p)
{
    return CondSub(CondSub(x, v2p), vp);
}

template <bool kSubtract>
void
AddSubRows(u64 *dst, const u64 *a, const u64 *b, std::size_t n, u64 p,
           bool fold_b)
{
    const __m256i vp = Bcast(p), v2p = Bcast(2 * p);
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        const __m256i x = Load(a + k);
        __m256i y = Load(b + k);
        if (fold_b) {
            y = FoldVec(y, vp, v2p);
        }
        __m256i r;
        if constexpr (kSubtract) {
            const __m256i lt = CmpGtU64(y, x);  // x < y: wrap by +p
            r = _mm256_add_epi64(_mm256_sub_epi64(x, y),
                                 _mm256_and_si256(lt, vp));
        } else {
            r = CondSub(_mm256_add_epi64(x, y), vp);
        }
        Store(dst + k, r);
    }
    for (; k < n; ++k) {
        const u64 s = fold_b ? FoldLazy(b[k], p) : b[k];
        dst[k] = kSubtract ? SubMod(a[k], s, p) : AddMod(a[k], s, p);
    }
}

void
AddRows(u64 *dst, const u64 *a, const u64 *b, std::size_t n, u64 p,
        bool fold_b)
{
    AddSubRows<false>(dst, a, b, n, p, fold_b);
}

void
SubRows(u64 *dst, const u64 *a, const u64 *b, std::size_t n, u64 p,
        bool fold_b)
{
    AddSubRows<true>(dst, a, b, n, p, fold_b);
}

void
FoldLazyRows(u64 *x, std::size_t n, u64 p)
{
    const __m256i vp = Bcast(p), v2p = Bcast(2 * p);
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        Store(x + k, FoldVec(Load(x + k), vp, v2p));
    }
    for (; k < n; ++k) {
        x[k] = FoldLazy(x[k], p);
    }
}

void
FoldRescaleRows(u64 *dst, const u64 *src, std::size_t n, u64 p, u64 s,
                u64 s_bar)
{
    const __m256i vp = Bcast(p), vs = Bcast(s), vsb = Bcast(s_bar);
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        const __m256i folded =
            CondSub(_mm256_add_epi64(Load(dst + k), Load(src + k)), vp);
        const __m256i q = MulHiU64(folded, vsb);
        const __m256i r =
            _mm256_sub_epi64(MulLoU64(folded, vs), MulLoU64(q, vp));
        Store(dst + k, CondSub(r, vp));
    }
    for (; k < n; ++k) {
        dst[k] = MulModShoup(AddMod(dst[k], src[k], p), s, s_bar, p);
    }
}

void
TensorRows(u64 *c0, u64 *c1, u64 *c2, const u64 *a0, const u64 *a1,
           const u64 *b0, const u64 *b1, std::size_t n, BarrettConsts c)
{
    if (c.mu_hi >> 32) {
        internal::ScalarKernels().tensor_rows(c0, c1, c2, a0, a1, b0, b1,
                                              n, c);
        return;
    }
    const __m256i vp = Bcast(c.p), v2p = Bcast(2 * c.p);
    const __m256i vmu_lo = Bcast(c.mu_lo), vmu_hi = Bcast(c.mu_hi);
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        const __m256i va0 = Load(a0 + k), va1 = Load(a1 + k);
        const __m256i vb0 = Load(b0 + k), vb1 = Load(b1 + k);
        const V128 z0 = MulFullU64(va0, vb0);
        const V128 za = MulFullU64(va0, vb1);
        const V128 zb = MulFullU64(va1, vb0);
        V128 z1;
        z1.lo = _mm256_add_epi64(za.lo, zb.lo);
        z1.hi = _mm256_sub_epi64(_mm256_add_epi64(za.hi, zb.hi),
                                 CarryMask(z1.lo, zb.lo));
        const V128 z2 = MulFullU64(va1, vb1);
        Store(c0 + k, BarrettReduceVec(z0, vp, v2p, vmu_lo, vmu_hi));
        Store(c1 + k, BarrettReduceVec(z1, vp, v2p, vmu_lo, vmu_hi));
        Store(c2 + k, BarrettReduceVec(z2, vp, v2p, vmu_lo, vmu_hi));
    }
    for (; k < n; ++k) {
        const u128 z0 = Mul64Wide(a0[k], b0[k]);
        const u128 z1 = Mul64Wide(a0[k], b1[k]) + Mul64Wide(a1[k], b0[k]);
        const u128 z2 = Mul64Wide(a1[k], b1[k]);
        c0[k] = BarrettReduce(Lo64(z0), Hi64(z0), c);
        c1[k] = BarrettReduce(Lo64(z1), Hi64(z1), c);
        c2[k] = BarrettReduce(Lo64(z2), Hi64(z2), c);
    }
}

}  // namespace

namespace internal {

bool
Avx2CompiledIn()
{
    return true;
}

const Kernels &
Avx2AllVectorKernels()
{
    // Every kernel vectorized (the branchy divide-and-round excepted:
    // its data-dependent centering blends poorly and it runs once per
    // op, not per stage).
    static const Kernels table = {
        &FwdButterflyRows,
        &FwdButterflyStage,
        &InvButterflyRows,
        &InvButterflyStage,
        &FwdButterflyStage4Fused,
        &InvButterflyStage4Fused,
        &MulShoupRows,
        &MulBarrettRows,
        &MulAccBarrettRows,
        &ReduceBarrettRows,
        &AddRows,
        &SubRows,
        &FoldLazyRows,
        &FoldRescaleRows,
        &TensorRows,
        ScalarKernels().divide_round_rows,
    };
    return table;
}

const Kernels &
Avx2Kernels()
{
    // Production table: measured hybrid. The Shoup-style kernels (one
    // mulhi + two mullo per element, branchless corrections) win big
    // on AVX2 — the forward butterfly ~3x, scalar-Shoup rows and the
    // fused epilogues comfortably. The 128-bit Barrett reduction tree
    // (mul, mul-acc, 64-bit reduce, tensor) does NOT: ~19 pmuludq per
    // four lanes loses to four hardware 64x64 mulx chains on current
    // Intel cores (~0.8x measured), so those entries borrow the
    // scalar implementation. Outputs are bit-identical either way;
    // Avx2AllVectorKernels keeps the vector variants tested for
    // microarchitectures (or an AVX-512 vpmullq port) where the
    // balance flips.
    static const Kernels table = {
        &FwdButterflyRows,
        &FwdButterflyStage,
        &InvButterflyRows,
        &InvButterflyStage,
        &FwdButterflyStage4,
        &InvButterflyStage4,
        &MulShoupRows,
        ScalarKernels().mul_barrett_rows,
        ScalarKernels().mul_acc_barrett_rows,
        ScalarKernels().reduce_barrett_rows,
        &AddRows,
        &SubRows,
        &FoldLazyRows,
        &FoldRescaleRows,
        ScalarKernels().tensor_rows,
        ScalarKernels().divide_round_rows,
    };
    return table;
}

}  // namespace internal

}  // namespace hentt::simd

#else  // !defined(__AVX2__)

namespace hentt::simd::internal {

bool
Avx2CompiledIn()
{
    return false;
}

const Kernels &
Avx2Kernels()
{
    return ScalarKernels();
}

const Kernels &
Avx2AllVectorKernels()
{
    return ScalarKernels();
}

}  // namespace hentt::simd::internal

#endif  // defined(__AVX2__)
