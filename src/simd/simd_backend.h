/**
 * @file
 * Pluggable SIMD modular-arithmetic backend — the single home of every
 * hot element-wise and butterfly inner loop in the library.
 *
 * The paper's kernel study (Sections IV-V) shows that NTT-bound HE
 * multiplication is won or lost in exactly these loops: the lazy
 * [0, 4p) butterflies and the Shoup/Barrett element-wise sweeps. Until
 * this layer existed, each consumer (ntt/, poly/, he/, kernels/)
 * carried its own scalar copy of those bodies, so vectorizing meant
 * touching all of them. Now the loops live behind one fixed vocabulary
 * of width-agnostic kernels with
 *
 *  - a scalar reference implementation (the audited semantics; every
 *    other backend must be bit-identical to it, including the lazy
 *    [0, 4p) representatives, not merely congruent),
 *  - an AVX2 implementation (compile-time guarded, runtime CPUID
 *    dispatch), processing four residues per vector op,
 *  - an AVX-512 implementation covering the full vocabulary — the
 *    butterfly family (rows, whole stages, fused radix-4 stage pairs)
 *    AND the element-wise family — at eight residues per vector op,
 *  - an AVX-512 IFMA ablation tier (vpmadd52lo/hi 52-bit limb
 *    products standing in for the 32x32 partial-product tree on the
 *    mul/mul-acc family; bench-only — see simd_avx512ifma.cpp), and
 *  - a NEON/arm64 implementation (2 x u64 lanes via uint64x2_t).
 *
 * Backend selection: runtime CPUID by default (best available wins:
 * avx512 > avx2 > neon > scalar; the IFMA tier is never auto-selected
 * — it measured below the DQ table, see ARCHITECTURE.md), overridable
 * with the environment variable
 * `HENTT_SIMD=scalar|avx2|avx512|avx512ifma|neon|auto` (read once, at
 * first use) or programmatically with ForceBackend() (benches and the
 * parity tests). Requesting an unavailable backend through the
 * environment falls back to scalar with a one-line stderr warning
 * naming every backend's availability; ForceBackend() throws with the
 * same listing, so tests cannot silently measure the wrong thing.
 *
 * Adding a backend (the contract simd_neon.cpp proves): implement the
 * Kernels table in a new translation unit, register it in
 * simd_dispatch.cpp, done — no consumer changes.
 */

#ifndef HENTT_SIMD_SIMD_BACKEND_H
#define HENTT_SIMD_SIMD_BACKEND_H

#include <cstddef>
#include <string>

#include "common/modarith.h"

namespace hentt::simd {

/** Available kernel implementations. */
enum class Backend {
    kScalar,      ///< portable reference (always available)
    kAvx2,        ///< 4 x u64 lanes; requires compile-time -mavx2 + CPUID
    kAvx512,      ///< 8 x u64 lanes, full vocabulary; -mavx512f/dq + CPUID
    kAvx512Ifma,  ///< avx512 with vpmadd52 operand products; CPUID ifma
    kNeon,        ///< 2 x u64 lanes via uint64x2_t (arm64 AdvSIMD)
};

/**
 * Every Backend member, in enum order — the one list tests and benches
 * iterate so a new backend joins the parity sweep and the per-backend
 * bench columns with zero per-backend edits.
 */
inline constexpr Backend kAllBackends[] = {
    Backend::kScalar,      Backend::kAvx2, Backend::kAvx512,
    Backend::kAvx512Ifma,  Backend::kNeon,
};

/** Number of Backend members (bench column arrays index by enum). */
inline constexpr std::size_t kBackendCount =
    sizeof(kAllBackends) / sizeof(kAllBackends[0]);

/**
 * Barrett constants of one modulus in backend-friendly form:
 * mu = floor(2^128 / p) split into words (see BarrettReducer).
 */
struct BarrettConsts {
    u64 p;
    u64 mu_lo;
    u64 mu_hi;
};

/** BarrettConsts of a cached reducer. */
inline BarrettConsts
Consts(const BarrettReducer &red)
{
    return {red.modulus(), red.mu_lo(), red.mu_hi()};
}

/**
 * Per-(source limb, target limb) constants of the BGV divide-and-round
 * step (the shared epilogue of BatchModSwitch and the fused
 * RelinModSwitch): drop prime q_k, rescale into residue row q_i.
 * mu_lo/mu_hi are q_i's Barrett constants.
 */
struct DivideRoundConsts {
    u64 qk;
    u64 t_inv_qk, t_inv_qk_bar;  ///< t^{-1} mod q_k + Shoup companion
    u64 qi;
    u64 qk_inv, qk_inv_bar;      ///< q_k^{-1} mod q_i + Shoup companion
    u64 t_mod_qi, t_mod_qi_bar;  ///< t mod q_i + Shoup companion
    u64 mu_lo, mu_hi;            ///< Barrett mu for q_i
};

/**
 * The paper's Algo. 2 lazy Cooley-Tukey butterfly on one element pair:
 * given A, B in [0, 4p), produces A' = A + B*Psi, B' = A - B*Psi with
 * both outputs in [0, 4p). This is the reference element every backend
 * must reproduce bitwise.
 *
 * @param a,b    in/out operands, each < 4p
 * @param w      twiddle < p
 * @param w_bar  Shoup companion of w
 * @param p      modulus < 2^62
 */
inline void
FwdButterflyElem(u64 &a, u64 &b, u64 w, u64 w_bar, u64 p)
{
    const u64 two_p = 2 * p;
    // Keep A below 2p before accumulating.
    if (a >= two_p) {
        a -= two_p;
    }
    // B * w with lazy Shoup reduction: result < 2p for any b < 4p
    // because the quotient approximation is exact mod 2^64.
    const u64 q = MulHi64(b, w_bar);
    const u64 t = b * w - q * p;  // < 2p
    b = a + two_p - t;            // < 4p
    a = a + t;                    // < 4p
}

/**
 * Lazy Gentleman-Sande butterfly (inverse direction): consumes
 * (u, v) both < 2p and emits (u + v folded below 2p, (u - v) * w) with
 * the product reduced lazily, so the < 2p invariant of the inverse
 * pipeline holds at every stage.
 */
inline void
InvButterflyElem(u64 &a, u64 &b, u64 w, u64 w_bar, u64 p)
{
    const u64 two_p = 2 * p;
    const u64 u = a;
    const u64 v = b;
    u64 s = u + v;  // < 4p
    if (s >= two_p) {
        s -= two_p;
    }
    a = s;
    // (u - v) * w, lazy: Harvey's bound keeps it < 2p for any 64-bit
    // multiplicand.
    const u64 d = u + two_p - v;  // < 4p
    const u64 q = MulHi64(d, w_bar);
    b = d * w - q * p;  // < 2p
}

/**
 * Fused radix-4 forward quad — two chained radix-2 CT levels on one
 * (a, b, c, d) quadruple, entirely in registers. Level one butterflies
 * the pairs (a, c) and (b, d) with the shared first-level twiddle w1;
 * level two butterflies (a, b) with w2a and (c, d) with w2b. Because it
 * is literally the composition of four FwdButterflyElem calls in the
 * same order the radix-2 stage walker would apply them, the result is
 * bit-identical to two chained radix-2 stages — lazy [0, 4p)
 * representatives included — while reading and writing each coefficient
 * once instead of twice.
 *
 * @param a,b,c,d  in/out operands, each < 4p (outputs < 4p)
 * @param w1       first-level twiddle < p (+ Shoup companion w1_bar)
 * @param w2a,w2b  second-level twiddles < p (+ Shoup companions)
 * @param p        modulus < 2^62
 */
inline void
FwdButterflyQuadElem(u64 &a, u64 &b, u64 &c, u64 &d, u64 w1, u64 w1_bar,
                     u64 w2a, u64 w2a_bar, u64 w2b, u64 w2b_bar, u64 p)
{
    FwdButterflyElem(a, c, w1, w1_bar, p);
    FwdButterflyElem(b, d, w1, w1_bar, p);
    FwdButterflyElem(a, b, w2a, w2a_bar, p);
    FwdButterflyElem(c, d, w2b, w2b_bar, p);
}

/**
 * Fused radix-4 inverse quad — two chained radix-2 GS levels, mirror of
 * FwdButterflyQuadElem. Level one butterflies the adjacent pairs (a, b)
 * with w1a and (c, d) with w1b; level two butterflies (a, c) and (b, d)
 * with the shared second-level twiddle w2. All operands stay < 2p at
 * every level (InvButterflyElem invariant), and the composition order
 * matches the radix-2 stage walker exactly.
 */
inline void
InvButterflyQuadElem(u64 &a, u64 &b, u64 &c, u64 &d, u64 w1a,
                     u64 w1a_bar, u64 w1b, u64 w1b_bar, u64 w2,
                     u64 w2_bar, u64 p)
{
    InvButterflyElem(a, b, w1a, w1a_bar, p);
    InvButterflyElem(c, d, w1b, w1b_bar, p);
    InvButterflyElem(a, c, w2, w2_bar, p);
    InvButterflyElem(b, d, w2, w2_bar, p);
}

/**
 * Barrett reduction of a 128-bit value (z_hi:z_lo) into [0, p) —
 * bitwise the BarrettReducer::Reduce pipeline, expressed over the
 * word-split constants so backends can share it.
 */
inline u64
BarrettReduce(u64 z_lo, u64 z_hi, const BarrettConsts &c)
{
    const u128 z = (static_cast<u128>(z_hi) << 64) | z_lo;
    const u128 mu = (static_cast<u128>(c.mu_hi) << 64) | c.mu_lo;
    const u128 q = Mul128High(z, mu);
    u64 r = z_lo - Lo64(q) * c.p;
    if (r >= 2 * c.p) {
        r -= 2 * c.p;
    }
    if (r >= c.p) {
        r -= c.p;
    }
    return r;
}

/**
 * The backend vocabulary: every kernel operates on contiguous rows
 * (gather-free), with POD scalar parameters so implementations stay
 * width-agnostic. Unless noted, dst may alias the first source operand
 * (in-place use) but no other; distinct rows never overlap.
 */
struct Kernels {
    /**
     * One constant-twiddle forward butterfly run: the contiguous-row
     * form of an NTT stage block. x and y are disjoint n-element runs
     * (x = a[base..base+t), y = a[base+t..base+2t)); every pair
     * (x[k], y[k]) goes through FwdButterflyElem with one (w, w_bar).
     */
    void (*fwd_butterfly_rows)(u64 *x, u64 *y, std::size_t n, u64 w,
                               u64 w_bar, u64 p);

    /**
     * One whole forward NTT stage — m blocks of t interleaved pairs,
     * block j spanning a[2jt..2jt+2t) with twiddles (w[j], w_bar[j])
     * (pointers into the bit-reversed table at offset m). Gather-free
     * by construction: while t >= kMinButterflyRun a block is two
     * contiguous rows with a broadcast twiddle; the short-run tail
     * stages (t < kMinButterflyRun) use in-register shuffles with the
     * contiguous twiddle slice. One indirect call per stage, not per
     * block, so the dispatch cost is O(log N) per transform.
     */
    void (*fwd_butterfly_stage)(u64 *a, const u64 *w, const u64 *w_bar,
                                std::size_t m, std::size_t t, u64 p);

    /** Constant-twiddle inverse (GS) butterfly run; see
     *  fwd_butterfly_rows. */
    void (*inv_butterfly_rows)(u64 *x, u64 *y, std::size_t n, u64 w,
                               u64 w_bar, u64 p);

    /** One whole inverse NTT stage: h blocks of t interleaved pairs,
     *  block j using (w[j], w_bar[j]) at table offset h; see
     *  fwd_butterfly_stage. */
    void (*inv_butterfly_stage)(u64 *a, const u64 *w, const u64 *w_bar,
                                std::size_t h, std::size_t t, u64 p);

    /**
     * One fused radix-4 forward stage pair: m super-blocks of 4q
     * coefficients, each super-block j spanning a[4jq..4jq+4q) split
     * into quarters (A, B, C, D) of q contiguous elements. Executes two
     * consecutive radix-2 CT levels per call (FwdButterflyQuadElem on
     * every (A[k], B[k], C[k], D[k]) column), so each coefficient is
     * read and written once for two butterfly levels — the pass count
     * over the data drops from log N to ceil(log N / 2).
     *
     * Twiddles come from the stage-major interleaved layout
     * (TwiddleTable::FusedStage): @p pairs holds the first-level
     * (w, w_bar) pair of super-block j at pairs[2j..2j+2); @p quads
     * holds its two second-level twiddles as
     * (w2a, w2a_bar, w2b, w2b_bar) at quads[4j..4j+4). Both streams are
     * consumed strictly sequentially, so the short-run tail stages
     * (q < kMinButterflyRun) need no gathers.
     *
     * Bit-identical to chaining fwd_butterfly_stage twice (levels m
     * then 2m of the radix-2 walker), lazy representatives included.
     */
    void (*fwd_butterfly_stage4)(u64 *a, const u64 *pairs,
                                 const u64 *quads, std::size_t m,
                                 std::size_t q, u64 p);

    /**
     * One fused radix-4 inverse stage pair, mirror of
     * fwd_butterfly_stage4: m super-blocks of 4q coefficients running
     * two consecutive radix-2 GS levels per call
     * (InvButterflyQuadElem). Here @p quads holds the *first*-level
     * twiddles of super-block j — (w1a, w1a_bar, w1b, w1b_bar) at
     * quads[4j..4j+4) — and @p pairs the shared second-level
     * (w2, w2_bar) pair at pairs[2j..2j+2) (the GS direction fans
     * twiddles the opposite way). All values stay < 2p per the inverse
     * pipeline invariant.
     */
    void (*inv_butterfly_stage4)(u64 *a, const u64 *quads,
                                 const u64 *pairs, std::size_t m,
                                 std::size_t q, u64 p);

    /**
     * Element-wise Shoup multiply by one constant, strict output:
     * dst[k] = MulModShoup(src[k], s, s_bar, p) < p for any 64-bit
     * src[k] (lazy [0, 4p) inputs included). dst == src allowed.
     */
    void (*mul_shoup_rows)(u64 *dst, const u64 *src, std::size_t n,
                           u64 s, u64 s_bar, u64 p);

    /**
     * Element-wise Barrett product dst[k] = a[k] * b[k] mod p.
     * Tolerates lazy [0, 4p) operands (16p^2 < 2^128 for p < 2^62).
     * dst may alias a and/or b.
     */
    void (*mul_barrett_rows)(u64 *dst, const u64 *a, const u64 *b,
                             std::size_t n, BarrettConsts c);

    /**
     * Fused multiply-accumulate dst[k] = (a[k] * b[k] + dst[k]) mod p
     * with a single Barrett reduction per element. @pre dst[k] < p;
     * a, b may be lazy (< 4p, p < 2^61 for the 32p^2 + p headroom).
     */
    void (*mul_acc_barrett_rows)(u64 *dst, const u64 *a, const u64 *b,
                                 std::size_t n, BarrettConsts c);

    /**
     * Barrett reduction of 64-bit residues into [0, p):
     * dst[k] = src[k] mod p. The CRT digit broadcast of
     * relinearization. dst == src allowed.
     */
    void (*reduce_barrett_rows)(u64 *dst, const u64 *src, std::size_t n,
                                BarrettConsts c);

    /**
     * dst[k] = AddMod(a[k], b'[k], p) where b' folds lazy [0, 4p)
     * values of b when fold_b is set. @pre a[k] < p. dst may alias a
     * or b.
     */
    void (*add_rows)(u64 *dst, const u64 *a, const u64 *b,
                     std::size_t n, u64 p, bool fold_b);

    /** dst[k] = SubMod(a[k], b'[k], p); see add_rows. */
    void (*sub_rows)(u64 *dst, const u64 *a, const u64 *b,
                     std::size_t n, u64 p, bool fold_b);

    /** Fold lazy [0, 4p) residues back into [0, p), in place. */
    void (*fold_lazy_rows)(u64 *x, std::size_t n, u64 p);

    /**
     * The fused RelinModSwitch rescale epilogue, run while the
     * inverse-transformed row is cache-hot:
     * dst[k] = MulModShoup(AddMod(dst[k], src[k], p), s, s_bar, p).
     */
    void (*fold_rescale_rows)(u64 *dst, const u64 *src, std::size_t n,
                              u64 p, u64 s, u64 s_bar);

    /**
     * The BGV tensor stage over one limb row: c0 = a0*b0,
     * c1 = a0*b1 + a1*b0 (one reduction for the 129-bit sum),
     * c2 = a1*b1, all mod p. Inputs may be lazy (< 4p; needs
     * 32p^2 < 2^128, i.e. p < 2^61). Outputs do not alias inputs.
     */
    void (*tensor_rows)(u64 *c0, u64 *c1, u64 *c2, const u64 *a0,
                        const u64 *a1, const u64 *b0, const u64 *b1,
                        std::size_t n, BarrettConsts c);

    /**
     * BGV divide-and-round: dst[k] = (src[k] - delta_k) * q_k^{-1}
     * mod q_i with delta_k the centered representative of
     * t * [top[k] * t^{-1}]_{q_k} — the exact, plaintext-clean rescale
     * shared by BatchModSwitch and the fused RelinModSwitch.
     */
    void (*divide_round_rows)(u64 *dst, const u64 *src, const u64 *top,
                              std::size_t n, const DivideRoundConsts &c);
};

/**
 * Below this run length a butterfly stage uses the *_tail kernels
 * (in-register shuffles) instead of the contiguous-row form — one
 * AVX2 vector of u64 lanes.
 */
inline constexpr std::size_t kMinButterflyRun = 4;

/** The kernel table of an explicit backend (always constructed;
 *  kAvx2 falls back to the scalar table when unavailable — check
 *  BackendAvailable first when the distinction matters). */
const Kernels &Get(Backend backend);

/** The runtime-dispatched active table (env override > CPUID). */
const Kernels &Active();

/** The backend Active() currently resolves to. */
Backend ActiveBackend();

/**
 * Force the active backend (benches / parity tests).
 * @throws std::invalid_argument when the backend is not available on
 *         this build/CPU; the message names every backend's
 *         availability (compiled-out vs missing CPUID feature).
 */
void ForceBackend(Backend backend);

/** Drop a ForceBackend override and re-resolve from the environment /
 *  CPUID. */
void ResetBackend();

/** Whether a backend is compiled in AND supported by this CPU. */
bool BackendAvailable(Backend backend);

/** Short stable name ("scalar", "avx2") for logs and bench columns. */
const char *BackendName(Backend backend);

/**
 * Why a backend is or is not usable right now: "available",
 * "not compiled in (...)", or "CPU lacks ...". Stable enough for
 * error messages and the HENTT_SIMD fallback warning, not a parse
 * target.
 */
const char *AvailabilityReason(Backend backend);

/** One line per backend: "name: reason" — the listing ForceBackend
 *  errors and the HENTT_SIMD fallback warning embed. */
std::string DescribeAvailability();

/**
 * Debug helper: which translation unit each of the 16 kernel slots of
 * @p backend's table actually resolves to (one "slot -> tu" line per
 * slot), so borrowed-slot fallbacks — e.g. a table borrowing the
 * scalar Barrett family — are visible instead of silent.
 */
std::string DescribeKernelTable(Backend backend);

}  // namespace hentt::simd

#endif  // HENTT_SIMD_SIMD_BACKEND_H
