/**
 * @file
 * AVX-512 helper vocabulary shared by the DQ backend (simd_avx512.cpp)
 * and the IFMA ablation backend (simd_avx512ifma.cpp): loads, the
 * branchless vpminuq correction, the 64x64 product halves, the 128-bit
 * partial-product tree, and the eight-lane Barrett/Shoup reduction
 * pipelines. Header-only so each translation unit compiles it under
 * its own -mavx512* flags; include only from code already guarded by
 * __AVX512F__ && __AVX512DQ__.
 *
 * Every routine is exact 128-bit integer arithmetic (no approximation
 * anywhere), so any kernel composed from these matches the scalar
 * reference bitwise — the parity sweep in tests/test_simd_kernels.cpp
 * checks exactly that, lazy [0, 4p) representatives included.
 */

#ifndef HENTT_SIMD_SIMD_AVX512_COMMON_H
#define HENTT_SIMD_SIMD_AVX512_COMMON_H

#include <immintrin.h>

#include "simd/simd_backend.h"

namespace hentt::simd::avx512detail {

inline __m512i
Load(const u64 *p)
{
    return _mm512_loadu_si512(p);
}

inline void
Store(u64 *p, __m512i v)
{
    _mm512_storeu_si512(p, v);
}

inline __m512i
Bcast(u64 x)
{
    return _mm512_set1_epi64(static_cast<long long>(x));
}

/** a >= bound ? a - bound : a, branch-free for any unsigned operands:
 *  a - bound wraps above a exactly when a < bound. */
inline __m512i
CondSub(__m512i a, __m512i bound)
{
    return _mm512_min_epu64(a, _mm512_sub_epi64(a, bound));
}

/** High 64 bits of the unsigned 64x64 product — the same partial-
 *  product tree as the AVX2 backend / common/int128.h, eight lanes. */
inline __m512i
MulHiU64(__m512i x, __m512i y)
{
    const __m512i lo32 = Bcast(0xffffffffu);
    const __m512i xh = _mm512_srli_epi64(x, 32);
    const __m512i yh = _mm512_srli_epi64(y, 32);
    const __m512i ll = _mm512_mul_epu32(x, y);
    const __m512i lh = _mm512_mul_epu32(x, yh);
    const __m512i hl = _mm512_mul_epu32(xh, y);
    const __m512i hh = _mm512_mul_epu32(xh, yh);
    const __m512i cross = _mm512_add_epi64(
        _mm512_add_epi64(_mm512_srli_epi64(ll, 32),
                         _mm512_and_si512(lh, lo32)),
        _mm512_and_si512(hl, lo32));
    return _mm512_add_epi64(
        _mm512_add_epi64(hh, _mm512_srli_epi64(lh, 32)),
        _mm512_add_epi64(_mm512_srli_epi64(hl, 32),
                         _mm512_srli_epi64(cross, 32)));
}

/** Low 64 bits of the unsigned 64x64 product: vpmullq, one
 *  instruction — the AVX-512DQ edge over the AVX2 tree. */
inline __m512i
MulLoU64(__m512i x, __m512i y)
{
    return _mm512_mullo_epi64(x, y);
}

struct V512 {
    __m512i lo, hi;
};

/** Full 64x64 -> 128-bit product: vpmullq low half, tree high half. */
inline V512
MulFullU64(__m512i x, __m512i y)
{
    V512 r;
    r.lo = _mm512_mullo_epi64(x, y);
    r.hi = MulHiU64(x, y);
    return r;
}

/** Full 64x32 -> 96-bit product (y32 has zero high halves). */
inline V512
MulFullU64x32(__m512i x, __m512i y32)
{
    const __m512i lo32 = Bcast(0xffffffffu);
    const __m512i a = _mm512_mul_epu32(x, y32);
    const __m512i b = _mm512_mul_epu32(_mm512_srli_epi64(x, 32), y32);
    const __m512i s = _mm512_add_epi64(_mm512_srli_epi64(a, 32),
                                       _mm512_and_si512(b, lo32));
    V512 r;
    r.lo = _mm512_or_si512(_mm512_and_si512(a, lo32),
                           _mm512_slli_epi64(s, 32));
    r.hi = _mm512_add_epi64(_mm512_srli_epi64(b, 32),
                            _mm512_srli_epi64(s, 32));
    return r;
}

/** hi + carry(sum = a + addend): the mask compare replaces AVX2's
 *  subtract-an-all-ones-mask carry idiom. */
inline __m512i
AddCarry(__m512i hi, __m512i sum, __m512i addend)
{
    const __mmask8 carry = _mm512_cmplt_epu64_mask(sum, addend);
    return _mm512_mask_add_epi64(hi, carry, hi, Bcast(1));
}

/**
 * Barrett reduction of (z.hi:z.lo) into [0, p) — the Mul128High tree
 * of BarrettReduce over word-split constants, restricted to
 * mu_hi < 2^32 (every modulus above 2^32; callers delegate the
 * tiny-modulus remainder to the scalar table) and to the low quotient
 * word (the only part the residual needs).
 */
inline __m512i
BarrettReduceVec(V512 z, __m512i vp, __m512i v2p, __m512i vmu_lo,
                 __m512i vmu_hi)
{
    const __m512i h_ll = MulHiU64(z.lo, vmu_lo);
    const V512 lh = MulFullU64x32(z.lo, vmu_hi);
    const __m512i mid_lo = _mm512_add_epi64(lh.lo, h_ll);
    const __m512i mid_hi = AddCarry(lh.hi, mid_lo, h_ll);
    const V512 hl = MulFullU64(z.hi, vmu_lo);
    const __m512i mid2_lo = _mm512_add_epi64(hl.lo, mid_lo);
    const __m512i mid2_hi = AddCarry(hl.hi, mid2_lo, mid_lo);
    const __m512i hh_lo = MulLoU64(z.hi, vmu_hi);
    const __m512i q =
        _mm512_add_epi64(hh_lo, _mm512_add_epi64(mid_hi, mid2_hi));
    __m512i r = _mm512_sub_epi64(z.lo, MulLoU64(q, vp));
    r = CondSub(r, v2p);
    return CondSub(r, vp);
}

/** z_hi == 0 specialisation of BarrettReduceVec: the quotient's low
 *  word collapses to hi64(z*mu_hi + hi64(z*mu_lo)). */
inline __m512i
ReduceBarrett64Vec(__m512i z, __m512i vp, __m512i v2p, __m512i vmu_lo,
                   __m512i vmu_hi)
{
    const __m512i h_ll = MulHiU64(z, vmu_lo);
    const V512 lh = MulFullU64x32(z, vmu_hi);
    const __m512i mid_lo = _mm512_add_epi64(lh.lo, h_ll);
    const __m512i q = AddCarry(lh.hi, mid_lo, h_ll);
    __m512i r = _mm512_sub_epi64(z, MulLoU64(q, vp));
    r = CondSub(r, v2p);
    return CondSub(r, vp);
}

/** MulModShoup on eight lanes, strict output < p for any 64-bit x. */
inline __m512i
MulModShoupVec(__m512i x, __m512i vs, __m512i vsb, __m512i vp)
{
    const __m512i q = MulHiU64(x, vsb);
    const __m512i r =
        _mm512_sub_epi64(MulLoU64(x, vs), MulLoU64(q, vp));
    return CondSub(r, vp);
}

/** FoldLazy on eight lanes: [0, 4p) -> [0, p). */
inline __m512i
FoldVec(__m512i x, __m512i vp, __m512i v2p)
{
    return CondSub(CondSub(x, v2p), vp);
}

}  // namespace hentt::simd::avx512detail

#endif  // HENTT_SIMD_SIMD_AVX512_COMMON_H
