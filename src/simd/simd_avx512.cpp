/**
 * @file
 * AVX-512 backend: eight u64 residues per vector op, covering the
 * butterfly family (constant-twiddle rows, whole radix-2 stages, and
 * the fused radix-4 stage pairs). Compiled with -mavx512f -mavx512dq
 * when the toolchain supports them (see CMakeLists); callers reach
 * this table only after the runtime CPUID check in simd_dispatch.cpp.
 *
 * The 512-bit ISA removes both AVX2 butterfly bottlenecks at once:
 *
 *  - vpmullq (AVX-512DQ) produces the low 64 bits of a 64x64 product
 *    in one instruction, replacing the AVX2 partial-product assembly
 *    for the two low products of every Shoup multiply (the exact high
 *    product still uses the 32x32 tree — kept term-for-term identical
 *    to common/int128.h, so every kernel is bit-identical to the
 *    scalar reference, lazy [0, 4p) representatives included);
 *  - vpminuq turns every lazy conditional correction into sub + min
 *    (min(a, a - bound) == a >= bound ? a - bound : a, for any
 *    unsigned a, bound — the wraparound makes the subtracted form
 *    larger exactly when the correction must not fire);
 *  - 32 vector registers hold the fused radix-4 four-row working set,
 *    its six twiddle broadcasts, and the butterfly temporaries without
 *    spilling — the reason the AVX2 table executes the fused contract
 *    as two sweeps while this one genuinely fuses (see simd_avx2.cpp).
 *
 * The short-run tail stages of the fused walker (quarter q in
 * {1, 2, 4}) use single-instruction two-source permutes (vpermi2q /
 * vshufi64x2) over the interleaved twiddle streams, so even the last
 * butterfly levels of a transform run gather-free in one pass.
 *
 * Element-wise kernels are borrowed from the production AVX2 table
 * (which in turn borrows the scalar Barrett family); widening those is
 * the natural next increment (see ROADMAP).
 */

#include "simd/simd_internal.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

namespace hentt::simd {

namespace {

inline __m512i
Load(const u64 *p)
{
    return _mm512_loadu_si512(p);
}

inline void
Store(u64 *p, __m512i v)
{
    _mm512_storeu_si512(p, v);
}

inline __m512i
Bcast(u64 x)
{
    return _mm512_set1_epi64(static_cast<long long>(x));
}

/** a >= bound ? a - bound : a, branch-free for any unsigned operands:
 *  a - bound wraps above a exactly when a < bound. */
inline __m512i
CondSub(__m512i a, __m512i bound)
{
    return _mm512_min_epu64(a, _mm512_sub_epi64(a, bound));
}

/** High 64 bits of the unsigned 64x64 product — the same partial-
 *  product tree as the AVX2 backend / common/int128.h, eight lanes. */
inline __m512i
MulHiU64(__m512i x, __m512i y)
{
    const __m512i lo32 = Bcast(0xffffffffu);
    const __m512i xh = _mm512_srli_epi64(x, 32);
    const __m512i yh = _mm512_srli_epi64(y, 32);
    const __m512i ll = _mm512_mul_epu32(x, y);
    const __m512i lh = _mm512_mul_epu32(x, yh);
    const __m512i hl = _mm512_mul_epu32(xh, y);
    const __m512i hh = _mm512_mul_epu32(xh, yh);
    const __m512i cross = _mm512_add_epi64(
        _mm512_add_epi64(_mm512_srli_epi64(ll, 32),
                         _mm512_and_si512(lh, lo32)),
        _mm512_and_si512(hl, lo32));
    return _mm512_add_epi64(
        _mm512_add_epi64(hh, _mm512_srli_epi64(lh, 32)),
        _mm512_add_epi64(_mm512_srli_epi64(hl, 32),
                         _mm512_srli_epi64(cross, 32)));
}

/** The lazy CT butterfly core on eight lanes (FwdButterflyElem). */
inline void
FwdCore(__m512i &x, __m512i &y, __m512i vw, __m512i vwb, __m512i vp,
        __m512i v2p)
{
    x = CondSub(x, v2p);
    const __m512i q = MulHiU64(y, vwb);
    const __m512i t = _mm512_sub_epi64(_mm512_mullo_epi64(y, vw),
                                       _mm512_mullo_epi64(q, vp));
    y = _mm512_sub_epi64(_mm512_add_epi64(x, v2p), t);
    x = _mm512_add_epi64(x, t);
}

/** The lazy GS butterfly core on eight lanes (InvButterflyElem). */
inline void
InvCore(__m512i &x, __m512i &y, __m512i vw, __m512i vwb, __m512i vp,
        __m512i v2p)
{
    const __m512i u = x;
    const __m512i v = y;
    x = CondSub(_mm512_add_epi64(u, v), v2p);
    const __m512i d =
        _mm512_sub_epi64(_mm512_add_epi64(u, v2p), v);
    const __m512i q = MulHiU64(d, vwb);
    y = _mm512_sub_epi64(_mm512_mullo_epi64(d, vw),
                         _mm512_mullo_epi64(q, vp));
}

// ---------------------------------------------------------------- rows

void
FwdButterflyRows(u64 *x, u64 *y, std::size_t n, u64 w, u64 w_bar, u64 p)
{
    const __m512i vp = Bcast(p), v2p = Bcast(2 * p);
    const __m512i vw = Bcast(w), vwb = Bcast(w_bar);
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        __m512i a = Load(x + k), b = Load(y + k);
        FwdCore(a, b, vw, vwb, vp, v2p);
        Store(x + k, a);
        Store(y + k, b);
    }
    for (; k < n; ++k) {
        FwdButterflyElem(x[k], y[k], w, w_bar, p);
    }
}

void
InvButterflyRows(u64 *x, u64 *y, std::size_t n, u64 w, u64 w_bar, u64 p)
{
    const __m512i vp = Bcast(p), v2p = Bcast(2 * p);
    const __m512i vw = Bcast(w), vwb = Bcast(w_bar);
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        __m512i a = Load(x + k), b = Load(y + k);
        InvCore(a, b, vw, vwb, vp, v2p);
        Store(x + k, a);
        Store(y + k, b);
    }
    for (; k < n; ++k) {
        InvButterflyElem(x[k], y[k], w, w_bar, p);
    }
}

// --------------------------------------------------------------- stages

/** Run length below which a whole radix-2 stage is delegated to the
 *  AVX2 table (its ymm row form and unpack tails fit t in {1, 2, 4}
 *  better than 512-bit vectors do). */
constexpr std::size_t kZmmRun = 8;

void
FwdButterflyStage(u64 *a, const u64 *w, const u64 *w_bar, std::size_t m,
                  std::size_t t, u64 p)
{
    if (t < kZmmRun) {
        internal::Avx2Kernels().fwd_butterfly_stage(a, w, w_bar, m, t,
                                                    p);
        return;
    }
    for (std::size_t j = 0; j < m; ++j) {
        u64 *x = a + 2 * j * t;
        FwdButterflyRows(x, x + t, t, w[j], w_bar[j], p);
    }
}

void
InvButterflyStage(u64 *a, const u64 *w, const u64 *w_bar, std::size_t h,
                  std::size_t t, u64 p)
{
    if (t < kZmmRun) {
        internal::Avx2Kernels().inv_butterfly_stage(a, w, w_bar, h, t,
                                                    p);
        return;
    }
    for (std::size_t j = 0; j < h; ++j) {
        u64 *x = a + 2 * j * t;
        InvButterflyRows(x, x + t, t, w[j], w_bar[j], p);
    }
}

// -------------------------------------------------- fused radix-4 stages
//
// Same geometry as the scalar/AVX2 fused kernels: super-block j is
// quarters (A, B, C, D) of q contiguous elements, twiddles stream from
// the interleaved pair/quad layout. The row form (q >= 8) keeps two
// columns in flight so the chained two-level butterfly latency
// overlaps; the q in {1, 2, 4} tails use vshufi64x2 / vpermi2q
// single-instruction permutes with index vectors hoisted out of the
// loop.

/** Lane-index vector for _mm512_permutex2var_epi64 (0-7 first source,
 *  8-15 second source). */
inline __m512i
Idx(long long a, long long b, long long c, long long d, long long e,
    long long f, long long g, long long h)
{
    return _mm512_setr_epi64(a, b, c, d, e, f, g, h);
}

void
FwdStage4Rows(u64 *a, const u64 *pairs, const u64 *quads, std::size_t m,
              std::size_t q, u64 p)
{
    const __m512i vp = Bcast(p), v2p = Bcast(2 * p);
    for (std::size_t j = 0; j < m; ++j) {
        u64 *blk = a + 4 * j * q;
        const u64 w1 = pairs[2 * j], w1b = pairs[2 * j + 1];
        const u64 w2a = quads[4 * j], w2ab = quads[4 * j + 1];
        const u64 w2b = quads[4 * j + 2], w2bb = quads[4 * j + 3];
        const __m512i vw1 = Bcast(w1), vw1b = Bcast(w1b);
        const __m512i vw2a = Bcast(w2a), vw2ab = Bcast(w2ab);
        const __m512i vw2b = Bcast(w2b), vw2bb = Bcast(w2bb);
        std::size_t k = 0;
        // Two columns per iteration: the second column's level-one
        // butterflies fill the ports while the first column's level
        // two waits on its own level-one results.
        for (; k + 16 <= q; k += 16) {
            __m512i a0 = Load(blk + k), a1 = Load(blk + k + 8);
            __m512i b0 = Load(blk + q + k), b1 = Load(blk + q + k + 8);
            __m512i c0 = Load(blk + 2 * q + k);
            __m512i c1 = Load(blk + 2 * q + k + 8);
            __m512i d0 = Load(blk + 3 * q + k);
            __m512i d1 = Load(blk + 3 * q + k + 8);
            FwdCore(a0, c0, vw1, vw1b, vp, v2p);
            FwdCore(a1, c1, vw1, vw1b, vp, v2p);
            FwdCore(b0, d0, vw1, vw1b, vp, v2p);
            FwdCore(b1, d1, vw1, vw1b, vp, v2p);
            FwdCore(a0, b0, vw2a, vw2ab, vp, v2p);
            FwdCore(a1, b1, vw2a, vw2ab, vp, v2p);
            FwdCore(c0, d0, vw2b, vw2bb, vp, v2p);
            FwdCore(c1, d1, vw2b, vw2bb, vp, v2p);
            Store(blk + k, a0);
            Store(blk + k + 8, a1);
            Store(blk + q + k, b0);
            Store(blk + q + k + 8, b1);
            Store(blk + 2 * q + k, c0);
            Store(blk + 2 * q + k + 8, c1);
            Store(blk + 3 * q + k, d0);
            Store(blk + 3 * q + k + 8, d1);
        }
        for (; k + 8 <= q; k += 8) {
            __m512i va = Load(blk + k);
            __m512i vb = Load(blk + q + k);
            __m512i vc = Load(blk + 2 * q + k);
            __m512i vd = Load(blk + 3 * q + k);
            FwdCore(va, vc, vw1, vw1b, vp, v2p);
            FwdCore(vb, vd, vw1, vw1b, vp, v2p);
            FwdCore(va, vb, vw2a, vw2ab, vp, v2p);
            FwdCore(vc, vd, vw2b, vw2bb, vp, v2p);
            Store(blk + k, va);
            Store(blk + q + k, vb);
            Store(blk + 2 * q + k, vc);
            Store(blk + 3 * q + k, vd);
        }
        for (; k < q; ++k) {
            FwdButterflyQuadElem(blk[k], blk[q + k], blk[2 * q + k],
                                 blk[3 * q + k], w1, w1b, w2a, w2ab, w2b,
                                 w2bb, p);
        }
    }
}

void
InvStage4Rows(u64 *a, const u64 *quads, const u64 *pairs, std::size_t m,
              std::size_t q, u64 p)
{
    const __m512i vp = Bcast(p), v2p = Bcast(2 * p);
    for (std::size_t j = 0; j < m; ++j) {
        u64 *blk = a + 4 * j * q;
        const u64 w1a = quads[4 * j], w1ab = quads[4 * j + 1];
        const u64 w1b = quads[4 * j + 2], w1bb = quads[4 * j + 3];
        const u64 w2 = pairs[2 * j], w2b = pairs[2 * j + 1];
        const __m512i vw1a = Bcast(w1a), vw1ab = Bcast(w1ab);
        const __m512i vw1b = Bcast(w1b), vw1bb = Bcast(w1bb);
        const __m512i vw2 = Bcast(w2), vw2b = Bcast(w2b);
        std::size_t k = 0;
        for (; k + 16 <= q; k += 16) {
            __m512i a0 = Load(blk + k), a1 = Load(blk + k + 8);
            __m512i b0 = Load(blk + q + k), b1 = Load(blk + q + k + 8);
            __m512i c0 = Load(blk + 2 * q + k);
            __m512i c1 = Load(blk + 2 * q + k + 8);
            __m512i d0 = Load(blk + 3 * q + k);
            __m512i d1 = Load(blk + 3 * q + k + 8);
            InvCore(a0, b0, vw1a, vw1ab, vp, v2p);
            InvCore(a1, b1, vw1a, vw1ab, vp, v2p);
            InvCore(c0, d0, vw1b, vw1bb, vp, v2p);
            InvCore(c1, d1, vw1b, vw1bb, vp, v2p);
            InvCore(a0, c0, vw2, vw2b, vp, v2p);
            InvCore(a1, c1, vw2, vw2b, vp, v2p);
            InvCore(b0, d0, vw2, vw2b, vp, v2p);
            InvCore(b1, d1, vw2, vw2b, vp, v2p);
            Store(blk + k, a0);
            Store(blk + k + 8, a1);
            Store(blk + q + k, b0);
            Store(blk + q + k + 8, b1);
            Store(blk + 2 * q + k, c0);
            Store(blk + 2 * q + k + 8, c1);
            Store(blk + 3 * q + k, d0);
            Store(blk + 3 * q + k + 8, d1);
        }
        for (; k + 8 <= q; k += 8) {
            __m512i va = Load(blk + k);
            __m512i vb = Load(blk + q + k);
            __m512i vc = Load(blk + 2 * q + k);
            __m512i vd = Load(blk + 3 * q + k);
            InvCore(va, vb, vw1a, vw1ab, vp, v2p);
            InvCore(vc, vd, vw1b, vw1bb, vp, v2p);
            InvCore(va, vc, vw2, vw2b, vp, v2p);
            InvCore(vb, vd, vw2, vw2b, vp, v2p);
            Store(blk + k, va);
            Store(blk + q + k, vb);
            Store(blk + 2 * q + k, vc);
            Store(blk + 3 * q + k, vd);
        }
        for (; k < q; ++k) {
            InvButterflyQuadElem(blk[k], blk[q + k], blk[2 * q + k],
                                 blk[3 * q + k], w1a, w1ab, w1b, w1bb,
                                 w2, w2b, p);
        }
    }
}

/** Broadcast pattern (word[i0] x4, word[i1] x4) from one 4-word quad
 *  at @p src (forward q == 4 second level, etc.). */
inline __m512i
SpreadQuad(const u64 *src, __m512i idx)
{
    const __m512i v = _mm512_zextsi256_si512(
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(src)));
    return _mm512_permutexvar_epi64(idx, v);
}

/**
 * Forward radix-4 tail, q == 4: one 16-element super-block per
 * iteration as two zmm (A|B and C|D). Level one is a straight
 * lane-wise butterfly; level two regroups through vshufi64x2.
 */
void
FwdStage4TailQ4(u64 *a, const u64 *pairs, const u64 *quads,
                std::size_t m, __m512i vp, __m512i v2p)
{
    const __m512i bc0 = Idx(0, 0, 0, 0, 2, 2, 2, 2);
    const __m512i bc1 = Idx(1, 1, 1, 1, 3, 3, 3, 3);
    for (std::size_t j = 0; j < m; ++j) {
        __m512i v0 = Load(a + 16 * j);      // A0..A3 B0..B3
        __m512i v1 = Load(a + 16 * j + 8);  // C0..C3 D0..D3
        FwdCore(v0, v1, Bcast(pairs[2 * j]), Bcast(pairs[2 * j + 1]),
                vp, v2p);                   // (A,C), (B,D) share w1
        __m512i x = _mm512_shuffle_i64x2(v0, v1, 0x44);  // A | C
        __m512i y = _mm512_shuffle_i64x2(v0, v1, 0xEE);  // B | D
        const __m512i vw2 = SpreadQuad(quads + 4 * j, bc0);
        const __m512i vw2b = SpreadQuad(quads + 4 * j, bc1);
        FwdCore(x, y, vw2, vw2b, vp, v2p);  // (A,B) w2a, (C,D) w2b
        Store(a + 16 * j, _mm512_shuffle_i64x2(x, y, 0x44));
        Store(a + 16 * j + 8, _mm512_shuffle_i64x2(x, y, 0xEE));
    }
}

/** Inverse radix-4 tail, q == 4: mirror of FwdStage4TailQ4 with the
 *  levels swapped. */
void
InvStage4TailQ4(u64 *a, const u64 *quads, const u64 *pairs,
                std::size_t m, __m512i vp, __m512i v2p)
{
    const __m512i bc0 = Idx(0, 0, 0, 0, 2, 2, 2, 2);
    const __m512i bc1 = Idx(1, 1, 1, 1, 3, 3, 3, 3);
    for (std::size_t j = 0; j < m; ++j) {
        const __m512i v0 = Load(a + 16 * j);      // A | B
        const __m512i v1 = Load(a + 16 * j + 8);  // C | D
        __m512i x = _mm512_shuffle_i64x2(v0, v1, 0x44);  // A | C
        __m512i y = _mm512_shuffle_i64x2(v0, v1, 0xEE);  // B | D
        InvCore(x, y, SpreadQuad(quads + 4 * j, bc0),
                SpreadQuad(quads + 4 * j, bc1), vp, v2p);
        __m512i u = _mm512_shuffle_i64x2(x, y, 0x44);  // A | B
        __m512i v = _mm512_shuffle_i64x2(x, y, 0xEE);  // C | D
        InvCore(u, v, Bcast(pairs[2 * j]), Bcast(pairs[2 * j + 1]), vp,
                v2p);                          // (A,C), (B,D) share w2
        Store(a + 16 * j, u);
        Store(a + 16 * j + 8, v);
    }
}

/** Forward radix-4 tail, q == 2: two 8-element super-blocks per
 *  iteration; vpermi2q regroups the quarters for level two. */
std::size_t
FwdStage4TailQ2(u64 *a, const u64 *pairs, const u64 *quads,
                std::size_t m, __m512i vp, __m512i v2p)
{
    const __m512i bc4_0 = Idx(0, 0, 0, 0, 2, 2, 2, 2);
    const __m512i bc4_1 = Idx(1, 1, 1, 1, 3, 3, 3, 3);
    const __m512i pr2_0 = Idx(0, 0, 2, 2, 4, 4, 6, 6);
    const __m512i pr2_1 = Idx(1, 1, 3, 3, 5, 5, 7, 7);
    const __m512i gu = Idx(0, 1, 8, 9, 4, 5, 12, 13);
    const __m512i gv = Idx(2, 3, 10, 11, 6, 7, 14, 15);
    const __m512i s0 = Idx(0, 1, 8, 9, 2, 3, 10, 11);
    const __m512i s1 = Idx(4, 5, 12, 13, 6, 7, 14, 15);
    std::size_t j = 0;
    for (; j + 2 <= m; j += 2) {
        const __m512i v0 = Load(a + 8 * j);      // blk j:   A B C D
        const __m512i v1 = Load(a + 8 * j + 8);  // blk j+1: A B C D
        __m512i x = _mm512_shuffle_i64x2(v0, v1, 0x44);  // AB | AB
        __m512i y = _mm512_shuffle_i64x2(v0, v1, 0xEE);  // CD | CD
        // Level one: (A,C), (B,D), per-block w1 from the pair stream.
        const __m512i pr = _mm512_zextsi256_si512(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(pairs + 2 * j)));
        FwdCore(x, y, _mm512_permutexvar_epi64(bc4_0, pr),
                _mm512_permutexvar_epi64(bc4_1, pr), vp, v2p);
        // Level two: (A,B) w2a, (C,D) w2b, quads of both blocks.
        __m512i u = _mm512_permutex2var_epi64(x, gu, y);  // AC | AC
        __m512i v = _mm512_permutex2var_epi64(x, gv, y);  // BD | BD
        const __m512i qd = Load(quads + 4 * j);
        FwdCore(u, v, _mm512_permutexvar_epi64(pr2_0, qd),
                _mm512_permutexvar_epi64(pr2_1, qd), vp, v2p);
        Store(a + 8 * j, _mm512_permutex2var_epi64(u, s0, v));
        Store(a + 8 * j + 8, _mm512_permutex2var_epi64(u, s1, v));
    }
    return j;
}

/** Inverse radix-4 tail, q == 2. */
std::size_t
InvStage4TailQ2(u64 *a, const u64 *quads, const u64 *pairs,
                std::size_t m, __m512i vp, __m512i v2p)
{
    const __m512i pr2_0 = Idx(0, 0, 2, 2, 4, 4, 6, 6);
    const __m512i pr2_1 = Idx(1, 1, 3, 3, 5, 5, 7, 7);
    const __m512i bc4_0 = Idx(0, 0, 0, 0, 2, 2, 2, 2);
    const __m512i bc4_1 = Idx(1, 1, 1, 1, 3, 3, 3, 3);
    const __m512i gx = Idx(0, 1, 4, 5, 8, 9, 12, 13);
    const __m512i gy = Idx(2, 3, 6, 7, 10, 11, 14, 15);
    const __m512i gu = Idx(0, 1, 8, 9, 4, 5, 12, 13);
    const __m512i gv = Idx(2, 3, 10, 11, 6, 7, 14, 15);
    const __m512i s0 = Idx(0, 1, 2, 3, 8, 9, 10, 11);
    const __m512i s1 = Idx(4, 5, 6, 7, 12, 13, 14, 15);
    std::size_t j = 0;
    for (; j + 2 <= m; j += 2) {
        const __m512i v0 = Load(a + 8 * j);
        const __m512i v1 = Load(a + 8 * j + 8);
        // Level one: (A,B) w1a, (C,D) w1b.
        __m512i x = _mm512_permutex2var_epi64(v0, gx, v1);  // AC | AC
        __m512i y = _mm512_permutex2var_epi64(v0, gy, v1);  // BD | BD
        const __m512i qd = Load(quads + 4 * j);
        InvCore(x, y, _mm512_permutexvar_epi64(pr2_0, qd),
                _mm512_permutexvar_epi64(pr2_1, qd), vp, v2p);
        // Level two: (A,C), (B,D) share the per-block w2.
        __m512i u = _mm512_permutex2var_epi64(x, gu, y);  // AB | AB
        __m512i v = _mm512_permutex2var_epi64(x, gv, y);  // CD | CD
        const __m512i pr = _mm512_zextsi256_si512(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(pairs + 2 * j)));
        InvCore(u, v, _mm512_permutexvar_epi64(bc4_0, pr),
                _mm512_permutexvar_epi64(bc4_1, pr), vp, v2p);
        Store(a + 8 * j, _mm512_permutex2var_epi64(u, s0, v));
        Store(a + 8 * j + 8, _mm512_permutex2var_epi64(u, s1, v));
    }
    return j;
}

/** Forward radix-4 tail, q == 1: four 4-element super-blocks
 *  (a b c d) per iteration — the final two butterfly levels of a
 *  transform in one gather-free pass. */
std::size_t
FwdStage4TailQ1(u64 *a, const u64 *pairs, const u64 *quads,
                std::size_t m, __m512i vp, __m512i v2p)
{
    const __m512i pr2_0 = Idx(0, 0, 2, 2, 4, 4, 6, 6);
    const __m512i pr2_1 = Idx(1, 1, 3, 3, 5, 5, 7, 7);
    const __m512i gx = Idx(0, 1, 4, 5, 8, 9, 12, 13);
    const __m512i gy = Idx(2, 3, 6, 7, 10, 11, 14, 15);
    const __m512i gu = Idx(0, 8, 2, 10, 4, 12, 6, 14);
    const __m512i gv = Idx(1, 9, 3, 11, 5, 13, 7, 15);
    const __m512i ev = Idx(0, 2, 4, 6, 8, 10, 12, 14);
    const __m512i od = Idx(1, 3, 5, 7, 9, 11, 13, 15);
    const __m512i s0 = Idx(0, 8, 1, 9, 2, 10, 3, 11);
    const __m512i s1 = Idx(4, 12, 5, 13, 6, 14, 7, 15);
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
        const __m512i v0 = Load(a + 4 * j);      // a0 b0 c0 d0 a1 ...
        const __m512i v1 = Load(a + 4 * j + 8);  // a2 b2 c2 d2 a3 ...
        // Level one: (a,c), (b,d), per-block w1.
        __m512i x = _mm512_permutex2var_epi64(v0, gx, v1);  // ab x4
        __m512i y = _mm512_permutex2var_epi64(v0, gy, v1);  // cd x4
        const __m512i pr = Load(pairs + 2 * j);
        FwdCore(x, y, _mm512_permutexvar_epi64(pr2_0, pr),
                _mm512_permutexvar_epi64(pr2_1, pr), vp, v2p);
        // Level two: (a,b) w2a, (c,d) w2b.
        __m512i u = _mm512_permutex2var_epi64(x, gu, y);  // ac x4
        __m512i v = _mm512_permutex2var_epi64(x, gv, y);  // bd x4
        const __m512i q0 = Load(quads + 4 * j);
        const __m512i q1 = Load(quads + 4 * j + 8);
        FwdCore(u, v, _mm512_permutex2var_epi64(q0, ev, q1),
                _mm512_permutex2var_epi64(q0, od, q1), vp, v2p);
        Store(a + 4 * j, _mm512_permutex2var_epi64(u, s0, v));
        Store(a + 4 * j + 8, _mm512_permutex2var_epi64(u, s1, v));
    }
    return j;
}

/** Inverse radix-4 tail, q == 1. */
std::size_t
InvStage4TailQ1(u64 *a, const u64 *quads, const u64 *pairs,
                std::size_t m, __m512i vp, __m512i v2p)
{
    const __m512i pr2_0 = Idx(0, 0, 2, 2, 4, 4, 6, 6);
    const __m512i pr2_1 = Idx(1, 1, 3, 3, 5, 5, 7, 7);
    const __m512i ev = Idx(0, 2, 4, 6, 8, 10, 12, 14);
    const __m512i od = Idx(1, 3, 5, 7, 9, 11, 13, 15);
    const __m512i gu = Idx(0, 8, 2, 10, 4, 12, 6, 14);
    const __m512i gv = Idx(1, 9, 3, 11, 5, 13, 7, 15);
    const __m512i s0 = Idx(0, 1, 8, 9, 2, 3, 10, 11);
    const __m512i s1 = Idx(4, 5, 12, 13, 6, 7, 14, 15);
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
        const __m512i v0 = Load(a + 4 * j);
        const __m512i v1 = Load(a + 4 * j + 8);
        // Level one: (a,b) w1a, (c,d) w1b — the unpacked quad stream
        // lands in lane order directly.
        __m512i x = _mm512_permutex2var_epi64(v0, ev, v1);  // ac x4
        __m512i y = _mm512_permutex2var_epi64(v0, od, v1);  // bd x4
        const __m512i q0 = Load(quads + 4 * j);
        const __m512i q1 = Load(quads + 4 * j + 8);
        InvCore(x, y, _mm512_permutex2var_epi64(q0, ev, q1),
                _mm512_permutex2var_epi64(q0, od, q1), vp, v2p);
        // Level two: (a,c), (b,d) share the per-block w2.
        __m512i u = _mm512_permutex2var_epi64(x, gu, y);  // ab x4
        __m512i v = _mm512_permutex2var_epi64(x, gv, y);  // cd x4
        const __m512i pr = Load(pairs + 2 * j);
        InvCore(u, v, _mm512_permutexvar_epi64(pr2_0, pr),
                _mm512_permutexvar_epi64(pr2_1, pr), vp, v2p);
        Store(a + 4 * j, _mm512_permutex2var_epi64(u, s0, v));
        Store(a + 4 * j + 8, _mm512_permutex2var_epi64(u, s1, v));
    }
    return j;
}

void
FwdButterflyStage4(u64 *a, const u64 *pairs, const u64 *quads,
                   std::size_t m, std::size_t q, u64 p)
{
    if (q >= kZmmRun) {
        FwdStage4Rows(a, pairs, quads, m, q, p);
        return;
    }
    const __m512i vp = Bcast(p), v2p = Bcast(2 * p);
    std::size_t j = 0;
    if (q == 4) {
        FwdStage4TailQ4(a, pairs, quads, m, vp, v2p);
        return;
    }
    if (q == 2) {
        j = FwdStage4TailQ2(a, pairs, quads, m, vp, v2p);
    } else if (q == 1) {
        j = FwdStage4TailQ1(a, pairs, quads, m, vp, v2p);
    }
    for (; j < m; ++j) {
        u64 *blk = a + 4 * j * q;
        for (std::size_t k = 0; k < q; ++k) {
            FwdButterflyQuadElem(blk[k], blk[q + k], blk[2 * q + k],
                                 blk[3 * q + k], pairs[2 * j],
                                 pairs[2 * j + 1], quads[4 * j],
                                 quads[4 * j + 1], quads[4 * j + 2],
                                 quads[4 * j + 3], p);
        }
    }
}

void
InvButterflyStage4(u64 *a, const u64 *quads, const u64 *pairs,
                   std::size_t m, std::size_t q, u64 p)
{
    if (q >= kZmmRun) {
        InvStage4Rows(a, quads, pairs, m, q, p);
        return;
    }
    const __m512i vp = Bcast(p), v2p = Bcast(2 * p);
    std::size_t j = 0;
    if (q == 4) {
        InvStage4TailQ4(a, quads, pairs, m, vp, v2p);
        return;
    }
    if (q == 2) {
        j = InvStage4TailQ2(a, quads, pairs, m, vp, v2p);
    } else if (q == 1) {
        j = InvStage4TailQ1(a, quads, pairs, m, vp, v2p);
    }
    for (; j < m; ++j) {
        u64 *blk = a + 4 * j * q;
        for (std::size_t k = 0; k < q; ++k) {
            InvButterflyQuadElem(blk[k], blk[q + k], blk[2 * q + k],
                                 blk[3 * q + k], quads[4 * j],
                                 quads[4 * j + 1], quads[4 * j + 2],
                                 quads[4 * j + 3], pairs[2 * j],
                                 pairs[2 * j + 1], p);
        }
    }
}

}  // namespace

namespace internal {

bool
Avx512CompiledIn()
{
    return true;
}

const Kernels &
Avx512Kernels()
{
    // Butterfly family in 512-bit form; everything element-wise is
    // borrowed from the production AVX2 table (which itself borrows
    // the scalar Barrett family where the partial-product tree loses
    // to hardware 64-bit multiplies).
    static const Kernels table = {
        &FwdButterflyRows,
        &FwdButterflyStage,
        &InvButterflyRows,
        &InvButterflyStage,
        &FwdButterflyStage4,
        &InvButterflyStage4,
        Avx2Kernels().mul_shoup_rows,
        Avx2Kernels().mul_barrett_rows,
        Avx2Kernels().mul_acc_barrett_rows,
        Avx2Kernels().reduce_barrett_rows,
        Avx2Kernels().add_rows,
        Avx2Kernels().sub_rows,
        Avx2Kernels().fold_lazy_rows,
        Avx2Kernels().fold_rescale_rows,
        Avx2Kernels().tensor_rows,
        Avx2Kernels().divide_round_rows,
    };
    return table;
}

}  // namespace internal

}  // namespace hentt::simd

#else  // !(defined(__AVX512F__) && defined(__AVX512DQ__))

namespace hentt::simd::internal {

bool
Avx512CompiledIn()
{
    return false;
}

const Kernels &
Avx512Kernels()
{
    return ScalarKernels();
}

}  // namespace hentt::simd::internal

#endif  // defined(__AVX512F__) && defined(__AVX512DQ__)
