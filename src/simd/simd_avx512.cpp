/**
 * @file
 * AVX-512 backend: eight u64 residues per vector op, covering the
 * butterfly family (constant-twiddle rows, whole radix-2 stages, and
 * the fused radix-4 stage pairs). Compiled with -mavx512f -mavx512dq
 * when the toolchain supports them (see CMakeLists); callers reach
 * this table only after the runtime CPUID check in simd_dispatch.cpp.
 *
 * The 512-bit ISA removes both AVX2 butterfly bottlenecks at once:
 *
 *  - vpmullq (AVX-512DQ) produces the low 64 bits of a 64x64 product
 *    in one instruction, replacing the AVX2 partial-product assembly
 *    for the two low products of every Shoup multiply (the exact high
 *    product still uses the 32x32 tree — kept term-for-term identical
 *    to common/int128.h, so every kernel is bit-identical to the
 *    scalar reference, lazy [0, 4p) representatives included);
 *  - vpminuq turns every lazy conditional correction into sub + min
 *    (min(a, a - bound) == a >= bound ? a - bound : a, for any
 *    unsigned a, bound — the wraparound makes the subtracted form
 *    larger exactly when the correction must not fire);
 *  - 32 vector registers hold the fused radix-4 four-row working set,
 *    its six twiddle broadcasts, and the butterfly temporaries without
 *    spilling — the reason the AVX2 table executes the fused contract
 *    as two sweeps while this one genuinely fuses (see simd_avx2.cpp).
 *
 * The short-run tail stages of the fused walker (quarter q in
 * {1, 2, 4}) use single-instruction two-source permutes (vpermi2q /
 * vshufi64x2) over the interleaved twiddle streams, so even the last
 * butterfly levels of a transform run gather-free in one pass.
 *
 * The element-wise family is native here too — the Shoup kernels get
 * the same vpmullq + vpminuq treatment as the butterflies, and the
 * 128-bit Barrett reduction family runs the partial-product tree in
 * 512-bit form, which flips PR 4's AVX2-era hybrid verdict: with
 * vpmullq covering every low product, eight lanes amortize the tree
 * past the scalar mulx loops on every kernel including the branchy
 * divide-and-round (mask blends replace its data-dependent centering
 * branch). Per-kernel measurements in ARCHITECTURE.md.
 */

#include "simd/simd_internal.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

#include "simd/simd_avx512_common.h"

namespace hentt::simd {

namespace {

using namespace avx512detail;

/** The lazy CT butterfly core on eight lanes (FwdButterflyElem). */
inline void
FwdCore(__m512i &x, __m512i &y, __m512i vw, __m512i vwb, __m512i vp,
        __m512i v2p)
{
    x = CondSub(x, v2p);
    const __m512i q = MulHiU64(y, vwb);
    const __m512i t = _mm512_sub_epi64(_mm512_mullo_epi64(y, vw),
                                       _mm512_mullo_epi64(q, vp));
    y = _mm512_sub_epi64(_mm512_add_epi64(x, v2p), t);
    x = _mm512_add_epi64(x, t);
}

/** The lazy GS butterfly core on eight lanes (InvButterflyElem). */
inline void
InvCore(__m512i &x, __m512i &y, __m512i vw, __m512i vwb, __m512i vp,
        __m512i v2p)
{
    const __m512i u = x;
    const __m512i v = y;
    x = CondSub(_mm512_add_epi64(u, v), v2p);
    const __m512i d =
        _mm512_sub_epi64(_mm512_add_epi64(u, v2p), v);
    const __m512i q = MulHiU64(d, vwb);
    y = _mm512_sub_epi64(_mm512_mullo_epi64(d, vw),
                         _mm512_mullo_epi64(q, vp));
}

// ---------------------------------------------------------------- rows

void
FwdButterflyRows(u64 *x, u64 *y, std::size_t n, u64 w, u64 w_bar, u64 p)
{
    const __m512i vp = Bcast(p), v2p = Bcast(2 * p);
    const __m512i vw = Bcast(w), vwb = Bcast(w_bar);
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        __m512i a = Load(x + k), b = Load(y + k);
        FwdCore(a, b, vw, vwb, vp, v2p);
        Store(x + k, a);
        Store(y + k, b);
    }
    for (; k < n; ++k) {
        FwdButterflyElem(x[k], y[k], w, w_bar, p);
    }
}

void
InvButterflyRows(u64 *x, u64 *y, std::size_t n, u64 w, u64 w_bar, u64 p)
{
    const __m512i vp = Bcast(p), v2p = Bcast(2 * p);
    const __m512i vw = Bcast(w), vwb = Bcast(w_bar);
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        __m512i a = Load(x + k), b = Load(y + k);
        InvCore(a, b, vw, vwb, vp, v2p);
        Store(x + k, a);
        Store(y + k, b);
    }
    for (; k < n; ++k) {
        InvButterflyElem(x[k], y[k], w, w_bar, p);
    }
}

// --------------------------------------------------------------- stages

/** Run length below which a whole radix-2 stage is delegated to the
 *  AVX2 table (its ymm row form and unpack tails fit t in {1, 2, 4}
 *  better than 512-bit vectors do). */
constexpr std::size_t kZmmRun = 8;

void
FwdButterflyStage(u64 *a, const u64 *w, const u64 *w_bar, std::size_t m,
                  std::size_t t, u64 p)
{
    if (t < kZmmRun) {
        internal::Avx2Kernels().fwd_butterfly_stage(a, w, w_bar, m, t,
                                                    p);
        return;
    }
    for (std::size_t j = 0; j < m; ++j) {
        u64 *x = a + 2 * j * t;
        FwdButterflyRows(x, x + t, t, w[j], w_bar[j], p);
    }
}

void
InvButterflyStage(u64 *a, const u64 *w, const u64 *w_bar, std::size_t h,
                  std::size_t t, u64 p)
{
    if (t < kZmmRun) {
        internal::Avx2Kernels().inv_butterfly_stage(a, w, w_bar, h, t,
                                                    p);
        return;
    }
    for (std::size_t j = 0; j < h; ++j) {
        u64 *x = a + 2 * j * t;
        InvButterflyRows(x, x + t, t, w[j], w_bar[j], p);
    }
}

// -------------------------------------------------- fused radix-4 stages
//
// Same geometry as the scalar/AVX2 fused kernels: super-block j is
// quarters (A, B, C, D) of q contiguous elements, twiddles stream from
// the interleaved pair/quad layout. The row form (q >= 8) keeps two
// columns in flight so the chained two-level butterfly latency
// overlaps; the q in {1, 2, 4} tails use vshufi64x2 / vpermi2q
// single-instruction permutes with index vectors hoisted out of the
// loop.

/** Lane-index vector for _mm512_permutex2var_epi64 (0-7 first source,
 *  8-15 second source). */
inline __m512i
Idx(long long a, long long b, long long c, long long d, long long e,
    long long f, long long g, long long h)
{
    return _mm512_setr_epi64(a, b, c, d, e, f, g, h);
}

void
FwdStage4Rows(u64 *a, const u64 *pairs, const u64 *quads, std::size_t m,
              std::size_t q, u64 p)
{
    const __m512i vp = Bcast(p), v2p = Bcast(2 * p);
    for (std::size_t j = 0; j < m; ++j) {
        u64 *blk = a + 4 * j * q;
        const u64 w1 = pairs[2 * j], w1b = pairs[2 * j + 1];
        const u64 w2a = quads[4 * j], w2ab = quads[4 * j + 1];
        const u64 w2b = quads[4 * j + 2], w2bb = quads[4 * j + 3];
        const __m512i vw1 = Bcast(w1), vw1b = Bcast(w1b);
        const __m512i vw2a = Bcast(w2a), vw2ab = Bcast(w2ab);
        const __m512i vw2b = Bcast(w2b), vw2bb = Bcast(w2bb);
        std::size_t k = 0;
        // Two columns per iteration: the second column's level-one
        // butterflies fill the ports while the first column's level
        // two waits on its own level-one results.
        for (; k + 16 <= q; k += 16) {
            __m512i a0 = Load(blk + k), a1 = Load(blk + k + 8);
            __m512i b0 = Load(blk + q + k), b1 = Load(blk + q + k + 8);
            __m512i c0 = Load(blk + 2 * q + k);
            __m512i c1 = Load(blk + 2 * q + k + 8);
            __m512i d0 = Load(blk + 3 * q + k);
            __m512i d1 = Load(blk + 3 * q + k + 8);
            FwdCore(a0, c0, vw1, vw1b, vp, v2p);
            FwdCore(a1, c1, vw1, vw1b, vp, v2p);
            FwdCore(b0, d0, vw1, vw1b, vp, v2p);
            FwdCore(b1, d1, vw1, vw1b, vp, v2p);
            FwdCore(a0, b0, vw2a, vw2ab, vp, v2p);
            FwdCore(a1, b1, vw2a, vw2ab, vp, v2p);
            FwdCore(c0, d0, vw2b, vw2bb, vp, v2p);
            FwdCore(c1, d1, vw2b, vw2bb, vp, v2p);
            Store(blk + k, a0);
            Store(blk + k + 8, a1);
            Store(blk + q + k, b0);
            Store(blk + q + k + 8, b1);
            Store(blk + 2 * q + k, c0);
            Store(blk + 2 * q + k + 8, c1);
            Store(blk + 3 * q + k, d0);
            Store(blk + 3 * q + k + 8, d1);
        }
        for (; k + 8 <= q; k += 8) {
            __m512i va = Load(blk + k);
            __m512i vb = Load(blk + q + k);
            __m512i vc = Load(blk + 2 * q + k);
            __m512i vd = Load(blk + 3 * q + k);
            FwdCore(va, vc, vw1, vw1b, vp, v2p);
            FwdCore(vb, vd, vw1, vw1b, vp, v2p);
            FwdCore(va, vb, vw2a, vw2ab, vp, v2p);
            FwdCore(vc, vd, vw2b, vw2bb, vp, v2p);
            Store(blk + k, va);
            Store(blk + q + k, vb);
            Store(blk + 2 * q + k, vc);
            Store(blk + 3 * q + k, vd);
        }
        for (; k < q; ++k) {
            FwdButterflyQuadElem(blk[k], blk[q + k], blk[2 * q + k],
                                 blk[3 * q + k], w1, w1b, w2a, w2ab, w2b,
                                 w2bb, p);
        }
    }
}

void
InvStage4Rows(u64 *a, const u64 *quads, const u64 *pairs, std::size_t m,
              std::size_t q, u64 p)
{
    const __m512i vp = Bcast(p), v2p = Bcast(2 * p);
    for (std::size_t j = 0; j < m; ++j) {
        u64 *blk = a + 4 * j * q;
        const u64 w1a = quads[4 * j], w1ab = quads[4 * j + 1];
        const u64 w1b = quads[4 * j + 2], w1bb = quads[4 * j + 3];
        const u64 w2 = pairs[2 * j], w2b = pairs[2 * j + 1];
        const __m512i vw1a = Bcast(w1a), vw1ab = Bcast(w1ab);
        const __m512i vw1b = Bcast(w1b), vw1bb = Bcast(w1bb);
        const __m512i vw2 = Bcast(w2), vw2b = Bcast(w2b);
        std::size_t k = 0;
        for (; k + 16 <= q; k += 16) {
            __m512i a0 = Load(blk + k), a1 = Load(blk + k + 8);
            __m512i b0 = Load(blk + q + k), b1 = Load(blk + q + k + 8);
            __m512i c0 = Load(blk + 2 * q + k);
            __m512i c1 = Load(blk + 2 * q + k + 8);
            __m512i d0 = Load(blk + 3 * q + k);
            __m512i d1 = Load(blk + 3 * q + k + 8);
            InvCore(a0, b0, vw1a, vw1ab, vp, v2p);
            InvCore(a1, b1, vw1a, vw1ab, vp, v2p);
            InvCore(c0, d0, vw1b, vw1bb, vp, v2p);
            InvCore(c1, d1, vw1b, vw1bb, vp, v2p);
            InvCore(a0, c0, vw2, vw2b, vp, v2p);
            InvCore(a1, c1, vw2, vw2b, vp, v2p);
            InvCore(b0, d0, vw2, vw2b, vp, v2p);
            InvCore(b1, d1, vw2, vw2b, vp, v2p);
            Store(blk + k, a0);
            Store(blk + k + 8, a1);
            Store(blk + q + k, b0);
            Store(blk + q + k + 8, b1);
            Store(blk + 2 * q + k, c0);
            Store(blk + 2 * q + k + 8, c1);
            Store(blk + 3 * q + k, d0);
            Store(blk + 3 * q + k + 8, d1);
        }
        for (; k + 8 <= q; k += 8) {
            __m512i va = Load(blk + k);
            __m512i vb = Load(blk + q + k);
            __m512i vc = Load(blk + 2 * q + k);
            __m512i vd = Load(blk + 3 * q + k);
            InvCore(va, vb, vw1a, vw1ab, vp, v2p);
            InvCore(vc, vd, vw1b, vw1bb, vp, v2p);
            InvCore(va, vc, vw2, vw2b, vp, v2p);
            InvCore(vb, vd, vw2, vw2b, vp, v2p);
            Store(blk + k, va);
            Store(blk + q + k, vb);
            Store(blk + 2 * q + k, vc);
            Store(blk + 3 * q + k, vd);
        }
        for (; k < q; ++k) {
            InvButterflyQuadElem(blk[k], blk[q + k], blk[2 * q + k],
                                 blk[3 * q + k], w1a, w1ab, w1b, w1bb,
                                 w2, w2b, p);
        }
    }
}

/** Broadcast pattern (word[i0] x4, word[i1] x4) from one 4-word quad
 *  at @p src (forward q == 4 second level, etc.). */
inline __m512i
SpreadQuad(const u64 *src, __m512i idx)
{
    const __m512i v = _mm512_zextsi256_si512(
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(src)));
    return _mm512_permutexvar_epi64(idx, v);
}

/**
 * Forward radix-4 tail, q == 4: one 16-element super-block per
 * iteration as two zmm (A|B and C|D). Level one is a straight
 * lane-wise butterfly; level two regroups through vshufi64x2.
 */
void
FwdStage4TailQ4(u64 *a, const u64 *pairs, const u64 *quads,
                std::size_t m, __m512i vp, __m512i v2p)
{
    const __m512i bc0 = Idx(0, 0, 0, 0, 2, 2, 2, 2);
    const __m512i bc1 = Idx(1, 1, 1, 1, 3, 3, 3, 3);
    for (std::size_t j = 0; j < m; ++j) {
        __m512i v0 = Load(a + 16 * j);      // A0..A3 B0..B3
        __m512i v1 = Load(a + 16 * j + 8);  // C0..C3 D0..D3
        FwdCore(v0, v1, Bcast(pairs[2 * j]), Bcast(pairs[2 * j + 1]),
                vp, v2p);                   // (A,C), (B,D) share w1
        __m512i x = _mm512_shuffle_i64x2(v0, v1, 0x44);  // A | C
        __m512i y = _mm512_shuffle_i64x2(v0, v1, 0xEE);  // B | D
        const __m512i vw2 = SpreadQuad(quads + 4 * j, bc0);
        const __m512i vw2b = SpreadQuad(quads + 4 * j, bc1);
        FwdCore(x, y, vw2, vw2b, vp, v2p);  // (A,B) w2a, (C,D) w2b
        Store(a + 16 * j, _mm512_shuffle_i64x2(x, y, 0x44));
        Store(a + 16 * j + 8, _mm512_shuffle_i64x2(x, y, 0xEE));
    }
}

/** Inverse radix-4 tail, q == 4: mirror of FwdStage4TailQ4 with the
 *  levels swapped. */
void
InvStage4TailQ4(u64 *a, const u64 *quads, const u64 *pairs,
                std::size_t m, __m512i vp, __m512i v2p)
{
    const __m512i bc0 = Idx(0, 0, 0, 0, 2, 2, 2, 2);
    const __m512i bc1 = Idx(1, 1, 1, 1, 3, 3, 3, 3);
    for (std::size_t j = 0; j < m; ++j) {
        const __m512i v0 = Load(a + 16 * j);      // A | B
        const __m512i v1 = Load(a + 16 * j + 8);  // C | D
        __m512i x = _mm512_shuffle_i64x2(v0, v1, 0x44);  // A | C
        __m512i y = _mm512_shuffle_i64x2(v0, v1, 0xEE);  // B | D
        InvCore(x, y, SpreadQuad(quads + 4 * j, bc0),
                SpreadQuad(quads + 4 * j, bc1), vp, v2p);
        __m512i u = _mm512_shuffle_i64x2(x, y, 0x44);  // A | B
        __m512i v = _mm512_shuffle_i64x2(x, y, 0xEE);  // C | D
        InvCore(u, v, Bcast(pairs[2 * j]), Bcast(pairs[2 * j + 1]), vp,
                v2p);                          // (A,C), (B,D) share w2
        Store(a + 16 * j, u);
        Store(a + 16 * j + 8, v);
    }
}

/** Forward radix-4 tail, q == 2: two 8-element super-blocks per
 *  iteration; vpermi2q regroups the quarters for level two. */
std::size_t
FwdStage4TailQ2(u64 *a, const u64 *pairs, const u64 *quads,
                std::size_t m, __m512i vp, __m512i v2p)
{
    const __m512i bc4_0 = Idx(0, 0, 0, 0, 2, 2, 2, 2);
    const __m512i bc4_1 = Idx(1, 1, 1, 1, 3, 3, 3, 3);
    const __m512i pr2_0 = Idx(0, 0, 2, 2, 4, 4, 6, 6);
    const __m512i pr2_1 = Idx(1, 1, 3, 3, 5, 5, 7, 7);
    const __m512i gu = Idx(0, 1, 8, 9, 4, 5, 12, 13);
    const __m512i gv = Idx(2, 3, 10, 11, 6, 7, 14, 15);
    const __m512i s0 = Idx(0, 1, 8, 9, 2, 3, 10, 11);
    const __m512i s1 = Idx(4, 5, 12, 13, 6, 7, 14, 15);
    std::size_t j = 0;
    for (; j + 2 <= m; j += 2) {
        const __m512i v0 = Load(a + 8 * j);      // blk j:   A B C D
        const __m512i v1 = Load(a + 8 * j + 8);  // blk j+1: A B C D
        __m512i x = _mm512_shuffle_i64x2(v0, v1, 0x44);  // AB | AB
        __m512i y = _mm512_shuffle_i64x2(v0, v1, 0xEE);  // CD | CD
        // Level one: (A,C), (B,D), per-block w1 from the pair stream.
        const __m512i pr = _mm512_zextsi256_si512(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(pairs + 2 * j)));
        FwdCore(x, y, _mm512_permutexvar_epi64(bc4_0, pr),
                _mm512_permutexvar_epi64(bc4_1, pr), vp, v2p);
        // Level two: (A,B) w2a, (C,D) w2b, quads of both blocks.
        __m512i u = _mm512_permutex2var_epi64(x, gu, y);  // AC | AC
        __m512i v = _mm512_permutex2var_epi64(x, gv, y);  // BD | BD
        const __m512i qd = Load(quads + 4 * j);
        FwdCore(u, v, _mm512_permutexvar_epi64(pr2_0, qd),
                _mm512_permutexvar_epi64(pr2_1, qd), vp, v2p);
        Store(a + 8 * j, _mm512_permutex2var_epi64(u, s0, v));
        Store(a + 8 * j + 8, _mm512_permutex2var_epi64(u, s1, v));
    }
    return j;
}

/** Inverse radix-4 tail, q == 2. */
std::size_t
InvStage4TailQ2(u64 *a, const u64 *quads, const u64 *pairs,
                std::size_t m, __m512i vp, __m512i v2p)
{
    const __m512i pr2_0 = Idx(0, 0, 2, 2, 4, 4, 6, 6);
    const __m512i pr2_1 = Idx(1, 1, 3, 3, 5, 5, 7, 7);
    const __m512i bc4_0 = Idx(0, 0, 0, 0, 2, 2, 2, 2);
    const __m512i bc4_1 = Idx(1, 1, 1, 1, 3, 3, 3, 3);
    const __m512i gx = Idx(0, 1, 4, 5, 8, 9, 12, 13);
    const __m512i gy = Idx(2, 3, 6, 7, 10, 11, 14, 15);
    const __m512i gu = Idx(0, 1, 8, 9, 4, 5, 12, 13);
    const __m512i gv = Idx(2, 3, 10, 11, 6, 7, 14, 15);
    const __m512i s0 = Idx(0, 1, 2, 3, 8, 9, 10, 11);
    const __m512i s1 = Idx(4, 5, 6, 7, 12, 13, 14, 15);
    std::size_t j = 0;
    for (; j + 2 <= m; j += 2) {
        const __m512i v0 = Load(a + 8 * j);
        const __m512i v1 = Load(a + 8 * j + 8);
        // Level one: (A,B) w1a, (C,D) w1b.
        __m512i x = _mm512_permutex2var_epi64(v0, gx, v1);  // AC | AC
        __m512i y = _mm512_permutex2var_epi64(v0, gy, v1);  // BD | BD
        const __m512i qd = Load(quads + 4 * j);
        InvCore(x, y, _mm512_permutexvar_epi64(pr2_0, qd),
                _mm512_permutexvar_epi64(pr2_1, qd), vp, v2p);
        // Level two: (A,C), (B,D) share the per-block w2.
        __m512i u = _mm512_permutex2var_epi64(x, gu, y);  // AB | AB
        __m512i v = _mm512_permutex2var_epi64(x, gv, y);  // CD | CD
        const __m512i pr = _mm512_zextsi256_si512(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(pairs + 2 * j)));
        InvCore(u, v, _mm512_permutexvar_epi64(bc4_0, pr),
                _mm512_permutexvar_epi64(bc4_1, pr), vp, v2p);
        Store(a + 8 * j, _mm512_permutex2var_epi64(u, s0, v));
        Store(a + 8 * j + 8, _mm512_permutex2var_epi64(u, s1, v));
    }
    return j;
}

/** Forward radix-4 tail, q == 1: four 4-element super-blocks
 *  (a b c d) per iteration — the final two butterfly levels of a
 *  transform in one gather-free pass. */
std::size_t
FwdStage4TailQ1(u64 *a, const u64 *pairs, const u64 *quads,
                std::size_t m, __m512i vp, __m512i v2p)
{
    const __m512i pr2_0 = Idx(0, 0, 2, 2, 4, 4, 6, 6);
    const __m512i pr2_1 = Idx(1, 1, 3, 3, 5, 5, 7, 7);
    const __m512i gx = Idx(0, 1, 4, 5, 8, 9, 12, 13);
    const __m512i gy = Idx(2, 3, 6, 7, 10, 11, 14, 15);
    const __m512i gu = Idx(0, 8, 2, 10, 4, 12, 6, 14);
    const __m512i gv = Idx(1, 9, 3, 11, 5, 13, 7, 15);
    const __m512i ev = Idx(0, 2, 4, 6, 8, 10, 12, 14);
    const __m512i od = Idx(1, 3, 5, 7, 9, 11, 13, 15);
    const __m512i s0 = Idx(0, 8, 1, 9, 2, 10, 3, 11);
    const __m512i s1 = Idx(4, 12, 5, 13, 6, 14, 7, 15);
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
        const __m512i v0 = Load(a + 4 * j);      // a0 b0 c0 d0 a1 ...
        const __m512i v1 = Load(a + 4 * j + 8);  // a2 b2 c2 d2 a3 ...
        // Level one: (a,c), (b,d), per-block w1.
        __m512i x = _mm512_permutex2var_epi64(v0, gx, v1);  // ab x4
        __m512i y = _mm512_permutex2var_epi64(v0, gy, v1);  // cd x4
        const __m512i pr = Load(pairs + 2 * j);
        FwdCore(x, y, _mm512_permutexvar_epi64(pr2_0, pr),
                _mm512_permutexvar_epi64(pr2_1, pr), vp, v2p);
        // Level two: (a,b) w2a, (c,d) w2b.
        __m512i u = _mm512_permutex2var_epi64(x, gu, y);  // ac x4
        __m512i v = _mm512_permutex2var_epi64(x, gv, y);  // bd x4
        const __m512i q0 = Load(quads + 4 * j);
        const __m512i q1 = Load(quads + 4 * j + 8);
        FwdCore(u, v, _mm512_permutex2var_epi64(q0, ev, q1),
                _mm512_permutex2var_epi64(q0, od, q1), vp, v2p);
        Store(a + 4 * j, _mm512_permutex2var_epi64(u, s0, v));
        Store(a + 4 * j + 8, _mm512_permutex2var_epi64(u, s1, v));
    }
    return j;
}

/** Inverse radix-4 tail, q == 1. */
std::size_t
InvStage4TailQ1(u64 *a, const u64 *quads, const u64 *pairs,
                std::size_t m, __m512i vp, __m512i v2p)
{
    const __m512i pr2_0 = Idx(0, 0, 2, 2, 4, 4, 6, 6);
    const __m512i pr2_1 = Idx(1, 1, 3, 3, 5, 5, 7, 7);
    const __m512i ev = Idx(0, 2, 4, 6, 8, 10, 12, 14);
    const __m512i od = Idx(1, 3, 5, 7, 9, 11, 13, 15);
    const __m512i gu = Idx(0, 8, 2, 10, 4, 12, 6, 14);
    const __m512i gv = Idx(1, 9, 3, 11, 5, 13, 7, 15);
    const __m512i s0 = Idx(0, 1, 8, 9, 2, 3, 10, 11);
    const __m512i s1 = Idx(4, 5, 12, 13, 6, 7, 14, 15);
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
        const __m512i v0 = Load(a + 4 * j);
        const __m512i v1 = Load(a + 4 * j + 8);
        // Level one: (a,b) w1a, (c,d) w1b — the unpacked quad stream
        // lands in lane order directly.
        __m512i x = _mm512_permutex2var_epi64(v0, ev, v1);  // ac x4
        __m512i y = _mm512_permutex2var_epi64(v0, od, v1);  // bd x4
        const __m512i q0 = Load(quads + 4 * j);
        const __m512i q1 = Load(quads + 4 * j + 8);
        InvCore(x, y, _mm512_permutex2var_epi64(q0, ev, q1),
                _mm512_permutex2var_epi64(q0, od, q1), vp, v2p);
        // Level two: (a,c), (b,d) share the per-block w2.
        __m512i u = _mm512_permutex2var_epi64(x, gu, y);  // ab x4
        __m512i v = _mm512_permutex2var_epi64(x, gv, y);  // cd x4
        const __m512i pr = Load(pairs + 2 * j);
        InvCore(u, v, _mm512_permutexvar_epi64(pr2_0, pr),
                _mm512_permutexvar_epi64(pr2_1, pr), vp, v2p);
        Store(a + 4 * j, _mm512_permutex2var_epi64(u, s0, v));
        Store(a + 4 * j + 8, _mm512_permutex2var_epi64(u, s1, v));
    }
    return j;
}

void
FwdButterflyStage4(u64 *a, const u64 *pairs, const u64 *quads,
                   std::size_t m, std::size_t q, u64 p)
{
    if (q >= kZmmRun) {
        FwdStage4Rows(a, pairs, quads, m, q, p);
        return;
    }
    const __m512i vp = Bcast(p), v2p = Bcast(2 * p);
    std::size_t j = 0;
    if (q == 4) {
        FwdStage4TailQ4(a, pairs, quads, m, vp, v2p);
        return;
    }
    if (q == 2) {
        j = FwdStage4TailQ2(a, pairs, quads, m, vp, v2p);
    } else if (q == 1) {
        j = FwdStage4TailQ1(a, pairs, quads, m, vp, v2p);
    }
    for (; j < m; ++j) {
        u64 *blk = a + 4 * j * q;
        for (std::size_t k = 0; k < q; ++k) {
            FwdButterflyQuadElem(blk[k], blk[q + k], blk[2 * q + k],
                                 blk[3 * q + k], pairs[2 * j],
                                 pairs[2 * j + 1], quads[4 * j],
                                 quads[4 * j + 1], quads[4 * j + 2],
                                 quads[4 * j + 3], p);
        }
    }
}

void
InvButterflyStage4(u64 *a, const u64 *quads, const u64 *pairs,
                   std::size_t m, std::size_t q, u64 p)
{
    if (q >= kZmmRun) {
        InvStage4Rows(a, quads, pairs, m, q, p);
        return;
    }
    const __m512i vp = Bcast(p), v2p = Bcast(2 * p);
    std::size_t j = 0;
    if (q == 4) {
        InvStage4TailQ4(a, quads, pairs, m, vp, v2p);
        return;
    }
    if (q == 2) {
        j = InvStage4TailQ2(a, quads, pairs, m, vp, v2p);
    } else if (q == 1) {
        j = InvStage4TailQ1(a, quads, pairs, m, vp, v2p);
    }
    for (; j < m; ++j) {
        u64 *blk = a + 4 * j * q;
        for (std::size_t k = 0; k < q; ++k) {
            InvButterflyQuadElem(blk[k], blk[q + k], blk[2 * q + k],
                                 blk[3 * q + k], quads[4 * j],
                                 quads[4 * j + 1], quads[4 * j + 2],
                                 quads[4 * j + 3], pairs[2 * j],
                                 pairs[2 * j + 1], p);
        }
    }
}

// ---------------------------------------------------------- elementwise
//
// Eight-lane ports of the AVX2 element-wise family. The Shoup kernels
// are the butterfly multiply without the add/sub halo (one 32x32-tree
// mulhi + two vpmullq + a vpminuq correction); the Barrett kernels
// feed MulFullU64 products through the shared 512-bit reduction tree.
// All arithmetic is exact, so bit-identity with the scalar reference
// is structural, not coincidental.

void
MulShoupRows(u64 *dst, const u64 *src, std::size_t n, u64 s, u64 s_bar,
             u64 p)
{
    const __m512i vp = Bcast(p), vs = Bcast(s), vsb = Bcast(s_bar);
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        Store(dst + k, MulModShoupVec(Load(src + k), vs, vsb, vp));
    }
    for (; k < n; ++k) {
        dst[k] = MulModShoup(src[k], s, s_bar, p);
    }
}

void
MulBarrettRows(u64 *dst, const u64 *a, const u64 *b, std::size_t n,
               BarrettConsts c)
{
    if (c.mu_hi >> 32) {  // modulus <= 2^32: scalar reference
        internal::ScalarKernels().mul_barrett_rows(dst, a, b, n, c);
        return;
    }
    const __m512i vp = Bcast(c.p), v2p = Bcast(2 * c.p);
    const __m512i vmu_lo = Bcast(c.mu_lo), vmu_hi = Bcast(c.mu_hi);
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        const V512 z = MulFullU64(Load(a + k), Load(b + k));
        Store(dst + k, BarrettReduceVec(z, vp, v2p, vmu_lo, vmu_hi));
    }
    for (; k < n; ++k) {
        const u128 z = Mul64Wide(a[k], b[k]);
        dst[k] = BarrettReduce(Lo64(z), Hi64(z), c);
    }
}

void
MulAccBarrettRows(u64 *dst, const u64 *a, const u64 *b, std::size_t n,
                  BarrettConsts c)
{
    if (c.mu_hi >> 32) {
        internal::ScalarKernels().mul_acc_barrett_rows(dst, a, b, n, c);
        return;
    }
    const __m512i vp = Bcast(c.p), v2p = Bcast(2 * c.p);
    const __m512i vmu_lo = Bcast(c.mu_lo), vmu_hi = Bcast(c.mu_hi);
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        V512 z = MulFullU64(Load(a + k), Load(b + k));
        const __m512i addend = Load(dst + k);
        z.lo = _mm512_add_epi64(z.lo, addend);
        z.hi = AddCarry(z.hi, z.lo, addend);
        Store(dst + k, BarrettReduceVec(z, vp, v2p, vmu_lo, vmu_hi));
    }
    for (; k < n; ++k) {
        const u128 z = Mul64Wide(a[k], b[k]) + dst[k];
        dst[k] = BarrettReduce(Lo64(z), Hi64(z), c);
    }
}

void
ReduceBarrettRows(u64 *dst, const u64 *src, std::size_t n,
                  BarrettConsts c)
{
    if (c.mu_hi >> 32) {
        internal::ScalarKernels().reduce_barrett_rows(dst, src, n, c);
        return;
    }
    const __m512i vp = Bcast(c.p), v2p = Bcast(2 * c.p);
    const __m512i vmu_lo = Bcast(c.mu_lo), vmu_hi = Bcast(c.mu_hi);
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        Store(dst + k, ReduceBarrett64Vec(Load(src + k), vp, v2p,
                                          vmu_lo, vmu_hi));
    }
    for (; k < n; ++k) {
        dst[k] = BarrettReduce(src[k], 0, c);
    }
}

template <bool kSubtract>
void
AddSubRows(u64 *dst, const u64 *a, const u64 *b, std::size_t n, u64 p,
           bool fold_b)
{
    const __m512i vp = Bcast(p), v2p = Bcast(2 * p);
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        const __m512i x = Load(a + k);
        __m512i y = Load(b + k);
        if (fold_b) {
            y = FoldVec(y, vp, v2p);
        }
        __m512i r;
        if constexpr (kSubtract) {
            // x < y wraps; add p back exactly there.
            const __mmask8 lt = _mm512_cmplt_epu64_mask(x, y);
            r = _mm512_sub_epi64(x, y);
            r = _mm512_mask_add_epi64(r, lt, r, vp);
        } else {
            r = CondSub(_mm512_add_epi64(x, y), vp);
        }
        Store(dst + k, r);
    }
    for (; k < n; ++k) {
        const u64 s = fold_b ? FoldLazy(b[k], p) : b[k];
        dst[k] = kSubtract ? SubMod(a[k], s, p) : AddMod(a[k], s, p);
    }
}

void
AddRows(u64 *dst, const u64 *a, const u64 *b, std::size_t n, u64 p,
        bool fold_b)
{
    AddSubRows<false>(dst, a, b, n, p, fold_b);
}

void
SubRows(u64 *dst, const u64 *a, const u64 *b, std::size_t n, u64 p,
        bool fold_b)
{
    AddSubRows<true>(dst, a, b, n, p, fold_b);
}

void
FoldLazyRows(u64 *x, std::size_t n, u64 p)
{
    const __m512i vp = Bcast(p), v2p = Bcast(2 * p);
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        Store(x + k, FoldVec(Load(x + k), vp, v2p));
    }
    for (; k < n; ++k) {
        x[k] = FoldLazy(x[k], p);
    }
}

void
FoldRescaleRows(u64 *dst, const u64 *src, std::size_t n, u64 p, u64 s,
                u64 s_bar)
{
    const __m512i vp = Bcast(p), vs = Bcast(s), vsb = Bcast(s_bar);
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        const __m512i folded =
            CondSub(_mm512_add_epi64(Load(dst + k), Load(src + k)), vp);
        Store(dst + k, MulModShoupVec(folded, vs, vsb, vp));
    }
    for (; k < n; ++k) {
        dst[k] = MulModShoup(AddMod(dst[k], src[k], p), s, s_bar, p);
    }
}

void
TensorRows(u64 *c0, u64 *c1, u64 *c2, const u64 *a0, const u64 *a1,
           const u64 *b0, const u64 *b1, std::size_t n, BarrettConsts c)
{
    if (c.mu_hi >> 32) {
        internal::ScalarKernels().tensor_rows(c0, c1, c2, a0, a1, b0, b1,
                                              n, c);
        return;
    }
    const __m512i vp = Bcast(c.p), v2p = Bcast(2 * c.p);
    const __m512i vmu_lo = Bcast(c.mu_lo), vmu_hi = Bcast(c.mu_hi);
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        const __m512i va0 = Load(a0 + k), va1 = Load(a1 + k);
        const __m512i vb0 = Load(b0 + k), vb1 = Load(b1 + k);
        const V512 z0 = MulFullU64(va0, vb0);
        const V512 za = MulFullU64(va0, vb1);
        const V512 zb = MulFullU64(va1, vb0);
        V512 z1;
        z1.lo = _mm512_add_epi64(za.lo, zb.lo);
        z1.hi = AddCarry(_mm512_add_epi64(za.hi, zb.hi), z1.lo, zb.lo);
        const V512 z2 = MulFullU64(va1, vb1);
        Store(c0 + k, BarrettReduceVec(z0, vp, v2p, vmu_lo, vmu_hi));
        Store(c1 + k, BarrettReduceVec(z1, vp, v2p, vmu_lo, vmu_hi));
        Store(c2 + k, BarrettReduceVec(z2, vp, v2p, vmu_lo, vmu_hi));
    }
    for (; k < n; ++k) {
        const u128 z0 = Mul64Wide(a0[k], b0[k]);
        const u128 z1 = Mul64Wide(a0[k], b1[k]) + Mul64Wide(a1[k], b0[k]);
        const u128 z2 = Mul64Wide(a1[k], b1[k]);
        c0[k] = BarrettReduce(Lo64(z0), Hi64(z0), c);
        c1[k] = BarrettReduce(Lo64(z1), Hi64(z1), c);
        c2[k] = BarrettReduce(Lo64(z2), Hi64(z2), c);
    }
}

/**
 * The BGV divide-and-round, eight lanes. The scalar kernel's
 * data-dependent centering branch (u <= qk/2 picks the positive or
 * negative representative of delta) becomes two mask blends: both
 * representatives cost one shared Shoup multiply, and the mask ops
 * are cheaper than the branch is unpredictable. Every intermediate is
 * strict (< qk, then < qi), so the vector path is bit-identical to
 * the scalar reference by exactness.
 */
void
DivideRoundRows(u64 *dst, const u64 *src, const u64 *top, std::size_t n,
                const DivideRoundConsts &c)
{
    if (c.mu_hi >> 32) {  // q_i <= 2^32: scalar reference
        internal::ScalarKernels().divide_round_rows(dst, src, top, n, c);
        return;
    }
    const __m512i vqk = Bcast(c.qk), vhalf = Bcast(c.qk / 2);
    const __m512i vti = Bcast(c.t_inv_qk), vtib = Bcast(c.t_inv_qk_bar);
    const __m512i vqi = Bcast(c.qi), v2qi = Bcast(2 * c.qi);
    const __m512i vmu_lo = Bcast(c.mu_lo), vmu_hi = Bcast(c.mu_hi);
    const __m512i vt = Bcast(c.t_mod_qi), vtb = Bcast(c.t_mod_qi_bar);
    const __m512i vki = Bcast(c.qk_inv), vkib = Bcast(c.qk_inv_bar);
    const __m512i zero = _mm512_setzero_si512();
    std::size_t k = 0;
    for (; k + 8 <= n; k += 8) {
        // u = [top * t^{-1}]_{q_k}, centered via qk - u when u > qk/2.
        const __m512i u = MulModShoupVec(Load(top + k), vti, vtib, vqk);
        const __mmask8 neg = _mm512_cmpgt_epu64_mask(u, vhalf);
        const __m512i v = _mm512_mask_sub_epi64(u, neg, vqk, u);
        // delta = +-t * v mod q_i; the negative arm is qi - pos with
        // the pos == 0 fixpoint kept at 0.
        const __m512i r =
            ReduceBarrett64Vec(v, vqi, v2qi, vmu_lo, vmu_hi);
        const __m512i pos = MulModShoupVec(r, vt, vtb, vqi);
        __m512i negd = _mm512_sub_epi64(vqi, pos);
        negd = _mm512_mask_mov_epi64(
            negd, _mm512_cmpeq_epu64_mask(pos, zero), zero);
        const __m512i delta = _mm512_mask_mov_epi64(pos, neg, negd);
        // (src - delta) * qk^{-1} mod q_i, both operands strict.
        const __m512i x = Load(src + k);
        __m512i diff = _mm512_sub_epi64(x, delta);
        diff = _mm512_mask_add_epi64(
            diff, _mm512_cmplt_epu64_mask(x, delta), diff, vqi);
        Store(dst + k, MulModShoupVec(diff, vki, vkib, vqi));
    }
    for (; k < n; ++k) {
        const u64 u =
            MulModShoup(top[k], c.t_inv_qk, c.t_inv_qk_bar, c.qk);
        const BarrettConsts red{c.qi, c.mu_lo, c.mu_hi};
        u64 delta_mod_qi;
        if (u <= c.qk / 2) {
            delta_mod_qi = MulModShoup(BarrettReduce(u, 0, red),
                                       c.t_mod_qi, c.t_mod_qi_bar, c.qi);
        } else {
            const u64 v = c.qk - u;
            const u64 pos = MulModShoup(BarrettReduce(v, 0, red),
                                        c.t_mod_qi, c.t_mod_qi_bar, c.qi);
            delta_mod_qi = pos == 0 ? 0 : c.qi - pos;
        }
        const u64 diff = SubMod(src[k], delta_mod_qi, c.qi);
        dst[k] = MulModShoup(diff, c.qk_inv, c.qk_inv_bar, c.qi);
    }
}

}  // namespace

namespace internal {

bool
Avx512CompiledIn()
{
    return true;
}

const Kernels &
Avx512Kernels()
{
    // Full native table — no borrowed slots. At 8 lanes the measured
    // hybrid verdict is uniform: vpmullq covers every low product, so
    // the Shoup family is the butterfly multiply without the halo and
    // the 512-bit Barrett tree beats the scalar mulx loops that the
    // AVX2 production table falls back on (per-kernel numbers in
    // ARCHITECTURE.md; micro_modarith carries the ablation columns).
    static const Kernels table = {
        &FwdButterflyRows,
        &FwdButterflyStage,
        &InvButterflyRows,
        &InvButterflyStage,
        &FwdButterflyStage4,
        &InvButterflyStage4,
        &MulShoupRows,
        &MulBarrettRows,
        &MulAccBarrettRows,
        &ReduceBarrettRows,
        &AddRows,
        &SubRows,
        &FoldLazyRows,
        &FoldRescaleRows,
        &TensorRows,
        &DivideRoundRows,
    };
    return table;
}

}  // namespace internal

}  // namespace hentt::simd

#else  // !(defined(__AVX512F__) && defined(__AVX512DQ__))

namespace hentt::simd::internal {

bool
Avx512CompiledIn()
{
    return false;
}

const Kernels &
Avx512Kernels()
{
    return ScalarKernels();
}

}  // namespace hentt::simd::internal

#endif  // defined(__AVX512F__) && defined(__AVX512DQ__)
