/**
 * @file
 * Scalar reference implementations of the backend vocabulary — the one
 * audited copy of every hot inner loop in the library. Other backends
 * are validated bitwise against these (tests/test_simd_kernels.cpp),
 * lazy-range representatives included.
 */

#include "simd/simd_internal.h"

namespace hentt::simd {

namespace {

void
FwdButterflyRows(u64 *x, u64 *y, std::size_t n, u64 w, u64 w_bar, u64 p)
{
    for (std::size_t k = 0; k < n; ++k) {
        FwdButterflyElem(x[k], y[k], w, w_bar, p);
    }
}

void
FwdButterflyStage(u64 *a, const u64 *w, const u64 *w_bar, std::size_t m,
                  std::size_t t, u64 p)
{
    for (std::size_t j = 0; j < m; ++j) {
        u64 *x = a + 2 * j * t;
        FwdButterflyRows(x, x + t, t, w[j], w_bar[j], p);
    }
}

void
InvButterflyRows(u64 *x, u64 *y, std::size_t n, u64 w, u64 w_bar, u64 p)
{
    for (std::size_t k = 0; k < n; ++k) {
        InvButterflyElem(x[k], y[k], w, w_bar, p);
    }
}

void
InvButterflyStage(u64 *a, const u64 *w, const u64 *w_bar, std::size_t h,
                  std::size_t t, u64 p)
{
    for (std::size_t j = 0; j < h; ++j) {
        u64 *x = a + 2 * j * t;
        InvButterflyRows(x, x + t, t, w[j], w_bar[j], p);
    }
}

void
FwdButterflyStage4(u64 *a, const u64 *pairs, const u64 *quads,
                   std::size_t m, std::size_t q, u64 p)
{
    for (std::size_t j = 0; j < m; ++j) {
        u64 *blk = a + 4 * j * q;
        const u64 w1 = pairs[2 * j];
        const u64 w1_bar = pairs[2 * j + 1];
        const u64 w2a = quads[4 * j];
        const u64 w2a_bar = quads[4 * j + 1];
        const u64 w2b = quads[4 * j + 2];
        const u64 w2b_bar = quads[4 * j + 3];
        for (std::size_t k = 0; k < q; ++k) {
            FwdButterflyQuadElem(blk[k], blk[q + k], blk[2 * q + k],
                                 blk[3 * q + k], w1, w1_bar, w2a, w2a_bar,
                                 w2b, w2b_bar, p);
        }
    }
}

void
InvButterflyStage4(u64 *a, const u64 *quads, const u64 *pairs,
                   std::size_t m, std::size_t q, u64 p)
{
    for (std::size_t j = 0; j < m; ++j) {
        u64 *blk = a + 4 * j * q;
        const u64 w1a = quads[4 * j];
        const u64 w1a_bar = quads[4 * j + 1];
        const u64 w1b = quads[4 * j + 2];
        const u64 w1b_bar = quads[4 * j + 3];
        const u64 w2 = pairs[2 * j];
        const u64 w2_bar = pairs[2 * j + 1];
        for (std::size_t k = 0; k < q; ++k) {
            InvButterflyQuadElem(blk[k], blk[q + k], blk[2 * q + k],
                                 blk[3 * q + k], w1a, w1a_bar, w1b,
                                 w1b_bar, w2, w2_bar, p);
        }
    }
}

void
MulShoupRows(u64 *dst, const u64 *src, std::size_t n, u64 s, u64 s_bar,
             u64 p)
{
    for (std::size_t k = 0; k < n; ++k) {
        dst[k] = MulModShoup(src[k], s, s_bar, p);
    }
}

void
MulBarrettRows(u64 *dst, const u64 *a, const u64 *b, std::size_t n,
               BarrettConsts c)
{
    for (std::size_t k = 0; k < n; ++k) {
        const u128 z = Mul64Wide(a[k], b[k]);
        dst[k] = BarrettReduce(Lo64(z), Hi64(z), c);
    }
}

void
MulAccBarrettRows(u64 *dst, const u64 *a, const u64 *b, std::size_t n,
                  BarrettConsts c)
{
    for (std::size_t k = 0; k < n; ++k) {
        const u128 z = Mul64Wide(a[k], b[k]) + dst[k];
        dst[k] = BarrettReduce(Lo64(z), Hi64(z), c);
    }
}

void
ReduceBarrettRows(u64 *dst, const u64 *src, std::size_t n,
                  BarrettConsts c)
{
    for (std::size_t k = 0; k < n; ++k) {
        dst[k] = BarrettReduce(src[k], 0, c);
    }
}

void
AddRows(u64 *dst, const u64 *a, const u64 *b, std::size_t n, u64 p,
        bool fold_b)
{
    for (std::size_t k = 0; k < n; ++k) {
        const u64 s = fold_b ? FoldLazy(b[k], p) : b[k];
        dst[k] = AddMod(a[k], s, p);
    }
}

void
SubRows(u64 *dst, const u64 *a, const u64 *b, std::size_t n, u64 p,
        bool fold_b)
{
    for (std::size_t k = 0; k < n; ++k) {
        const u64 s = fold_b ? FoldLazy(b[k], p) : b[k];
        dst[k] = SubMod(a[k], s, p);
    }
}

void
FoldLazyRows(u64 *x, std::size_t n, u64 p)
{
    for (std::size_t k = 0; k < n; ++k) {
        x[k] = FoldLazy(x[k], p);
    }
}

void
FoldRescaleRows(u64 *dst, const u64 *src, std::size_t n, u64 p, u64 s,
                u64 s_bar)
{
    for (std::size_t k = 0; k < n; ++k) {
        dst[k] = MulModShoup(AddMod(dst[k], src[k], p), s, s_bar, p);
    }
}

void
TensorRows(u64 *c0, u64 *c1, u64 *c2, const u64 *a0, const u64 *a1,
           const u64 *b0, const u64 *b1, std::size_t n, BarrettConsts c)
{
    for (std::size_t k = 0; k < n; ++k) {
        const u128 z0 = Mul64Wide(a0[k], b0[k]);
        const u128 z1 = Mul64Wide(a0[k], b1[k]) + Mul64Wide(a1[k], b0[k]);
        const u128 z2 = Mul64Wide(a1[k], b1[k]);
        c0[k] = BarrettReduce(Lo64(z0), Hi64(z0), c);
        c1[k] = BarrettReduce(Lo64(z1), Hi64(z1), c);
        c2[k] = BarrettReduce(Lo64(z2), Hi64(z2), c);
    }
}

void
DivideRoundRows(u64 *dst, const u64 *src, const u64 *top, std::size_t n,
                const DivideRoundConsts &c)
{
    for (std::size_t k = 0; k < n; ++k) {
        const u64 u =
            MulModShoup(top[k], c.t_inv_qk, c.t_inv_qk_bar, c.qk);
        const BarrettConsts red{c.qi, c.mu_lo, c.mu_hi};
        u64 delta_mod_qi;
        if (u <= c.qk / 2) {
            delta_mod_qi = MulModShoup(BarrettReduce(u, 0, red),
                                       c.t_mod_qi, c.t_mod_qi_bar, c.qi);
        } else {
            const u64 v = c.qk - u;  // delta = -t * v
            const u64 pos = MulModShoup(BarrettReduce(v, 0, red),
                                        c.t_mod_qi, c.t_mod_qi_bar, c.qi);
            delta_mod_qi = pos == 0 ? 0 : c.qi - pos;
        }
        const u64 diff = SubMod(src[k], delta_mod_qi, c.qi);
        dst[k] = MulModShoup(diff, c.qk_inv, c.qk_inv_bar, c.qi);
    }
}

}  // namespace

namespace internal {

const Kernels &
ScalarKernels()
{
    static const Kernels table = {
        &FwdButterflyRows,   &FwdButterflyStage, &InvButterflyRows,
        &InvButterflyStage,  &FwdButterflyStage4, &InvButterflyStage4,
        &MulShoupRows,       &MulBarrettRows,    &MulAccBarrettRows,
        &ReduceBarrettRows,  &AddRows,           &SubRows,
        &FoldLazyRows,       &FoldRescaleRows,   &TensorRows,
        &DivideRoundRows,
    };
    return table;
}

}  // namespace internal

}  // namespace hentt::simd
