/**
 * @file
 * NEON/arm64 backend: two u64 residues per vector op via uint64x2_t.
 * AdvSIMD is mandatory on AArch64, so this TU needs no extra compile
 * flags and no CPUID probe — the __aarch64__ guard is the whole gate
 * (the build registers it through simd_dispatch.cpp like every other
 * backend; proving the "one TU + one registration line" contract).
 *
 * Like AVX2, NEON has no 64x64 multiply, so the 64-bit products behind
 * Shoup and Barrett come from 32x32 partial products (vmull_u32 over
 * vmovn/vshrn narrowed halves) with the same explicit carry tree as
 * common/int128.h — term-for-term identical, so every kernel is
 * bit-identical to the scalar reference (lazy [0, 4p) representatives
 * included).
 *
 * Table verdict: the butterfly family and the Shoup-style element-wise
 * kernels are vectorized; the 128-bit Barrett reduction family and the
 * branchy divide-and-round borrow the scalar reference, mirroring the
 * measured 4-lane AVX2 decision (the partial-product tree spends ~19
 * 32x32 multiplies per two lanes against two hardware mul/umulh
 * chains). Provisional until an arm64 perf runner exists — recorded as
 * such in ARCHITECTURE.md; DescribeKernelTable() shows the borrowing.
 *
 * Width notes: at two lanes the contiguous-row form already applies at
 * run length t == 2, and only the t == 1 interleaved tail falls back
 * to the scalar element loop (no shuffle network needed — one radix-2
 * level of one pair is barely more than a vector's worth of work).
 */

#include "simd/simd_internal.h"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace hentt::simd {

namespace {

inline uint64x2_t
Load(const u64 *p)
{
    return vld1q_u64(p);
}

inline void
Store(u64 *p, uint64x2_t v)
{
    vst1q_u64(p, v);
}

inline uint64x2_t
Bcast(u64 x)
{
    return vdupq_n_u64(x);
}

/** a >= bound ? a - bound : a — vcgeq yields all-ones lanes to mask
 *  the subtrahend. */
inline uint64x2_t
CondSub(uint64x2_t a, uint64x2_t bound)
{
    return vsubq_u64(a, vandq_u64(bound, vcgeq_u64(a, bound)));
}

/** Low / high 32-bit halves, narrowed for vmull_u32. */
inline uint32x2_t
Lo32(uint64x2_t x)
{
    return vmovn_u64(x);
}

inline uint32x2_t
Hi32(uint64x2_t x)
{
    return vshrn_n_u64(x, 32);
}

/** High 64 bits of the unsigned 64x64 product — the partial-product
 *  tree of common/int128.h on two lanes. */
inline uint64x2_t
MulHiU64(uint64x2_t x, uint64x2_t y)
{
    const uint64x2_t lo32 = Bcast(0xffffffffu);
    const uint32x2_t xl = Lo32(x), xh = Hi32(x);
    const uint32x2_t yl = Lo32(y), yh = Hi32(y);
    const uint64x2_t ll = vmull_u32(xl, yl);
    const uint64x2_t lh = vmull_u32(xl, yh);
    const uint64x2_t hl = vmull_u32(xh, yl);
    const uint64x2_t hh = vmull_u32(xh, yh);
    const uint64x2_t cross =
        vaddq_u64(vaddq_u64(vshrq_n_u64(ll, 32), vandq_u64(lh, lo32)),
                  vandq_u64(hl, lo32));
    return vaddq_u64(vaddq_u64(hh, vshrq_n_u64(lh, 32)),
                     vaddq_u64(vshrq_n_u64(hl, 32),
                               vshrq_n_u64(cross, 32)));
}

/** Low 64 bits of the unsigned 64x64 product. */
inline uint64x2_t
MulLoU64(uint64x2_t x, uint64x2_t y)
{
    const uint32x2_t xl = Lo32(x), xh = Hi32(x);
    const uint32x2_t yl = Lo32(y), yh = Hi32(y);
    const uint64x2_t ll = vmull_u32(xl, yl);
    const uint64x2_t mid =
        vaddq_u64(vmull_u32(xl, yh), vmull_u32(xh, yl));
    return vaddq_u64(ll, vshlq_n_u64(mid, 32));
}

/** The lazy CT butterfly core on two lanes (FwdButterflyElem). */
inline void
FwdCore(uint64x2_t &x, uint64x2_t &y, uint64x2_t vw, uint64x2_t vwb,
        uint64x2_t vp, uint64x2_t v2p)
{
    x = CondSub(x, v2p);
    const uint64x2_t q = MulHiU64(y, vwb);
    const uint64x2_t t = vsubq_u64(MulLoU64(y, vw), MulLoU64(q, vp));
    y = vsubq_u64(vaddq_u64(x, v2p), t);
    x = vaddq_u64(x, t);
}

/** The lazy GS butterfly core on two lanes (InvButterflyElem). */
inline void
InvCore(uint64x2_t &x, uint64x2_t &y, uint64x2_t vw, uint64x2_t vwb,
        uint64x2_t vp, uint64x2_t v2p)
{
    const uint64x2_t u = x;
    const uint64x2_t v = y;
    x = CondSub(vaddq_u64(u, v), v2p);
    const uint64x2_t d = vsubq_u64(vaddq_u64(u, v2p), v);
    const uint64x2_t q = MulHiU64(d, vwb);
    y = vsubq_u64(MulLoU64(d, vw), MulLoU64(q, vp));
}

// ---------------------------------------------------------------- rows

void
FwdButterflyRows(u64 *x, u64 *y, std::size_t n, u64 w, u64 w_bar, u64 p)
{
    const uint64x2_t vp = Bcast(p), v2p = Bcast(2 * p);
    const uint64x2_t vw = Bcast(w), vwb = Bcast(w_bar);
    std::size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        uint64x2_t a = Load(x + k), b = Load(y + k);
        FwdCore(a, b, vw, vwb, vp, v2p);
        Store(x + k, a);
        Store(y + k, b);
    }
    for (; k < n; ++k) {
        FwdButterflyElem(x[k], y[k], w, w_bar, p);
    }
}

void
InvButterflyRows(u64 *x, u64 *y, std::size_t n, u64 w, u64 w_bar, u64 p)
{
    const uint64x2_t vp = Bcast(p), v2p = Bcast(2 * p);
    const uint64x2_t vw = Bcast(w), vwb = Bcast(w_bar);
    std::size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        uint64x2_t a = Load(x + k), b = Load(y + k);
        InvCore(a, b, vw, vwb, vp, v2p);
        Store(x + k, a);
        Store(y + k, b);
    }
    for (; k < n; ++k) {
        InvButterflyElem(x[k], y[k], w, w_bar, p);
    }
}

// --------------------------------------------------------------- stages

template <bool kForward>
void
ButterflyStage(u64 *a, const u64 *w, const u64 *w_bar, std::size_t m,
               std::size_t t, u64 p)
{
    if (t >= 2) {
        // Two lanes make every t >= 2 block a contiguous-row pair with
        // a broadcast twiddle — no tail shuffle network needed.
        for (std::size_t j = 0; j < m; ++j) {
            u64 *x = a + 2 * j * t;
            if constexpr (kForward) {
                FwdButterflyRows(x, x + t, t, w[j], w_bar[j], p);
            } else {
                InvButterflyRows(x, x + t, t, w[j], w_bar[j], p);
            }
        }
        return;
    }
    // t == 1: interleaved pairs, one butterfly each — scalar.
    for (std::size_t j = 0; j < m; ++j) {
        if constexpr (kForward) {
            FwdButterflyElem(a[2 * j], a[2 * j + 1], w[j], w_bar[j], p);
        } else {
            InvButterflyElem(a[2 * j], a[2 * j + 1], w[j], w_bar[j], p);
        }
    }
}

void
FwdButterflyStage(u64 *a, const u64 *w, const u64 *w_bar, std::size_t m,
                  std::size_t t, u64 p)
{
    ButterflyStage<true>(a, w, w_bar, m, t, p);
}

void
InvButterflyStage(u64 *a, const u64 *w, const u64 *w_bar, std::size_t h,
                  std::size_t t, u64 p)
{
    ButterflyStage<false>(a, w, w_bar, h, t, p);
}

// -------------------------------------------------- fused radix-4 stages
//
// Genuinely fused at every q >= 2: the four-row column plus twiddle
// broadcasts and butterfly temporaries fit comfortably in AArch64's 32
// vector registers (the spill pressure that pushes AVX2 to two sweeps
// does not arise), so each coefficient is read and written once for
// two butterfly levels. q == 1 runs the scalar quad loop.

void
FwdButterflyStage4(u64 *a, const u64 *pairs, const u64 *quads,
                   std::size_t m, std::size_t q, u64 p)
{
    const uint64x2_t vp = Bcast(p), v2p = Bcast(2 * p);
    for (std::size_t j = 0; j < m; ++j) {
        u64 *blk = a + 4 * j * q;
        const u64 w1 = pairs[2 * j], w1b = pairs[2 * j + 1];
        const u64 w2a = quads[4 * j], w2ab = quads[4 * j + 1];
        const u64 w2b = quads[4 * j + 2], w2bb = quads[4 * j + 3];
        const uint64x2_t vw1 = Bcast(w1), vw1b = Bcast(w1b);
        const uint64x2_t vw2a = Bcast(w2a), vw2ab = Bcast(w2ab);
        const uint64x2_t vw2b = Bcast(w2b), vw2bb = Bcast(w2bb);
        std::size_t k = 0;
        for (; k + 2 <= q; k += 2) {
            uint64x2_t va = Load(blk + k);
            uint64x2_t vb = Load(blk + q + k);
            uint64x2_t vc = Load(blk + 2 * q + k);
            uint64x2_t vd = Load(blk + 3 * q + k);
            FwdCore(va, vc, vw1, vw1b, vp, v2p);
            FwdCore(vb, vd, vw1, vw1b, vp, v2p);
            FwdCore(va, vb, vw2a, vw2ab, vp, v2p);
            FwdCore(vc, vd, vw2b, vw2bb, vp, v2p);
            Store(blk + k, va);
            Store(blk + q + k, vb);
            Store(blk + 2 * q + k, vc);
            Store(blk + 3 * q + k, vd);
        }
        for (; k < q; ++k) {
            FwdButterflyQuadElem(blk[k], blk[q + k], blk[2 * q + k],
                                 blk[3 * q + k], w1, w1b, w2a, w2ab,
                                 w2b, w2bb, p);
        }
    }
}

void
InvButterflyStage4(u64 *a, const u64 *quads, const u64 *pairs,
                   std::size_t m, std::size_t q, u64 p)
{
    const uint64x2_t vp = Bcast(p), v2p = Bcast(2 * p);
    for (std::size_t j = 0; j < m; ++j) {
        u64 *blk = a + 4 * j * q;
        const u64 w1a = quads[4 * j], w1ab = quads[4 * j + 1];
        const u64 w1b = quads[4 * j + 2], w1bb = quads[4 * j + 3];
        const u64 w2 = pairs[2 * j], w2b = pairs[2 * j + 1];
        const uint64x2_t vw1a = Bcast(w1a), vw1ab = Bcast(w1ab);
        const uint64x2_t vw1b = Bcast(w1b), vw1bb = Bcast(w1bb);
        const uint64x2_t vw2 = Bcast(w2), vw2b = Bcast(w2b);
        std::size_t k = 0;
        for (; k + 2 <= q; k += 2) {
            uint64x2_t va = Load(blk + k);
            uint64x2_t vb = Load(blk + q + k);
            uint64x2_t vc = Load(blk + 2 * q + k);
            uint64x2_t vd = Load(blk + 3 * q + k);
            InvCore(va, vb, vw1a, vw1ab, vp, v2p);
            InvCore(vc, vd, vw1b, vw1bb, vp, v2p);
            InvCore(va, vc, vw2, vw2b, vp, v2p);
            InvCore(vb, vd, vw2, vw2b, vp, v2p);
            Store(blk + k, va);
            Store(blk + q + k, vb);
            Store(blk + 2 * q + k, vc);
            Store(blk + 3 * q + k, vd);
        }
        for (; k < q; ++k) {
            InvButterflyQuadElem(blk[k], blk[q + k], blk[2 * q + k],
                                 blk[3 * q + k], w1a, w1ab, w1b, w1bb,
                                 w2, w2b, p);
        }
    }
}

// ---------------------------------------------------------- elementwise

void
MulShoupRows(u64 *dst, const u64 *src, std::size_t n, u64 s, u64 s_bar,
             u64 p)
{
    const uint64x2_t vp = Bcast(p), vs = Bcast(s), vsb = Bcast(s_bar);
    std::size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        const uint64x2_t x = Load(src + k);
        const uint64x2_t q = MulHiU64(x, vsb);
        const uint64x2_t r =
            vsubq_u64(MulLoU64(x, vs), MulLoU64(q, vp));
        Store(dst + k, CondSub(r, vp));
    }
    for (; k < n; ++k) {
        dst[k] = MulModShoup(src[k], s, s_bar, p);
    }
}

/** FoldLazy on two lanes. */
inline uint64x2_t
FoldVec(uint64x2_t x, uint64x2_t vp, uint64x2_t v2p)
{
    return CondSub(CondSub(x, v2p), vp);
}

template <bool kSubtract>
void
AddSubRows(u64 *dst, const u64 *a, const u64 *b, std::size_t n, u64 p,
           bool fold_b)
{
    const uint64x2_t vp = Bcast(p), v2p = Bcast(2 * p);
    std::size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        const uint64x2_t x = Load(a + k);
        uint64x2_t y = Load(b + k);
        if (fold_b) {
            y = FoldVec(y, vp, v2p);
        }
        uint64x2_t r;
        if constexpr (kSubtract) {
            const uint64x2_t lt = vcgtq_u64(y, x);  // x < y: wrap by +p
            r = vaddq_u64(vsubq_u64(x, y), vandq_u64(lt, vp));
        } else {
            r = CondSub(vaddq_u64(x, y), vp);
        }
        Store(dst + k, r);
    }
    for (; k < n; ++k) {
        const u64 s = fold_b ? FoldLazy(b[k], p) : b[k];
        dst[k] = kSubtract ? SubMod(a[k], s, p) : AddMod(a[k], s, p);
    }
}

void
AddRows(u64 *dst, const u64 *a, const u64 *b, std::size_t n, u64 p,
        bool fold_b)
{
    AddSubRows<false>(dst, a, b, n, p, fold_b);
}

void
SubRows(u64 *dst, const u64 *a, const u64 *b, std::size_t n, u64 p,
        bool fold_b)
{
    AddSubRows<true>(dst, a, b, n, p, fold_b);
}

void
FoldLazyRows(u64 *x, std::size_t n, u64 p)
{
    const uint64x2_t vp = Bcast(p), v2p = Bcast(2 * p);
    std::size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        Store(x + k, FoldVec(Load(x + k), vp, v2p));
    }
    for (; k < n; ++k) {
        x[k] = FoldLazy(x[k], p);
    }
}

void
FoldRescaleRows(u64 *dst, const u64 *src, std::size_t n, u64 p, u64 s,
                u64 s_bar)
{
    const uint64x2_t vp = Bcast(p), vs = Bcast(s), vsb = Bcast(s_bar);
    std::size_t k = 0;
    for (; k + 2 <= n; k += 2) {
        const uint64x2_t folded =
            CondSub(vaddq_u64(Load(dst + k), Load(src + k)), vp);
        const uint64x2_t q = MulHiU64(folded, vsb);
        const uint64x2_t r =
            vsubq_u64(MulLoU64(folded, vs), MulLoU64(q, vp));
        Store(dst + k, CondSub(r, vp));
    }
    for (; k < n; ++k) {
        dst[k] = MulModShoup(AddMod(dst[k], src[k], p), s, s_bar, p);
    }
}

}  // namespace

namespace internal {

bool
NeonCompiledIn()
{
    return true;
}

const Kernels &
NeonKernels()
{
    // Butterfly + Shoup family vectorized; Barrett reduction family
    // and divide-and-round borrow the scalar reference (the AVX2
    // 4-lane verdict, provisional until an arm64 perf runner lands —
    // see ARCHITECTURE.md).
    static const Kernels table = {
        &FwdButterflyRows,
        &FwdButterflyStage,
        &InvButterflyRows,
        &InvButterflyStage,
        &FwdButterflyStage4,
        &InvButterflyStage4,
        &MulShoupRows,
        ScalarKernels().mul_barrett_rows,
        ScalarKernels().mul_acc_barrett_rows,
        ScalarKernels().reduce_barrett_rows,
        &AddRows,
        &SubRows,
        &FoldLazyRows,
        &FoldRescaleRows,
        ScalarKernels().tensor_rows,
        ScalarKernels().divide_round_rows,
    };
    return table;
}

}  // namespace internal

}  // namespace hentt::simd

#else  // not an AArch64/NEON build

namespace hentt::simd::internal {

bool
NeonCompiledIn()
{
    return false;
}

const Kernels &
NeonKernels()
{
    return ScalarKernels();
}

}  // namespace hentt::simd::internal

#endif  // defined(__aarch64__) && defined(__ARM_NEON)
