#include "rns/bigint.h"

#include <algorithm>
#include <stdexcept>

namespace hentt {

BigInt::BigInt(u64 value)
{
    if (value != 0) {
        limbs_.push_back(value);
    }
}

BigInt::BigInt(std::vector<u64> limbs) : limbs_(std::move(limbs))
{
    Normalize();
}

void
BigInt::Normalize()
{
    while (!limbs_.empty() && limbs_.back() == 0) {
        limbs_.pop_back();
    }
}

std::size_t
BigInt::BitLength() const
{
    if (limbs_.empty()) {
        return 0;
    }
    std::size_t bits = 64 * (limbs_.size() - 1);
    u64 top = limbs_.back();
    while (top != 0) {
        ++bits;
        top >>= 1;
    }
    return bits;
}

std::strong_ordering
BigInt::operator<=>(const BigInt &other) const
{
    if (limbs_.size() != other.limbs_.size()) {
        return limbs_.size() <=> other.limbs_.size();
    }
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        if (limbs_[i] != other.limbs_[i]) {
            return limbs_[i] <=> other.limbs_[i];
        }
    }
    return std::strong_ordering::equal;
}

BigInt
BigInt::operator+(const BigInt &other) const
{
    BigInt result = *this;
    result += other;
    return result;
}

BigInt &
BigInt::operator+=(const BigInt &other)
{
    const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
    limbs_.resize(n, 0);
    u64 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const u64 b = i < other.limbs_.size() ? other.limbs_[i] : 0;
        const u128 s = static_cast<u128>(limbs_[i]) + b + carry;
        limbs_[i] = Lo64(s);
        carry = Hi64(s);
    }
    if (carry != 0) {
        limbs_.push_back(carry);
    }
    return *this;
}

BigInt
BigInt::operator-(const BigInt &other) const
{
    BigInt result = *this;
    result -= other;
    return result;
}

BigInt &
BigInt::operator-=(const BigInt &other)
{
    if (*this < other) {
        throw std::underflow_error("BigInt subtraction would underflow");
    }
    u64 borrow = 0;
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const u64 b = i < other.limbs_.size() ? other.limbs_[i] : 0;
        const u128 need = static_cast<u128>(b) + borrow;
        if (static_cast<u128>(limbs_[i]) >= need) {
            limbs_[i] -= static_cast<u64>(need);
            borrow = 0;
        } else {
            limbs_[i] = static_cast<u64>(
                (static_cast<u128>(1) << 64) + limbs_[i] - need);
            borrow = 1;
        }
    }
    Normalize();
    return *this;
}

BigInt
BigInt::operator*(const BigInt &other) const
{
    if (IsZero() || other.IsZero()) {
        return BigInt{};
    }
    std::vector<u64> out(limbs_.size() + other.limbs_.size(), 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        u64 carry = 0;
        for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
            const u128 cur = static_cast<u128>(out[i + j]) +
                             Mul64Wide(limbs_[i], other.limbs_[j]) + carry;
            out[i + j] = Lo64(cur);
            carry = Hi64(cur);
        }
        out[i + other.limbs_.size()] += carry;
    }
    return BigInt(std::move(out));
}

BigInt
BigInt::operator*(u64 other) const
{
    return *this * BigInt(other);
}

std::pair<BigInt, u64>
BigInt::DivMod(u64 divisor) const
{
    if (divisor == 0) {
        throw std::domain_error("BigInt division by zero");
    }
    std::vector<u64> quotient(limbs_.size(), 0);
    u64 rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        const u128 cur = (static_cast<u128>(rem) << 64) | limbs_[i];
        quotient[i] = static_cast<u64>(cur / divisor);
        rem = static_cast<u64>(cur % divisor);
    }
    return {BigInt(std::move(quotient)), rem};
}

BigInt
BigInt::operator/(u64 divisor) const
{
    return DivMod(divisor).first;
}

u64
BigInt::operator%(u64 divisor) const
{
    return DivMod(divisor).second;
}

BigInt
BigInt::operator<<(std::size_t bits) const
{
    if (IsZero()) {
        return BigInt{};
    }
    const std::size_t limb_shift = bits / 64;
    const unsigned bit_shift = bits % 64;
    std::vector<u64> out(limbs_.size() + limb_shift + 1, 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        out[i + limb_shift] |= limbs_[i] << bit_shift;
        if (bit_shift != 0) {
            out[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
        }
    }
    return BigInt(std::move(out));
}

BigInt
BigInt::FromDecimal(const std::string &digits)
{
    BigInt result;
    for (char c : digits) {
        if (c < '0' || c > '9') {
            throw std::invalid_argument("non-decimal digit");
        }
        result = result * u64{10} + BigInt(static_cast<u64>(c - '0'));
    }
    return result;
}

std::string
BigInt::ToDecimal() const
{
    if (IsZero()) {
        return "0";
    }
    std::string out;
    BigInt cur = *this;
    while (!cur.IsZero()) {
        auto [q, r] = cur.DivMod(10);
        out.push_back(static_cast<char>('0' + r));
        cur = std::move(q);
    }
    std::reverse(out.begin(), out.end());
    return out;
}

}  // namespace hentt
