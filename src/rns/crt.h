/**
 * @file
 * Chinese-remainder-theorem conversions between Z_Q and the RNS domain.
 *
 * Decompose maps x in [0, Q) to its residue vector (x mod p_i);
 * Compose inverts it with Garner's mixed-radix algorithm, which needs
 * only word-sized modular arithmetic plus big-integer accumulate —
 * no big-integer modulo.
 */

#ifndef HENTT_RNS_CRT_H
#define HENTT_RNS_CRT_H

#include <vector>

#include "rns/bigint.h"
#include "rns/rns_basis.h"

namespace hentt {

/** x mod p_i for every basis prime. @pre x < basis.product(). */
std::vector<u64> CrtDecompose(const BigInt &x, const RnsBasis &basis);

/** Unique x in [0, Q) with x == residues[i] (mod p_i). */
BigInt CrtCompose(const std::vector<u64> &residues, const RnsBasis &basis);

/**
 * Centered composition: interprets the residue vector as a value in
 * (-Q/2, Q/2] and returns (|x|, negative?). Used by the HE layer when
 * mapping ciphertext coefficients back to signed plaintext space.
 */
std::pair<BigInt, bool> CrtComposeCentered(const std::vector<u64> &residues,
                                           const RnsBasis &basis);

}  // namespace hentt

#endif  // HENTT_RNS_CRT_H
