/**
 * @file
 * Minimal arbitrary-precision unsigned integer.
 *
 * HE ciphertext coefficients live in Z_Q with Q >> 2^64 (paper Section
 * III-B); the RNS/CRT machinery removes big-integer arithmetic from the
 * hot path, but the library still needs it to (a) build and reason about
 * Q = prod p_i, (b) verify CRT round trips, and (c) perform the centered
 * reductions in the HE layer. Little-endian base-2^64 limbs; only the
 * operations those uses require.
 */

#ifndef HENTT_RNS_BIGINT_H
#define HENTT_RNS_BIGINT_H

#include <compare>
#include <cstddef>
#include <string>
#include <vector>

#include "common/int128.h"

namespace hentt {

/** Unsigned big integer, value = sum limbs[i] * 2^(64 i). */
class BigInt
{
  public:
    /** Zero. */
    BigInt() = default;
    /** From a single word. */
    BigInt(u64 value);  // NOLINT(google-explicit-constructor): numeric
    /** From little-endian limbs (normalized on construction). */
    explicit BigInt(std::vector<u64> limbs);

    static BigInt FromDecimal(const std::string &digits);

    bool IsZero() const { return limbs_.empty(); }
    std::size_t limb_count() const { return limbs_.size(); }
    const std::vector<u64> &limbs() const { return limbs_; }

    /** Number of significant bits (0 for zero). */
    std::size_t BitLength() const;

    std::strong_ordering operator<=>(const BigInt &other) const;
    bool operator==(const BigInt &other) const = default;

    BigInt operator+(const BigInt &other) const;
    /** @pre *this >= other. */
    BigInt operator-(const BigInt &other) const;
    BigInt operator*(const BigInt &other) const;
    BigInt operator*(u64 other) const;
    /** Floor division by a word. */
    BigInt operator/(u64 divisor) const;
    /** Remainder modulo a word. */
    u64 operator%(u64 divisor) const;
    BigInt operator<<(std::size_t bits) const;

    BigInt &operator+=(const BigInt &other);
    BigInt &operator-=(const BigInt &other);

    /** Quotient and remainder by a single word in one pass. */
    std::pair<BigInt, u64> DivMod(u64 divisor) const;

    /** Low 64 bits (0 if zero). */
    u64 ToU64() const { return limbs_.empty() ? 0 : limbs_[0]; }
    /** True iff the value fits in 64 bits. */
    bool FitsU64() const { return limbs_.size() <= 1; }

    std::string ToDecimal() const;

  private:
    void Normalize();

    std::vector<u64> limbs_;
};

}  // namespace hentt

#endif  // HENTT_RNS_BIGINT_H
