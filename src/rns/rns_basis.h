/**
 * @file
 * RNS (residue number system) basis: the set of np NTT-friendly coprime
 * moduli whose product bounds the ciphertext modulus Q (paper Section
 * III-B). Holds the Garner mixed-radix precomputation used by CRT
 * composition.
 */

#ifndef HENTT_RNS_RNS_BASIS_H
#define HENTT_RNS_RNS_BASIS_H

#include <cstddef>
#include <vector>

#include "rns/bigint.h"

namespace hentt {

/** An ordered list of pairwise-coprime NTT-friendly primes. */
class RnsBasis
{
  public:
    /**
     * Build a basis of @p count primes p_i == 1 (mod 2n), @p bits bits
     * each, searching downward from 2^bits.
     */
    RnsBasis(std::size_t n, unsigned bits, std::size_t count);

    /** Build from explicit primes (validated: prime, distinct). */
    explicit RnsBasis(std::vector<u64> primes);

    std::size_t prime_count() const { return primes_.size(); }
    u64 prime(std::size_t i) const { return primes_[i]; }
    const std::vector<u64> &primes() const { return primes_; }

    /** Q = prod p_i. */
    const BigInt &product() const { return product_; }

    /** log2(Q), rounded up to the bit. */
    std::size_t log_q() const { return product_.BitLength(); }

    /**
     * Garner coefficient inv_{ij} = (p_0 p_1 ... p_{j-1})^{-1} mod p_i,
     * for j < i (used by mixed-radix CRT composition).
     */
    u64 garner_inverse(std::size_t i) const { return garner_inv_[i]; }

  private:
    void Precompute();

    std::vector<u64> primes_;
    BigInt product_;
    // garner_inv_[i] = (prod_{j<i} p_j)^{-1} mod p_i; garner_inv_[0] = 1.
    std::vector<u64> garner_inv_;
};

}  // namespace hentt

#endif  // HENTT_RNS_RNS_BASIS_H
