#include "rns/rns_basis.h"

#include <set>
#include <stdexcept>

#include "common/modarith.h"
#include "common/primegen.h"

namespace hentt {

RnsBasis::RnsBasis(std::size_t n, unsigned bits, std::size_t count)
    : primes_(GenerateNttPrimes(2 * n, bits, count))
{
    Precompute();
}

RnsBasis::RnsBasis(std::vector<u64> primes) : primes_(std::move(primes))
{
    if (primes_.empty()) {
        throw std::invalid_argument("RNS basis must be non-empty");
    }
    std::set<u64> seen;
    for (u64 p : primes_) {
        if (!IsPrime(p)) {
            throw std::invalid_argument("RNS basis element is not prime");
        }
        if (!seen.insert(p).second) {
            throw std::invalid_argument("RNS basis has a repeated prime");
        }
    }
    Precompute();
}

void
RnsBasis::Precompute()
{
    product_ = BigInt(u64{1});
    for (u64 p : primes_) {
        product_ = product_ * p;
    }
    garner_inv_.resize(primes_.size());
    garner_inv_[0] = 1;
    for (std::size_t i = 1; i < primes_.size(); ++i) {
        const u64 pi = primes_[i];
        u64 prefix = 1;
        for (std::size_t j = 0; j < i; ++j) {
            prefix = MulModNative(prefix, primes_[j] % pi, pi);
        }
        garner_inv_[i] = InvMod(prefix, pi);
    }
}

}  // namespace hentt
