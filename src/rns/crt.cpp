#include "rns/crt.h"

#include <stdexcept>

#include "common/modarith.h"

namespace hentt {

std::vector<u64>
CrtDecompose(const BigInt &x, const RnsBasis &basis)
{
    std::vector<u64> residues(basis.prime_count());
    for (std::size_t i = 0; i < basis.prime_count(); ++i) {
        residues[i] = x % basis.prime(i);
    }
    return residues;
}

BigInt
CrtCompose(const std::vector<u64> &residues, const RnsBasis &basis)
{
    if (residues.size() != basis.prime_count()) {
        throw std::invalid_argument("residue count != basis size");
    }
    // Garner: find mixed-radix digits v_i with
    //   x = v_0 + v_1 p_0 + v_2 p_0 p_1 + ...,   0 <= v_i < p_i.
    const std::size_t k = basis.prime_count();
    std::vector<u64> v(k);
    for (std::size_t i = 0; i < k; ++i) {
        const u64 pi = basis.prime(i);
        // t = (r_i - (v_0 + v_1 p_0 + ...)) * garner_inv_i  (mod p_i)
        u64 acc = 0;       // partial value mod p_i
        u64 radix = 1;     // p_0 ... p_{j-1} mod p_i
        for (std::size_t j = 0; j < i; ++j) {
            acc = AddMod(acc, MulModNative(v[j], radix, pi), pi);
            radix = MulModNative(radix, basis.prime(j) % pi, pi);
        }
        const u64 diff = SubMod(residues[i] % pi, acc, pi);
        v[i] = MulModNative(diff, basis.garner_inverse(i), pi);
    }
    // Accumulate the mixed-radix expansion into a BigInt.
    BigInt result;
    BigInt radix(u64{1});
    for (std::size_t i = 0; i < k; ++i) {
        result += radix * v[i];
        radix = radix * basis.prime(i);
    }
    return result;
}

std::pair<BigInt, bool>
CrtComposeCentered(const std::vector<u64> &residues, const RnsBasis &basis)
{
    BigInt x = CrtCompose(residues, basis);
    const BigInt half = basis.product() / 2;
    if (x > half) {
        return {basis.product() - x, true};
    }
    return {x, false};
}

}  // namespace hentt
