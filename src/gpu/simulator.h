/**
 * @file
 * Roofline-style execution-time estimator.
 *
 * For each kernel the model computes
 *
 *   mem_us   = max(DRAM bytes / BW(occ), transaction bytes / L2 roof)
 *   comp_us  = compute slots / (issue throughput * ILP(occ))
 *   time     = max(mem_us, comp_us) * (1 + 0.08 * min/max)   [overlap]
 *              + launches * launch_overhead
 *
 * with BW(occ) = peak * streaming_efficiency * f(occ) and the saturation
 * curve f(occ) = 1 - exp(-(occ / 0.25)^1.2), calibrated so the model
 * reproduces the paper's anchor measurements: 86.7% utilization for the
 * high-occupancy radix-2 kernel, ~60% at the radix-32 occupancy cliff
 * (Fig. 4(c)), and the ~65% -> ~54% utilization drop when OT turns the
 * SMEM kernel from memory- into compute-bound (Fig. 12(b)). The small
 * overlap term models imperfect memory/compute overlap near the
 * roofline ridge.
 */

#ifndef HENTT_GPU_SIMULATOR_H
#define HENTT_GPU_SIMULATOR_H

#include "gpu/kernel_stats.h"

namespace hentt::gpu {

/** Per-kernel timing verdict. */
struct TimeEstimate {
    double total_us = 0;
    double mem_us = 0;
    double compute_us = 0;
    double overhead_us = 0;
    double occupancy = 0;        ///< effective occupancy used
    double dram_bytes = 0;       ///< DRAM traffic charged
    double achieved_gbps = 0;    ///< dram_bytes / total time
    double dram_utilization = 0; ///< achieved / peak
    bool memory_bound = true;

    TimeEstimate &Accumulate(const TimeEstimate &other);
};

/** The performance model for one device. */
class Simulator
{
  public:
    explicit Simulator(DeviceSpec spec = DeviceSpec::TitanV());

    const DeviceSpec &device() const { return spec_; }

    /** DRAM-bandwidth saturation factor at a given occupancy. */
    double BandwidthFactor(double occupancy) const;

    /** Time estimate for one kernel launch group. */
    TimeEstimate Estimate(const KernelStats &kernel) const;

    /** Time estimate for a sequence of launches (summed). */
    TimeEstimate Estimate(const LaunchPlan &plan) const;

  private:
    DeviceSpec spec_;
};

}  // namespace hentt::gpu

#endif  // HENTT_GPU_SIMULATOR_H
