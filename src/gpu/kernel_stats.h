/**
 * @file
 * Resource/traffic profile of one GPU kernel launch (or a uniform group
 * of launches). The kernel emulations in src/kernels/ produce these;
 * gpu::Simulator turns them into time estimates, byte counts, and
 * utilization figures — the quantities the paper reads off nvprof.
 */

#ifndef HENTT_GPU_KERNEL_STATS_H
#define HENTT_GPU_KERNEL_STATS_H

#include <string>
#include <vector>

#include "gpu/occupancy.h"

namespace hentt::gpu {

/** Profile of one kernel launch group. */
struct KernelStats {
    std::string name;
    KernelResources resources;

    /** Useful DRAM bytes read (data + tables actually consumed). */
    double dram_read_bytes = 0;
    /** Useful DRAM bytes written. */
    double dram_write_bytes = 0;
    /**
     * Transaction-weighted bytes: useful bytes inflated by the
     * coalescing expansion factor. Excess sectors mostly hit in L2, so
     * they pressure the transaction-issue path rather than DRAM (the
     * Fig. 7 effect); the simulator applies them against the L2 roof.
     */
    double transaction_bytes = 0;
    /** LMEM spill traffic (counts as DRAM bytes, paper Section II). */
    double lmem_bytes = 0;
    /** Compute work in int32-equivalent issue slots. */
    double compute_slots = 0;
    /** Number of kernel launches this profile covers. */
    unsigned launches = 1;
    /** Block-level synchronizations per block (SMEM implementation). */
    unsigned block_syncs = 0;

    double total_dram_bytes() const
    {
        return dram_read_bytes + dram_write_bytes + lmem_bytes;
    }

    /** Sum of two profiles (resources taken from the larger grid). */
    KernelStats &Merge(const KernelStats &other);
};

/** A sequence of kernel launches making up one logical operation. */
using LaunchPlan = std::vector<KernelStats>;

/** Total DRAM bytes over a plan. */
double PlanDramBytes(const LaunchPlan &plan);

}  // namespace hentt::gpu

#endif  // HENTT_GPU_KERNEL_STATS_H
