#include "gpu/kernel_stats.h"

namespace hentt::gpu {

KernelStats &
KernelStats::Merge(const KernelStats &other)
{
    dram_read_bytes += other.dram_read_bytes;
    dram_write_bytes += other.dram_write_bytes;
    transaction_bytes += other.transaction_bytes;
    lmem_bytes += other.lmem_bytes;
    compute_slots += other.compute_slots;
    launches += other.launches;
    block_syncs += other.block_syncs;
    if (other.resources.grid_blocks > resources.grid_blocks) {
        resources = other.resources;
    }
    return *this;
}

double
PlanDramBytes(const LaunchPlan &plan)
{
    double total = 0;
    for (const KernelStats &k : plan) {
        total += k.total_dram_bytes();
    }
    return total;
}

}  // namespace hentt::gpu
