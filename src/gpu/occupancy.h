/**
 * @file
 * SM occupancy calculation.
 *
 * Occupancy — resident threads over the per-SM thread capacity — is the
 * lever behind most of the paper's design-space findings: the register
 * cost of high-radix kernels caps resident blocks (Fig. 4(c)), pushing
 * DRAM-bandwidth utilization down, and past 255 registers per thread the
 * compiler spills to local memory (LMEM), adding DRAM traffic instead
 * (radix-64/128 in Fig. 4).
 *
 * Per-kernel register budgets are *calibration tables*, not compiler
 * output: they are chosen to reproduce the paper's reported anchors
 * (NTT's best radix is 16 vs. DFT's 32; NTT occupancy at radix-32 is
 * ~31% below DFT's because of the extra prime + Shoup-companion state;
 * radix-64/128 spill). See NttRegisterCost / DftRegisterCost.
 */

#ifndef HENTT_GPU_OCCUPANCY_H
#define HENTT_GPU_OCCUPANCY_H

#include <cstddef>

#include "gpu/device.h"

namespace hentt::gpu {

/** Static per-kernel resource requirements. */
struct KernelResources {
    unsigned regs_per_thread = 32;
    std::size_t smem_per_block = 0;
    unsigned threads_per_block = 256;
    std::size_t grid_blocks = 1;
};

/** What capped the resident-block count. */
enum class OccupancyLimiter { kRegisters, kSharedMemory, kThreadSlots,
                              kBlockSlots, kGridSize };

/** Result of the occupancy calculation. */
struct OccupancyResult {
    unsigned blocks_per_sm = 0;
    /** Resource occupancy: resident threads / max threads per SM,
     *  ignoring grid size. */
    double resource_occupancy = 0.0;
    /** Effective machine occupancy including grid-fill: a grid smaller
     *  than the machine cannot reach resource occupancy (Fig. 3's small
     *  batches). */
    double effective_occupancy = 0.0;
    /** Registers per thread spilled to LMEM (0 unless > max regs). */
    unsigned spilled_regs_per_thread = 0;
    OccupancyLimiter limiter = OccupancyLimiter::kThreadSlots;
};

/** Compute occupancy of @p res on @p dev. */
OccupancyResult ComputeOccupancy(const DeviceSpec &dev,
                                 const KernelResources &res);

/**
 * Calibrated architectural register cost of the register-based
 * high-radix NTT kernel at the given radix (64-bit data: 2 registers
 * per resident point, plus twiddle staging, the prime, the Shoup
 * companion, and addressing temporaries).
 */
unsigned NttRegisterCost(std::size_t radix);

/** Same for the single-precision-complex DFT kernel (no modulus state,
 *  hence the paper's observation that DFT sustains radix-32). */
unsigned DftRegisterCost(std::size_t radix);

/** Register cost of the SMEM-implementation kernels as a function of the
 *  per-thread NTT size (2, 4, or 8 points). */
unsigned SmemKernelRegisterCost(std::size_t points_per_thread);

}  // namespace hentt::gpu

#endif  // HENTT_GPU_OCCUPANCY_H
