/**
 * @file
 * Warp-level memory-coalescing model.
 *
 * GPUs service a warp's loads/stores in 32-byte transactions; a warp
 * touching 32 consecutive 8-byte words needs 8 transactions, while the
 * same words strided apart can need up to 32 (paper Section II,
 * "memory coalescing", and the Fig. 6/7 Kernel-1 study). This module
 * provides both an *exact* simulator (count distinct 32B sectors touched
 * by a warp's addresses) and the closed-form strided-pattern expressions
 * the kernel emulations use; tests cross-check one against the other.
 */

#ifndef HENTT_GPU_MEMORY_MODEL_H
#define HENTT_GPU_MEMORY_MODEL_H

#include <cstddef>
#include <span>

#include "gpu/device.h"

namespace hentt::gpu {

/**
 * Exact transaction count for one warp access: the number of distinct
 * transaction_bytes-aligned sectors covered by [addr, addr + access_bytes)
 * over all lanes.
 */
std::size_t WarpTransactions(std::span<const u64> byte_addresses,
                             std::size_t access_bytes,
                             std::size_t transaction_bytes = 32);

/**
 * Closed-form transaction count for a warp of @p warp_size lanes where
 * lane i accesses @p access_bytes bytes at base + i * stride_bytes.
 */
std::size_t StridedWarpTransactions(std::size_t stride_bytes,
                                    std::size_t access_bytes,
                                    std::size_t warp_size = 32,
                                    std::size_t transaction_bytes = 32);

/**
 * Coalescing expansion factor for a strided pattern: transaction bytes
 * moved per useful byte (1.0 = perfectly coalesced). The paper's
 * uncoalesced Kernel-1 pattern (8-byte words, stride >= 32 B) expands
 * by 4x.
 */
double CoalescingExpansion(std::size_t stride_bytes,
                           std::size_t access_bytes,
                           std::size_t warp_size = 32,
                           std::size_t transaction_bytes = 32);

}  // namespace hentt::gpu

#endif  // HENTT_GPU_MEMORY_MODEL_H
