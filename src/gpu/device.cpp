#include "gpu/device.h"

namespace hentt::gpu {

DeviceSpec
DeviceSpec::TitanV()
{
    DeviceSpec spec;
    spec.name = "NVIDIA Titan V (modeled)";
    return spec;  // defaults are the Titan V calibration
}

}  // namespace hentt::gpu
