#include "gpu/simulator.h"

#include <algorithm>
#include <cmath>

namespace hentt::gpu {

namespace {

/** Occupancy below which issue stalls also throttle compute. */
constexpr double kComputeSaturationOcc = 0.25;
/** Overlap imperfection between the memory and compute pipelines. */
constexpr double kOverlapPenalty = 0.08;

}  // namespace

TimeEstimate &
TimeEstimate::Accumulate(const TimeEstimate &other)
{
    total_us += other.total_us;
    mem_us += other.mem_us;
    compute_us += other.compute_us;
    overhead_us += other.overhead_us;
    dram_bytes += other.dram_bytes;
    occupancy = std::max(occupancy, other.occupancy);
    memory_bound = mem_us >= compute_us;
    return *this;
}

Simulator::Simulator(DeviceSpec spec) : spec_(std::move(spec)) {}

double
Simulator::BandwidthFactor(double occupancy) const
{
    const double x = std::max(occupancy, 1e-6) / 0.25;
    return 1.0 - std::exp(-std::pow(x, 1.2));
}

TimeEstimate
Simulator::Estimate(const KernelStats &kernel) const
{
    TimeEstimate est;

    OccupancyResult occ = ComputeOccupancy(spec_, kernel.resources);
    est.occupancy = occ.effective_occupancy;

    // --- Memory time ----------------------------------------------------
    est.dram_bytes = kernel.total_dram_bytes();
    const double bw_gbps = spec_.peak_dram_gbps *
                           spec_.streaming_efficiency *
                           BandwidthFactor(occ.effective_occupancy);
    const double dram_us = est.dram_bytes / bw_gbps * 1e-3;
    // Transaction-issue roof: uncoalesced excess sectors are mostly L2
    // hits but still consume issue bandwidth.
    const double tx_bytes =
        std::max(kernel.transaction_bytes, est.dram_bytes);
    const double l2_us =
        tx_bytes /
        (spec_.peak_dram_gbps * spec_.l2_bandwidth_ratio *
         BandwidthFactor(occ.effective_occupancy)) *
        1e-3;
    est.mem_us = std::max(dram_us, l2_us);

    // --- Compute time ---------------------------------------------------
    const double ilp =
        std::min(1.0, occ.effective_occupancy / kComputeSaturationOcc);
    est.compute_us = kernel.compute_slots /
                     (spec_.SlotsPerSecond() * spec_.sustained_ipc * ilp) *
                     1e6;

    // --- Combine ----------------------------------------------------
    const double hi = std::max(est.mem_us, est.compute_us);
    const double lo = std::min(est.mem_us, est.compute_us);
    const double balance = hi > 0 ? lo / hi : 0.0;
    est.overhead_us =
        kernel.launches * spec_.kernel_launch_overhead_us;
    est.total_us = hi * (1.0 + kOverlapPenalty * balance) +
                   est.overhead_us;
    est.memory_bound = est.mem_us >= est.compute_us;
    est.achieved_gbps =
        est.total_us > 0 ? est.dram_bytes / est.total_us * 1e-3 : 0.0;
    est.dram_utilization = est.achieved_gbps / spec_.peak_dram_gbps;
    return est;
}

TimeEstimate
Simulator::Estimate(const LaunchPlan &plan) const
{
    TimeEstimate total;
    for (const KernelStats &k : plan) {
        total.Accumulate(Estimate(k));
    }
    total.achieved_gbps =
        total.total_us > 0 ? total.dram_bytes / total.total_us * 1e-3
                           : 0.0;
    total.dram_utilization = total.achieved_gbps / spec_.peak_dram_gbps;
    return total;
}

}  // namespace hentt::gpu
