/**
 * @file
 * GPU device description for the performance model.
 *
 * This is the repo's substitute for the paper's NVIDIA Titan V testbed
 * (see DESIGN.md, "Substitutions"). The numbers come from the Titan V /
 * V100 whitepaper [24] and the paper's own measurements; in particular
 * the paper reports that a well-tuned streaming kernel achieves at most
 * 86.7% of the 652.8 GB/s peak HBM2 bandwidth, which we adopt as the
 * streaming-efficiency ceiling.
 */

#ifndef HENTT_GPU_DEVICE_H
#define HENTT_GPU_DEVICE_H

#include <cstddef>
#include <string>

#include "common/int128.h"

namespace hentt::gpu {

/** Static hardware parameters of the modeled GPU. */
struct DeviceSpec {
    std::string name;

    // Compute organization.
    unsigned num_sms = 80;
    double clock_ghz = 1.455;
    /** INT32/FP32 issue lanes per SM (Volta: 64). */
    unsigned lanes_per_sm = 64;
    unsigned warp_size = 32;

    // Per-SM occupancy limits.
    std::size_t registers_per_sm = 65536;  ///< 32-bit registers
    unsigned max_registers_per_thread = 255;
    std::size_t smem_per_sm = 96 * 1024;
    unsigned max_threads_per_sm = 2048;
    unsigned max_blocks_per_sm = 32;

    // Memory system.
    std::size_t transaction_bytes = 32;
    double peak_dram_gbps = 652.8;
    /** Fraction of peak a perfectly streaming kernel achieves (paper:
     *  86.7%, i.e. 564.4 GB/s). */
    double streaming_efficiency = 0.867;
    /** L2 bandwidth relative to DRAM; bounds the transaction-issue roof
     *  that penalizes uncoalesced access patterns whose excess sectors
     *  hit in L2 (Fig. 7 behaviour). */
    double l2_bandwidth_ratio = 1.8;
    /** Fixed host-side cost per kernel launch (microseconds). Drives the
     *  batching behaviour of multi-launch algorithms (Fig. 3). */
    double kernel_launch_overhead_us = 4.0;
    /** Sustained IPC fraction on dependent modular-arithmetic chains
     *  (issue stalls, bank conflicts, barrier drain); calibrated against
     *  the paper's compute-bound anchors (Fig. 1, Fig. 12(b)). */
    double sustained_ipc = 0.30;

    /** Issue-slot throughput in int32-equivalent slots per second. */
    double
    SlotsPerSecond() const
    {
        return static_cast<double>(num_sms) * lanes_per_sm * clock_ghz *
               1e9;
    }

    /** Total resident-thread capacity of the machine. */
    std::size_t
    ThreadCapacity() const
    {
        return static_cast<std::size_t>(num_sms) * max_threads_per_sm;
    }

    /** The paper's evaluation platform. */
    static DeviceSpec TitanV();
};

}  // namespace hentt::gpu

#endif  // HENTT_GPU_DEVICE_H
