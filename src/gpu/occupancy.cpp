#include "gpu/occupancy.h"

#include <algorithm>
#include <stdexcept>

#include "common/bitops.h"

namespace hentt::gpu {

OccupancyResult
ComputeOccupancy(const DeviceSpec &dev, const KernelResources &res)
{
    if (res.threads_per_block == 0 || res.grid_blocks == 0) {
        throw std::invalid_argument("empty launch configuration");
    }
    OccupancyResult out;

    unsigned regs = res.regs_per_thread;
    if (regs > dev.max_registers_per_thread) {
        out.spilled_regs_per_thread = regs - dev.max_registers_per_thread;
        regs = dev.max_registers_per_thread;
    }

    const std::size_t regs_per_block =
        static_cast<std::size_t>(regs) * res.threads_per_block;
    const std::size_t by_regs =
        regs_per_block == 0 ? dev.max_blocks_per_sm
                            : dev.registers_per_sm / regs_per_block;
    const std::size_t by_smem =
        res.smem_per_block == 0 ? dev.max_blocks_per_sm
                                : dev.smem_per_sm / res.smem_per_block;
    const std::size_t by_threads =
        dev.max_threads_per_sm / res.threads_per_block;
    const std::size_t by_slots = dev.max_blocks_per_sm;

    std::size_t blocks = std::min({by_regs, by_smem, by_threads, by_slots});
    out.limiter = OccupancyLimiter::kThreadSlots;
    if (blocks == by_regs && by_regs < by_threads) {
        out.limiter = OccupancyLimiter::kRegisters;
    } else if (blocks == by_smem && by_smem < by_threads) {
        out.limiter = OccupancyLimiter::kSharedMemory;
    } else if (blocks == by_slots && by_slots < by_threads) {
        out.limiter = OccupancyLimiter::kBlockSlots;
    }
    blocks = std::max<std::size_t>(blocks, 1);  // a kernel always runs

    out.blocks_per_sm = static_cast<unsigned>(blocks);
    const double resident =
        static_cast<double>(blocks) * res.threads_per_block;
    out.resource_occupancy =
        std::min(1.0, resident / dev.max_threads_per_sm);

    // Grid-fill: the whole grid may be smaller than what the machine
    // could keep resident.
    const double grid_threads =
        static_cast<double>(res.grid_blocks) * res.threads_per_block;
    const double resident_machine = std::min(
        grid_threads,
        resident * dev.num_sms);
    out.effective_occupancy = std::min(
        out.resource_occupancy,
        resident_machine / static_cast<double>(dev.ThreadCapacity()));
    if (grid_threads < resident * dev.num_sms) {
        out.limiter = OccupancyLimiter::kGridSize;
    }
    return out;
}

unsigned
NttRegisterCost(std::size_t radix)
{
    // Calibration table (see header). Anchors: best radix 16; sharp
    // occupancy drop at 32; spill at 64/128 (paper Fig. 4).
    switch (radix) {
      case 2: return 26;
      case 4: return 30;
      case 8: return 38;
      case 16: return 56;
      case 32: return 100;
      case 64: return 296;   // > 255: spills
      case 128: return 416;  // > 255: spills heavily
      default:
        throw std::invalid_argument("unsupported NTT radix");
    }
}

unsigned
DftRegisterCost(std::size_t radix)
{
    // DFT threads carry no modulus/Shoup state and use float2 data.
    switch (radix) {
      case 2: return 24;
      case 4: return 28;
      case 8: return 36;
      case 16: return 48;
      case 32: return 72;
      case 64: return 130;
      case 128: return 300;  // > 255: spills
      default:
        throw std::invalid_argument("unsupported DFT radix");
    }
}

unsigned
SmemKernelRegisterCost(std::size_t points_per_thread)
{
    switch (points_per_thread) {
      case 2: return 24;
      case 4: return 32;
      case 8: return 64;
      default:
        throw std::invalid_argument("per-thread NTT size must be 2, 4, "
                                    "or 8");
    }
}

}  // namespace hentt::gpu
