#include "gpu/memory_model.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace hentt::gpu {

std::size_t
WarpTransactions(std::span<const u64> byte_addresses,
                 std::size_t access_bytes, std::size_t transaction_bytes)
{
    if (access_bytes == 0 || transaction_bytes == 0) {
        throw std::invalid_argument("access/transaction size must be > 0");
    }
    std::set<u64> sectors;
    for (u64 addr : byte_addresses) {
        const u64 first = addr / transaction_bytes;
        const u64 last = (addr + access_bytes - 1) / transaction_bytes;
        for (u64 s = first; s <= last; ++s) {
            sectors.insert(s);
        }
    }
    return sectors.size();
}

std::size_t
StridedWarpTransactions(std::size_t stride_bytes, std::size_t access_bytes,
                        std::size_t warp_size,
                        std::size_t transaction_bytes)
{
    if (access_bytes == 0) {
        throw std::invalid_argument("access size must be > 0");
    }
    if (stride_bytes == 0) {
        // Broadcast: all lanes hit the same sector(s).
        return (access_bytes + transaction_bytes - 1) / transaction_bytes;
    }
    // Lane i spans [i*stride, i*stride + access); count distinct sectors.
    std::set<u64> sectors;
    for (std::size_t i = 0; i < warp_size; ++i) {
        const u64 addr = static_cast<u64>(i) * stride_bytes;
        const u64 first = addr / transaction_bytes;
        const u64 last = (addr + access_bytes - 1) / transaction_bytes;
        for (u64 s = first; s <= last; ++s) {
            sectors.insert(s);
        }
    }
    return sectors.size();
}

double
CoalescingExpansion(std::size_t stride_bytes, std::size_t access_bytes,
                    std::size_t warp_size, std::size_t transaction_bytes)
{
    const std::size_t tx = StridedWarpTransactions(
        stride_bytes, access_bytes, warp_size, transaction_bytes);
    const double moved =
        static_cast<double>(tx) * static_cast<double>(transaction_bytes);
    const double useful =
        static_cast<double>(warp_size) * static_cast<double>(access_bytes);
    return moved / useful;
}

}  // namespace hentt::gpu
