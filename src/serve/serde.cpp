/** @file Wire ↔ HE conversions (see serde.h). */

#include "serve/serde.h"

#include <algorithm>
#include <cstring>

#include "he/batch_access.h"

namespace hentt::serve {

namespace {

Status
Invalid(const std::string &message, const char *where)
{
    return Status(ErrorCode::kInvalidArgument, message).WithFrame(where);
}

}  // namespace

WireParams
ToWire(const he::HeParams &params)
{
    WireParams wp;
    wp.degree = params.degree;
    wp.prime_count = params.prime_count;
    wp.prime_bits = params.prime_bits;
    wp.plain_modulus = params.plain_modulus;
    static_assert(sizeof(params.noise_stddev) == sizeof(u64));
    std::memcpy(&wp.noise_stddev_bits, &params.noise_stddev,
                sizeof(u64));
    return wp;
}

Result<he::HeParams>
ParamsFromWire(const WireParams &wp)
{
    he::HeParams params;
    params.degree = static_cast<std::size_t>(wp.degree);
    params.prime_count = static_cast<std::size_t>(wp.prime_count);
    params.prime_bits = wp.prime_bits;
    params.plain_modulus = wp.plain_modulus;
    std::memcpy(&params.noise_stddev, &wp.noise_stddev_bits,
                sizeof(u64));
    try {
        params.Validate();
    } catch (...) {
        return CurrentExceptionToStatus().WithFrame(
            "serve::ParamsFromWire");
    }
    return params;
}

WirePoly
ToWire(const RnsPoly &poly)
{
    WirePoly wp;
    wp.degree = poly.degree();
    wp.prime_count = static_cast<u32>(poly.prime_count());
    wp.domain =
        poly.domain() == RnsPoly::Domain::kEvaluation ? u8{1} : u8{0};
    wp.lazy = poly.lazy() ? u8{1} : u8{0};
    const std::span<const u64> flat = poly.flat();
    wp.words.assign(flat.begin(), flat.end());
    return wp;
}

Result<RnsPoly>
PolyFromWire(const he::HeContext &ctx, const WirePoly &wp)
{
    if (wp.degree != ctx.degree()) {
        return Invalid("poly degree " + std::to_string(wp.degree) +
                           " does not match the session's " +
                           std::to_string(ctx.degree()),
                       "serve::PolyFromWire");
    }
    if (wp.prime_count == 0 ||
        wp.prime_count > ctx.params().prime_count) {
        return Invalid("poly prime count " +
                           std::to_string(wp.prime_count) +
                           " outside the session's chain [1, " +
                           std::to_string(ctx.params().prime_count) +
                           "]",
                       "serve::PolyFromWire");
    }
    if (wp.lazy != 0 && wp.domain != 1) {
        return Invalid("lazy flag on a coefficient-domain poly",
                       "serve::PolyFromWire");
    }
    std::shared_ptr<const RnsNttContext> level =
        ctx.level_context(wp.prime_count);
    const std::size_t degree = level->degree();
    if (wp.words.size() !=
        degree * static_cast<std::size_t>(wp.prime_count)) {
        return Invalid("poly word count " +
                           std::to_string(wp.words.size()) +
                           " does not match shape",
                       "serve::PolyFromWire");
    }
    // Residues must live in the range the kernels assume: [0, p) for
    // fully reduced rows, [0, 4p) for lazy evaluation rows. Anything
    // else would silently corrupt modular arithmetic downstream.
    const RnsBasis &basis = level->basis();
    for (std::size_t l = 0; l < wp.prime_count; ++l) {
        const u64 p = basis.prime(l);
        const u64 bound = wp.lazy != 0 ? 4 * p : p;
        const u64 *row = wp.words.data() + l * degree;
        for (std::size_t i = 0; i < degree; ++i) {
            if (row[i] >= bound) {
                return Invalid(
                    "residue " + std::to_string(row[i]) + " at limb " +
                        std::to_string(l) + ", coeff " +
                        std::to_string(i) + " is outside [0, " +
                        std::to_string(bound) + ")",
                    "serve::PolyFromWire");
            }
        }
    }
    RnsPoly poly(level);
    std::copy(wp.words.begin(), wp.words.end(), poly.flat().begin());
    if (wp.domain == 1) {
        he::detail::RnsPolyBatchAccess::MarkEvaluation(poly,
                                                       wp.lazy != 0);
    }
    return poly;
}

WireCiphertext
ToWire(const he::Ciphertext &ct)
{
    WireCiphertext wct;
    wct.parts.reserve(ct.parts.size());
    for (const RnsPoly &part : ct.parts) {
        wct.parts.push_back(ToWire(part));
    }
    return wct;
}

Result<he::Ciphertext>
CiphertextFromWire(const he::HeContext &ctx, const WireCiphertext &wct)
{
    if (wct.parts.size() < 2 || wct.parts.size() > 3) {
        return Invalid("ciphertext with " +
                           std::to_string(wct.parts.size()) +
                           " parts (expected 2 or 3)",
                       "serve::CiphertextFromWire");
    }
    he::Ciphertext ct;
    ct.parts.reserve(wct.parts.size());
    for (const WirePoly &wp : wct.parts) {
        if (wp.prime_count != wct.parts[0].prime_count) {
            return Invalid("ciphertext parts at different levels",
                           "serve::CiphertextFromWire");
        }
        Result<RnsPoly> part = PolyFromWire(ctx, wp);
        if (!part.ok()) {
            return part.status().WithFrame(
                "serve::CiphertextFromWire");
        }
        ct.parts.push_back(std::move(*part));
    }
    return ct;
}

WireRelinKey
ToWire(const he::RelinKey &rk)
{
    WireRelinKey wrk;
    wrk.levels.reserve(rk.levels.size());
    for (const he::RelinKey::LevelKeys &level : rk.levels) {
        WireRelinKey::Level wl;
        wl.b.reserve(level.b.size());
        wl.a.reserve(level.a.size());
        for (const RnsPoly &poly : level.b) {
            wl.b.push_back(ToWire(poly));
        }
        for (const RnsPoly &poly : level.a) {
            wl.a.push_back(ToWire(poly));
        }
        wrk.levels.push_back(std::move(wl));
    }
    return wrk;
}

Result<he::RelinKey>
RelinKeyFromWire(const he::HeContext &ctx, const WireRelinKey &wrk)
{
    const std::size_t chain = ctx.params().prime_count;
    if (wrk.levels.size() != chain) {
        return Invalid("relin key with " +
                           std::to_string(wrk.levels.size()) +
                           " levels (the session's chain has " +
                           std::to_string(chain) + ")",
                       "serve::RelinKeyFromWire");
    }
    he::RelinKey rk;
    rk.levels.resize(chain);
    for (std::size_t level = 1; level <= chain; ++level) {
        const WireRelinKey::Level &wl = wrk.levels[level - 1];
        if (wl.b.size() != level || wl.a.size() != level) {
            return Invalid("relin key level " + std::to_string(level) +
                               " holds " + std::to_string(wl.b.size()) +
                               "/" + std::to_string(wl.a.size()) +
                               " digit pairs (expected " +
                               std::to_string(level) + ")",
                           "serve::RelinKeyFromWire");
        }
        he::RelinKey::LevelKeys &lk = rk.levels[level - 1];
        lk.b.reserve(level);
        lk.a.reserve(level);
        for (const std::vector<WirePoly> *src : {&wl.b, &wl.a}) {
            std::vector<RnsPoly> &dst = src == &wl.b ? lk.b : lk.a;
            for (const WirePoly &wp : *src) {
                // Keys are stored (and travel) in the evaluation
                // domain at their level's width — see RelinKey.
                if (wp.prime_count != level || wp.domain != 1) {
                    return Invalid(
                        "relin key digit at level " +
                            std::to_string(level) +
                            " is not an evaluation-domain poly of " +
                            std::to_string(level) + " limbs",
                        "serve::RelinKeyFromWire");
                }
                Result<RnsPoly> poly = PolyFromWire(ctx, wp);
                if (!poly.ok()) {
                    return poly.status().WithFrame(
                        "serve::RelinKeyFromWire");
                }
                dst.push_back(std::move(*poly));
            }
        }
    }
    return rk;
}

}  // namespace hentt::serve
