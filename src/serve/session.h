/**
 * @file
 * Serving-layer sessions: per-connection HE state over shared engines.
 *
 * A session is what one client connection owns — its parameters, its
 * per-session HeContext, and the relinearization keys it loaded. The
 * context layers over process-shared immutable state twice: the
 * HeEngineState cache deduplicates twiddle tables and modulus-chain
 * contexts across sessions with identical parameters, and the worker's
 * ScratchArena is lent to every session so kernel scratch is allocated
 * once per worker, not once per client. Two sessions with the same
 * parameters therefore hold mutually compatible ciphertexts (same
 * RnsNttContext instances) — the property cross-client batching rests
 * on.
 *
 * SessionManager tracks the live set: creation assigns ids, connection
 * teardown releases them (the e2e suite asserts the count returns to
 * zero — no orphaned sessions).
 */

#ifndef HENTT_SERVE_SESSION_H
#define HENTT_SERVE_SESSION_H

#include <map>
#include <memory>

#include "common/mutex.h"
#include "he/bgv.h"

namespace hentt::serve {

/** One client's serving state (see file comment). */
struct Session {
    u64 id = 0;
    std::shared_ptr<const he::HeContext> ctx;

    /** Install the keys a LoadKeys frame carried, replacing any
     *  previous set. Safe against in-flight requests: they pinned the
     *  old version at submit time (see relin_key()), so the swap never
     *  destroys a key the worker is dereferencing. */
    void
    SetRelinKey(std::shared_ptr<const he::RelinKey> rk)
        HENTT_EXCLUDES(rk_mutex_)
    {
        MutexLock lock(rk_mutex_);
        rk_ = std::move(rk);
    }

    /** The currently loaded keys (null before LoadKeys). Callers get a
     *  shared_ptr copy that pins this key version for as long as they
     *  hold it — the coalescer copies it into the request at submit
     *  time, so a concurrent key reload cannot invalidate a request
     *  already admitted. */
    [[nodiscard]] std::shared_ptr<const he::RelinKey>
    relin_key() const HENTT_EXCLUDES(rk_mutex_)
    {
        MutexLock lock(rk_mutex_);
        return rk_;
    }

  private:
    /** Leaf lock (nothing is acquired under it) guarding the key slot
     *  against a LoadKeys/Submit race across threads. */
    mutable Mutex rk_mutex_;
    std::shared_ptr<const he::RelinKey> rk_
        HENTT_GUARDED_BY(rk_mutex_);
};

/** Thread-safe registry of live sessions. */
class SessionManager
{
  public:
    /** @param arena the worker arena lent to every session context. */
    explicit SessionManager(std::shared_ptr<he::ScratchArena> arena)
        : arena_(std::move(arena))
    {
    }

    /**
     * Create a session for @p params: acquires the shared engine state
     * (cache hit when any live session already uses these parameters)
     * and builds the session context over it and the worker arena.
     * kInvalidArgument for parameter sets the library rejects.
     */
    [[nodiscard]] Result<std::shared_ptr<Session>>
    Create(const he::HeParams &params) HENTT_EXCLUDES(mutex_);

    /** Look up a live session; kFailedPrecondition when unknown. */
    [[nodiscard]] Result<std::shared_ptr<Session>> Get(u64 id)
        HENTT_EXCLUDES(mutex_);

    /** Drop a session from the registry (outstanding shared_ptrs stay
     *  valid until released). Idempotent. */
    void Close(u64 id) HENTT_EXCLUDES(mutex_);

    /** Live sessions right now. */
    std::size_t ActiveCount() const HENTT_EXCLUDES(mutex_);

    /** Sessions ever created. */
    u64 CreatedCount() const HENTT_EXCLUDES(mutex_);

  private:
    std::shared_ptr<he::ScratchArena> arena_;
    mutable Mutex mutex_;
    u64 next_id_ HENTT_GUARDED_BY(mutex_) = 1;
    u64 created_ HENTT_GUARDED_BY(mutex_) = 0;
    std::map<u64, std::shared_ptr<Session>> sessions_
        HENTT_GUARDED_BY(mutex_);
};

}  // namespace hentt::serve

#endif  // HENTT_SERVE_SESSION_H
