/**
 * @file
 * hentt-daemon — the long-lived multi-client HE evaluation server.
 *
 * One unix-domain socket listener; one thread and one Session per
 * accepted connection; one Coalescer turning all connections' traffic
 * into shared HeOpGraph wavefronts. The per-connection thread only
 * parses frames, validates payloads against its session, and
 * enqueues/polls — every HE kernel runs on the coalescer worker, so a
 * slow client never holds a compute lock.
 *
 * Error contract: any failure while serving a parseable frame —
 * malformed payload, validation failure, injected fault, evaluation
 * error — is answered with a kError frame carrying the full Status
 * (code + message + provenance) and the connection stays up. Only an
 * unparseable *stream* (bad framing bytes: resync is impossible) is
 * answered with a final kError and a close, and a clean peer
 * disconnect tears the session down (its queued requests and
 * undelivered results are dropped — no orphans).
 *
 * Shutdown: a kShutdown frame (or Stop()) stops the listener, wakes
 * Wait(), shuts every live connection down, joins all threads, stops
 * the coalescer, and unlinks the socket.
 */

#ifndef HENTT_SERVE_DAEMON_H
#define HENTT_SERVE_DAEMON_H

#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "serve/coalescer.h"
#include "serve/session.h"

namespace hentt::serve {

/** Daemon knobs. */
struct DaemonConfig {
    /** Filesystem path of the AF_UNIX listening socket. */
    std::string socket_path;
    /** Admission-control settings handed to the Coalescer. */
    BatchConfig batch;
};

/** The server (see file comment). */
class Daemon
{
  public:
    explicit Daemon(DaemonConfig config);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /** Bind + listen + start the coalescer and accept loop. */
    [[nodiscard]] Status Start() HENTT_EXCLUDES(mutex_);

    /** Ask the daemon to stop (non-blocking; kShutdown calls this). */
    void RequestStop() HENTT_EXCLUDES(mutex_);

    /**
     * Block until a stop is requested, then tear everything down:
     * close the listener and every live connection, join all threads,
     * stop the coalescer, unlink the socket. The CLI main's body.
     */
    void Wait() HENTT_EXCLUDES(mutex_);

    /** RequestStop() + Wait() — the test harness's one-call stop. */
    void Stop()
    {
        RequestStop();
        Wait();
    }

    const std::string &socket_path() const
    {
        return config_.socket_path;
    }

    /** Live counters: coalescer batching stats overlaid with the
     *  session registry's counts. */
    WireStats Stats() const;

    SessionManager &sessions() { return sessions_; }
    Coalescer &coalescer() { return coalescer_; }

  private:
    void AcceptLoop() HENTT_EXCLUDES(mutex_);
    void ServeConnection(int fd) HENTT_EXCLUDES(mutex_);

    /** Per-connection mutable state. */
    struct ConnState {
        std::shared_ptr<Session> session;
        /** kShutdown was served: call RequestStop() *after* the kOk
         *  reply is written. Stopping first races Wait()'s
         *  connection shutdown against our own reply write. */
        bool stop_after_reply = false;
    };

    /**
     * Serve one parseable request frame: returns the reply frame.
     * Never throws — every failure becomes a kError reply. Sets
     * @p close_after for frames that end the connection (kShutdown).
     */
    Frame HandleFrame(ConnState &conn, const Frame &request,
                      bool &close_after);

    DaemonConfig config_;
    std::shared_ptr<he::ScratchArena> arena_;
    SessionManager sessions_;
    Coalescer coalescer_;

    mutable Mutex mutex_;
    CondVar cv_stop_;
    bool running_ HENTT_GUARDED_BY(mutex_) = false;
    bool stop_requested_ HENTT_GUARDED_BY(mutex_) = false;
    int listen_fd_ HENTT_GUARDED_BY(mutex_) = -1;
    std::set<int> conn_fds_ HENTT_GUARDED_BY(mutex_);
    /** Live connection threads, keyed by their fd. A finishing
     *  connection moves its own handle to done_threads_; AcceptLoop
     *  reaps that list on every accept, so a long-lived daemon never
     *  accumulates unjoined handles (Wait() joins whatever is left
     *  of both at shutdown). */
    std::map<int, std::thread> conn_threads_ HENTT_GUARDED_BY(mutex_);
    std::vector<std::thread> done_threads_ HENTT_GUARDED_BY(mutex_);

    std::thread accept_thread_;
};

}  // namespace hentt::serve

#endif  // HENTT_SERVE_DAEMON_H
