/**
 * @file
 * The hentt serving wire protocol: versioned, length-prefixed binary
 * frames over a byte stream (in practice a unix-domain socket).
 *
 * Modeled on the Nix daemon/worker protocol: a raw magic + version
 * handshake first (both sides learn the negotiated version before any
 * frame flows), then length-prefixed frames each tagged with the
 * protocol version and a frame type. Every reply the daemon can send —
 * including every failure — is a frame; a malformed request earns a
 * kError frame carrying the full Status (code, message, provenance
 * chain), never a dropped connection.
 *
 * Layering: this file is the *codec* — pure bytes-to-structs and back,
 * no sockets, no HE context. Message payloads decode into
 * self-contained Wire* structs (plain integers and word vectors), so
 * the codec is property-testable in isolation: any byte string either
 * decodes cleanly or fails with kInvalidArgument, with every read
 * bounds-checked (no over-read, no crash). serve/serde.h converts
 * Wire* structs to real HE types against a context; serve/wire_io.h
 * (below in this header) moves frames over file descriptors.
 */

#ifndef HENTT_SERVE_WIRE_H
#define HENTT_SERVE_WIRE_H

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/int128.h"
#include "common/status.h"

namespace hentt::serve {

// ---------------------------------------------------------------------
// Protocol constants.
// ---------------------------------------------------------------------

/** Client-hello magic ("hentt!cl" LE) opening the handshake. */
inline constexpr u64 kClientMagic = 0x6c632174746e6568ull;
/** Daemon-hello magic ("hentt!sv" LE) answering it. */
inline constexpr u64 kDaemonMagic = 0x76732174746e6568ull;

/** Highest protocol version this build speaks. */
inline constexpr u32 kProtocolVersion = 1;
/** Lowest protocol version this build still accepts. */
inline constexpr u32 kMinProtocolVersion = 1;

/** Hard cap on one frame's payload (a full 512-session ciphertext
 *  batch at bench parameters fits with two orders of magnitude to
 *  spare; anything larger is a protocol error, not a request). */
inline constexpr std::size_t kMaxFramePayload = 64u << 20;

/** Decode-time sanity caps (each violation is kInvalidArgument). */
inline constexpr std::size_t kMaxDegree = 1u << 20;
inline constexpr std::size_t kMaxPrimeCount = 64;
inline constexpr std::size_t kMaxCiphertextParts = 8;
inline constexpr std::size_t kMaxProgramOps = 1u << 20;
inline constexpr std::size_t kMaxStringBytes = 64u << 10;
inline constexpr std::size_t kMaxStatusFrames = 256;

/** Frame types. Requests flow client→daemon, replies daemon→client. */
enum class FrameType : u8 {
    kCreateSession = 1,   ///< HeParams → kSessionCreated | kError
    kSessionCreated = 2,  ///< session id
    kLoadKeys = 3,        ///< WireRelinKey → kOk | kError
    kOk = 4,              ///< empty success reply
    kSubmitGraph = 5,     ///< WireProgram → kSubmitted | kError
    kSubmitted = 6,       ///< request id (evaluation is async)
    kPoll = 7,            ///< request id → kPending | kDone | kError
    kPending = 8,         ///< request still queued/executing
    kDone = 9,            ///< program outputs (ciphertexts)
    kError = 10,          ///< WireStatus: code + message + provenance
    kCloseSession = 11,   ///< → kOk (releases session state)
    kShutdown = 12,       ///< → kOk, then the daemon stops
    kPing = 13,           ///< → kPong (liveness)
    kPong = 14,
    kGetStats = 15,       ///< → kStatsReply
    kStatsReply = 16,     ///< WireStats
};

/** True for the type values the enum actually names. */
bool IsKnownFrameType(u8 type);

/** Display name ("CreateSession", "Error", ...). */
const char *FrameTypeName(FrameType type);

/** One protocol frame: version + type + opaque payload bytes. */
struct Frame {
    u8 version = kProtocolVersion;
    FrameType type = FrameType::kError;
    std::vector<u8> payload;
};

// ---------------------------------------------------------------------
// Wire message structs — self-contained (no HE context needed).
// ---------------------------------------------------------------------

/** HeParams on the wire (CreateSession payload). noise_stddev travels
 *  by bit pattern so client and daemon agree exactly. */
struct WireParams {
    u64 degree = 0;
    u64 prime_count = 0;
    u32 prime_bits = 0;
    u64 plain_modulus = 0;
    u64 noise_stddev_bits = 0;
};

/** One RNS polynomial: shape + domain tag + limb-major words. */
struct WirePoly {
    u64 degree = 0;
    u32 prime_count = 0;
    u8 domain = 0;  ///< 0 coefficient, 1 evaluation
    u8 lazy = 0;
    std::vector<u64> words;  ///< prime_count x degree, limb-major
};

/** Ciphertext: 2 or 3 parts (degree 1 or 2). */
struct WireCiphertext {
    std::vector<WirePoly> parts;
};

/** Relinearization key: per level, the b and a digit polynomials. */
struct WireRelinKey {
    struct Level {
        std::vector<WirePoly> b;
        std::vector<WirePoly> a;
    };
    std::vector<Level> levels;
};

/** Program opcodes (slot-machine form of the HeOpGraph ops). */
enum class WireOp : u8 {
    kAdd = 0,
    kSub = 1,
    kMul = 2,
    kRelin = 3,
    kModSwitch = 4,
    kRelinModSwitch = 5,
};

/**
 * An evaluation request: input ciphertexts, ops over slots, and which
 * slots to return. Slot s < inputs.size() names an input; slot
 * inputs.size() + k names op k's result. Ops may only reference
 * earlier slots (a DAG by construction).
 */
struct WireProgram {
    struct Op {
        WireOp op;
        u32 a = 0;
        u32 b = 0;  ///< ignored by single-operand ops
    };
    std::vector<WireCiphertext> inputs;
    std::vector<Op> ops;
    std::vector<u32> outputs;  ///< slot indices to send back in kDone
};

/** Status on the wire (kError payload): code + message + provenance. */
struct WireStatus {
    u8 code = 0;  ///< ErrorCode as integer
    std::string message;
    std::vector<std::string> frames;  ///< innermost first
};

/** Daemon counters (kStatsReply payload). The batching observability
 *  hook: tests assert coalescing happened from these. */
struct WireStats {
    u64 sessions_created = 0;
    u64 sessions_active = 0;
    u64 requests_submitted = 0;
    u64 requests_completed = 0;
    u64 requests_failed = 0;
    u64 batches_executed = 0;
    u64 coalesced_requests = 0;  ///< requests that shared a batch
    u64 max_batch_observed = 0;  ///< largest requests-per-batch yet
};

// ---------------------------------------------------------------------
// Bounds-checked primitive codec.
// ---------------------------------------------------------------------

/**
 * Little-endian appender for payload construction. Append-only; the
 * buffer is the caller's (so one reply reuses one allocation).
 */
class Writer
{
  public:
    explicit Writer(std::vector<u8> &out) : out_(out) {}

    void U8(u8 v) { out_.push_back(v); }
    void U32(u32 v);
    void U64(u64 v);
    void Str(const std::string &s);         ///< u32 length + bytes
    void Words(std::span<const u64> words); ///< u64 count + words

  private:
    std::vector<u8> &out_;
};

/**
 * Bounds-checked little-endian cursor over a payload. Every read past
 * the end throws kInvalidArgument (via the Status exception bridge) —
 * decoders built on it can never over-read a malformed frame. The
 * frame-level Decode* helpers below catch and return Result instead.
 */
class Reader
{
  public:
    explicit Reader(std::span<const u8> data) : data_(data) {}

    u8 U8();
    u32 U32();
    u64 U64();
    std::string Str(std::size_t max_bytes = kMaxStringBytes);
    std::vector<u64> Words(std::size_t max_words);

    std::size_t remaining() const { return data_.size() - pos_; }

    /** Throws kInvalidArgument unless the payload was fully consumed —
     *  trailing garbage means a mis-framed or corrupt message. */
    void ExpectEnd() const;

  private:
    void Need(std::size_t bytes) const;

    std::span<const u8> data_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Message codecs. Encode* builds a payload; Decode* parses one and
// returns kInvalidArgument on any malformation (truncation, trailing
// bytes, out-of-range shape) — never throws, never over-reads.
// ---------------------------------------------------------------------

std::vector<u8> EncodeParams(const WireParams &params);
[[nodiscard]] Result<WireParams>
DecodeParams(std::span<const u8> payload);

std::vector<u8> EncodePoly(const WirePoly &poly);
[[nodiscard]] Result<WirePoly> DecodePoly(std::span<const u8> payload);

std::vector<u8> EncodeCiphertext(const WireCiphertext &ct);
[[nodiscard]] Result<WireCiphertext>
DecodeCiphertext(std::span<const u8> payload);

std::vector<u8> EncodeRelinKey(const WireRelinKey &rk);
[[nodiscard]] Result<WireRelinKey>
DecodeRelinKey(std::span<const u8> payload);

std::vector<u8> EncodeProgram(const WireProgram &program);
[[nodiscard]] Result<WireProgram>
DecodeProgram(std::span<const u8> payload);

std::vector<u8> EncodeStatus(const Status &status);
[[nodiscard]] Result<WireStatus>
DecodeStatus(std::span<const u8> payload);

std::vector<u8> EncodeStats(const WireStats &stats);
[[nodiscard]] Result<WireStats>
DecodeStats(std::span<const u8> payload);

std::vector<u8> EncodeU64Payload(u64 value);
[[nodiscard]] Result<u64> DecodeU64Payload(std::span<const u8> payload);

/** kDone payload: the requested output ciphertexts in order. */
std::vector<u8>
EncodeCiphertextList(const std::vector<WireCiphertext> &cts);
[[nodiscard]] Result<std::vector<WireCiphertext>>
DecodeCiphertextList(std::span<const u8> payload);

/** Reassemble a WireStatus into a Status (kOk code maps to an
 *  kInternal error — an Error frame must carry an error). */
Status WireStatusToStatus(const WireStatus &ws);

// ---------------------------------------------------------------------
// Frame codec over byte buffers (testable without sockets).
// ---------------------------------------------------------------------

/** Serialize a frame: [u32 payload_len][u8 version][u8 type][payload]. */
std::vector<u8> EncodeFrame(const Frame &frame);

/**
 * Parse one frame from the front of @p data. On success sets
 * @p consumed to the bytes eaten. An incomplete buffer (header or
 * payload still in flight) returns kUnavailable — the stream reader
 * waits for more bytes; a structurally invalid one (oversized payload,
 * unknown type, unsupported version) returns kInvalidArgument.
 */
[[nodiscard]] Result<Frame>
DecodeFrameFromBuffer(std::span<const u8> data, std::size_t &consumed);

// ---------------------------------------------------------------------
// Blocking frame / handshake I/O over file descriptors.
// ---------------------------------------------------------------------

/** Write all of @p data to @p fd (EINTR-safe). kUnavailable on a
 *  closed/failed peer. */
[[nodiscard]] Status WriteAll(int fd, std::span<const u8> data);

/** Read exactly @p data.size() bytes (EINTR-safe). kUnavailable on
 *  EOF or error. */
[[nodiscard]] Status ReadAll(int fd, std::span<u8> data);

/** Write one frame. */
[[nodiscard]] Status WriteFrame(int fd, const Frame &frame);

/**
 * Read one frame. kUnavailable when the peer closed cleanly between
 * frames; kInvalidArgument on malformed framing (the caller should
 * report and close).
 */
[[nodiscard]] Result<Frame> ReadFrame(int fd);

/**
 * Client half of the handshake on a fresh connection: send magic +
 * our version, read the daemon's magic + version. Returns the
 * negotiated (min) version, or kInvalidArgument on a magic/version
 * mismatch, kUnavailable on a dead peer.
 */
[[nodiscard]] Result<u32> ClientHandshake(int fd);

/** Daemon half: read the client hello, answer ours. */
[[nodiscard]] Result<u32> DaemonHandshake(int fd);

}  // namespace hentt::serve

#endif  // HENTT_SERVE_WIRE_H
