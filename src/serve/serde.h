/**
 * @file
 * Wire ↔ HE-type conversion for the serving layer.
 *
 * wire.h decodes bytes into self-contained Wire* structs; this layer
 * validates them against a session's HeContext and materialises real
 * RnsPoly/Ciphertext/RelinKey values (and back). Validation failures —
 * shape mismatch against the session parameters, residues outside a
 * prime's range, a key with the wrong level structure — come back as
 * kInvalidArgument Status, so a hostile or buggy client can never push
 * an out-of-contract value into the kernels.
 *
 * Deserialized evaluation-domain polynomials (relin keys travel in the
 * evaluation domain, matching keygen) are relabeled through the
 * sanctioned he::detail::RnsPolyBatchAccess path.
 */

#ifndef HENTT_SERVE_SERDE_H
#define HENTT_SERVE_SERDE_H

#include <memory>

#include "he/bgv.h"
#include "serve/wire.h"

namespace hentt::serve {

/** HeParams → wire form (noise_stddev by bit pattern). */
WireParams ToWire(const he::HeParams &params);

/** Wire form → HeParams; kInvalidArgument when HeParams::Validate
 *  rejects the combination. */
[[nodiscard]] Result<he::HeParams> ParamsFromWire(const WireParams &wp);

/** RnsPoly → wire form (shape + domain tag + limb-major words). */
WirePoly ToWire(const RnsPoly &poly);

/**
 * Wire form → RnsPoly at the level of @p ctx the poly's prime_count
 * selects. Checks shape against the context and every residue against
 * its prime's range ([0, p), or [0, 4p) for lazy evaluation rows).
 */
[[nodiscard]] Result<RnsPoly>
PolyFromWire(const he::HeContext &ctx, const WirePoly &wp);

/** Ciphertext → wire form. */
WireCiphertext ToWire(const he::Ciphertext &ct);

/** Wire form → Ciphertext (2 or 3 parts, uniform level). */
[[nodiscard]] Result<he::Ciphertext>
CiphertextFromWire(const he::HeContext &ctx, const WireCiphertext &wct);

/** RelinKey → wire form. */
WireRelinKey ToWire(const he::RelinKey &rk);

/**
 * Wire form → RelinKey. Requires exactly the level structure keygen
 * produces for @p ctx's parameters: one level set per chain level,
 * level L holding L evaluation-domain (b, a) digit pairs.
 */
[[nodiscard]] Result<he::RelinKey>
RelinKeyFromWire(const he::HeContext &ctx, const WireRelinKey &wrk);

}  // namespace hentt::serve

#endif  // HENTT_SERVE_SERDE_H
