/**
 * @file
 * Coalescer — the admission-control queue that turns many clients'
 * independent requests into single HeOpGraph wavefronts.
 *
 * This is the serving layer's scale play, the paper's batching argument
 * lifted one more level: limb-batching amortised dispatch overhead
 * across a polynomial's rows, ciphertext-batching across one caller's
 * ops, and the coalescer amortises it across *clients*. Requests from
 * any number of sessions land in one queue; a worker admits up to
 * max_batch of them into a single graph, so every pool dispatch of
 * every wavefront stage spans all in-flight traffic. A max-wait
 * deadline bounds the admission window — a lone client pays at most
 * max_wait of added latency, never an unbounded starve.
 *
 * Key handling: the batch graph carries per-node relinearization keys
 * (each request's ops point at the key version its session had loaded
 * at submit time, pinned via shared_ptr so a mid-flight key reload
 * never invalidates them), so keyless
 * stages (Add/Mul/ModSwitch — including the expensive tensor product)
 * batch across *all* clients while key-switching stages sub-batch per
 * client key (see HeOpGraph).
 *
 * Locking: the queue/result mutex is a leaf lock released before any
 * kernel executes — batch execution holds NO serve lock, so the
 * documented HeOpGraph → ScratchArena → ThreadPool order is untouched
 * (ARCHITECTURE.md lock-ordering table).
 */

#ifndef HENTT_SERVE_COALESCER_H
#define HENTT_SERVE_COALESCER_H

#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "serve/session.h"
#include "serve/wire.h"

namespace hentt::serve {

/** Admission-control knobs. */
struct BatchConfig {
    /** Most requests admitted into one wavefront batch. */
    std::size_t max_batch = 64;
    /** Longest the admission window stays open once a request is
     *  queued — the lone-client latency bound. */
    std::chrono::microseconds max_wait{2000};
    /** false = the unbatched ablation: every request executes as its
     *  own batch of one (bench_serve's comparison baseline). */
    bool coalesce = true;
};

/** Outcome of polling a request. */
struct PollResult {
    /** False while the request is queued or executing. */
    bool done = false;
    /** OK iff the whole program evaluated; otherwise the first failed
     *  output's Status with full provenance. */
    Status status;
    std::vector<he::Ciphertext> outputs;
};

/** The admission queue + its worker thread (see file comment). */
class Coalescer
{
  public:
    Coalescer(BatchConfig config,
              std::shared_ptr<he::ScratchArena> arena);
    ~Coalescer();

    Coalescer(const Coalescer &) = delete;
    Coalescer &operator=(const Coalescer &) = delete;

    /** Launch the worker thread. */
    void Start();

    /** Stop the worker; every still-queued request settles with
     *  kUnavailable (pollers wake). Idempotent. */
    void Stop();

    /**
     * Enqueue a program for @p session: materialised inputs, ops over
     * slots (inputs first, then op results), and the output slots to
     * return. Fails fast with kFailedPrecondition when the program
     * key-switches but the session has loaded no keys. Returns the
     * request id to poll.
     */
    [[nodiscard]] Result<u64>
    Submit(std::shared_ptr<Session> session,
           std::vector<he::Ciphertext> inputs,
           std::vector<WireProgram::Op> ops, std::vector<u32> outputs)
        HENTT_EXCLUDES(mutex_);

    /** Non-blocking result check; a done result is consumed (a second
     *  poll of the same id reports it unknown). Results are scoped to
     *  the submitting session: @p session_id must match the owner
     *  recorded at Submit, otherwise — and for genuinely unknown ids —
     *  the poll comes back done with kFailedPrecondition ("unknown
     *  request id", deliberately indistinguishable so ids enumerate
     *  nothing), and the owner's result is left untouched. */
    [[nodiscard]] PollResult Poll(u64 request_id, u64 session_id)
        HENTT_EXCLUDES(mutex_);

    /** Blocking Poll: waits until the request settles. Same ownership
     *  scoping — a foreign @p session_id fails immediately rather than
     *  blocking on a result it may never consume. */
    [[nodiscard]] PollResult Wait(u64 request_id, u64 session_id)
        HENTT_EXCLUDES(mutex_);

    /** Abandon every request @p session_id owns — queued ones are
     *  dropped, executing ones complete and are discarded, undelivered
     *  results are freed. Connection-teardown hook (no orphans). */
    void DropSessionRequests(u64 session_id) HENTT_EXCLUDES(mutex_);

    /** Batching counters (the session_* fields stay zero; the daemon
     *  overlays them from its SessionManager). */
    WireStats StatsSnapshot() const HENTT_EXCLUDES(mutex_);

    /** The worker arena sessions borrow. */
    const std::shared_ptr<he::ScratchArena> &arena() const
    {
        return arena_;
    }

  private:
    struct Request {
        u64 id = 0;
        std::shared_ptr<Session> session;
        /** The session's key version at submit time, pinned so a
         *  concurrent LoadKeys reload cannot destroy the key this
         *  request's graph nodes point at mid-execution. */
        std::shared_ptr<const he::RelinKey> rk;
        std::vector<he::Ciphertext> inputs;
        std::vector<WireProgram::Op> ops;
        std::vector<u32> outputs;
        std::chrono::steady_clock::time_point arrival;
    };

    void WorkerLoop() HENTT_EXCLUDES(mutex_);

    /** Run one admitted batch through a shared HeOpGraph per engine
     *  state. Called with no serve lock held. */
    std::vector<std::pair<u64, PollResult>>
    ExecuteBatch(std::vector<Request> &batch);

    BatchConfig config_;
    std::shared_ptr<he::ScratchArena> arena_;

    mutable Mutex mutex_;
    CondVar cv_work_;  ///< signalled on submit and stop
    CondVar cv_done_;  ///< signalled when results land
    bool stop_ HENTT_GUARDED_BY(mutex_) = false;
    bool started_ HENTT_GUARDED_BY(mutex_) = false;
    u64 next_request_id_ HENTT_GUARDED_BY(mutex_) = 1;
    std::deque<Request> queue_ HENTT_GUARDED_BY(mutex_);
    /** Requests admitted or queued, keyed by id → owning session id.
     *  Erased when the result lands (or the request is dropped). */
    std::map<u64, u64> inflight_ HENTT_GUARDED_BY(mutex_);
    /** Settled, not-yet-polled results, id → result. */
    std::map<u64, PollResult> done_ HENTT_GUARDED_BY(mutex_);
    /** Owning session of each done_ entry (so a closing connection can
     *  free results nobody will poll). */
    std::map<u64, u64> done_owner_ HENTT_GUARDED_BY(mutex_);
    WireStats stats_ HENTT_GUARDED_BY(mutex_);

    std::thread worker_;
};

}  // namespace hentt::serve

#endif  // HENTT_SERVE_COALESCER_H
