/** @file Wire codec + frame I/O implementation (see wire.h). */

#include "serve/wire.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace hentt::serve {

namespace {

/** Wrap a throwing decode body into a Result with one catch site. */
template <typename T, typename Fn>
Result<T>
DecodeGuard(const char *what, Fn &&body)
{
    try {
        return body();
    } catch (...) {
        Status status = CurrentExceptionToStatus().WithFrame(what);
        if (status.code() != ErrorCode::kInvalidArgument) {
            // The decode contract: malformed bytes are always
            // kInvalidArgument, whatever the inner throw was.
            status = Status(ErrorCode::kInvalidArgument,
                            status.ToString())
                         .WithFrame(what);
        }
        return status;
    }
}

[[noreturn]] void
RaiseDecode(const std::string &message)
{
    ThrowStatus(Status(ErrorCode::kInvalidArgument, message)
                    .WithFrame("serve::Reader"));
}

}  // namespace

bool
IsKnownFrameType(u8 type)
{
    return type >= static_cast<u8>(FrameType::kCreateSession) &&
           type <= static_cast<u8>(FrameType::kStatsReply);
}

const char *
FrameTypeName(FrameType type)
{
    switch (type) {
      case FrameType::kCreateSession:
        return "CreateSession";
      case FrameType::kSessionCreated:
        return "SessionCreated";
      case FrameType::kLoadKeys:
        return "LoadKeys";
      case FrameType::kOk:
        return "Ok";
      case FrameType::kSubmitGraph:
        return "SubmitGraph";
      case FrameType::kSubmitted:
        return "Submitted";
      case FrameType::kPoll:
        return "Poll";
      case FrameType::kPending:
        return "Pending";
      case FrameType::kDone:
        return "Done";
      case FrameType::kError:
        return "Error";
      case FrameType::kCloseSession:
        return "CloseSession";
      case FrameType::kShutdown:
        return "Shutdown";
      case FrameType::kPing:
        return "Ping";
      case FrameType::kPong:
        return "Pong";
      case FrameType::kGetStats:
        return "GetStats";
      case FrameType::kStatsReply:
        return "StatsReply";
    }
    return "Unknown";
}

// ---------------------------------------------------------------------
// Writer / Reader primitives.
// ---------------------------------------------------------------------

void
Writer::U32(u32 v)
{
    for (int i = 0; i < 4; ++i) {
        out_.push_back(static_cast<u8>(v >> (8 * i)));
    }
}

void
Writer::U64(u64 v)
{
    for (int i = 0; i < 8; ++i) {
        out_.push_back(static_cast<u8>(v >> (8 * i)));
    }
}

void
Writer::Str(const std::string &s)
{
    U32(static_cast<u32>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
}

void
Writer::Words(std::span<const u64> words)
{
    U64(words.size());
    for (const u64 w : words) {
        U64(w);
    }
}

void
Reader::Need(std::size_t bytes) const
{
    if (bytes > data_.size() - pos_) {
        RaiseDecode("truncated payload: need " + std::to_string(bytes) +
                    " bytes at offset " + std::to_string(pos_) +
                    ", have " + std::to_string(data_.size() - pos_));
    }
}

u8
Reader::U8()
{
    Need(1);
    return data_[pos_++];
}

u32
Reader::U32()
{
    Need(4);
    u32 v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<u32>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
}

u64
Reader::U64()
{
    Need(8);
    u64 v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<u64>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
}

std::string
Reader::Str(std::size_t max_bytes)
{
    const u32 len = U32();
    if (len > max_bytes) {
        RaiseDecode("string length " + std::to_string(len) +
                    " exceeds cap " + std::to_string(max_bytes));
    }
    Need(len);
    std::string s(reinterpret_cast<const char *>(data_.data() + pos_),
                  len);
    pos_ += len;
    return s;
}

std::vector<u64>
Reader::Words(std::size_t max_words)
{
    const u64 count = U64();
    if (count > max_words) {
        RaiseDecode("word count " + std::to_string(count) +
                    " exceeds cap " + std::to_string(max_words));
    }
    Need(static_cast<std::size_t>(count) * 8);
    std::vector<u64> words(static_cast<std::size_t>(count));
    for (u64 &w : words) {
        w = U64();
    }
    return words;
}

void
Reader::ExpectEnd() const
{
    if (pos_ != data_.size()) {
        RaiseDecode("trailing bytes: " +
                    std::to_string(data_.size() - pos_) +
                    " unconsumed after a complete message");
    }
}

// ---------------------------------------------------------------------
// Message codecs.
// ---------------------------------------------------------------------

namespace {

void
PutParams(Writer &w, const WireParams &p)
{
    w.U64(p.degree);
    w.U64(p.prime_count);
    w.U32(p.prime_bits);
    w.U64(p.plain_modulus);
    w.U64(p.noise_stddev_bits);
}

WireParams
GetParams(Reader &r)
{
    WireParams p;
    p.degree = r.U64();
    p.prime_count = r.U64();
    p.prime_bits = r.U32();
    p.plain_modulus = r.U64();
    p.noise_stddev_bits = r.U64();
    if (p.degree > kMaxDegree || p.prime_count > kMaxPrimeCount) {
        RaiseDecode("params out of range: degree " +
                    std::to_string(p.degree) + ", primes " +
                    std::to_string(p.prime_count));
    }
    return p;
}

void
PutPoly(Writer &w, const WirePoly &poly)
{
    w.U64(poly.degree);
    w.U32(poly.prime_count);
    w.U8(poly.domain);
    w.U8(poly.lazy);
    w.Words(poly.words);
}

WirePoly
GetPoly(Reader &r)
{
    WirePoly poly;
    poly.degree = r.U64();
    poly.prime_count = r.U32();
    poly.domain = r.U8();
    poly.lazy = r.U8();
    if (poly.degree > kMaxDegree || poly.prime_count > kMaxPrimeCount ||
        poly.domain > 1 || poly.lazy > 1) {
        RaiseDecode("poly header out of range: degree " +
                    std::to_string(poly.degree) + ", primes " +
                    std::to_string(poly.prime_count));
    }
    const std::size_t expect =
        static_cast<std::size_t>(poly.degree) * poly.prime_count;
    poly.words = r.Words(expect);
    if (poly.words.size() != expect) {
        RaiseDecode("poly words " + std::to_string(poly.words.size()) +
                    " do not match shape " + std::to_string(expect));
    }
    return poly;
}

void
PutCiphertext(Writer &w, const WireCiphertext &ct)
{
    w.U32(static_cast<u32>(ct.parts.size()));
    for (const WirePoly &part : ct.parts) {
        PutPoly(w, part);
    }
}

WireCiphertext
GetCiphertext(Reader &r)
{
    const u32 count = r.U32();
    if (count == 0 || count > kMaxCiphertextParts) {
        RaiseDecode("ciphertext part count " + std::to_string(count) +
                    " outside [1, " +
                    std::to_string(kMaxCiphertextParts) + "]");
    }
    WireCiphertext ct;
    ct.parts.reserve(count);
    for (u32 i = 0; i < count; ++i) {
        ct.parts.push_back(GetPoly(r));
    }
    return ct;
}

}  // namespace

std::vector<u8>
EncodeParams(const WireParams &params)
{
    std::vector<u8> out;
    Writer w(out);
    PutParams(w, params);
    return out;
}

Result<WireParams>
DecodeParams(std::span<const u8> payload)
{
    return DecodeGuard<WireParams>("serve::DecodeParams", [&] {
        Reader r(payload);
        WireParams p = GetParams(r);
        r.ExpectEnd();
        return p;
    });
}

std::vector<u8>
EncodePoly(const WirePoly &poly)
{
    std::vector<u8> out;
    Writer w(out);
    PutPoly(w, poly);
    return out;
}

Result<WirePoly>
DecodePoly(std::span<const u8> payload)
{
    return DecodeGuard<WirePoly>("serve::DecodePoly", [&] {
        Reader r(payload);
        WirePoly poly = GetPoly(r);
        r.ExpectEnd();
        return poly;
    });
}

std::vector<u8>
EncodeCiphertext(const WireCiphertext &ct)
{
    std::vector<u8> out;
    Writer w(out);
    PutCiphertext(w, ct);
    return out;
}

Result<WireCiphertext>
DecodeCiphertext(std::span<const u8> payload)
{
    return DecodeGuard<WireCiphertext>("serve::DecodeCiphertext", [&] {
        Reader r(payload);
        WireCiphertext ct = GetCiphertext(r);
        r.ExpectEnd();
        return ct;
    });
}

std::vector<u8>
EncodeRelinKey(const WireRelinKey &rk)
{
    std::vector<u8> out;
    Writer w(out);
    w.U32(static_cast<u32>(rk.levels.size()));
    for (const WireRelinKey::Level &level : rk.levels) {
        w.U32(static_cast<u32>(level.b.size()));
        for (const WirePoly &poly : level.b) {
            PutPoly(w, poly);
        }
        for (const WirePoly &poly : level.a) {
            PutPoly(w, poly);
        }
    }
    return out;
}

Result<WireRelinKey>
DecodeRelinKey(std::span<const u8> payload)
{
    return DecodeGuard<WireRelinKey>("serve::DecodeRelinKey", [&] {
        Reader r(payload);
        const u32 level_count = r.U32();
        if (level_count > kMaxPrimeCount) {
            RaiseDecode("relin key level count " +
                        std::to_string(level_count) + " exceeds cap " +
                        std::to_string(kMaxPrimeCount));
        }
        WireRelinKey rk;
        rk.levels.resize(level_count);
        for (WireRelinKey::Level &level : rk.levels) {
            const u32 digits = r.U32();
            if (digits > kMaxPrimeCount) {
                RaiseDecode("relin key digit count " +
                            std::to_string(digits) + " exceeds cap " +
                            std::to_string(kMaxPrimeCount));
            }
            level.b.reserve(digits);
            level.a.reserve(digits);
            for (u32 i = 0; i < digits; ++i) {
                level.b.push_back(GetPoly(r));
            }
            for (u32 i = 0; i < digits; ++i) {
                level.a.push_back(GetPoly(r));
            }
        }
        r.ExpectEnd();
        return rk;
    });
}

std::vector<u8>
EncodeProgram(const WireProgram &program)
{
    std::vector<u8> out;
    Writer w(out);
    w.U32(static_cast<u32>(program.inputs.size()));
    for (const WireCiphertext &ct : program.inputs) {
        PutCiphertext(w, ct);
    }
    w.U32(static_cast<u32>(program.ops.size()));
    for (const WireProgram::Op &op : program.ops) {
        w.U8(static_cast<u8>(op.op));
        w.U32(op.a);
        w.U32(op.b);
    }
    w.U32(static_cast<u32>(program.outputs.size()));
    for (const u32 slot : program.outputs) {
        w.U32(slot);
    }
    return out;
}

Result<WireProgram>
DecodeProgram(std::span<const u8> payload)
{
    return DecodeGuard<WireProgram>("serve::DecodeProgram", [&] {
        Reader r(payload);
        WireProgram program;
        const u32 input_count = r.U32();
        if (input_count > kMaxProgramOps) {
            RaiseDecode("program input count " +
                        std::to_string(input_count) + " exceeds cap");
        }
        program.inputs.reserve(input_count);
        for (u32 i = 0; i < input_count; ++i) {
            program.inputs.push_back(GetCiphertext(r));
        }
        const u32 op_count = r.U32();
        if (op_count > kMaxProgramOps) {
            RaiseDecode("program op count " + std::to_string(op_count) +
                        " exceeds cap");
        }
        program.ops.reserve(op_count);
        for (u32 i = 0; i < op_count; ++i) {
            WireProgram::Op op;
            const u8 code = r.U8();
            if (code > static_cast<u8>(WireOp::kRelinModSwitch)) {
                RaiseDecode("unknown program opcode " +
                            std::to_string(code));
            }
            op.op = static_cast<WireOp>(code);
            op.a = r.U32();
            op.b = r.U32();
            // Slots must reference inputs or earlier ops — a DAG by
            // construction, checked here so the evaluator never sees a
            // forward edge.
            const u32 slot_limit = input_count + i;
            const bool two_operand = op.op == WireOp::kAdd ||
                                     op.op == WireOp::kSub ||
                                     op.op == WireOp::kMul;
            if (op.a >= slot_limit ||
                (two_operand && op.b >= slot_limit)) {
                RaiseDecode("program op " + std::to_string(i) +
                            " references a slot >= " +
                            std::to_string(slot_limit));
            }
            program.ops.push_back(op);
        }
        const u32 output_count = r.U32();
        if (output_count > kMaxProgramOps) {
            RaiseDecode("program output count " +
                        std::to_string(output_count) + " exceeds cap");
        }
        program.outputs.reserve(output_count);
        const u32 slot_limit = input_count + op_count;
        for (u32 i = 0; i < output_count; ++i) {
            const u32 slot = r.U32();
            if (slot >= slot_limit) {
                RaiseDecode("program output slot " +
                            std::to_string(slot) + " >= " +
                            std::to_string(slot_limit));
            }
            program.outputs.push_back(slot);
        }
        r.ExpectEnd();
        return program;
    });
}

std::vector<u8>
EncodeStatus(const Status &status)
{
    std::vector<u8> out;
    Writer w(out);
    w.U8(static_cast<u8>(status.code()));
    w.Str(status.message());
    const std::vector<std::string> &frames = status.frames();
    w.U32(static_cast<u32>(frames.size()));
    for (const std::string &frame : frames) {
        w.Str(frame);
    }
    return out;
}

Result<WireStatus>
DecodeStatus(std::span<const u8> payload)
{
    return DecodeGuard<WireStatus>("serve::DecodeStatus", [&] {
        Reader r(payload);
        WireStatus ws;
        ws.code = r.U8();
        if (ws.code > static_cast<u8>(ErrorCode::kUnknown)) {
            RaiseDecode("unknown error code " + std::to_string(ws.code));
        }
        ws.message = r.Str();
        const u32 frame_count = r.U32();
        if (frame_count > kMaxStatusFrames) {
            RaiseDecode("status frame count " +
                        std::to_string(frame_count) + " exceeds cap");
        }
        ws.frames.reserve(frame_count);
        for (u32 i = 0; i < frame_count; ++i) {
            ws.frames.push_back(r.Str());
        }
        r.ExpectEnd();
        return ws;
    });
}

Status
WireStatusToStatus(const WireStatus &ws)
{
    ErrorCode code = static_cast<ErrorCode>(ws.code);
    if (code == ErrorCode::kOk) {
        code = ErrorCode::kInternal;
    }
    Status status(code, ws.message);
    for (const std::string &frame : ws.frames) {
        status = status.WithFrame(frame);
    }
    return status;
}

std::vector<u8>
EncodeStats(const WireStats &stats)
{
    std::vector<u8> out;
    Writer w(out);
    w.U64(stats.sessions_created);
    w.U64(stats.sessions_active);
    w.U64(stats.requests_submitted);
    w.U64(stats.requests_completed);
    w.U64(stats.requests_failed);
    w.U64(stats.batches_executed);
    w.U64(stats.coalesced_requests);
    w.U64(stats.max_batch_observed);
    return out;
}

Result<WireStats>
DecodeStats(std::span<const u8> payload)
{
    return DecodeGuard<WireStats>("serve::DecodeStats", [&] {
        Reader r(payload);
        WireStats s;
        s.sessions_created = r.U64();
        s.sessions_active = r.U64();
        s.requests_submitted = r.U64();
        s.requests_completed = r.U64();
        s.requests_failed = r.U64();
        s.batches_executed = r.U64();
        s.coalesced_requests = r.U64();
        s.max_batch_observed = r.U64();
        r.ExpectEnd();
        return s;
    });
}

std::vector<u8>
EncodeU64Payload(u64 value)
{
    std::vector<u8> out;
    Writer w(out);
    w.U64(value);
    return out;
}

Result<u64>
DecodeU64Payload(std::span<const u8> payload)
{
    return DecodeGuard<u64>("serve::DecodeU64Payload", [&] {
        Reader r(payload);
        const u64 value = r.U64();
        r.ExpectEnd();
        return value;
    });
}

std::vector<u8>
EncodeCiphertextList(const std::vector<WireCiphertext> &cts)
{
    std::vector<u8> out;
    Writer w(out);
    w.U32(static_cast<u32>(cts.size()));
    for (const WireCiphertext &ct : cts) {
        PutCiphertext(w, ct);
    }
    return out;
}

Result<std::vector<WireCiphertext>>
DecodeCiphertextList(std::span<const u8> payload)
{
    return DecodeGuard<std::vector<WireCiphertext>>(
        "serve::DecodeCiphertextList", [&] {
            Reader r(payload);
            const u32 count = r.U32();
            if (count > kMaxProgramOps) {
                RaiseDecode("ciphertext list count " +
                            std::to_string(count) + " exceeds cap");
            }
            std::vector<WireCiphertext> cts;
            cts.reserve(count);
            for (u32 i = 0; i < count; ++i) {
                cts.push_back(GetCiphertext(r));
            }
            r.ExpectEnd();
            return cts;
        });
}

// ---------------------------------------------------------------------
// Frame codec.
// ---------------------------------------------------------------------

std::vector<u8>
EncodeFrame(const Frame &frame)
{
    std::vector<u8> out;
    out.reserve(6 + frame.payload.size());
    Writer w(out);
    w.U32(static_cast<u32>(frame.payload.size()));
    w.U8(frame.version);
    w.U8(static_cast<u8>(frame.type));
    out.insert(out.end(), frame.payload.begin(), frame.payload.end());
    return out;
}

Result<Frame>
DecodeFrameFromBuffer(std::span<const u8> data, std::size_t &consumed)
{
    consumed = 0;
    if (data.size() < 6) {
        return Status(ErrorCode::kUnavailable, "frame header in flight");
    }
    u32 len = 0;
    for (int i = 0; i < 4; ++i) {
        len |= static_cast<u32>(data[i]) << (8 * i);
    }
    if (len > kMaxFramePayload) {
        return Status(ErrorCode::kInvalidArgument,
                      "frame payload of " + std::to_string(len) +
                          " bytes exceeds the " +
                          std::to_string(kMaxFramePayload) + " cap")
            .WithFrame("serve::DecodeFrameFromBuffer");
    }
    const u8 version = data[4];
    const u8 type = data[5];
    if (version < kMinProtocolVersion || version > kProtocolVersion) {
        return Status(ErrorCode::kInvalidArgument,
                      "unsupported protocol version " +
                          std::to_string(version) + " (this build "
                          "speaks " +
                          std::to_string(kMinProtocolVersion) + ".." +
                          std::to_string(kProtocolVersion) + ")")
            .WithFrame("serve::DecodeFrameFromBuffer");
    }
    if (!IsKnownFrameType(type)) {
        return Status(ErrorCode::kInvalidArgument,
                      "unknown frame type " + std::to_string(type))
            .WithFrame("serve::DecodeFrameFromBuffer");
    }
    if (data.size() < 6 + static_cast<std::size_t>(len)) {
        return Status(ErrorCode::kUnavailable, "frame payload in flight");
    }
    Frame frame;
    frame.version = version;
    frame.type = static_cast<FrameType>(type);
    frame.payload.assign(data.begin() + 6, data.begin() + 6 + len);
    consumed = 6 + static_cast<std::size_t>(len);
    return frame;
}

// ---------------------------------------------------------------------
// Blocking fd I/O.
// ---------------------------------------------------------------------

Status
WriteAll(int fd, std::span<const u8> data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        // MSG_NOSIGNAL: a peer that vanished mid-reply must surface
        // as an EPIPE Status on this connection, not a process-wide
        // SIGPIPE (default action: kill the daemon).
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return Status(ErrorCode::kUnavailable,
                          std::string("write failed: ") +
                              std::strerror(errno))
                .WithFrame("serve::WriteAll");
        }
        off += static_cast<std::size_t>(n);
    }
    return Status::Ok();
}

Status
ReadAll(int fd, std::span<u8> data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::read(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return Status(ErrorCode::kUnavailable,
                          std::string("read failed: ") +
                              std::strerror(errno))
                .WithFrame("serve::ReadAll");
        }
        if (n == 0) {
            return Status(ErrorCode::kUnavailable,
                          off == 0 ? "peer closed the connection"
                                   : "peer closed mid-message")
                .WithFrame("serve::ReadAll");
        }
        off += static_cast<std::size_t>(n);
    }
    return Status::Ok();
}

Status
WriteFrame(int fd, const Frame &frame)
{
    if (frame.payload.size() > kMaxFramePayload) {
        return Status(ErrorCode::kInvalidArgument,
                      "refusing to send a frame of " +
                          std::to_string(frame.payload.size()) +
                          " bytes (cap " +
                          std::to_string(kMaxFramePayload) + ")")
            .WithFrame("serve::WriteFrame");
    }
    return WriteAll(fd, EncodeFrame(frame));
}

Result<Frame>
ReadFrame(int fd)
{
    u8 header[6];
    Status status = ReadAll(fd, header);
    if (!status.ok()) {
        return status.WithFrame("serve::ReadFrame");
    }
    std::size_t consumed = 0;
    // Validate the header through the buffer decoder (shared caps and
    // version checks) by treating it as a zero-payload prefix.
    u32 len = 0;
    for (int i = 0; i < 4; ++i) {
        len |= static_cast<u32>(header[i]) << (8 * i);
    }
    if (len > kMaxFramePayload) {
        return Status(ErrorCode::kInvalidArgument,
                      "frame payload of " + std::to_string(len) +
                          " bytes exceeds the " +
                          std::to_string(kMaxFramePayload) + " cap")
            .WithFrame("serve::ReadFrame");
    }
    std::vector<u8> buffer(6 + static_cast<std::size_t>(len));
    std::memcpy(buffer.data(), header, 6);
    if (len > 0) {
        status = ReadAll(fd, {buffer.data() + 6, len});
        if (!status.ok()) {
            return status.WithFrame("serve::ReadFrame");
        }
    }
    Result<Frame> frame = DecodeFrameFromBuffer(buffer, consumed);
    if (!frame.ok()) {
        return frame.status().WithFrame("serve::ReadFrame");
    }
    return frame;
}

// ---------------------------------------------------------------------
// Handshake.
// ---------------------------------------------------------------------

namespace {

std::vector<u8>
HelloBytes(u64 magic, u32 version)
{
    std::vector<u8> out;
    Writer w(out);
    w.U64(magic);
    w.U32(version);
    return out;
}

Result<u32>
ReadHello(int fd, u64 expect_magic, const char *who)
{
    u8 bytes[12];
    Status status = ReadAll(fd, bytes);
    if (!status.ok()) {
        return status.WithFrame(who);
    }
    Reader r(bytes);
    const u64 magic = r.U64();
    const u32 version = r.U32();
    if (magic != expect_magic) {
        return Status(ErrorCode::kInvalidArgument,
                      "bad handshake magic: peer is not a hentt " +
                          std::string(expect_magic == kClientMagic
                                          ? "client"
                                          : "daemon"))
            .WithFrame(who);
    }
    return version;
}

Result<u32>
Negotiate(u32 theirs, const char *who)
{
    const u32 version = std::min(theirs, kProtocolVersion);
    if (version < kMinProtocolVersion) {
        return Status(ErrorCode::kInvalidArgument,
                      "peer protocol version " + std::to_string(theirs) +
                          " is below the minimum " +
                          std::to_string(kMinProtocolVersion))
            .WithFrame(who);
    }
    return version;
}

}  // namespace

Result<u32>
ClientHandshake(int fd)
{
    Status status =
        WriteAll(fd, HelloBytes(kClientMagic, kProtocolVersion));
    if (!status.ok()) {
        return status.WithFrame("serve::ClientHandshake");
    }
    Result<u32> theirs =
        ReadHello(fd, kDaemonMagic, "serve::ClientHandshake");
    if (!theirs.ok()) {
        return theirs.status();
    }
    return Negotiate(*theirs, "serve::ClientHandshake");
}

Result<u32>
DaemonHandshake(int fd)
{
    Result<u32> theirs =
        ReadHello(fd, kClientMagic, "serve::DaemonHandshake");
    if (!theirs.ok()) {
        return theirs.status();
    }
    Status status =
        WriteAll(fd, HelloBytes(kDaemonMagic, kProtocolVersion));
    if (!status.ok()) {
        return status.WithFrame("serve::DaemonHandshake");
    }
    return Negotiate(*theirs, "serve::DaemonHandshake");
}

}  // namespace hentt::serve
