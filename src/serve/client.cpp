/** @file Client implementation (see client.h). */

#include "serve/client.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/serde.h"

namespace hentt::serve {

Client::Client(int fd, u32 protocol_version)
    : fd_(fd), protocol_version_(protocol_version)
{
}

Client::~Client()
{
    if (fd_ >= 0) {
        ::close(fd_);
    }
}

Result<std::unique_ptr<Client>>
Client::Connect(const std::string &socket_path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.empty() ||
        socket_path.size() >= sizeof(addr.sun_path)) {
        return Status(ErrorCode::kInvalidArgument,
                      "socket path empty or too long: " + socket_path)
            .WithFrame("Client::Connect");
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        return Status(ErrorCode::kUnavailable,
                      std::string("socket() failed: ") +
                          std::strerror(errno))
            .WithFrame("Client::Connect");
    }
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const Status status =
            Status(ErrorCode::kUnavailable,
                   "connect(" + socket_path +
                       ") failed: " + std::strerror(errno))
                .WithFrame("Client::Connect");
        ::close(fd);
        return status;
    }
    Result<u32> version = ClientHandshake(fd);
    if (!version.ok()) {
        ::close(fd);
        return version.status().WithFrame("Client::Connect");
    }
    return std::unique_ptr<Client>(new Client(fd, *version));
}

Result<Frame>
Client::RoundTrip(FrameType type, std::vector<u8> payload)
{
    Frame request;
    request.type = type;
    request.payload = std::move(payload);
    Status sent = WriteFrame(fd_, request);
    if (!sent.ok()) {
        return sent.WithFrame("Client::RoundTrip");
    }
    Result<Frame> reply = ReadFrame(fd_);
    if (!reply.ok()) {
        return reply.status().WithFrame("Client::RoundTrip");
    }
    if (reply->type == FrameType::kError) {
        Result<WireStatus> ws = DecodeStatus(reply->payload);
        if (!ws.ok()) {
            return ws.status().WithFrame("Client::RoundTrip");
        }
        return WireStatusToStatus(*ws);
    }
    return reply;
}

Result<u64>
Client::CreateSession(const he::HeParams &params)
{
    Result<Frame> reply = RoundTrip(FrameType::kCreateSession,
                                    EncodeParams(ToWire(params)));
    if (!reply.ok()) {
        return reply.status();
    }
    if (reply->type != FrameType::kSessionCreated) {
        return Status(ErrorCode::kInternal,
                      std::string("expected SessionCreated, got ") +
                          FrameTypeName(reply->type))
            .WithFrame("Client::CreateSession");
    }
    Result<u64> id = DecodeU64Payload(reply->payload);
    if (!id.ok()) {
        return id.status().WithFrame("Client::CreateSession");
    }
    // The daemon accepted the parameters, so the local mirror build
    // can only fail on resource exhaustion.
    try {
        ctx_ = std::make_shared<const he::HeContext>(params);
    } catch (...) {
        return CurrentExceptionToStatus().WithFrame(
            "Client::CreateSession");
    }
    return *id;
}

Status
Client::LoadKeys(const he::RelinKey &rk)
{
    Result<Frame> reply =
        RoundTrip(FrameType::kLoadKeys, EncodeRelinKey(ToWire(rk)));
    if (!reply.ok()) {
        return reply.status();
    }
    if (reply->type != FrameType::kOk) {
        return Status(ErrorCode::kInternal,
                      std::string("expected Ok, got ") +
                          FrameTypeName(reply->type))
            .WithFrame("Client::LoadKeys");
    }
    return Status::Ok();
}

Result<u64>
Client::SubmitGraph(const std::vector<he::Ciphertext> &inputs,
                    const std::vector<WireProgram::Op> &ops,
                    const std::vector<u32> &outputs)
{
    WireProgram program;
    program.inputs.reserve(inputs.size());
    for (const he::Ciphertext &ct : inputs) {
        program.inputs.push_back(ToWire(ct));
    }
    program.ops = ops;
    program.outputs = outputs;
    Result<Frame> reply =
        RoundTrip(FrameType::kSubmitGraph, EncodeProgram(program));
    if (!reply.ok()) {
        return reply.status();
    }
    if (reply->type != FrameType::kSubmitted) {
        return Status(ErrorCode::kInternal,
                      std::string("expected Submitted, got ") +
                          FrameTypeName(reply->type))
            .WithFrame("Client::SubmitGraph");
    }
    Result<u64> id = DecodeU64Payload(reply->payload);
    if (!id.ok()) {
        return id.status().WithFrame("Client::SubmitGraph");
    }
    return *id;
}

Result<Client::Outcome>
Client::Poll(u64 request_id)
{
    Result<Frame> reply =
        RoundTrip(FrameType::kPoll, EncodeU64Payload(request_id));
    if (!reply.ok()) {
        return reply.status();
    }
    Outcome outcome;
    if (reply->type == FrameType::kPending) {
        return outcome;
    }
    if (reply->type != FrameType::kDone) {
        return Status(ErrorCode::kInternal,
                      std::string("expected Done/Pending, got ") +
                          FrameTypeName(reply->type))
            .WithFrame("Client::Poll");
    }
    if (ctx_ == nullptr) {
        return Status(ErrorCode::kFailedPrecondition,
                      "poll result before CreateSession built the "
                      "local context")
            .WithFrame("Client::Poll");
    }
    Result<std::vector<WireCiphertext>> wcts =
        DecodeCiphertextList(reply->payload);
    if (!wcts.ok()) {
        return wcts.status().WithFrame("Client::Poll");
    }
    outcome.done = true;
    outcome.outputs.reserve(wcts->size());
    for (const WireCiphertext &wct : *wcts) {
        Result<he::Ciphertext> ct = CiphertextFromWire(*ctx_, wct);
        if (!ct.ok()) {
            return ct.status().WithFrame("Client::Poll");
        }
        outcome.outputs.push_back(std::move(*ct));
    }
    return outcome;
}

Result<std::vector<he::Ciphertext>>
Client::AwaitDone(u64 request_id)
{
    for (;;) {
        Result<Outcome> outcome = Poll(request_id);
        if (!outcome.ok()) {
            return outcome.status().WithFrame("Client::AwaitDone");
        }
        if (outcome->done) {
            return std::move(outcome->outputs);
        }
        // The daemon has no notification channel (polling keeps the
        // protocol stateless between frames); a short sleep bounds the
        // busy-wait without adding meaningful latency at max_wait
        // granularity.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
}

Status
Client::Ping()
{
    Result<Frame> reply = RoundTrip(FrameType::kPing, {});
    if (!reply.ok()) {
        return reply.status();
    }
    if (reply->type != FrameType::kPong) {
        return Status(ErrorCode::kInternal,
                      std::string("expected Pong, got ") +
                          FrameTypeName(reply->type))
            .WithFrame("Client::Ping");
    }
    return Status::Ok();
}

Result<WireStats>
Client::Stats()
{
    Result<Frame> reply = RoundTrip(FrameType::kGetStats, {});
    if (!reply.ok()) {
        return reply.status();
    }
    if (reply->type != FrameType::kStatsReply) {
        return Status(ErrorCode::kInternal,
                      std::string("expected StatsReply, got ") +
                          FrameTypeName(reply->type))
            .WithFrame("Client::Stats");
    }
    Result<WireStats> stats = DecodeStats(reply->payload);
    if (!stats.ok()) {
        return stats.status().WithFrame("Client::Stats");
    }
    return stats;
}

Status
Client::CloseSession()
{
    Result<Frame> reply = RoundTrip(FrameType::kCloseSession, {});
    if (!reply.ok()) {
        return reply.status();
    }
    if (reply->type != FrameType::kOk) {
        return Status(ErrorCode::kInternal,
                      std::string("expected Ok, got ") +
                          FrameTypeName(reply->type))
            .WithFrame("Client::CloseSession");
    }
    ctx_.reset();
    return Status::Ok();
}

Status
Client::Shutdown()
{
    Result<Frame> reply = RoundTrip(FrameType::kShutdown, {});
    if (!reply.ok()) {
        return reply.status();
    }
    if (reply->type != FrameType::kOk) {
        return Status(ErrorCode::kInternal,
                      std::string("expected Ok, got ") +
                          FrameTypeName(reply->type))
            .WithFrame("Client::Shutdown");
    }
    return Status::Ok();
}

}  // namespace hentt::serve
