/** @file Daemon implementation (see daemon.h). */

#include "serve/daemon.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/failpoint.h"
#include "serve/serde.h"

namespace hentt::serve {

namespace {

Frame
ErrorFrame(const Status &status)
{
    Frame frame;
    frame.type = FrameType::kError;
    frame.payload = EncodeStatus(status);
    return frame;
}

Frame
MakeFrame(FrameType type, std::vector<u8> payload = {})
{
    Frame frame;
    frame.type = type;
    frame.payload = std::move(payload);
    return frame;
}

}  // namespace

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)),
      arena_(std::make_shared<he::ScratchArena>()),
      sessions_(arena_),
      coalescer_(config_.batch, arena_)
{
}

Daemon::~Daemon()
{
    Stop();
}

Status
Daemon::Start()
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.socket_path.empty() ||
        config_.socket_path.size() >= sizeof(addr.sun_path)) {
        return Status(ErrorCode::kInvalidArgument,
                      "socket path empty or longer than " +
                          std::to_string(sizeof(addr.sun_path) - 1) +
                          " bytes: " + config_.socket_path)
            .WithFrame("Daemon::Start");
    }
    {
        MutexLock lock(mutex_);
        if (running_) {
            return Status(ErrorCode::kFailedPrecondition,
                          "daemon already running")
                .WithFrame("Daemon::Start");
        }
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        return Status(ErrorCode::kUnavailable,
                      std::string("socket() failed: ") +
                          std::strerror(errno))
            .WithFrame("Daemon::Start");
    }
    std::memcpy(addr.sun_path, config_.socket_path.c_str(),
                config_.socket_path.size() + 1);
    ::unlink(config_.socket_path.c_str());  // stale socket from a
                                            // previous run
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 128) != 0) {
        const Status status =
            Status(ErrorCode::kUnavailable,
                   std::string("bind/listen failed on ") +
                       config_.socket_path + ": " +
                       std::strerror(errno))
                .WithFrame("Daemon::Start");
        ::close(fd);
        return status;
    }
    coalescer_.Start();
    {
        MutexLock lock(mutex_);
        running_ = true;
        stop_requested_ = false;
        listen_fd_ = fd;
    }
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    return Status::Ok();
}

void
Daemon::RequestStop()
{
    int fd = -1;
    {
        MutexLock lock(mutex_);
        if (!running_ || stop_requested_) {
            return;
        }
        stop_requested_ = true;
        fd = listen_fd_;
    }
    if (fd >= 0) {
        // Unblocks accept(); the accept loop sees stop_requested_.
        ::shutdown(fd, SHUT_RDWR);
    }
    cv_stop_.notify_all();
}

void
Daemon::Wait()
{
    {
        MutexLock lock(mutex_);
        if (!running_) {
            return;
        }
        while (!stop_requested_) {
            cv_stop_.wait(mutex_);
        }
    }
    if (accept_thread_.joinable()) {
        accept_thread_.join();
    }
    // Wake every connection thread blocked in ReadFrame, then join —
    // the still-live ones and any finished ones AcceptLoop has not
    // reaped yet.
    std::vector<std::thread> threads;
    {
        MutexLock lock(mutex_);
        for (const int fd : conn_fds_) {
            ::shutdown(fd, SHUT_RDWR);
        }
        for (auto &entry : conn_threads_) {
            threads.push_back(std::move(entry.second));
        }
        conn_threads_.clear();
        for (std::thread &thread : done_threads_) {
            threads.push_back(std::move(thread));
        }
        done_threads_.clear();
    }
    for (std::thread &thread : threads) {
        if (thread.joinable()) {
            thread.join();
        }
    }
    coalescer_.Stop();
    {
        MutexLock lock(mutex_);
        if (listen_fd_ >= 0) {
            ::close(listen_fd_);
            listen_fd_ = -1;
        }
        running_ = false;
    }
    ::unlink(config_.socket_path.c_str());
}

WireStats
Daemon::Stats() const
{
    WireStats stats = coalescer_.StatsSnapshot();
    stats.sessions_created = sessions_.CreatedCount();
    stats.sessions_active = sessions_.ActiveCount();
    return stats;
}

void
Daemon::AcceptLoop()
{
    for (;;) {
        int listen_fd = -1;
        {
            MutexLock lock(mutex_);
            if (stop_requested_) {
                return;
            }
            listen_fd = listen_fd_;
        }
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            const int err = errno;
            {
                MutexLock lock(mutex_);
                if (stop_requested_) {
                    return;  // listener shut down by RequestStop()
                }
            }
            if (err == EINTR || err == ECONNABORTED) {
                // Interrupted, or the peer gave up while queued —
                // nothing wrong with the listener.
                continue;
            }
            if (err == EMFILE || err == ENFILE || err == ENOBUFS ||
                err == ENOMEM) {
                // Resource exhaustion under a connection burst is
                // transient: back off briefly (lets connections close
                // and fds free) instead of silently never accepting
                // again while the daemon looks alive.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
                continue;
            }
            // The listener itself is broken: exit the loop.
            return;
        }
        std::vector<std::thread> finished;
        {
            MutexLock lock(mutex_);
            if (stop_requested_) {
                ::close(fd);
                return;  // Wait() joins the remaining threads
            }
            conn_fds_.insert(fd);
            conn_threads_.emplace(
                fd, std::thread([this, fd] { ServeConnection(fd); }));
            finished.swap(done_threads_);
        }
        // Reap connections that ended since the last accept (their
        // threads are exiting or already gone — join is immediate).
        for (std::thread &thread : finished) {
            if (thread.joinable()) {
                thread.join();
            }
        }
    }
}

void
Daemon::ServeConnection(int fd)
{
    ConnState conn;
    if (DaemonHandshake(fd).ok()) {
        for (;;) {
            Result<Frame> request = ReadFrame(fd);
            if (!request.ok()) {
                if (request.status().code() ==
                    ErrorCode::kInvalidArgument) {
                    // Unparseable framing: report, then close (the
                    // stream cannot be resynchronised).
                    (void)WriteFrame(fd, ErrorFrame(request.status()));
                }
                break;
            }
            bool close_after = false;
            const Frame reply =
                HandleFrame(conn, *request, close_after);
            const bool wrote = WriteFrame(fd, reply).ok();
            if (conn.stop_after_reply) {
                // Reply first, stop second: the shutdown client gets
                // its kOk before teardown can touch this socket.
                RequestStop();
            }
            if (!wrote || close_after) {
                break;
            }
        }
    }
    // Teardown: the session and everything it owns dies with the
    // connection — queued requests, unpolled results, the registry
    // entry. This is the no-orphaned-sessions guarantee the e2e suite
    // asserts.
    if (conn.session != nullptr) {
        coalescer_.DropSessionRequests(conn.session->id);
        sessions_.Close(conn.session->id);
        conn.session.reset();
    }
    {
        MutexLock lock(mutex_);
        conn_fds_.erase(fd);
        // Hand our own (still-running) handle to the reap list;
        // AcceptLoop or Wait() joins it after we return. Absent when
        // Wait() already claimed it for the shutdown join.
        auto it = conn_threads_.find(fd);
        if (it != conn_threads_.end()) {
            done_threads_.push_back(std::move(it->second));
            conn_threads_.erase(it);
        }
    }
    ::close(fd);
}

Frame
Daemon::HandleFrame(ConnState &conn, const Frame &request,
                    bool &close_after)
{
    close_after = false;
    try {
        // The chaos leg arms this site: an injected fault anywhere in
        // request handling must reach the client as a kError frame
        // with provenance, with the daemon and connection surviving.
        HENTT_FAILPOINT(fp::kServeRequest);

        switch (request.type) {
          case FrameType::kPing:
            return MakeFrame(FrameType::kPong);

          case FrameType::kGetStats:
            return MakeFrame(FrameType::kStatsReply,
                             EncodeStats(Stats()));

          case FrameType::kShutdown:
            // Deferred: ServeConnection calls RequestStop() once the
            // kOk reply is on the wire. Stopping here would let
            // Wait() shut this very connection down mid-reply.
            conn.stop_after_reply = true;
            close_after = true;
            return MakeFrame(FrameType::kOk);

          case FrameType::kCreateSession: {
            if (conn.session != nullptr) {
                return ErrorFrame(
                    Status(ErrorCode::kFailedPrecondition,
                           "connection already owns session " +
                               std::to_string(conn.session->id))
                        .WithFrame("Daemon::CreateSession"));
            }
            Result<WireParams> wp = DecodeParams(request.payload);
            if (!wp.ok()) {
                return ErrorFrame(wp.status());
            }
            Result<he::HeParams> params = ParamsFromWire(*wp);
            if (!params.ok()) {
                return ErrorFrame(params.status());
            }
            Result<std::shared_ptr<Session>> session =
                sessions_.Create(*params);
            if (!session.ok()) {
                return ErrorFrame(session.status());
            }
            conn.session = *session;
            return MakeFrame(FrameType::kSessionCreated,
                             EncodeU64Payload(conn.session->id));
          }

          case FrameType::kLoadKeys: {
            if (conn.session == nullptr) {
                return ErrorFrame(
                    Status(ErrorCode::kFailedPrecondition,
                           "LoadKeys before CreateSession")
                        .WithFrame("Daemon::LoadKeys"));
            }
            Result<WireRelinKey> wrk =
                DecodeRelinKey(request.payload);
            if (!wrk.ok()) {
                return ErrorFrame(wrk.status());
            }
            Result<he::RelinKey> rk =
                RelinKeyFromWire(*conn.session->ctx, *wrk);
            if (!rk.ok()) {
                return ErrorFrame(rk.status());
            }
            // Swapped under the session's key mutex; requests already
            // submitted keep executing against the version they
            // pinned at submit time.
            conn.session->SetRelinKey(
                std::make_shared<const he::RelinKey>(
                    std::move(*rk)));
            return MakeFrame(FrameType::kOk);
          }

          case FrameType::kSubmitGraph: {
            if (conn.session == nullptr) {
                return ErrorFrame(
                    Status(ErrorCode::kFailedPrecondition,
                           "SubmitGraph before CreateSession")
                        .WithFrame("Daemon::SubmitGraph"));
            }
            Result<WireProgram> program =
                DecodeProgram(request.payload);
            if (!program.ok()) {
                return ErrorFrame(program.status());
            }
            std::vector<he::Ciphertext> inputs;
            inputs.reserve(program->inputs.size());
            for (const WireCiphertext &wct : program->inputs) {
                Result<he::Ciphertext> ct =
                    CiphertextFromWire(*conn.session->ctx, wct);
                if (!ct.ok()) {
                    return ErrorFrame(ct.status().WithFrame(
                        "Daemon::SubmitGraph"));
                }
                inputs.push_back(std::move(*ct));
            }
            Result<u64> id = coalescer_.Submit(
                conn.session, std::move(inputs),
                std::move(program->ops),
                std::move(program->outputs));
            if (!id.ok()) {
                return ErrorFrame(id.status());
            }
            return MakeFrame(FrameType::kSubmitted,
                             EncodeU64Payload(*id));
          }

          case FrameType::kPoll: {
            if (conn.session == nullptr) {
                return ErrorFrame(
                    Status(ErrorCode::kFailedPrecondition,
                           "Poll before CreateSession")
                        .WithFrame("Daemon::Poll"));
            }
            Result<u64> id = DecodeU64Payload(request.payload);
            if (!id.ok()) {
                return ErrorFrame(id.status());
            }
            // Scoped to the calling session: foreign ids read as
            // unknown and never consume another client's result.
            PollResult result =
                coalescer_.Poll(*id, conn.session->id);
            if (!result.done) {
                return MakeFrame(FrameType::kPending);
            }
            if (!result.status.ok()) {
                return ErrorFrame(result.status);
            }
            std::vector<WireCiphertext> wcts;
            wcts.reserve(result.outputs.size());
            for (const he::Ciphertext &ct : result.outputs) {
                wcts.push_back(ToWire(ct));
            }
            return MakeFrame(FrameType::kDone,
                             EncodeCiphertextList(wcts));
          }

          case FrameType::kCloseSession: {
            if (conn.session != nullptr) {
                coalescer_.DropSessionRequests(conn.session->id);
                sessions_.Close(conn.session->id);
                conn.session.reset();
            }
            return MakeFrame(FrameType::kOk);
          }

          default:
            return ErrorFrame(
                Status(ErrorCode::kInvalidArgument,
                       std::string("unexpected frame type ") +
                           FrameTypeName(request.type) +
                           " from a client")
                    .WithFrame("Daemon::HandleFrame"));
        }
    } catch (...) {
        // The last line of containment: no failure in request
        // handling — injected or real — may drop the connection.
        return ErrorFrame(CurrentExceptionToStatus().WithFrame(
            "Daemon::HandleFrame(" +
            std::string(FrameTypeName(request.type)) + ")"));
    }
}

}  // namespace hentt::serve
