/** @file SessionManager implementation (see session.h). */

#include "serve/session.h"

namespace hentt::serve {

Result<std::shared_ptr<Session>>
SessionManager::Create(const he::HeParams &params)
{
    // Engine-state acquisition (table builds on a cache miss) runs
    // outside the registry lock — one slow CreateSession must not
    // stall lookups from other connections.
    std::shared_ptr<const he::HeEngineState> state;
    try {
        state = he::HeEngineState::Acquire(params);
    } catch (...) {
        return CurrentExceptionToStatus().WithFrame(
            "SessionManager::Create");
    }
    auto session = std::make_shared<Session>();
    session->ctx =
        std::make_shared<const he::HeContext>(std::move(state), arena_);
    MutexLock lock(mutex_);
    session->id = next_id_++;
    ++created_;
    sessions_[session->id] = session;
    return session;
}

Result<std::shared_ptr<Session>>
SessionManager::Get(u64 id)
{
    MutexLock lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) {
        return Status(ErrorCode::kFailedPrecondition,
                      "no live session with id " + std::to_string(id))
            .WithFrame("SessionManager::Get");
    }
    return it->second;
}

void
SessionManager::Close(u64 id)
{
    MutexLock lock(mutex_);
    sessions_.erase(id);
}

std::size_t
SessionManager::ActiveCount() const
{
    MutexLock lock(mutex_);
    return sessions_.size();
}

u64
SessionManager::CreatedCount() const
{
    MutexLock lock(mutex_);
    return created_;
}

}  // namespace hentt::serve
