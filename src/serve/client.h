/**
 * @file
 * hentt-client — the thin blocking client library for hentt-daemon.
 *
 * One Client owns one connected unix-domain socket and (after
 * CreateSession) one local HeContext mirroring the daemon's session
 * parameters — prime generation is deterministic, so client and daemon
 * independently derive identical RNS bases and the wire only ever
 * carries residue words, never moduli.
 *
 * Every method is a blocking request/reply round trip. Failures come
 * back as Status, never exceptions: transport failures (dead daemon,
 * framing corruption) keep their local provenance; daemon-side
 * failures arrive as kError frames and are reassembled into the
 * daemon's own Status — code, message, and provenance chain — so a
 * client sees *where inside the daemon* a request died.
 *
 * One Client serves one thread; open one Client per concurrent caller
 * (the daemon handles any number of connections).
 */

#ifndef HENTT_SERVE_CLIENT_H
#define HENTT_SERVE_CLIENT_H

#include <memory>
#include <string>
#include <vector>

#include "he/bgv.h"
#include "serve/wire.h"

namespace hentt::serve {

/** Blocking daemon connection (see file comment). */
class Client
{
  public:
    /** Connect + handshake. */
    [[nodiscard]] static Result<std::unique_ptr<Client>>
    Connect(const std::string &socket_path);

    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Version both sides agreed on during the handshake. */
    u32 protocol_version() const { return protocol_version_; }

    /**
     * Create the connection's session on the daemon and build the
     * matching local context. Returns the daemon-assigned session id.
     */
    [[nodiscard]] Result<u64> CreateSession(const he::HeParams &params);

    /** Upload relinearization keys into the session. */
    [[nodiscard]] Status LoadKeys(const he::RelinKey &rk);

    /**
     * Submit a program (slot semantics as WireProgram: inputs first,
     * then one slot per op). Returns the request id — evaluation is
     * asynchronous; Poll or AwaitDone collects it.
     */
    [[nodiscard]] Result<u64>
    SubmitGraph(const std::vector<he::Ciphertext> &inputs,
                const std::vector<WireProgram::Op> &ops,
                const std::vector<u32> &outputs);

    /** One Poll round trip's outcome. */
    struct Outcome {
        bool done = false;  ///< false: still queued/executing
        std::vector<he::Ciphertext> outputs;
    };

    /** Non-blocking (daemon-side) result check. A finished request is
     *  consumed. Evaluation failures surface as the error Status. */
    [[nodiscard]] Result<Outcome> Poll(u64 request_id);

    /** Poll until the request settles; returns its outputs. */
    [[nodiscard]] Result<std::vector<he::Ciphertext>>
    AwaitDone(u64 request_id);

    /** Liveness round trip. */
    [[nodiscard]] Status Ping();

    /** Fetch the daemon's counters. */
    [[nodiscard]] Result<WireStats> Stats();

    /** Release the session (daemon side); the connection stays up. */
    [[nodiscard]] Status CloseSession();

    /** Ask the daemon to stop; the daemon closes the connection after
     *  acknowledging. */
    [[nodiscard]] Status Shutdown();

    /** Local mirror context; null before CreateSession succeeds. */
    const std::shared_ptr<const he::HeContext> &context() const
    {
        return ctx_;
    }

  private:
    Client(int fd, u32 protocol_version);

    /** Send one request frame, read one reply. A kError reply is
     *  reassembled into the daemon's Status and returned as the
     *  error; anything else is handed back for dispatch. */
    [[nodiscard]] Result<Frame> RoundTrip(FrameType type,
                                          std::vector<u8> payload);

    int fd_ = -1;
    u32 protocol_version_ = 0;
    std::shared_ptr<const he::HeContext> ctx_;
};

}  // namespace hentt::serve

#endif  // HENTT_SERVE_CLIENT_H
