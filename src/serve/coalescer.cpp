/** @file Coalescer implementation (see coalescer.h). */

#include "serve/coalescer.h"

#include <algorithm>
#include <utility>

#include "common/failpoint.h"
#include "he/he_graph.h"

namespace hentt::serve {

Coalescer::Coalescer(BatchConfig config,
                     std::shared_ptr<he::ScratchArena> arena)
    : config_(config), arena_(std::move(arena))
{
    if (config_.max_batch == 0) {
        config_.max_batch = 1;
    }
    if (arena_ == nullptr) {
        arena_ = std::make_shared<he::ScratchArena>();
    }
}

Coalescer::~Coalescer()
{
    Stop();
}

void
Coalescer::Start()
{
    {
        MutexLock lock(mutex_);
        if (started_) {
            return;
        }
        started_ = true;
        stop_ = false;
    }
    worker_ = std::thread([this] { WorkerLoop(); });
}

void
Coalescer::Stop()
{
    {
        MutexLock lock(mutex_);
        if (!started_) {
            return;
        }
        stop_ = true;
    }
    cv_work_.notify_all();
    if (worker_.joinable()) {
        worker_.join();
    }
    MutexLock lock(mutex_);
    started_ = false;
}

Result<u64>
Coalescer::Submit(std::shared_ptr<Session> session,
                  std::vector<he::Ciphertext> inputs,
                  std::vector<WireProgram::Op> ops,
                  std::vector<u32> outputs)
{
    try {
        HENTT_FAILPOINT(fp::kServeRequest);
    } catch (...) {
        return CurrentExceptionToStatus().WithFrame(
            "Coalescer::Submit");
    }
    if (session == nullptr) {
        return Status(ErrorCode::kFailedPrecondition,
                      "submit without a session")
            .WithFrame("Coalescer::Submit");
    }
    // Pin the session's key version now: the request executes against
    // this exact key even if the client reloads keys mid-flight (the
    // shared_ptr keeps the old version alive for the worker).
    std::shared_ptr<const he::RelinKey> rk = session->relin_key();
    // Fail fast on a keyless key-switch: by the time the batch runs,
    // the error would be a graph configuration error; at submit time
    // it is a precise per-request Status.
    for (const WireProgram::Op &op : ops) {
        if ((op.op == WireOp::kRelin ||
             op.op == WireOp::kRelinModSwitch) &&
            rk == nullptr) {
            return Status(ErrorCode::kFailedPrecondition,
                          "program key-switches but session " +
                              std::to_string(session->id) +
                              " has loaded no relinearization keys")
                .WithFrame("Coalescer::Submit");
        }
    }
    Request request;
    request.session = std::move(session);
    request.rk = std::move(rk);
    request.inputs = std::move(inputs);
    request.ops = std::move(ops);
    request.outputs = std::move(outputs);
    request.arrival = std::chrono::steady_clock::now();
    u64 id = 0;
    std::size_t queued = 0;
    {
        MutexLock lock(mutex_);
        if (stop_ || !started_) {
            return Status(ErrorCode::kUnavailable,
                          "coalescer is not running")
                .WithFrame("Coalescer::Submit");
        }
        id = next_request_id_++;
        request.id = id;
        inflight_[id] = request.session->id;
        queue_.push_back(std::move(request));
        queued = queue_.size();
        ++stats_.requests_submitted;
    }
    // Wake the worker only on the transitions it acts on: the window
    // opening (it must start the deadline timer) and the window
    // filling (it must close early). Mid-window arrivals would only
    // bounce it off wait_until — on a busy daemon that is two context
    // switches per request for nothing.
    if (queued == 1 || queued >= config_.max_batch) {
        cv_work_.notify_all();
    }
    return id;
}

namespace {

/** The one answer every non-owner path gets: a foreign session's id,
 *  a consumed id, and an id that never existed are deliberately
 *  indistinguishable, so sequential request ids enumerate nothing. */
PollResult
UnknownRequest(u64 request_id, const char *frame)
{
    PollResult result;
    result.done = true;
    result.status = Status(ErrorCode::kFailedPrecondition,
                           "unknown request id " +
                               std::to_string(request_id))
                        .WithFrame(frame);
    return result;
}

}  // namespace

PollResult
Coalescer::Poll(u64 request_id, u64 session_id)
{
    MutexLock lock(mutex_);
    auto it = done_.find(request_id);
    if (it != done_.end()) {
        auto owner = done_owner_.find(request_id);
        if (owner == done_owner_.end() ||
            owner->second != session_id) {
            // Not this session's result: leave it for its owner.
            return UnknownRequest(request_id, "Coalescer::Poll");
        }
        PollResult result = std::move(it->second);
        done_.erase(it);
        done_owner_.erase(owner);
        return result;
    }
    auto in = inflight_.find(request_id);
    if (in != inflight_.end() && in->second == session_id) {
        return PollResult{};  // still queued or executing
    }
    return UnknownRequest(request_id, "Coalescer::Poll");
}

PollResult
Coalescer::Wait(u64 request_id, u64 session_id)
{
    MutexLock lock(mutex_);
    for (;;) {
        auto it = done_.find(request_id);
        if (it != done_.end()) {
            auto owner = done_owner_.find(request_id);
            if (owner == done_owner_.end() ||
                owner->second != session_id) {
                return UnknownRequest(request_id,
                                      "Coalescer::Wait");
            }
            PollResult result = std::move(it->second);
            done_.erase(it);
            done_owner_.erase(owner);
            return result;
        }
        auto in = inflight_.find(request_id);
        if (in == inflight_.end() || in->second != session_id) {
            return UnknownRequest(request_id, "Coalescer::Wait");
        }
        cv_done_.wait(mutex_);
    }
}

void
Coalescer::DropSessionRequests(u64 session_id)
{
    MutexLock lock(mutex_);
    for (auto it = queue_.begin(); it != queue_.end();) {
        if (it->session->id == session_id) {
            it = queue_.erase(it);
        } else {
            ++it;
        }
    }
    for (auto it = inflight_.begin(); it != inflight_.end();) {
        if (it->second == session_id) {
            it = inflight_.erase(it);
        } else {
            ++it;
        }
    }
    for (auto it = done_owner_.begin(); it != done_owner_.end();) {
        if (it->second == session_id) {
            done_.erase(it->first);
            it = done_owner_.erase(it);
        } else {
            ++it;
        }
    }
}

WireStats
Coalescer::StatsSnapshot() const
{
    MutexLock lock(mutex_);
    return stats_;
}

void
Coalescer::WorkerLoop()
{
    for (;;) {
        std::vector<Request> batch;
        {
            MutexLock lock(mutex_);
            while (!stop_ && queue_.empty()) {
                cv_work_.wait(mutex_);
            }
            if (stop_) {
                break;
            }
            if (config_.coalesce &&
                queue_.size() < config_.max_batch) {
                // Admission window: hold the batch open for more
                // arrivals until the oldest request's deadline.
                const auto deadline =
                    queue_.front().arrival + config_.max_wait;
                while (!stop_ &&
                       queue_.size() < config_.max_batch &&
                       std::chrono::steady_clock::now() < deadline) {
                    cv_work_.wait_until(mutex_, deadline);
                }
                if (stop_) {
                    break;
                }
            }
            const std::size_t take =
                config_.coalesce
                    ? std::min(queue_.size(), config_.max_batch)
                    : std::size_t{1};
            batch.reserve(take);
            for (std::size_t i = 0; i < take && !queue_.empty(); ++i) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            ++stats_.batches_executed;
            if (batch.size() > 1) {
                stats_.coalesced_requests += batch.size();
            }
            stats_.max_batch_observed = std::max<u64>(
                stats_.max_batch_observed, batch.size());
        }
        // Kernels run with no serve lock held (lock-order contract).
        std::vector<std::pair<u64, PollResult>> results =
            ExecuteBatch(batch);
        {
            MutexLock lock(mutex_);
            for (std::pair<u64, PollResult> &entry : results) {
                auto it = inflight_.find(entry.first);
                if (it == inflight_.end()) {
                    continue;  // dropped while executing: discard
                }
                const u64 owner = it->second;
                inflight_.erase(it);
                if (entry.second.status.ok()) {
                    ++stats_.requests_completed;
                } else {
                    ++stats_.requests_failed;
                }
                done_[entry.first] = std::move(entry.second);
                done_owner_[entry.first] = owner;
            }
        }
        cv_done_.notify_all();
    }
    // Drain on stop: everything still queued settles as kUnavailable
    // so pollers (and the e2e suite) never hang on a dead daemon.
    {
        MutexLock lock(mutex_);
        while (!queue_.empty()) {
            Request request = std::move(queue_.front());
            queue_.pop_front();
            inflight_.erase(request.id);
            PollResult result;
            result.done = true;
            result.status = Status(ErrorCode::kUnavailable,
                                   "daemon stopped before the request "
                                   "executed")
                                .WithFrame("Coalescer::WorkerLoop");
            done_[request.id] = std::move(result);
            done_owner_[request.id] = request.session->id;
        }
    }
    cv_done_.notify_all();
}

std::vector<std::pair<u64, PollResult>>
Coalescer::ExecuteBatch(std::vector<Request> &batch)
{
    std::vector<std::pair<u64, PollResult>> results;
    results.reserve(batch.size());

    // Group by engine state: requests over the same parameters share
    // one graph (their ciphertexts are mutually compatible); distinct
    // parameter sets get their own graph within the admitted batch.
    std::map<const he::HeEngineState *, std::vector<Request *>> groups;
    for (Request &request : batch) {
        groups[request.session->ctx->engine_state().get()].push_back(
            &request);
    }
    for (auto &[state, requests] : groups) {
        // The evaluation context borrows the worker arena; building it
        // is two shared_ptr copies, not a table build.
        auto ctx = std::make_shared<const he::HeContext>(
            requests.front()->session->ctx->engine_state(), arena_);
        he::BgvScheme scheme(ctx);
        he::HeOpGraph graph(scheme);

        // Enqueue every request's program; slot k of request r maps to
        // futures[r][k]. Ops carry their session's key per node, so
        // keyless stages batch across every client in the group.
        std::vector<std::vector<he::CtFuture>> futures(requests.size());
        std::vector<Status> build_errors(requests.size());
        for (std::size_t r = 0; r < requests.size(); ++r) {
            Request &request = *requests[r];
            std::vector<he::CtFuture> &slots = futures[r];
            slots.reserve(request.inputs.size() + request.ops.size());
            try {
                for (he::Ciphertext &ct : request.inputs) {
                    slots.push_back(graph.Input(std::move(ct)));
                }
                // The key version pinned at submit time — immune to a
                // concurrent LoadKeys swap on the session.
                const he::RelinKey *rk = request.rk.get();
                for (const WireProgram::Op &op : request.ops) {
                    // Decode already validated slot references, but
                    // Submit is also a direct (in-process) entry
                    // point — re-check before indexing.
                    const bool two_operand = op.op == WireOp::kAdd ||
                                             op.op == WireOp::kSub ||
                                             op.op == WireOp::kMul;
                    if (op.a >= slots.size() ||
                        (two_operand && op.b >= slots.size())) {
                        ThrowStatus(
                            Status(ErrorCode::kInvalidArgument,
                                   "program op references slot out "
                                   "of range"));
                    }
                    switch (op.op) {
                      case WireOp::kAdd:
                        slots.push_back(
                            graph.Add(slots[op.a], slots[op.b]));
                        break;
                      case WireOp::kSub:
                        slots.push_back(
                            graph.Sub(slots[op.a], slots[op.b]));
                        break;
                      case WireOp::kMul:
                        slots.push_back(
                            graph.Mul(slots[op.a], slots[op.b]));
                        break;
                      case WireOp::kRelin:
                        slots.push_back(
                            graph.Relinearize(slots[op.a], rk));
                        break;
                      case WireOp::kModSwitch:
                        slots.push_back(graph.ModSwitch(slots[op.a]));
                        break;
                      case WireOp::kRelinModSwitch:
                        slots.push_back(
                            graph.RelinModSwitch(slots[op.a], rk));
                        break;
                    }
                }
            } catch (...) {
                build_errors[r] = CurrentExceptionToStatus().WithFrame(
                    "Coalescer::ExecuteBatch(build)");
            }
        }

        // One execution for the whole group: same-kind nodes across
        // all requests share wavefront batches. Per-node failures are
        // contained by the graph (poisoning); a thrown configuration
        // error surfaces per request below through TryGet.
        (void)graph.ExecuteStatus();

        for (std::size_t r = 0; r < requests.size(); ++r) {
            Request &request = *requests[r];
            PollResult result;
            result.done = true;
            if (!build_errors[r].ok()) {
                result.status = build_errors[r];
                results.emplace_back(request.id, std::move(result));
                continue;
            }
            for (const u32 slot : request.outputs) {
                if (slot >= futures[r].size()) {
                    result.status =
                        Status(ErrorCode::kInvalidArgument,
                               "output slot " + std::to_string(slot) +
                                   " out of range")
                            .WithFrame("Coalescer::ExecuteBatch");
                    result.outputs.clear();
                    break;
                }
                Result<const he::Ciphertext *> output =
                    futures[r][slot].TryGet();
                if (!output.ok()) {
                    result.status = output.status().WithFrame(
                        "serve request " + std::to_string(request.id));
                    result.outputs.clear();
                    break;
                }
                result.outputs.push_back(**output);
            }
            results.emplace_back(request.id, std::move(result));
        }
    }
    return results;
}

}  // namespace hentt::serve
